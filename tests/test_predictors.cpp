// Load predictors (Section 3.4): the paper's harmonic-mean window and
// the comparison predictors used by the ablation bench.

#include <gtest/gtest.h>

#include "balance/predictors.hpp"
#include "util/require.hpp"

using namespace slipflow::balance;

TEST(Harmonic, NotReadyUntilWindowFull) {
  HarmonicMeanPredictor p(5);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(p.ready());
    p.record(1.0);
  }
  EXPECT_FALSE(p.ready());
  p.record(1.0);
  EXPECT_TRUE(p.ready());
}

TEST(Harmonic, ConstantInputPredictsConstant) {
  HarmonicMeanPredictor p(10);
  for (int i = 0; i < 10; ++i) p.record(0.4);
  EXPECT_NEAR(p.predict(), 0.4, 1e-12);
}

TEST(Harmonic, SingleSpikeBarelyMovesPrediction) {
  // the paper's laziness property: "if there is a load spike during the
  // last phase, no migration will be made unless this machine is really
  // slow for the last phases"
  HarmonicMeanPredictor p(10);
  for (int i = 0; i < 9; ++i) p.record(1.0);
  p.record(50.0);  // one huge spike
  EXPECT_LT(p.predict(), 1.15);
}

TEST(Harmonic, PersistentSlownessIsDetected) {
  HarmonicMeanPredictor p(10);
  for (int i = 0; i < 10; ++i) p.record(1.0);
  for (int i = 0; i < 10; ++i) p.record(3.0);  // slow for a full window
  EXPECT_NEAR(p.predict(), 3.0, 1e-12);
}

TEST(Harmonic, SlidesWithTheWindow) {
  HarmonicMeanPredictor p(3);
  p.record(1.0);
  p.record(1.0);
  p.record(1.0);
  p.record(2.0);
  p.record(2.0);
  p.record(2.0);
  EXPECT_NEAR(p.predict(), 2.0, 1e-12);
}

TEST(Harmonic, ResetForgetsHistory) {
  HarmonicMeanPredictor p(3);
  for (int i = 0; i < 3; ++i) p.record(1.0);
  p.reset();
  EXPECT_FALSE(p.ready());
}

TEST(Harmonic, RejectsNonPositiveSamples) {
  HarmonicMeanPredictor p(3);
  EXPECT_THROW(p.record(0.0), slipflow::contract_error);
  EXPECT_THROW(p.record(-1.0), slipflow::contract_error);
}

TEST(Harmonic, PredictBeforeReadyRejected) {
  HarmonicMeanPredictor p(3);
  p.record(1.0);
  EXPECT_THROW(p.predict(), slipflow::contract_error);
}

TEST(Arithmetic, SpikeMovesItMoreThanHarmonic) {
  HarmonicMeanPredictor h(10);
  ArithmeticMeanPredictor a(10);
  for (int i = 0; i < 9; ++i) {
    h.record(1.0);
    a.record(1.0);
  }
  h.record(20.0);
  a.record(20.0);
  EXPECT_GT(a.predict(), h.predict() * 2.0);
}

TEST(LastValue, ChasesTheMostRecentSample) {
  LastValuePredictor p;
  EXPECT_FALSE(p.ready());
  p.record(1.0);
  EXPECT_TRUE(p.ready());
  EXPECT_DOUBLE_EQ(p.predict(), 1.0);
  p.record(9.0);
  EXPECT_DOUBLE_EQ(p.predict(), 9.0);
}

TEST(Ewma, BlendsOldAndNew) {
  EwmaPredictor p(0.5, 1);
  p.record(2.0);
  EXPECT_DOUBLE_EQ(p.predict(), 2.0);
  p.record(4.0);
  EXPECT_DOUBLE_EQ(p.predict(), 3.0);
  p.record(4.0);
  EXPECT_DOUBLE_EQ(p.predict(), 3.5);
}

TEST(Ewma, WarmupGatesReadiness) {
  EwmaPredictor p(0.5, 3);
  p.record(1.0);
  p.record(1.0);
  EXPECT_FALSE(p.ready());
  p.record(1.0);
  EXPECT_TRUE(p.ready());
}

TEST(Factory, CreatesEachKind) {
  EXPECT_EQ(LoadPredictor::create("harmonic")->name(), "harmonic");
  EXPECT_EQ(LoadPredictor::create("arithmetic")->name(), "arithmetic");
  EXPECT_EQ(LoadPredictor::create("last")->name(), "last");
  EXPECT_EQ(LoadPredictor::create("ewma")->name(), "ewma");
}

TEST(Factory, UnknownNameRejected) {
  EXPECT_THROW(LoadPredictor::create("psychic"), slipflow::contract_error);
}

class PredictorParamTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PredictorParamTest, AllPredictorsConvergeOnConstantLoad) {
  auto p = LoadPredictor::create(GetParam(), 8);
  for (int i = 0; i < 16; ++i) p->record(0.7);
  ASSERT_TRUE(p->ready());
  EXPECT_NEAR(p->predict(), 0.7, 1e-9);
}

TEST_P(PredictorParamTest, AllPredictorsTrackLevelShifts) {
  auto p = LoadPredictor::create(GetParam(), 8);
  for (int i = 0; i < 8; ++i) p->record(1.0);
  for (int i = 0; i < 40; ++i) p->record(5.0);
  EXPECT_NEAR(p->predict(), 5.0, 0.05);
}

TEST_P(PredictorParamTest, ResetClearsReadiness) {
  auto p = LoadPredictor::create(GetParam(), 4);
  for (int i = 0; i < 8; ++i) p->record(1.0);
  p->reset();
  EXPECT_FALSE(p->ready());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, PredictorParamTest,
                         ::testing::Values("harmonic", "arithmetic", "last",
                                           "ewma"));
