// Async I/O pipeline: the obs::AsyncWriter contract (jobs never lost,
// flush as the error rendezvous, buffer recycling) and the ParallelLbm
// output integration — bytes written through the background writer must
// be identical to the synchronous path, periodic outputs must all be on
// disk by the time run() returns, and enabling async output must not
// perturb the physics or the load balancer's injected-clock sequence.

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "lbm/checkpoint.hpp"
#include "obs/async_writer.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "sim/parallel_lbm.hpp"
#include "transport/tempdir.hpp"
#include "transport/thread_comm.hpp"

using namespace slipflow;
using namespace slipflow::obs;

namespace {

struct DirGuard {
  std::string dir;
  DirGuard() : dir(transport::make_socket_temp_dir()) {}
  ~DirGuard() { std::filesystem::remove_all(dir); }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> b(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) b[i] = std::byte(s[i]);
  return b;
}

}  // namespace

TEST(AsyncWriter, WholeFileJobsLandAfterFlush) {
  DirGuard g;
  AsyncWriter w;
  w.submit_file(g.dir + "/a.txt", std::string("hello async"));
  w.submit_file(g.dir + "/b.bin", bytes_of("binary payload"));
  w.flush();
  EXPECT_EQ(read_file(g.dir + "/a.txt"), "hello async");
  EXPECT_EQ(read_file(g.dir + "/b.bin"), "binary payload");
  const AsyncWriterStats s = w.stats();
  EXPECT_EQ(s.jobs_written, 2);
  EXPECT_EQ(s.bytes_written,
            static_cast<long long>(std::string("hello async").size() +
                                   std::string("binary payload").size()));
  EXPECT_EQ(s.bytes_queued, s.bytes_written);
}

TEST(AsyncWriter, ResubmittingAPathOverwrites) {
  DirGuard g;
  AsyncWriter w;
  w.submit_file(g.dir + "/f.txt", std::string("first, longer content"));
  w.submit_file(g.dir + "/f.txt", std::string("second"));
  w.flush();
  EXPECT_EQ(read_file(g.dir + "/f.txt"), "second");
}

TEST(AsyncWriter, PositionalWritesComposeAPresizedFile) {
  DirGuard g;
  const std::string path = g.dir + "/planes.bin";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << std::string(16, '.');
  }
  AsyncWriter w;
  w.submit_pwrite(path, 0, bytes_of("AAAA"));
  w.submit_pwrite(path, 8, bytes_of("BBBB"));
  w.flush();
  EXPECT_EQ(read_file(path), "AAAA....BBBB....");
}

TEST(AsyncWriter, FlushRethrowsTheWriterError) {
  DirGuard g;
  AsyncWriter w;
  w.submit_file(g.dir + "/no/such/dir/f.txt", std::string("lost"));
  EXPECT_THROW(w.flush(), std::runtime_error);
}

TEST(AsyncWriter, DestructorDrainsAcceptedJobs) {
  DirGuard g;
  {
    AsyncWriter w;
    w.submit_file(g.dir + "/drained.txt", std::string("must survive"));
    // no flush — the destructor is the drain
  }
  EXPECT_EQ(read_file(g.dir + "/drained.txt"), "must survive");
}

TEST(AsyncWriter, TakeBufferRecyclesCompletedJobBuffers) {
  DirGuard g;
  AsyncWriter w;
  EXPECT_TRUE(w.take_buffer().empty());  // nothing completed yet
  w.submit_file(g.dir + "/x.bin", std::vector<std::byte>(4096));
  w.flush();
  const std::vector<std::byte> recycled = w.take_buffer();
  EXPECT_TRUE(recycled.empty());  // cleared, ready for the next snapshot
  EXPECT_GE(recycled.capacity(), 4096u);  // ...but the allocation survives
}

TEST(AsyncWriter, PublishWritesIoCounters) {
  DirGuard g;
  AsyncWriter w;
  w.submit_file(g.dir + "/m.bin", std::vector<std::byte>(100));
  w.flush();
  MetricsRegistry reg(1);
  w.publish(reg, 0);
  EXPECT_DOUBLE_EQ(reg.counter(0, "io/bytes_queued"), 100.0);
  EXPECT_DOUBLE_EQ(reg.counter(0, "io/jobs_written"), 1.0);
}

// ---- ParallelLbm integration ---------------------------------------

namespace {

const lbm::Extents kGrid{12, 6, 4};

/// Run `ranks` ranks for `phases` phases with the given output options,
/// deterministic injected clocks, and the conservative remap policy (so
/// the balancer's clock sequence is live and would notice a perturbed
/// schedule). Returns the rank-0 velocity profile.
std::vector<double> output_leg(int ranks, int phases,
                               const sim::OutputOptions& out,
                               obs::MetricsRegistry* metrics = nullptr) {
  sim::RunnerConfig cfg;
  cfg.global = kGrid;
  cfg.fluid = lbm::FluidParams::microchannel_defaults();
  cfg.policy = "conservative";
  cfg.remap_interval = 5;
  cfg.clock_factory = [](int) { return std::make_shared<CountingClock>(); };
  cfg.output = out;
  cfg.metrics = metrics;
  std::vector<double> profile;
  std::mutex mu;
  transport::run_ranks(ranks, [&](transport::Communicator& comm) {
    sim::ParallelLbm run(cfg, comm);
    run.initialize_uniform();
    run.run(phases);
    auto u = run.gather_velocity_profile_y(kGrid.nx / 2, 2);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      profile = std::move(u);
    }
  });
  return profile;
}

}  // namespace

TEST(AsyncIo, AsyncCheckpointBytesMatchSync) {
  DirGuard g;
  sim::OutputOptions async_out;
  async_out.checkpoint_every = 5;
  async_out.checkpoint_prefix = g.dir + "/async";
  async_out.async = true;
  sim::OutputOptions sync_out = async_out;
  sync_out.checkpoint_prefix = g.dir + "/sync";
  sync_out.async = false;

  (void)output_leg(2, 15, async_out);
  (void)output_leg(2, 15, sync_out);

  for (int phase : {5, 10, 15}) {
    const std::string tag = "." + std::to_string(phase) + ".ckpt";
    const std::string a = read_file(g.dir + "/async" + tag);
    const std::string s = read_file(g.dir + "/sync" + tag);
    ASSERT_FALSE(a.empty()) << phase;
    EXPECT_EQ(a, s) << "checkpoint bytes diverge at phase " << phase;
    // and the async file is a valid checkpoint in its own right
    const auto info = lbm::read_checkpoint_info(g.dir + "/async" + tag);
    EXPECT_EQ(info.global, kGrid);
    EXPECT_EQ(info.phase, phase);
  }
}

TEST(AsyncIo, AsyncVtkBytesMatchSync) {
  DirGuard g;
  sim::OutputOptions async_out;
  async_out.vtk_every = 7;
  async_out.vtk_prefix = g.dir + "/async";
  async_out.async = true;
  sim::OutputOptions sync_out = async_out;
  sync_out.vtk_prefix = g.dir + "/sync";
  sync_out.async = false;

  (void)output_leg(2, 14, async_out);
  (void)output_leg(2, 14, sync_out);

  for (int phase : {7, 14}) {
    for (int rank : {0, 1}) {
      const std::string tag =
          "." + std::to_string(phase) + ".r" + std::to_string(rank) + ".vtk";
      const std::string a = read_file(g.dir + "/async" + tag);
      ASSERT_FALSE(a.empty()) << tag;
      EXPECT_EQ(a, read_file(g.dir + "/sync" + tag))
          << "VTK bytes diverge for " << tag;
    }
  }
}

TEST(AsyncIo, AsyncOutputDoesNotPerturbObservables) {
  // Same injected clocks, same live balancer; the only difference is
  // whether snapshots take the background-writer path, which must be
  // invisible to the physics AND to the balancer's clock sequence.
  DirGuard g;
  sim::OutputOptions none;
  sim::OutputOptions async_out;
  async_out.checkpoint_every = 3;
  async_out.checkpoint_prefix = g.dir + "/a";
  async_out.vtk_every = 4;
  async_out.vtk_prefix = g.dir + "/a";
  async_out.async = true;
  sim::OutputOptions sync_out = async_out;
  sync_out.checkpoint_prefix = g.dir + "/s";
  sync_out.vtk_prefix = g.dir + "/s";
  sync_out.async = false;

  const auto u_none = output_leg(3, 20, none);
  const auto u_async = output_leg(3, 20, async_out);
  const auto u_sync = output_leg(3, 20, sync_out);
  ASSERT_EQ(u_async.size(), u_none.size());
  ASSERT_EQ(u_sync.size(), u_none.size());
  for (std::size_t j = 0; j < u_none.size(); ++j) {
    EXPECT_DOUBLE_EQ(u_async[j], u_none[j]) << j;
    EXPECT_DOUBLE_EQ(u_sync[j], u_none[j]) << j;
  }
}

TEST(AsyncIo, RunFlushesPeriodicOutputsByItsEnd) {
  DirGuard g;
  sim::OutputOptions out;
  out.checkpoint_every = 4;
  out.checkpoint_prefix = g.dir + "/flush";
  out.vtk_every = 4;
  out.vtk_prefix = g.dir + "/flush";
  out.async = true;
  (void)output_leg(2, 8, out);
  // run() returned on every rank, so every queued job is on disk — no
  // extra flush call from the caller.
  for (int phase : {4, 8}) {
    const std::string tag = std::to_string(phase);
    EXPECT_TRUE(std::filesystem::exists(g.dir + "/flush." + tag + ".ckpt"));
    EXPECT_TRUE(
        std::filesystem::exists(g.dir + "/flush." + tag + ".r0.vtk"));
    EXPECT_TRUE(
        std::filesystem::exists(g.dir + "/flush." + tag + ".r1.vtk"));
  }
}

TEST(AsyncIo, MidRunFlushMakesAsyncCheckpointReadable) {
  DirGuard g;
  const std::string path = g.dir + "/mid.ckpt";
  sim::RunnerConfig cfg;
  cfg.global = kGrid;
  cfg.fluid = lbm::FluidParams::microchannel_defaults();
  transport::run_ranks(2, [&](transport::Communicator& comm) {
    sim::ParallelLbm run(cfg, comm);
    run.initialize_uniform();
    run.run(4);
    run.save_checkpoint_async(path, 4);
    run.flush_output();
    comm.barrier();  // every rank's planes are on disk past this point
    if (comm.rank() == 0) {
      const auto info = lbm::read_checkpoint_info(path);
      EXPECT_EQ(info.phase, 4);
      EXPECT_EQ(info.global, kGrid);
    }
    comm.barrier();
  });
}

TEST(AsyncIo, IoGaugesPublishedAfterAsyncRun) {
  DirGuard g;
  sim::OutputOptions out;
  out.checkpoint_every = 5;
  out.checkpoint_prefix = g.dir + "/gauge";
  out.async = true;
  obs::MetricsRegistry reg(2);
  (void)output_leg(2, 10, out, &reg);
  for (int rank : {0, 1}) {
    ASSERT_TRUE(reg.has_gauge(rank, "io/bytes_written")) << rank;
    EXPECT_GT(reg.gauge(rank, "io/bytes_written"), 0.0) << rank;
    ASSERT_TRUE(reg.has_gauge(rank, "io/jobs_written")) << rank;
    EXPECT_GT(reg.gauge(rank, "io/jobs_written"), 0.0) << rank;
    EXPECT_TRUE(reg.has_gauge(rank, "time/io_async")) << rank;
    EXPECT_TRUE(reg.has_gauge(rank, "io/bytes_queued")) << rank;
  }
}
