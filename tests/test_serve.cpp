// The campaign server (src/serve): spec parsing + admission, fair-share
// scheduling, the warm-state cache, and — end to end, over the real
// control socket with real forked workers — the service guarantees the
// design doc promises:
//
//   * concurrent tenant jobs produce observables byte-identical to a
//     direct standalone launch of the same spec (make_launch_config is
//     the shared argv builder, and the physics is decomposition-
//     invariant, so this is structural — the test pins it anyway);
//   * a killed rank is named in the diagnostic and the job recovers
//     from its newest complete checkpoint, converging to the same bytes
//     as a clean run;
//   * a warm-cache hit provably skips the equilibration prefix
//     (phases_executed == phases - warm_phases) across rank counts.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/client.hpp"
#include "serve/job_spec.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/warm_cache.hpp"
#include "transport/launcher.hpp"
#include "util/json.hpp"

#ifndef SLIPFLOW_WORKER_EXE
#error "SLIPFLOW_WORKER_EXE must point at the slipflow_worker binary"
#endif

using namespace slipflow;
using serve::JobSpec;
using util::JsonValue;

namespace {

std::string temp_dir(const std::string& name) {
  const std::string d = ::testing::TempDir() + "slipflow_serve_" + name + "." +
                        std::to_string(::getpid());
  std::filesystem::create_directories(d);
  return d;
}

/// Short socket path (sun_path is 108 bytes; TempDir may be deep).
std::string socket_path(const std::string& name) {
  return "/tmp/sf_" + name + "." + std::to_string(::getpid()) + ".sock";
}

JobSpec small_spec() {
  JobSpec s;
  s.nx = 16;
  s.ny = 6;
  s.nz = 4;
  s.phases = 20;
  s.ranks = 2;
  s.wall_clock_budget = 60.0;
  return s;
}

/// Run the spec standalone — the same argv builder the server uses —
/// and return the observables bytes.
std::string run_direct(const JobSpec& spec, const std::string& dir) {
  serve::JobPaths paths;
  paths.observables_out = dir + "/obs_direct.txt";
  const transport::LaunchConfig lc =
      serve::make_launch_config(spec, SLIPFLOW_WORKER_EXE, paths);
  const transport::LaunchResult res = transport::launch_workers(lc);
  EXPECT_TRUE(res.ok) << res.diagnostic;
  std::ifstream f(paths.observables_out, std::ios::binary);
  EXPECT_TRUE(f.good()) << "missing " << paths.observables_out;
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

}  // namespace

// ---------------------------------------------------------------- spec --

TEST(Serve, JobSpecDefaultsAndRoundTrip) {
  const JobSpec defaults = JobSpec::from_json(util::json_parse("{}"));
  EXPECT_EQ(defaults.nx, 16);
  EXPECT_EQ(defaults.components, 2);
  EXPECT_EQ(defaults.transport, "socket");
  EXPECT_EQ(defaults.observables, "physics");

  JobSpec s = small_spec();
  s.wall_accel = 0.3;
  s.gravity = 1e-5;
  s.warm_phases = 8;
  s.stream_every = 5;
  s.fault_kill_rank = 1;
  s.fault_kill_phase = 7;
  const JobSpec back = JobSpec::from_json(s.to_json());
  EXPECT_EQ(back.to_json().dump(), s.to_json().dump());
}

TEST(Serve, JobSpecRejectsUnknownKeys) {
  EXPECT_THROW(JobSpec::from_json(util::json_parse(R"({"phasez":10})")),
               serve::serve_error);
  EXPECT_THROW(
      JobSpec::from_json(util::json_parse(R"({"geometry":{"nx":16,"nw":2}})")),
      serve::serve_error);
  EXPECT_THROW(
      JobSpec::from_json(util::json_parse(R"({"params":{"gravty":1e-5}})")),
      serve::serve_error);
  EXPECT_THROW(
      JobSpec::from_json(util::json_parse(R"({"fault":{"kill_node":1}})")),
      serve::serve_error);
}

TEST(Serve, JobSpecValidatesValues) {
  EXPECT_THROW(JobSpec::from_json(util::json_parse(R"({"components":3})")),
               serve::serve_error);
  EXPECT_THROW(JobSpec::from_json(util::json_parse(R"({"transport":"tcp"})")),
               serve::serve_error);
  EXPECT_THROW(JobSpec::from_json(util::json_parse(R"({"step":"fused"})")),
               serve::serve_error);
  // One plane per rank minimum: nx must cover the rank count.
  EXPECT_THROW(
      JobSpec::from_json(util::json_parse(R"({"geometry":{"nx":4},"ranks":8})")),
      serve::serve_error);
  // Warm prefix cannot exceed the run itself.
  EXPECT_THROW(JobSpec::from_json(
                   util::json_parse(R"({"phases":10,"warm_phases":11})")),
               serve::serve_error);
}

TEST(Serve, WarmKeyIgnoresSchedulingFields) {
  JobSpec a = small_spec();
  a.warm_phases = 10;
  JobSpec b = a;
  // Everything the equilibrated state is invariant to: decomposition,
  // transport, threading, policy, step mode — and the total phase count.
  b.ranks = 4;
  b.transport = "shm";
  b.threads = 2;
  b.policy = "greedy";
  b.step = "blocking";
  b.phases = 200;
  b.stream_every = 5;
  b.checkpoint_every = 5;
  EXPECT_EQ(a.warm_key(), b.warm_key());

  JobSpec c = a;
  c.wall_accel += 0.1;  // different physics → different entry
  EXPECT_NE(a.warm_key(), c.warm_key());
  JobSpec d = a;
  d.nx = 32;
  EXPECT_NE(a.warm_key(), d.warm_key());
  JobSpec e = a;
  e.warm_phases = 12;  // same physics, different equilibration depth
  EXPECT_NE(a.warm_key(), e.warm_key());
}

// ------------------------------------------------------------- lowering --

TEST(Serve, MakeLaunchConfigLowersSpec) {
  JobSpec s = small_spec();
  s.checkpoint_every = 5;
  s.fault_kill_rank = 1;
  s.fault_kill_phase = 12;
  serve::JobPaths paths;
  paths.observables_out = "/tmp/o.txt";
  paths.checkpoint_prefix = "/tmp/ck";
  const transport::LaunchConfig lc =
      serve::make_launch_config(s, "worker", paths);
  EXPECT_EQ(lc.ranks, 2);
  const auto has = [&](const std::string& arg) {
    for (const std::string& a : lc.worker_command)
      if (a == arg) return true;
    return false;
  };
  EXPECT_TRUE(has("--nx=16"));
  EXPECT_TRUE(has("--wall-accel=0.2"));
  EXPECT_TRUE(has("--gravity=2e-05"));
  EXPECT_TRUE(has("--observables=physics"));
  // Checkpointing jobs are forced onto the atomic sync path: recovery
  // must never seed from a torn file.
  EXPECT_TRUE(has("--checkpoint-atomic"));
  EXPECT_TRUE(has("--io=sync"));
  // The injected fault reaches only the guilty rank's argv.
  ASSERT_EQ(lc.extra_args.count(1), 1u);
  EXPECT_EQ(lc.extra_args.at(1).front(), "--fault-kill-phase=12");
  EXPECT_EQ(lc.extra_args.count(0), 0u);
}

// ------------------------------------------------------------ fair share --

TEST(Serve, PickNextJobFairShare) {
  using serve::QueuedJob;
  const std::map<std::string, int> none;
  EXPECT_EQ(serve::pick_next_job({}, none, 8), -1);

  // Nothing fits the gap.
  EXPECT_EQ(serve::pick_next_job({{1, "a", 4}}, none, 2), -1);

  // A wide job never blocks a narrower one behind it.
  EXPECT_EQ(serve::pick_next_job({{1, "a", 8}, {2, "b", 2}}, none, 4), 1);

  // Fair share: the tenant holding fewer running slots wins even when
  // queued later.
  const std::map<std::string, int> loads{{"a", 4}, {"b", 0}};
  EXPECT_EQ(serve::pick_next_job({{1, "a", 2}, {2, "b", 2}}, loads, 4), 1);

  // Equal load → submission order.
  EXPECT_EQ(serve::pick_next_job({{1, "a", 2}, {2, "b", 2}}, none, 4), 0);
}

// ------------------------------------------------------------ warm cache --

TEST(Serve, WarmCacheHashAndRejection) {
  EXPECT_EQ(serve::WarmCache::hash_key("abc"),
            serve::WarmCache::hash_key("abc"));
  EXPECT_NE(serve::WarmCache::hash_key("abc"),
            serve::WarmCache::hash_key("abd"));

  const std::string dir = temp_dir("cache");
  serve::WarmCache cache(dir + "/warm");
  EXPECT_EQ(cache.lookup("no-such-key", 10), "");

  // A torn / foreign file must never become a cache entry.
  const std::string junk = dir + "/junk.ckpt";
  std::ofstream(junk, std::ios::binary) << "not a checkpoint";
  EXPECT_FALSE(cache.promote("some-key", 10, junk));
  EXPECT_EQ(cache.lookup("some-key", 10), "");
}

// ------------------------------------------------------------- admission --

TEST(Serve, AdmissionRejects) {
  serve::CampaignServer::Config cfg;
  cfg.work_dir = temp_dir("admission");
  cfg.worker_exe = SLIPFLOW_WORKER_EXE;
  cfg.policy.total_slots = 4;
  cfg.policy.max_ranks_per_job = 2;
  cfg.policy.max_queued = 0;  // every queued job is one too many
  serve::CampaignServer server(cfg);
  server.start();

  JobSpec wide = small_spec();
  wide.ranks = 3;  // > max_ranks_per_job
  EXPECT_THROW(server.submit("t", wide), serve::serve_error);

  // Fits the per-job cap but the queue is full.
  EXPECT_THROW(server.submit("t", small_spec()), serve::serve_error);
  server.stop();

  serve::CampaignServer::Config cfg2;
  cfg2.work_dir = temp_dir("admission2");
  cfg2.worker_exe = SLIPFLOW_WORKER_EXE;
  cfg2.policy.total_slots = 2;
  cfg2.policy.max_ranks_per_job = 8;
  serve::CampaignServer server2(cfg2);
  server2.start();
  JobSpec pool = small_spec();
  pool.ranks = 4;  // wider than the whole pool
  EXPECT_THROW(server2.submit("t", pool), serve::serve_error);
  server2.stop();
}

// ---------------------------------------------------------------- e2e ---

// Three tenants, three concurrent jobs over the real control socket,
// each byte-identical to a direct standalone run of the same spec.
TEST(ServeE2E, ConcurrentJobsMatchDirectRuns) {
  const std::string dir = temp_dir("e2e_concurrent");
  serve::CampaignServer::Config cfg;
  cfg.socket_path = socket_path("conc");
  cfg.work_dir = dir;
  cfg.worker_exe = SLIPFLOW_WORKER_EXE;
  cfg.policy.total_slots = 6;  // all three 2-rank jobs run at once
  serve::CampaignServer server(cfg);
  server.start();

  std::vector<JobSpec> specs;
  for (int i = 0; i < 3; ++i) {
    JobSpec s = small_spec();
    s.gravity = 2e-5 * (i + 1);  // three distinct physics
    specs.push_back(s);
  }

  serve::Client client(cfg.socket_path);
  std::vector<long long> ids;
  for (int i = 0; i < 3; ++i)
    ids.push_back(client.submit("tenant" + std::to_string(i), specs[i]));

  for (int i = 0; i < 3; ++i) {
    const JsonValue rec = client.wait(ids[i]);
    ASSERT_EQ(rec.string_or("state", ""), "done")
        << rec.string_or("diagnostic", "");
    const std::string direct =
        run_direct(specs[i], temp_dir("e2e_direct" + std::to_string(i)));
    EXPECT_EQ(rec.string_or("observables", ""), direct)
        << "served job " << ids[i] << " diverged from its direct run";
  }

  const JsonValue st = client.stats();
  EXPECT_EQ(st.int_or("done", -1), 3);
  EXPECT_EQ(st.int_or("failed", -1), 0);
  server.stop();
}

// A rank killed mid-run is named in the preserved diagnostic; the job
// recovers from its newest complete checkpoint on attempt 2 and still
// converges to the clean run's bytes.
TEST(ServeE2E, KilledRankRecoversFromCheckpoint) {
  const std::string dir = temp_dir("e2e_recovery");
  serve::CampaignServer::Config cfg;
  cfg.work_dir = dir;
  cfg.worker_exe = SLIPFLOW_WORKER_EXE;
  serve::CampaignServer server(cfg);
  server.start();

  JobSpec s = small_spec();
  s.checkpoint_every = 5;
  s.fault_kill_rank = 1;
  s.fault_kill_phase = 12;

  const long long id = server.submit("chaos", s);
  const JsonValue rec = server.wait(id);
  ASSERT_EQ(rec.string_or("state", ""), "done")
      << rec.string_or("diagnostic", "");
  EXPECT_EQ(rec.int_or("attempts", -1), 2);
  EXPECT_EQ(rec.int_or("failed_rank", -1), 1);
  EXPECT_NE(rec.string_or("diagnostic", "").find("rank 1"), std::string::npos)
      << rec.string_or("diagnostic", "");

  JobSpec clean = s;
  clean.fault_kill_rank = -1;
  clean.fault_kill_phase = -1;
  clean.checkpoint_every = 0;
  const std::string direct = run_direct(clean, temp_dir("e2e_recovery_ref"));
  EXPECT_EQ(rec.string_or("observables", ""), direct);
  server.stop();
}

// The second job with the same physics seeds from the warm cache and
// executes only the post-equilibration remainder — on a different rank
// count, with byte-identical observables.
TEST(ServeE2E, WarmCacheHitSkipsEquilibration) {
  const std::string dir = temp_dir("e2e_warm");
  serve::CampaignServer::Config cfg;
  cfg.work_dir = dir;
  cfg.worker_exe = SLIPFLOW_WORKER_EXE;
  serve::CampaignServer server(cfg);
  server.start();

  JobSpec producer = small_spec();
  producer.warm_phases = 10;
  const JsonValue first = server.wait(server.submit("sweep", producer));
  ASSERT_EQ(first.string_or("state", ""), "done")
      << first.string_or("diagnostic", "");
  EXPECT_FALSE(first.bool_or("warm_hit", true));
  EXPECT_EQ(first.int_or("phases_executed", -1), producer.phases);

  JobSpec consumer = producer;
  consumer.ranks = 1;  // the warm state is decomposition-invariant
  const JsonValue second = server.wait(server.submit("sweep", consumer));
  ASSERT_EQ(second.string_or("state", ""), "done")
      << second.string_or("diagnostic", "");
  EXPECT_TRUE(second.bool_or("warm_hit", false));
  EXPECT_EQ(second.int_or("phases_executed", -1),
            producer.phases - producer.warm_phases);
  EXPECT_EQ(second.string_or("observables", "x"),
            first.string_or("observables", "y"));

  const JsonValue st = server.stats();
  EXPECT_EQ(st.int_or("cache_hits", -1), 1);
  EXPECT_EQ(st.int_or("cache_misses", -1), 1);
  server.stop();
}
