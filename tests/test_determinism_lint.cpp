// Tests for the determinism lint (tools/determinism_lint): each rule
// must fire on a planted construct, stay quiet on the deterministic
// equivalent, and honor the det-lint annotation allowlist.

#include <gtest/gtest.h>

#include <algorithm>

#include "determinism_lint/determinism_lint.hpp"

using namespace slipflow::tools;

namespace {

std::vector<LintFinding> lint(const char* source) {
  return lint_source("test.cpp", source);
}

std::size_t count_rule(const std::vector<LintFinding>& fs, const char* rule,
                       bool include_allowlisted = false) {
  return static_cast<std::size_t>(std::count_if(
      fs.begin(), fs.end(), [&](const LintFinding& f) {
        return f.rule == rule && (include_allowlisted || !f.allowlisted);
      }));
}

}  // namespace

// ---------------------------------------------------------------------------
// unordered-iteration

TEST(UnorderedIteration, RangeForOverUnorderedMapFires) {
  const auto fs = lint(R"(
    #include <unordered_map>
    double total_mass(const std::unordered_map<int, double>& cells) {
      std::unordered_map<int, double> local = cells;
      double sum = 0.0;
      for (const auto& [idx, rho] : local) sum += rho;  // planted
      return sum;
    }
  )");
  ASSERT_EQ(count_rule(fs, "unordered-iteration"), 1u);
  EXPECT_EQ(fs.front().file, "test.cpp");
  EXPECT_NE(fs.front().message.find("hash order"), std::string::npos);
}

TEST(UnorderedIteration, IteratorLoopAndInlineTypeFire) {
  const auto fs = lint(R"(
    std::unordered_set<long> seen;
    void emit() {
      for (auto it = seen.begin(); it != seen.end(); ++it) send(*it);
    }
    void direct() {
      for (int v : std::unordered_set<int>{1, 2, 3}) push(v);
    }
  )");
  EXPECT_EQ(count_rule(fs, "unordered-iteration"), 2u);
}

TEST(UnorderedIteration, OrderedMapIsQuiet) {
  const auto fs = lint(R"(
    #include <map>
    double total(const std::map<int, double>& cells) {
      double sum = 0.0;
      for (const auto& [idx, rho] : cells) sum += rho;
      return sum;
    }
  )");
  EXPECT_EQ(count_rule(fs, "unordered-iteration"), 0u);
}

TEST(UnorderedIteration, AllowAnnotationSuppresses) {
  const auto fs = lint(R"(
    std::unordered_map<int, double> cache;
    void drop_all() {
      // det-lint: allow(unordered-iteration): destruction order is
      // observable-free — the loop only calls close().
      for (auto& [k, v] : cache) close(v);
    }
  )");
  EXPECT_EQ(count_rule(fs, "unordered-iteration"), 0u);
  // ...but the audit trail keeps the site visible
  EXPECT_EQ(count_rule(fs, "unordered-iteration", true), 1u);
  EXPECT_TRUE(fs.front().allowlisted);
}

// ---------------------------------------------------------------------------
// pointer-order

TEST(PointerOrder, PointerKeyedContainersFire) {
  const auto fs = lint(R"(
    std::map<Node*, int> owners;
    std::set<const Slab*> dirty;
  )");
  EXPECT_EQ(count_rule(fs, "pointer-order"), 2u);
}

TEST(PointerOrder, LessOnPointersFires) {
  const auto fs = lint("std::less<Node*> by_address;\n");
  EXPECT_EQ(count_rule(fs, "pointer-order"), 1u);
}

TEST(PointerOrder, ValueKeyedContainersAreQuiet) {
  const auto fs = lint(R"(
    std::map<int, Node*> by_rank;        // pointer VALUES are fine
    std::set<std::string> names;
    std::map<std::pair<int, int>, double> edges;
  )");
  EXPECT_EQ(count_rule(fs, "pointer-order"), 0u);
}

// ---------------------------------------------------------------------------
// wall-clock

TEST(WallClock, ClockAndRandomSourcesFire) {
  const auto fs = lint(R"(
    double t0 = std::chrono::steady_clock::now().time_since_epoch().count();
    auto wall = std::chrono::system_clock::now();
    int r = rand();
    srand(42);
    std::random_device rd;
    std::time_t t = time(nullptr);
    struct timespec ts; clock_gettime(CLOCK_MONOTONIC, &ts);
  )");
  EXPECT_EQ(count_rule(fs, "wall-clock"), 7u);
}

TEST(WallClock, LookalikeIdentifiersAreQuiet) {
  const auto fs = lint(R"(
    double operand(int x);           // contains "rand"
    void f() { operand(3); }
    double elapsed = clock_->now();  // the injectable seam
    auto d = t.time_since_epoch();   // member named time_since_epoch
    int randomize_layout = 0;        // identifier prefix
    run_time(5);
  )");
  EXPECT_EQ(count_rule(fs, "wall-clock"), 0u);
}

TEST(WallClock, CommentsAndStringsAreQuiet) {
  const auto fs = lint(R"(
    // calling rand() here would break determinism
    /* steady_clock::now() is forbidden in this layer */
    const char* msg = "rand() and steady_clock::now() in a string";
  )");
  EXPECT_EQ(count_rule(fs, "wall-clock"), 0u);
}

TEST(WallClock, AllowAnnotationSuppresses) {
  const auto fs = lint(R"(
    // det-lint: allow(wall-clock): heartbeat timeout only, never
    // feeds observables.
    double deadline = std::chrono::steady_clock::now().time_since_epoch().count();
  )");
  EXPECT_EQ(count_rule(fs, "wall-clock"), 0u);
  EXPECT_EQ(count_rule(fs, "wall-clock", true), 1u);
}

// ---------------------------------------------------------------------------
// unordered-collective

TEST(UnorderedCollective, UnannotatedDefinitionFires) {
  const auto fs = lint(R"(
    std::vector<double> MyComm::allgather(std::span<const double> mine) {
      return gather_any_order(mine);
    }
  )");
  ASSERT_EQ(count_rule(fs, "unordered-collective"), 1u);
  EXPECT_NE(fs.front().message.find("rank-ordered"), std::string::npos);
}

TEST(UnorderedCollective, RankOrderedAnnotationSatisfies) {
  const auto fs = lint(R"(
    // det-lint: rank-ordered — concatenates contributions by rank index.
    std::vector<double> MyComm::allgather(std::span<const double> mine) {
      return gather_rank_ordered(mine);
    }
  )");
  EXPECT_EQ(count_rule(fs, "unordered-collective", true), 0u);
}

TEST(UnorderedCollective, DerivedNamesAndMultilineHeadersFire) {
  const auto fs = lint(R"(
    double allreduce_sum(double x) override {
      return fold(x);
    }
    inline std::vector<double> binomial_allgather(Communicator& comm,
                                                  std::span<const double> m) {
      return tree(comm, m);
    }
  )");
  EXPECT_EQ(count_rule(fs, "unordered-collective"), 2u);
}

TEST(UnorderedCollective, CallSitesAndDeclarationsAreQuiet) {
  const auto fs = lint(R"(
    virtual std::vector<double> allgather(std::span<const double> mine) = 0;
    double allreduce_max(double x) override;
    using Communicator::allreduce_sum;
    void step() {
      const std::vector<double> all = comm_.allgather(mine);
      const double m = comm->allreduce_max(x);
      (void)allgather({});
      return binomial_allgather(*this, mine);
    }
  )");
  EXPECT_EQ(count_rule(fs, "unordered-collective", true), 0u);
}

// ---------------------------------------------------------------------------
// reporting

TEST(Report, JsonIsDeterministicAndComplete) {
  const auto fs = lint(R"(
    int r = rand();
    // det-lint: allow(wall-clock): test fixture.
    srand(1);
  )");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(count_violations(fs), 1u);
  const std::string json = lint_report_json(fs);
  EXPECT_NE(json.find("\"finding_count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"violation_count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"allowlisted\": true"), std::string::npos);
  EXPECT_EQ(json, lint_report_json(fs));
}

TEST(Report, LineNumbersAreOneBasedAndAccurate) {
  const auto fs = lint("int a;\nint b;\nint r = rand();\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs.front().line, 3);
  EXPECT_EQ(fs.front().excerpt, "int r = rand();");
}
