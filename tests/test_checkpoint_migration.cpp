// Checkpoint/restart COMBINED with mid-run plane migration — the
// interaction the per-plane checkpoint format exists for, previously
// only tested separately: a ThreadComm run whose ranks have already
// migrated planes is checkpointed, restarted across *different* rank
// counts (which migrate again), and must stay bit-identical to an
// uninterrupted run and to the sequential reference.
//
// Rank slowness is injected through the observability clock
// (obs::CountingClock via RunnerConfig::clock_factory), so the load
// predictor sees a deterministic 4x-slow rank and migration is
// guaranteed — no sleeps, no wall-time dependence.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>

#include "lbm/observables.hpp"
#include "lbm/simulation.hpp"
#include "obs/clock.hpp"
#include "sim/parallel_lbm.hpp"
#include "transport/thread_comm.hpp"

using namespace slipflow;
using namespace slipflow::lbm;

namespace {

const Extents kGrid{18, 6, 4};

struct PathGuard {
  std::string path;
  explicit PathGuard(const char* name)
      : path((std::filesystem::temp_directory_path() / name).string()) {}
  ~PathGuard() { std::remove(path.c_str()); }
};

sim::RunnerConfig migrating_runner() {
  sim::RunnerConfig cfg;
  cfg.global = kGrid;
  cfg.fluid = FluidParams::microchannel_defaults();
  cfg.policy = "filtered";
  cfg.remap_interval = 4;
  cfg.balance.window = 3;
  cfg.balance.min_transfer_points = 24;  // one yz-plane of this grid
  // rank 1 is virtually 4x slower: deterministic migration pressure
  cfg.clock_factory = [](int rank) -> std::shared_ptr<obs::Clock> {
    return std::make_shared<obs::CountingClock>(rank == 1 ? 4e-3 : 1e-3);
  };
  return cfg;
}

struct Fields {
  std::vector<std::vector<double>> water, air, ux;
};

Fields sequential_fields(int phases) {
  Simulation sim(kGrid, FluidParams::microchannel_defaults());
  sim.initialize_uniform();
  sim.run(phases);
  Fields f;
  for (index_t gx = 0; gx < kGrid.nx; ++gx) {
    f.water.push_back(density_profile_y(sim.slab(), 0, gx, 2));
    f.air.push_back(density_profile_y(sim.slab(), 1, gx, 2));
    f.ux.push_back(velocity_profile_y(sim.slab(), gx, 2));
  }
  return f;
}

struct LegResult {
  Fields fields;
  long long planes_migrated = 0;
  long long phase_at_load = -1;
};

/// Run `phases` phases on `ranks` ranks, loading/saving checkpoints as
/// requested, and gather the full fields on rank 0.
LegResult run_leg(int ranks, int phases, const std::string& load_path,
                  const std::string& save_path, long long save_phase = 0) {
  const sim::RunnerConfig cfg = migrating_runner();
  LegResult out;
  out.fields.water.resize(static_cast<std::size_t>(kGrid.nx));
  out.fields.air.resize(static_cast<std::size_t>(kGrid.nx));
  out.fields.ux.resize(static_cast<std::size_t>(kGrid.nx));
  std::mutex mu;
  transport::run_ranks(ranks, [&](transport::Communicator& comm) {
    sim::ParallelLbm run(cfg, comm);
    long long loaded = -1;
    if (load_path.empty())
      run.initialize_uniform();
    else
      loaded = run.load_checkpoint(load_path);
    run.run(phases);
    if (!save_path.empty()) run.save_checkpoint(save_path, save_phase);
    const auto stats = run.gather_stats();
    for (index_t gx = 0; gx < kGrid.nx; ++gx) {
      auto w = run.gather_density_profile_y(0, gx, 2);
      auto a = run.gather_density_profile_y(1, gx, 2);
      auto u = run.gather_velocity_profile_y(gx, 2);
      if (comm.rank() == 0) {
        std::lock_guard<std::mutex> lk(mu);
        const auto i = static_cast<std::size_t>(gx);
        out.fields.water[i] = std::move(w);
        out.fields.air[i] = std::move(a);
        out.fields.ux[i] = std::move(u);
      }
    }
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      out.phase_at_load = loaded;
      out.planes_migrated = 0;
      for (const auto& s : stats) out.planes_migrated += s.planes_sent;
    }
  });
  return out;
}

void expect_fields_identical(const Fields& a, const Fields& b) {
  ASSERT_EQ(a.water.size(), b.water.size());
  for (std::size_t gx = 0; gx < a.water.size(); ++gx) {
    ASSERT_EQ(a.water[gx].size(), b.water[gx].size());
    for (std::size_t j = 0; j < a.water[gx].size(); ++j) {
      EXPECT_DOUBLE_EQ(a.water[gx][j], b.water[gx][j]) << gx << "," << j;
      EXPECT_DOUBLE_EQ(a.air[gx][j], b.air[gx][j]) << gx << "," << j;
      EXPECT_DOUBLE_EQ(a.ux[gx][j], b.ux[gx][j]) << gx << "," << j;
    }
  }
}

}  // namespace

TEST(CheckpointMigration, RestartAcrossRankCountsAfterMigration) {
  PathGuard g("ckpt_migrated.bin");

  // leg 1: 3 ranks, 30 phases — planes MUST have migrated by the save
  const LegResult first = run_leg(3, 30, "", g.path, /*save_phase=*/30);
  ASSERT_GT(first.planes_migrated, 0)
      << "test premise broken: no migration before the checkpoint";

  // uninterrupted references: sequential and same-config 3-rank run
  const Fields seq = sequential_fields(60);
  const LegResult uninterrupted = run_leg(3, 60, "", "");

  // restart the migrated checkpoint on 2 and on 4 ranks
  const LegResult on2 = run_leg(2, 30, g.path, "");
  const LegResult on4 = run_leg(4, 30, g.path, "");
  EXPECT_EQ(on2.phase_at_load, 30);
  EXPECT_EQ(on4.phase_at_load, 30);

  expect_fields_identical(seq, uninterrupted.fields);
  expect_fields_identical(uninterrupted.fields, on2.fields);
  expect_fields_identical(uninterrupted.fields, on4.fields);
}

TEST(CheckpointMigration, RestartLegsKeepMigratingAndConserveMass) {
  PathGuard g("ckpt_migrated2.bin");
  (void)run_leg(3, 30, "", g.path, 30);

  const sim::RunnerConfig cfg = migrating_runner();
  transport::run_ranks(4, [&](transport::Communicator& comm) {
    sim::ParallelLbm run(cfg, comm);
    run.load_checkpoint(g.path);
    const double m0 = run.global_mass(0);
    const double m1 = run.global_mass(1);
    run.run(40);
    const auto stats = run.gather_stats();
    long long migrated = 0, planes = 0;
    for (const auto& s : stats) {
      migrated += s.planes_sent;
      planes += s.planes;
    }
    // the restarted decomposition rebalances again, ownership stays
    // complete, and migration keeps mass bit-stable
    EXPECT_GT(migrated, 0);
    EXPECT_EQ(planes, kGrid.nx);
    EXPECT_NEAR(run.global_mass(0), m0, 1e-9 * m0);
    EXPECT_NEAR(run.global_mass(1), m1, 1e-9 * m1);
  });
}

TEST(CheckpointMigration, MigratedCheckpointMatchesSequentialState) {
  // the checkpoint itself (not just the continued run) must hold the
  // exact sequential state: restore it into a sequential Simulation
  PathGuard g("ckpt_migrated3.bin");
  const LegResult first = run_leg(3, 30, "", g.path, 30);
  ASSERT_GT(first.planes_migrated, 0);

  Simulation seq(kGrid, FluidParams::microchannel_defaults());
  seq.restore_checkpoint(g.path);
  EXPECT_EQ(seq.phase_count(), 30);

  Simulation ref(kGrid, FluidParams::microchannel_defaults());
  ref.initialize_uniform();
  ref.run(30);

  // the checkpoint stores phase-boundary state (distributions and
  // densities; velocity is derived next phase) — compare the densities
  for (index_t gx = 0; gx < kGrid.nx; ++gx) {
    for (std::size_t c = 0; c < 2; ++c) {
      const auto a = density_profile_y(seq.slab(), c, gx, 2);
      const auto b = density_profile_y(ref.slab(), c, gx, 2);
      for (std::size_t j = 0; j < a.size(); ++j)
        EXPECT_DOUBLE_EQ(a[j], b[j]) << c << "," << gx << "," << j;
    }
  }
  for (std::size_t c = 0; c < 2; ++c)
    EXPECT_DOUBLE_EQ(owned_mass(seq.slab(), c), owned_mass(ref.slab(), c));
}
