// Checkpoint / restart: bit-exact continuation, header validation, and
// restart across *different* decompositions (the per-plane format's
// whole point).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <filesystem>
#include <mutex>

#include "lbm/checkpoint.hpp"
#include "lbm/observables.hpp"
#include "lbm/simulation.hpp"
#include "sim/parallel_lbm.hpp"
#include "transport/thread_comm.hpp"

using namespace slipflow;
using namespace slipflow::lbm;

namespace {

const Extents kGrid{12, 6, 4};

FluidParams fluid() { return FluidParams::microchannel_defaults(); }

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct PathGuard {
  std::string path;
  explicit PathGuard(std::string p) : path(std::move(p)) {}
  ~PathGuard() { std::remove(path.c_str()); }
};

std::vector<double> final_profile(Simulation& sim) {
  return velocity_profile_y(sim.slab(), kGrid.nx / 2, 2);
}

}  // namespace

TEST(Checkpoint, HeaderRoundTrip) {
  PathGuard g(temp_path("ckpt_header.bin"));
  Simulation sim(kGrid, fluid());
  sim.initialize_uniform();
  sim.run(7);
  sim.save_checkpoint(g.path);
  const auto info = read_checkpoint_info(g.path);
  EXPECT_EQ(info.global, kGrid);
  EXPECT_EQ(info.components, 2u);
  EXPECT_EQ(info.phase, 7);
}

TEST(Checkpoint, ContinuationIsBitExact) {
  PathGuard g(temp_path("ckpt_cont.bin"));
  // reference: run 60 phases straight through
  Simulation ref(kGrid, fluid());
  ref.initialize_uniform();
  ref.run(60);

  // checkpointed: run 25, save, restore into a fresh simulation, run 35
  Simulation first(kGrid, fluid());
  first.initialize_uniform();
  first.run(25);
  first.save_checkpoint(g.path);

  Simulation second(kGrid, fluid());
  second.restore_checkpoint(g.path);
  EXPECT_EQ(second.phase_count(), 25);
  second.run(35);

  const auto ur = final_profile(ref);
  const auto uc = final_profile(second);
  for (std::size_t j = 0; j < ur.size(); ++j)
    EXPECT_DOUBLE_EQ(uc[j], ur[j]) << j;
  for (std::size_t c = 0; c < 2; ++c)
    EXPECT_DOUBLE_EQ(owned_mass(second.slab(), c),
                     owned_mass(ref.slab(), c));
}

TEST(Checkpoint, MismatchedDomainRejected) {
  PathGuard g(temp_path("ckpt_dom.bin"));
  Simulation sim(kGrid, fluid());
  sim.initialize_uniform();
  sim.save_checkpoint(g.path);
  Simulation other(Extents{10, 6, 4}, fluid());
  EXPECT_THROW(other.restore_checkpoint(g.path), slipflow::contract_error);
}

TEST(Checkpoint, MismatchedComponentsRejected) {
  PathGuard g(temp_path("ckpt_comp.bin"));
  Simulation sim(kGrid, fluid());
  sim.initialize_uniform();
  sim.save_checkpoint(g.path);
  Simulation other(kGrid, FluidParams::single_component());
  EXPECT_THROW(other.restore_checkpoint(g.path), slipflow::contract_error);
}

TEST(Checkpoint, GarbageFileRejected) {
  PathGuard g(temp_path("ckpt_garbage.bin"));
  {
    std::ofstream out(g.path, std::ios::binary);
    out << "this is not a checkpoint at all, not even close......";
  }
  Simulation sim(kGrid, fluid());
  EXPECT_THROW(sim.restore_checkpoint(g.path), slipflow::contract_error);
}

TEST(Checkpoint, MissingFileRejected) {
  Simulation sim(kGrid, fluid());
  EXPECT_THROW(sim.restore_checkpoint(temp_path("ckpt_nope.bin")),
               slipflow::contract_error);
}

TEST(Checkpoint, UncheckpointedSimulationRejected) {
  Simulation sim(kGrid, fluid());
  EXPECT_THROW(sim.save_checkpoint(temp_path("ckpt_uninit.bin")),
               slipflow::contract_error);
}

namespace {

/// Run `ranks` ranks for `phases` phases starting from a checkpoint (or
/// uniform init when path empty), optionally saving at the end; returns
/// the rank-0 velocity profile.
std::vector<double> parallel_leg(int ranks, int phases,
                                 const std::string& load_path,
                                 const std::string& save_path) {
  sim::RunnerConfig cfg;
  cfg.global = kGrid;
  cfg.fluid = fluid();
  std::vector<double> profile;
  std::mutex mu;
  transport::run_ranks(ranks, [&](transport::Communicator& comm) {
    sim::ParallelLbm run(cfg, comm);
    if (load_path.empty())
      run.initialize_uniform();
    else
      run.load_checkpoint(load_path);
    run.run(phases);
    if (!save_path.empty()) run.save_checkpoint(save_path, phases);
    auto u = run.gather_velocity_profile_y(kGrid.nx / 2, 2);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      profile = std::move(u);
    }
  });
  return profile;
}

}  // namespace

TEST(Checkpoint, ParallelRestartAcrossRankCounts) {
  // save from 3 ranks, restart on 2 and on 4 — all must match the
  // straight-through sequential run exactly
  PathGuard g(temp_path("ckpt_ranks.bin"));
  Simulation ref(kGrid, fluid());
  ref.initialize_uniform();
  ref.run(40);
  const auto ur = final_profile(ref);

  (void)parallel_leg(3, 15, "", g.path);  // first 15 phases on 3 ranks
  const auto u2 = parallel_leg(2, 25, g.path, "");
  const auto u4 = parallel_leg(4, 25, g.path, "");
  ASSERT_EQ(u2.size(), ur.size());
  for (std::size_t j = 0; j < ur.size(); ++j) {
    EXPECT_DOUBLE_EQ(u2[j], ur[j]) << j;
    EXPECT_DOUBLE_EQ(u4[j], ur[j]) << j;
  }
}

TEST(Checkpoint, SequentialToParallelHandoff) {
  PathGuard g(temp_path("ckpt_handoff.bin"));
  Simulation ref(kGrid, fluid());
  ref.initialize_uniform();
  ref.run(30);
  const auto ur = final_profile(ref);

  Simulation first(kGrid, fluid());
  first.initialize_uniform();
  first.run(10);
  first.save_checkpoint(g.path);

  const auto up = parallel_leg(3, 20, g.path, "");
  for (std::size_t j = 0; j < ur.size(); ++j)
    EXPECT_DOUBLE_EQ(up[j], ur[j]) << j;
}
