// Steady-state monitor and Simulation::run_until_steady.

#include <gtest/gtest.h>

#include <cmath>

#include "lbm/convergence.hpp"
#include "lbm/observables.hpp"
#include "lbm/simulation.hpp"

using namespace slipflow::lbm;

TEST(SteadyMonitor, FirstCheckNeverConverges) {
  Simulation sim(Extents{4, 8, 4}, FluidParams::single_component(1.0, 0.0));
  sim.initialize_uniform();
  SteadyStateMonitor m(1e-3);
  EXPECT_FALSE(m.check(sim.slab()));
  EXPECT_TRUE(std::isinf(m.last_residual()));
}

TEST(SteadyMonitor, QuiescentFluidConvergesImmediately) {
  Simulation sim(Extents{4, 8, 4}, FluidParams::single_component(1.0, 0.0));
  sim.initialize_uniform();
  SteadyStateMonitor m(1e-6);
  m.check(sim.slab());
  sim.run(5);
  EXPECT_TRUE(m.check(sim.slab()));
}

TEST(SteadyMonitor, DevelopingFlowIsNotConverged) {
  Simulation sim(Extents{4, 15, 4}, FluidParams::single_component(1.0, 1e-5),
                 nullptr, true, false);
  sim.initialize_uniform();
  SteadyStateMonitor m(1e-10);
  m.check(sim.slab());
  sim.run(20);  // still accelerating from rest
  EXPECT_FALSE(m.check(sim.slab()));
  EXPECT_GT(m.last_residual(), 1e-4);
}

TEST(SteadyMonitor, ResidualDecreasesAsFlowDevelops) {
  Simulation sim(Extents{4, 15, 4}, FluidParams::single_component(1.0, 1e-5),
                 nullptr, true, false);
  sim.initialize_uniform();
  SteadyStateMonitor m(1e-14);
  m.check(sim.slab());
  sim.run(100);
  m.check(sim.slab());
  const double early = m.last_residual();
  sim.run(2000);
  m.check(sim.slab());
  sim.run(100);
  m.check(sim.slab());
  const double late = m.last_residual();
  EXPECT_LT(late, 0.1 * early);
}

TEST(SteadyMonitor, ResetForgetsBaseline) {
  Simulation sim(Extents{4, 8, 4}, FluidParams::single_component(1.0, 0.0));
  sim.initialize_uniform();
  SteadyStateMonitor m(1e-6);
  m.check(sim.slab());
  m.reset();
  EXPECT_FALSE(m.check(sim.slab()));  // baseline gone
}

TEST(RunUntilSteady, StopsEarlyOnSteadyFlow) {
  Simulation sim(Extents{4, 11, 4}, FluidParams::single_component(1.0, 1e-5),
                 nullptr, true, false);
  sim.initialize_uniform();
  const int done = sim.run_until_steady(20000, 1e-9, 50);
  EXPECT_LT(done, 20000);          // converged before the cap
  EXPECT_GT(done, 200);            // but not instantly
  // and the result is the Poiseuille steady state
  const auto u = velocity_profile_y(sim.slab(), 1, 2);
  const double umax = *std::max_element(u.begin(), u.end());
  const double nu = 1.0 / 6.0;
  const double expect = 1e-5 / (2 * nu) * (11.0 * 11.0 / 4.0);
  EXPECT_NEAR(umax, expect, 0.03 * expect);
}

TEST(RunUntilSteady, RespectsMaxPhases) {
  Simulation sim(Extents{4, 15, 4}, FluidParams::single_component(1.0, 1e-5),
                 nullptr, true, false);
  sim.initialize_uniform();
  const int done = sim.run_until_steady(120, 1e-14, 40);
  EXPECT_EQ(done, 120);
  EXPECT_EQ(sim.phase_count(), 120);
}

TEST(SlipLength, NoSlipProfileGivesNearZero) {
  // parabola through the half-way wall: u(j) ~ (j+0.5)(n-0.5-j)
  std::vector<double> u;
  for (int j = 0; j < 16; ++j)
    u.push_back((j + 0.5) * (15.5 - j));
  EXPECT_NEAR(navier_slip_length(u), 0.0, 0.15);
}

TEST(SlipLength, LinearCouettegivesWallIntercept) {
  // u(y) = a (y + b): slope a, wall value a*b -> slip length b
  std::vector<double> u;
  const double a = 0.01, b = 3.0;
  for (int j = 0; j < 12; ++j) u.push_back(a * ((j + 0.5) + b));
  EXPECT_NEAR(navier_slip_length(u), b, 1e-9);
}

TEST(SlipLength, HydrophobicChannelHasPositiveSlipLength) {
  FluidParams p = FluidParams::microchannel_defaults();
  Simulation sim(Extents{6, 20, 10}, std::move(p));
  sim.initialize_uniform();
  sim.run(2000);
  const auto u = velocity_profile_y(sim.slab(), 2, 5);
  EXPECT_GT(navier_slip_length(u), 0.2);
}
