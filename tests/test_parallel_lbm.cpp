// Parallel runner vs sequential reference: with static decomposition the
// parallel multicomponent LBM must reproduce the sequential fields
// exactly (same per-cell arithmetic, just distributed).

#include <gtest/gtest.h>

#include <mutex>

#include "lbm/observables.hpp"
#include "lbm/simulation.hpp"
#include "sim/parallel_lbm.hpp"
#include "transport/thread_comm.hpp"

using namespace slipflow;
using namespace slipflow::lbm;
using slipflow::sim::ParallelLbm;
using slipflow::sim::RunnerConfig;

namespace {

const Extents kGrid{16, 6, 4};

RunnerConfig base_runner() {
  RunnerConfig cfg;
  cfg.global = kGrid;
  cfg.fluid = FluidParams::microchannel_defaults(0.05, 1.5, 0.03, 1.0, 2e-5);
  cfg.policy = "none";
  return cfg;
}

/// Sequential reference fields after `phases` phases.
struct Reference {
  std::vector<std::vector<double>> water;  // per gx: density profile
  std::vector<std::vector<double>> ux;     // per gx: velocity profile
  double mass0, mass1;
};

Reference sequential_reference(int phases) {
  Simulation sim(kGrid, base_runner().fluid);
  sim.initialize_uniform();
  sim.run(phases);
  Reference ref;
  for (index_t gx = 0; gx < kGrid.nx; ++gx) {
    ref.water.push_back(density_profile_y(sim.slab(), 0, gx, 2));
    ref.ux.push_back(velocity_profile_y(sim.slab(), gx, 2));
  }
  ref.mass0 = owned_mass(sim.slab(), 0);
  ref.mass1 = owned_mass(sim.slab(), 1);
  return ref;
}

/// Run the parallel code on `ranks` ranks and collect the same profiles.
Reference parallel_reference(int ranks, int phases, RunnerConfig cfg) {
  Reference out;
  out.water.resize(static_cast<std::size_t>(kGrid.nx));
  out.ux.resize(static_cast<std::size_t>(kGrid.nx));
  std::mutex mu;
  transport::run_ranks(ranks, [&](transport::Communicator& comm) {
    ParallelLbm run(cfg, comm);
    run.initialize_uniform();
    run.run(phases);
    const double m0 = run.global_mass(0);
    const double m1 = run.global_mass(1);
    for (index_t gx = 0; gx < kGrid.nx; ++gx) {
      auto w = run.gather_density_profile_y(0, gx, 2);
      auto u = run.gather_velocity_profile_y(gx, 2);
      if (comm.rank() == 0) {
        std::lock_guard<std::mutex> lk(mu);
        out.water[static_cast<std::size_t>(gx)] = std::move(w);
        out.ux[static_cast<std::size_t>(gx)] = std::move(u);
        out.mass0 = m0;
        out.mass1 = m1;
      }
    }
  });
  return out;
}

void expect_identical(const Reference& a, const Reference& b) {
  for (index_t gx = 0; gx < kGrid.nx; ++gx) {
    const auto ux = static_cast<std::size_t>(gx);
    ASSERT_EQ(a.water[ux].size(), b.water[ux].size());
    for (std::size_t j = 0; j < a.water[ux].size(); ++j) {
      EXPECT_DOUBLE_EQ(a.water[ux][j], b.water[ux][j])
          << "density gx=" << gx << " y=" << j;
      EXPECT_DOUBLE_EQ(a.ux[ux][j], b.ux[ux][j])
          << "velocity gx=" << gx << " y=" << j;
    }
  }
}

}  // namespace

TEST(InitialExtent, CoversDomainWithoutGaps) {
  for (int size = 1; size <= 7; ++size) {
    index_t expect_begin = 0;
    index_t total = 0;
    for (int r = 0; r < size; ++r) {
      const auto [begin, mine] = sim::initial_extent(16, size, r);
      EXPECT_EQ(begin, expect_begin);
      EXPECT_GE(mine, 1);
      expect_begin += mine;
      total += mine;
    }
    EXPECT_EQ(total, 16);
  }
}

TEST(InitialExtent, RemainderGoesToLowRanks) {
  const auto [b0, n0] = sim::initial_extent(10, 4, 0);
  const auto [b3, n3] = sim::initial_extent(10, 4, 3);
  EXPECT_EQ(n0, 3);
  EXPECT_EQ(n3, 2);
  EXPECT_EQ(b0, 0);
  EXPECT_EQ(b3, 8);
}

TEST(ParallelLbm, SingleRankMatchesSequential) {
  const auto seq = sequential_reference(30);
  const auto par = parallel_reference(1, 30, base_runner());
  expect_identical(seq, par);
}

TEST(ParallelLbm, TwoRanksMatchSequentialExactly) {
  const auto seq = sequential_reference(30);
  const auto par = parallel_reference(2, 30, base_runner());
  expect_identical(seq, par);
  // masses are reduced in rank order, so only summation order differs
  EXPECT_NEAR(par.mass0, seq.mass0, 1e-12 * seq.mass0);
  EXPECT_NEAR(par.mass1, seq.mass1, 1e-12 * std::max(seq.mass1, 1.0));
}

TEST(ParallelLbm, FourRanksMatchSequentialExactly) {
  const auto seq = sequential_reference(25);
  const auto par = parallel_reference(4, 25, base_runner());
  expect_identical(seq, par);
}

TEST(ParallelLbm, UnevenDecompositionMatches) {
  // 16 planes over 3 ranks: 6/5/5
  const auto seq = sequential_reference(20);
  const auto par = parallel_reference(3, 20, base_runner());
  expect_identical(seq, par);
}

TEST(ParallelLbm, MassConservedAcrossRanks) {
  transport::run_ranks(3, [&](transport::Communicator& comm) {
    ParallelLbm run(base_runner(), comm);
    run.initialize_uniform();
    const double m0 = run.global_mass(0);
    run.run(40);
    EXPECT_NEAR(run.global_mass(0), m0, 1e-9 * m0);
  });
}

TEST(ParallelLbm, StatsAccountAllPlanes) {
  transport::run_ranks(3, [&](transport::Communicator& comm) {
    ParallelLbm run(base_runner(), comm);
    run.initialize_uniform();
    run.run(10);
    const auto stats = run.gather_stats();
    long long planes = 0;
    for (const auto& s : stats) planes += s.planes;
    EXPECT_EQ(planes, kGrid.nx);
    for (const auto& s : stats) {
      EXPECT_GT(s.compute_seconds, 0.0);
      EXPECT_EQ(s.planes_sent, 0);  // no remapping configured
    }
  });
}

TEST(ParallelLbm, RequiresInitialization) {
  transport::run_ranks(2, [&](transport::Communicator& comm) {
    ParallelLbm run(base_runner(), comm);
    EXPECT_THROW(run.run(1), slipflow::contract_error);
    run.initialize_uniform();  // leave ranks consistent before exit
  });
}

TEST(ParallelLbm, MovingWallsMatchSequential) {
  // moving-wall bounce-back must be decomposition-invariant too
  RunnerConfig cfg = base_runner();
  cfg.wall_velocity[1] = lbm::Vec3{0.03, 0.0, 0.0};  // y_high wall

  auto geom = std::make_shared<ChannelGeometry>(kGrid);
  geom->set_wall_velocity(ChannelGeometry::Wall::y_high,
                          Vec3{0.03, 0.0, 0.0});
  Simulation seq(std::shared_ptr<const ChannelGeometry>(std::move(geom)),
                 cfg.fluid);
  seq.initialize_uniform();
  seq.run(25);

  const auto par = parallel_reference(3, 25, cfg);
  for (index_t gx = 0; gx < kGrid.nx; ++gx) {
    const auto u = velocity_profile_y(seq.slab(), gx, 2);
    const auto& up = par.ux[static_cast<std::size_t>(gx)];
    for (std::size_t j = 0; j < u.size(); ++j)
      EXPECT_DOUBLE_EQ(up[j], u[j]) << gx << "," << j;
  }
}

TEST(ParallelLbm, WallPatternMatchesSequential) {
  RunnerConfig cfg = base_runner();
  cfg.fluid.wall_pattern = [](index_t gx, index_t, index_t) {
    return gx % 8 < 4 ? 1.0 : 0.2;
  };
  Simulation seq(kGrid, cfg.fluid);
  seq.initialize_uniform();
  seq.run(25);
  const auto par = parallel_reference(3, 25, cfg);
  for (index_t gx = 0; gx < kGrid.nx; ++gx) {
    const auto w = density_profile_y(seq.slab(), 0, gx, 2);
    const auto& wp = par.water[static_cast<std::size_t>(gx)];
    for (std::size_t j = 0; j < w.size(); ++j)
      EXPECT_DOUBLE_EQ(wp[j], w[j]) << gx << "," << j;
  }
}

TEST(ParallelLbm, MrtComponentsMatchSequential) {
  RunnerConfig cfg = base_runner();
  for (auto& c : cfg.fluid.components) c.collision = CollisionModel::mrt;
  const auto par = parallel_reference(3, 20, cfg);
  Simulation seq(kGrid, cfg.fluid);
  seq.initialize_uniform();
  seq.run(20);
  for (index_t gx = 0; gx < kGrid.nx; ++gx) {
    const auto u = velocity_profile_y(seq.slab(), gx, 2);
    const auto& up = par.ux[static_cast<std::size_t>(gx)];
    for (std::size_t j = 0; j < u.size(); ++j)
      EXPECT_DOUBLE_EQ(up[j], u[j]) << gx << "," << j;
  }
}
