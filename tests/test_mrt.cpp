// MRT collision operator: moment-basis algebra, exact BGK equivalence
// when all rates coincide, conservation, and physics equivalence at the
// hydrodynamic level (same viscosity => same steady Poiseuille flow).

#include <gtest/gtest.h>

#include <cmath>

#include "lbm/mrt.hpp"
#include "lbm/observables.hpp"
#include "lbm/simulation.hpp"
#include "util/rng.hpp"

using namespace slipflow::lbm;

namespace {
const MrtOperator& op() { return MrtOperator::instance(); }
}  // namespace

TEST(MrtBasis, RowsAreMutuallyOrthogonal) {
  for (int r = 0; r < kQ; ++r) {
    for (int s = 0; s < r; ++s) {
      double dot = 0.0;
      for (int d = 0; d < kQ; ++d) dot += op().basis(r, d) * op().basis(s, d);
      EXPECT_NEAR(dot, 0.0, 1e-9) << "rows " << r << "," << s;
    }
  }
}

TEST(MrtBasis, DensityRowIsAllOnes) {
  for (int d = 0; d < kQ; ++d) EXPECT_DOUBLE_EQ(op().basis(0, d), 1.0);
}

TEST(MrtBasis, MomentumRowsAreVelocities) {
  for (int d = 0; d < kQ; ++d) {
    EXPECT_DOUBLE_EQ(op().basis(3, d), kCx[d]);
    EXPECT_DOUBLE_EQ(op().basis(5, d), kCy[d]);
    EXPECT_DOUBLE_EQ(op().basis(7, d), kCz[d]);
  }
}

TEST(MrtBasis, NormsMatchRowSelfDot) {
  for (int r = 0; r < kQ; ++r) {
    double n2 = 0.0;
    for (int d = 0; d < kQ; ++d) n2 += op().basis(r, d) * op().basis(r, d);
    EXPECT_NEAR(op().row_norm2(r), n2, 1e-12);
  }
}

TEST(MrtCollide, IdentityWhenAllRatesZero) {
  // zero rates relax nothing: f_out == f_in
  slipflow::util::Rng rng(1);
  double fin[kQ], fout[kQ];
  for (int d = 0; d < kQ; ++d) fin[d] = rng.uniform(0.01, 0.2);
  const MrtRates zero{0, 0, 0, 0, 0, 0, 0};
  op().collide_cell(fin, fout, 1.0, Vec3{0.02, -0.01, 0.03}, zero);
  for (int d = 0; d < kQ; ++d) EXPECT_NEAR(fout[d], fin[d], 1e-13);
}

TEST(MrtCollide, EquivalentRatesReproduceBgkExactly) {
  slipflow::util::Rng rng(2);
  for (int rep = 0; rep < 20; ++rep) {
    const double tau = rng.uniform(0.6, 2.0);
    double fin[kQ], fout[kQ];
    double n = 0.0;
    for (int d = 0; d < kQ; ++d) {
      fin[d] = rng.uniform(0.01, 0.3);
      n += fin[d];
    }
    const Vec3 u{rng.uniform(-0.05, 0.05), rng.uniform(-0.05, 0.05),
                 rng.uniform(-0.05, 0.05)};
    op().collide_cell(fin, fout, n, u, MrtRates::bgk_equivalent(tau));
    for (int d = 0; d < kQ; ++d) {
      const double bgk = fin[d] - (fin[d] - equilibrium(d, n, u)) / tau;
      EXPECT_NEAR(fout[d], bgk, 1e-12) << "tau=" << tau << " d=" << d;
    }
  }
}

TEST(MrtCollide, ConservesMassAndMomentum) {
  slipflow::util::Rng rng(3);
  double fin[kQ], fout[kQ];
  double n = 0.0;
  for (int d = 0; d < kQ; ++d) {
    fin[d] = rng.uniform(0.01, 0.3);
    n += fin[d];
  }
  op().collide_cell(fin, fout, n, Vec3{0.01, 0.02, -0.01},
                    MrtRates::for_tau(0.8));
  double m_in = 0, m_out = 0;
  Vec3 p_in{}, p_out{};
  for (int d = 0; d < kQ; ++d) {
    m_in += fin[d];
    m_out += fout[d];
    p_in += fin[d] * Vec3{double(kCx[d]), double(kCy[d]), double(kCz[d])};
    p_out += fout[d] * Vec3{double(kCx[d]), double(kCy[d]), double(kCz[d])};
  }
  EXPECT_NEAR(m_out, m_in, 1e-12);
  // NOTE: momentum moments relax toward j_eq = n*u with u the equilibrium
  // velocity, which here differs from the populations' own first moment
  // only through the force shift; with u matching the populations the
  // momentum must be conserved. Rebuild that case:
  Vec3 u_self = (1.0 / n) * p_in;
  op().collide_cell(fin, fout, n, u_self, MrtRates::for_tau(0.8));
  Vec3 p2{};
  for (int d = 0; d < kQ; ++d)
    p2 += fout[d] * Vec3{double(kCx[d]), double(kCy[d]), double(kCz[d])};
  EXPECT_NEAR(p2.x, p_in.x, 1e-12);
  EXPECT_NEAR(p2.y, p_in.y, 1e-12);
  EXPECT_NEAR(p2.z, p_in.z, 1e-12);
}

namespace {

Simulation poiseuille_sim(CollisionModel model, double tau = 0.8) {
  FluidParams p = FluidParams::single_component(tau, 1e-5);
  p.components[0].collision = model;
  Simulation sim(Extents{4, 15, 4}, std::move(p), nullptr, true, false);
  sim.initialize_uniform();
  return sim;
}

}  // namespace

TEST(MrtPhysics, SamePoiseuilleProfileAsBgk) {
  // the MRT ghost-mode rates must not change the hydrodynamics: steady
  // Poiseuille flow depends only on the viscosity (s_nu = 1/tau).
  Simulation bgk = poiseuille_sim(CollisionModel::bgk);
  Simulation mrt = poiseuille_sim(CollisionModel::mrt);
  bgk.run(3000);
  mrt.run(3000);
  const auto ub = velocity_profile_y(bgk.slab(), 1, 2);
  const auto um = velocity_profile_y(mrt.slab(), 1, 2);
  const double umax = *std::max_element(ub.begin(), ub.end());
  for (std::size_t j = 0; j < ub.size(); ++j)
    EXPECT_NEAR(um[j], ub[j], 0.01 * umax) << "j=" << j;
}

TEST(MrtPhysics, MassConservedInSlabRun) {
  Simulation sim = poiseuille_sim(CollisionModel::mrt);
  const double m0 = owned_mass(sim.slab(), 0);
  sim.run(500);
  EXPECT_NEAR(owned_mass(sim.slab(), 0), m0, 1e-9 * m0);
}

TEST(MrtPhysics, MixedOperatorsPerComponent) {
  // water on BGK, trace air on MRT — the per-component dispatch the
  // microchannel application wants
  FluidParams p = FluidParams::microchannel_defaults();
  p.components[1].collision = CollisionModel::mrt;
  Simulation sim(Extents{6, 16, 8}, std::move(p));
  sim.initialize_uniform();
  sim.run(400);
  const auto w = density_profile_y(sim.slab(), 0, 2, 4);
  for (double v : w) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
  }
  // the slip mechanism still works
  EXPECT_LT(w.front(), w[8]);
}

TEST(MrtPhysics, BoundedOnStiffTraceComponent) {
  // the stiff configuration (trace air at tau=0.52 under the full wall
  // force) — MRT must keep every density finite and essentially
  // non-negative over a long run
  FluidParams p = FluidParams::microchannel_defaults(0.3, 2.5, 0.03, 1.0);
  p.components[1].tau = 0.52;
  p.components[1].collision = CollisionModel::mrt;
  Simulation sim(Extents{6, 20, 10}, std::move(p));
  sim.initialize_uniform();
  sim.run(800);
  const Extents& st = sim.slab().storage();
  for (index_t y = 0; y < st.ny; ++y)
    for (index_t z = 0; z < st.nz; ++z) {
      const double air = sim.slab().density(1)[st.idx(2, y, z)];
      const double water = sim.slab().density(0)[st.idx(2, y, z)];
      EXPECT_TRUE(std::isfinite(air));
      EXPECT_TRUE(std::isfinite(water));
      EXPECT_GT(air, -0.05);  // transient undershoot only, never blow-up
      EXPECT_GT(water, 0.0);
      EXPECT_LT(water, 3.0);
    }
}
