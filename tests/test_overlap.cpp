// Communication/computation overlap: the overlapped, multithreaded step
// schedule must be BYTE-identical to the legacy blocking one — same
// masses, same migration history, same velocity/density profiles — for
// every backend, rank count and thread count. Determinism rests on the
// same injected CountingClocks as the cross-backend suite; the filtered
// remapping policy is left ON so the comparison covers plane migrations
// and the plan rebuilds they force mid-run.
//
// Naming note: tests that fork socket children carry "Socket" in their
// name so the TSan CI job can exclude them (fork + TSan is unsupported).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "sim/worker.hpp"
#include "transport/launcher.hpp"
#include "transport/serial_comm.hpp"
#include "transport/thread_comm.hpp"

using namespace slipflow;

namespace {

constexpr int kPhases = 40;

/// Same lattice/remap/clock setup as the cross-backend determinism test:
/// rank 1's clock runs 4x slower, so the filtered policy migrates planes
/// (and rebuilds streaming plans) mid-run on multi-rank configurations.
sim::RunnerConfig base_config(sim::StepMode step, int threads) {
  sim::RunnerConfig cfg;
  cfg.global = lbm::Extents{16, 6, 4};
  cfg.fluid = lbm::FluidParams::microchannel_defaults();
  cfg.policy = "filtered";
  cfg.remap_interval = 5;
  cfg.balance.window = 3;
  cfg.balance.min_transfer_points = 24;
  cfg.step = step;
  cfg.threads = threads;
  cfg.clock_factory = [](int rank) -> std::shared_ptr<obs::Clock> {
    return std::make_shared<obs::CountingClock>(rank == 1 ? 4e-3 : 1e-3);
  };
  return cfg;
}

std::string run_threads(int ranks, sim::StepMode step, int threads,
                        obs::MetricsRegistry* metrics = nullptr) {
  sim::RunnerConfig cfg = base_config(step, threads);
  cfg.metrics = metrics;
  std::string observables;
  transport::run_ranks(ranks, [&](transport::Communicator& comm) {
    sim::ParallelLbm run(cfg, comm);
    run.initialize_uniform();
    run.run(kPhases);
    const std::string obs = sim::collect_observables(run, comm, cfg.global);
    if (comm.rank() == 0) observables = obs;
  });
  return observables;
}

std::string run_serial(sim::StepMode step, int threads) {
  const sim::RunnerConfig cfg = base_config(step, threads);
  transport::SerialComm comm;
  sim::ParallelLbm run(cfg, comm);
  run.initialize_uniform();
  run.run(kPhases);
  return sim::collect_observables(run, comm, cfg.global);
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "slipflow_" + name + "." +
         std::to_string(::getpid());
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << "missing " << path;
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

/// Fork real worker processes with the given step schedule and transport
/// ("socket" or "shm") and return rank 0's observables.
std::string run_workers(int ranks, const std::string& step, int threads,
                        const std::string& transport) {
  const std::string out = temp_path("obs_overlap_" + step + "_" + transport);
  transport::LaunchConfig lc;
  lc.ranks = ranks;
  lc.transport = transport;
  lc.worker_command = {SLIPFLOW_WORKER_EXE,
                       "--nx=16",
                       "--ny=6",
                       "--nz=4",
                       "--phases=" + std::to_string(kPhases),
                       "--policy=filtered",
                       "--remap-interval=5",
                       "--window=3",
                       "--min-transfer=24",
                       "--clock=counting",
                       "--clock-step=1e-3",
                       "--slow-clock-rank=1",
                       "--slow-clock-factor=4",
                       "--recv-timeout=20",
                       "--step=" + step,
                       "--threads=" + std::to_string(threads),
                       "--observables-out=" + out};
  lc.heartbeat_interval = 0.1;
  lc.heartbeat_grace = 10.0;
  lc.wall_clock_timeout = 90.0;
  const transport::LaunchResult res = transport::launch_workers(lc);
  EXPECT_TRUE(res.ok) << res.diagnostic;
  const std::string obs = read_file(out);
  std::remove(out.c_str());
  return obs;
}

std::string run_sockets(int ranks, const std::string& step, int threads) {
  return run_workers(ranks, step, threads, "socket");
}

}  // namespace

// --- single rank: overlap touches only the kernel split, no halos fly ---

TEST(Overlap, SerialRankMatchesBlockingForEveryThreadCount) {
  const std::string blocking = run_serial(sim::StepMode::blocking, 1);
  ASSERT_FALSE(blocking.empty());
  for (int threads : {1, 2, 4})
    EXPECT_EQ(run_serial(sim::StepMode::overlap, threads), blocking)
        << "overlap with " << threads << " threads diverged on SerialComm";
}

// --- thread backend: ranks x threads sweep, migrations included ---

class OverlapThreadRanks : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Ranks, OverlapThreadRanks, ::testing::Values(2, 4),
                         [](const auto& pinfo) {
                           return "Ranks" + std::to_string(pinfo.param);
                         });

TEST_P(OverlapThreadRanks, OverlapMatchesBlockingForEveryThreadCount) {
  const int ranks = GetParam();
  const std::string blocking =
      run_threads(ranks, sim::StepMode::blocking, 1);
  ASSERT_FALSE(blocking.empty());
  // the slowed rank must actually migrate planes, or this test would not
  // cover the mid-run plan rebuild path
  if (ranks == 4) {
    EXPECT_EQ(blocking.find("rank 1 planes 4 sent 0"), std::string::npos)
        << "expected rank 1 to shed planes:\n"
        << blocking.substr(0, 300);
  }
  for (int threads : {1, 2, 4})
    EXPECT_EQ(run_threads(ranks, sim::StepMode::overlap, threads), blocking)
        << "overlap with " << threads << " threads diverged at " << ranks
        << " ranks";
}

// --- overlap metrics: the new counters are published and consistent ---

TEST(Overlap, PublishesInteriorHaloWaitAndPerLaneCounters) {
  constexpr int kRanks = 2, kThreads = 2;
  obs::MetricsRegistry reg(kRanks);
  run_threads(kRanks, sim::StepMode::overlap, kThreads, &reg);
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_GT(reg.counter(r, "time/interior"), 0.0);
    EXPECT_GT(reg.counter(r, "time/halo_wait"), 0.0);
    ASSERT_TRUE(reg.has_gauge(r, "overlap_efficiency"));
    const double eff = reg.gauge(r, "overlap_efficiency");
    EXPECT_GT(eff, 0.0);
    EXPECT_LE(eff, 1.0);
    // every fluid cell's collide+stream belongs to exactly one lane, so
    // the per-lane counters partition the rank's cells_updated total
    double lane_sum = 0.0;
    for (int t = 0; t < kThreads; ++t)
      lane_sum += reg.counter(r, "thread/" + std::to_string(t) +
                                     "/cells_updated");
    EXPECT_DOUBLE_EQ(lane_sum, reg.counter(r, "cells_updated"));
  }
}

TEST(Overlap, BlockingModePublishesNoOverlapMetrics) {
  obs::MetricsRegistry reg(2);
  run_threads(2, sim::StepMode::blocking, 1, &reg);
  EXPECT_EQ(reg.counter(0, "time/interior"), 0.0);
  EXPECT_EQ(reg.counter(0, "time/halo_wait"), 0.0);
  EXPECT_FALSE(reg.has_gauge(0, "overlap_efficiency"));
}

// --- real processes (named "Socket" so the TSan job can skip them) ---

TEST(OverlapSocket, WorkersMatchThreadBackendByByte) {
  const std::string socket_obs = run_sockets(4, "overlap", 2);
  ASSERT_FALSE(socket_obs.empty());
  EXPECT_EQ(socket_obs, run_threads(4, sim::StepMode::overlap, 2))
      << "overlapped worker processes diverged from in-process reference";
}

TEST(OverlapSocket, BlockingFlagStillSupported) {
  const std::string socket_obs = run_sockets(2, "blocking", 1);
  ASSERT_FALSE(socket_obs.empty());
  EXPECT_EQ(socket_obs, run_threads(2, sim::StepMode::blocking, 1));
}

// --- differential transport matrix (forks, hence the "Socket" name) ---

TEST(OverlapSocket, ShmWorkersMatchThreadAndSocketByByte) {
  // The tightest cross-transport guarantee in the suite: a 4-rank
  // overlapped run with live plane migrations and mid-run plan rebuilds
  // must produce byte-identical observables whether halos ride threads,
  // Unix-domain sockets, or shared-memory rings.
  const std::string thread_obs = run_threads(4, sim::StepMode::overlap, 2);
  ASSERT_FALSE(thread_obs.empty());
  EXPECT_EQ(run_workers(4, "overlap", 2, "shm"), thread_obs)
      << "shm workers diverged from the thread backend";
  EXPECT_EQ(run_workers(4, "overlap", 2, "socket"), thread_obs)
      << "socket workers diverged from the thread backend";
}

TEST(OverlapSocket, AutoTransportResolvesAndMatches) {
  // "auto" must pick shm here (the socket dir is mmap-able tmpfs/disk)
  // and still land on the same bytes.
  const std::string auto_obs = run_workers(2, "overlap", 2, "auto");
  ASSERT_FALSE(auto_obs.empty());
  EXPECT_EQ(auto_obs, run_threads(2, sim::StepMode::overlap, 2));
}
