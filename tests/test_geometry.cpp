// Channel geometry: wall/solid classification, periodic wrapping, wall
// distances and the hydrophobic wall acceleration field.

#include <gtest/gtest.h>

#include <cmath>

#include "lbm/geometry.hpp"

using namespace slipflow::lbm;

TEST(Geometry, InteriorIsFluid) {
  const ChannelGeometry g(Extents{4, 4, 4});
  for (index_t y = 0; y < 4; ++y)
    for (index_t z = 0; z < 4; ++z) EXPECT_FALSE(g.solid(1, y, z));
}

TEST(Geometry, OutsideYZIsSolid) {
  const ChannelGeometry g(Extents{4, 4, 4});
  EXPECT_TRUE(g.solid(0, -1, 2));
  EXPECT_TRUE(g.solid(0, 4, 2));
  EXPECT_TRUE(g.solid(0, 2, -1));
  EXPECT_TRUE(g.solid(0, 2, 4));
}

TEST(Geometry, XIsPeriodicNeverSolid) {
  const ChannelGeometry g(Extents{4, 4, 4});
  EXPECT_FALSE(g.solid(-1, 2, 2));
  EXPECT_FALSE(g.solid(4, 2, 2));
  EXPECT_FALSE(g.solid(400, 2, 2));
}

TEST(Geometry, WrapX) {
  const ChannelGeometry g(Extents{10, 2, 2});
  EXPECT_EQ(g.wrap_x(-1), 9);
  EXPECT_EQ(g.wrap_x(10), 0);
  EXPECT_EQ(g.wrap_x(-11), 9);
  EXPECT_EQ(g.wrap_x(23), 3);
}

TEST(Geometry, PeriodicYDisablesSideWalls) {
  const ChannelGeometry g(Extents{4, 4, 4}, nullptr, /*walls_y=*/false,
                          /*walls_z=*/true);
  EXPECT_FALSE(g.solid(0, -1, 2));
  EXPECT_FALSE(g.solid(0, 4, 2));
  EXPECT_TRUE(g.solid(0, 2, -1));
}

TEST(Geometry, ObstacleMaskIsHonored) {
  const ChannelGeometry g(Extents{4, 4, 4}, [](index_t x, index_t y, index_t z) {
    return x == 1 && y == 1 && z == 1;
  });
  EXPECT_TRUE(g.has_obstacles());
  EXPECT_TRUE(g.solid(1, 1, 1));
  EXPECT_FALSE(g.solid(1, 1, 2));
  // obstacle lookups wrap x periodically
  EXPECT_TRUE(g.solid(5, 1, 1));
}

TEST(Geometry, WallDistanceHalfWayPositions) {
  const ChannelGeometry g(Extents{4, 6, 4});
  EXPECT_DOUBLE_EQ(g.wall_distance_y(0), 0.5);
  EXPECT_DOUBLE_EQ(g.wall_distance_y(1), 1.5);
  EXPECT_DOUBLE_EQ(g.wall_distance_y(5), 0.5);  // near the far wall
  EXPECT_DOUBLE_EQ(g.wall_distance_y(3), 2.5);
}

TEST(Geometry, WallDistanceInfiniteWhenPeriodic) {
  const ChannelGeometry g(Extents{4, 6, 4}, nullptr, false, true);
  EXPECT_TRUE(std::isinf(g.wall_distance_y(0)));
  EXPECT_FALSE(std::isinf(g.wall_distance_z(0)));
}

TEST(WallForce, PointsInwardNearLowerWall) {
  const ChannelGeometry g(Extents{4, 10, 10});
  const Vec3 a = g.wall_unit_accel(0, 5, 2.0);
  EXPECT_GT(a.y, 0.0);  // pushed away from the y=low wall, toward +y
}

TEST(WallForce, PointsInwardNearUpperWall) {
  const ChannelGeometry g(Extents{4, 10, 10});
  const Vec3 a = g.wall_unit_accel(9, 5, 2.0);
  EXPECT_LT(a.y, 0.0);
}

TEST(WallForce, AntisymmetricAcrossChannel) {
  const ChannelGeometry g(Extents{4, 10, 8});
  for (index_t y = 0; y < 10; ++y) {
    const Vec3 lo = g.wall_unit_accel(y, 3, 2.5);
    const Vec3 hi = g.wall_unit_accel(9 - y, 3, 2.5);
    EXPECT_NEAR(lo.y, -hi.y, 1e-14);
  }
}

TEST(WallForce, VanishesAtChannelCenterBySymmetry) {
  const ChannelGeometry g(Extents{4, 10, 10});
  // center of even-sized channel is between rows 4 and 5; both rows feel
  // equal-and-opposite pulls that nearly cancel with a long decay
  const Vec3 a4 = g.wall_unit_accel(4, 4, 100.0);
  EXPECT_NEAR(a4.y, 0.0, 0.01);
}

TEST(WallForce, DecaysExponentially) {
  const ChannelGeometry g(Extents{4, 40, 40});
  const double lambda = 3.0;
  const Vec3 a0 = g.wall_unit_accel(0, 20, lambda);
  const Vec3 a3 = g.wall_unit_accel(3, 20, lambda);
  // three lattice units further should decay by ~exp(-3/3) = e^-1
  EXPECT_NEAR(a3.y / a0.y, std::exp(-1.0), 0.01);
}

TEST(WallForce, ZComponentZeroWhenZPeriodic) {
  const ChannelGeometry g(Extents{4, 10, 10}, nullptr, true, false);
  const Vec3 a = g.wall_unit_accel(0, 0, 2.0);
  EXPECT_DOUBLE_EQ(a.z, 0.0);
  EXPECT_GT(a.y, 0.0);
}

TEST(WallForce, MagnitudeBoundedByTwo) {
  // each of the four walls contributes at most exp(-0.5/decay) < 1
  const ChannelGeometry g(Extents{4, 6, 6});
  for (index_t y = 0; y < 6; ++y)
    for (index_t z = 0; z < 6; ++z) {
      const Vec3 a = g.wall_unit_accel(y, z, 2.0);
      EXPECT_LT(std::abs(a.y), 1.0);
      EXPECT_LT(std::abs(a.z), 1.0);
    }
}

TEST(Geometry, RejectsEmptyExtents) {
  EXPECT_THROW(ChannelGeometry(Extents{0, 4, 4}), slipflow::contract_error);
  EXPECT_THROW(ChannelGeometry(Extents{4, 0, 4}), slipflow::contract_error);
}
