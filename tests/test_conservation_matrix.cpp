// Systematic conservation / boundedness sweep: every combination of
// component count, collision operator, wall configuration and driving
// must conserve mass exactly and stay finite. This is the safety net
// behind all feature interactions (e.g. MRT x moving walls x patterns).

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "lbm/observables.hpp"
#include "lbm/simulation.hpp"

using namespace slipflow::lbm;

namespace {

enum class Fluid { single, two_component, liquid_vapor };
enum class WallsCase { both, slit_y, slit_z, moving_top, patterned };

struct Case {
  Fluid fluid;
  CollisionModel collision;
  WallsCase walls;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string s;
  switch (info.param.fluid) {
    case Fluid::single: s += "Single"; break;
    case Fluid::two_component: s += "TwoComp"; break;
    case Fluid::liquid_vapor: s += "LiquidVapor"; break;
  }
  s += info.param.collision == CollisionModel::bgk ? "Bgk" : "Mrt";
  switch (info.param.walls) {
    case WallsCase::both: s += "Walls"; break;
    case WallsCase::slit_y: s += "SlitY"; break;
    case WallsCase::slit_z: s += "SlitZ"; break;
    case WallsCase::moving_top: s += "Moving"; break;
    case WallsCase::patterned: s += "Patterned"; break;
  }
  return s;
}

Simulation build(const Case& c) {
  FluidParams p;
  switch (c.fluid) {
    case Fluid::single: p = FluidParams::single_component(1.0, 1e-5); break;
    case Fluid::two_component: p = FluidParams::microchannel_defaults(); break;
    case Fluid::liquid_vapor: p = FluidParams::liquid_vapor(-5.0); break;
  }
  for (auto& comp : p.components) comp.collision = c.collision;
  if (c.walls == WallsCase::patterned) {
    p.wall_pattern = [](index_t gx, index_t, index_t) {
      return gx % 4 < 2 ? 1.0 : 0.3;
    };
  }

  const Extents e{8, 10, 6};
  const bool wy = c.walls != WallsCase::slit_y;
  const bool wz = c.walls != WallsCase::slit_z;
  if (c.walls == WallsCase::moving_top) {
    auto g = std::make_shared<ChannelGeometry>(e, nullptr, wy, wz);
    g->set_wall_velocity(ChannelGeometry::Wall::y_high, Vec3{0.02, 0, 0});
    return Simulation(std::shared_ptr<const ChannelGeometry>(std::move(g)),
                      std::move(p));
  }
  return Simulation(e, std::move(p), nullptr, wy, wz);
}

}  // namespace

class ConservationMatrix : public ::testing::TestWithParam<Case> {};

TEST_P(ConservationMatrix, MassConservedAndFieldsBounded) {
  Simulation sim = build(GetParam());
  sim.initialize_uniform();
  std::vector<double> mass0;
  for (std::size_t c = 0; c < sim.slab().num_components(); ++c)
    mass0.push_back(owned_mass(sim.slab(), c));
  sim.run(150);
  for (std::size_t c = 0; c < sim.slab().num_components(); ++c) {
    EXPECT_NEAR(owned_mass(sim.slab(), c), mass0[c],
                1e-9 * std::max(mass0[c], 1.0))
        << "component " << c;
  }
  const Extents& st = sim.slab().storage();
  for (index_t lx = 1; lx <= 8; ++lx)
    for (index_t y = 0; y < st.ny; ++y)
      for (index_t z = 0; z < st.nz; ++z) {
        const index_t cell = st.idx(lx, y, z);
        for (std::size_t c = 0; c < sim.slab().num_components(); ++c) {
          const double n = sim.slab().density(c)[cell];
          ASSERT_TRUE(std::isfinite(n));
          ASSERT_LT(std::abs(n), 10.0);
        }
        ASSERT_TRUE(std::isfinite(sim.slab().velocity().at(cell).x));
      }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, ConservationMatrix,
    ::testing::Values(
        Case{Fluid::single, CollisionModel::bgk, WallsCase::both},
        Case{Fluid::single, CollisionModel::bgk, WallsCase::slit_y},
        Case{Fluid::single, CollisionModel::bgk, WallsCase::slit_z},
        Case{Fluid::single, CollisionModel::bgk, WallsCase::moving_top},
        Case{Fluid::single, CollisionModel::mrt, WallsCase::both},
        Case{Fluid::single, CollisionModel::mrt, WallsCase::moving_top},
        Case{Fluid::two_component, CollisionModel::bgk, WallsCase::both},
        Case{Fluid::two_component, CollisionModel::bgk, WallsCase::slit_y},
        Case{Fluid::two_component, CollisionModel::bgk, WallsCase::patterned},
        Case{Fluid::two_component, CollisionModel::mrt, WallsCase::both},
        Case{Fluid::two_component, CollisionModel::mrt, WallsCase::patterned},
        Case{Fluid::liquid_vapor, CollisionModel::bgk, WallsCase::both},
        Case{Fluid::liquid_vapor, CollisionModel::bgk, WallsCase::slit_y},
        Case{Fluid::liquid_vapor, CollisionModel::mrt, WallsCase::both}),
    case_name);
