// util::ThreadPool: the fork/join pool under the hybrid rank x thread
// runner. The properties pinned here are exactly the ones the overlap
// step's determinism argument leans on: slice() partitions are disjoint
// and covering, every lane runs exactly once per generation, lanes == 1
// never touches a thread, and a lane's exception surfaces from run().

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

using slipflow::util::ThreadPool;

TEST(ThreadPoolSlice, PartitionsAreDisjointCoveringAndBalanced) {
  for (int lanes : {1, 2, 3, 4, 7}) {
    for (std::size_t n : {0u, 1u, 2u, 5u, 16u, 97u}) {
      std::size_t expected_begin = 0;
      for (int lane = 0; lane < lanes; ++lane) {
        const auto [b, e] = ThreadPool::slice(n, lane, lanes);
        EXPECT_EQ(b, expected_begin) << "n=" << n << " lane=" << lane;
        EXPECT_LE(b, e);
        // balanced to within one item
        EXPECT_LE(e - b, n / static_cast<std::size_t>(lanes) + 1);
        expected_begin = e;
      }
      EXPECT_EQ(expected_begin, n) << "slices must cover [0, n)";
    }
  }
}

TEST(ThreadPool, EveryLaneRunsExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.lanes(), 4);
  std::vector<std::atomic<int>> hits(4);
  pool.run([&](int lane, int lanes) {
    EXPECT_EQ(lanes, 4);
    hits[static_cast<std::size_t>(lane)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SlicedSumMatchesSerialForAnyLaneCount) {
  std::vector<double> data(1013);
  std::iota(data.begin(), data.end(), 1.0);
  const double serial = std::accumulate(data.begin(), data.end(), 0.0);
  for (int lanes : {1, 2, 4}) {
    ThreadPool pool(lanes);
    std::vector<double> partial(static_cast<std::size_t>(lanes), 0.0);
    pool.run([&](int lane, int k) {
      const auto [b, e] = ThreadPool::slice(data.size(), lane, k);
      for (std::size_t i = b; i < e; ++i)
        partial[static_cast<std::size_t>(lane)] += data[i];
    });
    // per-lane partials fold deterministically in lane order
    double total = 0.0;
    for (double p : partial) total += p;
    EXPECT_DOUBLE_EQ(total, serial) << lanes << " lanes";
  }
}

TEST(ThreadPool, ReusableAcrossManyGenerations) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int gen = 0; gen < 200; ++gen)
    pool.run([&](int, int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 600);
}

TEST(ThreadPool, LaneExceptionRethrownFromRun) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run([](int lane, int) {
                 if (lane == 1) throw std::runtime_error("lane 1 failed");
               }),
               std::runtime_error);
  // the pool survives the failed generation
  std::atomic<int> ok{0};
  pool.run([&](int, int) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 2);
}

TEST(ThreadPool, CallerExceptionAlsoSurfaces) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run([](int lane, int) {
                 if (lane == 0) throw std::runtime_error("lane 0 failed");
               }),
               std::runtime_error);
}

TEST(ThreadPool, SingleLaneRunsInline) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  pool.run([&](int lane, int lanes) {
    EXPECT_EQ(lane, 0);
    EXPECT_EQ(lanes, 1);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}
