// Property tests over randomized load configurations: invariants every
// remapping policy must satisfy for any input.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "balance/policy.hpp"
#include "util/rng.hpp"

using namespace slipflow::balance;
using slipflow::util::Rng;

namespace {

NodeLoad random_load(Rng& rng) {
  return {std::floor(rng.uniform(500, 50000)), rng.uniform(0.05, 5.0)};
}

BalanceConfig random_cfg(Rng& rng) {
  BalanceConfig cfg;
  cfg.min_transfer_points = static_cast<long long>(rng.uniform(100, 8000));
  cfg.conservative_factor = rng.uniform(0.1, 1.0);
  cfg.over_redistribution_cap = rng.uniform(1.0, 8.0);
  return cfg;
}

}  // namespace

class RandomizedPolicy : public ::testing::TestWithParam<const char*> {};

TEST_P(RandomizedPolicy, ProposalsAlwaysWithinBounds) {
  auto policy = RemapPolicy::create(GetParam());
  Rng rng(11);
  for (int rep = 0; rep < 500; ++rep) {
    const BalanceConfig cfg = random_cfg(rng);
    const NodeLoad me = random_load(rng);
    const bool has_left = rng.below(2) == 0;
    const bool has_right = rng.below(2) == 0;
    const std::optional<NodeLoad> left =
        has_left ? std::optional<NodeLoad>(random_load(rng)) : std::nullopt;
    const std::optional<NodeLoad> right =
        has_right ? std::optional<NodeLoad>(random_load(rng)) : std::nullopt;
    const Proposal p = policy->decide(left, me, right, cfg);
    ASSERT_GE(p.to_left, 0);
    ASSERT_GE(p.to_right, 0);
    ASSERT_LE(p.to_left + p.to_right,
              static_cast<long long>(me.points) + 1);
    // thresholds respected
    ASSERT_TRUE(p.to_left == 0 || p.to_left >= cfg.min_transfer_points);
    ASSERT_TRUE(p.to_right == 0 || p.to_right >= cfg.min_transfer_points);
    // proposals only toward existing neighbors
    if (!has_left) {
      ASSERT_EQ(p.to_left, 0);
    }
    if (!has_right) {
      ASSERT_EQ(p.to_right, 0);
    }
  }
}

TEST_P(RandomizedPolicy, DecisionIsDeterministic) {
  auto policy = RemapPolicy::create(GetParam());
  Rng rng(13);
  for (int rep = 0; rep < 100; ++rep) {
    const BalanceConfig cfg = random_cfg(rng);
    const NodeLoad me = random_load(rng);
    const NodeLoad l = random_load(rng), r = random_load(rng);
    const Proposal a = policy->decide(l, me, r, cfg);
    const Proposal b = policy->decide(l, me, r, cfg);
    ASSERT_EQ(a.to_left, b.to_left);
    ASSERT_EQ(a.to_right, b.to_right);
  }
}

TEST_P(RandomizedPolicy, MirrorSymmetry) {
  // swapping the left and right neighbors must swap the proposals
  auto policy = RemapPolicy::create(GetParam());
  Rng rng(17);
  for (int rep = 0; rep < 200; ++rep) {
    const BalanceConfig cfg = random_cfg(rng);
    const NodeLoad me = random_load(rng);
    const NodeLoad l = random_load(rng), r = random_load(rng);
    const Proposal p = policy->decide(l, me, r, cfg);
    const Proposal q = policy->decide(r, me, l, cfg);
    ASSERT_EQ(p.to_left, q.to_right);
    ASSERT_EQ(p.to_right, q.to_left);
  }
}

TEST_P(RandomizedPolicy, NeverShipsTowardSlowerNeighborByDefault) {
  auto policy = RemapPolicy::create(GetParam());
  Rng rng(19);
  for (int rep = 0; rep < 300; ++rep) {
    BalanceConfig cfg = random_cfg(rng);
    cfg.allow_fast_to_slow = false;
    const NodeLoad me = random_load(rng);
    const NodeLoad l = random_load(rng), r = random_load(rng);
    const Proposal p = policy->decide(l, me, r, cfg);
    if (p.to_left > 0) {
      ASSERT_GT(l.speed(), me.speed());
    }
    if (p.to_right > 0) {
      ASSERT_GT(r.speed(), me.speed());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, RandomizedPolicy,
                         ::testing::Values("none", "conservative",
                                           "filtered"));

TEST(RandomizedGlobal, TargetsPreserveTotalAndPositivity) {
  GlobalPolicy policy;
  Rng rng(23);
  for (int rep = 0; rep < 200; ++rep) {
    const BalanceConfig cfg = random_cfg(rng);
    const int n = 2 + static_cast<int>(rng.below(30));
    std::vector<NodeLoad> loads;
    long long total = 0;
    for (int i = 0; i < n; ++i) {
      loads.push_back(random_load(rng));
      total += static_cast<long long>(loads.back().points);
    }
    const auto target = policy.decide_global(loads, cfg);
    ASSERT_EQ(std::accumulate(target.begin(), target.end(), 0LL), total);
    for (long long t : target) ASSERT_GE(t, 1);
  }
}

TEST(RandomizedGlobal, FasterNodeNeverTargetsFewerPoints) {
  GlobalPolicy policy;
  Rng rng(29);
  for (int rep = 0; rep < 200; ++rep) {
    const BalanceConfig cfg = random_cfg(rng);
    std::vector<NodeLoad> loads = {random_load(rng), random_load(rng),
                                   random_load(rng)};
    const auto target = policy.decide_global(loads, cfg);
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j)
        if (loads[i].speed() > loads[j].speed() * 1.01) {
          ASSERT_GE(target[i] + 1, target[j]);
        }
  }
}

TEST(RandomizedResolve, AntisymmetricAndThresholded) {
  Rng rng(31);
  for (int rep = 0; rep < 500; ++rep) {
    const long long a = static_cast<long long>(rng.uniform(0, 20000));
    const long long b = static_cast<long long>(rng.uniform(0, 20000));
    const long long thr = static_cast<long long>(rng.uniform(1, 5000));
    const long long net = resolve_pair(a, b, thr);
    ASSERT_EQ(resolve_pair(b, a, thr), -net);
    if (net != 0) {
      ASSERT_GE(std::llabs(net), thr);
    }
    ASSERT_EQ(net == 0 ? 0 : (net > 0 ? 1 : -1),
              std::llabs(a - b) < thr ? 0 : (a > b ? 1 : -1));
  }
}

TEST(RandomizedTriplet, TargetsAlwaysPreserveTotalAndEqualizeTime) {
  Rng rng(37);
  for (int rep = 0; rep < 500; ++rep) {
    const NodeLoad a = random_load(rng), b = random_load(rng),
                   c = random_load(rng);
    const auto t = triplet_targets(a, b, c);
    ASSERT_NEAR(t.left + t.me + t.right, a.points + b.points + c.points,
                1e-6 * (a.points + b.points + c.points));
    const double ta = t.left / a.speed();
    const double tb = t.me / b.speed();
    const double tc = t.right / c.speed();
    ASSERT_NEAR(ta, tb, 1e-9 * std::max(1.0, ta));
    ASSERT_NEAR(tb, tc, 1e-9 * std::max(1.0, tb));
  }
}
