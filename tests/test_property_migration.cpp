// Property tests: randomized plane-migration sequences across a chain of
// slabs must preserve the global field state exactly, regardless of the
// order, direction or batch size of transfers.

#include <gtest/gtest.h>

#include <memory>

#include "lbm/kernels.hpp"
#include "lbm/slab.hpp"
#include "util/rng.hpp"

using namespace slipflow::lbm;
using slipflow::util::Rng;

namespace {

constexpr index_t kNx = 24;

std::shared_ptr<const ChannelGeometry> geom() {
  static auto g =
      std::make_shared<const ChannelGeometry>(Extents{kNx, 5, 3});
  return g;
}

double pattern(std::size_t c, index_t gx, index_t gy, index_t gz) {
  return 0.5 + 0.11 * static_cast<double>(c) +
         0.013 * static_cast<double>(gx) + 0.0017 * static_cast<double>(gy) +
         0.00019 * static_cast<double>(gz);
}

/// A chain of slabs covering the domain.
std::vector<Slab> make_chain(const std::vector<index_t>& widths) {
  std::vector<Slab> chain;
  index_t begin = 0;
  for (index_t w : widths) {
    chain.emplace_back(geom(), FluidParams::microchannel_defaults(), begin,
                       w);
    chain.back().initialize(pattern);
    begin += w;
  }
  return chain;
}

/// Ship k planes across boundary b (positive k: left-to-right).
void transfer(std::vector<Slab>& chain, std::size_t b, index_t k) {
  Slab& left = chain[b];
  Slab& right = chain[b + 1];
  if (k > 0) {
    std::vector<double> buf(static_cast<std::size_t>(left.migration_doubles(k)));
    left.detach_planes(Side::right, k, buf);
    right.attach_planes(Side::left, k, buf);
  } else if (k < 0) {
    std::vector<double> buf(
        static_cast<std::size_t>(right.migration_doubles(-k)));
    right.detach_planes(Side::left, -k, buf);
    left.attach_planes(Side::right, -k, buf);
  }
}

/// Every cell of every slab still matches the global pattern.
void expect_pattern_intact(const std::vector<Slab>& chain) {
  index_t covered = 0;
  for (const Slab& s : chain) {
    EXPECT_EQ(s.x_begin(), covered);
    covered = s.x_end();
    const Extents& st = s.storage();
    for (std::size_t c = 0; c < s.num_components(); ++c)
      for (index_t gx = s.x_begin(); gx < s.x_end(); ++gx)
        for (index_t y = 0; y < st.ny; ++y)
          for (index_t z = 0; z < st.nz; ++z) {
            ASSERT_DOUBLE_EQ(s.density(c)[st.idx(s.local_x(gx), y, z)],
                             pattern(c, gx, y, z))
                << "c=" << c << " gx=" << gx;
          }
  }
  EXPECT_EQ(covered, kNx);
}

}  // namespace

TEST(MigrationProperty, RandomTransferSequencePreservesState) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    auto chain = make_chain({6, 6, 6, 6});
    for (int step = 0; step < 40; ++step) {
      const std::size_t b = static_cast<std::size_t>(rng.below(3));
      const bool rightward = rng.below(2) == 0;
      Slab& donor = rightward ? chain[b] : chain[b + 1];
      if (donor.nx_local() <= 1) continue;
      const index_t k = 1 + static_cast<index_t>(
                                rng.below(static_cast<std::uint64_t>(
                                    donor.nx_local() - 1)));
      transfer(chain, b, rightward ? k : -k);
    }
    expect_pattern_intact(chain);
  }
}

TEST(MigrationProperty, ExtremeImbalanceAndBack) {
  auto chain = make_chain({8, 8, 8});
  // drain the middle slab to one plane, then refill it
  transfer(chain, 0, -7);  // middle -> left ... wait, boundary 0 negative
  expect_pattern_intact(chain);
  auto chain2 = make_chain({8, 8, 8});
  transfer(chain2, 1, -7);  // right keeps 1? no: right -> middle
  expect_pattern_intact(chain2);
  // push everything to the last slab
  auto chain3 = make_chain({8, 8, 8});
  transfer(chain3, 0, 7);
  transfer(chain3, 1, 14);
  EXPECT_EQ(chain3[0].nx_local(), 1);
  EXPECT_EQ(chain3[1].nx_local(), 1);
  EXPECT_EQ(chain3[2].nx_local(), 22);
  expect_pattern_intact(chain3);
}

TEST(MigrationProperty, MassConservedUnderRandomShuffles) {
  Rng rng(99);
  auto chain = make_chain({12, 6, 6});
  double mass0 = 0.0, mass1 = 0.0;
  for (const Slab& s : chain) {
    mass0 += owned_mass(s, 0);
    mass1 += owned_mass(s, 1);
  }
  for (int step = 0; step < 30; ++step) {
    const std::size_t b = static_cast<std::size_t>(rng.below(2));
    const bool rightward = rng.below(2) == 0;
    Slab& donor = rightward ? chain[b] : chain[b + 1];
    if (donor.nx_local() <= 1) continue;
    transfer(chain, b, rightward ? 1 : -1);
  }
  double m0 = 0.0, m1 = 0.0;
  for (const Slab& s : chain) {
    m0 += owned_mass(s, 0);
    m1 += owned_mass(s, 1);
  }
  EXPECT_NEAR(m0, mass0, 1e-10 * mass0);
  EXPECT_NEAR(m1, mass1, 1e-10 * std::max(mass1, 1.0));
}

TEST(MigrationProperty, PackUnpackIsExactInverseForRandomState) {
  Rng rng(7);
  Slab s(geom(), FluidParams::microchannel_defaults(), 3, 5);
  s.initialize(pattern);
  // randomize populations beyond the equilibrium init
  const Extents& st = s.storage();
  for (std::size_t c = 0; c < 2; ++c)
    for (int d = 0; d < kQ; ++d)
      for (index_t lx = 1; lx <= 5; ++lx)
        for (index_t i = 0; i < st.plane_cells(); ++i)
          s.f(c).dir_plane(d, lx)[static_cast<std::size_t>(i)] =
              rng.uniform(0.0, 0.4);

  std::vector<double> rec(static_cast<std::size_t>(s.migration_doubles(1)));
  s.pack_owned_plane(5, rec);
  // copy the state, mutate the plane, then restore from the record
  std::vector<double> before = rec;
  for (index_t i = 0; i < st.plane_cells(); ++i)
    s.density(0).plane(s.local_x(5))[static_cast<std::size_t>(i)] = -1.0;
  s.unpack_owned_plane(5, before);
  std::vector<double> after(static_cast<std::size_t>(s.migration_doubles(1)));
  s.pack_owned_plane(5, after);
  for (std::size_t i = 0; i < before.size(); ++i)
    ASSERT_EQ(after[i], before[i]);
}
