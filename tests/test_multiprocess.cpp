// End-to-end multi-process runs: the launcher forks+execs real
// slipflow_worker binaries (SLIPFLOW_WORKER_EXE, injected by CMake) over
// Unix-domain sockets, and the physics they produce must be byte-
// identical to the same configuration over in-process ThreadComm.
//
// Determinism rests on injected CountingClocks (obs/clock.hpp): every
// "measured" stage time is a pure function of the call sequence, so the
// remapping decisions — and therefore plane migrations, masses and
// profiles — cannot depend on which transport carried the messages.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/clock.hpp"
#include "sim/worker.hpp"
#include "transport/launcher.hpp"
#include "transport/thread_comm.hpp"

using namespace slipflow;

namespace {

constexpr int kRanks = 4;
constexpr int kPhases = 40;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "slipflow_" + name + "." +
         std::to_string(::getpid());
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << "missing " << path;
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

/// The reference configuration, identical to the worker flags below.
sim::RunnerConfig reference_config() {
  sim::RunnerConfig cfg;
  cfg.global = lbm::Extents{16, 6, 4};
  cfg.fluid = lbm::FluidParams::microchannel_defaults();
  cfg.policy = "filtered";
  cfg.remap_interval = 5;
  cfg.balance.window = 3;
  cfg.balance.min_transfer_points = 24;
  // rank 1 is virtually 4x slower — the remapper must move planes off it
  cfg.clock_factory = [](int rank) -> std::shared_ptr<obs::Clock> {
    return std::make_shared<obs::CountingClock>(rank == 1 ? 4e-3 : 1e-3);
  };
  return cfg;
}

std::string run_over_threads() {
  const sim::RunnerConfig cfg = reference_config();
  std::string observables;
  transport::run_ranks(kRanks, [&](transport::Communicator& comm) {
    sim::ParallelLbm run(cfg, comm);
    run.initialize_uniform();
    run.run(kPhases);
    const std::string obs = sim::collect_observables(run, comm, cfg.global);
    if (comm.rank() == 0) observables = obs;
  });
  return observables;
}

transport::LaunchConfig worker_launch(const std::string& observables_out,
                                      const std::string& transport = "") {
  transport::LaunchConfig lc;
  lc.ranks = kRanks;
  lc.transport = transport;
  lc.worker_command = {SLIPFLOW_WORKER_EXE,
                       "--nx=16",
                       "--ny=6",
                       "--nz=4",
                       "--phases=" + std::to_string(kPhases),
                       "--policy=filtered",
                       "--remap-interval=5",
                       "--window=3",
                       "--min-transfer=24",
                       "--clock=counting",
                       "--clock-step=1e-3",
                       "--slow-clock-rank=1",
                       "--slow-clock-factor=4",
                       "--recv-timeout=20",
                       "--observables-out=" + observables_out};
  lc.heartbeat_interval = 0.1;
  lc.heartbeat_grace = 10.0;
  lc.wall_clock_timeout = 90.0;
  return lc;
}

}  // namespace

TEST(MultiProcess, SocketObservablesAreByteIdenticalToThreads) {
  const std::string out = temp_path("obs_socket");
  const transport::LaunchResult res =
      transport::launch_workers(worker_launch(out));
  ASSERT_TRUE(res.ok) << res.diagnostic;

  const std::string socket_obs = read_file(out);
  std::remove(out.c_str());
  const std::string thread_obs = run_over_threads();

  ASSERT_FALSE(socket_obs.empty());
  EXPECT_EQ(socket_obs, thread_obs)
      << "real-process physics diverged from the in-process reference";
  // sanity: the virtually slow rank actually shed planes, so the
  // comparison covers migrated state, not just an untouched lattice
  EXPECT_NE(socket_obs.find("rank 1 planes"), std::string::npos);
  EXPECT_EQ(socket_obs.find("rank 1 planes 4 sent 0"), std::string::npos)
      << "expected rank 1 to migrate planes away:\n"
      << socket_obs.substr(0, 400);
}

TEST(MultiProcess, ShmObservablesAreByteIdenticalToSocketAndThreads) {
  // Same launch, halos over shared-memory rings instead of sockets: the
  // observables must not move by a single byte.
  const std::string out_shm = temp_path("obs_shm");
  const transport::LaunchResult rs =
      transport::launch_workers(worker_launch(out_shm, "shm"));
  ASSERT_TRUE(rs.ok) << rs.diagnostic;
  const std::string shm_obs = read_file(out_shm);
  std::remove(out_shm.c_str());

  const std::string out_sock = temp_path("obs_sock_ref");
  const transport::LaunchResult rk =
      transport::launch_workers(worker_launch(out_sock, "socket"));
  ASSERT_TRUE(rk.ok) << rk.diagnostic;
  const std::string socket_obs = read_file(out_sock);
  std::remove(out_sock.c_str());

  ASSERT_FALSE(shm_obs.empty());
  EXPECT_EQ(shm_obs, socket_obs)
      << "shm workers diverged from socket workers";
  EXPECT_EQ(shm_obs, run_over_threads())
      << "shm workers diverged from the in-process reference";
  // migrations really happened over the rings
  EXPECT_EQ(shm_obs.find("rank 1 planes 4 sent 0"), std::string::npos)
      << "expected rank 1 to migrate planes away:\n"
      << shm_obs.substr(0, 400);
}

TEST(MultiProcess, ShmKilledRankIsNamedWithinTimeout) {
  // The supervision story must not regress on the shm transport: a rank
  // SIGKILLed mid-run is still named, and the run still ends promptly.
  transport::LaunchConfig lc =
      worker_launch(temp_path("obs_shm_killed"), "shm");
  lc.worker_command.back() = "--phases=5000";  // replace observables-out
  lc.wall_clock_timeout = 60.0;
  lc.extra_args[2] = {"--fault-kill-phase=40"};
  const transport::LaunchResult res = transport::launch_workers(lc);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.failed_rank, 2) << res.diagnostic;
  EXPECT_NE(res.diagnostic.find("rank 2 killed by signal 9"),
            std::string::npos)
      << res.diagnostic;
  EXPECT_LT(res.elapsed_seconds, 60.0);
}

TEST(MultiProcess, RepeatedSocketRunsAreByteIdentical) {
  const std::string out_a = temp_path("obs_a");
  const std::string out_b = temp_path("obs_b");
  const transport::LaunchResult ra =
      transport::launch_workers(worker_launch(out_a));
  ASSERT_TRUE(ra.ok) << ra.diagnostic;
  const transport::LaunchResult rb =
      transport::launch_workers(worker_launch(out_b));
  ASSERT_TRUE(rb.ok) << rb.diagnostic;
  const std::string a = read_file(out_a);
  const std::string b = read_file(out_b);
  std::remove(out_a.c_str());
  std::remove(out_b.c_str());
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(MultiProcess, KilledRankIsNamedWithinTimeout) {
  transport::LaunchConfig lc = worker_launch(temp_path("obs_killed"));
  lc.worker_command.back() = "--phases=5000";  // replace observables-out
  lc.wall_clock_timeout = 60.0;
  lc.extra_args[2] = {"--fault-kill-phase=40"};
  const transport::LaunchResult res = transport::launch_workers(lc);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.failed_rank, 2) << res.diagnostic;
  EXPECT_NE(res.diagnostic.find("rank 2 killed by signal 9"),
            std::string::npos)
      << res.diagnostic;
  EXPECT_LT(res.elapsed_seconds, 60.0);
}

TEST(MultiProcess, FrozenRankIsCaughtByHeartbeatSilence) {
  transport::LaunchConfig lc = worker_launch(temp_path("obs_frozen"));
  lc.worker_command.back() = "--phases=5000";
  lc.heartbeat_interval = 0.1;
  lc.heartbeat_grace = 1.5;
  lc.wall_clock_timeout = 60.0;
  lc.extra_args[1] = {"--fault-stop-phase=40"};  // SIGSTOP: silent freeze
  const transport::LaunchResult res = transport::launch_workers(lc);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.failed_rank, 1) << res.diagnostic;
  EXPECT_NE(res.diagnostic.find("heartbeat silent"), std::string::npos)
      << res.diagnostic;
  EXPECT_LT(res.elapsed_seconds, 30.0);
}

TEST(MultiProcess, MissingWorkerBinaryFailsFast) {
  transport::LaunchConfig lc;
  lc.ranks = 2;
  lc.worker_command = {"/nonexistent/slipflow_worker"};
  lc.wall_clock_timeout = 20.0;
  const transport::LaunchResult res = transport::launch_workers(lc);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.diagnostic.find("exited with code 127"), std::string::npos)
      << res.diagnostic;
}

TEST(MultiProcess, WorkerRejectsUnknownFlags) {
  transport::LaunchConfig lc;
  lc.ranks = 1;
  lc.worker_command = {SLIPFLOW_WORKER_EXE, "--phases=1", "--no-such-flag=1"};
  lc.wall_clock_timeout = 20.0;
  const transport::LaunchResult res = transport::launch_workers(lc);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.diagnostic.find("exited with code 2"), std::string::npos)
      << res.diagnostic;
  EXPECT_NE(res.diagnostic.find("no-such-flag"), std::string::npos)
      << res.diagnostic;
  // The diagnostic must teach, not just scold: it lists the worker's
  // actual flag surface so sweep-script typos are one edit from fixed.
  EXPECT_NE(res.diagnostic.find("valid flags"), std::string::npos)
      << res.diagnostic;
  EXPECT_NE(res.diagnostic.find("--phases"), std::string::npos)
      << res.diagnostic;
}

// The same flag hygiene holds for the launcher-side binaries: every
// example rejects a typo'd flag with exit code 2 and the valid-flag list.
TEST(MultiProcess, ExampleRejectsUnknownFlags) {
  const std::string cmd = std::string(SLIPFLOW_EXAMPLE_EXE) +
                          " --ranks=1 --no-such-flag=1 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string output;
  char buf[256];
  while (fgets(buf, sizeof buf, pipe) != nullptr) output += buf;
  const int status = pclose(pipe);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 2) << output;
  EXPECT_NE(output.find("no-such-flag"), std::string::npos) << output;
  EXPECT_NE(output.find("valid flags"), std::string::npos) << output;
  EXPECT_NE(output.find("--ranks"), std::string::npos) << output;
}
