// Unit tests for the util module: statistics, sample window, tables,
// option parsing and the deterministic RNG.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/json.hpp"
#include "util/options.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace u = slipflow::util;

TEST(Stats, MeanOfConstants) {
  const std::vector<double> xs{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(u::mean(xs), 3.0);
}

TEST(Stats, MeanSimple) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(u::mean(xs), 2.5);
}

TEST(Stats, MeanRequiresNonEmpty) {
  const std::vector<double> xs;
  EXPECT_THROW(u::mean(xs), slipflow::contract_error);
}

TEST(Stats, StddevOfConstantsIsZero) {
  const std::vector<double> xs{5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(u::stddev(xs), 0.0);
}

TEST(Stats, StddevKnownValue) {
  const std::vector<double> xs{2.0, 4.0};  // mean 3, var 1
  EXPECT_DOUBLE_EQ(u::stddev(xs), 1.0);
}

TEST(Stats, HarmonicMeanOfConstants) {
  const std::vector<double> xs{2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(u::harmonic_mean(xs), 2.0);
}

TEST(Stats, HarmonicMeanKnownValue) {
  // HM(1, 2) = 2 / (1 + 1/2) = 4/3
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_NEAR(u::harmonic_mean(xs), 4.0 / 3.0, 1e-12);
}

TEST(Stats, HarmonicMeanIsSpikeResistant) {
  // This property is why the paper chose it for the load index: one huge
  // sample barely moves it, while the arithmetic mean jumps.
  std::vector<double> xs(9, 1.0);
  xs.push_back(100.0);  // load spike
  EXPECT_LT(u::harmonic_mean(xs), 1.2);
  EXPECT_GT(u::mean(xs), 10.0);
}

TEST(Stats, HarmonicMeanRejectsNonPositive) {
  const std::vector<double> xs{1.0, 0.0};
  EXPECT_THROW(u::harmonic_mean(xs), slipflow::contract_error);
}

TEST(Stats, HarmonicNeverExceedsArithmetic) {
  u::Rng rng(7);
  for (int rep = 0; rep < 50; ++rep) {
    std::vector<double> xs;
    for (int i = 0; i < 8; ++i) xs.push_back(rng.uniform(0.1, 10.0));
    EXPECT_LE(u::harmonic_mean(xs), u::mean(xs) + 1e-12);
  }
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 7.0, 2.0};
  EXPECT_DOUBLE_EQ(u::min(xs), -1.0);
  EXPECT_DOUBLE_EQ(u::max(xs), 7.0);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(u::percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(u::percentile(xs, 1.0), 4.0);
}

TEST(Stats, PercentileMedianInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(u::percentile(xs, 0.5), 2.5);
}

TEST(SampleWindow, FillsThenEvictsOldest) {
  u::SampleWindow w(3);
  EXPECT_TRUE(w.empty());
  w.push(1.0);
  w.push(2.0);
  EXPECT_FALSE(w.full());
  w.push(3.0);
  EXPECT_TRUE(w.full());
  w.push(4.0);
  EXPECT_EQ(w.samples(), (std::vector<double>{2.0, 3.0, 4.0}));
}

TEST(SampleWindow, SizeTracksCapacity) {
  u::SampleWindow w(5);
  for (int i = 0; i < 20; ++i) w.push(i);
  EXPECT_EQ(w.size(), 5u);
  EXPECT_EQ(w.samples(), (std::vector<double>{15, 16, 17, 18, 19}));
}

TEST(SampleWindow, ClearEmpties) {
  u::SampleWindow w(2);
  w.push(1.0);
  w.clear();
  EXPECT_TRUE(w.empty());
  w.push(9.0);
  EXPECT_EQ(w.samples(), std::vector<double>{9.0});
}

TEST(SampleWindow, ZeroCapacityRejected) {
  EXPECT_THROW(u::SampleWindow w(0), slipflow::contract_error);
}

TEST(Table, PrintsAlignedRows) {
  u::Table t("demo");
  t.header({"name", "value"});
  t.row({std::string("alpha"), 1.5});
  t.row({std::string("b"), 10.0});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
}

TEST(Table, CsvEscapesCommas) {
  u::Table t;
  t.header({"a"});
  t.row({std::string("x,y")});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a\n\"x,y\"\n");
}

TEST(Table, RowWidthMismatchRejected) {
  u::Table t;
  t.header({"a", "b"});
  EXPECT_THROW(t.row({1.0}), slipflow::contract_error);
}

TEST(Table, FormatNumberTrimsZeros) {
  EXPECT_EQ(u::format_number(1.5), "1.5");
  EXPECT_EQ(u::format_number(2.0), "2");
  EXPECT_EQ(u::format_number(0.25), "0.25");
}

TEST(Options, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--nodes=20", "--verbose", "positional"};
  const auto o = u::Options::parse(4, argv);
  EXPECT_EQ(o.get("nodes", 0LL), 20);
  EXPECT_TRUE(o.get("verbose", false));
  ASSERT_EQ(o.positional().size(), 1u);
  EXPECT_EQ(o.positional()[0], "positional");
}

TEST(Options, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  const auto o = u::Options::parse(1, argv);
  EXPECT_EQ(o.get("nodes", 7LL), 7);
  EXPECT_DOUBLE_EQ(o.get("x", 2.5), 2.5);
  EXPECT_EQ(o.get("s", std::string("d")), "d");
  EXPECT_FALSE(o.has("nodes"));
}

TEST(Options, RejectsMalformedNumbers) {
  const char* argv[] = {"prog", "--n=abc"};
  const auto o = u::Options::parse(2, argv);
  EXPECT_THROW(o.get("n", 1LL), slipflow::contract_error);
}

TEST(Options, BoolSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=off", "--c=1", "--d=no"};
  const auto o = u::Options::parse(5, argv);
  EXPECT_TRUE(o.get("a", false));
  EXPECT_FALSE(o.get("b", true));
  EXPECT_TRUE(o.get("c", false));
  EXPECT_FALSE(o.get("d", true));
}

TEST(Options, TracksUnusedKeys) {
  const char* argv[] = {"prog", "--used=1", "--typo=2"};
  const auto o = u::Options::parse(3, argv);
  (void)o.get("used", 0LL);
  const auto unused = o.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Rng, DeterministicUnderSeed) {
  u::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  u::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  u::Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  u::Rng r(11);
  double s = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) s += r.uniform();
  EXPECT_NEAR(s / n, 0.5, 0.02);
}

TEST(Rng, BelowRespectsBound) {
  u::Rng r(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(7), 7u);
}

TEST(Rng, BelowCoversAllResidues) {
  u::Rng r(9);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 1000; ++i) seen[static_cast<std::size_t>(r.below(5))]++;
  for (int c : seen) EXPECT_GT(c, 100);
}

TEST(Require, MessageContainsExpression) {
  try {
    SLIPFLOW_REQUIRE_MSG(1 == 2, "custom detail " << 42);
    FAIL() << "should have thrown";
  } catch (const slipflow::contract_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("1 == 2"), std::string::npos);
    EXPECT_NE(msg.find("custom detail 42"), std::string::npos);
  }
}

// --- JSON parser (util/json.hpp): the campaign server's job-spec
// reader. Strict RFC 8259: every malformed input must throw json_error
// with a byte offset, and dump() must be canonical (sorted keys,
// deterministic number formatting) because the warm-state cache hashes
// it as the physics key.

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(u::json_parse("null").is_null());
  EXPECT_EQ(u::json_parse("true").as_bool(), true);
  EXPECT_EQ(u::json_parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(u::json_parse("-12.5e2").as_number(), -1250.0);
  EXPECT_EQ(u::json_parse("\"hi\"").as_string(), "hi");
  EXPECT_DOUBLE_EQ(u::json_parse("  42 ").as_number(), 42.0);
}

TEST(Json, ParsesNestedStructures) {
  const u::JsonValue v =
      u::json_parse(R"({"a":[1,2,{"b":true}],"c":{"d":null},"e":"x"})");
  ASSERT_TRUE(v.is_object());
  const auto& a = v.find("a")->as_array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[0].as_number(), 1.0);
  EXPECT_TRUE(a[2].find("b")->as_bool());
  EXPECT_TRUE(v.find("c")->find("d")->is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, StringEscapesRoundTrip) {
  const u::JsonValue v = u::json_parse(R"("a\"b\\c\n\t\u0041\u00e9")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\n\tA\xc3\xa9");
}

TEST(Json, SurrogatePairsDecodeToUtf8) {
  // U+1F600 as a surrogate pair.
  EXPECT_EQ(u::json_parse(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(Json, DumpIsCanonical) {
  // Same members, different order: identical canonical bytes — the
  // property the warm-cache key relies on.
  const std::string a = u::json_parse(R"({"b":1,"a":[true,null]})").dump();
  const std::string b = u::json_parse(R"({"a":[true , null], "b": 1.0})").dump();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, R"({"a":[true,null],"b":1})");
}

TEST(Json, ConvenienceGettersWithDefaults) {
  const u::JsonValue v = u::json_parse(R"({"n":3,"s":"x","b":true})");
  EXPECT_EQ(v.int_or("n", 7), 3);
  EXPECT_EQ(v.int_or("absent", 7), 7);
  EXPECT_EQ(v.string_or("s", "d"), "x");
  EXPECT_TRUE(v.bool_or("b", false));
  // Present-but-wrong-kind throws naming the key, instead of silently
  // returning the fallback.
  EXPECT_THROW((void)v.int_or("s", 0), u::json_error);
  EXPECT_THROW((void)v.string_or("n", ""), u::json_error);
}

TEST(Json, MalformedInputsThrowWithOffset) {
  const char* bad[] = {
      "",            // empty
      "{",           // unterminated object
      "[1,2",        // unterminated array
      "[1,]",        // trailing comma
      "{\"a\":}",    // missing value
      "{\"a\" 1}",   // missing colon
      "{a:1}",       // unquoted key
      "\"abc",       // unterminated string
      "01",          // leading zero
      "1.",          // bare decimal point
      "+1",          // explicit plus
      "nul",         // truncated literal
      "1 2",         // trailing garbage
      "{\"a\":1,\"a\":2}",  // duplicate key
      "\"\\x\"",     // bad escape
      "\"\t\"",      // raw control char in string
      "[1] extra",   // trailing token
  };
  for (const char* text : bad)
    EXPECT_THROW((void)u::json_parse(text), u::json_error) << text;
}

TEST(Json, DepthCapStopsHostileNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  EXPECT_THROW((void)u::json_parse(deep, 64), u::json_error);
  // ... but 3 levels under a cap of 4 are fine.
  EXPECT_NO_THROW((void)u::json_parse("[[[1]]]", 4));
}

TEST(Json, HugeNumbersSaturateInsteadOfThrowing) {
  EXPECT_TRUE(std::isinf(u::json_parse("1e999").as_number()));
  EXPECT_TRUE(std::isinf(u::json_parse("-1e999").as_number()));
}

TEST(Json, ErrorCarriesByteOffset) {
  try {
    (void)u::json_parse("[1, x]");
    FAIL() << "should have thrown";
  } catch (const u::json_error& e) {
    EXPECT_EQ(e.offset(), 4u);
  }
}

TEST(Options, UnknownDiagnosticListsValidFlags) {
  const char* argv[] = {"prog", "--good=1", "--typo=2"};
  const auto opts = u::Options::parse(3, argv);
  (void)opts.get("good", 0LL);
  (void)opts.get("other", 0LL);
  const std::string diag = opts.unknown_diagnostic();
  EXPECT_NE(diag.find("--typo"), std::string::npos);
  EXPECT_NE(diag.find("valid flags"), std::string::npos);
  EXPECT_NE(diag.find("--good"), std::string::npos);
  EXPECT_NE(diag.find("--other"), std::string::npos);
}

TEST(Options, UnknownDiagnosticEmptyWhenClean) {
  const char* argv[] = {"prog", "--good=1"};
  const auto opts = u::Options::parse(2, argv);
  (void)opts.get("good", 0LL);
  EXPECT_TRUE(opts.unknown_diagnostic().empty());
}
