// Two-component (water + air) physics: the paper's slip mechanism.
// A hydrophobic wall force on the water component produces a depleted
// water / enriched gas layer at the walls (Figure 6) and apparent slip in
// the streamwise velocity profile (Figure 7).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "lbm/observables.hpp"
#include "lbm/simulation.hpp"

using namespace slipflow::lbm;

namespace {

/// Reduced-resolution microchannel (quasi-2D: periodic z) used by the
/// fast tests; the full 3-D walled channel is exercised by one test and
/// by the Figure 6/7 benches.
Simulation make_channel(double wall_accel, index_t ny = 24,
                        double gravity = 2e-5) {
  FluidParams p = FluidParams::microchannel_defaults(
      wall_accel, /*wall_decay=*/2.5, /*air_fraction=*/0.03,
      /*coupling_g=*/1.0, gravity);
  Simulation sim(Extents{4, ny, 4}, std::move(p), nullptr,
                 /*walls_y=*/true, /*walls_z=*/false);
  sim.initialize_uniform();
  return sim;
}

}  // namespace

TEST(Multicomponent, MassOfEachComponentConserved) {
  Simulation sim = make_channel(0.05);
  const double m0 = owned_mass(sim.slab(), 0);
  const double m1 = owned_mass(sim.slab(), 1);
  sim.run(800);
  EXPECT_NEAR(owned_mass(sim.slab(), 0), m0, 1e-8 * m0);
  EXPECT_NEAR(owned_mass(sim.slab(), 1), m1, 1e-8 * m1);
}

TEST(Multicomponent, WaterDepletedAtWalls) {
  Simulation sim = make_channel(0.05);
  sim.run(2000);
  const auto water = density_profile_y(sim.slab(), 0, 1, 2);
  const double bulk = water[water.size() / 2];
  // density at the wall-adjacent node is visibly below the bulk value
  EXPECT_LT(water.front(), 0.95 * bulk);
  EXPECT_LT(water.back(), 0.95 * bulk);
}

TEST(Multicomponent, AirEnrichedAtWalls) {
  Simulation sim = make_channel(0.05);
  sim.run(2000);
  const auto air = density_profile_y(sim.slab(), 1, 1, 2);
  const double bulk = air[air.size() / 2];
  EXPECT_GT(air.front(), 1.05 * bulk);
  EXPECT_GT(air.back(), 1.05 * bulk);
}

TEST(Multicomponent, DepletionLayerIsThin) {
  // the exponential wall force (decay 2 lattice units) confines the
  // density disturbance to the near-wall region: mid-channel stays bulk.
  Simulation sim = make_channel(0.05);
  sim.run(2000);
  const auto water = density_profile_y(sim.slab(), 0, 1, 2);
  const double bulk = water[water.size() / 2];
  const std::size_t quarter = water.size() / 4;
  EXPECT_NEAR(water[quarter], bulk, 0.05 * bulk);
}

TEST(Multicomponent, ProfilesSymmetricAcrossChannel) {
  Simulation sim = make_channel(0.05);
  sim.run(1500);
  const auto water = density_profile_y(sim.slab(), 1, 1, 2);
  for (std::size_t j = 0; j < water.size() / 2; ++j)
    EXPECT_NEAR(water[j], water[water.size() - 1 - j], 1e-8);
}

TEST(Multicomponent, NoDepletionWithoutWallForce) {
  // without the hydrophobic force only the (small) Shan-Chen wall
  // artifact remains: the wall value stays within ~10% of bulk, far from
  // the ~80% depletion the paper-strength force produces.
  Simulation sim = make_channel(0.0);
  sim.run(1500);
  const auto water = density_profile_y(sim.slab(), 0, 1, 2);
  const double bulk = water[water.size() / 2];
  EXPECT_GT(water.front(), 0.88 * bulk);
}

TEST(Multicomponent, WallForceProducesApparentSlip) {
  // quasi-2D version: with the hydrophobic wall force at the paper's
  // amplitude (0.2) the wall-extrapolated streamwise velocity is clearly
  // nonzero; without it the channel is no-slip. The full ~10% figure
  // needs the paper's thin-depth 3-D geometry — see the next test and
  // the Figure 7 bench.
  Simulation forced = make_channel(0.2);
  Simulation control = make_channel(0.0);
  forced.run(4000);
  control.run(4000);
  const auto slip_f =
      measure_slip(velocity_profile_y(forced.slab(), 1, 2));
  const auto slip_c =
      measure_slip(velocity_profile_y(control.slab(), 1, 2));
  EXPECT_LT(std::abs(slip_c.slip_fraction), 0.01);
  EXPECT_GT(slip_f.slip_fraction, 0.015);
  EXPECT_LT(slip_f.slip_fraction, 0.20);
}

TEST(Multicomponent, ThinDepthChannelSlipsNearTenPercent) {
  // the paper's geometry has depth 1/10 of the width, so the top/bottom
  // walls force the whole depth; this is where the ~10% slip lives.
  FluidParams p = FluidParams::microchannel_defaults();
  Simulation sim(Extents{6, 20, 10}, std::move(p));
  sim.initialize_uniform();
  sim.run(2500);
  const auto s = measure_slip(velocity_profile_y(sim.slab(), 2, 5));
  EXPECT_GT(s.slip_fraction, 0.05);
  EXPECT_LT(s.slip_fraction, 0.16);
}

TEST(Multicomponent, SlipGrowsWithForceAmplitude) {
  Simulation weak = make_channel(0.05);
  Simulation strong = make_channel(0.2);
  weak.run(2500);
  strong.run(2500);
  const auto sw = measure_slip(velocity_profile_y(weak.slab(), 1, 2));
  const auto ss = measure_slip(velocity_profile_y(strong.slab(), 1, 2));
  EXPECT_GT(ss.slip_fraction, sw.slip_fraction);
}

TEST(Multicomponent, StableInFull3DWalledChannel) {
  FluidParams p = FluidParams::microchannel_defaults();
  Simulation sim(Extents{6, 20, 10}, std::move(p));
  sim.initialize_uniform();
  sim.run(600);
  const Extents& st = sim.slab().storage();
  for (index_t y = 0; y < st.ny; ++y)
    for (index_t z = 0; z < st.nz; ++z) {
      const double n = sim.slab().density(0)[st.idx(2, y, z)];
      EXPECT_TRUE(std::isfinite(n));
      EXPECT_GE(n, 0.0);
      EXPECT_LE(n, 2.0);
    }
}

TEST(Multicomponent, VelocityProfileStaysParabolicInBulk) {
  Simulation sim = make_channel(0.05);
  sim.run(3000);
  const auto u = velocity_profile_y(sim.slab(), 1, 2);
  // bulk curvature: centered second difference is negative (concave)
  const std::size_t c = u.size() / 2;
  EXPECT_LT(u[c + 1] - 2 * u[c] + u[c - 1], 0.0);
  // and the maximum sits at the center
  const auto it = std::max_element(u.begin(), u.end());
  const auto pos = static_cast<std::size_t>(it - u.begin());
  EXPECT_NEAR(static_cast<double>(pos), static_cast<double>(c), 1.5);
}
