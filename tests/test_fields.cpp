// Field container tests: linearization, plane views, direction-major
// distribution storage.

#include <gtest/gtest.h>

#include "lbm/field.hpp"

using namespace slipflow::lbm;

TEST(Extents, CellsAndPlaneCells) {
  const Extents e{4, 3, 2};
  EXPECT_EQ(e.cells(), 24);
  EXPECT_EQ(e.plane_cells(), 6);
}

TEST(Extents, IndexIsXMajor) {
  const Extents e{4, 3, 2};
  // consecutive z first, then y, then x
  EXPECT_EQ(e.idx(0, 0, 0), 0);
  EXPECT_EQ(e.idx(0, 0, 1), 1);
  EXPECT_EQ(e.idx(0, 1, 0), 2);
  EXPECT_EQ(e.idx(1, 0, 0), 6);
}

TEST(Extents, PlanesAreContiguous) {
  const Extents e{5, 3, 4};
  for (index_t x = 0; x < e.nx; ++x) {
    EXPECT_EQ(e.idx(x, 0, 0), x * e.plane_cells());
    EXPECT_EQ(e.idx(x, e.ny - 1, e.nz - 1), (x + 1) * e.plane_cells() - 1);
  }
}

TEST(ScalarField, FillAndIndex) {
  ScalarField f(Extents{2, 3, 4}, 1.5);
  for (index_t c = 0; c < 24; ++c) EXPECT_DOUBLE_EQ(f[c], 1.5);
  f.at(1, 2, 3) = 9.0;
  EXPECT_DOUBLE_EQ(f[f.extents().idx(1, 2, 3)], 9.0);
}

TEST(ScalarField, PlaneViewAliasesStorage) {
  ScalarField f(Extents{3, 2, 2});
  auto p = f.plane(1);
  ASSERT_EQ(p.size(), 4u);
  p[0] = 7.0;
  EXPECT_DOUBLE_EQ(f.at(1, 0, 0), 7.0);
}

TEST(VectorField, SetAndGetRoundTrip) {
  VectorField v(Extents{2, 2, 2});
  const Vec3 val{1.0, -2.0, 3.0};
  v.set(5, val);
  const Vec3 got = v.at(5);
  EXPECT_DOUBLE_EQ(got.x, 1.0);
  EXPECT_DOUBLE_EQ(got.y, -2.0);
  EXPECT_DOUBLE_EQ(got.z, 3.0);
}

TEST(DistField, DirectionsAreContiguousFields) {
  DistField f(Extents{2, 2, 2});
  EXPECT_EQ(f.dir(0).size(), 8u);
  f.at(3, 5) = 4.0;
  EXPECT_DOUBLE_EQ(f.dir(3)[5], 4.0);
  // other directions untouched
  EXPECT_DOUBLE_EQ(f.dir(2)[5], 0.0);
}

TEST(DistField, DirPlaneOffsets) {
  const Extents e{3, 2, 2};
  DistField f(e);
  f.at(7, e.idx(2, 1, 1)) = 1.25;
  auto plane = f.dir_plane(7, 2);
  EXPECT_DOUBLE_EQ(plane[e.plane_cells() - 1], 1.25);
}

TEST(DistField, SwapExchangesStorage) {
  DistField a(Extents{1, 1, 1}), b(Extents{1, 1, 1});
  a.at(0, 0) = 1.0;
  b.at(0, 0) = 2.0;
  a.swap(b);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(b.at(0, 0), 1.0);
}

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  const Vec3 s = a + b;
  EXPECT_DOUBLE_EQ(s.x, 5);
  EXPECT_DOUBLE_EQ(s.y, 7);
  EXPECT_DOUBLE_EQ(s.z, 9);
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  const Vec3 t = 2.0 * a;
  EXPECT_DOUBLE_EQ(t.z, 6.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 14.0);
}
