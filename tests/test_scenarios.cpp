// The paper's calibrated scenario: do the virtual-cluster numbers land in
// the published ballpark? (Exact values are not expected — the substrate
// is a model — but the magnitudes and orderings of Section 4.2 must
// hold.)

#include <gtest/gtest.h>

#include "cluster/scenario.hpp"

using namespace slipflow::cluster;
using slipflow::balance::RemapPolicy;

namespace {

double run_with_slow(const char* policy, int slow_nodes, int phases) {
  ClusterSim sim(paper::base_config(), RemapPolicy::create(policy));
  add_fixed_slow_nodes(sim, paper::slow_node_set(slow_nodes));
  return sim.run(phases).makespan;
}

}  // namespace

TEST(PaperScenario, SequentialTimeMatches43Hours) {
  ClusterSim sim(paper::base_config(), RemapPolicy::create("none"));
  const double hours = sim.sequential_time(paper::kLongPhases) / 3600.0;
  EXPECT_NEAR(hours, 43.56, 0.5);
}

TEST(PaperScenario, Dedicated600PhasesNear251Seconds) {
  // "With 20 dedicated nodes, the computation takes about 251 seconds."
  const double t = run_with_slow("none", 0, paper::kShortPhases);
  EXPECT_GT(t, 235.0);
  EXPECT_LT(t, 270.0);
}

TEST(PaperScenario, DedicatedSpeedupNear19) {
  // "The speedup is 18.97 with 20 nodes."
  ClusterSim sim(paper::base_config(), RemapPolicy::create("none"));
  const auto r = sim.run(paper::kShortPhases);
  const double speedup = sim.sequential_time(paper::kShortPhases) / r.makespan;
  EXPECT_GT(speedup, 18.0);
  EXPECT_LT(speedup, 19.8);
}

TEST(PaperScenario, OneSlowNodeWithoutRemappingNear717Seconds) {
  // "the total time increases from 251 seconds to 717 seconds"
  const double t = run_with_slow("none", 1, paper::kShortPhases);
  EXPECT_GT(t, 600.0);
  EXPECT_LT(t, 850.0);
}

TEST(PaperScenario, FilteredRecoversMostOfTheSlowdown) {
  // "The filtered approach ... uses only 313.0 seconds" (24.7% over the
  // dedicated 251 s). Accept a generous band around that.
  const double t = run_with_slow("filtered", 1, paper::kShortPhases);
  EXPECT_GT(t, 250.0);
  EXPECT_LT(t, 400.0);
}

TEST(PaperScenario, SchemeOrderingMatchesFigure9) {
  const double dedicated = run_with_slow("none", 0, paper::kShortPhases);
  const double none = run_with_slow("none", 1, paper::kShortPhases);
  const double cons = run_with_slow("conservative", 1, paper::kShortPhases);
  const double filt = run_with_slow("filtered", 1, paper::kShortPhases);
  EXPECT_LT(dedicated, filt);
  EXPECT_LT(filt, cons);
  EXPECT_LT(cons, none);
  // filtered reduces no-remapping substantially (paper: 56.3%)
  EXPECT_LT(filt, 0.65 * none);
}

TEST(PaperScenario, SlowJobWeightGivesOneThirdShare) {
  VirtualNode n;
  n.add_load(std::make_unique<PersistentLoad>(paper::kSlowJobWeight));
  EXPECT_NEAR(n.share_at(0.0), 1.0 / 3.0, 1e-12);
}

TEST(PaperScenario, SlowNodeSetsAreNested) {
  for (int m = 1; m <= 5; ++m) {
    const auto s = paper::slow_node_set(m);
    EXPECT_EQ(s.size(), static_cast<std::size_t>(m));
    EXPECT_EQ(s[0], paper::kProfiledSlowNode);
  }
  EXPECT_TRUE(paper::slow_node_set(0).empty());
  EXPECT_THROW(paper::slow_node_set(6), slipflow::contract_error);
}

TEST(NormalizedEfficiency, MatchesPaperFormula) {
  // speedup / (P - m (1 - share)); share 0.3 reproduces the paper's
  // 20 - 0.7m denominator
  EXPECT_NEAR(normalized_efficiency(19.0, 20, 0, 0.3), 19.0 / 20.0, 1e-12);
  EXPECT_NEAR(normalized_efficiency(13.0, 20, 5, 0.3), 13.0 / 16.5, 1e-12);
}

TEST(NormalizedEfficiency, RejectsBadArguments) {
  EXPECT_THROW(normalized_efficiency(1.0, 0, 0), slipflow::contract_error);
  EXPECT_THROW(normalized_efficiency(1.0, 4, 5), slipflow::contract_error);
  EXPECT_THROW(normalized_efficiency(1.0, 4, 1, 0.0),
               slipflow::contract_error);
}

TEST(PaperScenario, FilteredKeepsEfficiencyHigh) {
  // Figure 8: normalized efficiency ~0.9 for m < 4 slow nodes. Use a
  // shorter run than the paper's 20000 phases to keep the test quick;
  // the transient makes this slightly pessimistic, so accept >= 0.8.
  ClusterSim sim(paper::base_config(), RemapPolicy::create("filtered"));
  add_fixed_slow_nodes(sim, paper::slow_node_set(2));
  const int phases = 3000;
  const auto r = sim.run(phases);
  const double speedup = sim.sequential_time(phases) / r.makespan;
  EXPECT_GT(normalized_efficiency(speedup, 20, 2, 1.0 / 3.0), 0.8);
}

TEST(PaperScenario, TransientSpikesDeterministic) {
  auto make = [] {
    ClusterSim sim(paper::base_config(), RemapPolicy::create("filtered"));
    add_transient_spikes(sim, 120.0, 2.0, 10.0, /*seed=*/5);
    return sim.run(100).makespan;
  };
  EXPECT_DOUBLE_EQ(make(), make());
}

TEST(PaperScenario, GlobalWorstUnderTransientSpikes) {
  // Table 1: global remapping degrades most under random spikes.
  auto run_spiky = [](const char* policy) {
    ClusterSim sim(paper::base_config(), RemapPolicy::create(policy));
    add_transient_spikes(sim, 300.0, 3.0, 10.0, /*seed=*/11);
    return sim.run(paper::kSpikePhases).makespan;
  };
  const double none = run_spiky("none");
  const double filt = run_spiky("filtered");
  const double glob = run_spiky("global");
  // filtered tolerates spikes about as well as not remapping at all ...
  EXPECT_LT(filt, 1.2 * none);
  // ... while global pays for its synchronization
  EXPECT_GT(glob, filt);
}
