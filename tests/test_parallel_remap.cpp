// Dynamic remapping in the real parallel runner: plane migration must be
// physics-invariant (fields identical to the sequential reference even
// while planes move between ranks mid-run), and a slowed rank must
// actually shed planes.

#include <gtest/gtest.h>

#include <mutex>

#include "lbm/observables.hpp"
#include "lbm/simulation.hpp"
#include "sim/parallel_lbm.hpp"
#include "transport/thread_comm.hpp"

using namespace slipflow;
using namespace slipflow::lbm;
using slipflow::sim::ParallelLbm;
using slipflow::sim::RunnerConfig;

namespace {

const Extents kGrid{18, 6, 4};

RunnerConfig remap_runner(const std::string& policy, int ranks,
                          int slow_rank = -1, double slow_factor = 3.0) {
  RunnerConfig cfg;
  cfg.global = kGrid;
  cfg.fluid = FluidParams::microchannel_defaults(0.05, 1.5, 0.03, 1.0, 2e-5);
  cfg.policy = policy;
  cfg.remap_interval = 4;
  cfg.balance.window = 3;
  // one yz-plane of this grid is 24 points
  cfg.balance.min_transfer_points = 24;
  if (slow_rank >= 0) {
    cfg.slowdown.assign(static_cast<std::size_t>(ranks), 0.0);
    cfg.slowdown[static_cast<std::size_t>(slow_rank)] = slow_factor;
  }
  return cfg;
}

struct Fields {
  std::vector<std::vector<double>> water, air, ux;
};

Fields sequential_fields(int phases, const RunnerConfig& cfg) {
  Simulation sim(kGrid, cfg.fluid);
  sim.initialize_uniform();
  sim.run(phases);
  Fields f;
  for (index_t gx = 0; gx < kGrid.nx; ++gx) {
    f.water.push_back(density_profile_y(sim.slab(), 0, gx, 2));
    f.air.push_back(density_profile_y(sim.slab(), 1, gx, 2));
    f.ux.push_back(velocity_profile_y(sim.slab(), gx, 2));
  }
  return f;
}

struct ParallelOutcome {
  Fields fields;
  std::vector<sim::RankStats> stats;
  long long total_migrated = 0;
};

ParallelOutcome run_parallel(int ranks, int phases, const RunnerConfig& cfg) {
  ParallelOutcome out;
  out.fields.water.resize(static_cast<std::size_t>(kGrid.nx));
  out.fields.air.resize(static_cast<std::size_t>(kGrid.nx));
  out.fields.ux.resize(static_cast<std::size_t>(kGrid.nx));
  std::mutex mu;
  transport::run_ranks(ranks, [&](transport::Communicator& comm) {
    ParallelLbm run(cfg, comm);
    run.initialize_uniform();
    run.run(phases);
    auto stats = run.gather_stats();
    for (index_t gx = 0; gx < kGrid.nx; ++gx) {
      auto w = run.gather_density_profile_y(0, gx, 2);
      auto a = run.gather_density_profile_y(1, gx, 2);
      auto u = run.gather_velocity_profile_y(gx, 2);
      if (comm.rank() == 0) {
        std::lock_guard<std::mutex> lk(mu);
        const auto i = static_cast<std::size_t>(gx);
        out.fields.water[i] = std::move(w);
        out.fields.air[i] = std::move(a);
        out.fields.ux[i] = std::move(u);
      }
    }
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      out.stats = std::move(stats);
      out.total_migrated = 0;
      for (const auto& s : out.stats) out.total_migrated += s.planes_sent;
    }
  });
  return out;
}

void expect_fields_identical(const Fields& a, const Fields& b) {
  for (std::size_t gx = 0; gx < a.water.size(); ++gx) {
    ASSERT_EQ(a.water[gx].size(), b.water[gx].size());
    for (std::size_t j = 0; j < a.water[gx].size(); ++j) {
      EXPECT_DOUBLE_EQ(a.water[gx][j], b.water[gx][j]) << gx << "," << j;
      EXPECT_DOUBLE_EQ(a.air[gx][j], b.air[gx][j]) << gx << "," << j;
      EXPECT_DOUBLE_EQ(a.ux[gx][j], b.ux[gx][j]) << gx << "," << j;
    }
  }
}

}  // namespace

TEST(ParallelRemap, SlowRankShedsPlanes) {
  const auto cfg = remap_runner("filtered", 3, /*slow_rank=*/1);
  const auto out = run_parallel(3, 60, cfg);
  ASSERT_EQ(out.stats.size(), 3u);
  EXPECT_GT(out.total_migrated, 0);
  // the slowed middle rank ends with fewer planes than the even split (6)
  EXPECT_LT(out.stats[1].planes, 6);
  long long total = 0;
  for (const auto& s : out.stats) total += s.planes;
  EXPECT_EQ(total, kGrid.nx);
}

TEST(ParallelRemap, MigrationIsPhysicsInvariant) {
  // THE key invariant: remapping only moves ownership, never changes the
  // simulated field — parallel-with-migration equals sequential exactly.
  const auto cfg = remap_runner("filtered", 3, /*slow_rank=*/1);
  const auto seq = sequential_fields(60, cfg);
  const auto par = run_parallel(3, 60, cfg);
  EXPECT_GT(par.total_migrated, 0);  // remapping actually happened
  expect_fields_identical(seq, par.fields);
}

TEST(ParallelRemap, ConservativePolicyAlsoInvariant) {
  const auto cfg = remap_runner("conservative", 3, /*slow_rank=*/0);
  const auto seq = sequential_fields(50, cfg);
  const auto par = run_parallel(3, 50, cfg);
  expect_fields_identical(seq, par.fields);
}

TEST(ParallelRemap, GlobalPolicyAlsoInvariant) {
  const auto cfg = remap_runner("global", 3, /*slow_rank=*/2);
  const auto seq = sequential_fields(50, cfg);
  const auto par = run_parallel(3, 50, cfg);
  EXPECT_GT(par.total_migrated, 0);
  expect_fields_identical(seq, par.fields);
}

TEST(ParallelRemap, TwoRanksEndToEnd) {
  const auto cfg = remap_runner("filtered", 2, /*slow_rank=*/0);
  const auto seq = sequential_fields(50, cfg);
  const auto par = run_parallel(2, 50, cfg);
  expect_fields_identical(seq, par.fields);
}

TEST(ParallelRemap, BalancedRunStaysPhysicsInvariant) {
  // with no injected slowdown, OS scheduling noise may or may not trigger
  // migrations (rank threads share two cores here) — either way the
  // fields must equal the sequential reference and ownership must stay
  // complete. (Deterministic laziness under balanced load is asserted in
  // the virtual-cluster tests, where timing is exact.)
  const auto cfg = remap_runner("filtered", 3);
  const auto seq = sequential_fields(40, cfg);
  const auto par = run_parallel(3, 40, cfg);
  expect_fields_identical(seq, par.fields);
  long long total = 0;
  for (const auto& s : par.stats) total += s.planes;
  EXPECT_EQ(total, kGrid.nx);
}

TEST(ParallelRemap, MassConservedThroughMigrations) {
  const auto cfg = remap_runner("filtered", 3, /*slow_rank=*/1);
  transport::run_ranks(3, [&](transport::Communicator& comm) {
    ParallelLbm run(cfg, comm);
    run.initialize_uniform();
    const double m0 = run.global_mass(0);
    const double m1 = run.global_mass(1);
    run.run(60);
    EXPECT_NEAR(run.global_mass(0), m0, 1e-9 * m0);
    EXPECT_NEAR(run.global_mass(1), m1, 1e-9 * m1);
  });
}

TEST(ParallelRemap, EveryRankKeepsAtLeastOnePlane) {
  const auto cfg =
      remap_runner("filtered", 4, /*slow_rank=*/2, /*slow_factor=*/8.0);
  const auto out = run_parallel(4, 80, cfg);
  for (const auto& s : out.stats) EXPECT_GE(s.planes, 1);
}

TEST(ParallelRemap, RemapTimeIsAccounted) {
  const auto cfg = remap_runner("filtered", 3, /*slow_rank=*/1);
  const auto out = run_parallel(3, 60, cfg);
  double remap_total = 0.0;
  for (const auto& s : out.stats) remap_total += s.remap_seconds;
  EXPECT_GT(remap_total, 0.0);
}
