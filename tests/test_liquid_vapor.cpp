// Single-component nonideal fluid (original Shan-Chen pseudopotential,
// attractive self-coupling): phase separation, coexistence, and the
// Laplace pressure jump across a curved interface.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "lbm/observables.hpp"
#include "lbm/simulation.hpp"

using namespace slipflow::lbm;

namespace {

/// Shan-Chen equation of state: p = n cs^2 + (cs^2 g / 2) psi(n)^2 with
/// psi = 1 - exp(-n).
double sc_pressure(double n, double g) {
  const double psi = 1.0 - std::exp(-n);
  return n * kCs2 + 0.5 * kCs2 * g * psi * psi;
}

/// Periodic box with a seeded density stripe/droplet. z size kept tiny —
/// the physics of interest is 2-D-like.
Simulation periodic_box(Extents e, FluidParams p) {
  return Simulation(e, std::move(p), nullptr, /*walls_y=*/false,
                    /*walls_z=*/false);
}

}  // namespace

TEST(LiquidVapor, UniformStateStaysUniformAboveCriticalG) {
  // weak attraction (above critical, i.e. |g| too small to demix)
  Simulation sim = periodic_box(Extents{16, 16, 2},
                                FluidParams::liquid_vapor(-2.0));
  sim.initialize_uniform();
  sim.run(400);
  const auto prof = density_profile_y(sim.slab(), 0, 4, 1);
  for (double v : prof) EXPECT_NEAR(v, 1.0, 1e-6);
}

TEST(LiquidVapor, SeededStripeSeparatesIntoTwoPhases) {
  Simulation sim = periodic_box(Extents{8, 32, 2},
                                FluidParams::liquid_vapor(-5.0));
  // a denser stripe in the middle third seeds the liquid phase
  sim.initialize([](std::size_t, index_t, index_t gy, index_t) {
    return (gy >= 11 && gy < 21) ? 1.6 : 0.8;
  });
  sim.run(2000);
  const auto n = density_profile_y(sim.slab(), 0, 4, 1);
  const double lo = *std::min_element(n.begin(), n.end());
  const double hi = *std::max_element(n.begin(), n.end());
  EXPECT_GT(hi / lo, 3.0);  // clearly two phases
  for (double v : n) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GT(v, 0.0);
  }
}

TEST(LiquidVapor, CoexistenceDensitiesAreStable) {
  // seed a planar liquid slab directly at near-coexistence densities so
  // the test measures stability of the equilibrium, not coarsening speed
  Simulation sim = periodic_box(Extents{8, 32, 2},
                                FluidParams::liquid_vapor(-5.0));
  sim.initialize([](std::size_t, index_t, index_t gy, index_t) {
    return (gy >= 11 && gy < 21) ? 1.9 : 0.2;
  });
  sim.run(2500);
  const auto n1 = density_profile_y(sim.slab(), 0, 4, 1);
  sim.run(500);
  const auto n2 = density_profile_y(sim.slab(), 0, 4, 1);
  // the phase densities have converged
  const double hi1 = *std::max_element(n1.begin(), n1.end());
  const double hi2 = *std::max_element(n2.begin(), n2.end());
  const double lo1 = *std::min_element(n1.begin(), n1.end());
  const double lo2 = *std::min_element(n2.begin(), n2.end());
  EXPECT_NEAR(hi2, hi1, 0.02 * hi1);
  EXPECT_NEAR(lo2, lo1, 0.05 * lo1);
}

TEST(LiquidVapor, MassConservedThroughSeparation) {
  Simulation sim = periodic_box(Extents{8, 24, 2},
                                FluidParams::liquid_vapor(-5.0));
  sim.initialize([](std::size_t, index_t, index_t gy, index_t) {
    return (gy >= 8 && gy < 16) ? 1.6 : 0.8;
  });
  const double m0 = owned_mass(sim.slab(), 0);
  sim.run(1500);
  EXPECT_NEAR(owned_mass(sim.slab(), 0), m0, 1e-8 * m0);
}

namespace {

/// Form a liquid cylinder (periodic in x and z) of given seed radius and
/// return (pressure inside, pressure outside, measured radius).
struct Droplet {
  double p_in, p_out, radius;
};

Droplet run_droplet(double seed_radius, double g) {
  const index_t n = 44;
  Simulation sim = periodic_box(Extents{4, n, n},
                                FluidParams::liquid_vapor(g));
  const double cy = n / 2.0 - 0.5, cz = n / 2.0 - 0.5;
  // background seeded near the vapor coexistence density so the vapor is
  // not inside the spinodal (it would condense everywhere otherwise)
  sim.initialize([&](std::size_t, index_t, index_t gy, index_t gz) {
    const double dy = static_cast<double>(gy) - cy;
    const double dz = static_cast<double>(gz) - cz;
    return std::sqrt(dy * dy + dz * dz) < seed_radius ? 1.9 : 0.2;
  });
  sim.run(3000);

  const Extents& st = sim.slab().storage();
  // average small probe regions (spurious currents make single cells
  // noisy): droplet center 3x3 and the far corner 3x3
  auto probe = [&](index_t y0, index_t z0) {
    double s = 0.0;
    for (index_t y = y0; y < y0 + 3; ++y)
      for (index_t z = z0; z < z0 + 3; ++z)
        s += sim.slab().density(0)[st.idx(1, y, z)];
    return s / 9.0;
  };
  const double n_in = probe(n / 2 - 1, n / 2 - 1);
  const double n_out = probe(0, 0);
  const double thresh = 0.5 * (n_in + n_out);
  double area = 0.0;
  for (index_t y = 0; y < n; ++y)
    for (index_t z = 0; z < n; ++z)
      if (sim.slab().density(0)[st.idx(1, y, z)] > thresh) area += 1.0;
  return {sc_pressure(n_in, g), sc_pressure(n_out, g),
          std::sqrt(area / M_PI)};
}

}  // namespace

TEST(LiquidVapor, LaplaceLawPressureJump) {
  // dp = sigma / R for a 2-D (cylindrical) interface. At the resolutions
  // and run lengths a unit test affords, the quantitative sigma constant
  // still drifts with the diffuse-interface width, so this asserts the
  // robust core of the law: both jumps positive and the smaller droplet
  // carrying the strictly larger jump.
  const double g = -5.0;
  const Droplet small = run_droplet(8.0, g);
  const Droplet large = run_droplet(14.0, g);
  EXPECT_GT(small.radius, 6.0);
  EXPECT_GT(large.radius, small.radius + 3.0);
  const double dp_small = small.p_in - small.p_out;
  const double dp_large = large.p_in - large.p_out;
  EXPECT_GT(dp_small, 0.0);
  EXPECT_GT(dp_large, 0.0);
  EXPECT_GT(dp_small, 1.5 * dp_large);
  // interior density exceeds the flat-interface liquid branch more for
  // the more curved interface (the Kelvin effect's sign)
  EXPECT_GT(small.p_in, large.p_in);
}
