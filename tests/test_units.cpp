// Unit-system conversions: round trips, derived-scale consistency, the
// paper's channel scales, and the dimensionless numbers.

#include <gtest/gtest.h>

#include <cmath>

#include "lbm/units.hpp"

using namespace slipflow::lbm;

TEST(Units, RoundTripsAreIdentity) {
  const UnitSystem u(5e-9, 1e-11, 1000.0);
  EXPECT_NEAR(u.to_lattice_length(u.length_m(3.7)), 3.7, 1e-12);
  EXPECT_NEAR(u.to_lattice_time(u.time_s(42.0)), 42.0, 1e-9);
  EXPECT_NEAR(u.to_lattice_velocity(u.velocity_m_s(0.01)), 0.01, 1e-12);
  EXPECT_NEAR(u.to_lattice_density(u.density_kg_m3(0.97)), 0.97, 1e-12);
  EXPECT_NEAR(u.to_lattice_acceleration(u.acceleration_m_s2(2e-5)), 2e-5,
              1e-15);
}

TEST(Units, VelocityIsLengthOverTime) {
  const UnitSystem u(2e-9, 4e-12, 1000.0);
  EXPECT_DOUBLE_EQ(u.velocity_m_s(1.0), 2e-9 / 4e-12);
}

TEST(Units, ViscosityScalesAsDx2OverDt) {
  const UnitSystem u(5e-9, 1e-11, 1000.0);
  EXPECT_DOUBLE_EQ(u.kinematic_viscosity_m2_s(1.0 / 6.0),
                   (1.0 / 6.0) * 25e-18 / 1e-11);
}

TEST(Units, FromViscosityRecoversTargetViscosity) {
  // tau = 1 -> nu_lattice = 1/6; water nu = 1e-6 m^2/s
  const UnitSystem u = UnitSystem::from_viscosity(5e-9, 1e-6, 1.0, 1000.0);
  EXPECT_NEAR(u.kinematic_viscosity_m2_s(1.0 / 6.0), 1e-6, 1e-18);
}

TEST(Units, PaperChannelScales) {
  // at the paper's resolution (ny = 200): dx = 5 nm
  const UnitSystem u = UnitSystem::paper_channel(200);
  EXPECT_NEAR(u.dx(), 5e-9, 1e-15);
  // the time step this implies is tiny — the reason "it can take
  // hundreds of days on a fast single-processor machine"
  EXPECT_LT(u.dt(), 1e-10);
  EXPECT_GT(u.dt(), 1e-13);
  // 1 micron channel width spans ny cells
  EXPECT_NEAR(u.to_lattice_length(1e-6), 200.0, 1e-9);
}

TEST(Units, ForceDensityAndPressureScales) {
  const UnitSystem u(5e-9, 1e-11, 1000.0);
  // dimensional consistency: p / (rho v^2) is dimensionless
  const double v = u.velocity_m_s(1.0);
  EXPECT_NEAR(u.pressure_Pa(1.0), 1000.0 * v * v, 1e-6 * 1000.0 * v * v);
  // force density = rho * acceleration
  EXPECT_NEAR(u.force_density_N_m3(1.0),
              1000.0 * u.acceleration_m_s2(1.0), 1e-3);
}

TEST(Units, ReynoldsNumber) {
  // u = 0.01, L = 20, tau = 1 -> Re = 0.01*20/(1/6) = 1.2
  EXPECT_NEAR(UnitSystem::reynolds(0.01, 20.0, 1.0), 1.2, 1e-12);
  // microchannel flows are laminar: tiny Re
  EXPECT_LT(UnitSystem::reynolds(3e-4, 20.0, 1.0), 0.1);
}

TEST(Units, KnudsenNumber) {
  // water mean free path ~0.3 nm; 0.1 micron depth -> Kn ~ 0.003
  EXPECT_NEAR(UnitSystem::knudsen(0.3e-9, 0.1e-6), 0.003, 1e-12);
  EXPECT_THROW(UnitSystem::knudsen(0.0, 1.0), slipflow::contract_error);
}

TEST(Units, MachNumber) {
  EXPECT_NEAR(UnitSystem::mach(1.0 / std::sqrt(3.0)), 1.0, 1e-12);
  // our channel velocities are deeply subsonic
  EXPECT_LT(UnitSystem::mach(3e-4), 0.001);
}

TEST(Units, InvalidConstruction) {
  EXPECT_THROW(UnitSystem(0.0, 1.0, 1.0), slipflow::contract_error);
  EXPECT_THROW(UnitSystem(1.0, -1.0, 1.0), slipflow::contract_error);
  EXPECT_THROW(UnitSystem::from_viscosity(1e-9, 1e-6, 0.5, 1.0),
               slipflow::contract_error);
}
