// Unit tests for the observability layer: MetricsRegistry semantics
// (counters / gauges / histograms / spans), the PhaseProfiler front-end
// with injectable clocks, and the CSV / summary-JSON / Chrome-trace
// exporters.

#include <gtest/gtest.h>

#include <sstream>
#include <utility>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

using namespace slipflow;
using namespace slipflow::obs;

TEST(MetricsRegistry, CountersAccumulatePerRankAndTotal) {
  MetricsRegistry reg(3);
  reg.add(0, "planes_sent", 2.0);
  reg.add(0, "planes_sent", 3.0);
  reg.add(2, "planes_sent", 4.0);
  EXPECT_DOUBLE_EQ(reg.counter(0, "planes_sent"), 5.0);
  EXPECT_DOUBLE_EQ(reg.counter(1, "planes_sent"), 0.0);  // absent = 0
  EXPECT_DOUBLE_EQ(reg.counter(2, "planes_sent"), 4.0);
  EXPECT_DOUBLE_EQ(reg.counter_total("planes_sent"), 9.0);
}

TEST(MetricsRegistry, GaugesKeepLastValue) {
  MetricsRegistry reg(1);
  EXPECT_FALSE(reg.has_gauge(0, "planes_end"));
  reg.set(0, "planes_end", 7.0);
  reg.set(0, "planes_end", 5.0);
  EXPECT_TRUE(reg.has_gauge(0, "planes_end"));
  EXPECT_DOUBLE_EQ(reg.gauge(0, "planes_end"), 5.0);
  EXPECT_THROW((void)reg.gauge(0, "missing"), contract_error);
}

TEST(MetricsRegistry, HistogramSummarizesSamples) {
  MetricsRegistry reg(1);
  for (double v : {3.0, 1.0, 2.0}) reg.observe(0, "phase_seconds", v);
  const HistogramSummary h = reg.histogram(0, "phase_seconds");
  EXPECT_EQ(h.count, 3);
  EXPECT_DOUBLE_EQ(h.sum, 6.0);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 3.0);
  EXPECT_EQ(reg.histogram(0, "absent").count, 0);
}

TEST(MetricsRegistry, SpansFeedTimeCounters) {
  MetricsRegistry reg(2);
  reg.record_span(1, "collide", 1.0, 1.5, /*phase=*/3);
  reg.record_span(1, "collide", 2.0, 2.25, /*phase=*/4);
  EXPECT_DOUBLE_EQ(reg.counter(1, "time/collide"), 0.75);
  ASSERT_EQ(reg.spans(1).size(), 2u);
  EXPECT_EQ(reg.spans(1)[0].name, "collide");
  EXPECT_EQ(reg.spans(1)[0].phase, 3);
  EXPECT_TRUE(reg.spans(0).empty());
}

TEST(MetricsRegistry, SpanDroppingModeKeepsCountersOnly) {
  MetricsRegistry reg(1, /*keep_spans=*/false);
  reg.record_span(0, "remap", 0.0, 2.0);
  EXPECT_DOUBLE_EQ(reg.counter(0, "time/remap"), 2.0);
  EXPECT_TRUE(reg.spans(0).empty());
}

TEST(MetricsRegistry, InvalidUseIsRejected) {
  EXPECT_THROW(MetricsRegistry(0), contract_error);
  MetricsRegistry reg(2);
  EXPECT_THROW(reg.add(2, "x", 1.0), contract_error);
  EXPECT_THROW(reg.add(-1, "x", 1.0), contract_error);
  EXPECT_THROW(reg.record_span(0, "backwards", 2.0, 1.0), contract_error);
}

TEST(MetricsRegistry, NameEnumerationIsSortedUnion) {
  MetricsRegistry reg(2);
  reg.add(1, "zeta", 1.0);
  reg.add(0, "alpha", 1.0);
  reg.add(1, "alpha", 1.0);
  const auto names = reg.counter_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

TEST(MetricsRegistry, CsvIsStableAndComplete) {
  MetricsRegistry reg(2);
  reg.add(0, "halo_bytes", 1024.0);
  reg.set(1, "planes_end", 9.0);
  reg.observe(0, "phase_seconds", 0.5);
  std::ostringstream a, b;
  reg.write_csv(a);
  reg.write_csv(b);
  EXPECT_EQ(a.str(), b.str());  // re-export is byte-stable
  EXPECT_NE(a.str().find("kind,rank,name,value,count,min,max"),
            std::string::npos);
  EXPECT_NE(a.str().find("counter,0,halo_bytes,1024"), std::string::npos);
  EXPECT_NE(a.str().find("gauge,1,planes_end,9"), std::string::npos);
  EXPECT_NE(a.str().find("histogram,0,phase_seconds,0.5,1,0.5,0.5"),
            std::string::npos);
}

TEST(MetricsRegistry, SummaryJsonHasTotalsAndPerRank) {
  MetricsRegistry reg(2);
  reg.add(0, "planes_sent", 2.0);
  reg.add(1, "planes_sent", 3.0);
  std::ostringstream os;
  reg.write_summary_json(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"ranks\": 2"), std::string::npos);
  EXPECT_NE(s.find("\"planes_sent\": 5"), std::string::npos);
  EXPECT_NE(s.find("{\"rank\": 1, \"planes_sent\": 3}"), std::string::npos);
}

TEST(ChromeTrace, EmitsCompleteEventsInMicroseconds) {
  MetricsRegistry reg(2);
  reg.record_span(1, "halo_f", 0.001, 0.003, /*phase=*/2);
  std::ostringstream os;
  write_chrome_trace(reg, os, "unit-test");
  const std::string s = os.str();
  EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(s.find("\"name\":\"unit-test\""), std::string::npos);
  // 0.001 s -> 1000 us, duration 2000 us, on tid 1 with the phase arg
  EXPECT_NE(s.find("\"ph\":\"X\",\"pid\":0,\"tid\":1,\"name\":\"halo_f\""),
            std::string::npos);
  EXPECT_NE(s.find("\"ts\":1000,\"dur\":2000"), std::string::npos);
  EXPECT_NE(s.find("\"args\":{\"phase\":2}"), std::string::npos);
}

TEST(Clocks, ManualClockIsExternallyDriven) {
  ManualClock c(5.0);
  EXPECT_DOUBLE_EQ(c.now(), 5.0);
  c.advance(1.5);
  EXPECT_DOUBLE_EQ(c.now(), 6.5);
  c.set(2.0);
  EXPECT_DOUBLE_EQ(c.now(), 2.0);
}

TEST(Clocks, CountingClockAdvancesPerRead) {
  CountingClock c(0.25);
  EXPECT_DOUBLE_EQ(c.now(), 0.25);
  EXPECT_DOUBLE_EQ(c.now(), 0.5);
  EXPECT_DOUBLE_EQ(c.now(), 0.75);
}

TEST(Clocks, WallClockIsMonotonic) {
  WallClock c;
  const double a = c.now();
  const double b = c.now();
  EXPECT_GE(b, a);
}

TEST(PhaseProfiler, StageRecordsSpanThroughInjectedClock) {
  MetricsRegistry reg(2);
  PhaseProfiler prof(&reg, 1, std::make_shared<CountingClock>(1.0));
  prof.begin_phase(7);
  {
    auto s = prof.stage("collide");  // begin = 1.0
    EXPECT_DOUBLE_EQ(s.stop(), 1.0);  // end = 2.0
  }
  ASSERT_EQ(reg.spans(1).size(), 1u);
  EXPECT_DOUBLE_EQ(reg.spans(1)[0].begin, 1.0);
  EXPECT_DOUBLE_EQ(reg.spans(1)[0].end, 2.0);
  EXPECT_EQ(reg.spans(1)[0].phase, 7);
  EXPECT_DOUBLE_EQ(reg.counter(1, "time/collide"), 1.0);
}

TEST(PhaseProfiler, StageSecondStopIsNoOp) {
  MetricsRegistry reg(1);
  PhaseProfiler prof(&reg, 0, std::make_shared<CountingClock>(1.0));
  auto s = prof.stage("collide");
  EXPECT_DOUBLE_EQ(s.stop(), 1.0);
  EXPECT_DOUBLE_EQ(s.stop(), 0.0);  // already stopped: no span, no UB
  auto moved = std::move(s);
  EXPECT_DOUBLE_EQ(moved.stop(), 0.0);  // moved-from source was spent
  ASSERT_EQ(reg.spans(0).size(), 1u);
}

TEST(PhaseProfiler, StageDestructorRecordsWhenNotStopped) {
  MetricsRegistry reg(1);
  PhaseProfiler prof(&reg, 0, std::make_shared<CountingClock>(1.0));
  { auto s = prof.stage("remap"); }
  ASSERT_EQ(reg.spans(0).size(), 1u);
  EXPECT_EQ(reg.spans(0)[0].name, "remap");
}

TEST(PhaseProfiler, NullRegistryOwnsPrivateShard) {
  PhaseProfiler prof(nullptr, 42, std::make_shared<CountingClock>(1.0));
  prof.add("planes_sent", 3.0);
  prof.record_span("collide", 0.0, 1.0);
  EXPECT_EQ(prof.rank(), 0);  // remapped into the private registry
  EXPECT_EQ(prof.registry().ranks(), 1);
  EXPECT_DOUBLE_EQ(prof.registry().counter(0, "planes_sent"), 3.0);
  EXPECT_EQ(prof.registry().spans(0).size(), 1u);
}

TEST(PhaseProfiler, RankMustFitRegistry) {
  MetricsRegistry reg(2);
  EXPECT_THROW(PhaseProfiler(&reg, 2), contract_error);
}
