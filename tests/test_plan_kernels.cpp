// Kernel-equivalence matrix for the StreamingPlan fast path: the fused
// collide+stream and plan-based force kernels must reproduce the legacy
// reference kernels to within 1e-13 per population (empirically they are
// bit-exact — shared collision expressions keep FP contraction identical)
// across every boundary-condition class the geometry supports, for both
// collision operators and both component counts. Plus: the plan's write
// coverage is structurally verified (every fluid slot written exactly
// once), and a plan rebuilt after a mid-run plane migration in the thread
// runner still matches the sequential legacy reference.

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "lbm/observables.hpp"
#include "lbm/plan.hpp"
#include "lbm/simulation.hpp"
#include "obs/metrics.hpp"
#include "sim/parallel_lbm.hpp"
#include "transport/thread_comm.hpp"

using namespace slipflow;
using namespace slipflow::lbm;

namespace {

constexpr double kTol = 1e-13;

// -- the boundary-condition axis of the matrix -------------------------

struct GeoCase {
  const char* name;
  bool walls_y = false;
  bool walls_z = false;
  bool obstacle = false;
  bool moving = false;
  bool patterned = false;
};

const GeoCase kGeoCases[] = {
    {"periodic", false, false},
    {"walls_y", true, false},
    {"walls_z", false, true},
    {"channel", true, true},
    {"obstacles", true, true, /*obstacle=*/true},
    {"moving_walls", true, true, false, /*moving=*/true},
    {"patterned", true, true, false, false, /*patterned=*/true},
};

const Extents kGrid{8, 6, 5};

std::shared_ptr<const ChannelGeometry> make_geom(const GeoCase& gc) {
  std::function<bool(index_t, index_t, index_t)> obstacle;
  if (gc.obstacle) {
    obstacle = [](index_t gx, index_t gy, index_t gz) {
      return gx >= 3 && gx < 5 && gy >= 2 && gy < 4 && gz >= 1 && gz < 3;
    };
  }
  auto g = std::make_shared<ChannelGeometry>(kGrid, obstacle, gc.walls_y,
                                             gc.walls_z);
  if (gc.moving) {
    // tangential components only (normal must be zero); two walls move so
    // corner cells accumulate both corrections
    g->set_wall_velocity(ChannelGeometry::Wall::z_low, {0.02, 0.01, 0.0});
    g->set_wall_velocity(ChannelGeometry::Wall::y_high, {-0.01, 0.0, 0.005});
  }
  return g;
}

FluidParams make_params(int ncomp, CollisionModel cm, const GeoCase& gc) {
  FluidParams p = ncomp == 1
                      ? FluidParams::single_component(/*tau=*/0.8, 1e-5)
                      : FluidParams::microchannel_defaults(0.1, 1.5, 0.05,
                                                           1.0, 2e-5);
  if (ncomp == 1 && (gc.walls_y || gc.walls_z))
    p.components[0].wall_accel = 0.15;  // wall force active in 1-comp runs
  if (gc.patterned) {
    p.wall_pattern = [](index_t gx, index_t gy, index_t gz) {
      return 1.0 + 0.5 * static_cast<double>((gx + gy + gz) % 2);
    };
  }
  for (auto& c : p.components) c.collision = cm;
  return p;
}

// deterministic non-uniform initial density, decomposition-invariant
double init_density(const FluidParams& p, std::size_t c, index_t gx,
                    index_t gy, index_t gz) {
  const double base = p.components[c].init_density;
  const auto h = static_cast<double>((3 * gx + 5 * gy + 7 * gz) % 11);
  return base * (1.0 + 0.05 * h / 11.0);
}

void expect_slabs_match(const Slab& plan_s, const Slab& legacy_s) {
  const Extents& e = plan_s.storage();
  for (index_t lx = 1; lx <= plan_s.nx_local(); ++lx)
    for (index_t y = 0; y < e.ny; ++y)
      for (index_t z = 0; z < e.nz; ++z) {
        const index_t cell = e.idx(lx, y, z);
        for (std::size_t c = 0; c < plan_s.num_components(); ++c) {
          for (int d = 0; d < kQ; ++d)
            ASSERT_NEAR(plan_s.f(c).at(d, cell), legacy_s.f(c).at(d, cell),
                        kTol)
                << "f c=" << c << " d=" << d << " @(" << lx << "," << y << ","
                << z << ")";
          ASSERT_NEAR(plan_s.density(c)[cell], legacy_s.density(c)[cell], kTol)
              << "n c=" << c << " @(" << lx << "," << y << "," << z << ")";
          const Vec3 ua = plan_s.ueq(c).at(cell);
          const Vec3 ub = legacy_s.ueq(c).at(cell);
          ASSERT_NEAR(ua.x, ub.x, kTol) << "ueq.x c=" << c;
          ASSERT_NEAR(ua.y, ub.y, kTol) << "ueq.y c=" << c;
          ASSERT_NEAR(ua.z, ub.z, kTol) << "ueq.z c=" << c;
        }
        const Vec3 va = plan_s.velocity().at(cell);
        const Vec3 vb = legacy_s.velocity().at(cell);
        ASSERT_NEAR(va.x, vb.x, kTol) << "u.x";
        ASSERT_NEAR(va.y, vb.y, kTol) << "u.y";
        ASSERT_NEAR(va.z, vb.z, kTol) << "u.z";
        ASSERT_NEAR(plan_s.total_density()[cell], legacy_s.total_density()[cell],
                    kTol)
            << "rho";
      }
}

void run_and_compare(const GeoCase& gc, int ncomp, CollisionModel cm,
                     int phases = 16) {
  const auto geom = make_geom(gc);
  const FluidParams params = make_params(ncomp, cm, gc);
  Simulation plan_sim(geom, params);
  Simulation legacy_sim(geom, params);
  plan_sim.set_kernel_path(KernelPath::plan);
  legacy_sim.set_kernel_path(KernelPath::legacy);
  const auto init = [&params](std::size_t c, index_t gx, index_t gy,
                              index_t gz) {
    return init_density(params, c, gx, gy, gz);
  };
  plan_sim.initialize(init);
  legacy_sim.initialize(init);
  plan_sim.run(phases);
  legacy_sim.run(phases);
  expect_slabs_match(plan_sim.slab(), legacy_sim.slab());
}

}  // namespace

// -- the matrix: {7 geometries} x {BGK, MRT} x {1, 2 components} --------

TEST(PlanKernels, MatchesLegacyAcrossMatrix) {
  for (const auto& gc : kGeoCases)
    for (int ncomp : {1, 2})
      for (CollisionModel cm : {CollisionModel::bgk, CollisionModel::mrt}) {
        SCOPED_TRACE(std::string(gc.name) + " ncomp=" +
                     std::to_string(ncomp) + " " +
                     (cm == CollisionModel::bgk ? "bgk" : "mrt"));
        run_and_compare(gc, ncomp, cm);
      }
}

TEST(PlanKernels, ShanChenPsiFormMatchesLegacy) {
  // the liquid-vapor pseudopotential psi = 1 - exp(-n) exercises the
  // plan force kernel's per-step psi scratch cache (the density form
  // aliases n directly)
  const auto geom = std::make_shared<ChannelGeometry>(
      kGrid, std::function<bool(index_t, index_t, index_t)>{}, false, false);
  FluidParams params = FluidParams::liquid_vapor(-5.0, 1.0);
  Simulation plan_sim(geom, params);
  Simulation legacy_sim(geom, params);
  plan_sim.set_kernel_path(KernelPath::plan);
  legacy_sim.set_kernel_path(KernelPath::legacy);
  const auto init = [&params](std::size_t c, index_t gx, index_t gy,
                              index_t gz) {
    return init_density(params, c, gx, gy, gz);
  };
  plan_sim.initialize(init);
  legacy_sim.initialize(init);
  plan_sim.run(20);
  legacy_sim.run(20);
  expect_slabs_match(plan_sim.slab(), legacy_sim.slab());
}

// -- structural coverage of the streaming plan --------------------------

namespace {

// Replay the fused kernel's write pattern symbolically and count how many
// times each (direction, cell) slot of f would be written.
void expect_full_coverage(const ChannelGeometry& geom, index_t x_begin,
                          index_t nx_local) {
  const StreamingPlan plan(geom, x_begin, nx_local);
  const Extents& e = plan.storage();
  std::vector<int> writes(static_cast<std::size_t>(kQ) *
                              static_cast<std::size_t>(e.cells()),
                          0);
  const auto slot = [&](int d, index_t cell) -> int& {
    return writes[static_cast<std::size_t>(d) *
                      static_cast<std::size_t>(e.cells()) +
                  static_cast<std::size_t>(cell)];
  };
  for (const auto& run : plan.stream_interior())
    for (index_t i = 0; i < run.count; ++i)
      for (int d = 0; d < kQ; ++d)
        slot(d, run.cell + i + plan.dir_offset(d)) += 1;
  for (const auto& b : plan.stream_boundary()) {
    slot(0, b.cell) += 1;  // the rest population stays home
    for (std::uint32_t l = b.link_begin; l < b.link_end; ++l) {
      const StreamLink& lk = plan.links()[l];
      slot(lk.dest_dir, lk.dest) += 1;
    }
  }
  for (const auto& h : plan.halo_pulls()) slot(h.dir, h.dest) += 1;

  std::vector<char> solid(static_cast<std::size_t>(e.cells()), 0);
  for (index_t s : plan.solids()) solid[static_cast<std::size_t>(s)] = 1;

  for (index_t lx = 0; lx < e.nx; ++lx)
    for (index_t y = 0; y < e.ny; ++y)
      for (index_t z = 0; z < e.nz; ++z) {
        const index_t cell = e.idx(lx, y, z);
        const bool owned = lx >= 1 && lx <= nx_local;
        for (int d = 0; d < kQ; ++d) {
          const int expected =
              owned && !solid[static_cast<std::size_t>(cell)] ? 1 : 0;
          ASSERT_EQ(slot(d, cell), expected)
              << "d=" << d << " @(" << lx << "," << y << "," << z
              << ") owned=" << owned;
        }
      }
}

// The force plan must cover every owned cell exactly once (the legacy
// kernel sweeps solids too — they come out with zero density).
void expect_force_coverage(const ChannelGeometry& geom, index_t x_begin,
                           index_t nx_local) {
  const StreamingPlan plan(geom, x_begin, nx_local);
  const Extents& e = plan.storage();
  std::vector<int> visits(static_cast<std::size_t>(e.cells()), 0);
  for (const auto& run : plan.force_interior())
    for (index_t i = 0; i < run.count; ++i)
      visits[static_cast<std::size_t>(run.cell + i)] += 1;
  for (const auto& b : plan.force_boundary())
    visits[static_cast<std::size_t>(b.cell)] += 1;
  for (index_t lx = 0; lx < e.nx; ++lx)
    for (index_t y = 0; y < e.ny; ++y)
      for (index_t z = 0; z < e.nz; ++z) {
        const index_t cell = e.idx(lx, y, z);
        const int expected = lx >= 1 && lx <= nx_local ? 1 : 0;
        ASSERT_EQ(visits[static_cast<std::size_t>(cell)], expected)
            << "@(" << lx << "," << y << "," << z << ")";
      }
}

}  // namespace

TEST(PlanStructure, EveryFluidSlotWrittenExactlyOnce) {
  for (const auto& gc : kGeoCases) {
    SCOPED_TRACE(gc.name);
    const auto geom = make_geom(gc);
    expect_full_coverage(*geom, 0, kGrid.nx);  // full domain
    expect_full_coverage(*geom, 3, 3);         // mid slab (obstacle inside)
    expect_full_coverage(*geom, 0, 2);         // left-edge slab
    expect_full_coverage(*geom, 5, 1);         // single-plane slab
  }
}

TEST(PlanStructure, ForcePlanCoversAllOwnedCellsOnce) {
  for (const auto& gc : kGeoCases) {
    SCOPED_TRACE(gc.name);
    const auto geom = make_geom(gc);
    expect_force_coverage(*geom, 0, kGrid.nx);
    expect_force_coverage(*geom, 3, 3);
    expect_force_coverage(*geom, 5, 1);
  }
}

// -- plan rebuild after migration in the thread runner ------------------

namespace {

const Extents kRemapGrid{18, 6, 4};

struct Profiles {
  std::vector<std::vector<double>> water, air, ux;
};

void expect_profiles_near(const Profiles& a, const Profiles& b) {
  for (std::size_t gx = 0; gx < a.water.size(); ++gx) {
    ASSERT_EQ(a.water[gx].size(), b.water[gx].size());
    for (std::size_t j = 0; j < a.water[gx].size(); ++j) {
      EXPECT_NEAR(a.water[gx][j], b.water[gx][j], kTol) << gx << "," << j;
      EXPECT_NEAR(a.air[gx][j], b.air[gx][j], kTol) << gx << "," << j;
      EXPECT_NEAR(a.ux[gx][j], b.ux[gx][j], kTol) << gx << "," << j;
    }
  }
}

}  // namespace

TEST(PlanKernels, RebuildAfterMigrationMatchesSequentialLegacy) {
  // a slowed middle rank forces plane migrations; every migration drops
  // the donor's and receiver's plans, so the run crosses several plan
  // rebuilds — and must still match the sequential *legacy* reference,
  // tying the two kernel paths together across a remap.
  sim::RunnerConfig cfg;
  cfg.global = kRemapGrid;
  cfg.fluid = FluidParams::microchannel_defaults(0.05, 1.5, 0.03, 1.0, 2e-5);
  cfg.kernels = KernelPath::plan;
  cfg.policy = "filtered";
  cfg.remap_interval = 4;
  cfg.balance.window = 3;
  cfg.balance.min_transfer_points = 24;  // one yz-plane of this grid
  cfg.slowdown = {0.0, 3.0, 0.0};
  obs::MetricsRegistry reg(3);
  cfg.metrics = &reg;
  const int phases = 60;

  Simulation seq(kRemapGrid, cfg.fluid);
  seq.set_kernel_path(KernelPath::legacy);
  seq.initialize_uniform();
  seq.run(phases);
  Profiles ref;
  for (index_t gx = 0; gx < kRemapGrid.nx; ++gx) {
    ref.water.push_back(density_profile_y(seq.slab(), 0, gx, 2));
    ref.air.push_back(density_profile_y(seq.slab(), 1, gx, 2));
    ref.ux.push_back(velocity_profile_y(seq.slab(), gx, 2));
  }

  Profiles par;
  par.water.resize(static_cast<std::size_t>(kRemapGrid.nx));
  par.air.resize(static_cast<std::size_t>(kRemapGrid.nx));
  par.ux.resize(static_cast<std::size_t>(kRemapGrid.nx));
  long long migrated = 0;
  std::mutex mu;
  transport::run_ranks(3, [&](transport::Communicator& comm) {
    sim::ParallelLbm run(cfg, comm);
    run.initialize_uniform();
    run.run(phases);
    auto stats = run.gather_stats();
    for (index_t gx = 0; gx < kRemapGrid.nx; ++gx) {
      auto w = run.gather_density_profile_y(0, gx, 2);
      auto a = run.gather_density_profile_y(1, gx, 2);
      auto u = run.gather_velocity_profile_y(gx, 2);
      if (comm.rank() == 0) {
        std::lock_guard<std::mutex> lk(mu);
        const auto i = static_cast<std::size_t>(gx);
        par.water[i] = std::move(w);
        par.air[i] = std::move(a);
        par.ux[i] = std::move(u);
      }
    }
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      for (const auto& s : stats) migrated += s.planes_sent;
    }
  });

  EXPECT_GT(migrated, 0);  // the run really crossed a migration
  expect_profiles_near(ref, par);
  // the plan path reports its bookkeeping: plan builds are timed (outside
  // "remap") and the MLUPS gauge is derived from the fluid-cell count
  EXPECT_GT(reg.counter_total("time/plan"), 0.0);
  EXPECT_GT(reg.counter_total("cells_updated"), 0.0);
  for (int r = 0; r < 3; ++r) {
    ASSERT_TRUE(reg.has_gauge(r, "mlups"));
    EXPECT_GT(reg.gauge(r, "mlups"), 0.0);
  }
}
