// Transport layer: MPI-semantics message passing over every backend.
//
// The parameterized suite runs each contract test over SerialComm,
// ThreadComm (threads-as-ranks), SocketComm (forked processes over
// Unix-domain sockets) and ShmComm (threaded endpoints over mmap'd
// rings). Test bodies make all assertions in-rank so they hold under
// fork. Thread-only behaviors (shared-memory visibility, poison
// propagation) keep their own non-parameterized tests below.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "transport_backends.hpp"

using namespace slipflow::transport;
using namespace slipflow::transport::backend_testing;

class TransportSuite : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(AllBackends, TransportSuite,
                         ::testing::Values(Backend::kSerial, Backend::kThread,
                                           Backend::kSocket, Backend::kShm),
                         [](const auto& pinfo) {
                           return backend_name(pinfo.param);
                         });

TEST_P(TransportSuite, RankAndSizeAreCorrect) {
  SLIPFLOW_SKIP_IF_UNSUPPORTED(4);
  run_backend(GetParam(), 4, [](Communicator& c) {
    EXPECT_EQ(c.size(), 4);
    EXPECT_GE(c.rank(), 0);
    EXPECT_LT(c.rank(), 4);
    // every rank contributes exactly its id — verified in-rank
    const double mine = static_cast<double>(c.rank());
    const auto all = c.allgather(std::span<const double>(&mine, 1));
    ASSERT_EQ(all.size(), 4u);
    for (int r = 0; r < 4; ++r)
      EXPECT_EQ(all[static_cast<std::size_t>(r)], static_cast<double>(r));
  });
}

TEST_P(TransportSuite, PointToPointDelivers) {
  SLIPFLOW_SKIP_IF_UNSUPPORTED(2);
  run_backend(GetParam(), 2, [](Communicator& c) {
    if (c.rank() == 0) {
      const std::vector<double> msg{1.0, 2.0, 3.0};
      c.send(1, 42, msg);
    } else {
      const auto got = c.recv(0, 42);
      EXPECT_EQ(got, (std::vector<double>{1.0, 2.0, 3.0}));
    }
  });
}

TEST_P(TransportSuite, MessagesDoNotOvertake) {
  SLIPFLOW_SKIP_IF_UNSUPPORTED(2);
  // FIFO per (src, dst, tag) — MPI's non-overtaking guarantee.
  run_backend(GetParam(), 2, [](Communicator& c) {
    if (c.rank() == 0) {
      for (double v = 0; v < 50; ++v)
        c.send(1, 7, std::vector<double>{v});
    } else {
      for (double v = 0; v < 50; ++v)
        EXPECT_EQ(c.recv(0, 7)[0], v);
    }
  });
}

TEST_P(TransportSuite, TagsAreIndependentChannels) {
  SLIPFLOW_SKIP_IF_UNSUPPORTED(2);
  run_backend(GetParam(), 2, [](Communicator& c) {
    if (c.rank() == 0) {
      c.send(1, 1, std::vector<double>{1.0});
      c.send(1, 2, std::vector<double>{2.0});
    } else {
      // receive in the opposite order of sending
      EXPECT_EQ(c.recv(0, 2)[0], 2.0);
      EXPECT_EQ(c.recv(0, 1)[0], 1.0);
    }
  });
}

TEST_P(TransportSuite, SelfSendWorks) {
  SLIPFLOW_SKIP_IF_UNSUPPORTED(3);
  run_backend(GetParam(), 3, [](Communicator& c) {
    c.send(c.rank(), 5, std::vector<double>{static_cast<double>(c.rank())});
    EXPECT_EQ(c.recv(c.rank(), 5)[0], static_cast<double>(c.rank()));
  });
}

TEST_P(TransportSuite, NeighborExchangePattern) {
  SLIPFLOW_SKIP_IF_UNSUPPORTED(5);
  // the runner's send-both-then-recv-both halo pattern must not deadlock
  const int n = 5;
  run_backend(GetParam(), n, [n](Communicator& c) {
    const int l = (c.rank() + n - 1) % n;
    const int r = (c.rank() + 1) % n;
    const std::vector<double> mine{static_cast<double>(c.rank())};
    c.send(r, 1, mine);
    c.send(l, 2, mine);
    EXPECT_EQ(c.recv(l, 1)[0], static_cast<double>(l));
    EXPECT_EQ(c.recv(r, 2)[0], static_cast<double>(r));
  });
}

TEST_P(TransportSuite, BarrierThenMessageOrder) {
  SLIPFLOW_SKIP_IF_UNSUPPORTED(4);
  // A message sent before a barrier is receivable after it on all
  // backends (in-rank formulation of the synchronization property).
  run_backend(GetParam(), 4, [](Communicator& c) {
    const int peer = (c.rank() + 1) % c.size();
    c.send(peer, 3, std::vector<double>{static_cast<double>(c.rank())});
    c.barrier();
    const int from = (c.rank() + c.size() - 1) % c.size();
    EXPECT_EQ(c.recv(from, 3)[0], static_cast<double>(from));
  });
}

TEST_P(TransportSuite, AllgatherOrdersByRank) {
  SLIPFLOW_SKIP_IF_UNSUPPORTED(4);
  run_backend(GetParam(), 4, [](Communicator& c) {
    const double mine[2] = {static_cast<double>(c.rank()),
                            static_cast<double>(c.rank() * 10)};
    const auto all = c.allgather(std::span<const double>(mine, 2));
    ASSERT_EQ(all.size(), 8u);
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(all[2 * static_cast<std::size_t>(r)], r);
      EXPECT_EQ(all[2 * static_cast<std::size_t>(r) + 1], r * 10);
    }
  });
}

TEST_P(TransportSuite, AllgatherHandlesNonPowerOfTwoRanks) {
  SLIPFLOW_SKIP_IF_UNSUPPORTED(5);
  // The socket backend's binomial trees must be exact for ragged fan-in.
  run_backend(GetParam(), 5, [](Communicator& c) {
    const double mine = 1000.0 + c.rank();
    const auto all = c.allgather(std::span<const double>(&mine, 1));
    ASSERT_EQ(all.size(), 5u);
    for (int r = 0; r < 5; ++r)
      EXPECT_EQ(all[static_cast<std::size_t>(r)], 1000.0 + r);
  });
}

TEST_P(TransportSuite, RepeatedCollectivesKeepGenerations) {
  SLIPFLOW_SKIP_IF_UNSUPPORTED(3);
  run_backend(GetParam(), 3, [](Communicator& c) {
    for (int round = 0; round < 20; ++round) {
      const double v = c.rank() + 100.0 * round;
      const auto all = c.allgather(std::span<const double>(&v, 1));
      for (int r = 0; r < 3; ++r)
        EXPECT_EQ(all[static_cast<std::size_t>(r)], r + 100.0 * round);
    }
  });
}

TEST_P(TransportSuite, AllreduceSum) {
  SLIPFLOW_SKIP_IF_UNSUPPORTED(5);
  run_backend(GetParam(), 5, [](Communicator& c) {
    const double s = c.allreduce_sum(static_cast<double>(c.rank()));
    EXPECT_DOUBLE_EQ(s, 0 + 1 + 2 + 3 + 4);
  });
}

TEST_P(TransportSuite, AllreduceMax) {
  SLIPFLOW_SKIP_IF_UNSUPPORTED(5);
  run_backend(GetParam(), 5, [](Communicator& c) {
    const double m = c.allreduce_max(static_cast<double>(c.rank() * 2));
    EXPECT_DOUBLE_EQ(m, 8.0);
  });
}

TEST_P(TransportSuite, VectorAllreduceSumMatchesScalar) {
  SLIPFLOW_SKIP_IF_UNSUPPORTED(4);
  run_backend(GetParam(), 4, [](Communicator& c) {
    const double mine[3] = {static_cast<double>(c.rank()),
                            0.125 * c.rank(),  // exact in binary
                            static_cast<double>(c.rank() * c.rank())};
    const std::vector<double> sums =
        c.allreduce_sum(std::span<const double>(mine, 3));
    ASSERT_EQ(sums.size(), 3u);
    // byte-identical to the scalar reduction of each element
    for (int i = 0; i < 3; ++i)
      EXPECT_EQ(sums[static_cast<std::size_t>(i)], c.allreduce_sum(mine[i]));
    EXPECT_EQ(sums[0], 6.0);
    EXPECT_EQ(sums[1], 0.75);
    EXPECT_EQ(sums[2], 14.0);
  });
}

TEST_P(TransportSuite, SingleRankDegenerate) {
  run_backend(GetParam(), 1, [](Communicator& c) {
    EXPECT_EQ(c.size(), 1);
    c.barrier();
    const double v = 3.0;
    EXPECT_EQ(c.allgather(std::span<const double>(&v, 1)),
              std::vector<double>{3.0});
    const double xs[2] = {1.0, 2.0};
    EXPECT_EQ(c.allreduce_sum(std::span<const double>(xs, 2)),
              (std::vector<double>{1.0, 2.0}));
  });
}

TEST_P(TransportSuite, EmptyMessagesAreLegal) {
  SLIPFLOW_SKIP_IF_UNSUPPORTED(2);
  run_backend(GetParam(), 2, [](Communicator& c) {
    if (c.rank() == 0) c.send(1, 9, std::vector<double>{});
    if (c.rank() == 1) {
      EXPECT_TRUE(c.recv(0, 9).empty());
    }
    const auto all = c.allgather(std::span<const double>{});
    EXPECT_TRUE(all.empty());
  });
}

TEST_P(TransportSuite, RecvTimeoutNamesPendingSourceAndTag) {
  if (GetParam() == Backend::kSerial)
    GTEST_SKIP() << "SerialComm fails empty recvs eagerly (contract_error)";
  CommOptions opts;
  opts.recv_timeout = 0.4;
  run_backend(
      GetParam(), 2,
      [](Communicator& c) {
        if (c.rank() == 1) {
          try {
            c.recv(0, 77);
            ADD_FAILURE() << "recv of a never-sent message must time out";
          } catch (const comm_timeout& e) {
            const std::string msg = e.what();
            EXPECT_NE(msg.find("src=0"), std::string::npos) << msg;
            EXPECT_NE(msg.find("tag=77"), std::string::npos) << msg;
          }
        } else {
          // outlive rank 1's timeout so the socket backend reports a
          // timeout, not a closed connection
          std::this_thread::sleep_for(std::chrono::milliseconds(900));
        }
      },
      opts);
}

// --- Nonblocking point-to-point (isend / irecv handles) ---

TEST_P(TransportSuite, IsendIrecvDelivers) {
  SLIPFLOW_SKIP_IF_UNSUPPORTED(2);
  run_backend(GetParam(), 2, [](Communicator& c) {
    if (c.rank() == 0) {
      c.isend(1, 7, std::vector<double>{1.5, 2.5});
    } else {
      auto h = c.irecv(0, 7);
      EXPECT_EQ(h->wait(), (std::vector<double>{1.5, 2.5}));
    }
  });
}

TEST_P(TransportSuite, IsendCopiesThePayloadEagerly) {
  SLIPFLOW_SKIP_IF_UNSUPPORTED(2);
  // The staging contract RingExchanger relies on: the buffer handed to
  // isend may be reused the moment the call returns.
  run_backend(GetParam(), 2, [](Communicator& c) {
    if (c.rank() == 0) {
      std::vector<double> buf{10.0, 20.0};
      c.isend(1, 1, buf);
      buf.assign({-1.0, -2.0});  // must not retroactively alter message 1
      c.isend(1, 2, buf);
    } else {
      EXPECT_EQ(c.irecv(0, 1)->wait(), (std::vector<double>{10.0, 20.0}));
      EXPECT_EQ(c.irecv(0, 2)->wait(), (std::vector<double>{-1.0, -2.0}));
    }
  });
}

TEST_P(TransportSuite, IrecvHandlesCompleteOutOfPostOrder) {
  SLIPFLOW_SKIP_IF_UNSUPPORTED(2);
  // Waiting on the later-posted handle first must not deadlock or
  // misdeliver: each handle owns its (src, tag) channel independently.
  run_backend(GetParam(), 2, [](Communicator& c) {
    if (c.rank() == 0) {
      c.isend(1, 11, std::vector<double>{11.0});
      c.isend(1, 22, std::vector<double>{22.0});
    } else {
      auto first = c.irecv(0, 11);
      auto second = c.irecv(0, 22);
      EXPECT_EQ(second->wait(), std::vector<double>{22.0});
      EXPECT_EQ(first->wait(), std::vector<double>{11.0});
    }
  });
}

TEST_P(TransportSuite, IrecvTestBeforeArrivalIsFalseThenSticky) {
  SLIPFLOW_SKIP_IF_UNSUPPORTED(2);
  if (GetParam() == Backend::kSerial)
    GTEST_SKIP() << "single rank cannot have a not-yet-sent remote message";
  // Go-message choreography removes the race: rank 0 does not send the
  // payload until rank 1 has already observed test() == false.
  run_backend(GetParam(), 2, [](Communicator& c) {
    if (c.rank() == 0) {
      c.recv(1, 100);  // the go signal
      c.isend(1, 55, std::vector<double>{5.0, 5.0});
    } else {
      auto h = c.irecv(0, 55);
      EXPECT_FALSE(h->test());  // nothing was sent yet
      c.send(0, 100, std::vector<double>{});
      while (!h->test())  // poll until the frame lands
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      EXPECT_TRUE(h->test());  // completion is sticky
      EXPECT_EQ(h->wait(), (std::vector<double>{5.0, 5.0}));
    }
  });
}

TEST_P(TransportSuite, IrecvSameTagPreservesFifo) {
  SLIPFLOW_SKIP_IF_UNSUPPORTED(2);
  run_backend(GetParam(), 2, [](Communicator& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 3; ++i)
        c.isend(1, 4, std::vector<double>{static_cast<double>(i)});
    } else {
      EXPECT_EQ(c.irecv(0, 4)->wait(), std::vector<double>{0.0});
      EXPECT_EQ(c.irecv(0, 4)->wait(), std::vector<double>{1.0});
      // mixing with blocking recv keeps the same queue
      EXPECT_EQ(c.recv(0, 4), std::vector<double>{2.0});
    }
  });
}

TEST_P(TransportSuite, IrecvWaitTimeoutNamesPendingSourceAndTag) {
  if (GetParam() == Backend::kSerial)
    GTEST_SKIP() << "SerialComm fails empty recvs eagerly (contract_error)";
  CommOptions opts;
  opts.recv_timeout = 0.4;
  run_backend(
      GetParam(), 2,
      [](Communicator& c) {
        if (c.rank() == 1) {
          auto h = c.irecv(0, 78);
          try {
            h->wait();
            ADD_FAILURE() << "wait() on a never-sent message must time out";
          } catch (const comm_timeout& e) {
            const std::string msg = e.what();
            EXPECT_NE(msg.find("src=0"), std::string::npos) << msg;
            EXPECT_NE(msg.find("tag=78"), std::string::npos) << msg;
          }
        } else {
          std::this_thread::sleep_for(std::chrono::milliseconds(900));
        }
      },
      opts);
}

TEST(SerialCommNonblocking, SelfIsendIrecvRoundTrip) {
  SerialComm c;
  auto pending = c.irecv(0, 6);
  EXPECT_FALSE(pending->test());
  c.isend(0, 6, std::vector<double>{3.0});
  EXPECT_TRUE(pending->test());
  EXPECT_EQ(pending->wait(), std::vector<double>{3.0});
  // draining an empty mailbox through wait() keeps the eager diagnostic
  EXPECT_THROW(c.irecv(0, 6)->wait(), slipflow::contract_error);
}

// --- Thread-backend-only behaviors (shared-memory state, poison) ---

TEST(ThreadComm, BarrierSynchronizes) {
  std::atomic<int> before{0}, after{0};
  run_ranks(4, [&](Communicator& c) {
    before.fetch_add(1);
    c.barrier();
    // everyone must have incremented before anyone proceeds
    EXPECT_EQ(before.load(), 4);
    after.fetch_add(1);
  });
  EXPECT_EQ(after.load(), 4);
}

TEST(ThreadComm, ExceptionInOneRankPropagates) {
  EXPECT_THROW(
      run_ranks(3,
                [](Communicator& c) {
                  if (c.rank() == 1) throw std::runtime_error("rank 1 died");
                  // other ranks block on a message that never comes; the
                  // poison must wake them instead of deadlocking the join
                  c.recv((c.rank() + 1) % 3, 99);
                }),
      std::exception);
}

TEST(ThreadComm, InvalidDestinationRejected) {
  EXPECT_THROW(run_ranks(2,
                         [](Communicator& c) {
                           c.send(5, 1, std::vector<double>{1.0});
                         }),
               slipflow::contract_error);
}

TEST(ThreadComm, TimeoutDoesNotFireWhenMessagesFlow) {
  CommOptions opts;
  opts.recv_timeout = 5.0;
  run_ranks(
      2,
      [](Communicator& c) {
        for (int i = 0; i < 100; ++i) {
          if (c.rank() == 0)
            c.send(1, 1, std::vector<double>{static_cast<double>(i)});
          else
            EXPECT_EQ(c.recv(0, 1)[0], static_cast<double>(i));
        }
      },
      opts);
}

TEST(SerialComm, SelfMessagingAndCollectives) {
  SerialComm c;
  EXPECT_EQ(c.rank(), 0);
  EXPECT_EQ(c.size(), 1);
  c.send(0, 3, std::vector<double>{4.0, 5.0});
  EXPECT_EQ(c.recv(0, 3), (std::vector<double>{4.0, 5.0}));
  const double v = 2.0;
  EXPECT_EQ(c.allgather(std::span<const double>(&v, 1)),
            std::vector<double>{2.0});
  EXPECT_DOUBLE_EQ(c.allreduce_sum(7.0), 7.0);
  EXPECT_DOUBLE_EQ(c.allreduce_max(7.0), 7.0);
}

TEST(SerialComm, EmptyMailboxRecvThrowsInsteadOfDeadlocking) {
  SerialComm c;
  EXPECT_THROW(c.recv(0, 1), slipflow::contract_error);
}
