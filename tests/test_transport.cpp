// Transport layer: threads-as-ranks message passing with MPI semantics.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "transport/serial_comm.hpp"
#include "transport/thread_comm.hpp"

using namespace slipflow::transport;

TEST(ThreadComm, RankAndSizeAreCorrect) {
  std::atomic<int> seen{0};
  run_ranks(4, [&](Communicator& c) {
    EXPECT_EQ(c.size(), 4);
    EXPECT_GE(c.rank(), 0);
    EXPECT_LT(c.rank(), 4);
    seen.fetch_add(1 << c.rank());
  });
  EXPECT_EQ(seen.load(), 0b1111);
}

TEST(ThreadComm, PointToPointDelivers) {
  run_ranks(2, [](Communicator& c) {
    if (c.rank() == 0) {
      const std::vector<double> msg{1.0, 2.0, 3.0};
      c.send(1, 42, msg);
    } else {
      const auto got = c.recv(0, 42);
      EXPECT_EQ(got, (std::vector<double>{1.0, 2.0, 3.0}));
    }
  });
}

TEST(ThreadComm, MessagesDoNotOvertake) {
  // FIFO per (src, dst, tag) — MPI's non-overtaking guarantee.
  run_ranks(2, [](Communicator& c) {
    if (c.rank() == 0) {
      for (double v = 0; v < 50; ++v)
        c.send(1, 7, std::vector<double>{v});
    } else {
      for (double v = 0; v < 50; ++v)
        EXPECT_EQ(c.recv(0, 7)[0], v);
    }
  });
}

TEST(ThreadComm, TagsAreIndependentChannels) {
  run_ranks(2, [](Communicator& c) {
    if (c.rank() == 0) {
      c.send(1, 1, std::vector<double>{1.0});
      c.send(1, 2, std::vector<double>{2.0});
    } else {
      // receive in the opposite order of sending
      EXPECT_EQ(c.recv(0, 2)[0], 2.0);
      EXPECT_EQ(c.recv(0, 1)[0], 1.0);
    }
  });
}

TEST(ThreadComm, SelfSendWorks) {
  run_ranks(3, [](Communicator& c) {
    c.send(c.rank(), 5, std::vector<double>{static_cast<double>(c.rank())});
    EXPECT_EQ(c.recv(c.rank(), 5)[0], static_cast<double>(c.rank()));
  });
}

TEST(ThreadComm, NeighborExchangePattern) {
  // the runner's send-both-then-recv-both halo pattern must not deadlock
  const int n = 5;
  run_ranks(n, [n](Communicator& c) {
    const int l = (c.rank() + n - 1) % n;
    const int r = (c.rank() + 1) % n;
    const std::vector<double> mine{static_cast<double>(c.rank())};
    c.send(r, 1, mine);
    c.send(l, 2, mine);
    EXPECT_EQ(c.recv(l, 1)[0], static_cast<double>(l));
    EXPECT_EQ(c.recv(r, 2)[0], static_cast<double>(r));
  });
}

TEST(ThreadComm, BarrierSynchronizes) {
  std::atomic<int> before{0}, after{0};
  run_ranks(4, [&](Communicator& c) {
    before.fetch_add(1);
    c.barrier();
    // everyone must have incremented before anyone proceeds
    EXPECT_EQ(before.load(), 4);
    after.fetch_add(1);
  });
  EXPECT_EQ(after.load(), 4);
}

TEST(ThreadComm, AllgatherOrdersByRank) {
  run_ranks(4, [](Communicator& c) {
    const double mine[2] = {static_cast<double>(c.rank()),
                            static_cast<double>(c.rank() * 10)};
    const auto all = c.allgather(std::span<const double>(mine, 2));
    ASSERT_EQ(all.size(), 8u);
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(all[2 * static_cast<std::size_t>(r)], r);
      EXPECT_EQ(all[2 * static_cast<std::size_t>(r) + 1], r * 10);
    }
  });
}

TEST(ThreadComm, RepeatedCollectivesKeepGenerations) {
  run_ranks(3, [](Communicator& c) {
    for (int round = 0; round < 20; ++round) {
      const double v = c.rank() + 100.0 * round;
      const auto all = c.allgather(std::span<const double>(&v, 1));
      for (int r = 0; r < 3; ++r)
        EXPECT_EQ(all[static_cast<std::size_t>(r)], r + 100.0 * round);
    }
  });
}

TEST(ThreadComm, AllreduceSum) {
  run_ranks(5, [](Communicator& c) {
    const double s = c.allreduce_sum(static_cast<double>(c.rank()));
    EXPECT_DOUBLE_EQ(s, 0 + 1 + 2 + 3 + 4);
  });
}

TEST(ThreadComm, AllreduceMax) {
  run_ranks(5, [](Communicator& c) {
    const double m = c.allreduce_max(static_cast<double>(c.rank() * 2));
    EXPECT_DOUBLE_EQ(m, 8.0);
  });
}

TEST(ThreadComm, SingleRankDegenerate) {
  run_ranks(1, [](Communicator& c) {
    EXPECT_EQ(c.size(), 1);
    c.barrier();
    const double v = 3.0;
    EXPECT_EQ(c.allgather(std::span<const double>(&v, 1)),
              std::vector<double>{3.0});
  });
}

TEST(ThreadComm, ExceptionInOneRankPropagates) {
  EXPECT_THROW(
      run_ranks(3,
                [](Communicator& c) {
                  if (c.rank() == 1) throw std::runtime_error("rank 1 died");
                  // other ranks block on a message that never comes; the
                  // poison must wake them instead of deadlocking the join
                  c.recv((c.rank() + 1) % 3, 99);
                }),
      std::exception);
}

TEST(ThreadComm, InvalidDestinationRejected) {
  EXPECT_THROW(run_ranks(2,
                         [](Communicator& c) {
                           c.send(5, 1, std::vector<double>{1.0});
                         }),
               slipflow::contract_error);
}

TEST(SerialComm, SelfMessagingAndCollectives) {
  SerialComm c;
  EXPECT_EQ(c.rank(), 0);
  EXPECT_EQ(c.size(), 1);
  c.send(0, 3, std::vector<double>{4.0, 5.0});
  EXPECT_EQ(c.recv(0, 3), (std::vector<double>{4.0, 5.0}));
  const double v = 2.0;
  EXPECT_EQ(c.allgather(std::span<const double>(&v, 1)),
            std::vector<double>{2.0});
  EXPECT_DOUBLE_EQ(c.allreduce_sum(7.0), 7.0);
  EXPECT_DOUBLE_EQ(c.allreduce_max(7.0), 7.0);
}

TEST(SerialComm, EmptyMailboxRecvThrowsInsteadOfDeadlocking) {
  SerialComm c;
  EXPECT_THROW(c.recv(0, 1), slipflow::contract_error);
}
