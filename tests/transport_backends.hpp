#pragma once
/// Shared harness for running one transport test body over every
/// Communicator backend. Serial, Thread and Shm run in-process (Shm on
/// threads over mmap'd rings — run_ranks_shm — so it works under
/// ThreadSanitizer, which cannot follow forks); Socket forks real child
/// processes (run_ranks_sockets), so test bodies used with it must make
/// ALL assertions in-rank — a gtest failure inside a forked child is
/// converted to a nonzero exit below and resurfaces in the parent as a
/// comm_error carrying the child's stderr. For symmetry the Shm runner
/// applies the same in-rank conversion, so one body serves all four.

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>

#include "transport/serial_comm.hpp"
#include "transport/shm_comm.hpp"
#include "transport/socket_comm.hpp"
#include "transport/thread_comm.hpp"

namespace slipflow::transport::backend_testing {

enum class Backend { kSerial, kThread, kSocket, kShm };

inline const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kSerial: return "Serial";
    case Backend::kThread: return "Thread";
    case Backend::kSocket: return "Socket";
    case Backend::kShm: return "Shm";
  }
  return "?";
}

/// SerialComm only exists at one rank; the others scale.
inline bool supports(Backend b, int nranks) {
  return b != Backend::kSerial || nranks == 1;
}

inline void run_backend(Backend b, int nranks,
                        const std::function<void(Communicator&)>& fn,
                        const CommOptions& opts = {}) {
  // A hung multi-process/multi-endpoint test must fail in ctest, never
  // wedge it; bodies that test the timeout itself pass their own bound.
  const auto guard = [&opts] {
    CommOptions o = opts;
    if (o.recv_timeout <= 0.0) o.recv_timeout = 20.0;
    return o;
  };
  switch (b) {
    case Backend::kSerial: {
      SerialComm c;
      fn(c);
      return;
    }
    case Backend::kThread:
      run_ranks(nranks, fn, opts);
      return;
    case Backend::kSocket: {
      SocketRunOptions ro;
      ro.comm = guard();
      ro.wall_timeout = 90.0;
      run_ranks_sockets(
          nranks,
          [&fn](Communicator& c) {
            fn(c);
            if (::testing::Test::HasFailure())
              throw std::runtime_error(
                  "gtest assertion failed in this rank (see messages above)");
          },
          ro);
      return;
    }
    case Backend::kShm: {
      ShmRunOptions ro;
      ro.comm = guard();
      run_ranks_shm(
          nranks,
          [&fn](Communicator& c) {
            fn(c);
            if (::testing::Test::HasFailure())
              throw std::runtime_error(
                  "gtest assertion failed in this rank (see messages above)");
          },
          ro);
      return;
    }
  }
}

#define SLIPFLOW_SKIP_IF_UNSUPPORTED(nranks)                               \
  do {                                                                     \
    if (!slipflow::transport::backend_testing::supports(GetParam(),        \
                                                        (nranks)))         \
      GTEST_SKIP() << "backend does not support " << (nranks) << " ranks"; \
  } while (0)

}  // namespace slipflow::transport::backend_testing
