// Golden-value physics regression for the reduced-resolution
// microchannel (the tier-1 guard against silent physics drift).
//
// The reference configuration is the calibrated two-component
// hydrophobic channel (FluidParams::microchannel_defaults) on an
// ny = 20 cross-section — the resolution of the Figure 6/7 harnesses —
// with nx shrunk to 8: the flow is x-uniform, so the cross-channel
// physics is identical to the wide channel while the test stays fast.
//
// Golden values were recorded at phase 2000 from the seed
// implementation (gcc 12, -O3). Tolerances are a few 1e-4 relative —
// wide enough for compiler/FMA variation, far tighter than any physics
// change: a kernel, wall-force, or coupling regression moves the slip
// fraction at the percent level.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "lbm/observables.hpp"
#include "lbm/simulation.hpp"

using namespace slipflow::lbm;

namespace {

constexpr index_t kNx = 8, kNy = 20, kNz = 10;
constexpr int kPhases = 2000;

// Recorded golden values (see file comment).
constexpr double kGoldSlipFraction = 0.086202530417143791;
constexpr double kGoldUCenter = 0.0020519332460969251;
constexpr double kGoldWallNodeFraction = 0.24069258941407806;
constexpr double kGoldSlipLength = 0.2789905414524258;
constexpr double kGoldWallWaterDensity = 0.45734948531634656;
constexpr double kGoldCenterWaterDensity = 1.7587902597939575;
constexpr double kGoldMassWater = 1600.0;
constexpr double kGoldMassAir = 48.000000000001059;

/// One shared steady-ish state for every assertion below.
const Simulation& golden_run() {
  static Simulation* sim = [] {
    auto* s = new Simulation(Extents{kNx, kNy, kNz},
                             FluidParams::microchannel_defaults());
    s->initialize_uniform();
    s->run(kPhases);
    return s;
  }();
  return *sim;
}

std::vector<double> golden_profile() {
  return velocity_profile_y(golden_run().slab(), kNx / 2, kNz / 2);
}

}  // namespace

TEST(GoldenRegression, ApparentSlipFractionPinned) {
  const auto slip = measure_slip(golden_profile());
  // the paper-style "% slip": ~8.6% of the free-stream velocity at this
  // resolution — inside the ~8-9% band the calibration targets
  EXPECT_NEAR(slip.slip_fraction, kGoldSlipFraction, 2e-4);
  EXPECT_GT(slip.slip_fraction, 0.08);
  EXPECT_LT(slip.slip_fraction, 0.09);
}

TEST(GoldenRegression, CenterlineVelocityPinned) {
  const auto slip = measure_slip(golden_profile());
  EXPECT_NEAR(slip.u_center, kGoldUCenter, 2e-6);
  EXPECT_NEAR(slip.u_wall_node / slip.u_center, kGoldWallNodeFraction, 5e-4);
}

TEST(GoldenRegression, NavierSlipLengthPinned) {
  EXPECT_NEAR(navier_slip_length(golden_profile()), kGoldSlipLength, 1e-3);
}

TEST(GoldenRegression, PerComponentMassTotalsPinned) {
  // initialization pins the totals; 2000 phases must conserve them
  EXPECT_NEAR(owned_mass(golden_run().slab(), 0), kGoldMassWater,
              1e-9 * kGoldMassWater);
  EXPECT_NEAR(owned_mass(golden_run().slab(), 1), kGoldMassAir,
              1e-9 * kGoldMassAir);
}

TEST(GoldenRegression, DepletionLayerDensitiesPinned) {
  const auto water =
      density_profile_y(golden_run().slab(), 0, kNx / 2, kNz / 2);
  // hydrophobic wall force depletes water at the wall and piles it at
  // the channel center — the mechanism behind the apparent slip
  EXPECT_NEAR(water.front(), kGoldWallWaterDensity, 2e-3);
  EXPECT_NEAR(water[water.size() / 2], kGoldCenterWaterDensity, 2e-3);
  EXPECT_LT(water.front(), 0.5);
  EXPECT_GT(water[water.size() / 2], 1.7);
}

TEST(GoldenRegression, ProfileIsSymmetricAcrossTheChannel) {
  const auto u = golden_profile();
  for (std::size_t j = 0; j < u.size() / 2; ++j)
    EXPECT_NEAR(u[j], u[u.size() - 1 - j], 1e-12) << "j=" << j;
}
