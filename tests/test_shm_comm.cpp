// ShmComm-specific behaviors beyond the cross-backend contract matrix
// (which test_transport.cpp / test_property_transport.cpp already run
// over the Shm backend): ring wrap-around, fragmentation of messages
// larger than the ring, spill-based backpressure, zero-copy views,
// stale-segment replacement and cleanup, $TMPDIR-honoring segment
// paths, named closed-peer/drop diagnostics, stats publication, and the
// forked kill-rank fault. Fork-suffixed suites fork real processes and
// are excluded from TSan runs (TSan cannot follow forks); everything
// else is threaded via run_ranks_shm.

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "transport/shm_comm.hpp"
#include "transport/tempdir.hpp"

using namespace slipflow;
using namespace slipflow::transport;

namespace {

ShmRunOptions small_ring(std::size_t ring_bytes) {
  ShmRunOptions o;
  o.ring_bytes = ring_bytes;
  o.comm.recv_timeout = 20.0;  // a wedged test must fail, not hang ctest
  return o;
}

std::vector<double> pattern(std::size_t n, double seed) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = seed + static_cast<double>(i) * 0.5;
  return v;
}

bool exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

TEST(ShmComm, RingWrapAroundPreservesMessageStream) {
  // The minimum ring holds only a couple of frames, so this ping-pong
  // crosses the end-of-ring seam many times with varying frame sizes —
  // exercising both the explicit kPad frames and the implicit skip
  // (remainder smaller than one header).
  run_ranks_shm(
      2,
      [](Communicator& c) {
        for (int i = 0; i < 150; ++i) {
          const auto n = static_cast<std::size_t>(100 + i);
          const std::vector<double> msg = pattern(n, i);
          if (c.rank() == 0) {
            c.send(1, 7, msg);
            EXPECT_EQ(c.recv(1, 8), msg) << "round " << i;
          } else {
            EXPECT_EQ(c.recv(0, 7), msg) << "round " << i;
            c.send(0, 8, msg);
          }
        }
      },
      small_ring(4096));
}

TEST(ShmComm, MessageLargerThanRingIsFragmented) {
  // 5000 doubles ≈ 40 KB through a 4 KB ring: the message must arrive
  // intact via bounded fragments (no frame may exceed half a ring).
  const std::vector<double> big = pattern(5000, 3.0);
  run_ranks_shm(
      2,
      [&big](Communicator& c) {
        if (c.rank() == 0) {
          c.send(1, 4, big);
        } else {
          EXPECT_EQ(c.recv(0, 4), big);
        }
        c.barrier();
      },
      small_ring(4096));
}

TEST(ShmComm, BackpressureSpillsInsteadOfBlockingTheSender) {
  // The receiver sleeps before touching the transport, so nothing
  // consumes the ring while the sender pushes 32 frames that together
  // exceed it many times over. The eager-send contract says every send
  // must still return (spilling to the local outbox), and FIFO order
  // must survive the spill.
  run_ranks_shm(
      2,
      [](Communicator& c) {
        if (c.rank() == 0) {
          for (int i = 0; i < 32; ++i)
            c.send(1, 5, pattern(200, i));
          // All 32 sends returned; with the peer asleep the ring can
          // only have absorbed a couple of them.
          const ShmStats s = dynamic_cast<ShmComm&>(c).stats();
          EXPECT_GT(s.spilled_frames, 0);
          EXPECT_GT(s.spilled_bytes, 0);
        } else {
          std::this_thread::sleep_for(std::chrono::milliseconds(500));
          for (int i = 0; i < 32; ++i)
            EXPECT_EQ(c.recv(0, 5), pattern(200, i)) << "message " << i;
        }
        c.barrier();
      },
      small_ring(4096));
}

TEST(ShmComm, ZeroCopyViewDeliversInPlace) {
  run_ranks_shm(2, [](Communicator& c) {
    if (c.rank() == 0) {
      c.send(1, 4, std::vector<double>{1.0, 2.0, 3.0});
      c.send(1, 4, std::vector<double>{9.0});
      c.barrier();
      return;
    }
    auto& shm = dynamic_cast<ShmComm&>(c);
    // Poll until the first frame is on the ring, then view it in place.
    std::optional<std::span<const double>> view;
    while (!(view = shm.try_recv_view(0, 4)))
      std::this_thread::yield();
    ASSERT_EQ(view->size(), 3u);
    EXPECT_EQ((*view)[0], 1.0);
    EXPECT_EQ((*view)[2], 3.0);
    // Only one view may be active at a time — the second request is a
    // caller bug, not a transport error.
    EXPECT_THROW((void)shm.try_recv_view(0, 4), contract_error);
    shm.release_view();
    // The channel keeps working through the ordinary path afterwards.
    EXPECT_EQ(c.recv(0, 4), std::vector<double>{9.0});
    c.barrier();
  });
}

TEST(ShmComm, SegmentsHonorTmpdir) {
  const std::string tmp = make_socket_temp_dir();
  const char* old = std::getenv("TMPDIR");
  const std::string saved = old != nullptr ? old : "";
  ::setenv("TMPDIR", tmp.c_str(), 1);
  try {
    run_ranks_shm(2, [&tmp](Communicator& c) {
      auto& shm = dynamic_cast<ShmComm&>(c);
      // The harness's fresh directory (tempdir.hpp) lives under TMPDIR,
      // and the live segment files for this rank's inbound rings exist
      // inside it while the communicator is up.
      EXPECT_EQ(shm.dir().rfind(tmp + "/", 0), 0u) << shm.dir();
      const int peer = 1 - c.rank();
      EXPECT_TRUE(exists(shm.dir() + "/ring_" + std::to_string(peer) + "to" +
                         std::to_string(c.rank()) + ".shm"));
      c.barrier();
    });
  } catch (...) {
    if (saved.empty()) ::unsetenv("TMPDIR");
    else ::setenv("TMPDIR", saved.c_str(), 1);
    std::filesystem::remove_all(tmp);
    throw;
  }
  if (saved.empty()) ::unsetenv("TMPDIR");
  else ::setenv("TMPDIR", saved.c_str(), 1);
  std::filesystem::remove_all(tmp);
}

TEST(ShmComm, StaleSegmentsAreReplacedAndCleanedUp) {
  // A crashed earlier run leaves segment files behind. A new launch in
  // the same directory must replace them (unlink-then-create plus the
  // session tag makes a stale mapping unacceptable to producers), and a
  // clean exit must leave no segments at all.
  const std::string dir = make_socket_temp_dir();
  for (const char* name : {"/ring_0to1.shm", "/ring_1to0.shm"}) {
    std::ofstream junk(dir + name, std::ios::binary | std::ios::trunc);
    junk << "stale garbage from a previous crashed run";
  }
  ShmRunOptions o;
  o.comm.recv_timeout = 20.0;
  o.dir = dir;
  run_ranks_shm(
      2,
      [](Communicator& c) {
        const int peer = 1 - c.rank();
        if (c.rank() == 0) c.send(peer, 1, std::vector<double>{42.0});
        if (c.rank() == 1) {
          EXPECT_EQ(c.recv(0, 1), std::vector<double>{42.0});
        }
        c.barrier();
      },
      o);
  for (const char* name : {"/ring_0to1.shm", "/ring_1to0.shm"})
    EXPECT_FALSE(exists(dir + name)) << name;
  std::filesystem::remove_all(dir);
}

TEST(ShmComm, CleanPeerExitSurfacesAsNamedClosedError) {
  // Rank 0 departs without sending; rank 1's recv must fail with the
  // same named "connection closed" diagnostic SocketComm gives, not a
  // timeout and not a hang.
  run_ranks_shm(2, [](Communicator& c) {
    if (c.rank() == 0) return;  // tears the endpoint down immediately
    try {
      c.recv(0, 5);
      ADD_FAILURE() << "recv from a departed peer must fail";
    } catch (const comm_error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("connection to rank 0 closed"), std::string::npos)
          << msg;
      EXPECT_NE(msg.find("(src=0, tag=5)"), std::string::npos) << msg;
    }
  });
}

TEST(ShmComm, DropFaultSurfacesAsNamedTimeout) {
  ShmRunOptions o;
  o.comm.recv_timeout = 0.5;
  o.faults = [](int rank) {
    FaultInjection f;
    if (rank == 0) {
      f.drop_dest = 1;
      f.drop_tag = 9;
      f.drop_count = 1;
    }
    return f;
  };
  run_ranks_shm(
      2,
      [](Communicator& c) {
        if (c.rank() == 0) {
          c.send(1, 9, std::vector<double>{1.0});  // silently dropped
          // outlive the peer's timeout so it reports a timeout, not a
          // closed connection
          std::this_thread::sleep_for(std::chrono::milliseconds(900));
        } else {
          try {
            c.recv(0, 9);
            ADD_FAILURE() << "the dropped message must never arrive";
          } catch (const comm_timeout& e) {
            const std::string msg = e.what();
            EXPECT_NE(msg.find("(src=0, tag=9)"), std::string::npos) << msg;
          }
        }
      },
      o);
}

TEST(ShmComm, ThreadedHarnessRejectsKillFaults) {
  // SIGKILL in a threaded harness would take down the whole test
  // process; the harness names the forked alternative instead.
  ShmRunOptions o;
  o.faults = [](int) {
    FaultInjection f;
    f.kill_at_phase = 1;
    return f;
  };
  EXPECT_THROW(run_ranks_shm(2, [](Communicator& c) { c.barrier(); }, o),
               contract_error);
}

TEST(ShmComm, StatsCountTrafficAndPublishToMetrics) {
  const std::string dir = make_socket_temp_dir();
  obs::MetricsRegistry reg(2);
  auto endpoint = [&](int rank) {
    ShmCommConfig cfg;
    cfg.rank = rank;
    cfg.nranks = 2;
    cfg.dir = dir;
    cfg.comm.recv_timeout = 20.0;
    cfg.session = 42;
    cfg.metrics = &reg;
    ShmComm c(cfg);
    if (rank == 0) c.send(1, 1, pattern(64, 1.0));
    if (rank == 1) {
      EXPECT_EQ(c.recv(0, 1), pattern(64, 1.0));
    }
    c.barrier();
    const ShmStats s = c.stats();
    EXPECT_GT(s.messages_sent, 0);
    EXPECT_GT(s.messages_received, 0);
    EXPECT_GT(s.bytes_sent, 0);
    c.publish_stats();
  };
  std::thread t1([&] { endpoint(1); });
  endpoint(0);
  t1.join();
  EXPECT_GT(reg.counter_total("shm/messages_sent"), 0.0);
  EXPECT_GT(reg.counter_total("shm/bytes_received"), 0.0);
  EXPECT_GE(reg.counter(1, "shm/messages_received"), 1.0);
  std::filesystem::remove_all(dir);
}

#if defined(__linux__)
TEST(ShmComm, BlockedRecvParksInFutexAndWakesOnCommit) {
  // The receiver blocks well past the spin budget (the sender sits out
  // 200 ms before sending), so the wait must concede at least one
  // futex(2) park — and the sender's commit must wake it promptly
  // enough that the message still arrives.
  run_ranks_shm(2, [](Communicator& c) {
    if (c.rank() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      c.send(1, 7, pattern(32, 2.0));
    } else {
      EXPECT_EQ(c.recv(0, 7), pattern(32, 2.0));
      EXPECT_GT(dynamic_cast<ShmComm&>(c).stats().futex_waits, 0);
    }
    c.barrier();
  });
}
#endif

TEST(ShmComm, DirUsableProbe) {
  const std::string dir = make_socket_temp_dir();
  EXPECT_TRUE(shm_dir_usable(dir));
  EXPECT_FALSE(shm_dir_usable(dir + "/does-not-exist"));
  std::filesystem::remove_all(dir);
}

// --- forked fault tests (excluded from TSan via the *Fork* filter) ---

TEST(ShmCommFork, KilledRankIsNamedWithSignal) {
  ShmRunOptions o;
  o.comm.recv_timeout = 5.0;
  o.wall_timeout = 60.0;
  o.faults = [](int rank) {
    FaultInjection f;
    if (rank == 1) f.kill_at_phase = 3;
    return f;
  };
  try {
    run_ranks_shm_forked(
        3,
        [](Communicator& c) {
          for (long long phase = 1; phase <= 10; ++phase) {
            c.note_progress(phase);
            c.barrier();
          }
        },
        o);
    FAIL() << "the killed rank must fail the run";
  } catch (const comm_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rank 1 killed by signal 9"), std::string::npos)
        << msg;
  }
}

TEST(ShmCommFork, RunsCleanlyAcrossProcesses) {
  // The same rings work process-to-process (real shared memory, not
  // just threads sharing an address space).
  ShmRunOptions o;
  o.comm.recv_timeout = 20.0;
  run_ranks_shm_forked(
      4,
      [](Communicator& c) {
        const double mine = static_cast<double>(c.rank());
        const auto all = c.allgather(std::span<const double>(&mine, 1));
        if (all.size() != 4u) throw std::runtime_error("short allgather");
        for (int r = 0; r < 4; ++r)
          if (all[static_cast<std::size_t>(r)] != static_cast<double>(r))
            throw std::runtime_error("misordered allgather");
        c.barrier();
      },
      o);
}
