// Invariants of the D3Q19 velocity set: weight normalization, isotropy
// moments (which the Chapman-Enskog expansion relies on), opposite
// directions, and the boundary-crossing direction groups used by the
// parallel halo exchange.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "lbm/kernels.hpp"
#include "lbm/lattice.hpp"

using namespace slipflow::lbm;

TEST(Lattice, WeightsSumToOne) {
  double s = 0.0;
  for (double w : kWeight) s += w;
  EXPECT_NEAR(s, 1.0, 1e-15);
}

TEST(Lattice, RestParticleIsIndexZero) {
  EXPECT_EQ(kCx[0], 0);
  EXPECT_EQ(kCy[0], 0);
  EXPECT_EQ(kCz[0], 0);
}

TEST(Lattice, VelocitiesAreUnique) {
  std::set<std::array<int, 3>> seen;
  for (int i = 0; i < kQ; ++i)
    seen.insert({kCx[i], kCy[i], kCz[i]});
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kQ));
}

TEST(Lattice, SpeedsAreAtMostSqrt2) {
  for (int i = 0; i < kQ; ++i) {
    const int c2 = kCx[i] * kCx[i] + kCy[i] * kCy[i] + kCz[i] * kCz[i];
    EXPECT_LE(c2, 2);
  }
}

TEST(Lattice, FirstMomentVanishes) {
  double mx = 0, my = 0, mz = 0;
  for (int i = 0; i < kQ; ++i) {
    mx += kWeight[i] * kCx[i];
    my += kWeight[i] * kCy[i];
    mz += kWeight[i] * kCz[i];
  }
  EXPECT_NEAR(mx, 0.0, 1e-15);
  EXPECT_NEAR(my, 0.0, 1e-15);
  EXPECT_NEAR(mz, 0.0, 1e-15);
}

TEST(Lattice, SecondMomentIsCs2Identity) {
  // sum_i w_i c_ia c_ib = cs^2 delta_ab with cs^2 = 1/3.
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      double m = 0.0;
      for (int i = 0; i < kQ; ++i) {
        const int ca = a == 0 ? kCx[i] : a == 1 ? kCy[i] : kCz[i];
        const int cb = b == 0 ? kCx[i] : b == 1 ? kCy[i] : kCz[i];
        m += kWeight[i] * ca * cb;
      }
      EXPECT_NEAR(m, a == b ? kCs2 : 0.0, 1e-15) << "a=" << a << " b=" << b;
    }
  }
}

TEST(Lattice, ThirdMomentVanishes) {
  // sum_i w_i c_ia c_ib c_ic = 0 for all index triples (odd moment).
  for (int a = 0; a < 3; ++a)
    for (int b = 0; b < 3; ++b)
      for (int c = 0; c < 3; ++c) {
        double m = 0.0;
        for (int i = 0; i < kQ; ++i) {
          const int cs[3] = {kCx[i], kCy[i], kCz[i]};
          m += kWeight[i] * cs[a] * cs[b] * cs[c];
        }
        EXPECT_NEAR(m, 0.0, 1e-15);
      }
}

TEST(Lattice, FourthMomentIsotropy) {
  // sum_i w_i c_ia^2 c_ib^2 = cs^4 (1 + 2 delta_ab).
  for (int a = 0; a < 3; ++a)
    for (int b = 0; b < 3; ++b) {
      double m = 0.0;
      for (int i = 0; i < kQ; ++i) {
        const int cs[3] = {kCx[i], kCy[i], kCz[i]};
        m += kWeight[i] * cs[a] * cs[a] * cs[b] * cs[b];
      }
      const double expect = kCs2 * kCs2 * (a == b ? 3.0 : 1.0);
      EXPECT_NEAR(m, expect, 1e-15);
    }
}

TEST(Lattice, OppositesReverseVelocity) {
  for (int i = 0; i < kQ; ++i) {
    const int o = kOpposite[i];
    EXPECT_EQ(kCx[o], -kCx[i]);
    EXPECT_EQ(kCy[o], -kCy[i]);
    EXPECT_EQ(kCz[o], -kCz[i]);
  }
}

TEST(Lattice, OppositeIsAnInvolution) {
  for (int i = 0; i < kQ; ++i) EXPECT_EQ(kOpposite[kOpposite[i]], i);
}

TEST(Lattice, OppositePreservesWeight) {
  for (int i = 0; i < kQ; ++i)
    EXPECT_DOUBLE_EQ(kWeight[i], kWeight[kOpposite[i]]);
}

TEST(Lattice, CrossingGroupsHaveFiveDirectionsEach) {
  EXPECT_EQ(kRightGoing.size(), 5u);
  EXPECT_EQ(kLeftGoing.size(), 5u);
  for (int d : kRightGoing) EXPECT_EQ(kCx[d], 1);
  for (int d : kLeftGoing) EXPECT_EQ(kCx[d], -1);
}

TEST(Lattice, CrossingGroupsAreOpposites) {
  // each right-going direction's opposite is left-going
  for (int d : kRightGoing) {
    EXPECT_NE(std::find(kLeftGoing.begin(), kLeftGoing.end(), kOpposite[d]),
              kLeftGoing.end());
  }
}

TEST(Lattice, NineDirectionsStayInPlane) {
  int in_plane = 0;
  for (int i = 0; i < kQ; ++i)
    if (kCx[i] == 0) ++in_plane;
  EXPECT_EQ(in_plane, 9);  // 19 - 2*5
}

TEST(Equilibrium, ZeroVelocityReducesToWeights) {
  for (int d = 0; d < kQ; ++d)
    EXPECT_NEAR(equilibrium(d, 2.0, Vec3{}), 2.0 * kWeight[d], 1e-15);
}

TEST(Equilibrium, DensityMomentExact) {
  const Vec3 u{0.05, -0.02, 0.03};
  double n = 0.0;
  for (int d = 0; d < kQ; ++d) n += equilibrium(d, 1.7, u);
  EXPECT_NEAR(n, 1.7, 1e-13);
}

TEST(Equilibrium, MomentumMomentExact) {
  const Vec3 u{0.05, -0.02, 0.03};
  const double n = 0.9;
  Vec3 p{};
  for (int d = 0; d < kQ; ++d) {
    const double f = equilibrium(d, n, u);
    p.x += f * kCx[d];
    p.y += f * kCy[d];
    p.z += f * kCz[d];
  }
  EXPECT_NEAR(p.x, n * u.x, 1e-13);
  EXPECT_NEAR(p.y, n * u.y, 1e-13);
  EXPECT_NEAR(p.z, n * u.z, 1e-13);
}

TEST(Equilibrium, StressMomentSecondOrder) {
  // sum_i f_i^eq c_ia c_ib = n (cs^2 delta_ab + u_a u_b)
  const Vec3 u{0.04, 0.01, -0.02};
  const double n = 1.2;
  const double us[3] = {u.x, u.y, u.z};
  for (int a = 0; a < 3; ++a)
    for (int b = 0; b < 3; ++b) {
      double m = 0.0;
      for (int d = 0; d < kQ; ++d) {
        const int cs[3] = {kCx[d], kCy[d], kCz[d]};
        m += equilibrium(d, n, u) * cs[a] * cs[b];
      }
      const double expect = n * ((a == b ? kCs2 : 0.0) + us[a] * us[b]);
      EXPECT_NEAR(m, expect, 1e-12);
    }
}

TEST(Equilibrium, PositiveAtModerateVelocity) {
  const Vec3 u{0.1, 0.1, 0.1};
  for (int d = 0; d < kQ; ++d) EXPECT_GT(equilibrium(d, 1.0, u), 0.0);
}
