// Background-job load generators: weights over virtual time, breakpoint
// iteration, and the random spike scheduler.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "cluster/virtual_node.hpp"

#include "cluster/load_generator.hpp"

using namespace slipflow::cluster;

TEST(Persistent, WeightInsideWindowOnly) {
  PersistentLoad l(2.0, 5.0, 15.0);
  EXPECT_DOUBLE_EQ(l.weight_at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(l.weight_at(5.0), 2.0);
  EXPECT_DOUBLE_EQ(l.weight_at(14.999), 2.0);
  EXPECT_DOUBLE_EQ(l.weight_at(15.0), 0.0);
}

TEST(Persistent, DefaultIsForever) {
  PersistentLoad l(1.5);
  EXPECT_DOUBLE_EQ(l.weight_at(0.0), 1.5);
  EXPECT_DOUBLE_EQ(l.weight_at(1e9), 1.5);
  EXPECT_EQ(l.next_change(0.0), kNever);
}

TEST(Persistent, BreakpointsAreBeginAndEnd) {
  PersistentLoad l(1.0, 2.0, 8.0);
  EXPECT_DOUBLE_EQ(l.next_change(0.0), 2.0);
  EXPECT_DOUBLE_EQ(l.next_change(3.0), 8.0);
  EXPECT_EQ(l.next_change(9.0), kNever);
}

TEST(Periodic, DutyCycleShape) {
  // 10 s period, busy the first 40%
  PeriodicLoad l(2.0, 10.0, 0.4);
  EXPECT_DOUBLE_EQ(l.weight_at(0.0), 2.0);
  EXPECT_DOUBLE_EQ(l.weight_at(3.999), 2.0);
  EXPECT_DOUBLE_EQ(l.weight_at(4.0), 0.0);
  EXPECT_DOUBLE_EQ(l.weight_at(9.999), 0.0);
  EXPECT_DOUBLE_EQ(l.weight_at(10.0), 2.0);
  EXPECT_DOUBLE_EQ(l.weight_at(23.0), 2.0);
}

TEST(Periodic, ZeroAndFullDutyDegenerate) {
  PeriodicLoad idle(2.0, 10.0, 0.0);
  PeriodicLoad busy(2.0, 10.0, 1.0);
  for (double t : {0.0, 3.0, 11.0, 99.0}) {
    EXPECT_DOUBLE_EQ(idle.weight_at(t), 0.0);
    EXPECT_DOUBLE_EQ(busy.weight_at(t), 2.0);
  }
  EXPECT_EQ(idle.next_change(0.0), kNever);
  EXPECT_EQ(busy.next_change(0.0), kNever);
}

TEST(Periodic, NextChangeWalksBreakpoints) {
  PeriodicLoad l(1.0, 10.0, 0.3);
  EXPECT_DOUBLE_EQ(l.next_change(0.0), 3.0);
  EXPECT_DOUBLE_EQ(l.next_change(3.0), 10.0);
  EXPECT_DOUBLE_EQ(l.next_change(5.0), 10.0);
  EXPECT_DOUBLE_EQ(l.next_change(10.0), 13.0);
}

TEST(Periodic, PhaseOffsetShiftsPattern) {
  PeriodicLoad l(1.0, 10.0, 0.5, /*offset=*/2.0);
  EXPECT_DOUBLE_EQ(l.weight_at(1.0), 0.0);  // before offset window? wraps
  EXPECT_DOUBLE_EQ(l.weight_at(2.0), 1.0);
  EXPECT_DOUBLE_EQ(l.weight_at(6.999), 1.0);
  EXPECT_DOUBLE_EQ(l.weight_at(7.0), 0.0);
}

TEST(Interval, SortedDisjointRequired) {
  EXPECT_THROW(IntervalLoad(1.0, {{5.0, 4.0}}), slipflow::contract_error);
  EXPECT_THROW(IntervalLoad(1.0, {{0.0, 5.0}, {4.0, 6.0}}),
               slipflow::contract_error);
}

TEST(Interval, WeightLookup) {
  IntervalLoad l(3.0, {{1.0, 2.0}, {5.0, 7.0}});
  EXPECT_DOUBLE_EQ(l.weight_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(l.weight_at(1.5), 3.0);
  EXPECT_DOUBLE_EQ(l.weight_at(2.0), 0.0);
  EXPECT_DOUBLE_EQ(l.weight_at(6.9), 3.0);
  EXPECT_DOUBLE_EQ(l.weight_at(7.0), 0.0);
}

TEST(Interval, NextChangeHitsEveryEdge) {
  IntervalLoad l(1.0, {{1.0, 2.0}, {5.0, 7.0}});
  EXPECT_DOUBLE_EQ(l.next_change(0.0), 1.0);
  EXPECT_DOUBLE_EQ(l.next_change(1.0), 2.0);
  EXPECT_DOUBLE_EQ(l.next_change(2.0), 5.0);
  EXPECT_DOUBLE_EQ(l.next_change(6.0), 7.0);
  EXPECT_EQ(l.next_change(7.0), kNever);
}

TEST(Interval, EmptyScheduleIsAlwaysIdle) {
  IntervalLoad l(1.0, {});
  EXPECT_DOUBLE_EQ(l.weight_at(3.0), 0.0);
  EXPECT_EQ(l.next_change(0.0), kNever);
}

TEST(SpikeSchedule, OneSpikePerPeriod) {
  slipflow::util::Rng rng(1);
  const auto s = spike_schedule(4, 100.0, 10.0, 2.0, rng);
  std::size_t total = 0;
  for (const auto& node : s) total += node.size();
  EXPECT_EQ(total, 10u);  // one spike per 10 s over 100 s
}

TEST(SpikeSchedule, SpikesHaveRequestedLength) {
  slipflow::util::Rng rng(2);
  const auto s = spike_schedule(3, 50.0, 10.0, 3.0, rng);
  for (const auto& node : s)
    for (const auto& iv : node) EXPECT_DOUBLE_EQ(iv.end - iv.begin, 3.0);
}

TEST(SpikeSchedule, DeterministicUnderSeed) {
  slipflow::util::Rng a(7), b(7);
  const auto sa = spike_schedule(5, 200.0, 10.0, 1.0, a);
  const auto sb = spike_schedule(5, 200.0, 10.0, 1.0, b);
  for (int n = 0; n < 5; ++n) {
    ASSERT_EQ(sa[static_cast<std::size_t>(n)].size(),
              sb[static_cast<std::size_t>(n)].size());
    for (std::size_t i = 0; i < sa[static_cast<std::size_t>(n)].size(); ++i)
      EXPECT_DOUBLE_EQ(sa[static_cast<std::size_t>(n)][i].begin,
                       sb[static_cast<std::size_t>(n)][i].begin);
  }
}

TEST(SpikeSchedule, CoversManyNodesOverTime) {
  slipflow::util::Rng rng(3);
  const auto s = spike_schedule(4, 1000.0, 10.0, 1.0, rng);
  int nodes_hit = 0;
  for (const auto& node : s)
    if (!node.empty()) ++nodes_hit;
  EXPECT_EQ(nodes_hit, 4);  // 100 spikes over 4 nodes: all get some
}

TEST(TraceLoad, StepFunctionSemantics) {
  TraceLoad l({{0.0, 1.0}, {5.0, 0.0}, {8.0, 2.5}});
  EXPECT_DOUBLE_EQ(l.weight_at(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(l.weight_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(l.weight_at(4.999), 1.0);
  EXPECT_DOUBLE_EQ(l.weight_at(5.0), 0.0);
  EXPECT_DOUBLE_EQ(l.weight_at(8.0), 2.5);
  EXPECT_DOUBLE_EQ(l.weight_at(1e9), 2.5);  // last value holds
}

TEST(TraceLoad, NextChangeWalksSamples) {
  TraceLoad l({{1.0, 1.0}, {4.0, 0.5}});
  EXPECT_DOUBLE_EQ(l.next_change(0.0), 1.0);
  EXPECT_DOUBLE_EQ(l.next_change(1.0), 4.0);
  EXPECT_EQ(l.next_change(4.0), kNever);
}

TEST(TraceLoad, RejectsUnorderedSamples) {
  EXPECT_THROW(TraceLoad({{2.0, 1.0}, {1.0, 1.0}}), slipflow::contract_error);
  EXPECT_THROW(TraceLoad({{1.0, -0.5}}), slipflow::contract_error);
}

TEST(TraceLoad, CsvRoundTrip) {
  const std::string path = "/tmp/slipflow_trace_test.csv";
  {
    std::ofstream out(path);
    out << "# host load trace\ntime,weight\n0.0,1.5\n10.0,0\n20.5,2.0\n";
  }
  const TraceLoad l = TraceLoad::from_csv(path);
  EXPECT_DOUBLE_EQ(l.weight_at(5.0), 1.5);
  EXPECT_DOUBLE_EQ(l.weight_at(15.0), 0.0);
  EXPECT_DOUBLE_EQ(l.weight_at(25.0), 2.0);
  std::remove(path.c_str());
}

TEST(TraceLoad, MissingCsvRejected) {
  EXPECT_THROW(TraceLoad::from_csv("/tmp/slipflow_no_such_trace.csv"),
               slipflow::contract_error);
}

TEST(SyntheticTrace, DeterministicAndSane) {
  slipflow::util::Rng a(5), b(5);
  const auto ta = synthetic_trace(100.0, 1.0, a);
  const auto tb = synthetic_trace(100.0, 1.0, b);
  ASSERT_EQ(ta.size(), tb.size());
  ASSERT_EQ(ta.size(), 100u);
  int busy = 0;
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_DOUBLE_EQ(ta[i].weight, tb[i].weight);
    EXPECT_GE(ta[i].weight, 0.0);
    if (ta[i].weight > 0.0) ++busy;
  }
  // the two-state process spends a nontrivial fraction of time busy
  EXPECT_GT(busy, 5);
  EXPECT_LT(busy, 95);
}

TEST(SyntheticTrace, FeedsTraceLoad) {
  slipflow::util::Rng rng(9);
  TraceLoad l(synthetic_trace(50.0, 0.5, rng));
  // integrates fine in a virtual node
  VirtualNode node;
  node.add_load(std::make_unique<TraceLoad>(
      synthetic_trace(50.0, 0.5, rng)));
  const double t = node.finish_time(0.0, 20.0);
  EXPECT_GE(t, 20.0);          // competing load can only slow us down
  EXPECT_TRUE(std::isfinite(t));
}

TEST(Periodic, NextChangeIsStrictlyFutureAtPeriodBoundaries) {
  // regression: at large t, base + period can round to exactly t; the
  // breakpoint must still be strictly in the future or work integration
  // stalls forever (found by the randomized cluster property tests)
  PeriodicLoad l(1.92821, 1.43367, 0.408468);
  double t = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double nxt = l.next_change(t);
    ASSERT_GT(nxt, t) << "at t=" << t;
    t = nxt;
  }
}

TEST(Periodic, HangConfigurationIntegratesFine) {
  // the exact configuration that hung: persistent + periodic load on one
  // node, integrated far past the rounding-critical boundary
  VirtualNode node;
  node.add_load(std::make_unique<PersistentLoad>(1.82947));
  node.add_load(std::make_unique<PeriodicLoad>(1.92821, 1.43367, 0.408468));
  double t = 0.0;
  for (int i = 0; i < 2000; ++i) t = node.finish_time(t, 0.05);
  EXPECT_TRUE(std::isfinite(t));
  EXPECT_GT(t, 100.0);
}
