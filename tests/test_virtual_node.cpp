// Virtual node: fair-share scheduling and exact piecewise work
// integration.

#include <gtest/gtest.h>

#include "cluster/virtual_node.hpp"

using namespace slipflow::cluster;

TEST(VirtualNode, DedicatedShareIsOne) {
  VirtualNode n;
  EXPECT_DOUBLE_EQ(n.share_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(n.rate_at(5.0), 1.0);
  EXPECT_EQ(n.next_change(0.0), kNever);
}

TEST(VirtualNode, DedicatedWorkTakesExactlyWork) {
  VirtualNode n;
  EXPECT_DOUBLE_EQ(n.finish_time(3.0, 2.5), 5.5);
}

TEST(VirtualNode, PersistentCompetitorScalesTime) {
  VirtualNode n;
  n.add_load(std::make_unique<PersistentLoad>(2.0));  // share = 1/3
  EXPECT_DOUBLE_EQ(n.share_at(0.0), 1.0 / 3.0);
  EXPECT_NEAR(n.finish_time(0.0, 1.0), 3.0, 1e-12);
}

TEST(VirtualNode, MultipleCompetitorsAddWeights) {
  VirtualNode n;
  n.add_load(std::make_unique<PersistentLoad>(1.0));
  n.add_load(std::make_unique<PersistentLoad>(2.0));
  EXPECT_DOUBLE_EQ(n.share_at(1.0), 0.25);
}

TEST(VirtualNode, BaseSpeedScalesRate) {
  VirtualNode slow(0.5);
  EXPECT_DOUBLE_EQ(slow.finish_time(0.0, 1.0), 2.0);
  VirtualNode fast(2.0);
  EXPECT_DOUBLE_EQ(fast.finish_time(0.0, 1.0), 0.5);
}

TEST(VirtualNode, IntegrationAcrossLoadOnset) {
  VirtualNode n;
  // competitor appears at t=1: first second at rate 1, then rate 1/3
  n.add_load(std::make_unique<PersistentLoad>(2.0, 1.0));
  // 2 units of work: 1 unit by t=1, remaining 1 unit takes 3 s
  EXPECT_NEAR(n.finish_time(0.0, 2.0), 4.0, 1e-12);
}

TEST(VirtualNode, IntegrationAcrossLoadEnd) {
  VirtualNode n;
  n.add_load(std::make_unique<PersistentLoad>(2.0, 0.0, 3.0));
  // 3 s at share 1/3 retires 1 unit; the second unit runs dedicated
  EXPECT_NEAR(n.finish_time(0.0, 2.0), 4.0, 1e-12);
}

TEST(VirtualNode, PeriodicDutyCycleEffectiveRate) {
  VirtualNode n;
  // 10 s period, busy 50% at weight 2: average rate (0.5*1 + 0.5/3)
  n.add_load(std::make_unique<PeriodicLoad>(2.0, 10.0, 0.5));
  // over one full period: work done = 5*1 + 5/3 = 6.6667
  EXPECT_NEAR(n.finish_time(0.0, 5.0 + 5.0 / 3.0), 10.0, 1e-9);
}

TEST(VirtualNode, ZeroWorkFinishesImmediately) {
  VirtualNode n;
  n.add_load(std::make_unique<PersistentLoad>(5.0));
  EXPECT_DOUBLE_EQ(n.finish_time(7.0, 0.0), 7.0);
}

TEST(VirtualNode, StartMidSpike) {
  VirtualNode n;
  n.add_load(std::make_unique<IntervalLoad>(
      2.0, std::vector<IntervalLoad::Interval>{{0.0, 2.0}}));
  // starting at t=1: one second left at 1/3 rate (1/3 work), then full
  EXPECT_NEAR(n.finish_time(1.0, 1.0), 2.0 + 2.0 / 3.0, 1e-12);
}

TEST(VirtualNode, ClearLoadsRestoresDedicated) {
  VirtualNode n;
  n.add_load(std::make_unique<PersistentLoad>(9.0));
  n.clear_loads();
  EXPECT_DOUBLE_EQ(n.finish_time(0.0, 1.0), 1.0);
}

TEST(VirtualNode, RejectsNegativeWork) {
  VirtualNode n;
  EXPECT_THROW(n.finish_time(0.0, -1.0), slipflow::contract_error);
  EXPECT_THROW(VirtualNode(0.0), slipflow::contract_error);
}
