// Remapping policies (Section 3): triplet balance algebra, the lazy
// filters (threshold, never fast-to-slow), over-redistribution scaling,
// conflict resolution and the global proportional assignment.

#include <gtest/gtest.h>

#include <numeric>

#include "balance/policy.hpp"

using namespace slipflow::balance;

namespace {

BalanceConfig cfg(long long min_transfer = 1000) {
  BalanceConfig c;
  c.min_transfer_points = min_transfer;
  return c;
}

NodeLoad load(double points, double time) { return {points, time}; }

}  // namespace

TEST(TripletTargets, EqualSpeedsSplitEvenly) {
  const auto t = triplet_targets(load(100, 1.0), load(200, 2.0),
                                 load(300, 3.0));
  // all speeds are 100 pts/s -> each target = total/3
  EXPECT_NEAR(t.left, 200.0, 1e-9);
  EXPECT_NEAR(t.me, 200.0, 1e-9);
  EXPECT_NEAR(t.right, 200.0, 1e-9);
}

TEST(TripletTargets, ProportionalToSpeed) {
  // speeds 100, 50, 50 -> shares 1/2, 1/4, 1/4 of 400 points
  const auto t = triplet_targets(load(100, 1.0), load(100, 2.0),
                                 load(200, 4.0));
  EXPECT_NEAR(t.left, 200.0, 1e-9);
  EXPECT_NEAR(t.me, 100.0, 1e-9);
  EXPECT_NEAR(t.right, 100.0, 1e-9);
}

TEST(TripletTargets, PreservesTotal) {
  const auto t = triplet_targets(load(123, 0.7), load(456, 1.3),
                                 load(789, 2.9));
  EXPECT_NEAR(t.left + t.me + t.right, 123 + 456 + 789, 1e-6);
}

TEST(TripletTargets, EqualTimeAfterRemap) {
  // the defining property: n'_j / S_j identical for all three
  const NodeLoad a = load(100, 1.0), b = load(300, 1.5), c = load(150, 0.6);
  const auto t = triplet_targets(a, b, c);
  const double ta = t.left / a.speed();
  const double tb = t.me / b.speed();
  const double tc = t.right / c.speed();
  EXPECT_NEAR(ta, tb, 1e-9);
  EXPECT_NEAR(tb, tc, 1e-9);
}

TEST(ResolvePair, NetsOpposingProposals) {
  EXPECT_EQ(resolve_pair(5000, 1000, 1000), 4000);
  EXPECT_EQ(resolve_pair(1000, 5000, 1000), -4000);
}

TEST(ResolvePair, ThresholdSuppressesSmallNets) {
  EXPECT_EQ(resolve_pair(3000, 2500, 1000), 0);
  EXPECT_EQ(resolve_pair(0, 0, 1000), 0);
}

TEST(ResolvePair, ExactThresholdPasses) {
  EXPECT_EQ(resolve_pair(1000, 0, 1000), 1000);
}

TEST(ResolvePair, RejectsNegativeProposals) {
  EXPECT_THROW(resolve_pair(-1, 0, 10), slipflow::contract_error);
}

TEST(NoRemap, NeverProposes) {
  NoRemapPolicy p;
  const auto prop = p.decide(load(10, 10.0), load(10000, 1.0),
                             load(10, 10.0), cfg());
  EXPECT_EQ(prop.to_left, 0);
  EXPECT_EQ(prop.to_right, 0);
}

TEST(Conservative, BalancedTripletProposesNothing) {
  ConservativePolicy p;
  const auto prop =
      p.decide(load(1000, 1.0), load(1000, 1.0), load(1000, 1.0), cfg(10));
  EXPECT_EQ(prop.to_left, 0);
  EXPECT_EQ(prop.to_right, 0);
}

TEST(Conservative, SlowNodeShedsHalfTheImbalance) {
  ConservativePolicy p;
  // me slow (speed 500), neighbors fast (speed 2000 each): targets are
  // 4500*2000/4500=2000 each side, 4500*500/4500=500 for me; delta per
  // side = 2000-1500=500; conservative ships half = 250.
  const auto prop = p.decide(load(1500, 0.75), load(1500, 3.0),
                             load(1500, 0.75), cfg(100));
  EXPECT_EQ(prop.to_left, 250);
  EXPECT_EQ(prop.to_right, 250);
}

TEST(Filtered, OverRedistributesBySpeedRatio) {
  FilteredPolicy p;
  // same setup: filtered scales delta by beta = S_recv/S_me = 4
  const auto prop = p.decide(load(1500, 0.75), load(1500, 3.0),
                             load(1500, 0.75), cfg(100));
  EXPECT_EQ(prop.to_left, prop.to_right);
  EXPECT_GT(prop.to_right, 4 * 250 - 600);  // beta*delta, minus clamping slack
  EXPECT_LE(prop.to_left + prop.to_right, 1500);  // never more than owned
}

TEST(Filtered, ShipsMoreThanConservative) {
  FilteredPolicy f;
  ConservativePolicy c;
  const auto pf = f.decide(load(1000, 0.5), load(1000, 2.0),
                           load(1000, 0.5), cfg(10));
  const auto pc = c.decide(load(1000, 0.5), load(1000, 2.0),
                           load(1000, 0.5), cfg(10));
  EXPECT_GT(pf.to_right, pc.to_right);
  EXPECT_GT(pf.to_left, pc.to_left);
}

TEST(Filtered, NeverMovesFromFastToSlow) {
  FilteredPolicy p;
  // I'm fast and overloaded; both neighbors are slow and nearly empty.
  // The lazy filter forbids feeding slow receivers (Section 3.3).
  const auto prop = p.decide(load(100, 10.0), load(10000, 1.0),
                             load(100, 10.0), cfg(10));
  EXPECT_EQ(prop.to_left, 0);
  EXPECT_EQ(prop.to_right, 0);
}

TEST(Filtered, ThresholdSuppressesSmallMoves) {
  FilteredPolicy p;
  // imbalance of ~200 points against a 4000-point threshold
  const auto prop = p.decide(load(1100, 1.0), load(1300, 1.0),
                             load(1100, 1.0), cfg(4000));
  EXPECT_EQ(prop.to_left, 0);
  EXPECT_EQ(prop.to_right, 0);
}

TEST(Filtered, WorksAtChainEnds) {
  FilteredPolicy p;
  // no left neighbor: 2-node balance with the right one
  const auto prop =
      p.decide(std::nullopt, load(2000, 4.0), load(2000, 1.0), cfg(100));
  EXPECT_EQ(prop.to_left, 0);
  EXPECT_GT(prop.to_right, 0);
}

TEST(Filtered, CapLimitsAggression) {
  FilteredPolicy p;
  BalanceConfig c = cfg(10);
  c.over_redistribution_cap = 1.0;  // cap beta at 1 => ship exactly delta
  const auto prop = p.decide(load(1500, 0.75), load(1500, 3.0),
                             load(1500, 0.75), c);
  EXPECT_EQ(prop.to_right, 500);
}

TEST(Filtered, DeterministicAcrossCalls) {
  FilteredPolicy p;
  const auto a = p.decide(load(900, 0.9), load(1700, 2.1),
                          load(1100, 1.0), cfg(50));
  const auto b = p.decide(load(900, 0.9), load(1700, 2.1),
                          load(1100, 1.0), cfg(50));
  EXPECT_EQ(a.to_left, b.to_left);
  EXPECT_EQ(a.to_right, b.to_right);
}

TEST(Global, ProportionalAssignmentPreservesTotal) {
  GlobalPolicy p;
  const std::vector<NodeLoad> all = {load(400, 1.0), load(400, 2.0),
                                     load(400, 1.0), load(400, 4.0)};
  const auto target = p.decide_global(all, cfg());
  EXPECT_EQ(std::accumulate(target.begin(), target.end(), 0LL), 1600);
}

TEST(Global, FasterNodesGetMorePoints) {
  GlobalPolicy p;
  const std::vector<NodeLoad> all = {load(400, 1.0), load(400, 4.0)};
  const auto target = p.decide_global(all, cfg());
  // speeds 400 vs 100 -> 4:1 split of 800
  EXPECT_EQ(target[0], 640);
  EXPECT_EQ(target[1], 160);
}

TEST(Global, EveryNodeKeepsAtLeastOnePoint) {
  GlobalPolicy p;
  const std::vector<NodeLoad> all = {load(1000, 1.0), load(1000, 1e6)};
  const auto target = p.decide_global(all, cfg());
  EXPECT_GE(target[1], 1);
  EXPECT_EQ(target[0] + target[1], 2000);
}

TEST(Global, UniformLoadsStayPut) {
  GlobalPolicy p;
  const std::vector<NodeLoad> all(5, load(200, 1.0));
  const auto target = p.decide_global(all, cfg());
  for (long long t : target) EXPECT_EQ(t, 200);
}

TEST(Global, LocalDecisionRejected) {
  GlobalPolicy p;
  EXPECT_TRUE(p.global());
  EXPECT_THROW(p.decide(std::nullopt, load(1, 1), std::nullopt, cfg()),
               slipflow::contract_error);
}

TEST(Local, GlobalDecisionRejected) {
  FilteredPolicy p;
  EXPECT_FALSE(p.global());
  EXPECT_THROW(p.decide_global({load(1, 1)}, cfg()),
               slipflow::contract_error);
}

TEST(Factory, CreatesAllPolicies) {
  EXPECT_EQ(RemapPolicy::create("none")->name(), "none");
  EXPECT_EQ(RemapPolicy::create("conservative")->name(), "conservative");
  EXPECT_EQ(RemapPolicy::create("filtered")->name(), "filtered");
  EXPECT_EQ(RemapPolicy::create("global")->name(), "global");
  EXPECT_THROW(RemapPolicy::create("magic"), slipflow::contract_error);
}

class LocalPolicyParam : public ::testing::TestWithParam<const char*> {};

TEST_P(LocalPolicyParam, ProposalsNeverExceedOwnedPoints) {
  auto p = RemapPolicy::create(GetParam());
  for (double mine : {500.0, 2000.0, 9000.0}) {
    for (double t : {0.5, 2.0, 8.0}) {
      const auto prop = p->decide(load(1000, 0.5), load(mine, t),
                                  load(1000, 0.5), cfg(10));
      EXPECT_GE(prop.to_left, 0);
      EXPECT_GE(prop.to_right, 0);
      EXPECT_LE(prop.to_left + prop.to_right,
                static_cast<long long>(mine));
    }
  }
}

TEST_P(LocalPolicyParam, NoProposalWhenPerfectlyBalanced) {
  auto p = RemapPolicy::create(GetParam());
  const auto prop =
      p->decide(load(777, 1.11), load(777, 1.11), load(777, 1.11), cfg(10));
  EXPECT_EQ(prop.to_left, 0);
  EXPECT_EQ(prop.to_right, 0);
}

INSTANTIATE_TEST_SUITE_P(Kinds, LocalPolicyParam,
                         ::testing::Values("none", "conservative",
                                           "filtered"));
