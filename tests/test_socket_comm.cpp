// SocketComm specifics: the wire format, the buffered progress engine
// under pressure, and the deterministic fault-injection layer. Every
// multi-rank body runs in forked child processes (run_ranks_sockets), so
// all assertions are made in-rank.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "transport/frame.hpp"
#include "transport/socket_comm.hpp"

using namespace slipflow::transport;

namespace {

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

SocketComm& as_socket(Communicator& c) {
  auto* s = dynamic_cast<SocketComm*>(&c);
  if (s == nullptr) throw std::runtime_error("not a SocketComm endpoint");
  return *s;
}

}  // namespace

// --- frame codec ---

TEST(Frame, HeaderRoundTripsAllFields) {
  FrameHeader h;
  h.kind = FrameKind::kData;
  h.src = 1234;
  h.tag = -101;  // internal collective tags are negative
  h.count = (1ull << 20) + 7;
  const auto bytes = encode_frame_header(h);
  const FrameHeader back = decode_frame_header(bytes);
  EXPECT_EQ(back.kind, FrameKind::kData);
  EXPECT_EQ(back.src, 1234);
  EXPECT_EQ(back.tag, -101);
  EXPECT_EQ(back.count, (1ull << 20) + 7);
  EXPECT_EQ(back.magic, kFrameMagic);
}

TEST(Frame, RejectsBadMagic) {
  auto bytes = encode_frame_header(FrameHeader{});
  bytes[0] = std::byte{0x00};
  EXPECT_THROW(decode_frame_header(bytes), comm_error);
}

TEST(Frame, RejectsUnknownKind) {
  auto bytes = encode_frame_header(FrameHeader{});
  const std::uint16_t bad = 99;
  std::memcpy(bytes.data() + 4, &bad, 2);
  EXPECT_THROW(decode_frame_header(bytes), comm_error);
}

TEST(Frame, RejectsImplausiblePayloadLength) {
  FrameHeader h;
  h.count = kMaxFrameDoubles + 1;
  const auto bytes = encode_frame_header(h);
  EXPECT_THROW(decode_frame_header(bytes), comm_error);
}

// --- stream demultiplexing ---

TEST(SocketComm, OutOfOrderTagDelivery) {
  run_ranks_sockets(2, [](Communicator& c) {
    if (c.rank() == 0) {
      c.send(1, 1, std::vector<double>{1.0});
      c.send(1, 2, std::vector<double>{2.0});
      c.send(1, 3, std::vector<double>{3.0});
      c.barrier();
    } else {
      // drain the single stream against tag order
      EXPECT_EQ(c.recv(0, 3)[0], 3.0);
      EXPECT_EQ(c.recv(0, 1)[0], 1.0);
      EXPECT_EQ(c.recv(0, 2)[0], 2.0);
      c.barrier();
    }
  });
}

TEST(SocketComm, PayloadBeyond64KiBRoundTrips) {
  // 2^17 doubles = 1 MiB, split across many reads/writes by the kernel.
  run_ranks_sockets(2, [](Communicator& c) {
    std::vector<double> big(1 << 17);
    for (std::size_t i = 0; i < big.size(); ++i)
      big[i] = static_cast<double>(i) * 0.5 + c.rank();
    c.send(1 - c.rank(), 4, big);
    const auto got = c.recv(1 - c.rank(), 4);
    ASSERT_EQ(got.size(), big.size());
    const double base = 1.0 - c.rank();
    for (std::size_t i = 0; i < got.size(); ++i)
      ASSERT_EQ(got[i], static_cast<double>(i) * 0.5 + base);
  });
}

TEST(SocketComm, BidirectionalFloodDoesNotDeadlock) {
  // Both ranks push ~1.6 MB before either receives: with blocking sends
  // this wedges on full kernel buffers; the eager outbox must absorb it.
  run_ranks_sockets(2, [](Communicator& c) {
    const int peer = 1 - c.rank();
    std::vector<double> chunk(1024, static_cast<double>(c.rank()));
    for (int i = 0; i < 200; ++i) {
      chunk[0] = static_cast<double>(i);
      c.send(peer, 6, chunk);
    }
    for (int i = 0; i < 200; ++i) {
      const auto got = c.recv(peer, 6);
      ASSERT_EQ(got.size(), chunk.size());
      ASSERT_EQ(got[0], static_cast<double>(i));
      ASSERT_EQ(got[1], static_cast<double>(peer));
    }
  });
}

// --- fault injection ---

TEST(SocketComm, DroppedFrameYieldsNamedTimeoutNotHang) {
  SocketRunOptions opts;
  opts.comm.recv_timeout = 0.5;
  opts.faults = [](int rank) {
    FaultInjection f;
    if (rank == 0) {
      f.drop_dest = 1;
      f.drop_tag = 5;
      f.drop_count = 1;
    }
    return f;
  };
  run_ranks_sockets(
      2,
      [](Communicator& c) {
        if (c.rank() == 0) {
          c.send(1, 5, std::vector<double>{42.0});  // dropped on the floor
          EXPECT_EQ(as_socket(c).stats().frames_dropped, 1);
          // outlive the peer's timeout so it reports a timeout, not a
          // closed connection
          std::this_thread::sleep_for(std::chrono::milliseconds(1200));
        } else {
          try {
            c.recv(0, 5);
            ADD_FAILURE() << "dropped frame must surface as comm_timeout";
          } catch (const comm_timeout& e) {
            const std::string msg = e.what();
            EXPECT_NE(msg.find("src=0"), std::string::npos) << msg;
            EXPECT_NE(msg.find("tag=5"), std::string::npos) << msg;
          }
        }
      },
      opts);
}

TEST(SocketComm, DelayFaultStillDelivers) {
  SocketRunOptions opts;
  opts.faults = [](int rank) {
    FaultInjection f;
    if (rank == 0) f.send_delay = 0.2;
    return f;
  };
  run_ranks_sockets(
      2,
      [](Communicator& c) {
        if (c.rank() == 0) {
          const double t0 = wall_now();
          c.send(1, 8, std::vector<double>{7.0});
          EXPECT_GE(wall_now() - t0, 0.15);
          c.barrier();
        } else {
          EXPECT_EQ(c.recv(0, 8)[0], 7.0);
          c.barrier();
        }
      },
      opts);
}

TEST(SocketComm, ThrottleFaultSlowsButDelivers) {
  SocketRunOptions opts;
  opts.faults = [](int rank) {
    FaultInjection f;
    if (rank == 0) f.throttle_bytes_per_sec = 1e6;  // burst allowance 100 KB
    return f;
  };
  run_ranks_sockets(
      2,
      [](Communicator& c) {
        if (c.rank() == 0) {
          std::vector<double> big(1 << 16, 1.5);  // 512 KB frame
          const double t0 = wall_now();
          c.send(1, 9, big);
          // ~(512 KB - 100 KB burst) / 1 MB/s ≈ 0.4 s of token wait
          EXPECT_GE(wall_now() - t0, 0.25);
          EXPECT_GT(as_socket(c).stats().throttle_wait_seconds, 0.0);
          c.barrier();
        } else {
          const auto got = c.recv(0, 9);
          ASSERT_EQ(got.size(), static_cast<std::size_t>(1 << 16));
          EXPECT_EQ(got[123], 1.5);
          c.barrier();
        }
      },
      opts);
}

TEST(SocketComm, KillRankFaultFailsRunWithNamedRank) {
  SocketRunOptions opts;
  opts.comm.recv_timeout = 5.0;
  opts.wall_timeout = 30.0;
  opts.faults = [](int rank) {
    FaultInjection f;
    if (rank == 2) f.kill_at_phase = 5;
    return f;
  };
  try {
    run_ranks_sockets(
        3,
        [](Communicator& c) {
          for (long long p = 1; p <= 100; ++p) {
            c.note_progress(p);  // rank 2 SIGKILLs itself at p == 5
            c.barrier();
          }
        },
        opts);
    FAIL() << "a killed rank must fail the harness";
  } catch (const comm_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rank 2 killed by signal 9"), std::string::npos)
        << msg;
  }
}

TEST(SocketComm, PeerCleanExitSurfacesAsNamedError) {
  SocketRunOptions opts;
  opts.comm.recv_timeout = 10.0;
  try {
    run_ranks_sockets(
        2,
        [](Communicator& c) {
          if (c.rank() == 1) {
            // rank 0 exits immediately; this recv must fail fast with the
            // peer named — long before the 10 s timeout
            const double t0 = wall_now();
            try {
              c.recv(0, 1);
              ADD_FAILURE() << "recv from an exited peer must throw";
            } catch (const comm_error& e) {
              EXPECT_LT(wall_now() - t0, 5.0);
              const std::string msg = e.what();
              EXPECT_NE(msg.find("rank 0"), std::string::npos) << msg;
              EXPECT_NE(msg.find("closed"), std::string::npos) << msg;
            }
            throw std::runtime_error("propagate to harness");
          }
        },
        opts);
    FAIL() << "harness must report rank 1's failure";
  } catch (const comm_error&) {
    // expected: rank 1 exited nonzero by design
  }
}

// --- counters ---

TEST(SocketComm, StatsCountMessagesAndBytes) {
  run_ranks_sockets(2, [](Communicator& c) {
    const int peer = 1 - c.rank();
    for (int i = 0; i < 10; ++i)
      c.send(peer, 3, std::vector<double>{static_cast<double>(i)});
    for (int i = 0; i < 10; ++i)
      ASSERT_EQ(c.recv(peer, 3)[0], static_cast<double>(i));
    c.barrier();
    const SocketStats s = as_socket(c).stats();
    EXPECT_GE(s.messages_sent, 10);
    EXPECT_GE(s.messages_received, 10);
    // 10 data frames of 1 double: 10 * (24 + 8) bytes, plus collectives
    EXPECT_GE(s.bytes_sent, 320);
    EXPECT_GE(s.bytes_received, 320);
    EXPECT_EQ(s.frames_dropped, 0);
  });
}
