// Patterned wettability: the wall_pattern multiplier modulates the
// hydrophobic force over the wall, enabling striped coatings (the MEMS
// design space the paper's introduction motivates).

#include <gtest/gtest.h>

#include <cmath>

#include "lbm/observables.hpp"
#include "lbm/simulation.hpp"

using namespace slipflow::lbm;

namespace {

FluidParams striped(double period_cells) {
  FluidParams p = FluidParams::microchannel_defaults();
  p.wall_pattern = [period_cells](index_t gx, index_t, index_t) {
    // alternating hydrophobic (1) / hydrophilic (0) stripes along x
    return std::fmod(static_cast<double>(gx), period_cells) <
                   period_cells / 2
               ? 1.0
               : 0.0;
  };
  return p;
}

}  // namespace

TEST(WallPattern, UnitPatternMatchesUnpatterned) {
  FluidParams plain = FluidParams::microchannel_defaults();
  FluidParams unit = FluidParams::microchannel_defaults();
  unit.wall_pattern = [](index_t, index_t, index_t) { return 1.0; };
  Simulation a(Extents{8, 12, 6}, std::move(plain));
  Simulation b(Extents{8, 12, 6}, std::move(unit));
  a.initialize_uniform();
  b.initialize_uniform();
  a.run(100);
  b.run(100);
  const auto ua = velocity_profile_y(a.slab(), 4, 3);
  const auto ub = velocity_profile_y(b.slab(), 4, 3);
  for (std::size_t j = 0; j < ua.size(); ++j)
    EXPECT_DOUBLE_EQ(ua[j], ub[j]);
}

TEST(WallPattern, ZeroPatternMatchesNoForce) {
  FluidParams none = FluidParams::microchannel_defaults(/*wall_accel=*/0.0);
  FluidParams zero = FluidParams::microchannel_defaults();
  zero.wall_pattern = [](index_t, index_t, index_t) { return 0.0; };
  Simulation a(Extents{8, 12, 6}, std::move(none));
  Simulation b(Extents{8, 12, 6}, std::move(zero));
  a.initialize_uniform();
  b.initialize_uniform();
  a.run(100);
  b.run(100);
  const auto wa = density_profile_y(a.slab(), 0, 4, 3);
  const auto wb = density_profile_y(b.slab(), 0, 4, 3);
  for (std::size_t j = 0; j < wa.size(); ++j)
    EXPECT_DOUBLE_EQ(wa[j], wb[j]);
}

TEST(WallPattern, StripesProduceStripedDepletion) {
  Simulation sim(Extents{24, 14, 6}, striped(12.0));
  sim.initialize_uniform();
  sim.run(800);
  // hydrophobic stripe covers gx in [0,6) and [12,18): compare water
  // density at the wall inside vs outside a stripe
  const auto hydrophobic = density_profile_y(sim.slab(), 0, 3, 3);
  const auto hydrophilic = density_profile_y(sim.slab(), 0, 9, 3);
  EXPECT_LT(hydrophobic.front(), 0.85 * hydrophilic.front());
}

TEST(WallPattern, StripesDriveSecondaryCirculation) {
  // alternating wettability modulates the near-wall density along x,
  // whose Shan-Chen pressure differences drive a steady circulation far
  // stronger than the gravity-driven through-flow — the striped channel
  // is *not* just a Poiseuille flow with variable slip.
  Simulation uniform(Extents{24, 14, 6},
                     FluidParams::microchannel_defaults());
  Simulation stripes(Extents{24, 14, 6}, striped(12.0));
  uniform.initialize_uniform();
  stripes.initialize_uniform();
  uniform.run(800);
  stripes.run(800);
  auto max_abs_u = [](const Simulation& sim) {
    double m = 0.0;
    const Extents& st = sim.slab().storage();
    for (index_t gx = 0; gx < 24; ++gx) {
      const double u = sim.slab().velocity().x()[st.idx(gx + 1, 7, 3)];
      m = std::max(m, std::abs(u));
    }
    return m;
  };
  EXPECT_GT(max_abs_u(stripes), 5.0 * max_abs_u(uniform));
}

TEST(WallPattern, PatternIsDecompositionInvariant) {
  // the pattern is a function of global coordinates, so two slabs with
  // different origins agree on every cell — spot-check through geometry
  // by running two different domains offset in x... the invariance that
  // matters operationally is that sequential == parallel, covered by the
  // parallel tests; here we assert the pattern evaluates globally, i.e.
  // the same simulation shifted by one period gives the same profiles.
  Simulation a(Extents{24, 10, 6}, striped(12.0));
  a.initialize_uniform();
  a.run(300);
  // period-12 pattern: gx and gx+12 see identical coating
  const auto pa = density_profile_y(a.slab(), 0, 2, 3);
  const auto pb = density_profile_y(a.slab(), 0, 14, 3);
  for (std::size_t j = 0; j < pa.size(); ++j)
    EXPECT_NEAR(pa[j], pb[j], 1e-9);
}

TEST(WallPattern, MassStillConserved) {
  Simulation sim(Extents{24, 12, 6}, striped(8.0));
  sim.initialize_uniform();
  const double m0 = owned_mass(sim.slab(), 0);
  sim.run(500);
  EXPECT_NEAR(owned_mass(sim.slab(), 0), m0, 1e-9 * m0);
}
