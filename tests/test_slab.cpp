// Slab tests: extents bookkeeping, halo packing round trips between
// neighboring slabs, and plane migration (detach/attach) preserving the
// full per-cell state — the invariant dynamic remapping relies on.

#include <gtest/gtest.h>

#include <memory>

#include "lbm/kernels.hpp"
#include "lbm/slab.hpp"

using namespace slipflow::lbm;

namespace {

std::shared_ptr<const ChannelGeometry> make_geom(Extents e = {10, 4, 3}) {
  return std::make_shared<const ChannelGeometry>(e);
}

FluidParams two_comp() { return FluidParams::microchannel_defaults(); }

/// Density patterned on global coordinates so any misplaced plane is
/// detectable.
double pattern(std::size_t c, index_t gx, index_t gy, index_t gz) {
  return 1.0 + 0.1 * static_cast<double>(c) + 0.01 * static_cast<double>(gx) +
         0.001 * static_cast<double>(gy) + 0.0001 * static_cast<double>(gz);
}

}  // namespace

TEST(Slab, ExtentBookkeeping) {
  auto g = make_geom();
  Slab s(g, two_comp(), 2, 5);
  EXPECT_EQ(s.x_begin(), 2);
  EXPECT_EQ(s.x_end(), 7);
  EXPECT_EQ(s.nx_local(), 5);
  EXPECT_EQ(s.plane_cells(), 12);
  EXPECT_EQ(s.owned_cells(), 60);
  EXPECT_EQ(s.storage().nx, 7);  // 5 owned + 2 halo
  EXPECT_EQ(s.local_x(2), 1);
  EXPECT_EQ(s.local_x(6), 5);
}

TEST(Slab, RejectsOutOfRangeExtents) {
  auto g = make_geom();
  EXPECT_THROW(Slab(g, two_comp(), 8, 5), slipflow::contract_error);
  EXPECT_THROW(Slab(g, two_comp(), -1, 3), slipflow::contract_error);
  EXPECT_THROW(Slab(g, two_comp(), 0, 0), slipflow::contract_error);
}

TEST(Slab, UniformInitializationSetsEquilibrium) {
  auto g = make_geom();
  Slab s(g, two_comp(), 0, 10);
  s.initialize_uniform();
  const Extents& st = s.storage();
  const index_t cell = st.idx(3, 1, 1);
  EXPECT_DOUBLE_EQ(s.density(0)[cell], 1.0);
  EXPECT_DOUBLE_EQ(s.density(1)[cell], 0.03);
  for (int d = 0; d < kQ; ++d)
    EXPECT_DOUBLE_EQ(s.f(0).at(d, cell), kWeight[d] * 1.0);
}

TEST(Slab, PatternInitializationUsesGlobalCoords) {
  auto g = make_geom();
  Slab a(g, two_comp(), 0, 4);
  Slab b(g, two_comp(), 4, 6);
  a.initialize(pattern);
  b.initialize(pattern);
  // plane gx=4 lives at local 1 in b; check values follow global coords
  EXPECT_DOUBLE_EQ(b.density(0)[b.storage().idx(1, 2, 1)],
                   pattern(0, 4, 2, 1));
  EXPECT_DOUBLE_EQ(a.density(1)[a.storage().idx(4, 3, 2)],
                   pattern(1, 3, 3, 2));
}

TEST(Slab, FHaloRoundTripBetweenNeighbors) {
  auto g = make_geom();
  Slab a(g, two_comp(), 0, 5);
  Slab b(g, two_comp(), 5, 5);
  a.initialize(pattern);
  b.initialize(pattern);
  // fill post-collision with a recognizable pattern
  collide(a);
  collide(b);

  // a's right boundary populations -> b's left halo
  std::vector<double> buf(static_cast<std::size_t>(a.f_halo_doubles()));
  a.extract_f_halo(Side::right, buf);
  b.insert_f_halo(Side::left, buf);

  const index_t pc = a.plane_cells();
  for (std::size_t c = 0; c < 2; ++c) {
    for (int d : kRightGoing) {
      for (index_t i = 0; i < pc; ++i) {
        EXPECT_DOUBLE_EQ(b.f_post(c).dir_plane(d, 0)[i],
                         a.f_post(c).dir_plane(d, 5)[i]);
      }
    }
  }
}

TEST(Slab, DensityHaloRoundTrip) {
  auto g = make_geom();
  Slab a(g, two_comp(), 0, 5);
  Slab b(g, two_comp(), 5, 5);
  a.initialize(pattern);
  b.initialize(pattern);
  std::vector<double> buf(static_cast<std::size_t>(b.density_halo_doubles()));
  b.extract_density_halo(Side::left, buf);
  a.insert_density_halo(Side::right, buf);
  const index_t pc = a.plane_cells();
  for (std::size_t c = 0; c < 2; ++c)
    for (index_t i = 0; i < pc; ++i)
      EXPECT_DOUBLE_EQ(a.density(c).plane(6)[i], b.density(c).plane(1)[i]);
}

TEST(Slab, HaloBufferSizeIsChecked) {
  auto g = make_geom();
  Slab s(g, two_comp(), 0, 5);
  std::vector<double> wrong(3);
  EXPECT_THROW(s.extract_f_halo(Side::left, wrong), slipflow::contract_error);
  EXPECT_THROW(s.insert_density_halo(Side::right, wrong),
               slipflow::contract_error);
}

TEST(Migration, DetachShrinksAndShiftsOrigin) {
  auto g = make_geom();
  Slab s(g, two_comp(), 2, 6);
  s.initialize(pattern);
  std::vector<double> buf(static_cast<std::size_t>(s.migration_doubles(2)));
  s.detach_planes(Side::left, 2, buf);
  EXPECT_EQ(s.x_begin(), 4);
  EXPECT_EQ(s.nx_local(), 4);
  // remaining state still matches global pattern
  EXPECT_DOUBLE_EQ(s.density(0)[s.storage().idx(1, 1, 1)], pattern(0, 4, 1, 1));
}

TEST(Migration, DetachRightKeepsOrigin) {
  auto g = make_geom();
  Slab s(g, two_comp(), 2, 6);
  s.initialize(pattern);
  std::vector<double> buf(static_cast<std::size_t>(s.migration_doubles(3)));
  s.detach_planes(Side::right, 3, buf);
  EXPECT_EQ(s.x_begin(), 2);
  EXPECT_EQ(s.nx_local(), 3);
  EXPECT_DOUBLE_EQ(s.density(1)[s.storage().idx(3, 0, 0)], pattern(1, 4, 0, 0));
}

TEST(Migration, TransferPreservesStateExactly) {
  auto g = make_geom();
  Slab a(g, two_comp(), 0, 6);
  Slab b(g, two_comp(), 6, 4);
  a.initialize(pattern);
  b.initialize(pattern);
  // also give ueq a pattern so we verify it travels too
  for (index_t lx = 1; lx <= a.nx_local(); ++lx)
    for (index_t y = 0; y < 4; ++y)
      for (index_t z = 0; z < 3; ++z)
        a.ueq(0).set(a.storage().idx(lx, y, z),
                     Vec3{0.01 * static_cast<double>(lx), 0.0, 0.0});

  const double mass_before = owned_mass(a, 0) + owned_mass(b, 0);

  std::vector<double> buf(static_cast<std::size_t>(a.migration_doubles(2)));
  a.detach_planes(Side::right, 2, buf);
  b.attach_planes(Side::left, 2, buf);

  EXPECT_EQ(a.nx_local(), 4);
  EXPECT_EQ(b.nx_local(), 6);
  EXPECT_EQ(b.x_begin(), 4);
  EXPECT_EQ(a.x_end(), b.x_begin());

  // mass conservation across the pair
  EXPECT_NEAR(owned_mass(a, 0) + owned_mass(b, 0), mass_before, 1e-12);

  // migrated planes carry densities AND distributions AND ueq
  EXPECT_DOUBLE_EQ(b.density(0)[b.storage().idx(1, 2, 1)], pattern(0, 4, 2, 1));
  EXPECT_DOUBLE_EQ(b.density(1)[b.storage().idx(2, 3, 2)], pattern(1, 5, 3, 2));
  for (int d = 0; d < kQ; ++d)
    EXPECT_DOUBLE_EQ(b.f(0).at(d, b.storage().idx(1, 1, 1)),
                     kWeight[d] * pattern(0, 4, 1, 1));
  EXPECT_DOUBLE_EQ(b.ueq(0).at(b.storage().idx(1, 0, 0)).x, 0.05);
}

TEST(Migration, RoundTripIsIdentity) {
  auto g = make_geom();
  Slab s(g, two_comp(), 3, 5);
  s.initialize(pattern);
  std::vector<double> buf(static_cast<std::size_t>(s.migration_doubles(2)));
  s.detach_planes(Side::left, 2, buf);
  s.attach_planes(Side::left, 2, buf);
  EXPECT_EQ(s.x_begin(), 3);
  EXPECT_EQ(s.nx_local(), 5);
  for (index_t lx = 1; lx <= 5; ++lx)
    EXPECT_DOUBLE_EQ(s.density(0)[s.storage().idx(lx, 1, 1)],
                     pattern(0, 3 + lx - 1, 1, 1));
}

TEST(Migration, CannotGiveAwayLastPlane) {
  auto g = make_geom();
  Slab s(g, two_comp(), 0, 3);
  s.initialize_uniform();
  std::vector<double> buf(static_cast<std::size_t>(s.migration_doubles(3)));
  EXPECT_THROW(s.detach_planes(Side::left, 3, buf), slipflow::contract_error);
}

TEST(Migration, BufferSizeChecked) {
  auto g = make_geom();
  Slab s(g, two_comp(), 0, 5);
  s.initialize_uniform();
  std::vector<double> small(10);
  EXPECT_THROW(s.detach_planes(Side::left, 1, small),
               slipflow::contract_error);
}

TEST(Migration, SingleComponentPayloadSize) {
  auto g = make_geom();
  Slab s(g, FluidParams::single_component(), 0, 5);
  // (19 + 1 + 3) doubles per cell per component, 12 cells per plane
  EXPECT_EQ(s.migration_doubles(1), 23 * 12);
  EXPECT_EQ(s.f_halo_doubles(), 5 * 12);
  EXPECT_EQ(s.density_halo_doubles(), 12);
}
