// Property tests for the virtual cluster across randomized
// configurations: conservation, lower bounds, monotonicity, determinism.

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/scenario.hpp"
#include "util/rng.hpp"

using namespace slipflow::cluster;
using slipflow::balance::RemapPolicy;
using slipflow::util::Rng;

namespace {

ClusterConfig random_config(Rng& rng) {
  ClusterConfig cfg;
  cfg.nodes = 3 + static_cast<int>(rng.below(10));
  cfg.planes_total = cfg.nodes * (2 + static_cast<long long>(rng.below(8)));
  cfg.plane_cells = 50 + static_cast<long long>(rng.below(200));
  cfg.cost_per_point = rng.uniform(1e-5, 1e-3);
  cfg.remap_interval = 2 + static_cast<int>(rng.below(10));
  cfg.balance.window = 2 + static_cast<int>(rng.below(8));
  cfg.balance.min_transfer_points = cfg.plane_cells;
  cfg.net.latency = rng.uniform(0.0, 1e-3);
  cfg.net.bandwidth = rng.uniform(1e6, 1e9);
  cfg.net.msg_cpu = rng.uniform(0.0, 1e-2);
  cfg.net.sched_quantum = rng.uniform(0.0, 0.1);
  return cfg;
}

void add_random_loads(ClusterSim& sim, Rng& rng) {
  const int n = sim.config().nodes;
  const int loaded = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
  for (int i = 0; i < loaded; ++i) {
    const int node = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    switch (rng.below(3)) {
      case 0:
        sim.node(node).add_load(
            std::make_unique<PersistentLoad>(rng.uniform(0.5, 3.0)));
        break;
      case 1:
        sim.node(node).add_load(std::make_unique<PeriodicLoad>(
            rng.uniform(0.5, 3.0), rng.uniform(1.0, 20.0),
            rng.uniform(0.1, 0.9)));
        break;
      default:
        sim.node(node).add_load(std::make_unique<TraceLoad>(
            synthetic_trace(1000.0, rng.uniform(0.5, 5.0), rng)));
    }
  }
}

}  // namespace

class RandomizedCluster : public ::testing::TestWithParam<const char*> {};

TEST_P(RandomizedCluster, PlanesConservedAndPositive) {
  Rng rng(101);
  for (int rep = 0; rep < 20; ++rep) {
    const ClusterConfig cfg = random_config(rng);
    ClusterSim sim(cfg, RemapPolicy::create(GetParam()));
    add_random_loads(sim, rng);
    const auto r = sim.run(30 + static_cast<int>(rng.below(100)));
    long long planes = 0;
    for (const auto& p : r.profile) {
      ASSERT_GE(p.planes_end, 1);
      planes += p.planes_end;
    }
    ASSERT_EQ(planes, cfg.planes_total);
    ASSERT_TRUE(std::isfinite(r.makespan));
    ASSERT_GT(r.makespan, 0.0);
  }
}

TEST_P(RandomizedCluster, MakespanBoundedBelowByPerfectParallelism) {
  // no schedule can beat the total dedicated work divided by the number
  // of (full-speed) nodes
  Rng rng(103);
  for (int rep = 0; rep < 15; ++rep) {
    const ClusterConfig cfg = random_config(rng);
    const int phases = 20 + static_cast<int>(rng.below(60));
    ClusterSim sim(cfg, RemapPolicy::create(GetParam()));
    add_random_loads(sim, rng);
    const auto r = sim.run(phases);
    ClusterSim ref(cfg, RemapPolicy::create("none"));
    const double lower = ref.sequential_time(phases) / cfg.nodes;
    ASSERT_GE(r.makespan, lower * (1.0 - 1e-9));
  }
}

TEST_P(RandomizedCluster, DeterministicAcrossRuns) {
  Rng rng_a(107), rng_b(107);
  const ClusterConfig cfg_a = random_config(rng_a);
  const ClusterConfig cfg_b = random_config(rng_b);
  ClusterSim a(cfg_a, RemapPolicy::create(GetParam()));
  ClusterSim b(cfg_b, RemapPolicy::create(GetParam()));
  add_random_loads(a, rng_a);
  add_random_loads(b, rng_b);
  const auto ra = a.run(80);
  const auto rb = b.run(80);
  ASSERT_DOUBLE_EQ(ra.makespan, rb.makespan);
  ASSERT_EQ(ra.migration_events, rb.migration_events);
  for (std::size_t i = 0; i < ra.profile.size(); ++i)
    ASSERT_EQ(ra.profile[i].planes_end, rb.profile[i].planes_end);
}

INSTANTIATE_TEST_SUITE_P(Policies, RandomizedCluster,
                         ::testing::Values("none", "conservative",
                                           "filtered", "global"));

TEST(ClusterMonotonicity, HeavierDisturbanceNeverSpeedsUpNoRemap) {
  // without remapping, increasing one node's competing weight can only
  // increase (or keep) the makespan
  double prev = 0.0;
  for (double w : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    ClusterSim sim(paper::base_config(5), RemapPolicy::create("none"));
    if (w > 0.0)
      sim.node(2).add_load(std::make_unique<PersistentLoad>(w));
    const double t = sim.run(50).makespan;
    EXPECT_GE(t, prev - 1e-9) << "w=" << w;
    prev = t;
  }
}

TEST(ClusterMonotonicity, MorePhasesTakeProportionallyLonger) {
  ClusterSim a(paper::base_config(8), RemapPolicy::create("none"));
  ClusterSim b(paper::base_config(8), RemapPolicy::create("none"));
  const double t100 = a.run(100).makespan;
  const double t200 = b.run(200).makespan;
  EXPECT_NEAR(t200 / t100, 2.0, 0.01);
}

TEST(ClusterProperty, BaseSpeedScalesDedicatedMakespan) {
  ClusterSim fast(paper::base_config(4), RemapPolicy::create("none"));
  ClusterSim slow(paper::base_config(4), RemapPolicy::create("none"));
  for (int i = 0; i < 4; ++i) slow.node(i) = VirtualNode(0.5);
  const double tf = fast.run(40).makespan;
  const double ts = slow.run(40).makespan;
  // compute doubles; communication partially unscaled keeps it under 2x
  EXPECT_GT(ts, 1.8 * tf);
  EXPECT_LT(ts, 2.05 * tf);
}

TEST(ClusterProperty, RemappingNeverLosesBadlyOnPersistentLoad) {
  // meta-property of the paper's scheme: for persistent slow nodes,
  // filtered remapping is never more than marginally worse than not
  // remapping, across random slow-node placements
  Rng rng(113);
  for (int rep = 0; rep < 10; ++rep) {
    ClusterConfig cfg = paper::base_config(10);
    cfg.planes_total = 200;
    const int slow = static_cast<int>(rng.below(10));
    ClusterSim none(cfg, RemapPolicy::create("none"));
    ClusterSim filt(cfg, RemapPolicy::create("filtered"));
    none.node(slow).add_load(std::make_unique<PersistentLoad>(2.0));
    filt.node(slow).add_load(std::make_unique<PersistentLoad>(2.0));
    const double tn = none.run(150).makespan;
    const double tf = filt.run(150).makespan;
    ASSERT_LT(tf, 1.05 * tn) << "slow node " << slow;
  }
}
