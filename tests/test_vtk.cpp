// VTK writer: well-formed legacy header, complete data sections, and
// values that parse back to the fields they came from.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lbm/simulation.hpp"
#include "lbm/vtk.hpp"

using namespace slipflow::lbm;

namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

struct PathGuard {
  std::string path;
  explicit PathGuard(std::string p) : path(std::move(p)) {}
  ~PathGuard() { std::remove(path.c_str()); }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

Simulation small_sim() {
  Simulation sim(Extents{5, 4, 3}, FluidParams::microchannel_defaults());
  sim.initialize_uniform();
  sim.run(10);
  return sim;
}

}  // namespace

TEST(Vtk, HeaderAndSectionsPresent) {
  PathGuard g(temp_path("out.vtk"));
  Simulation sim = small_sim();
  write_vtk(sim.slab(), g.path, "test title");
  const std::string s = slurp(g.path);
  EXPECT_NE(s.find("# vtk DataFile Version 3.0"), std::string::npos);
  EXPECT_NE(s.find("test title"), std::string::npos);
  EXPECT_NE(s.find("DATASET STRUCTURED_POINTS"), std::string::npos);
  EXPECT_NE(s.find("DIMENSIONS 5 4 3"), std::string::npos);
  EXPECT_NE(s.find("POINT_DATA 60"), std::string::npos);
  EXPECT_NE(s.find("SCALARS density_water double 1"), std::string::npos);
  EXPECT_NE(s.find("SCALARS density_air double 1"), std::string::npos);
  EXPECT_NE(s.find("SCALARS density_total double 1"), std::string::npos);
  EXPECT_NE(s.find("VECTORS velocity double"), std::string::npos);
}

TEST(Vtk, ScalarValuesParseBackToFields) {
  PathGuard g(temp_path("roundtrip.vtk"));
  Simulation sim = small_sim();
  write_vtk(sim.slab(), g.path);

  std::ifstream in(g.path);
  std::string line;
  // skip to the first scalar block's data
  while (std::getline(in, line) && line.rfind("LOOKUP_TABLE", 0) != 0) {
  }
  // VTK order: x fastest — the first value is cell (gx=0,y=0,z=0), the
  // second is (gx=1,y=0,z=0)
  double v0 = 0, v1 = 0;
  in >> v0 >> v1;
  const Extents& st = sim.slab().storage();
  EXPECT_DOUBLE_EQ(v0, sim.slab().density(0)[st.idx(1, 0, 0)]);
  EXPECT_DOUBLE_EQ(v1, sim.slab().density(0)[st.idx(2, 0, 0)]);
}

TEST(Vtk, ValueCountMatchesGrid) {
  PathGuard g(temp_path("count.vtk"));
  Simulation sim = small_sim();
  write_vtk(sim.slab(), g.path);
  std::ifstream in(g.path);
  std::string line;
  long long numbers = 0;
  bool in_data = false;
  while (std::getline(in, line)) {
    if (line.rfind("LOOKUP_TABLE", 0) == 0 ||
        line.rfind("VECTORS", 0) == 0) {
      in_data = true;
      continue;
    }
    if (line.rfind("SCALARS", 0) == 0) {
      in_data = false;
      continue;
    }
    if (in_data && !line.empty()) {
      std::istringstream ls(line);
      double v;
      while (ls >> v) ++numbers;
    }
  }
  // 3 scalar fields x 60 cells + 1 vector field x 180 components
  EXPECT_EQ(numbers, 3 * 60 + 180);
}

TEST(Vtk, OriginEncodesSlabOffset) {
  PathGuard g(temp_path("origin.vtk"));
  auto geom = std::make_shared<const ChannelGeometry>(Extents{10, 4, 3});
  Slab slab(geom, FluidParams::single_component(), 4, 3);
  slab.initialize_uniform();
  write_vtk(slab, g.path);
  const std::string s = slurp(g.path);
  EXPECT_NE(s.find("ORIGIN 4 0 0"), std::string::npos);
  EXPECT_NE(s.find("DIMENSIONS 3 4 3"), std::string::npos);
}

TEST(Vtk, UnwritablePathRejected) {
  Simulation sim = small_sim();
  EXPECT_THROW(write_vtk(sim.slab(), "/nonexistent_dir_xyz/out.vtk"),
               slipflow::contract_error);
}
