// Single-component physics validation: Poiseuille flow against the
// analytic profile, steady-state behavior, Galilean invariance of the
// equilibrium, and viscosity dependence on tau.

#include <gtest/gtest.h>

#include <cmath>

#include "lbm/observables.hpp"
#include "lbm/simulation.hpp"

using namespace slipflow::lbm;

namespace {

/// Body-force-driven flow between parallel plates at the y extents
/// (periodic x and z): u(y) = g/(2 nu) * ((h/2)^2 - y'^2), with h = ny
/// (half-way walls) and y' measured from the channel center.
std::vector<double> poiseuille_analytic(index_t ny, double gravity,
                                        double tau) {
  const double nu = (tau - 0.5) / 3.0;
  const double h = static_cast<double>(ny);
  std::vector<double> u(static_cast<std::size_t>(ny));
  for (index_t j = 0; j < ny; ++j) {
    const double yp = (static_cast<double>(j) + 0.5) - h / 2.0;
    u[static_cast<std::size_t>(j)] =
        gravity / (2.0 * nu) * (h * h / 4.0 - yp * yp);
  }
  return u;
}

Simulation make_poiseuille(index_t ny, double tau, double gravity) {
  Simulation sim(Extents{4, ny, 4}, FluidParams::single_component(tau, gravity),
                 nullptr, /*walls_y=*/true, /*walls_z=*/false);
  sim.initialize_uniform();
  return sim;
}

}  // namespace

TEST(Poiseuille, MatchesAnalyticProfile) {
  const index_t ny = 21;
  const double tau = 1.0, g = 1e-5;
  Simulation sim = make_poiseuille(ny, tau, g);
  sim.run(4000);
  const auto u = velocity_profile_y(sim.slab(), 1, 2);
  const auto ref = poiseuille_analytic(ny, g, tau);
  const double umax = *std::max_element(ref.begin(), ref.end());
  for (index_t j = 0; j < ny; ++j) {
    EXPECT_NEAR(u[static_cast<std::size_t>(j)], ref[static_cast<std::size_t>(j)],
                0.02 * umax)
        << "j=" << j;
  }
}

TEST(Poiseuille, ProfileIsSymmetric) {
  Simulation sim = make_poiseuille(16, 1.0, 1e-5);
  sim.run(2000);
  const auto u = velocity_profile_y(sim.slab(), 1, 2);
  for (std::size_t j = 0; j < u.size() / 2; ++j)
    EXPECT_NEAR(u[j], u[u.size() - 1 - j], 1e-10);
}

TEST(Poiseuille, NoSlipAtWallsWithoutWallForce) {
  Simulation sim = make_poiseuille(21, 1.0, 1e-5);
  sim.run(4000);
  const auto u = velocity_profile_y(sim.slab(), 1, 2);
  const auto slip = measure_slip(u);
  // wall-extrapolated velocity is a small fraction of the centerline
  EXPECT_LT(std::abs(slip.slip_fraction), 0.02);
}

TEST(Poiseuille, CenterlineScalesInverselyWithViscosity) {
  // nu(tau=1.0) = 1/6, nu(tau=0.8) = 1/10: u_max ratio should be 10/6.
  Simulation a = make_poiseuille(15, 1.0, 1e-5);
  Simulation b = make_poiseuille(15, 0.8, 1e-5);
  a.run(4000);
  b.run(4000);
  const auto ua = velocity_profile_y(a.slab(), 1, 2);
  const auto ub = velocity_profile_y(b.slab(), 1, 2);
  const double ma = *std::max_element(ua.begin(), ua.end());
  const double mb = *std::max_element(ub.begin(), ub.end());
  EXPECT_NEAR(mb / ma, 10.0 / 6.0, 0.05);
}

TEST(Poiseuille, VelocityUniformAlongXAndZ) {
  Simulation sim = make_poiseuille(13, 1.0, 1e-5);
  sim.run(1500);
  const auto u0 = velocity_profile_y(sim.slab(), 0, 1);
  const auto u1 = velocity_profile_y(sim.slab(), 3, 3);
  for (std::size_t j = 0; j < u0.size(); ++j) EXPECT_NEAR(u0[j], u1[j], 1e-12);
}

TEST(Physics, MassConservedOverLongRun) {
  Simulation sim = make_poiseuille(11, 1.0, 1e-5);
  const double m0 = owned_mass(sim.slab(), 0);
  sim.run(3000);
  EXPECT_NEAR(owned_mass(sim.slab(), 0), m0, 1e-8 * m0);
}

TEST(Physics, MomentumSteadyStateBalance) {
  // at steady state, momentum input by gravity is absorbed by the walls;
  // the momentum must stop growing.
  Simulation sim = make_poiseuille(11, 1.0, 1e-5);
  sim.run(3000);
  const double p1 = owned_momentum_x(sim.slab());
  sim.run(500);
  const double p2 = owned_momentum_x(sim.slab());
  EXPECT_NEAR(p2, p1, 1e-3 * std::abs(p1));
}

TEST(Physics, QuiescentFluidStaysQuiescent) {
  Simulation sim(Extents{5, 8, 6}, FluidParams::single_component(1.0, 0.0));
  sim.initialize_uniform();
  sim.run(200);
  const Extents& st = sim.slab().storage();
  for (index_t y = 0; y < 8; ++y)
    for (index_t z = 0; z < 6; ++z) {
      const Vec3 u = sim.slab().velocity().at(st.idx(2, y, z));
      EXPECT_NEAR(u.x, 0.0, 1e-14);
      EXPECT_NEAR(u.y, 0.0, 1e-14);
      EXPECT_NEAR(u.z, 0.0, 1e-14);
    }
}

TEST(Physics, DensityStaysUniformInQuiescentChannel) {
  Simulation sim(Extents{5, 8, 6}, FluidParams::single_component(1.0, 0.0));
  sim.initialize_uniform();
  sim.run(200);
  const Extents& st = sim.slab().storage();
  for (index_t y = 0; y < 8; ++y)
    EXPECT_NEAR(sim.slab().density(0)[st.idx(2, y, 3)], 1.0, 1e-12);
}

TEST(Physics, ObstacleBlocksFlow) {
  // a solid wall spanning the whole cross-section: no net flow can develop
  auto wall = [](index_t x, index_t, index_t) { return x == 2; };
  Simulation sim(Extents{8, 6, 6}, FluidParams::single_component(1.0, 1e-5),
                 wall);
  sim.initialize([&](std::size_t, index_t gx, index_t, index_t) {
    return gx == 2 ? 0.0 : 1.0;
  });
  sim.run(500);
  // velocity stays tiny compared to an unobstructed channel
  Simulation open(Extents{8, 6, 6}, FluidParams::single_component(1.0, 1e-5));
  open.initialize_uniform();
  open.run(500);
  const auto ub = velocity_profile_y(sim.slab(), 5, 3);
  const auto uo = velocity_profile_y(open.slab(), 5, 3);
  const double mb = *std::max_element(ub.begin(), ub.end());
  const double mo = *std::max_element(uo.begin(), uo.end());
  EXPECT_LT(std::abs(mb), 0.2 * mo);
}

TEST(Observables, MeasureSlipLinearExtrapolation) {
  // profile u(y) = 2 + y_node where y_node = j + 0.5: wall value = 2.
  std::vector<double> u;
  for (int j = 0; j < 8; ++j) u.push_back(2.0 + (j + 0.5));
  const auto m = measure_slip(u);
  EXPECT_NEAR(m.u_wall, 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.u_center, u.back());
  EXPECT_DOUBLE_EQ(m.u_wall_node, u.front());
}

TEST(Observables, PlaneMassMatchesPattern) {
  Simulation sim(Extents{4, 3, 3}, FluidParams::single_component());
  sim.initialize([](std::size_t, index_t gx, index_t, index_t) {
    return static_cast<double>(gx + 1);
  });
  EXPECT_NEAR(plane_mass(sim.slab(), 0, 2), 3.0 * 9, 1e-12);
}
