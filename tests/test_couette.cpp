// Moving-wall bounce-back: Couette flow validation against the linear
// analytic profile, and the wall-velocity configuration contract.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "lbm/observables.hpp"
#include "lbm/simulation.hpp"

using namespace slipflow::lbm;

namespace {

using Wall = ChannelGeometry::Wall;

std::shared_ptr<const ChannelGeometry> couette_geom(
    index_t ny, const Vec3& top_u, bool also_bottom = false,
    const Vec3& bottom_u = {}) {
  auto g = std::make_shared<ChannelGeometry>(Extents{4, ny, 4}, nullptr,
                                             /*walls_y=*/true,
                                             /*walls_z=*/false);
  g->set_wall_velocity(Wall::y_high, top_u);
  if (also_bottom) g->set_wall_velocity(Wall::y_low, bottom_u);
  return g;
}

}  // namespace

TEST(MovingWalls, ConfigurationContract) {
  ChannelGeometry g(Extents{4, 8, 8});
  EXPECT_FALSE(g.has_moving_walls());
  g.set_wall_velocity(Wall::y_high, Vec3{0.1, 0.0, 0.0});
  EXPECT_TRUE(g.has_moving_walls());
  // normal component forbidden
  EXPECT_THROW(g.set_wall_velocity(Wall::y_low, Vec3{0.0, 0.1, 0.0}),
               slipflow::contract_error);
  EXPECT_THROW(g.set_wall_velocity(Wall::z_low, Vec3{0.0, 0.0, 0.1}),
               slipflow::contract_error);
  // resetting to zero clears the flag
  g.set_wall_velocity(Wall::y_high, Vec3{});
  EXPECT_FALSE(g.has_moving_walls());
}

TEST(MovingWalls, PeriodicDirectionRejected) {
  ChannelGeometry g(Extents{4, 8, 8}, nullptr, /*walls_y=*/false, true);
  EXPECT_THROW(g.set_wall_velocity(Wall::y_low, Vec3{0.1, 0, 0}),
               slipflow::contract_error);
}

TEST(Couette, LinearProfile) {
  const index_t ny = 16;
  const double U = 0.04;
  FluidParams p = FluidParams::single_component(1.0, 0.0);
  Simulation sim(couette_geom(ny, Vec3{U, 0, 0}), std::move(p));
  sim.initialize_uniform();
  sim.run(3000);
  const auto u = velocity_profile_y(sim.slab(), 1, 2);
  // analytic: u(y) = U * (j + 1/2) / ny with half-way wall positions
  for (index_t j = 0; j < ny; ++j) {
    const double expect = U * (static_cast<double>(j) + 0.5) / ny;
    EXPECT_NEAR(u[static_cast<std::size_t>(j)], expect, 0.02 * U) << j;
  }
}

TEST(Couette, CounterMovingWallsAntisymmetric) {
  const index_t ny = 14;
  const double U = 0.03;
  FluidParams p = FluidParams::single_component(1.0, 0.0);
  Simulation sim(
      couette_geom(ny, Vec3{U, 0, 0}, true, Vec3{-U, 0, 0}),
      std::move(p));
  sim.initialize_uniform();
  sim.run(3000);
  const auto u = velocity_profile_y(sim.slab(), 1, 2);
  for (index_t j = 0; j < ny / 2; ++j) {
    EXPECT_NEAR(u[static_cast<std::size_t>(j)],
                -u[static_cast<std::size_t>(ny - 1 - j)], 1e-6);
  }
  // center is (anti)symmetric around zero
  EXPECT_NEAR(u[static_cast<std::size_t>(ny / 2)], U / ny, 0.05 * U);
}

TEST(Couette, MassConserved) {
  FluidParams p = FluidParams::single_component(1.0, 0.0);
  Simulation sim(couette_geom(12, Vec3{0.05, 0, 0}), std::move(p));
  sim.initialize_uniform();
  const double m0 = owned_mass(sim.slab(), 0);
  sim.run(1000);
  EXPECT_NEAR(owned_mass(sim.slab(), 0), m0, 1e-8 * m0);
}

TEST(Couette, SpanwiseWallMotionDragsZVelocity) {
  // move the top y-wall along z instead of x: the z-velocity profile
  // must become the linear Couette profile, with no x flow
  FluidParams p = FluidParams::single_component(1.0, 0.0);
  Simulation sim(couette_geom(12, Vec3{0, 0, 0.03}), std::move(p));
  sim.initialize_uniform();
  sim.run(2500);
  const Extents& st = sim.slab().storage();
  for (index_t j = 0; j < 12; ++j) {
    const Vec3 u = sim.slab().velocity().at(st.idx(1, j, 2));
    const double expect = 0.03 * (static_cast<double>(j) + 0.5) / 12.0;
    EXPECT_NEAR(u.z, expect, 0.002);
    EXPECT_NEAR(u.x, 0.0, 1e-9);
  }
}

TEST(Couette, ZeroWallVelocityMatchesStaticWalls) {
  FluidParams p = FluidParams::single_component(1.0, 1e-5);
  Simulation moving(couette_geom(10, Vec3{}), p);
  Simulation fixed(Extents{4, 10, 4}, p, nullptr, true, false);
  moving.initialize_uniform();
  fixed.initialize_uniform();
  moving.run(300);
  fixed.run(300);
  const auto um = velocity_profile_y(moving.slab(), 1, 2);
  const auto uf = velocity_profile_y(fixed.slab(), 1, 2);
  for (std::size_t j = 0; j < um.size(); ++j)
    EXPECT_DOUBLE_EQ(um[j], uf[j]);
}

TEST(Couette, TopBottomZWallsDriveFlow) {
  // moving z-walls in a y-periodic slit
  auto g = std::make_shared<ChannelGeometry>(Extents{4, 4, 12}, nullptr,
                                             /*walls_y=*/false, true);
  g->set_wall_velocity(Wall::z_high, Vec3{0.04, 0, 0});
  FluidParams p = FluidParams::single_component(1.0, 0.0);
  Simulation sim(g, std::move(p));
  sim.initialize_uniform();
  sim.run(2500);
  const auto u = velocity_profile_z(sim.slab(), 1, 2);
  for (index_t k = 0; k < 12; ++k) {
    const double expect = 0.04 * (static_cast<double>(k) + 0.5) / 12.0;
    EXPECT_NEAR(u[static_cast<std::size_t>(k)], expect, 0.003);
  }
}
