// NodeBalancer (per-point normalized prediction) and the plane
// quantization / boundary flow helpers shared by both runners.

#include <gtest/gtest.h>

#include "balance/remapper.hpp"

using namespace slipflow::balance;

namespace {

NodeBalancer make_balancer(const char* policy = "filtered", int window = 5) {
  BalanceConfig cfg;
  cfg.window = window;
  cfg.min_transfer_points = 100;
  return NodeBalancer(cfg, RemapPolicy::create(policy));
}

}  // namespace

TEST(NodeBalancer, ReadyAfterWindowFills) {
  auto b = make_balancer();
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(b.ready());
    b.record_phase(1.0, 1000);
  }
  b.record_phase(1.0, 1000);
  EXPECT_TRUE(b.ready());
}

TEST(NodeBalancer, PredictionScalesWithPoints) {
  auto b = make_balancer();
  for (int i = 0; i < 5; ++i) b.record_phase(2.0, 1000);
  EXPECT_NEAR(b.predicted_time(1000), 2.0, 1e-12);
  // per-point normalization: migrating half the points halves the
  // prediction without invalidating the window
  EXPECT_NEAR(b.predicted_time(500), 1.0, 1e-12);
  EXPECT_NEAR(b.predicted_time(2000), 4.0, 1e-12);
}

TEST(NodeBalancer, MixedPointCountsStillConverge) {
  auto b = make_balancer();
  // same per-point speed at different owned sizes
  b.record_phase(1.0, 1000);
  b.record_phase(2.0, 2000);
  b.record_phase(0.5, 500);
  b.record_phase(1.0, 1000);
  b.record_phase(3.0, 3000);
  EXPECT_NEAR(b.predicted_time(1000), 1.0, 1e-12);
}

TEST(NodeBalancer, DecideBeforeReadyIsNoop) {
  auto b = make_balancer();
  b.record_phase(1.0, 1000);
  const auto prop = b.decide(NodeLoad{1000, 0.1}, 1000, NodeLoad{1000, 0.1});
  EXPECT_EQ(prop.to_left, 0);
  EXPECT_EQ(prop.to_right, 0);
}

TEST(NodeBalancer, SlowNodeDecidesToShed) {
  auto b = make_balancer("filtered");
  for (int i = 0; i < 5; ++i) b.record_phase(3.0, 1000);  // slow: 333 pts/s
  // neighbors are 3x faster
  const auto prop = b.decide(NodeLoad{1000, 1.0}, 1000, NodeLoad{1000, 1.0});
  EXPECT_GT(prop.to_left + prop.to_right, 0);
}

TEST(NodeBalancer, SelfLoadReflectsPrediction) {
  auto b = make_balancer();
  for (int i = 0; i < 5; ++i) b.record_phase(1.5, 3000);
  const auto l = b.self_load(3000);
  EXPECT_DOUBLE_EQ(l.points, 3000.0);
  EXPECT_NEAR(l.predicted_time, 1.5, 1e-12);
}

TEST(NodeBalancer, RejectsBadInput) {
  auto b = make_balancer();
  EXPECT_THROW(b.record_phase(0.0, 100), slipflow::contract_error);
  EXPECT_THROW(b.record_phase(1.0, 0), slipflow::contract_error);
}

TEST(Quantize, RoundsToNearestPlane) {
  EXPECT_EQ(quantize_flow_to_planes(3900, 4000, 10), 1);
  EXPECT_EQ(quantize_flow_to_planes(1900, 4000, 10), 0);
  EXPECT_EQ(quantize_flow_to_planes(6001, 4000, 10), 2);
}

TEST(Quantize, PreservesSign) {
  EXPECT_EQ(quantize_flow_to_planes(-8000, 4000, 10), -2);
  EXPECT_EQ(quantize_flow_to_planes(-1000, 4000, 10), 0);
}

TEST(Quantize, DonorKeepsMinimumPlanes) {
  EXPECT_EQ(quantize_flow_to_planes(40000, 4000, 3), 2);
  EXPECT_EQ(quantize_flow_to_planes(40000, 4000, 1), 0);
  EXPECT_EQ(quantize_flow_to_planes(-40000, 4000, 2, 2), 0);
}

TEST(Quantize, ExactPlaneMultiples) {
  EXPECT_EQ(quantize_flow_to_planes(8000, 4000, 100), 2);
}

TEST(BoundaryFlows, TelescopeOfImbalance) {
  // node 0 has 100 too many, node 2 has 100 too few: everything flows
  // rightward through node 1.
  const std::vector<long long> cur{300, 200, 100};
  const std::vector<long long> tgt{200, 200, 200};
  const auto f = boundary_flows(cur, tgt);
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], 100);
  EXPECT_EQ(f[1], 100);
}

TEST(BoundaryFlows, NegativeMeansLeftward) {
  const std::vector<long long> cur{100, 200, 300};
  const std::vector<long long> tgt{200, 200, 200};
  const auto f = boundary_flows(cur, tgt);
  EXPECT_EQ(f[0], -100);
  EXPECT_EQ(f[1], -100);
}

TEST(BoundaryFlows, BalancedMeansNoFlow) {
  const std::vector<long long> cur{5, 5, 5, 5};
  const auto f = boundary_flows(cur, cur);
  for (long long v : f) EXPECT_EQ(v, 0);
}

TEST(BoundaryFlows, SizesMustMatch) {
  EXPECT_THROW(boundary_flows({1, 2}, {1}), slipflow::contract_error);
}

TEST(BoundaryFlows, ConservesAcrossExecution) {
  // executing the flows exactly turns current into target
  const std::vector<long long> cur{700, 100, 100, 100};
  const std::vector<long long> tgt{250, 250, 250, 250};
  const auto f = boundary_flows(cur, tgt);
  std::vector<long long> state = cur;
  for (std::size_t b = 0; b < f.size(); ++b) {
    state[b] -= f[b];
    state[b + 1] += f[b];
  }
  EXPECT_EQ(state, tgt);
}
