// Virtual-cluster simulator: closed-form dedicated behavior, the ripple
// effect, plane conservation, and the qualitative policy ordering the
// paper reports.

#include <gtest/gtest.h>

#include <numeric>

#include "cluster/cluster_sim.hpp"

using namespace slipflow::cluster;
using slipflow::balance::RemapPolicy;

namespace {

ClusterConfig small_config(int nodes = 4) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.planes_total = 40;
  cfg.plane_cells = 100;
  cfg.cost_per_point = 1e-4;  // 1 plane = 10 ms of work
  cfg.balance.min_transfer_points = 100;  // one plane
  cfg.balance.window = 5;
  cfg.remap_interval = 5;
  return cfg;
}

ClusterConfig free_network(ClusterConfig cfg) {
  cfg.net.latency = 0.0;
  cfg.net.bandwidth = 1e18;
  cfg.net.msg_cpu = 0.0;
  cfg.net.sched_quantum = 0.0;
  return cfg;
}

long long planes_sum(const SimResult& r) {
  long long s = 0;
  for (const auto& p : r.profile) s += p.planes_end;
  return s;
}

}  // namespace

TEST(EvenPlanes, SplitsWithRemainderToLowRanks) {
  const auto p = ClusterSim::even_planes(10, 4);
  EXPECT_EQ(p, (std::vector<long long>{3, 3, 2, 2}));
  const auto q = ClusterSim::even_planes(8, 4);
  EXPECT_EQ(q, (std::vector<long long>{2, 2, 2, 2}));
}

TEST(ClusterSim, SequentialTimeClosedForm) {
  ClusterSim sim(small_config(), RemapPolicy::create("none"));
  // 40 planes * 100 cells * 1e-4 s = 0.4 s per phase
  EXPECT_NEAR(sim.sequential_time(10), 4.0, 1e-12);
}

TEST(ClusterSim, DedicatedFreeNetworkIsExact) {
  ClusterSim sim(free_network(small_config()), RemapPolicy::create("none"));
  const auto r = sim.run(10);
  // each node: 10 planes * 100 cells * 1e-4 = 0.1 s per phase
  EXPECT_NEAR(r.makespan, 1.0, 1e-9);
  for (const auto& p : r.profile) {
    EXPECT_NEAR(p.compute, 1.0, 1e-9);
    EXPECT_NEAR(p.comm, 0.0, 1e-12);
    EXPECT_EQ(p.planes_end, 10);
  }
}

TEST(ClusterSim, PerfectSpeedupWithFreeNetwork) {
  ClusterSim sim(free_network(small_config(4)), RemapPolicy::create("none"));
  const auto r = sim.run(20);
  EXPECT_NEAR(sim.sequential_time(20) / r.makespan, 4.0, 1e-6);
}

TEST(ClusterSim, NetworkCostsAppearInCommProfile) {
  ClusterSim sim(small_config(), RemapPolicy::create("none"));
  const auto r = sim.run(10);
  for (const auto& p : r.profile) EXPECT_GT(p.comm, 0.0);
  EXPECT_GT(r.makespan, 1.0);
}

TEST(ClusterSim, SlowNodeDragsEveryoneWithoutRemapping) {
  auto cfg = free_network(small_config());
  ClusterSim sim(cfg, RemapPolicy::create("none"));
  sim.node(1).add_load(std::make_unique<PersistentLoad>(2.0));
  const auto r = sim.run(20);
  // the slow node computes at 1/3 speed; with per-phase synchronization
  // the makespan approaches 3x the dedicated time
  EXPECT_GT(r.makespan, 2.5 * 2.0);
  EXPECT_LT(r.makespan, 3.2 * 2.0);
}

TEST(ClusterSim, RippleSpreadsOneHopPerExchange) {
  // with free network the *first phase* already synchronizes direct
  // neighbors to the slow node (2 exchanges/phase -> distance <= 2), but
  // distant nodes lag behind: node 0 in an 8-node chain with slow node 7
  // is unaffected after one phase.
  auto cfg = free_network(small_config(8));
  cfg.planes_total = 80;
  ClusterSim a(cfg, RemapPolicy::create("none"));
  a.node(7).add_load(std::make_unique<PersistentLoad>(2.0));
  const auto r1 = a.run(1);
  // per-phase dedicated work is 0.1 s; node 0's clock must still be ~0.1
  EXPECT_NEAR(r1.profile[0].compute + r1.profile[0].comm, 0.1, 1e-6);

  // after many phases everyone is dragged to the slow node's pace
  ClusterSim b(cfg, RemapPolicy::create("none"));
  b.node(7).add_load(std::make_unique<PersistentLoad>(2.0));
  const auto r20 = b.run(20);
  EXPECT_GT(r20.makespan, 0.27 * 20);  // ~3x of 0.1 per phase
}

TEST(ClusterSim, FilteredRemappingDrainsTheSlowNode) {
  ClusterSim sim(small_config(), RemapPolicy::create("filtered"));
  sim.node(1).add_load(std::make_unique<PersistentLoad>(2.0));
  const auto r = sim.run(100);
  EXPECT_GT(r.migration_events, 0);
  // slow node ends with (much) fewer planes than the even split
  EXPECT_LT(r.profile[1].planes_end, 6);
  EXPECT_EQ(planes_sum(r), 40);
}

TEST(ClusterSim, NoMigrationsInDedicatedCluster) {
  ClusterSim sim(small_config(), RemapPolicy::create("filtered"));
  const auto r = sim.run(100);
  EXPECT_EQ(r.migration_events, 0);
  for (const auto& p : r.profile) EXPECT_EQ(p.planes_end, 10);
}

TEST(ClusterSim, PolicyOrderingWithOneSlowNode) {
  // the paper's headline (Figures 9/10): filtered < conservative <
  // no-remapping in execution time.
  auto run_policy = [&](const char* name) {
    ClusterSim sim(small_config(), RemapPolicy::create(name));
    sim.node(1).add_load(std::make_unique<PersistentLoad>(2.0));
    return sim.run(200).makespan;
  };
  const double none = run_policy("none");
  const double cons = run_policy("conservative");
  const double filt = run_policy("filtered");
  EXPECT_LT(filt, cons);
  EXPECT_LT(cons, none);
}

TEST(ClusterSim, FilteredBeatsNoneByALot) {
  auto cfg = small_config();
  ClusterSim none(cfg, RemapPolicy::create("none"));
  none.node(2).add_load(std::make_unique<PersistentLoad>(2.0));
  ClusterSim filt(cfg, RemapPolicy::create("filtered"));
  filt.node(2).add_load(std::make_unique<PersistentLoad>(2.0));
  const double tn = none.run(200).makespan;
  const double tf = filt.run(200).makespan;
  EXPECT_LT(tf, 0.7 * tn);
}

TEST(ClusterSim, GlobalPolicyMovesPlanesProportionally) {
  ClusterSim sim(small_config(), RemapPolicy::create("global"));
  sim.node(0).add_load(std::make_unique<PersistentLoad>(2.0));
  const auto r = sim.run(100);
  EXPECT_GT(r.migration_events, 0);
  EXPECT_EQ(planes_sum(r), 40);
  // slow node converges near its proportional share: 40 * (1/3)/(3+1/3)
  EXPECT_LT(r.profile[0].planes_end, 8);
  EXPECT_GE(r.profile[0].planes_end, 1);
}

TEST(ClusterSim, PlanesConservedUnderEveryPolicy) {
  for (const char* name : {"none", "conservative", "filtered", "global"}) {
    ClusterSim sim(small_config(5), RemapPolicy::create(name));
    sim.node(3).add_load(std::make_unique<PersistentLoad>(2.0));
    sim.node(1).add_load(std::make_unique<PeriodicLoad>(1.0, 5.0, 0.5));
    const auto r = sim.run(150);
    EXPECT_EQ(planes_sum(r), 40) << name;
    for (const auto& p : r.profile) EXPECT_GE(p.planes_end, 1) << name;
  }
}

TEST(ClusterSim, ProfileAccountsForMigratedPlanes) {
  ClusterSim sim(small_config(), RemapPolicy::create("filtered"));
  sim.node(1).add_load(std::make_unique<PersistentLoad>(2.0));
  const auto r = sim.run(100);
  long long sent = 0, recv = 0;
  for (const auto& p : r.profile) {
    sent += p.planes_sent;
    recv += p.planes_received;
  }
  EXPECT_EQ(sent, recv);
  EXPECT_EQ(sent, r.planes_moved);
}

TEST(ClusterSim, LazyRemappingIgnoresOneShortSpike) {
  auto cfg = small_config();
  ClusterSim sim(cfg, RemapPolicy::create("filtered"));
  // a single 0.2 s spike early on; the harmonic window must swallow it
  sim.node(1).add_load(std::make_unique<IntervalLoad>(
      2.0, std::vector<IntervalLoad::Interval>{{0.5, 0.7}}));
  const auto r = sim.run(100);
  EXPECT_EQ(r.migration_events, 0);
}

TEST(ClusterSim, SingleNodeDegenerates) {
  auto cfg = small_config(1);
  cfg.planes_total = 10;
  ClusterSim sim(free_network(cfg), RemapPolicy::create("filtered"));
  const auto r = sim.run(10);
  EXPECT_NEAR(r.makespan, 10 * 10 * 100 * 1e-4, 1e-9);
  EXPECT_EQ(r.migration_events, 0);
}

TEST(ClusterSim, ValidatesConfig) {
  ClusterConfig bad = small_config();
  bad.planes_total = 2;  // fewer planes than nodes
  EXPECT_THROW(ClusterSim(bad, RemapPolicy::create("none")),
               slipflow::contract_error);
  ClusterConfig bad2 = small_config();
  bad2.stage_fraction = {0.5, 0.5, 0.5};
  EXPECT_THROW(ClusterSim(bad2, RemapPolicy::create("none")),
               slipflow::contract_error);
}
