// Equivalence and structural tests for the SIMD tile kernel path.
//
// Every KernelBackend this build/CPU supports must reproduce the scalar
// plan path to within 1e-13 per population across a sweep of odd/prime
// grid extents (chosen so runs leave every possible tile-tail length),
// geometries, component counts and collision operators — and the
// density pass must be bit-identical (pure additions in a fixed order).
// Structurally, the TileLayout must chop the plan's interior runs into
// tiles that cover every run cell exactly once, never span a run, and
// place the inner-force markers on the same cells as the plan's; the
// fused kernel's write pattern replayed over tiles (plus the plan's
// boundary links and halo pulls) must hit every fluid slot exactly
// once. Finally a migrating multi-rank run on a SIMD backend must match
// the sequential scalar reference, pinning partition invariance.

#include <gtest/gtest.h>

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "lbm/observables.hpp"
#include "lbm/plan.hpp"
#include "lbm/simulation.hpp"
#include "lbm/tile.hpp"
#include "obs/metrics.hpp"
#include "sim/parallel_lbm.hpp"
#include "transport/thread_comm.hpp"

using namespace slipflow;
using namespace slipflow::lbm;

namespace {

constexpr double kTol = 1e-13;

/// Pin the process-global backend for a scope; restores scalar (the
/// reference) on exit so test order cannot leak a SIMD backend.
struct BackendGuard {
  explicit BackendGuard(KernelBackend b) { set_kernel_backend(b); }
  ~BackendGuard() { set_kernel_backend(KernelBackend::scalar); }
};

std::vector<KernelBackend> simd_backends() {
  std::vector<KernelBackend> out;
  for (KernelBackend b : supported_kernel_backends())
    if (b != KernelBackend::scalar) out.push_back(b);
  return out;
}

// Odd/prime extents: nz in {3, 5, 7, 11} leaves interior runs of every
// short length, so every backend exercises every masked-tail width; the
// {6,5,16} case gives runs longer than one tile plus a tail.
const Extents kGrids[] = {
    {7, 5, 3}, {5, 3, 7}, {3, 4, 5}, {6, 5, 16}, {4, 7, 11},
};

struct GeoCase {
  const char* name;
  bool walls_y = false;
  bool walls_z = false;
  bool obstacle = false;
  bool moving = false;
  bool patterned = false;
};

const GeoCase kGeoCases[] = {
    {"periodic", false, false},
    {"channel", true, true},
    {"obstacles", true, true, /*obstacle=*/true},
    {"moving_walls", true, true, false, /*moving=*/true},
    {"patterned", true, true, false, false, /*patterned=*/true},
};

std::shared_ptr<const ChannelGeometry> make_geom(const GeoCase& gc,
                                                 const Extents& e) {
  std::function<bool(index_t, index_t, index_t)> obstacle;
  if (gc.obstacle) {
    // one solid cell near the middle — enough to split runs on any grid
    const index_t ox = e.nx / 2, oy = e.ny / 2, oz = e.nz / 2;
    obstacle = [ox, oy, oz](index_t gx, index_t gy, index_t gz) {
      return gx == ox && gy == oy && gz == oz;
    };
  }
  auto g = std::make_shared<ChannelGeometry>(e, obstacle, gc.walls_y,
                                             gc.walls_z);
  if (gc.moving) {
    g->set_wall_velocity(ChannelGeometry::Wall::z_low, {0.02, 0.01, 0.0});
    g->set_wall_velocity(ChannelGeometry::Wall::y_high, {-0.01, 0.0, 0.005});
  }
  return g;
}

FluidParams make_params(int ncomp, CollisionModel cm, const GeoCase& gc) {
  FluidParams p = ncomp == 1
                      ? FluidParams::single_component(/*tau=*/0.8, 1e-5)
                      : FluidParams::microchannel_defaults(0.1, 1.5, 0.05,
                                                           1.0, 2e-5);
  if (ncomp == 1 && (gc.walls_y || gc.walls_z))
    p.components[0].wall_accel = 0.15;
  if (gc.patterned) {
    p.wall_pattern = [](index_t gx, index_t gy, index_t gz) {
      return 1.0 + 0.5 * static_cast<double>((gx + gy + gz) % 2);
    };
  }
  for (auto& c : p.components) c.collision = cm;
  return p;
}

double init_density(const FluidParams& p, std::size_t c, index_t gx,
                    index_t gy, index_t gz) {
  const double base = p.components[c].init_density;
  const auto h = static_cast<double>((3 * gx + 5 * gy + 7 * gz) % 11);
  return base * (1.0 + 0.05 * h / 11.0);
}

void expect_slabs_match(const Slab& tile_s, const Slab& ref_s) {
  const Extents& e = tile_s.storage();
  for (index_t lx = 1; lx <= tile_s.nx_local(); ++lx)
    for (index_t y = 0; y < e.ny; ++y)
      for (index_t z = 0; z < e.nz; ++z) {
        const index_t cell = e.idx(lx, y, z);
        for (std::size_t c = 0; c < tile_s.num_components(); ++c) {
          for (int d = 0; d < kQ; ++d)
            ASSERT_NEAR(tile_s.f(c).at(d, cell), ref_s.f(c).at(d, cell), kTol)
                << "f c=" << c << " d=" << d << " @(" << lx << "," << y << ","
                << z << ")";
          ASSERT_NEAR(tile_s.density(c)[cell], ref_s.density(c)[cell], kTol)
              << "n c=" << c;
          const Vec3 ua = tile_s.ueq(c).at(cell);
          const Vec3 ub = ref_s.ueq(c).at(cell);
          ASSERT_NEAR(ua.x, ub.x, kTol) << "ueq.x c=" << c;
          ASSERT_NEAR(ua.y, ub.y, kTol) << "ueq.y c=" << c;
          ASSERT_NEAR(ua.z, ub.z, kTol) << "ueq.z c=" << c;
        }
        const Vec3 va = tile_s.velocity().at(cell);
        const Vec3 vb = ref_s.velocity().at(cell);
        ASSERT_NEAR(va.x, vb.x, kTol) << "u.x";
        ASSERT_NEAR(va.y, vb.y, kTol) << "u.y";
        ASSERT_NEAR(va.z, vb.z, kTol) << "u.z";
      }
}

void run_sim(Simulation& sim, const FluidParams& params, int phases) {
  const auto init = [&params](std::size_t c, index_t gx, index_t gy,
                              index_t gz) {
    return init_density(params, c, gx, gy, gz);
  };
  sim.initialize(init);
  sim.run(phases);
}

}  // namespace

// -- backend equivalence: {5 grids} x {5 geometries} x {1,2 comp} x
//    {BGK, MRT} x every supported SIMD backend vs scalar ----------------

TEST(TileKernels, BackendsMatchScalarAcrossMatrix) {
  const auto backends = simd_backends();
  ASSERT_FALSE(backends.empty()) << "no SIMD backend compiled in";
  for (const Extents& e : kGrids)
    for (const auto& gc : kGeoCases)
      for (int ncomp : {1, 2})
        for (CollisionModel cm : {CollisionModel::bgk, CollisionModel::mrt}) {
          const auto geom = make_geom(gc, e);
          const FluidParams params = make_params(ncomp, cm, gc);
          Simulation ref(geom, params);
          ref.set_kernel_path(KernelPath::plan);
          {
            BackendGuard g(KernelBackend::scalar);
            run_sim(ref, params, 10);
          }
          for (KernelBackend b : backends) {
            SCOPED_TRACE(std::string(gc.name) + " " + std::to_string(e.nx) +
                         "x" + std::to_string(e.ny) + "x" +
                         std::to_string(e.nz) + " ncomp=" +
                         std::to_string(ncomp) + " " +
                         (cm == CollisionModel::bgk ? "bgk" : "mrt") + " " +
                         to_string(b));
            Simulation tile_sim(geom, params);
            tile_sim.set_kernel_path(KernelPath::plan);
            BackendGuard g(b);
            run_sim(tile_sim, params, 10);
            expect_slabs_match(tile_sim.slab(), ref.slab());
          }
        }
}

TEST(TileKernels, DensityBitIdenticalAcrossBackends) {
  // the density pass is pure additions in a fixed order: from the same
  // populations, every backend must produce the exact same bits
  const Extents e{6, 5, 11};
  const auto geom = make_geom(kGeoCases[1], e);
  const FluidParams params = make_params(2, CollisionModel::bgk, kGeoCases[1]);
  Simulation probe(geom, params);
  probe.set_kernel_path(KernelPath::plan);
  {
    BackendGuard gs(KernelBackend::scalar);
    run_sim(probe, params, 6);
  }
  Slab& ps = probe.slab();
  std::vector<std::vector<double>> scalar_n;
  {
    BackendGuard gs(KernelBackend::scalar);
    compute_density(ps);
    for (std::size_t c = 0; c < ps.num_components(); ++c)
      scalar_n.emplace_back(ps.density(c).data().begin(),
                            ps.density(c).data().end());
  }
  for (KernelBackend b : simd_backends()) {
    SCOPED_TRACE(to_string(b));
    BackendGuard gb(b);
    compute_density(ps);
    for (std::size_t c = 0; c < ps.num_components(); ++c)
      for (index_t cell = 0; cell < ps.storage().cells(); ++cell)
        ASSERT_EQ(ps.density(c)[cell], scalar_n[c][cell])
            << "density not bit-identical, c=" << c << " cell=" << cell;
  }
}

// -- structural invariants of the TileLayout ---------------------------

namespace {

void expect_tiles_partition_runs(const StreamingPlan& plan,
                                 const TileLayout& layout) {
  // stream tiles: walking the tiles in order must walk the runs in
  // order, cell for cell, with every tile inside exactly one run
  std::size_t ri = 0;
  index_t consumed = 0;
  for (const Tile& t : layout.stream_tiles()) {
    ASSERT_GE(t.count, 1);
    ASSERT_LE(t.count, kTileWidth);
    ASSERT_LT(ri, plan.stream_interior().size());
    const auto& run = plan.stream_interior()[ri];
    ASSERT_EQ(t.cell, run.cell + consumed) << "tile not contiguous in run";
    ASSERT_EQ(t.yz, run.yz + consumed);
    ASSERT_EQ(t.gx, run.gx);
    ASSERT_LE(consumed + t.count, run.count) << "tile spans two runs";
    consumed += t.count;
    if (consumed == run.count) {
      ++ri;
      consumed = 0;
    }
  }
  ASSERT_EQ(ri, plan.stream_interior().size());
  ASSERT_EQ(consumed, 0);

  // force tiles: same partition property, plus the inner markers must
  // cover exactly the cells of the plan's inner-run slice
  ri = 0;
  consumed = 0;
  index_t cells_before_inner = 0, inner_cells = 0, total = 0;
  std::size_t ti = 0;
  for (const Tile& t : layout.force_tiles()) {
    ASSERT_GE(t.count, 1);
    ASSERT_LE(t.count, kTileWidth);
    ASSERT_LT(ri, plan.force_interior().size());
    const auto& run = plan.force_interior()[ri];
    ASSERT_EQ(t.cell, run.cell + consumed);
    ASSERT_LE(consumed + t.count, run.count);
    consumed += t.count;
    if (ti < layout.force_inner_begin()) cells_before_inner += t.count;
    if (ti >= layout.force_inner_begin() && ti < layout.force_inner_end())
      inner_cells += t.count;
    total += t.count;
    if (consumed == run.count) {
      ++ri;
      consumed = 0;
    }
    ++ti;
  }
  ASSERT_EQ(ri, plan.force_interior().size());

  index_t run_cells_before = 0, run_inner = 0;
  for (std::size_t i = 0; i < plan.force_interior().size(); ++i) {
    if (i < plan.force_interior_inner_begin())
      run_cells_before += plan.force_interior()[i].count;
    if (i >= plan.force_interior_inner_begin() &&
        i < plan.force_interior_inner_end())
      run_inner += plan.force_interior()[i].count;
  }
  EXPECT_EQ(cells_before_inner, run_cells_before);
  EXPECT_EQ(inner_cells, run_inner);
  EXPECT_EQ(layout.stream_cells(), [&] {
    index_t n = 0;
    for (const auto& r : plan.stream_interior()) n += r.count;
    return n;
  }());
  EXPECT_EQ(layout.force_cells(), total);
}

// Replay the fused kernel's write pattern with tiles in place of runs
// and count how many times each (direction, cell) slot of f would be
// written — every fluid slot must come out exactly 1.
void expect_full_coverage_tiles(const ChannelGeometry& geom, index_t x_begin,
                                index_t nx_local) {
  const StreamingPlan plan(geom, x_begin, nx_local);
  const TileLayout layout(plan);
  const Extents& e = plan.storage();
  std::vector<int> writes(static_cast<std::size_t>(kQ) *
                              static_cast<std::size_t>(e.cells()),
                          0);
  const auto slot = [&](int d, index_t cell) -> int& {
    return writes[static_cast<std::size_t>(d) *
                      static_cast<std::size_t>(e.cells()) +
                  static_cast<std::size_t>(cell)];
  };
  for (const Tile& t : layout.stream_tiles())
    for (index_t i = 0; i < t.count; ++i)
      for (int d = 0; d < kQ; ++d)
        slot(d, t.cell + i + plan.dir_offset(d)) += 1;
  for (const auto& b : plan.stream_boundary()) {
    slot(0, b.cell) += 1;
    for (std::uint32_t l = b.link_begin; l < b.link_end; ++l)
      slot(plan.links()[l].dest_dir, plan.links()[l].dest) += 1;
  }
  for (const auto& h : plan.halo_pulls()) slot(h.dir, h.dest) += 1;

  std::vector<char> solid(static_cast<std::size_t>(e.cells()), 0);
  for (index_t s : plan.solids()) solid[static_cast<std::size_t>(s)] = 1;

  for (index_t lx = 0; lx < e.nx; ++lx)
    for (index_t y = 0; y < e.ny; ++y)
      for (index_t z = 0; z < e.nz; ++z) {
        const index_t cell = e.idx(lx, y, z);
        const bool owned = lx >= 1 && lx <= nx_local;
        for (int d = 0; d < kQ; ++d) {
          const int expected =
              owned && !solid[static_cast<std::size_t>(cell)] ? 1 : 0;
          ASSERT_EQ(slot(d, cell), expected)
              << "d=" << d << " @(" << lx << "," << y << "," << z << ")";
        }
      }
}

}  // namespace

TEST(TileStructure, TilesPartitionRunsExactly) {
  for (const Extents& e : kGrids)
    for (const auto& gc : kGeoCases) {
      SCOPED_TRACE(std::string(gc.name) + " " + std::to_string(e.nx) + "x" +
                   std::to_string(e.ny) + "x" + std::to_string(e.nz));
      const auto geom = make_geom(gc, e);
      for (index_t nx_local : {e.nx, index_t{2}, index_t{1}}) {
        const StreamingPlan plan(*geom, 0, nx_local);
        expect_tiles_partition_runs(plan, TileLayout(plan));
      }
    }
}

TEST(TileStructure, EveryFluidSlotWrittenExactlyOnceViaTiles) {
  for (const Extents& e : kGrids)
    for (const auto& gc : kGeoCases) {
      SCOPED_TRACE(std::string(gc.name) + " " + std::to_string(e.nx) + "x" +
                   std::to_string(e.ny) + "x" + std::to_string(e.nz));
      const auto geom = make_geom(gc, e);
      expect_full_coverage_tiles(*geom, 0, e.nx);         // full domain
      expect_full_coverage_tiles(*geom, 1, e.nx - 2);     // mid slab
      expect_full_coverage_tiles(*geom, e.nx - 1, 1);     // 1-plane slab
    }
}

// -- partition invariance: migrating multi-rank run on a SIMD backend --

TEST(TileKernels, ParallelSimdRunMatchesSequentialScalar) {
  const auto backends = simd_backends();
  ASSERT_FALSE(backends.empty());
  const KernelBackend backend = backends.back();  // widest supported
  const Extents grid{18, 6, 4};

  sim::RunnerConfig cfg;
  cfg.global = grid;
  cfg.fluid = FluidParams::microchannel_defaults(0.05, 1.5, 0.03, 1.0, 2e-5);
  cfg.kernels = KernelPath::plan;
  cfg.policy = "filtered";
  cfg.remap_interval = 4;
  cfg.balance.window = 3;
  cfg.balance.min_transfer_points = 24;  // one yz-plane of this grid
  cfg.slowdown = {0.0, 3.0, 0.0};
  obs::MetricsRegistry reg(3);
  cfg.metrics = &reg;
  const int phases = 40;

  Simulation seq(grid, cfg.fluid);
  seq.set_kernel_path(KernelPath::plan);
  {
    BackendGuard g(KernelBackend::scalar);
    seq.initialize_uniform();
    seq.run(phases);
  }
  std::vector<std::vector<double>> ref_w, ref_a, ref_u;
  for (index_t gx = 0; gx < grid.nx; ++gx) {
    ref_w.push_back(density_profile_y(seq.slab(), 0, gx, 2));
    ref_a.push_back(density_profile_y(seq.slab(), 1, gx, 2));
    ref_u.push_back(velocity_profile_y(seq.slab(), gx, 2));
  }

  std::vector<std::vector<double>> par_w(grid.nx), par_a(grid.nx),
      par_u(grid.nx);
  long long migrated = 0;
  std::mutex mu;
  BackendGuard g(backend);  // all rank-threads share the process global
  transport::run_ranks(3, [&](transport::Communicator& comm) {
    sim::ParallelLbm run(cfg, comm);
    run.initialize_uniform();
    run.run(phases);
    auto stats = run.gather_stats();
    for (index_t gx = 0; gx < grid.nx; ++gx) {
      auto w = run.gather_density_profile_y(0, gx, 2);
      auto a = run.gather_density_profile_y(1, gx, 2);
      auto u = run.gather_velocity_profile_y(gx, 2);
      if (comm.rank() == 0) {
        std::lock_guard<std::mutex> lk(mu);
        const auto i = static_cast<std::size_t>(gx);
        par_w[i] = std::move(w);
        par_a[i] = std::move(a);
        par_u[i] = std::move(u);
      }
    }
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      for (const auto& s : stats) migrated += s.planes_sent;
    }
  });

  EXPECT_GT(migrated, 0);  // the run really crossed plan+tile rebuilds
  for (std::size_t gx = 0; gx < par_w.size(); ++gx) {
    ASSERT_EQ(par_w[gx].size(), ref_w[gx].size());
    for (std::size_t j = 0; j < par_w[gx].size(); ++j) {
      EXPECT_NEAR(par_w[gx][j], ref_w[gx][j], kTol) << gx << "," << j;
      EXPECT_NEAR(par_a[gx][j], ref_a[gx][j], kTol) << gx << "," << j;
      EXPECT_NEAR(par_u[gx][j], ref_u[gx][j], kTol) << gx << "," << j;
    }
  }
}
