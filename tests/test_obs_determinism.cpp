// Determinism of the observability layer.
//
// 1. Virtual cluster: two identical runs (fixed RNG seed in the load
//    generator) must export byte-identical metrics CSV and Chrome trace
//    JSON — the registry records *virtual* seconds, so no wall time can
//    leak in.
// 2. Thread-parallel runner: with obs::CountingClock injected per rank,
//    every "measured" stage time is a pure function of the call
//    sequence, so two runs — including the remapping decisions their
//    load predictors take — export identical metrics.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/scenario.hpp"
#include "obs/clock.hpp"
#include "sim/parallel_lbm.hpp"
#include "transport/thread_comm.hpp"

using namespace slipflow;

namespace {

struct Export {
  std::string csv;
  std::string trace;
};

Export run_cluster_once() {
  cluster::ClusterConfig cfg = cluster::paper::base_config(/*nodes=*/6);
  cfg.planes_total = 60;
  cluster::ClusterSim sim(cfg, balance::RemapPolicy::create("filtered"));
  cluster::add_fixed_slow_nodes(sim, {2});
  cluster::add_transient_spikes(sim, /*horizon=*/60.0, /*spike_seconds=*/4.0,
                                cluster::paper::kDisturbancePeriod,
                                /*seed=*/1234);
  obs::MetricsRegistry reg(cfg.nodes);
  sim.attach_metrics(&reg);
  const auto res = sim.run(80);
  EXPECT_GT(res.makespan, 0.0);

  Export out;
  std::ostringstream csv, trace;
  reg.write_csv(csv);
  write_chrome_trace(reg, trace, "determinism");
  out.csv = csv.str();
  out.trace = trace.str();
  return out;
}

Export run_thread_ranks_once() {
  const int ranks = 3;
  sim::RunnerConfig cfg;
  cfg.global = lbm::Extents{18, 6, 4};
  cfg.fluid = lbm::FluidParams::microchannel_defaults();
  cfg.policy = "filtered";
  cfg.remap_interval = 4;
  cfg.balance.window = 3;
  cfg.balance.min_transfer_points = 24;
  // Rank 1 "runs" 4x slower according to its injected clock — a purely
  // virtual slowdown the predictor sees identically on every run.
  cfg.clock_factory = [](int rank) -> std::shared_ptr<obs::Clock> {
    return std::make_shared<obs::CountingClock>(rank == 1 ? 4e-3 : 1e-3);
  };
  obs::MetricsRegistry reg(ranks);
  cfg.metrics = &reg;

  transport::run_ranks(ranks, [&](transport::Communicator& comm) {
    sim::ParallelLbm run(cfg, comm);
    run.initialize_uniform();
    run.run(40);
  });

  Export out;
  std::ostringstream csv, trace;
  reg.write_csv(csv);
  write_chrome_trace(reg, trace, "determinism");
  out.csv = csv.str();
  out.trace = trace.str();
  return out;
}

}  // namespace

TEST(ObsDeterminism, VirtualClusterExportsAreByteIdentical) {
  const Export a = run_cluster_once();
  const Export b = run_cluster_once();
  EXPECT_FALSE(a.csv.empty());
  EXPECT_EQ(a.csv, b.csv);
  EXPECT_EQ(a.trace, b.trace);
}

TEST(ObsDeterminism, VirtualClusterRecordsVirtualNotWallTime) {
  const Export a = run_cluster_once();
  // 80 phases on 6 nodes of the paper-calibrated model take tens of
  // virtual seconds but milliseconds of wall time: if wall time leaked
  // into the registry the time/compute totals would be ~1000x smaller.
  std::istringstream is(a.csv);
  std::string line;
  double compute0 = -1.0;
  const std::string key = "counter,0,time/compute,";
  while (std::getline(is, line))
    if (line.rfind(key, 0) == 0) compute0 = std::stod(line.substr(key.size()));
  // virtual seconds of real magnitude, far beyond any wall-time reading
  // a millisecond-scale model evaluation could produce
  EXPECT_GT(compute0, 1.0);
}

TEST(ObsDeterminism, ThreadRunnerWithInjectedClocksIsDeterministic) {
  const Export a = run_thread_ranks_once();
  const Export b = run_thread_ranks_once();
  EXPECT_EQ(a.csv, b.csv);
  EXPECT_EQ(a.trace, b.trace);
}

TEST(ObsDeterminism, ClusterRemapCounterMatchesNodeProfile) {
  // Regression: record_span() already folds each span into its
  // "time/<name>" counter, so the runner must not add the duration a
  // second time — the registry has to agree exactly with the
  // NodeProfile accumulators fig09 used to report.
  cluster::ClusterConfig cfg = cluster::paper::base_config(/*nodes=*/6);
  cfg.planes_total = 60;
  cluster::ClusterSim sim(cfg, balance::RemapPolicy::create("filtered"));
  cluster::add_fixed_slow_nodes(sim, {2});
  obs::MetricsRegistry reg(cfg.nodes);
  sim.attach_metrics(&reg);
  const auto res = sim.run(80);
  for (int i = 0; i < cfg.nodes; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    EXPECT_DOUBLE_EQ(reg.counter(i, "time/remap"), res.profile[ui].remap);
    EXPECT_DOUBLE_EQ(reg.counter(i, "time/compute"), res.profile[ui].compute);
    EXPECT_DOUBLE_EQ(reg.counter(i, "time/comm"), res.profile[ui].comm);
  }
}

TEST(ObsDeterminism, ThreadRunnerRemapCounterMatchesRankStats) {
  const int ranks = 3;
  sim::RunnerConfig cfg;
  cfg.global = lbm::Extents{18, 6, 4};
  cfg.fluid = lbm::FluidParams::microchannel_defaults();
  cfg.policy = "filtered";
  cfg.remap_interval = 4;
  cfg.balance.window = 3;
  cfg.balance.min_transfer_points = 24;
  cfg.clock_factory = [](int rank) -> std::shared_ptr<obs::Clock> {
    return std::make_shared<obs::CountingClock>(rank == 1 ? 4e-3 : 1e-3);
  };
  obs::MetricsRegistry reg(ranks);
  cfg.metrics = &reg;

  std::vector<sim::RankStats> stats(static_cast<std::size_t>(ranks));
  transport::run_ranks(ranks, [&](transport::Communicator& comm) {
    sim::ParallelLbm run(cfg, comm);
    run.initialize_uniform();
    run.run(40);
    stats[static_cast<std::size_t>(comm.rank())] = run.stats();
  });
  double remap_total = 0.0;
  for (int r = 0; r < ranks; ++r) {
    const auto ur = static_cast<std::size_t>(r);
    EXPECT_DOUBLE_EQ(reg.counter(r, "time/remap"), stats[ur].remap_seconds);
    EXPECT_DOUBLE_EQ(reg.counter(r, "time/comm"), stats[ur].comm_seconds);
    remap_total += stats[ur].remap_seconds;
  }
  EXPECT_GT(remap_total, 0.0);  // the remap path actually ran
}

TEST(ObsDeterminism, InjectedSlowClockDrivesDeterministicMigration) {
  // The virtual 4x-slow rank must shed planes — and since the decision
  // inputs are clock-derived, the amount is identical on every run.
  const Export a = run_thread_ranks_once();
  std::istringstream is(a.csv);
  std::string line;
  double sent_rank1 = -1.0;
  while (std::getline(is, line)) {
    if (line.rfind("counter,1,planes_sent,", 0) == 0)
      sent_rank1 = std::stod(line.substr(std::string("counter,1,planes_sent,").size()));
  }
  EXPECT_GT(sent_rank1, 0.0);
}
