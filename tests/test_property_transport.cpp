// Transport stress tests: randomized message storms with verifiable
// content, exercising FIFO ordering, tag isolation and collective
// interleaving under concurrency — over both the thread and the real
// multi-process socket backend.

#include <gtest/gtest.h>

#include <map>

#include "transport_backends.hpp"
#include "util/rng.hpp"

using namespace slipflow::transport;
using namespace slipflow::transport::backend_testing;
using slipflow::util::Rng;

namespace {

struct Send {
  int src, dst, tag;
  double payload;
};

/// Deterministic schedule every rank can reconstruct: who sends what to
/// whom, in per-sender order.
std::vector<Send> make_schedule(std::uint64_t seed, int ranks, int count) {
  Rng rng(seed);
  std::vector<Send> s;
  s.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Send m;
    m.src = static_cast<int>(rng.below(static_cast<std::uint64_t>(ranks)));
    m.dst = static_cast<int>(rng.below(static_cast<std::uint64_t>(ranks)));
    m.tag = 100 + static_cast<int>(rng.below(4));
    m.payload = rng.uniform(0.0, 1e6);
    s.push_back(m);
  }
  return s;
}

}  // namespace

class TransportStorm : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(ConcurrentBackends, TransportStorm,
                         ::testing::Values(Backend::kThread, Backend::kSocket,
                                           Backend::kShm),
                         [](const auto& pinfo) {
                           return backend_name(pinfo.param);
                         });

TEST_P(TransportStorm, RandomTrafficDeliversInFifoOrderPerChannel) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const int ranks = 5;
    const auto schedule = make_schedule(seed, ranks, 400);
    run_backend(GetParam(), ranks, [&](Communicator& c) {
      // send my messages in schedule order
      for (const Send& m : schedule) {
        if (m.src != c.rank()) continue;
        c.send(m.dst, m.tag, std::vector<double>{m.payload});
      }
      // receive everything addressed to me, matching per (src, tag) FIFO
      for (const Send& m : schedule) {
        if (m.dst != c.rank()) continue;
        const auto got = c.recv(m.src, m.tag);
        ASSERT_EQ(got.size(), 1u);
        ASSERT_DOUBLE_EQ(got[0], m.payload)
            << "src=" << m.src << " tag=" << m.tag;
      }
    });
  }
}

TEST_P(TransportStorm, LargePayloadsSurviveIntact) {
  // 100k doubles = 800 KB per message — far beyond any kernel socket
  // buffer, so the socket backend must buffer and stream.
  run_backend(GetParam(), 3, [](Communicator& c) {
    const int peer = (c.rank() + 1) % 3;
    std::vector<double> big(100000);
    for (std::size_t i = 0; i < big.size(); ++i)
      big[i] = c.rank() * 1e6 + static_cast<double>(i);
    c.send(peer, 1, big);
    const auto got = c.recv((c.rank() + 2) % 3, 1);
    ASSERT_EQ(got.size(), big.size());
    const double base = ((c.rank() + 2) % 3) * 1e6;
    for (std::size_t i = 0; i < got.size(); i += 997)
      ASSERT_DOUBLE_EQ(got[i], base + static_cast<double>(i));
  });
}

TEST_P(TransportStorm, CollectivesInterleavedWithPointToPoint) {
  run_backend(GetParam(), 4, [](Communicator& c) {
    for (int round = 0; round < 25; ++round) {
      const int peer = (c.rank() + 1) % 4;
      c.send(peer, 7, std::vector<double>{static_cast<double>(round)});
      const double mine = c.rank() + 10.0 * round;
      const auto all = c.allgather(std::span<const double>(&mine, 1));
      for (int r = 0; r < 4; ++r)
        ASSERT_DOUBLE_EQ(all[static_cast<std::size_t>(r)], r + 10.0 * round);
      const auto got = c.recv((c.rank() + 3) % 4, 7);
      ASSERT_DOUBLE_EQ(got[0], round);
      ASSERT_DOUBLE_EQ(c.allreduce_sum(1.0), 4.0);
    }
  });
}

TEST_P(TransportStorm, ManyRanksBarrierHammer) {
  run_backend(GetParam(), 8, [](Communicator& c) {
    for (int i = 0; i < 200; ++i) c.barrier();
    const double v = static_cast<double>(c.rank());
    ASSERT_DOUBLE_EQ(c.allreduce_max(v), 7.0);
  });
}

TEST_P(TransportStorm, RepeatedSessionsAreIndependent) {
  const int sessions = GetParam() == Backend::kSocket ? 3 : 10;
  for (int session = 0; session < sessions; ++session) {
    run_backend(GetParam(), 3, [session](Communicator& c) {
      const double v = session * 100.0 + c.rank();
      const auto all = c.allgather(std::span<const double>(&v, 1));
      for (int r = 0; r < 3; ++r)
        ASSERT_DOUBLE_EQ(all[static_cast<std::size_t>(r)],
                         session * 100.0 + r);
    });
  }
}
