// Kernel-level tests: BGK collision invariants, streaming + bounce-back
// conservation, density recomputation, and the force/velocity pass.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "lbm/kernels.hpp"
#include "lbm/simulation.hpp"
#include "lbm/stepper.hpp"

using namespace slipflow::lbm;

namespace {

struct Box {
  std::shared_ptr<const ChannelGeometry> geom;
  std::unique_ptr<Slab> slab;
  PeriodicSelfExchanger halo;
};

Box make_box(FluidParams p, Extents e = {6, 5, 4}, bool wy = true,
             bool wz = true) {
  Box b;
  b.geom = std::make_shared<const ChannelGeometry>(e, nullptr, wy, wz);
  b.slab = std::make_unique<Slab>(b.geom, std::move(p), 0, e.nx);
  return b;
}

double total_f_mass(const Slab& s, std::size_t c) {
  const Extents& st = s.storage();
  double m = 0.0;
  for (index_t lx = 1; lx <= s.nx_local(); ++lx)
    for (index_t y = 0; y < st.ny; ++y)
      for (index_t z = 0; z < st.nz; ++z)
        for (int d = 0; d < kQ; ++d) m += s.f(c).at(d, st.idx(lx, y, z));
  return m;
}

double total_fpost_mass(const Slab& s, std::size_t c) {
  const Extents& st = s.storage();
  double m = 0.0;
  for (index_t lx = 1; lx <= s.nx_local(); ++lx)
    for (index_t y = 0; y < st.ny; ++y)
      for (index_t z = 0; z < st.nz; ++z)
        for (int d = 0; d < kQ; ++d) m += s.f_post(c).at(d, st.idx(lx, y, z));
  return m;
}

}  // namespace

TEST(Collide, ConservesMassPerCell) {
  auto b = make_box(FluidParams::single_component());
  b.slab->initialize_uniform();
  // give a non-trivial velocity so collision actually redistributes
  const index_t cell = b.slab->storage().idx(2, 2, 2);
  b.slab->ueq(0).set(cell, Vec3{0.05, -0.02, 0.01});
  collide(*b.slab);
  double before = 0.0, after = 0.0;
  for (int d = 0; d < kQ; ++d) {
    before += b.slab->f(0).at(d, cell);
    after += b.slab->f_post(0).at(d, cell);
  }
  EXPECT_NEAR(after, before, 1e-13);
}

TEST(Collide, FixedPointAtEquilibrium) {
  auto b = make_box(FluidParams::single_component());
  b.slab->initialize_uniform();  // f = f_eq(n, 0), ueq = 0
  collide(*b.slab);
  const index_t cell = b.slab->storage().idx(3, 1, 1);
  for (int d = 0; d < kQ; ++d)
    EXPECT_NEAR(b.slab->f_post(0).at(d, cell), b.slab->f(0).at(d, cell),
                1e-15);
}

TEST(Collide, RelaxesTowardEquilibrium) {
  FluidParams p = FluidParams::single_component(/*tau=*/2.0);
  auto b = make_box(std::move(p));
  b.slab->initialize_uniform();
  const index_t cell = b.slab->storage().idx(2, 2, 1);
  // perturb one population; with tau=2 half the deviation must survive
  const double feq = kWeight[5] * 1.0;
  b.slab->f(0).at(5, cell) = feq + 0.1;
  collide(*b.slab);
  EXPECT_NEAR(b.slab->f_post(0).at(5, cell), feq + 0.05, 1e-12);
}

TEST(Collide, Tau1ProjectsExactlyOntoEquilibrium) {
  auto b = make_box(FluidParams::single_component(/*tau=*/1.0));
  b.slab->initialize_uniform();
  const index_t cell = b.slab->storage().idx(1, 1, 1);
  b.slab->f(0).at(7, cell) += 0.2;  // any perturbation
  // keep stored n consistent with the perturbed f so feq has that mass
  b.slab->density(0)[cell] += 0.2;
  collide(*b.slab);
  for (int d = 0; d < kQ; ++d)
    EXPECT_NEAR(b.slab->f_post(0).at(d, cell),
                equilibrium(d, b.slab->density(0)[cell], Vec3{}), 1e-13);
}

TEST(Stream, InteriorShiftMovesPopulations) {
  auto b = make_box(FluidParams::single_component());
  b.slab->initialize_uniform();
  collide(*b.slab);
  // tag direction +y at one interior cell, then stream
  const Extents& st = b.slab->storage();
  int dy = -1;
  for (int d = 0; d < kQ; ++d)
    if (kCx[d] == 0 && kCy[d] == 1 && kCz[d] == 0) dy = d;
  ASSERT_GE(dy, 0);
  b.slab->f_post(0).at(dy, st.idx(3, 1, 2)) = 42.0;
  b.halo.exchange_f(*b.slab);
  stream(*b.slab);
  EXPECT_DOUBLE_EQ(b.slab->f(0).at(dy, st.idx(3, 2, 2)), 42.0);
}

TEST(Stream, PeriodicWrapAcrossX) {
  auto b = make_box(FluidParams::single_component());
  b.slab->initialize_uniform();
  collide(*b.slab);
  const Extents& st = b.slab->storage();
  int dx = -1;
  for (int d = 0; d < kQ; ++d)
    if (kCx[d] == 1 && kCy[d] == 0 && kCz[d] == 0) dx = d;
  ASSERT_GE(dx, 0);
  // tag at the last owned plane (lx=6, gx=5); after wrap it must appear
  // at gx=0 (lx=1)
  b.slab->f_post(0).at(dx, st.idx(6, 2, 2)) = 7.0;
  b.halo.exchange_f(*b.slab);
  stream(*b.slab);
  EXPECT_DOUBLE_EQ(b.slab->f(0).at(dx, st.idx(1, 2, 2)), 7.0);
}

TEST(Stream, BounceBackReflectsAtWall) {
  auto b = make_box(FluidParams::single_component());
  b.slab->initialize_uniform();
  collide(*b.slab);
  const Extents& st = b.slab->storage();
  int dy = -1;
  for (int d = 0; d < kQ; ++d)
    if (kCx[d] == 0 && kCy[d] == 1 && kCz[d] == 0) dy = d;
  const int dy_neg = kOpposite[dy];
  // population leaving through the y=0 wall ...
  b.slab->f_post(0).at(dy_neg, st.idx(3, 0, 2)) = 5.0;
  b.halo.exchange_f(*b.slab);
  stream(*b.slab);
  // ... comes back reversed at the same cell
  EXPECT_DOUBLE_EQ(b.slab->f(0).at(dy, st.idx(3, 0, 2)), 5.0);
}

TEST(Stream, ConservesMassWithWalls) {
  auto b = make_box(FluidParams::microchannel_defaults());
  b.slab->initialize_uniform();
  collide(*b.slab);
  const double before0 = total_fpost_mass(*b.slab, 0);
  const double before1 = total_fpost_mass(*b.slab, 1);
  b.halo.exchange_f(*b.slab);
  stream(*b.slab);
  EXPECT_NEAR(total_f_mass(*b.slab, 0), before0, 1e-12);
  EXPECT_NEAR(total_f_mass(*b.slab, 1), before1, 1e-12);
}

TEST(Density, MatchesSumOfPopulations) {
  auto b = make_box(FluidParams::single_component());
  b.slab->initialize_uniform();
  const index_t cell = b.slab->storage().idx(2, 3, 1);
  b.slab->f(0).at(4, cell) += 0.25;
  compute_density(*b.slab);
  EXPECT_NEAR(b.slab->density(0)[cell], 1.25, 1e-14);
}

TEST(Forces, GravityShiftsEquilibriumVelocity) {
  FluidParams p = FluidParams::single_component(1.0, /*gravity=*/1e-3);
  auto b = make_box(std::move(p));
  b.slab->initialize_uniform();
  prime(*b.slab, b.halo);
  const index_t cell = b.slab->storage().idx(3, 2, 2);
  // at rest, ueq = tau * F / rho = tau * g = 1e-3
  EXPECT_NEAR(b.slab->ueq(0).at(cell).x, 1e-3, 1e-12);
  EXPECT_NEAR(b.slab->ueq(0).at(cell).y, 0.0, 1e-12);
}

TEST(Forces, MacroscopicVelocityHalfForceCorrection) {
  FluidParams p = FluidParams::single_component(1.0, 2e-3);
  auto b = make_box(std::move(p));
  b.slab->initialize_uniform();
  prime(*b.slab, b.halo);
  const index_t cell = b.slab->storage().idx(3, 2, 2);
  // rho u = sum f c (=0 at rest) + F/2 -> u = g/2
  EXPECT_NEAR(b.slab->velocity().at(cell).x, 1e-3, 1e-12);
}

TEST(Forces, WallForcePushesWaterInward) {
  // isolate the wall force: no S-C coupling, no gravity
  FluidParams p = FluidParams::microchannel_defaults(/*wall_accel=*/0.1, 2.5,
                                                     0.03, /*coupling_g=*/0.0);
  p.gravity_x = 0.0;
  auto b = make_box(std::move(p), Extents{4, 12, 12});
  b.slab->initialize_uniform();
  prime(*b.slab, b.halo);
  const Extents& st = b.slab->storage();
  // water (component 0) near the lower y wall is pushed toward +y
  EXPECT_GT(b.slab->ueq(0).at(st.idx(2, 0, 6)).y, 0.0);
  // air (component 1) feels no wall force
  EXPECT_NEAR(b.slab->ueq(1).at(st.idx(2, 0, 6)).y, 0.0, 1e-12);
}

TEST(Forces, ShanChenPullsAirTowardHydrophobicWall) {
  // with coupling on, the missing-neighbor asymmetry at the wall pushes
  // the trace air toward the wall (repelled from the water bulk) — the
  // first step of the paper's slip mechanism.
  FluidParams p = FluidParams::microchannel_defaults(0.0);
  p.gravity_x = 0.0;
  auto b = make_box(std::move(p), Extents{4, 12, 12});
  b.slab->initialize_uniform();
  prime(*b.slab, b.halo);
  const Extents& st = b.slab->storage();
  EXPECT_LT(b.slab->ueq(1).at(st.idx(2, 0, 6)).y, 0.0);
}

TEST(Forces, ShanChenRepulsionPushesComponentsApart) {
  // water on the left half, air on the right half: at the interface the
  // S-C force should push water left (-x is impossible here: use y split)
  FluidParams p = FluidParams::microchannel_defaults(0.0, 3.0, 0.03, 1.0, 0.0);
  auto b = make_box(std::move(p), Extents{4, 10, 4});
  b.slab->initialize([](std::size_t c, index_t, index_t gy, index_t) {
    const bool left = gy < 5;
    if (c == 0) return left ? 1.0 : 0.05;
    return left ? 0.05 : 1.0;
  });
  prime(*b.slab, b.halo);
  const Extents& st = b.slab->storage();
  // water at the interface (y=4) is pushed away from the air side (-y)
  EXPECT_LT(b.slab->ueq(0).at(st.idx(2, 4, 2)).y, 0.0);
  // air at y=5 is pushed away from the water side (+y)
  EXPECT_GT(b.slab->ueq(1).at(st.idx(2, 5, 2)).y, 0.0);
}

TEST(Forces, TotalDensityIsSumOfComponents) {
  auto b = make_box(FluidParams::microchannel_defaults());
  b.slab->initialize_uniform();
  prime(*b.slab, b.halo);
  const index_t cell = b.slab->storage().idx(2, 2, 2);
  EXPECT_NEAR(b.slab->total_density()[cell], 1.0 + 0.03, 1e-13);
}

TEST(StepPhase, ConservesComponentMasses) {
  auto b = make_box(FluidParams::microchannel_defaults());
  b.slab->initialize_uniform();
  prime(*b.slab, b.halo);
  const double m0 = owned_mass(*b.slab, 0);
  const double m1 = owned_mass(*b.slab, 1);
  for (int i = 0; i < 20; ++i) step_phase(*b.slab, b.halo);
  EXPECT_NEAR(owned_mass(*b.slab, 0), m0, 1e-9 * m0);
  EXPECT_NEAR(owned_mass(*b.slab, 1), m1, 1e-9 * std::max(m1, 1.0));
}

TEST(StepPhase, RemainsFiniteUnderDefaults) {
  auto b = make_box(FluidParams::microchannel_defaults());
  b.slab->initialize_uniform();
  prime(*b.slab, b.halo);
  for (int i = 0; i < 50; ++i) step_phase(*b.slab, b.halo);
  const Extents& st = b.slab->storage();
  for (index_t lx = 1; lx <= b.slab->nx_local(); ++lx)
    for (index_t y = 0; y < st.ny; ++y)
      for (index_t z = 0; z < st.nz; ++z) {
        const index_t cell = st.idx(lx, y, z);
        EXPECT_TRUE(std::isfinite(b.slab->density(0)[cell]));
        EXPECT_GE(b.slab->density(0)[cell], 0.0);
        EXPECT_TRUE(std::isfinite(b.slab->velocity().at(cell).x));
      }
}
