// Stepper-level tests: the periodic self-exchanger's halo contents, the
// priming pass, and the phase sequence contract.

#include <gtest/gtest.h>

#include <memory>

#include "lbm/observables.hpp"
#include "lbm/stepper.hpp"

using namespace slipflow::lbm;

namespace {

std::shared_ptr<const ChannelGeometry> geom(Extents e = {8, 4, 3}) {
  return std::make_shared<const ChannelGeometry>(e);
}

}  // namespace

TEST(SelfExchanger, RequiresFullDomainSlab) {
  Slab partial(geom(), FluidParams::single_component(), 0, 4);
  partial.initialize_uniform();
  PeriodicSelfExchanger halo;
  EXPECT_THROW(halo.exchange_f(partial), slipflow::contract_error);
  EXPECT_THROW(halo.exchange_density(partial), slipflow::contract_error);
}

TEST(SelfExchanger, FHaloWrapsBoundaryPopulations) {
  Slab s(geom(), FluidParams::single_component(), 0, 8);
  s.initialize([](std::size_t, index_t gx, index_t, index_t) {
    return 1.0 + 0.1 * static_cast<double>(gx);
  });
  collide(s);
  PeriodicSelfExchanger halo;
  halo.exchange_f(s);
  const index_t pc = s.plane_cells();
  // left halo (storage x = 0) carries the rightmost owned plane's
  // right-going populations (global wrap)
  for (int d : kRightGoing)
    for (index_t i = 0; i < pc; ++i)
      EXPECT_DOUBLE_EQ(s.f_post(0).dir_plane(d, 0)[i],
                       s.f_post(0).dir_plane(d, 8)[i]);
  for (int d : kLeftGoing)
    for (index_t i = 0; i < pc; ++i)
      EXPECT_DOUBLE_EQ(s.f_post(0).dir_plane(d, 9)[i],
                       s.f_post(0).dir_plane(d, 1)[i]);
}

TEST(SelfExchanger, DensityHaloWraps) {
  Slab s(geom(), FluidParams::microchannel_defaults(), 0, 8);
  s.initialize([](std::size_t c, index_t gx, index_t, index_t) {
    return 0.5 + 0.2 * static_cast<double>(c) +
           0.01 * static_cast<double>(gx);
  });
  PeriodicSelfExchanger halo;
  halo.exchange_density(s);
  const index_t pc = s.plane_cells();
  for (std::size_t c = 0; c < 2; ++c) {
    for (index_t i = 0; i < pc; ++i) {
      EXPECT_DOUBLE_EQ(s.density(c).plane(0)[i], s.density(c).plane(8)[i]);
      EXPECT_DOUBLE_EQ(s.density(c).plane(9)[i], s.density(c).plane(1)[i]);
    }
  }
}

TEST(Prime, PopulatesForcesAndVelocity) {
  Slab s(geom(), FluidParams::single_component(1.0, 1e-3), 0, 8);
  s.initialize_uniform();
  PeriodicSelfExchanger halo;
  prime(s, halo);
  // after priming, ueq carries the gravity shift everywhere owned
  const Extents& st = s.storage();
  for (index_t lx = 1; lx <= 8; ++lx)
    EXPECT_NEAR(s.ueq(0).at(st.idx(lx, 1, 1)).x, 1e-3, 1e-12);
}

TEST(StepPhase, VelocityFeedsNextCollision) {
  // the paper's line-17-to-line-4 data flow: after one phase with
  // gravity, the next collision's equilibrium is built from a moving
  // state, increasing momentum monotonically during spin-up
  Slab s(geom(Extents{8, 9, 4}), FluidParams::single_component(1.0, 1e-4),
         0, 8);
  s.initialize_uniform();
  PeriodicSelfExchanger halo;
  prime(s, halo);
  double prev = owned_momentum_x(s);
  for (int i = 0; i < 5; ++i) {
    step_phase(s, halo);
    const double cur = owned_momentum_x(s);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(StepPhase, IdenticalSequencesProduceIdenticalStates) {
  auto run_one = [] {
    Slab s(geom(), FluidParams::microchannel_defaults(), 0, 8);
    s.initialize_uniform();
    PeriodicSelfExchanger halo;
    prime(s, halo);
    for (int i = 0; i < 15; ++i) step_phase(s, halo);
    return s;
  };
  const Slab a = run_one();
  const Slab b = run_one();
  const Extents& st = a.storage();
  for (std::size_t c = 0; c < 2; ++c)
    for (int d = 0; d < kQ; ++d)
      for (index_t cell = st.plane_cells(); cell < 9 * st.plane_cells();
           ++cell)
        ASSERT_EQ(a.f(c).at(d, cell), b.f(c).at(d, cell));
}
