// Tests for the ISA/FMA binary audit (tools/isa_audit): instruction
// classification, the policy manifest, and the audit pass itself, driven
// by synthetic objdump listings with planted violations — proof that
// each rule can actually fire, so a green run on the real objects means
// something.

#include <gtest/gtest.h>

#include <sstream>

#include "isa_audit/isa_audit.hpp"
#include "util/require.hpp"

using namespace slipflow;
using namespace slipflow::tools;

namespace {

IsaPolicy kernel_policy() {
  std::istringstream conf(R"(# test policy
default max=baseline fma=allow
tu lbm/kernels_tile_avx512.cpp.o  max=avx512 fma=forbid
tu lbm/kernels_tile_avx2.cpp.o    max=avx2   fma=forbid
tu lbm/*     max=baseline fma=forbid
tu sim/*     max=baseline fma=forbid
tu balance/* max=baseline fma=forbid
)");
  return IsaPolicy::parse(conf);
}

TuAudit audit_text(const std::string& tu, const std::string& listing,
                   AuditMode mode = AuditMode::strict) {
  const IsaPolicy policy = kernel_policy();
  std::istringstream in(listing);
  return audit_listing(tu, in, policy, mode);
}

}  // namespace

// ---------------------------------------------------------------------------
// instruction classification

TEST(Classify, BaselineScalarAndSse) {
  for (const auto& [m, ops] :
       {std::pair<const char*, const char*>{"mov", "%rax,%rbx"},
        {"lea", "0x8(%rsp),%rdi"},
        {"addsd", "%xmm0,%xmm1"},
        {"mulpd", "%xmm2,%xmm3"},
        {"movdqu", "(%rdi),%xmm0"},
        {"endbr64", ""},
        {"cpuid", ""},
        {"xgetbv", ""},
        {"nopw", "0x0(%rax,%rax,1)"}}) {
    const InsnClass c = classify_instruction(m, ops);
    EXPECT_EQ(c.level, IsaLevel::baseline) << m;
    EXPECT_FALSE(c.fma) << m;
  }
}

TEST(Classify, VexEncodedIsAvxClass) {
  EXPECT_EQ(classify_instruction("vaddpd", "%ymm0,%ymm1,%ymm2").level,
            IsaLevel::avx2);
  // VEX-128: v-prefix with xmm registers still faults on pre-AVX CPUs
  EXPECT_EQ(classify_instruction("vmulsd", "%xmm0,%xmm1,%xmm2").level,
            IsaLevel::avx2);
  EXPECT_EQ(classify_instruction("vzeroupper", "").level, IsaLevel::avx2);
  // ymm use without v-prefix (hypothetical) still counts as AVX class
  EXPECT_EQ(classify_instruction("movapd", "%ymm0,%ymm1").level,
            IsaLevel::avx2);
}

TEST(Classify, Avx512ByRegisterAndMnemonic) {
  EXPECT_EQ(classify_instruction("vaddpd", "%zmm0,%zmm1,%zmm2").level,
            IsaLevel::avx512);
  // opmask registers
  EXPECT_EQ(classify_instruction("vmovupd", "%zmm0,(%rdi){%k1}").level,
            IsaLevel::avx512);
  EXPECT_EQ(classify_instruction("kmovw", "%eax,%k1").level, IsaLevel::avx512);
  // EVEX extended register file: xmm16+ exists only under AVX-512
  EXPECT_EQ(classify_instruction("vmulpd", "%xmm17,%xmm18,%xmm19").level,
            IsaLevel::avx512);
  EXPECT_EQ(classify_instruction("vaddsd", "%ymm21,%ymm22,%ymm23").level,
            IsaLevel::avx512);
  // EVEX-only mnemonic with low registers
  EXPECT_EQ(classify_instruction("vpternlogd", "$0xf8,%xmm0,%xmm1,%xmm2").level,
            IsaLevel::avx512);
  // ...but xmm0..15 on a VEX mnemonic stays AVX class
  EXPECT_EQ(classify_instruction("vmulpd", "%xmm15,%xmm1,%xmm2").level,
            IsaLevel::avx2);
}

TEST(Classify, FmaFlagAcrossWidths) {
  for (const auto& [m, ops] :
       {std::pair<const char*, const char*>{"vfmadd231pd", "%ymm0,%ymm1,%ymm2"},
        {"vfmadd132sd", "%xmm0,%xmm1,%xmm2"},
        {"vfnmadd213ps", "%ymm3,%ymm4,%ymm5"},
        {"vfmsub231pd", "%zmm0,%zmm1,%zmm2"}}) {
    const InsnClass c = classify_instruction(m, ops);
    EXPECT_TRUE(c.fma) << m;
    EXPECT_GE(c.level, IsaLevel::avx2) << m;
  }
  EXPECT_EQ(classify_instruction("vfmsub231pd", "%zmm0,%zmm1,%zmm2").level,
            IsaLevel::avx512);
  EXPECT_FALSE(classify_instruction("vaddpd", "%ymm0,%ymm1,%ymm2").fma);
}

TEST(Classify, SystemVMnemonicsAreNotVector) {
  EXPECT_EQ(classify_instruction("verr", "%ax").level, IsaLevel::baseline);
  EXPECT_EQ(classify_instruction("vmcall", "").level, IsaLevel::baseline);
}

// ---------------------------------------------------------------------------
// listing parsing

TEST(ListingParse, PlainAndRawByteForms) {
  auto insn = parse_listing_line("    1a2b:\tvaddpd %ymm0,%ymm1,%ymm2");
  ASSERT_TRUE(insn.has_value());
  EXPECT_EQ(insn->address, "1a2b");
  EXPECT_EQ(insn->mnemonic, "vaddpd");
  EXPECT_EQ(insn->operands, "%ymm0,%ymm1,%ymm2");

  // with the raw-bytes column
  insn = parse_listing_line(
      "  4005d0:\t62 f1 f5 48 58 d0    \tvaddpd %zmm0,%zmm1,%zmm2");
  ASSERT_TRUE(insn.has_value());
  EXPECT_EQ(insn->mnemonic, "vaddpd");

  // raw-mode continuation line: bytes only, not an instruction
  EXPECT_FALSE(parse_listing_line("  4005d6:\t62 f1 f5 48").has_value());
}

TEST(ListingParse, SkipsNonInstructionLines) {
  EXPECT_FALSE(parse_listing_line("").has_value());
  EXPECT_FALSE(parse_listing_line("Disassembly of section .text:").has_value());
  EXPECT_FALSE(
      parse_listing_line("0000000000001140 <_ZN8slipflow3fooEv>:").has_value());
  EXPECT_FALSE(parse_listing_line("\t...").has_value());
  EXPECT_FALSE(parse_listing_line("  1a2c:\t(bad)").has_value());
}

TEST(ListingParse, StripsPrefixesAndCommentTrailers) {
  auto insn =
      parse_listing_line("  12:\tlock cmpxchg %rcx,0x10(%rdi)");
  ASSERT_TRUE(insn.has_value());
  EXPECT_EQ(insn->mnemonic, "cmpxchg");

  insn = parse_listing_line("  18:\tcallq  1140 <foo> # 1140 <foo>");
  ASSERT_TRUE(insn.has_value());
  EXPECT_EQ(insn->mnemonic, "callq");
}

// ---------------------------------------------------------------------------
// policy manifest

TEST(Policy, FirstMatchWinsAndFallback) {
  const IsaPolicy p = kernel_policy();
  EXPECT_EQ(p.rule_for("lbm/kernels_tile_avx512.cpp.o").max_level,
            IsaLevel::avx512);
  EXPECT_EQ(p.rule_for("lbm/kernels_tile_avx2.cpp.o").max_level,
            IsaLevel::avx2);
  // generic lbm rule: baseline, fma forbidden
  const TuRule& lbm = p.rule_for("lbm/kernels_plan.cpp.o");
  EXPECT_EQ(lbm.max_level, IsaLevel::baseline);
  EXPECT_FALSE(lbm.allow_fma);
  // outside the contract targets: fallback
  const TuRule& other = p.rule_for("transport/socket_comm.cpp.o");
  EXPECT_EQ(other.max_level, IsaLevel::baseline);
  EXPECT_TRUE(other.allow_fma);
}

TEST(Policy, RejectsMalformedManifests) {
  const auto parse = [](const char* text) {
    std::istringstream in(text);
    return IsaPolicy::parse(in);
  };
  EXPECT_THROW(parse("tu lbm/* max=baseline fma=forbid\n"), contract_error)
      << "missing default line must be rejected";
  EXPECT_THROW(parse("default max=mmx fma=allow\n"), contract_error);
  EXPECT_THROW(parse("default max=baseline fma=maybe\n"), contract_error);
  EXPECT_THROW(parse("default max=baseline\n"), contract_error);
  EXPECT_THROW(parse("frob lbm/* max=baseline fma=allow\n"), contract_error);
  EXPECT_NO_THROW(parse("# comment\n\ndefault max=avx512 fma=allow\n"));
}

TEST(Policy, GlobMatch) {
  EXPECT_TRUE(glob_match("lbm/*", "lbm/kernels.cpp.o"));
  EXPECT_TRUE(glob_match("*avx512*", "lbm/kernels_tile_avx512.cpp.o"));
  EXPECT_FALSE(glob_match("lbm/*", "sim/worker.cpp.o"));
  EXPECT_TRUE(glob_match("a?c", "abc"));
  EXPECT_FALSE(glob_match("a?c", "ac"));
  EXPECT_TRUE(glob_match("*", ""));
}

// ---------------------------------------------------------------------------
// the audit itself — planted violations must fire

namespace {
const char* kFmaListing =
    "kernels_plan.cpp.o:     file format elf64-x86-64\n"
    "\n"
    "Disassembly of section .text:\n"
    "\n"
    "0000000000000000 <_ZN8slipflow3lbm6kernelEv>:\n"
    "   0:\tendbr64\n"
    "   4:\tmovsd  (%rdi),%xmm0\n"
    "   8:\tvfmadd231pd %ymm1,%ymm2,%ymm0\n"
    "   d:\tretq\n";
}  // namespace

TEST(Audit, PlantedFmaInKernelTuFails) {
  const TuAudit a = audit_text("lbm/kernels_plan.cpp.o", kFmaListing);
  EXPECT_EQ(a.instructions, 4u);
  EXPECT_EQ(a.fma_count, 1u);
  ASSERT_EQ(a.violation_count, 1u)  // one record, both rules in the reason
      << "planted vfmadd231pd must be caught";
  EXPECT_EQ(a.violations[0].mnemonic, "vfmadd231pd");
  EXPECT_NE(a.violations[0].reason.find("FMA"), std::string::npos);
  EXPECT_NE(a.violations[0].reason.find("exceeds TU ceiling"),
            std::string::npos)
      << "the reason must also name the ISA-ceiling breach";
}

TEST(Audit, FmaRuleSurvivesContractOnlyMode) {
  // --mode=contract-only (the -march=native build): ISA ceilings are
  // waived but the FMA contract still holds in kernel TUs.
  const TuAudit a =
      audit_text("lbm/kernels_plan.cpp.o", kFmaListing, AuditMode::contract_only);
  EXPECT_EQ(a.violation_count, 1u);
  EXPECT_NE(a.violations[0].reason.find("FMA"), std::string::npos);
}

TEST(Audit, FmaAllowedOutsideContractTargets) {
  const TuAudit strict = audit_text("transport/socket_comm.cpp.o", kFmaListing);
  // fallback allows FMA but still caps ISA at baseline in strict mode
  EXPECT_EQ(strict.violation_count, 1u);
  EXPECT_NE(strict.violations[0].reason.find("exceeds TU ceiling"),
            std::string::npos);
  const TuAudit native = audit_text("transport/socket_comm.cpp.o", kFmaListing,
                                    AuditMode::contract_only);
  EXPECT_EQ(native.violation_count, 0u);
}

TEST(Audit, Avx512LeakIntoFallbackTuFails) {
  // The COMDAT hazard: an AVX-512 instruction appearing in the autovec
  // fallback TU would fault on baseline hardware before dispatch runs.
  const std::string listing =
      "   0:\tvaddpd %zmm0,%zmm1,%zmm2\n"
      "   6:\tretq\n";
  const TuAudit a = audit_text("lbm/kernels_tile_autovec.cpp.o", listing);
  ASSERT_EQ(a.violation_count, 1u);
  EXPECT_NE(a.violations[0].reason.find("avx512"), std::string::npos);
  // the same instruction is legal in its own TU
  EXPECT_EQ(audit_text("lbm/kernels_tile_avx512.cpp.o", listing)
                .violation_count,
            0u);
  // and an AVX2 instruction is legal in both intrinsic TUs
  const std::string avx2 = "   0:\tvaddpd %ymm0,%ymm1,%ymm2\n";
  EXPECT_EQ(audit_text("lbm/kernels_tile_avx2.cpp.o", avx2).violation_count,
            0u);
  EXPECT_EQ(audit_text("lbm/kernels_tile_avx512.cpp.o", avx2).violation_count,
            0u);
}

TEST(Audit, CleanBaselineListingPasses) {
  const std::string listing =
      "   0:\tendbr64\n"
      "   4:\tmovsd  (%rdi),%xmm0\n"
      "   8:\taddsd  %xmm1,%xmm0\n"
      "   c:\tmulpd  %xmm2,%xmm0\n"
      "  10:\tretq\n";
  const TuAudit a = audit_text("lbm/kernels.cpp.o", listing);
  EXPECT_EQ(a.instructions, 5u);
  EXPECT_EQ(a.violation_count, 0u);
  EXPECT_EQ(a.level_counts[static_cast<int>(IsaLevel::baseline)], 5u);
}

TEST(Audit, ViolationDetailIsCappedButCounted) {
  std::string listing;
  for (int i = 0; i < 50; ++i)
    listing += "   0:\tvfmadd231pd %ymm1,%ymm2,%ymm0\n";
  const TuAudit a = audit_text("lbm/kernels_plan.cpp.o", listing);
  EXPECT_EQ(a.violation_count, 50u);
  EXPECT_EQ(a.violations.size(), kMaxViolationDetail);
  EXPECT_TRUE(a.truncated);
}

TEST(Audit, JsonReportCarriesCountsAndViolations) {
  const TuAudit bad = audit_text("lbm/kernels_plan.cpp.o", kFmaListing);
  const TuAudit good =
      audit_text("lbm/kernels.cpp.o", "   0:\taddsd %xmm1,%xmm0\n");
  const std::string json =
      audit_report_json({bad, good}, AuditMode::strict, "tools/isa_policy.conf");
  EXPECT_NE(json.find("\"mode\": \"strict\""), std::string::npos);
  EXPECT_NE(json.find("\"violation_count\": 1"), std::string::npos);
  EXPECT_NE(json.find("vfmadd231pd"), std::string::npos);
  EXPECT_NE(json.find("lbm/kernels.cpp.o"), std::string::npos);
  // deterministic output: same inputs, same bytes
  EXPECT_EQ(json, audit_report_json({bad, good}, AuditMode::strict,
                                    "tools/isa_policy.conf"));
}
