// Warm-start equivalence (the warm-state cache's correctness argument):
// a checkpoint taken at the equilibration boundary by one configuration
// must seed ANY other configuration of the same physics, and the
// resumed run's physics observables must be byte-identical to a
// straight-through run — across rank counts and across the socket and
// shared-memory transports.
//
// This is the composition of two repo invariants, pinned end-to-end
// with real forked workers:
//   * checkpoints are restorable on any decomposition
//     (tests/test_checkpoint_migration.cpp proves the state level);
//   * physics observables are bit-identical across ranks / transports /
//     migration histories (the ordered mass fold + per-cell profiles).

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "serve/job_spec.hpp"
#include "transport/launcher.hpp"

#ifndef SLIPFLOW_WORKER_EXE
#error "SLIPFLOW_WORKER_EXE must point at the slipflow_worker binary"
#endif

using namespace slipflow;
using serve::JobSpec;

namespace {

constexpr long long kPhases = 24;
constexpr long long kWarmPhases = 12;

std::string temp_dir(const std::string& name) {
  const std::string d = ::testing::TempDir() + "slipflow_warm_" + name + "." +
                        std::to_string(::getpid());
  std::filesystem::create_directories(d);
  return d;
}

JobSpec base_spec() {
  JobSpec s;
  s.nx = 16;
  s.ny = 6;
  s.nz = 4;
  s.phases = kPhases;
  s.ranks = 2;
  s.wall_clock_budget = 60.0;
  return s;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << "missing " << path;
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

std::string launch(const JobSpec& spec, const serve::JobPaths& paths) {
  const transport::LaunchConfig lc =
      serve::make_launch_config(spec, SLIPFLOW_WORKER_EXE, paths);
  const transport::LaunchResult res = transport::launch_workers(lc);
  EXPECT_TRUE(res.ok) << res.diagnostic;
  return read_file(paths.observables_out);
}

}  // namespace

TEST(WarmStart, ResumeMatchesStraightThroughAcrossRanksAndTransports) {
  const std::string dir = temp_dir("equiv");

  // Straight-through reference, 2 ranks over sockets.
  const JobSpec ref_spec = base_spec();
  serve::JobPaths ref_paths;
  ref_paths.observables_out = dir + "/obs_ref.txt";
  const std::string reference = launch(ref_spec, ref_paths);
  ASSERT_FALSE(reference.empty());

  // Producer: same run, additionally publishing the phase-12 warm
  // checkpoint. Saving the checkpoint must not move a byte.
  JobSpec producer = ref_spec;
  producer.warm_phases = kWarmPhases;
  serve::JobPaths prod_paths;
  prod_paths.observables_out = dir + "/obs_producer.txt";
  prod_paths.warm_checkpoint_out = dir + "/warm.ckpt";
  EXPECT_EQ(launch(producer, prod_paths), reference);
  ASSERT_TRUE(std::filesystem::exists(prod_paths.warm_checkpoint_out));

  // Resume the remainder from the 2-rank-socket warm state on every
  // (ranks, transport) combination: --phases is the ABSOLUTE target, so
  // each run executes phases 13..24 only.
  for (const int ranks : {1, 2, 4}) {
    for (const std::string transport : {"socket", "shm"}) {
      JobSpec resumed = ref_spec;
      resumed.ranks = ranks;
      resumed.transport = transport;
      serve::JobPaths paths;
      paths.observables_out = dir + "/obs_r" + std::to_string(ranks) + "_" +
                              transport + ".txt";
      paths.load_checkpoint = prod_paths.warm_checkpoint_out;
      EXPECT_EQ(launch(resumed, paths), reference)
          << "resumed run diverged: ranks=" << ranks
          << " transport=" << transport;
    }
  }
}
