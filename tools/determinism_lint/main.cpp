/// \file main.cpp
/// CLI for the determinism lint.
///
///   determinism_lint [--root=.] [--json=report.json]
///                    [--include-allowlisted] [dirs...]
///   determinism_lint --file=snippet.cpp        (fixture mode)
///
/// With no positional dirs the default scope is the four directories
/// whose code can perturb observables: src/lbm, src/sim, src/transport,
/// src/balance. Scans *.hpp, *.cpp, *.inl. Allowlisted findings (sites
/// annotated `// det-lint: allow(<rule>): reason` or collectives
/// annotated `det-lint: rank-ordered`) are reported for the audit trail
/// but do not fail the run.
///
/// Exit status: 0 clean, 1 unallowlisted findings, 2 usage/run error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "determinism_lint/determinism_lint.hpp"
#include "util/options.hpp"
#include "util/require.hpp"

namespace fs = std::filesystem;
using namespace slipflow;
using namespace slipflow::tools;

namespace {

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  SLIPFLOW_REQUIRE_MSG(in.good(), "cannot open '" << p.string() << "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".inl" || ext == ".h" ||
         ext == ".cc";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options opts = util::Options::parse(argc, argv);
  const std::string root = opts.get("root", std::string("."));
  const std::string file = opts.get("file", std::string());
  const std::string json_path = opts.get("json", std::string());
  const bool show_allowlisted = opts.get("include-allowlisted", false);
  for (const std::string& k : opts.unused_keys()) {
    std::fprintf(stderr, "determinism_lint: unknown option --%s\n", k.c_str());
    return 2;
  }

  try {
    std::vector<fs::path> files;
    if (!file.empty()) {
      files.emplace_back(file);
    } else {
      std::vector<std::string> dirs = opts.positional();
      if (dirs.empty())
        dirs = {"src/lbm", "src/sim", "src/transport", "src/balance"};
      for (const std::string& d : dirs) {
        const fs::path dir = fs::path(root) / d;
        SLIPFLOW_REQUIRE_MSG(fs::is_directory(dir),
                             "no such directory: " << dir.string());
        for (const auto& entry : fs::recursive_directory_iterator(dir))
          if (entry.is_regular_file() && lintable(entry.path()))
            files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
    }

    std::vector<LintFinding> findings;
    for (const fs::path& p : files) {
      const std::vector<LintFinding> fs_ = lint_source(
          fs::path(p).lexically_normal().generic_string(), read_file(p));
      findings.insert(findings.end(), fs_.begin(), fs_.end());
    }

    std::size_t allowlisted = 0;
    for (const LintFinding& f : findings) {
      if (f.allowlisted) {
        ++allowlisted;
        if (show_allowlisted)
          std::printf("allowlisted %s:%d [%s] %s\n", f.file.c_str(), f.line,
                      f.rule.c_str(), f.excerpt.c_str());
        continue;
      }
      std::fprintf(stderr, "%s:%d: [%s] %s\n    %s\n", f.file.c_str(), f.line,
                   f.rule.c_str(), f.message.c_str(), f.excerpt.c_str());
    }

    if (!json_path.empty()) {
      std::ofstream out(json_path);
      SLIPFLOW_REQUIRE_MSG(out.good(),
                           "cannot write json '" << json_path << "'");
      out << lint_report_json(findings);
    }

    const std::size_t violations = count_violations(findings);
    std::printf(
        "determinism_lint: %zu file(s), %zu finding(s) "
        "(%zu allowlisted, %zu violation(s))\n",
        files.size(), findings.size(), allowlisted, violations);
    return violations == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "determinism_lint: %s\n", e.what());
    return 2;
  }
}
