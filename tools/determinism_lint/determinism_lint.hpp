#pragma once
/// \file determinism_lint.hpp
/// Source-level checker for constructs that break the repo's
/// bit-reproducibility contract (sequential ≡ parallel for any rank ×
/// thread × backend combination, byte-identical observables across
/// transports). It is a deliberately simple lexical analyzer — no AST —
/// tuned to the four construct families that have historically broken
/// reproducibility in parallel LBM codes:
///
///   unordered-iteration   iterating std::unordered_map/unordered_set
///                         (hash order is seed/pointer dependent) where
///                         the order can feed floating-point
///                         accumulation or message emission
///   pointer-order         ordering keyed on pointer values
///                         (std::map<T*,..>, std::set<T*>,
///                         std::less<T*>) — allocation-address
///                         dependent, differs run to run under ASLR
///   wall-clock            rand()/std::random_device/time()/
///                         chrono ::now() reads outside the injectable
///                         clock seam (obs/clock.hpp) — decisions made
///                         on measured time diverge across runs
///   unordered-collective  allreduce/allgather definitions that do not
///                         carry the `det-lint: rank-ordered`
///                         annotation asserting their fold/concat order
///                         is a function of rank, not completion order
///
/// Audited sites are annotated in source:
///   // det-lint: allow(<rule>): <reason>     (same line or line above)
///   // det-lint: rank-ordered ...            (within 5 lines above a
///                                             collective definition)
/// Allowlisted findings are still reported (with allowlisted=true) so
/// the audit trail stays visible in the JSON report.

#include <string>
#include <string_view>
#include <vector>

namespace slipflow::tools {

struct LintFinding {
  std::string file;
  int line = 0;           // 1-based
  std::string rule;       // kebab-case rule id, e.g. "wall-clock"
  std::string message;
  std::string excerpt;    // the offending source line, trimmed
  bool allowlisted = false;
};

/// Lint one file's contents. `path` is used only for reporting.
std::vector<LintFinding> lint_source(std::string_view path,
                                     std::string_view content);

/// Deterministic JSON report (CI artifact).
std::string lint_report_json(const std::vector<LintFinding>& findings);

/// Convenience: number of findings with allowlisted == false.
std::size_t count_violations(const std::vector<LintFinding>& findings);

}  // namespace slipflow::tools
