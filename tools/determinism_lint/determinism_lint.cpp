/// \file determinism_lint.cpp
/// See determinism_lint.hpp for the rule catalogue.

#include "determinism_lint/determinism_lint.hpp"

#include <cctype>
#include <unordered_set>

#include "util/json.hpp"

namespace slipflow::tools {

namespace {

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return std::string(s);
}

/// One physical source line split into a code part (string-literal
/// contents blanked, comments removed) and the comment text (where the
/// det-lint annotations live).
struct SplitLine {
  std::string code;
  std::string comment;
};

std::vector<SplitLine> split_lines(std::string_view content) {
  std::vector<SplitLine> lines;
  SplitLine cur;
  bool in_block = false, in_str = false, in_chr = false, in_line_comment = false;
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      lines.push_back(std::move(cur));
      cur = SplitLine{};
      in_str = in_chr = in_line_comment = false;  // strings don't span lines
      continue;
    }
    if (in_line_comment) {
      cur.comment.push_back(c);
      continue;
    }
    if (in_block) {
      if (c == '*' && next == '/') {
        in_block = false;
        ++i;
      } else {
        cur.comment.push_back(c);
      }
      continue;
    }
    if (in_str) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_str = false;
        cur.code.push_back('"');
        continue;
      }
      cur.code.push_back(' ');  // blank literal contents
      continue;
    }
    if (in_chr) {
      if (c == '\\')
        ++i;
      else if (c == '\'')
        in_chr = false;
      cur.code.push_back(' ');
      continue;
    }
    if (c == '/' && next == '/') {
      in_line_comment = true;
      ++i;
      continue;
    }
    if (c == '/' && next == '*') {
      in_block = true;
      cur.code.push_back(' ');
      ++i;
      continue;
    }
    if (c == '"') {
      in_str = true;
      cur.code.push_back('"');
      continue;
    }
    if (c == '\'' && (i == 0 || !is_ident(content[i - 1]))) {
      // character literal (not a digit separator like 1'000)
      in_chr = true;
      cur.code.push_back(' ');
      continue;
    }
    cur.code.push_back(c);
  }
  lines.push_back(std::move(cur));
  return lines;
}

/// Position of identifier token `tok` in `code` starting at `from`,
/// with identifier boundaries on both sides. npos if absent.
std::size_t find_token(std::string_view code, std::string_view tok,
                       std::size_t from = 0) {
  std::size_t pos = from;
  while ((pos = code.find(tok, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_ident(code[pos - 1]);
    const std::size_t end = pos + tok.size();
    const bool right_ok = end >= code.size() || !is_ident(code[end]);
    if (left_ok && right_ok) return pos;
    ++pos;
  }
  return std::string_view::npos;
}

bool has_token(std::string_view code, std::string_view tok) {
  return find_token(code, tok) != std::string_view::npos;
}

/// Token immediately followed by '(' (ignoring spaces).
bool has_call(std::string_view code, std::string_view tok) {
  std::size_t pos = 0;
  while ((pos = find_token(code, tok, pos)) != std::string_view::npos) {
    std::size_t j = pos + tok.size();
    while (j < code.size() && code[j] == ' ') ++j;
    if (j < code.size() && code[j] == '(') return true;
    ++pos;
  }
  return false;
}

/// Match the first top-level template-argument of `std::map<HERE, ...>`
/// style text starting at the '<'. Returns the trimmed argument or ""
/// when brackets don't close on this line.
std::string first_template_arg(std::string_view code, std::size_t lt) {
  int depth = 0;
  std::size_t start = lt + 1;
  for (std::size_t i = lt; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '<') ++depth;
    else if (c == '>') {
      --depth;
      if (depth == 0) return trim(code.substr(start, i - start));
    } else if (c == ',' && depth == 1) {
      return trim(code.substr(start, i - start));
    }
  }
  return "";
}

/// Identifier declared right after a closing template bracket:
/// "std::unordered_map<K, V> name;" -> "name". Empty if none.
std::string declared_name_after(std::string_view code, std::size_t lt) {
  int depth = 0;
  std::size_t i = lt;
  for (; i < code.size(); ++i) {
    if (code[i] == '<') ++depth;
    else if (code[i] == '>') {
      --depth;
      if (depth == 0) {
        ++i;
        break;
      }
    }
  }
  if (depth != 0) return "";
  while (i < code.size() &&
         (code[i] == ' ' || code[i] == '&' || code[i] == '*'))
    ++i;
  std::size_t start = i;
  while (i < code.size() && is_ident(code[i])) ++i;
  return std::string(code.substr(start, i - start));
}

/// All identifiers appearing in `code`.
std::vector<std::pair<std::size_t, std::string>> identifiers(
    std::string_view code) {
  std::vector<std::pair<std::size_t, std::string>> out;
  std::size_t i = 0;
  while (i < code.size()) {
    if (is_ident(code[i]) &&
        !std::isdigit(static_cast<unsigned char>(code[i]))) {
      std::size_t start = i;
      while (i < code.size() && is_ident(code[i])) ++i;
      out.emplace_back(start, std::string(code.substr(start, i - start)));
    } else {
      ++i;
    }
  }
  return out;
}

/// The range-expression of a range-for on this line, or "" if none.
std::string range_for_expr(std::string_view code) {
  std::size_t pos = find_token(code, "for");
  if (pos == std::string_view::npos) return "";
  std::size_t open = code.find('(', pos);
  if (open == std::string_view::npos) return "";
  int depth = 0;
  std::size_t colon = std::string_view::npos, close = std::string_view::npos;
  for (std::size_t i = open; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '(' || c == '[' || c == '{') ++depth;
    else if (c == ')' || c == ']' || c == '}') {
      --depth;
      if (depth == 0 && c == ')') {
        close = i;
        break;
      }
    } else if (c == ':' && depth == 1 &&
               (i == 0 || code[i - 1] != ':') &&
               (i + 1 >= code.size() || code[i + 1] != ':')) {
      if (colon == std::string_view::npos) colon = i;
    }
  }
  if (colon == std::string_view::npos || close == std::string_view::npos ||
      close <= colon)
    return "";
  return trim(code.substr(colon + 1, close - colon - 1));
}

struct AnnotationIndex {
  // per-line sets of allowed rules, and rank-ordered markers
  std::vector<std::vector<std::string>> allows;
  std::vector<bool> rank_ordered;
};

AnnotationIndex index_annotations(const std::vector<SplitLine>& lines) {
  AnnotationIndex idx;
  idx.allows.resize(lines.size());
  idx.rank_ordered.assign(lines.size(), false);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& c = lines[i].comment;
    std::size_t pos = c.find("det-lint:");
    if (pos == std::string::npos) continue;
    const std::string_view rest = std::string_view(c).substr(pos + 9);
    if (rest.find("rank-ordered") != std::string_view::npos)
      idx.rank_ordered[i] = true;
    std::size_t a = rest.find("allow(");
    if (a != std::string_view::npos) {
      const std::size_t close = rest.find(')', a);
      if (close != std::string_view::npos)
        idx.allows[i].push_back(
            trim(rest.substr(a + 6, close - a - 6)));
    }
  }
  return idx;
}

bool allowed(const AnnotationIndex& idx, std::size_t line,
             const std::string& rule) {
  // annotation on the same line or within the 4 lines above — wide
  // enough for a multi-line annotation comment over a multi-line
  // expression, narrow enough that one annotation can't blanket a file
  const std::size_t lo = line >= 4 ? line - 4 : 0;
  for (std::size_t l = lo; l <= line; ++l)
    for (const std::string& r : idx.allows[l])
      if (r == rule) return true;
  return false;
}

bool rank_ordered_near(const AnnotationIndex& idx, std::size_t line) {
  // within the 5 lines above or on the definition line itself
  const std::size_t lo = line >= 5 ? line - 5 : 0;
  for (std::size_t l = lo; l <= line; ++l)
    if (idx.rank_ordered[l]) return true;
  return false;
}

}  // namespace

std::vector<LintFinding> lint_source(std::string_view path,
                                     std::string_view content) {
  const std::vector<SplitLine> lines = split_lines(content);
  const AnnotationIndex ann = index_annotations(lines);
  std::vector<LintFinding> findings;

  const auto emit = [&](std::size_t line_idx, const char* rule,
                        std::string message) {
    LintFinding f;
    f.file = std::string(path);
    f.line = static_cast<int>(line_idx) + 1;
    f.rule = rule;
    f.message = std::move(message);
    f.excerpt = trim(lines[line_idx].code);
    f.allowlisted = allowed(ann, line_idx, f.rule);
    findings.push_back(std::move(f));
  };

  // Pass 1: names declared as unordered containers in this file.
  std::unordered_set<std::string> unordered_names;
  for (const SplitLine& l : lines) {
    for (const char* tok : {"unordered_map", "unordered_set",
                            "unordered_multimap", "unordered_multiset"}) {
      const std::size_t pos = find_token(l.code, tok);
      if (pos == std::string_view::npos) continue;
      const std::size_t lt = l.code.find('<', pos);
      if (lt == std::string::npos) continue;
      const std::string name = declared_name_after(l.code, lt);
      if (!name.empty() && name != "const") unordered_names.insert(name);
    }
  }

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    if (code.empty()) continue;

    // --- unordered-iteration -------------------------------------------
    {
      const std::string expr = range_for_expr(code);
      bool fire = false;
      if (!expr.empty()) {
        if (expr.find("unordered_") != std::string::npos) fire = true;
        for (const auto& [pos, id] : identifiers(expr))
          if (unordered_names.count(id)) fire = true;
      }
      if (!fire) {
        // iterator-style loops: <unordered name>.begin()/.cbegin()
        for (const std::string& name : unordered_names) {
          std::size_t pos = 0;
          while ((pos = find_token(code, name, pos)) !=
                 std::string_view::npos) {
            const std::string_view after =
                std::string_view(code).substr(pos + name.size());
            if (after.substr(0, 7) == ".begin(" ||
                after.substr(0, 8) == ".cbegin(")
              fire = true;
            ++pos;
          }
        }
      }
      if (fire)
        emit(i, "unordered-iteration",
             "iteration over an unordered container: hash order is not "
             "deterministic across runs/ranks and must not feed FP "
             "accumulation or message emission");
    }

    // --- pointer-order --------------------------------------------------
    {
      bool fire = false;
      std::string what;
      for (const char* tok :
           {"map", "set", "multimap", "multiset", "priority_queue", "less",
            "greater"}) {
        std::size_t pos = 0;
        while ((pos = find_token(code, tok, pos)) != std::string_view::npos) {
          const std::size_t lt = pos + std::string_view(tok).size();
          if (lt < code.size() && code[lt] == '<') {
            const std::string arg = first_template_arg(code, lt);
            if (!arg.empty() && arg.back() == '*') {
              fire = true;
              what = std::string(tok) + "<" + arg + ">";
            }
          }
          ++pos;
        }
      }
      if (fire)
        emit(i, "pointer-order",
             "ordering keyed on pointer values (" + what +
                 "): allocation addresses differ across runs under ASLR, "
                 "so iteration order is not reproducible");
    }

    // --- wall-clock ------------------------------------------------------
    {
      const char* hit = nullptr;
      for (const char* sub :
           {"steady_clock::now", "system_clock::now",
            "high_resolution_clock::now"})
        if (code.find(sub) != std::string::npos) hit = sub;
      for (const char* tok : {"random_device", "gettimeofday",
                              "clock_gettime", "timespec_get", "drand48",
                              "rand_r"})
        if (!hit && has_token(code, tok)) hit = tok;
      for (const char* fn : {"rand", "srand", "time"})
        if (!hit && has_call(code, fn)) hit = fn;
      if (hit)
        emit(i, "wall-clock",
             std::string("nondeterministic source '") + hit +
                 "' outside the injectable clock seam (obs/clock.hpp): "
                 "decisions based on it diverge across runs");
    }

    // --- unordered-collective -------------------------------------------
    {
      // Join up to 3 lines so a definition whose brace opens on the
      // next line is still seen; only flag matches that start on line i.
      std::string joined = code;
      for (std::size_t j = i + 1; j < lines.size() && j < i + 3; ++j) {
        joined += ' ';
        joined += lines[j].code;
      }
      for (const auto& [pos, id] : identifiers(code)) {
        if (id.find("allgather") == std::string::npos &&
            id.find("allreduce") == std::string::npos)
          continue;
        // member calls are the caller's side, not the contract site
        std::size_t b = pos;
        while (b > 0 && joined[b - 1] == ' ') --b;
        if (b > 0 && joined[b - 1] == '.') continue;
        if (b > 1 && joined[b - 2] == '-' && joined[b - 1] == '>') continue;
        // definition = name ( params ) [const/override/noexcept] {
        std::size_t j = pos + id.size();
        while (j < joined.size() && joined[j] == ' ') ++j;
        if (j >= joined.size() || joined[j] != '(') continue;
        int depth = 0;
        std::size_t close = std::string::npos;
        for (std::size_t k = j; k < joined.size(); ++k) {
          if (joined[k] == '(') ++depth;
          else if (joined[k] == ')') {
            if (--depth == 0) {
              close = k;
              break;
            }
          } else if (joined[k] == ';') {
            break;
          }
        }
        if (close == std::string::npos) continue;
        std::string_view tail = std::string_view(joined).substr(close + 1);
        bool is_def = false;
        for (;;) {
          while (!tail.empty() && tail.front() == ' ') tail.remove_prefix(1);
          if (tail.empty()) break;
          if (tail.front() == '{') {
            is_def = true;
            break;
          }
          bool skipped = false;
          for (const std::string_view kw :
               {std::string_view("const"), std::string_view("override"),
                std::string_view("noexcept"), std::string_view("final")}) {
            if (tail.substr(0, kw.size()) == kw &&
                (tail.size() == kw.size() || !is_ident(tail[kw.size()]))) {
              tail.remove_prefix(kw.size());
              skipped = true;
              break;
            }
          }
          if (!skipped) break;
        }
        if (is_def && !rank_ordered_near(ann, i))
          emit(i, "unordered-collective",
               "collective '" + id +
                   "' definition lacks a 'det-lint: rank-ordered' "
                   "annotation asserting its fold/concatenation order is a "
                   "function of rank, not completion order");
      }
    }
  }
  return findings;
}

std::size_t count_violations(const std::vector<LintFinding>& findings) {
  std::size_t n = 0;
  for (const LintFinding& f : findings)
    if (!f.allowlisted) ++n;
  return n;
}

std::string lint_report_json(const std::vector<LintFinding>& findings) {
  using util::json_number;
  using util::json_string;
  std::string out = "{\n";
  out += "  \"finding_count\": " +
         json_number(static_cast<long long>(findings.size())) + ",\n";
  out += "  \"violation_count\": " +
         json_number(static_cast<long long>(count_violations(findings))) +
         ",\n";
  out += "  \"findings\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const LintFinding& f = findings[i];
    out += "    {\"file\": " + json_string(f.file) +
           ", \"line\": " + json_number(static_cast<long long>(f.line)) +
           ", \"rule\": " + json_string(f.rule) +
           ", \"allowlisted\": " + (f.allowlisted ? "true" : "false") +
           ", \"message\": " + json_string(f.message) +
           ", \"excerpt\": " + json_string(f.excerpt) + "}";
    out += i + 1 < findings.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace slipflow::tools
