/// \file isa_audit.cpp
/// See isa_audit.hpp for the contract this enforces.

#include "isa_audit/isa_audit.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <istream>
#include <sstream>

#include "util/json.hpp"
#include "util/require.hpp"

namespace slipflow::tools {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

/// Legacy/ignorable prefixes objdump prints as separate tokens before
/// the mnemonic.
bool is_insn_prefix(std::string_view tok) {
  static constexpr std::string_view kPrefixes[] = {
      "lock", "rep",   "repz",     "repe",   "repnz",    "repne", "bnd",
      "notrack", "data16", "addr32", "xacquire", "xrelease", "cs",  "ds",
      "es", "fs", "gs", "ss"};
  for (const auto p : kPrefixes)
    if (tok == p) return true;
  return false;
}

/// Mnemonics that begin with 'v' but are pre-AVX system instructions,
/// not VEX-encoded vector ops.
bool is_non_vector_v_mnemonic(std::string_view m) {
  static constexpr std::string_view kSystem[] = {
      "verr", "verw", "vmcall", "vmclear", "vmfunc", "vmlaunch",
      "vmload", "vmmcall", "vmptrld", "vmptrst", "vmread", "vmresume",
      "vmrun", "vmsave", "vmwrite", "vmxoff", "vmxon"};
  for (const auto s : kSystem)
    if (m == s) return true;
  return false;
}

/// EVEX-only mnemonic families: encodable only under AVX-512 even when
/// the printed operands are xmm0..15 (so register inspection alone
/// would misclassify them as plain AVX).
bool is_evex_only_mnemonic(std::string_view m) {
  static constexpr std::string_view kEvexPrefixes[] = {
      "vpternlog", "vpermt2",   "vpermi2",  "vrndscale", "vscalef",
      "vgetexp",   "vgetmant",  "vfixupimm", "vrange",   "vreduce",
      "vpcompress", "vpexpand", "vcompress", "vexpand",  "vblendm",
      "vpblendm",  "vptestm",   "vptestnm", "vpsra",     "vcvtusi",
      "vcvtuqq",   "vcvtudq",   "vcvtqq",   "vcvttpd2udq",
      "vcvttpd2uqq", "vcvttps2udq", "vcvttps2uqq", "vpmovm2", "vpmov",
      "vpbroadcastm", "vplzcnt", "vpconflict", "vpmullq", "vpminuq",
      "vpminsq",   "vpmaxuq",   "vpmaxsq",  "vpabsq",    "vprol",
      "vpror",     "valign",    "vdbpsadbw", "vpmadd52", "vshuff32",
      "vshuff64",  "vshufi32",  "vshufi64", "vextractf32", "vextractf64",
      "vextracti32", "vextracti64", "vinsertf32", "vinsertf64",
      "vinserti32", "vinserti64", "vbroadcastf32", "vbroadcastf64",
      "vbroadcasti32", "vbroadcasti64"};
  // vpsra{q} is EVEX-only only in its q form; be precise for the
  // families where the legacy form exists.
  if (starts_with(m, "vpsra") && !starts_with(m, "vpsraq")) return false;
  if (starts_with(m, "vpmov") &&
      (starts_with(m, "vpmovmsk") || starts_with(m, "vpmovsx") ||
       starts_with(m, "vpmovzx")))
    return false;  // VEX forms exist
  for (const auto p : kEvexPrefixes)
    if (starts_with(m, p)) return true;
  // Opmask register moves/logic (kmovw, kandb, korw, ...): AVX-512 only.
  if (m.size() >= 2 && m[0] == 'k' &&
      (starts_with(m, "kmov") || starts_with(m, "kand") ||
       starts_with(m, "kor") || starts_with(m, "kxor") ||
       starts_with(m, "kxnor") || starts_with(m, "knot") ||
       starts_with(m, "ktest") || starts_with(m, "kshift") ||
       starts_with(m, "kadd") || starts_with(m, "kunpck")))
    return true;
  return false;
}

/// True if the operand string uses an AVX-512-only register: any %zmm,
/// an opmask %k0..%k7, or %xmm16..%xmm31 / %ymm16..%ymm31 (EVEX
/// extended encodings).
bool operands_use_avx512_regs(std::string_view ops) {
  for (std::size_t i = 0; i + 1 < ops.size(); ++i) {
    if (ops[i] != '%') continue;
    const std::string_view rest = ops.substr(i + 1);
    if (starts_with(rest, "zmm")) return true;
    if (rest.size() >= 2 && rest[0] == 'k' &&
        std::isdigit(static_cast<unsigned char>(rest[1])) &&
        (rest.size() == 2 || !is_ident(rest[2])))
      return true;
    if (starts_with(rest, "xmm") || starts_with(rest, "ymm")) {
      std::size_t j = 3;
      unsigned idx = 0;
      bool any = false;
      while (j < rest.size() &&
             std::isdigit(static_cast<unsigned char>(rest[j]))) {
        idx = idx * 10 + static_cast<unsigned>(rest[j] - '0');
        ++j;
        any = true;
      }
      if (any && idx >= 16) return true;
    }
  }
  return false;
}

bool operands_use_vector_regs(std::string_view ops, std::string_view which) {
  std::size_t pos = 0;
  while ((pos = ops.find(which, pos)) != std::string_view::npos) {
    if (pos > 0 && ops[pos - 1] == '%') return true;
    ++pos;
  }
  return false;
}

}  // namespace

const char* isa_level_name(IsaLevel level) {
  switch (level) {
    case IsaLevel::baseline: return "baseline";
    case IsaLevel::avx2: return "avx2";
    case IsaLevel::avx512: return "avx512";
  }
  return "?";
}

std::optional<IsaLevel> parse_isa_level(std::string_view name) {
  if (name == "baseline") return IsaLevel::baseline;
  if (name == "avx2") return IsaLevel::avx2;
  if (name == "avx512") return IsaLevel::avx512;
  return std::nullopt;
}

InsnClass classify_instruction(std::string_view mnemonic,
                               std::string_view operands) {
  InsnClass c;
  if (mnemonic.empty()) return c;

  c.fma = starts_with(mnemonic, "vfmadd") || starts_with(mnemonic, "vfmsub") ||
          starts_with(mnemonic, "vfnmadd") || starts_with(mnemonic, "vfnmsub");

  if (operands_use_avx512_regs(operands) || is_evex_only_mnemonic(mnemonic)) {
    c.level = IsaLevel::avx512;
    return c;
  }
  const bool v_vector =
      mnemonic[0] == 'v' && !is_non_vector_v_mnemonic(mnemonic);
  if (v_vector || (mnemonic[0] != 'v' &&
                   operands_use_vector_regs(operands, "ymm"))) {
    // Any VEX encoding (ymm use, or a v-prefixed xmm op) faults on a
    // pre-AVX machine, so it all lands in one policy class.
    c.level = IsaLevel::avx2;
    return c;
  }
  c.level = IsaLevel::baseline;
  return c;
}

std::optional<ListingInsn> parse_listing_line(std::string_view line) {
  // Instruction lines look like (with --no-show-raw-insn):
  //   "  1a2b:\tvaddpd %ymm0,%ymm1,%ymm2"
  // or, with the raw-bytes column:
  //   "  1a2b:\t62 f1 f5 48 58 d0 \tvaddpd %zmm0,%zmm1,%zmm2"
  const std::string_view trimmed = trim(line);
  if (trimmed.empty()) return std::nullopt;

  // Address field: hex digits followed by ':'.
  std::size_t i = 0;
  while (i < trimmed.size() &&
         std::isxdigit(static_cast<unsigned char>(trimmed[i])))
    ++i;
  if (i == 0 || i >= trimmed.size() || trimmed[i] != ':') return std::nullopt;
  const std::string_view addr = trimmed.substr(0, i);
  std::string_view rest = trimmed.substr(i + 1);

  // With the raw-bytes column present, the instruction text is the last
  // tab-separated field; continuation lines carry bytes only.
  const std::size_t last_tab = rest.rfind('\t');
  if (last_tab != std::string_view::npos) rest = rest.substr(last_tab + 1);
  rest = trim(rest);
  if (rest.empty()) return std::nullopt;

  // Pure hex-byte field (raw mode continuation) — not an instruction.
  const bool all_hex = std::all_of(rest.begin(), rest.end(), [](char ch) {
    return std::isxdigit(static_cast<unsigned char>(ch)) != 0 || ch == ' ';
  });
  if (all_hex) return std::nullopt;
  if (rest == "..." || starts_with(rest, "(bad)") || rest[0] == '.')
    return std::nullopt;

  // Split off prefixes, then the mnemonic.
  ListingInsn insn;
  insn.address = std::string(addr);
  std::string_view cur = rest;
  for (;;) {
    const std::size_t sp = cur.find_first_of(" \t");
    const std::string_view tok =
        sp == std::string_view::npos ? cur : cur.substr(0, sp);
    if (is_insn_prefix(tok) && sp != std::string_view::npos) {
      cur = trim(cur.substr(sp + 1));
      continue;
    }
    insn.mnemonic = std::string(tok);
    insn.operands =
        sp == std::string_view::npos ? std::string() : std::string(trim(cur.substr(sp + 1)));
    break;
  }
  // Comment trailer objdump appends ("# 12 <sym>", "<sym+0x8>").
  const std::size_t hash = insn.operands.find(" #");
  if (hash != std::string::npos) insn.operands.resize(hash);
  return insn;
}

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative greedy match with backtracking over '*'.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == text[t] || pattern[p] == '?')) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

const TuRule& IsaPolicy::rule_for(std::string_view tu) const {
  for (const TuRule& r : rules)
    if (glob_match(r.pattern, tu)) return r;
  return fallback;
}

IsaPolicy IsaPolicy::parse(std::istream& in) {
  IsaPolicy policy;
  bool have_default = false;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view s = trim(line);
    if (s.empty() || s[0] == '#') continue;
    std::istringstream fields{std::string(s)};
    std::string kind;
    fields >> kind;
    TuRule rule;
    rule.line = lineno;
    if (kind == "tu") {
      fields >> rule.pattern;
      SLIPFLOW_REQUIRE_MSG(!rule.pattern.empty(),
                           "isa policy line " << lineno << ": missing glob");
    } else {
      SLIPFLOW_REQUIRE_MSG(kind == "default", "isa policy line "
                                                  << lineno
                                                  << ": expected 'tu' or "
                                                     "'default', got '"
                                                  << kind << "'");
      rule.pattern = "<default>";
    }
    bool have_max = false, have_fma = false;
    std::string attr;
    while (fields >> attr) {
      const std::size_t eq = attr.find('=');
      SLIPFLOW_REQUIRE_MSG(eq != std::string::npos,
                           "isa policy line " << lineno << ": bad attribute '"
                                              << attr << "'");
      const std::string key = attr.substr(0, eq);
      const std::string val = attr.substr(eq + 1);
      if (key == "max") {
        const auto lvl = parse_isa_level(val);
        SLIPFLOW_REQUIRE_MSG(lvl.has_value(), "isa policy line "
                                                  << lineno
                                                  << ": unknown level '" << val
                                                  << "'");
        rule.max_level = *lvl;
        have_max = true;
      } else if (key == "fma") {
        SLIPFLOW_REQUIRE_MSG(val == "allow" || val == "forbid",
                             "isa policy line " << lineno << ": fma must be "
                                                   "allow|forbid, got '"
                                                << val << "'");
        rule.allow_fma = val == "allow";
        have_fma = true;
      } else {
        SLIPFLOW_REQUIRE_MSG(false, "isa policy line "
                                        << lineno << ": unknown key '" << key
                                        << "'");
      }
    }
    SLIPFLOW_REQUIRE_MSG(have_max && have_fma,
                         "isa policy line " << lineno
                                            << ": need both max= and fma=");
    if (kind == "default") {
      SLIPFLOW_REQUIRE_MSG(!have_default,
                           "isa policy line " << lineno
                                              << ": duplicate default");
      policy.fallback = rule;
      have_default = true;
    } else {
      policy.rules.push_back(std::move(rule));
    }
  }
  SLIPFLOW_REQUIRE_MSG(have_default, "isa policy: missing 'default' line");
  return policy;
}

IsaPolicy IsaPolicy::parse_file(const std::string& path) {
  std::ifstream in(path);
  SLIPFLOW_REQUIRE_MSG(in.good(), "cannot open isa policy '" << path << "'");
  return parse(in);
}

TuAudit audit_listing(std::string_view tu, std::istream& listing,
                      const IsaPolicy& policy, AuditMode mode) {
  const TuRule& rule = policy.rule_for(tu);
  TuAudit audit;
  audit.tu = std::string(tu);
  audit.rule_pattern = rule.pattern;

  std::string line;
  while (std::getline(listing, line)) {
    const auto insn = parse_listing_line(line);
    if (!insn) continue;
    ++audit.instructions;
    const InsnClass c = classify_instruction(insn->mnemonic, insn->operands);
    ++audit.level_counts[static_cast<std::size_t>(c.level)];
    if (c.fma) ++audit.fma_count;

    // One violation record per instruction; the reason lists every
    // policy rule the instruction breaks.
    std::string reason;
    if (c.fma && !rule.allow_fma) {
      reason = "FMA forbidden in this TU (-ffp-contract=off contract)";
    }
    if (mode == AuditMode::strict && c.level > rule.max_level) {
      if (!reason.empty()) reason += "; ";
      reason += std::string(isa_level_name(c.level)) +
                " instruction exceeds TU ceiling " +
                isa_level_name(rule.max_level);
    }
    if (!reason.empty()) {
      ++audit.violation_count;
      if (audit.violations.size() < kMaxViolationDetail) {
        audit.violations.push_back(
            {insn->address, insn->mnemonic, std::move(reason)});
      } else {
        audit.truncated = true;
      }
    }
  }
  return audit;
}

std::string audit_report_json(const std::vector<TuAudit>& audits,
                              AuditMode mode, std::string_view policy_path) {
  using util::json_number;
  using util::json_string;
  std::string out;
  std::size_t total_insns = 0, total_violations = 0;
  for (const TuAudit& a : audits) {
    total_insns += a.instructions;
    total_violations += a.violation_count;
  }
  out += "{\n";
  out += "  \"mode\": " +
         json_string(mode == AuditMode::strict ? "strict" : "contract-only") +
         ",\n";
  out += "  \"policy\": " + json_string(policy_path) + ",\n";
  out += "  \"objects\": " +
         json_number(static_cast<long long>(audits.size())) + ",\n";
  out += "  \"instructions\": " +
         json_number(static_cast<long long>(total_insns)) + ",\n";
  out += "  \"violation_count\": " +
         json_number(static_cast<long long>(total_violations)) + ",\n";
  out += "  \"tus\": [\n";
  for (std::size_t i = 0; i < audits.size(); ++i) {
    const TuAudit& a = audits[i];
    out += "    {\"tu\": " + json_string(a.tu) +
           ", \"rule\": " + json_string(a.rule_pattern) +
           ", \"instructions\": " +
           json_number(static_cast<long long>(a.instructions)) +
           ", \"baseline\": " +
           json_number(static_cast<long long>(a.level_counts[0])) +
           ", \"avx2\": " +
           json_number(static_cast<long long>(a.level_counts[1])) +
           ", \"avx512\": " +
           json_number(static_cast<long long>(a.level_counts[2])) +
           ", \"fma\": " + json_number(static_cast<long long>(a.fma_count)) +
           ", \"violation_count\": " +
           json_number(static_cast<long long>(a.violation_count)) +
           ", \"violations\": [";
    for (std::size_t v = 0; v < a.violations.size(); ++v) {
      if (v) out += ", ";
      out += "{\"address\": " + json_string(a.violations[v].address) +
             ", \"mnemonic\": " + json_string(a.violations[v].mnemonic) +
             ", \"reason\": " + json_string(a.violations[v].reason) + "}";
    }
    out += "]}";
    out += i + 1 < audits.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace slipflow::tools
