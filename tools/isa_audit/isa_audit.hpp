#pragma once
/// \file isa_audit.hpp
/// Binary-level audit of the per-TU ISA policy that backs the
/// determinism contract (sequential ≡ parallel for any rank × thread ×
/// backend combination). The runtime dispatcher guarantees an
/// AVX-512 instruction is never *executed* on a machine without AVX-512
/// — but only if no such instruction leaks out of its dedicated
/// translation unit (the COMDAT hazard: a shared inline function
/// compiled under -mavx512f can be the copy the linker keeps). Likewise
/// the scalar ≡ SIMD bit-identity argument requires that no kernel TU
/// contracts a*b+c into an FMA. Both properties are invisible at the
/// source level; this tool enforces them where they actually live, in
/// the object files, by parsing `objdump -d` output and checking every
/// instruction against a policy manifest (tools/isa_policy.conf).
///
/// The core is a library (no process spawning, pure text in / report
/// out) so tests can feed it synthetic listings with planted
/// violations; the CLI in main.cpp walks a CMake build tree and runs
/// objdump itself.

#include <array>
#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace slipflow::tools {

/// ISA classes ordered by inclusion: an object allowed `avx512` may
/// also contain `avx2` and `baseline` instructions, never the reverse.
/// `baseline` is plain x86-64 (SSE2 included); `avx2` is any
/// VEX-encoded instruction (AVX/AVX2/FMA encodings — illegal on a
/// pre-AVX machine); `avx512` is any EVEX-encoded instruction (zmm or
/// opmask registers, xmm16..31, or an EVEX-only mnemonic).
enum class IsaLevel : int { baseline = 0, avx2 = 1, avx512 = 2 };

const char* isa_level_name(IsaLevel level);
std::optional<IsaLevel> parse_isa_level(std::string_view name);

/// Classification of one disassembled instruction. FMA is tracked as a
/// separate flag (orthogonal to width: vfmadd exists in xmm/ymm/zmm
/// forms) because the determinism contract forbids it independently of
/// the ISA level the TU is allowed to use.
struct InsnClass {
  IsaLevel level = IsaLevel::baseline;
  bool fma = false;
};

/// Classify an AT&T-syntax mnemonic + operand string as printed by
/// `objdump -d --no-show-raw-insn`. Legacy prefixes (lock, rep, ...)
/// must already be stripped — parse_listing_line() does that.
InsnClass classify_instruction(std::string_view mnemonic,
                               std::string_view operands);

/// One parsed instruction line of an objdump listing.
struct ListingInsn {
  std::string address;   // hex address text, e.g. "1a2b"
  std::string mnemonic;  // prefix-stripped mnemonic, e.g. "vfmadd231pd"
  std::string operands;  // remainder of the line, may be empty
};

/// Parse one line of `objdump -d` output. Returns nullopt for
/// everything that is not an instruction (section headers, symbol
/// labels, blank lines, "..." padding, "(bad)" bytes). Tolerates the
/// raw-bytes column when --no-show-raw-insn was not passed.
std::optional<ListingInsn> parse_listing_line(std::string_view line);

/// `*`-wildcard match (no character classes; `?` matches one char).
bool glob_match(std::string_view pattern, std::string_view text);

/// Per-TU policy rule. `pattern` is matched against the TU id, which is
/// the object path relative to the build's src/ directory with the
/// CMakeFiles/<target>.dir/ infix removed — e.g.
/// "lbm/kernels_tile_avx2.cpp.o".
struct TuRule {
  std::string pattern;
  IsaLevel max_level = IsaLevel::baseline;
  bool allow_fma = true;
  int line = 0;  // manifest line, for diagnostics
};

/// Parsed policy manifest. First matching rule wins; the `default` line
/// (required) is the fallback for TUs no rule matches.
struct IsaPolicy {
  std::vector<TuRule> rules;
  TuRule fallback{"<default>", IsaLevel::baseline, true, 0};

  const TuRule& rule_for(std::string_view tu) const;

  /// Parse the manifest format:
  ///   # comment
  ///   default max=<level> fma=<allow|forbid>
  ///   tu <glob> max=<level> fma=<allow|forbid>
  /// Throws slipflow::contract_error on malformed input.
  static IsaPolicy parse(std::istream& in);
  static IsaPolicy parse_file(const std::string& path);
};

/// strict checks both the ISA-level ceiling and the FMA rule — the
/// default-build contract where every non-kernel TU must stay runnable
/// on baseline x86-64. contract_only checks just the FMA rule: under
/// -march=native every TU legitimately uses the host's full ISA, but
/// the kernel TUs must STILL be FMA-free or the -ffp-contract=off
/// bit-identity argument (and with it scalar ≡ simd) silently breaks.
enum class AuditMode { strict, contract_only };

struct IsaViolation {
  std::string address;
  std::string mnemonic;
  std::string reason;
};

/// Audit result for one object file.
struct TuAudit {
  std::string tu;
  std::string rule_pattern;  // which policy rule matched
  std::size_t instructions = 0;
  std::array<std::size_t, 3> level_counts{};  // indexed by IsaLevel
  std::size_t fma_count = 0;
  std::vector<IsaViolation> violations;  // detail capped; see truncated
  std::size_t violation_count = 0;       // true total
  bool truncated = false;
};

inline constexpr std::size_t kMaxViolationDetail = 20;

/// Run the audit over one objdump listing.
TuAudit audit_listing(std::string_view tu, std::istream& listing,
                      const IsaPolicy& policy, AuditMode mode);

/// Deterministic JSON report for the whole run (CI artifact).
std::string audit_report_json(const std::vector<TuAudit>& audits,
                              AuditMode mode, std::string_view policy_path);

}  // namespace slipflow::tools
