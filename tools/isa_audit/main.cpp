/// \file main.cpp
/// CLI for the ISA/FMA binary audit.
///
///   isa_audit --build-dir=build [--policy=tools/isa_policy.conf]
///             [--mode=strict|contract-only] [--objdump=objdump]
///             [--json=report.json] [--quiet]
///   isa_audit --listing=fixture.txt --tu=lbm/kernels_plan.cpp.o
///             --policy=... [--mode=...]
///
/// Build-dir mode walks every object file under <build>/src, derives
/// the TU id (object path with the CMakeFiles/<target>.dir infix
/// removed, e.g. "lbm/kernels_tile_avx2.cpp.o"), disassembles it with
/// objdump and audits each instruction against the policy manifest.
/// Listing mode audits one pre-captured listing — the fixture path the
/// tests and the CI "the audit must be able to fail" step use.
///
/// Exit status: 0 clean, 1 policy violations found, 2 usage/run error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "isa_audit/isa_audit.hpp"
#include "util/options.hpp"
#include "util/require.hpp"

namespace fs = std::filesystem;
using namespace slipflow;
using namespace slipflow::tools;

namespace {

/// Run `objdump -d --no-show-raw-insn <obj>` and capture stdout.
std::string disassemble(const std::string& objdump, const std::string& path) {
  const std::string cmd =
      objdump + " -d --no-show-raw-insn '" + path + "' 2>/dev/null";
  std::unique_ptr<FILE, int (*)(FILE*)> pipe(::popen(cmd.c_str(), "r"),
                                             ::pclose);
  SLIPFLOW_REQUIRE_MSG(pipe != nullptr, "popen failed for " << cmd);
  std::string out;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe.get())) > 0)
    out.append(buf, n);
  return out;
}

/// "src/lbm/CMakeFiles/slipflow_lbm.dir/kernels_tile_avx2.cpp.o"
///   -> "lbm/kernels_tile_avx2.cpp.o"
std::string tu_id(const fs::path& rel_to_src) {
  std::vector<std::string> parts;
  for (const auto& comp : rel_to_src) {
    const std::string s = comp.string();
    if (s == "CMakeFiles") continue;
    if (s.size() > 4 && s.substr(s.size() - 4) == ".dir") continue;
    parts.push_back(s);
  }
  std::string id;
  for (const std::string& p : parts) {
    if (!id.empty()) id += '/';
    id += p;
  }
  return id;
}

int fail_usage(const char* msg) {
  std::fprintf(stderr, "isa_audit: %s\n", msg);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Options opts = util::Options::parse(argc, argv);
  const std::string build_dir = opts.get("build-dir", std::string());
  const std::string listing_path = opts.get("listing", std::string());
  const std::string tu_name = opts.get("tu", std::string());
  const std::string policy_path =
      opts.get("policy", std::string("tools/isa_policy.conf"));
  const std::string mode_name = opts.get("mode", std::string("strict"));
  const std::string objdump = opts.get("objdump", std::string("objdump"));
  const std::string json_path = opts.get("json", std::string());
  const bool quiet = opts.get("quiet", false);
  for (const std::string& k : opts.unused_keys())
    return fail_usage(("unknown option --" + k).c_str());

  AuditMode mode;
  if (mode_name == "strict") {
    mode = AuditMode::strict;
  } else if (mode_name == "contract-only") {
    mode = AuditMode::contract_only;
  } else {
    return fail_usage("--mode must be strict or contract-only");
  }

  try {
    const IsaPolicy policy = IsaPolicy::parse_file(policy_path);
    std::vector<TuAudit> audits;

    if (!listing_path.empty()) {
      if (tu_name.empty())
        return fail_usage("--listing requires --tu=<tu-id>");
      std::ifstream in(listing_path);
      SLIPFLOW_REQUIRE_MSG(in.good(),
                           "cannot open listing '" << listing_path << "'");
      audits.push_back(audit_listing(tu_name, in, policy, mode));
    } else {
      if (build_dir.empty())
        return fail_usage("need --build-dir=<dir> or --listing=<file>");
      const fs::path src_objects = fs::path(build_dir) / "src";
      SLIPFLOW_REQUIRE_MSG(fs::is_directory(src_objects),
                           "no such directory: " << src_objects.string()
                                                 << " (is --build-dir a "
                                                    "configured build?)");
      std::vector<fs::path> objects;
      for (const auto& entry : fs::recursive_directory_iterator(src_objects))
        if (entry.is_regular_file() && entry.path().extension() == ".o")
          objects.push_back(entry.path());
      std::sort(objects.begin(), objects.end());
      SLIPFLOW_REQUIRE_MSG(!objects.empty(),
                           "no object files under " << src_objects.string()
                                                    << " — build first");
      for (const fs::path& obj : objects) {
        std::istringstream listing(disassemble(objdump, obj.string()));
        audits.push_back(audit_listing(
            tu_id(fs::relative(obj, src_objects)), listing, policy, mode));
      }
    }

    std::size_t violations = 0, insns = 0;
    for (const TuAudit& a : audits) {
      violations += a.violation_count;
      insns += a.instructions;
      if (!quiet) {
        std::printf("%-44s %8zu insns  base=%zu avx2=%zu avx512=%zu fma=%zu"
                    "  [rule %s]%s\n",
                    a.tu.c_str(), a.instructions, a.level_counts[0],
                    a.level_counts[1], a.level_counts[2], a.fma_count,
                    a.rule_pattern.c_str(),
                    a.violation_count ? "  VIOLATIONS" : "");
      }
      for (const IsaViolation& v : a.violations)
        std::fprintf(stderr, "isa_audit: %s: %s at 0x%s: %s\n", a.tu.c_str(),
                     v.mnemonic.c_str(), v.address.c_str(), v.reason.c_str());
      if (a.truncated)
        std::fprintf(stderr, "isa_audit: %s: ... %zu violations total\n",
                     a.tu.c_str(), a.violation_count);
    }

    if (!json_path.empty()) {
      std::ofstream out(json_path);
      SLIPFLOW_REQUIRE_MSG(out.good(),
                           "cannot write json '" << json_path << "'");
      out << audit_report_json(audits, mode, policy_path);
    }

    std::printf("isa_audit [%s]: %zu objects, %zu instructions, "
                "%zu violation(s)\n",
                mode == AuditMode::strict ? "strict" : "contract-only",
                audits.size(), insns, violations);
    return violations == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "isa_audit: %s\n", e.what());
    return 2;
  }
}
