#!/usr/bin/env bash
# End-to-end smoke test of the campaign service (src/serve), run by the
# `service` CI job:
#
#   1. start slipflow_served on a fresh socket + work dir;
#   2. submit three concurrent jobs from two tenants — a two-job gravity
#      sweep plus a chaos job whose rank 1 is killed mid-run by fault
#      injection;
#   3. assert the killed job recovers from its checkpoint (attempt 2,
#      guilty rank named in the event stream) and completes;
#   4. assert every served result is byte-identical to a direct
#      standalone run of the same spec (slipflow_submit --direct — the
#      same argv builder, so a diff means the service moved the physics);
#   5. assert the warm-state cache measurably skips equilibration: the
#      second submission of the same physics reports a warm hit and
#      executes only phases - warm_phases;
#   6. shut the daemon down cleanly via SIGTERM.
#
# Usage: tools/service_smoke.sh [build-dir]   (default: build)
set -euo pipefail

BUILD_DIR=${1:-build}
SERVED=$BUILD_DIR/src/serve/slipflow_served
SUBMIT=$BUILD_DIR/src/serve/slipflow_submit
for exe in "$SERVED" "$SUBMIT"; do
  [ -x "$exe" ] || { echo "missing $exe (build slipflow_served + slipflow_submit first)" >&2; exit 1; }
done

WORK=$(mktemp -d /tmp/sf_smoke.XXXXXX)
SOCK=$WORK/ctl.sock
DAEMON_PID=
cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "service_smoke: FAIL: $*" >&2; exit 1; }

# --- specs -------------------------------------------------------------
# All on the tiny CI grid; wall_clock_budget bounds every launch so a
# hang fails the job (and this script) instead of stalling CI.
cat > "$WORK/spec_clean.json" <<'EOF'
{"geometry":{"nx":16,"ny":6,"nz":4},"phases":20,"ranks":2,
 "wall_clock_budget":60}
EOF
cat > "$WORK/spec_fault.json" <<'EOF'
{"geometry":{"nx":16,"ny":6,"nz":4},"phases":20,"ranks":2,
 "wall_clock_budget":60,"params":{"gravity":4e-05},
 "checkpoint_every":5,"fault":{"kill_rank":1,"kill_phase":12}}
EOF
# The fault job's physics without the fault or checkpoints: the direct
# reference the recovered result must match byte for byte.
cat > "$WORK/spec_fault_clean.json" <<'EOF'
{"geometry":{"nx":16,"ny":6,"nz":4},"phases":20,"ranks":2,
 "wall_clock_budget":60,"params":{"gravity":4e-05}}
EOF
cat > "$WORK/spec_warm.json" <<'EOF'
{"geometry":{"nx":16,"ny":6,"nz":4},"phases":20,"ranks":2,
 "wall_clock_budget":60,"params":{"gravity":5e-05},"warm_phases":10}
EOF

# --- 1. daemon ---------------------------------------------------------
"$SERVED" --socket="$SOCK" --work-dir="$WORK/srv" --slots=8 \
  > "$WORK/daemon.log" 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  kill -0 "$DAEMON_PID" 2>/dev/null || { cat "$WORK/daemon.log" >&2; fail "daemon died on startup"; }
  sleep 0.1
done
[ -S "$SOCK" ] || fail "daemon never bound $SOCK"

# --- 2. three concurrent jobs, one killed ------------------------------
mkdir -p "$WORK/out_sweep" "$WORK/out_fault"
"$SUBMIT" --socket="$SOCK" --spec="$WORK/spec_clean.json" --tenant=sweep \
  --sweep=params.gravity=2e-05,3e-05 --out-dir="$WORK/out_sweep" --quiet \
  > "$WORK/sweep.log" 2>&1 &
SWEEP_PID=$!
"$SUBMIT" --socket="$SOCK" --spec="$WORK/spec_fault.json" --tenant=chaos \
  --out-dir="$WORK/out_fault" \
  > "$WORK/fault.log" 2>&1 &
FAULT_PID=$!
wait "$SWEEP_PID" || { cat "$WORK/sweep.log" >&2; fail "sweep jobs failed"; }
wait "$FAULT_PID" || { cat "$WORK/fault.log" >&2; fail "fault job failed to recover"; }

# --- 3. recovery happened and named the guilty rank --------------------
grep -q '"event":"failure"' "$WORK/fault.log" || fail "no failure event streamed"
grep -q '"failed_rank":1' "$WORK/fault.log" || fail "failure event did not name rank 1"
grep -q '"event":"recovery"' "$WORK/fault.log" || fail "no recovery event streamed"
grep -q 'attempts 2' "$WORK/fault.log" || fail "recovered job should report attempts 2"

# --- 4. byte-identity against direct standalone runs -------------------
mkdir -p "$WORK/direct" "$WORK/direct_fault"
"$SUBMIT" --direct --spec="$WORK/spec_clean.json" \
  --sweep=params.gravity=2e-05,3e-05 --out-dir="$WORK/direct" \
  > "$WORK/direct.log" 2>&1 || { cat "$WORK/direct.log" >&2; fail "direct sweep failed"; }
"$SUBMIT" --direct --spec="$WORK/spec_fault_clean.json" \
  --out-dir="$WORK/direct_fault" > /dev/null 2>&1 \
  && mv "$WORK/direct_fault/obs_direct1.txt" "$WORK/direct/obs_fault_ref.txt" \
  || fail "direct fault reference failed"

# Waits are in submission order, so ascending job ids pair with the
# sweep values in order.
mapfile -t SWEEP_OBS < <(ls "$WORK"/out_sweep/obs_job*.txt | sort -V)
[ "${#SWEEP_OBS[@]}" -eq 2 ] || fail "expected 2 sweep results, got ${#SWEEP_OBS[@]}"
cmp "${SWEEP_OBS[0]}" "$WORK/direct/obs_direct1.txt" || fail "sweep job 1 diverged from direct run"
cmp "${SWEEP_OBS[1]}" "$WORK/direct/obs_direct2.txt" || fail "sweep job 2 diverged from direct run"
mapfile -t FAULT_OBS < <(ls "$WORK"/out_fault/obs_job*.txt)
[ "${#FAULT_OBS[@]}" -eq 1 ] || fail "expected 1 fault-job result"
cmp "${FAULT_OBS[0]}" "$WORK/direct/obs_fault_ref.txt" \
  || fail "recovered job diverged from the clean direct run"

# --- 5. warm cache skips equilibration ---------------------------------
"$SUBMIT" --socket="$SOCK" --spec="$WORK/spec_warm.json" --tenant=sweep \
  --quiet > "$WORK/warm1.log" 2>&1 || { cat "$WORK/warm1.log" >&2; fail "warm producer failed"; }
grep -q 'phases executed 20' "$WORK/warm1.log" || fail "warm producer should execute all 20 phases"
"$SUBMIT" --socket="$SOCK" --spec="$WORK/spec_warm.json" --tenant=sweep \
  --quiet > "$WORK/warm2.log" 2>&1 || { cat "$WORK/warm2.log" >&2; fail "warm consumer failed"; }
grep -q 'warm cache hit' "$WORK/warm2.log" || fail "second submission should hit the warm cache"
grep -q 'phases executed 10' "$WORK/warm2.log" || fail "warm hit should execute only 10 of 20 phases"

# --- 6. clean shutdown -------------------------------------------------
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || fail "daemon exited non-zero on SIGTERM"
DAEMON_PID=

echo "service_smoke: PASS"
