#!/usr/bin/env bash
# One-command static-analysis entry point for slipflow.
#
#   tools/run_lint.sh [--build-dir=build] [--mode=strict|contract-only]
#                     [--skip-build] [--json-dir=DIR]
#
# Runs, in order:
#   1. isa_audit          — disassembles every object under <build>/src and
#                           enforces tools/isa_policy.conf (per-TU ISA
#                           ceilings + the no-FMA -ffp-contract=off contract).
#   2. determinism_lint   — source lint over src/lbm src/sim src/transport
#                           src/balance (unordered iteration feeding FP or
#                           messages, pointer-value ordering, wall-clock /
#                           entropy outside the clock seam, unannotated
#                           collectives).
#   3. clang-tidy         — curated .clang-tidy profile over the lbm/sim/
#                           balance/transport sources, via the build dir's
#                           compile_commands.json. Skipped with a notice if
#                           clang-tidy is not installed (CI installs it).
#   4. cppcheck           — skipped likewise when unavailable.
#
# Exit status: non-zero if any available stage reports a violation.
# Unavailable optional stages (clang-tidy, cppcheck) are reported as
# SKIPPED and do not fail the run — CI always has them installed, so
# nothing is silently lost where it matters.

set -u -o pipefail

BUILD_DIR=build
MODE=strict
SKIP_BUILD=0
JSON_DIR=""

for arg in "$@"; do
  case "$arg" in
    --build-dir=*) BUILD_DIR="${arg#*=}" ;;
    --mode=*)      MODE="${arg#*=}" ;;
    --skip-build)  SKIP_BUILD=1 ;;
    --json-dir=*)  JSON_DIR="${arg#*=}" ;;
    -h|--help)     grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) echo "run_lint.sh: unknown argument '$arg'" >&2; exit 2 ;;
  esac
done

cd "$(dirname "$0")/.."
FAILED=0
[ -n "$JSON_DIR" ] && mkdir -p "$JSON_DIR"

banner() { printf '\n==== %s ====\n' "$1"; }

if [ "$SKIP_BUILD" -eq 0 ]; then
  banner "build analyzers ($BUILD_DIR)"
  cmake -B "$BUILD_DIR" -S . >/dev/null || exit 2
  cmake --build "$BUILD_DIR" -j --target isa_audit determinism_lint || exit 2
fi

ISA_AUDIT="$BUILD_DIR/tools/isa_audit"
DET_LINT="$BUILD_DIR/tools/determinism_lint"
for exe in "$ISA_AUDIT" "$DET_LINT"; do
  if [ ! -x "$exe" ]; then
    echo "run_lint.sh: missing $exe (build the 'tools' targets first)" >&2
    exit 2
  fi
done

banner "isa_audit (mode=$MODE)"
ISA_JSON_ARG=()
[ -n "$JSON_DIR" ] && ISA_JSON_ARG=(--json="$JSON_DIR/isa_audit.json")
if ! "$ISA_AUDIT" --build-dir="$BUILD_DIR" --mode="$MODE" \
      --policy=tools/isa_policy.conf "${ISA_JSON_ARG[@]}"; then
  FAILED=1
fi

banner "determinism_lint"
DET_JSON_ARG=()
[ -n "$JSON_DIR" ] && DET_JSON_ARG=(--json="$JSON_DIR/determinism_lint.json")
if ! "$DET_LINT" --root=. "${DET_JSON_ARG[@]}"; then
  FAILED=1
fi

# clang-tidy needs compile_commands.json; the top-level CMakeLists
# forces CMAKE_EXPORT_COMPILE_COMMANDS on, so it exists for any
# configured build dir.
banner "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "run_lint.sh: $BUILD_DIR/compile_commands.json missing" >&2
    exit 2
  fi
  TIDY_SOURCES=$(git ls-files \
    'src/lbm/*.cpp' 'src/sim/*.cpp' 'src/balance/*.cpp' 'src/transport/*.cpp')
  if ! clang-tidy -p "$BUILD_DIR" --quiet --warnings-as-errors='*' \
        $TIDY_SOURCES; then
    FAILED=1
  fi
else
  echo "clang-tidy not installed — SKIPPED (runs in CI)"
fi

banner "cppcheck"
if command -v cppcheck >/dev/null 2>&1; then
  # --project would re-check vendored/test TUs; scope to the contract
  # directories and rely on the curated suppressions inline.
  if ! cppcheck --enable=warning,performance,portability \
        --error-exitcode=1 --inline-suppr --quiet \
        --suppress=missingIncludeSystem \
        -I src src/lbm src/sim src/balance src/transport; then
    FAILED=1
  fi
else
  echo "cppcheck not installed — SKIPPED (runs in CI)"
fi

banner "summary"
if [ "$FAILED" -ne 0 ]; then
  echo "static analysis: FAIL"
  exit 1
fi
echo "static analysis: OK"
