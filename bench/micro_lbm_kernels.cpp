/// Kernel microbenchmarks (google-benchmark): per-kernel throughput in
/// lattice-site updates, for the single- and two-component systems.
/// These numbers also calibrate the virtual cluster's per-point cost
/// split across the three compute stages (ClusterConfig::stage_fraction).

#include <benchmark/benchmark.h>

#include <memory>

#include "lbm/kernels.hpp"
#include "lbm/simulation.hpp"
#include "lbm/stepper.hpp"

using namespace slipflow::lbm;

namespace {

struct Box {
  std::shared_ptr<const ChannelGeometry> geom;
  std::unique_ptr<Slab> slab;
  PeriodicSelfExchanger halo;

  explicit Box(FluidParams p, Extents e = {24, 24, 12}) {
    geom = std::make_shared<const ChannelGeometry>(e);
    slab = std::make_unique<Slab>(geom, std::move(p), 0, e.nx);
    slab->initialize_uniform();
    prime(*slab, halo);
  }
};

void set_cells_rate(benchmark::State& state, const Slab& slab) {
  state.SetItemsProcessed(state.iterations() * slab.owned_cells());
  state.counters["MLUPS"] = benchmark::Counter(
      static_cast<double>(state.iterations() * slab.owned_cells()) / 1e6,
      benchmark::Counter::kIsRate);
}

void BM_Collide_SingleComponent(benchmark::State& state) {
  Box b(FluidParams::single_component());
  for (auto _ : state) collide(*b.slab);
  set_cells_rate(state, *b.slab);
}
BENCHMARK(BM_Collide_SingleComponent);

void BM_Collide_TwoComponent(benchmark::State& state) {
  Box b(FluidParams::microchannel_defaults());
  for (auto _ : state) collide(*b.slab);
  set_cells_rate(state, *b.slab);
}
BENCHMARK(BM_Collide_TwoComponent);

void BM_Stream_TwoComponent(benchmark::State& state) {
  Box b(FluidParams::microchannel_defaults());
  collide(*b.slab);
  b.halo.exchange_f(*b.slab);
  for (auto _ : state) stream(*b.slab);
  set_cells_rate(state, *b.slab);
}
BENCHMARK(BM_Stream_TwoComponent);

void BM_Density_TwoComponent(benchmark::State& state) {
  Box b(FluidParams::microchannel_defaults());
  for (auto _ : state) compute_density(*b.slab);
  set_cells_rate(state, *b.slab);
}
BENCHMARK(BM_Density_TwoComponent);

void BM_ForcesVelocity_TwoComponent(benchmark::State& state) {
  Box b(FluidParams::microchannel_defaults());
  for (auto _ : state) compute_forces_and_velocity(*b.slab);
  set_cells_rate(state, *b.slab);
}
BENCHMARK(BM_ForcesVelocity_TwoComponent);

void BM_FullPhase_TwoComponent(benchmark::State& state) {
  Box b(FluidParams::microchannel_defaults());
  for (auto _ : state) step_phase(*b.slab, b.halo);
  set_cells_rate(state, *b.slab);
}
BENCHMARK(BM_FullPhase_TwoComponent);

void BM_FHaloPackUnpack(benchmark::State& state) {
  Box b(FluidParams::microchannel_defaults());
  collide(*b.slab);
  std::vector<double> buf(static_cast<std::size_t>(b.slab->f_halo_doubles()));
  for (auto _ : state) {
    b.slab->extract_f_halo(Side::right, buf);
    b.slab->insert_f_halo(Side::left, buf);
  }
  state.SetBytesProcessed(state.iterations() * 2 *
                          static_cast<long long>(buf.size()) * 8);
}
BENCHMARK(BM_FHaloPackUnpack);

void BM_PlaneMigration(benchmark::State& state) {
  Box b(FluidParams::microchannel_defaults());
  std::vector<double> buf(
      static_cast<std::size_t>(b.slab->migration_doubles(1)));
  for (auto _ : state) {
    b.slab->detach_planes(Side::right, 1, buf);
    b.slab->attach_planes(Side::right, 1, buf);
  }
  state.SetBytesProcessed(state.iterations() * 2 *
                          static_cast<long long>(buf.size()) * 8);
}
BENCHMARK(BM_PlaneMigration);

}  // namespace

BENCHMARK_MAIN();
