/// Kernel microbenchmarks (google-benchmark): per-kernel throughput in
/// lattice-site updates, for the single- and two-component systems.
/// These numbers also calibrate the virtual cluster's per-point cost
/// split across the three compute stages (ClusterConfig::stage_fraction).
///
/// The legacy reference kernels and the StreamingPlan fast path run side
/// by side; the full-phase pair on an interior-dominated channel is the
/// repo's MLUPS claim for the plan refactor. Beyond the standard
/// google-benchmark flags the harness takes:
///
///   --json=<path>            summary json (default
///                            BENCH_micro_lbm_kernels.json, none = off)
///   --require-speedup=<x>    exit nonzero unless plan MLUPS >= x times
///                            legacy MLUPS on the full-phase pair (the CI
///                            perf guard; 0 = report only)
///   --require-overlap-speedup=<x>
///                            exit nonzero unless the 4-rank overlapped
///                            runner reaches x times the blocking
///                            runner's MLUPS (0 = report only). Needs
///                            real cores to mean anything; on a
///                            single-core box the ratio hovers near 1.
///   --require-tile-speedup=<x>
///                            exit nonzero unless the best SIMD tile
///                            backend reaches x times the scalar plan
///                            path's MLUPS on the full-phase bench
///                            (0 = report only). Works on one core —
///                            the gain is vector width, not threads.
///
/// The whole run pins the scalar backend; the per-backend full-phase
/// benches (BM_FullPhase_TwoComponent_Backend_*, registered for every
/// backend this build/CPU supports) switch it for their own loop only.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "lbm/kernels.hpp"
#include "lbm/simulation.hpp"
#include "lbm/stepper.hpp"
#include "sim/parallel_lbm.hpp"
#include "transport/shm_comm.hpp"
#include "transport/thread_comm.hpp"

using namespace slipflow;
using namespace slipflow::lbm;

namespace {

struct Box {
  std::shared_ptr<const ChannelGeometry> geom;
  std::unique_ptr<Slab> slab;
  PeriodicSelfExchanger halo;

  explicit Box(FluidParams p, Extents e = {24, 24, 12}) {
    geom = std::make_shared<const ChannelGeometry>(e);
    slab = std::make_unique<Slab>(geom, std::move(p), 0, e.nx);
    slab->initialize_uniform();
    prime(*slab, halo);
  }
};

/// The MLUPS-claim box: wide enough in y/z that ~88% of cells are
/// plan-interior, the regime the fused kernel is built for.
const Extents kPerfBox{32, 48, 24};

void set_cells_rate(benchmark::State& state, const Slab& slab) {
  state.SetItemsProcessed(state.iterations() * slab.owned_cells());
  state.counters["MLUPS"] = benchmark::Counter(
      static_cast<double>(state.iterations() * slab.owned_cells()) / 1e6,
      benchmark::Counter::kIsRate);
}

void BM_Collide_SingleComponent(benchmark::State& state) {
  Box b(FluidParams::single_component());
  for (auto _ : state) collide(*b.slab);
  set_cells_rate(state, *b.slab);
}
BENCHMARK(BM_Collide_SingleComponent);

void BM_Collide_TwoComponent(benchmark::State& state) {
  Box b(FluidParams::microchannel_defaults());
  for (auto _ : state) collide(*b.slab);
  set_cells_rate(state, *b.slab);
}
BENCHMARK(BM_Collide_TwoComponent);

void BM_Stream_TwoComponent(benchmark::State& state) {
  Box b(FluidParams::microchannel_defaults());
  collide(*b.slab);
  b.halo.exchange_f(*b.slab);
  for (auto _ : state) stream(*b.slab);
  set_cells_rate(state, *b.slab);
}
BENCHMARK(BM_Stream_TwoComponent);

void BM_FusedCollideStream_TwoComponent(benchmark::State& state) {
  // the plan path's replacement for collide + stream: boundary planes are
  // collided and exchanged once (as the stepper does each phase), then
  // the fused kernel runs collide+stream over the whole slab
  Box b(FluidParams::microchannel_defaults());
  collide_boundary_planes(*b.slab);
  b.halo.exchange_f(*b.slab);
  for (auto _ : state) fused_collide_stream(*b.slab);
  set_cells_rate(state, *b.slab);
}
BENCHMARK(BM_FusedCollideStream_TwoComponent);

void BM_Density_TwoComponent(benchmark::State& state) {
  Box b(FluidParams::microchannel_defaults());
  for (auto _ : state) compute_density(*b.slab);
  set_cells_rate(state, *b.slab);
}
BENCHMARK(BM_Density_TwoComponent);

void BM_ForcesVelocity_TwoComponent(benchmark::State& state) {
  Box b(FluidParams::microchannel_defaults());
  for (auto _ : state) compute_forces_and_velocity(*b.slab);
  set_cells_rate(state, *b.slab);
}
BENCHMARK(BM_ForcesVelocity_TwoComponent);

void BM_ForcesVelocityPlan_TwoComponent(benchmark::State& state) {
  Box b(FluidParams::microchannel_defaults());
  for (auto _ : state) compute_forces_and_velocity_plan(*b.slab);
  set_cells_rate(state, *b.slab);
}
BENCHMARK(BM_ForcesVelocityPlan_TwoComponent);

void BM_FullPhase_TwoComponent_Legacy(benchmark::State& state) {
  Box b(FluidParams::microchannel_defaults(), kPerfBox);
  for (auto _ : state)
    step_phase(*b.slab, b.halo, KernelPath::legacy);
  set_cells_rate(state, *b.slab);
}
BENCHMARK(BM_FullPhase_TwoComponent_Legacy);

void BM_FullPhase_TwoComponent_Plan(benchmark::State& state) {
  Box b(FluidParams::microchannel_defaults(), kPerfBox);
  b.slab->plan();  // build outside the timed region, as the runners do
  for (auto _ : state)
    step_phase(*b.slab, b.halo, KernelPath::plan);
  set_cells_rate(state, *b.slab);
}
BENCHMARK(BM_FullPhase_TwoComponent_Plan);

// Full plan-path phase on each kernel backend this build/CPU supports —
// registered dynamically in main(). The scalar entry re-measures the
// plan bench under the registration machinery (a sanity anchor); the
// SIMD entries are the tile-kernel claim, guarded by
// --require-tile-speedup against BM_FullPhase_TwoComponent_Plan.
void BM_FullPhase_TwoComponent_Backend(benchmark::State& state,
                                       KernelBackend backend) {
  set_kernel_backend(backend);
  Box b(FluidParams::microchannel_defaults(), kPerfBox);
  b.slab->plan();
  if (backend != KernelBackend::scalar) b.slab->tiles();
  for (auto _ : state)
    step_phase(*b.slab, b.halo, KernelPath::plan);
  set_cells_rate(state, *b.slab);
  set_kernel_backend(KernelBackend::scalar);
}

/// Analytic doubles-touched-per-cell of one two-component plan phase on
/// the perf box — the roofline denominator for the MLUPS numbers
/// (bytes/s = MLUPS * 1e6 * bytes_per_cell). Counted for an interior
/// cell, per component: fused collide+stream reads 19 f + 1 n + 3 ueq
/// and writes 19 f_post (42); density reads 19 f and writes n (20); the
/// force pass reads 18 psi + 18 f + n twice and writes 3 ueq (40); plus
/// 4 mixture writes (rho_tot, u) per cell.
double bytes_per_cell(int components) {
  return 8.0 * (static_cast<double>(components) * (42 + 20 + 40) + 4);
}

void BM_FHaloPackUnpack(benchmark::State& state) {
  Box b(FluidParams::microchannel_defaults());
  collide(*b.slab);
  std::vector<double> buf(static_cast<std::size_t>(b.slab->f_halo_doubles()));
  for (auto _ : state) {
    b.slab->extract_f_halo(Side::right, buf);
    b.slab->insert_f_halo(Side::left, buf);
  }
  state.SetBytesProcessed(state.iterations() * 2 *
                          static_cast<long long>(buf.size()) * 8);
}
BENCHMARK(BM_FHaloPackUnpack);

void BM_PlaneMigration(benchmark::State& state) {
  Box b(FluidParams::microchannel_defaults());
  std::vector<double> buf(
      static_cast<std::size_t>(b.slab->migration_doubles(1)));
  for (auto _ : state) {
    b.slab->detach_planes(Side::right, 1, buf);
    b.slab->attach_planes(Side::right, 1, buf);
  }
  state.SetBytesProcessed(state.iterations() * 2 *
                          static_cast<long long>(buf.size()) * 8);
}
BENCHMARK(BM_PlaneMigration);

// --- hybrid runner: blocking vs overlapped halo exchange --------------
// The perf box split across 4 ThreadComm rank-threads, stepping the real
// ParallelLbm. Only run() is timed (manual time, max over ranks via the
// closing barrier); setup and teardown stay outside. The blocking /
// overlap pair at T=1 is the repo's communication-overlap claim; the
// T=2 / T=4 variants add the intra-rank interior sweep threads.

void BM_ParallelPhase(benchmark::State& state, sim::StepMode step,
                      int threads) {
  constexpr int kRanks = 4;
  constexpr int kPhasesPerIter = 10;
  sim::RunnerConfig cfg;
  cfg.global = kPerfBox;
  cfg.fluid = FluidParams::microchannel_defaults();
  cfg.policy = "none";
  cfg.step = step;
  cfg.threads = threads;
  for (auto _ : state) {
    double seconds = 0.0;
    transport::run_ranks(kRanks, [&](transport::Communicator& c) {
      sim::ParallelLbm run(cfg, c);
      run.initialize_uniform();
      c.barrier();
      const auto t0 = std::chrono::steady_clock::now();
      run.run(kPhasesPerIter);
      c.barrier();  // closes when the slowest rank finished
      if (c.rank() == 0)
        seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    });
    state.SetIterationTime(seconds);
  }
  const auto cells = static_cast<long long>(kPerfBox.cells()) *
                     kPhasesPerIter * state.iterations();
  state.SetItemsProcessed(cells);
  state.counters["MLUPS"] = benchmark::Counter(
      static_cast<double>(cells) / 1e6, benchmark::Counter::kIsRate);
}

void BM_ParallelPhase_Blocking(benchmark::State& state) {
  BM_ParallelPhase(state, sim::StepMode::blocking, 1);
}
BENCHMARK(BM_ParallelPhase_Blocking)->UseManualTime();

void BM_ParallelPhase_Overlap_T1(benchmark::State& state) {
  BM_ParallelPhase(state, sim::StepMode::overlap, 1);
}
BENCHMARK(BM_ParallelPhase_Overlap_T1)->UseManualTime();

void BM_ParallelPhase_Overlap_T2(benchmark::State& state) {
  BM_ParallelPhase(state, sim::StepMode::overlap, 2);
}
BENCHMARK(BM_ParallelPhase_Overlap_T2)->UseManualTime();

void BM_ParallelPhase_Overlap_T4(benchmark::State& state) {
  BM_ParallelPhase(state, sim::StepMode::overlap, 4);
}
BENCHMARK(BM_ParallelPhase_Overlap_T4)->UseManualTime();

// Same overlapped phase loop, but halos ride ShmComm's shared-memory
// rings instead of ThreadComm's in-process mailboxes — the cost of the
// real wire format (frames, rings, spin-then-yield waits) with zero
// process-launch overhead in the timed region.
void BM_ParallelPhase_Shm(benchmark::State& state) {
  constexpr int kRanks = 4;
  constexpr int kPhasesPerIter = 10;
  sim::RunnerConfig cfg;
  cfg.global = kPerfBox;
  cfg.fluid = FluidParams::microchannel_defaults();
  cfg.policy = "none";
  for (auto _ : state) {
    double seconds = 0.0;
    transport::run_ranks_shm(kRanks, [&](transport::Communicator& c) {
      sim::ParallelLbm run(cfg, c);
      run.initialize_uniform();
      c.barrier();
      const auto t0 = std::chrono::steady_clock::now();
      run.run(kPhasesPerIter);
      c.barrier();  // closes when the slowest rank finished
      if (c.rank() == 0)
        seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    });
    state.SetIterationTime(seconds);
  }
  const auto cells = static_cast<long long>(kPerfBox.cells()) *
                     kPhasesPerIter * state.iterations();
  state.SetItemsProcessed(cells);
  state.counters["MLUPS"] = benchmark::Counter(
      static_cast<double>(cells) / 1e6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ParallelPhase_Shm)->UseManualTime();

void BM_PlanBuild(benchmark::State& state) {
  // the cost a migration adds outside the remap span: one O(owned cells)
  // classification pass over the perf box
  const auto geom = std::make_shared<const ChannelGeometry>(kPerfBox);
  for (auto _ : state)
    benchmark::DoNotOptimize(StreamingPlan(*geom, 0, kPerfBox.nx));
  state.SetItemsProcessed(state.iterations() * kPerfBox.cells());
}
BENCHMARK(BM_PlanBuild);

/// Console reporter that also captures each run's MLUPS counter, so the
/// summary json and the CI speedup guard read real measured numbers.
class MlupsReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const auto& run : report) {
      const auto it = run.counters.find("MLUPS");
      if (it != run.counters.end())
        mlups_[run.benchmark_name()] = it->second.value;
    }
    ConsoleReporter::ReportRuns(report);
  }

  double get(const std::string& name) const {
    // prefer the median under --benchmark_repetitions, then the
    // manual-time suffix, then the bare name
    for (const char* suffix :
         {"/manual_time_median", "_median", "/manual_time", ""}) {
      const auto it = mlups_.find(name + suffix);
      if (it != mlups_.end()) return it->second;
    }
    return 0.0;
  }
  const std::map<std::string, double>& all() const { return mlups_; }

 private:
  std::map<std::string, double> mlups_;
};

}  // namespace

int main(int argc, char** argv) {
  // split our flags from google-benchmark's
  std::string json_flag;
  double require_speedup = 0.0;
  double require_overlap_speedup = 0.0;
  double require_tile_speedup = 0.0;
  std::vector<char*> bargs{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--json=", 0) == 0)
      json_flag = a;
    else if (a.rfind("--require-speedup=", 0) == 0)
      require_speedup = std::stod(a.substr(18));
    else if (a.rfind("--require-overlap-speedup=", 0) == 0)
      require_overlap_speedup = std::stod(a.substr(26));
    else if (a.rfind("--require-tile-speedup=", 0) == 0)
      require_tile_speedup = std::stod(a.substr(23));
    else
      bargs.push_back(argv[i]);
  }

  // Pin scalar for every statically registered bench so the plan/legacy
  // comparison keeps measuring the untiled reference path; only the
  // per-backend benches below switch backends, inside their own bodies.
  const KernelBackend default_backend = default_kernel_backend();
  set_kernel_backend(KernelBackend::scalar);
  const std::vector<KernelBackend> backends = supported_kernel_backends();
  for (KernelBackend b : backends) {
    const std::string name =
        std::string("BM_FullPhase_TwoComponent_Backend_") + to_string(b);
    benchmark::RegisterBenchmark(name.c_str(), [b](benchmark::State& s) {
      BM_FullPhase_TwoComponent_Backend(s, b);
    });
  }

  int bargc = static_cast<int>(bargs.size());
  benchmark::Initialize(&bargc, bargs.data());
  if (benchmark::ReportUnrecognizedArguments(bargc, bargs.data())) return 1;

  MlupsReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  const double legacy = reporter.get("BM_FullPhase_TwoComponent_Legacy");
  const double plan = reporter.get("BM_FullPhase_TwoComponent_Plan");
  const double speedup = legacy > 0.0 ? plan / legacy : 0.0;
  const double blocking = reporter.get("BM_ParallelPhase_Blocking");
  const double overlap = reporter.get("BM_ParallelPhase_Overlap_T1");
  const double overlap_speedup = blocking > 0.0 ? overlap / blocking : 0.0;

  // best SIMD tile backend vs the scalar plan path (the tile-kernel claim)
  double best_tile = 0.0;
  std::string best_tile_name = "none";
  for (KernelBackend b : backends) {
    if (b == KernelBackend::scalar) continue;
    const double m = reporter.get(
        std::string("BM_FullPhase_TwoComponent_Backend_") + to_string(b));
    if (m > best_tile) {
      best_tile = m;
      best_tile_name = to_string(b);
    }
  }
  const double tile_speedup = plan > 0.0 ? best_tile / plan : 0.0;

  const char* summary_argv[] = {argv[0], json_flag.c_str()};
  const auto opts = util::Options::parse(json_flag.empty() ? 1 : 2,
                                         summary_argv);
  bench::Summary summary("micro_lbm_kernels");
  for (const auto& [name, v] : reporter.all()) summary.add("mlups/" + name, v);
  summary.add("mlups_legacy", legacy);
  summary.add("mlups_plan", plan);
  summary.add("plan_speedup", speedup);
  summary.add("require_speedup", require_speedup);
  summary.add("mlups_blocking_4ranks", blocking);
  summary.add("mlups_overlap_4ranks", overlap);
  summary.add("mlups_shm_4ranks", reporter.get("BM_ParallelPhase_Shm"));
  summary.add("overlap_speedup", overlap_speedup);
  summary.add("require_overlap_speedup", require_overlap_speedup);
  for (KernelBackend b : backends)
    summary.add(std::string("mlups_backend_") + to_string(b),
                reporter.get(std::string("BM_FullPhase_TwoComponent_Backend_") +
                             to_string(b)));
  summary.add("tile_speedup", tile_speedup);
  summary.add("require_tile_speedup", require_tile_speedup);
  summary.add("bytes_per_cell_two_component", bytes_per_cell(2));
  std::fprintf(stdout, "kernel backend default: %s; best tile backend: %s\n",
               to_string(default_backend), best_tile_name.c_str());
  summary.write(opts);

  if (require_speedup > 0.0) {
    if (legacy <= 0.0 || plan <= 0.0) {
      std::fprintf(stderr,
                   "perf guard: full-phase pair missing from the run "
                   "(check --benchmark_filter)\n");
      return 1;
    }
    std::printf("perf guard: plan %.1f MLUPS vs legacy %.1f MLUPS "
                "(%.2fx, required %.2fx)\n",
                plan, legacy, speedup, require_speedup);
    if (speedup < require_speedup) {
      std::fprintf(stderr, "perf guard FAILED: %.2fx < %.2fx\n", speedup,
                   require_speedup);
      return 1;
    }
  }
  if (require_overlap_speedup > 0.0) {
    if (blocking <= 0.0 || overlap <= 0.0) {
      std::fprintf(stderr,
                   "overlap guard: 4-rank pair missing from the run "
                   "(check --benchmark_filter)\n");
      return 1;
    }
    std::printf("overlap guard: overlap %.1f MLUPS vs blocking %.1f MLUPS "
                "(%.2fx, required %.2fx)\n",
                overlap, blocking, overlap_speedup, require_overlap_speedup);
    if (overlap_speedup < require_overlap_speedup) {
      std::fprintf(stderr, "overlap guard FAILED: %.2fx < %.2fx\n",
                   overlap_speedup, require_overlap_speedup);
      return 1;
    }
  }
  if (require_tile_speedup > 0.0) {
    if (plan <= 0.0 || best_tile <= 0.0) {
      std::fprintf(stderr,
                   "tile guard: plan/backend benches missing from the run "
                   "(check --benchmark_filter and SIMD support)\n");
      return 1;
    }
    std::printf("tile guard: %s %.1f MLUPS vs scalar plan %.1f MLUPS "
                "(%.2fx, required %.2fx)\n",
                best_tile_name.c_str(), best_tile, plan, tile_speedup,
                require_tile_speedup);
    if (tile_speedup < require_tile_speedup) {
      std::fprintf(stderr, "tile guard FAILED: %.2fx < %.2fx\n", tile_speedup,
                   require_tile_speedup);
      return 1;
    }
  }
  return 0;
}
