/// Extension experiment: remapping schemes under *trace-driven* load, as
/// a function of load persistence.
///
/// The paper evaluates two extremes: permanently slow nodes (remapping
/// wins big) and seconds-long random spikes (remapping cannot help, lazy
/// filtering merely avoids harm). Production host load sits in between:
/// autocorrelated busy episodes (the paper's refs [9, 44, 46]). This
/// bench replays synthetic two-state episode traces on every node and
/// sweeps the mean episode length, exposing the crossover: remapping
/// pays off once load persistence exceeds the adaptation horizon
/// (prediction window x remap interval). Real traces can be swapped in
/// via TraceLoad::from_csv.
///
///   usage: ablation_trace_replay [--phases=600] [--seeds=3] [--busy=0.25]
///          [--csv=path]

#include "bench_common.hpp"
#include "cluster/scenario.hpp"

using namespace slipflow;
using namespace slipflow::cluster;

int main(int argc, char** argv) {
  const auto opts = util::Options::parse(argc, argv);
  const int phases = static_cast<int>(opts.get("phases", 600LL));
  const int seeds = static_cast<int>(opts.get("seeds", 3LL));
  const double busy = opts.get("busy", 0.25);
  const std::string csv = opts.get("csv", std::string{});
  (void)csv;
  bench::check_options(opts);

  ClusterSim base(paper::base_config(), balance::RemapPolicy::create("none"));
  const double dedicated = base.run(phases).makespan;

  util::Table table("Trace-replay workload — slowdown (%) vs dedicated, by "
                    "mean busy-episode length (" + std::to_string(phases) +
                    " phases, busy fraction " + util::format_number(busy) +
                    ", " + std::to_string(seeds) + " seeds)");
  table.header({"mean_episode_s", "no_remap", "filtered", "conservative",
                "global", "filtered_migrations"});

  // per-sample end probability 2s/episode_len (samples every 2 s)
  for (double episode_s : {10.0, 40.0, 160.0, 640.0}) {
    const double end_prob = std::min(1.0, 2.0 / episode_s * 2.0);
    std::vector<util::Cell> row{episode_s};
    long long filtered_migrations = 0;
    for (const char* policy :
         {"none", "filtered", "conservative", "global"}) {
      double total = 0.0;
      for (int seed = 1; seed <= seeds; ++seed) {
        ClusterSim sim(paper::base_config(),
                       balance::RemapPolicy::create(policy));
        util::Rng rng(static_cast<std::uint64_t>(seed) * 7919 +
                      static_cast<std::uint64_t>(episode_s));
        const double horizon = 8.0 * dedicated;
        for (int node = 0; node < paper::kNodes; ++node) {
          sim.node(node).add_load(std::make_unique<TraceLoad>(
              synthetic_trace(horizon, 2.0, rng, busy, 1.5, end_prob)));
        }
        const auto r = sim.run(phases);
        total += r.makespan;
        if (policy == std::string("filtered"))
          filtered_migrations += r.migration_events;
      }
      row.push_back(100.0 * (total / seeds - dedicated) / dedicated);
    }
    row.push_back(filtered_migrations / seeds);
    table.row(std::move(row));
  }
  bench::emit(table, opts);
  bench::Summary summary("ablation_trace_replay");
  summary.add_table("results", table);
  summary.write(opts);

  std::cout << "expected: for short episodes no-remapping is already near "
               "optimal and lazy filtering limits the damage; as episodes "
               "lengthen past the adaptation horizon, filtered remapping "
               "pulls ahead while global keeps paying collective costs.\n";
  return 0;
}
