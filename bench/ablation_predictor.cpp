/// Ablation: load-index predictor choice (Section 3.4).
///
/// The paper argues that predictors chasing the most recent sample cause
/// "migration oscillation" when the cluster sharing pattern changes
/// rapidly, and picks the harmonic mean of the last K phases instead.
/// This bench drives one node with a rapidly alternating background job
/// and reports execution time and migration churn per predictor.
///
///   usage: ablation_predictor [--phases=600] [--csv=path]

#include "bench_common.hpp"
#include "cluster/scenario.hpp"

using namespace slipflow;
using namespace slipflow::cluster;

int main(int argc, char** argv) {
  const auto opts = util::Options::parse(argc, argv);
  const int phases = static_cast<int>(opts.get("phases", 600LL));
  const std::string csv = opts.get("csv", std::string{});
  (void)csv;
  bench::check_options(opts);

  util::Table table("Ablation — predictor under rapidly alternating load "
                    "(one node busy 50% of every 4 s)");
  table.header({"predictor", "exec_time_s", "migration_events",
                "planes_moved"});

  for (const char* pred : {"harmonic", "arithmetic", "ewma", "last"}) {
    ClusterConfig cfg = paper::base_config();
    cfg.balance.predictor = pred;
    ClusterSim sim(cfg, balance::RemapPolicy::create("filtered"));
    // fast alternation: 2 s busy / 2 s idle — the oscillation trigger
    sim.node(paper::kProfiledSlowNode)
        .add_load(std::make_unique<PeriodicLoad>(paper::kSlowJobWeight, 4.0,
                                                 0.5));
    const auto r = sim.run(phases);
    table.row({std::string(pred), r.makespan, r.migration_events,
               r.planes_moved});
  }
  bench::emit(table, opts);
  bench::Summary summary("ablation_predictor");
  summary.add_table("results", table);
  summary.write(opts);

  std::cout << "expected: the harmonic mean migrates least (lazy); "
               "most-recent-data predictors churn planes back and forth.\n";
  return 0;
}
