/// Ablation: how much of the computed imbalance to actually ship.
///
/// Conservative load sharing ships delta/2 ("a light node may be
/// considered light by everybody"); the paper's over-redistribution
/// ships beta * delta with beta = S_recv / S_me. This bench sweeps the
/// conservative factor and the over-redistribution cap with one slow
/// node. The paper reports filtered beating conservative by up to 39%.
///
///   usage: ablation_overredistribution [--phases=600] [--csv=path]

#include "bench_common.hpp"
#include "cluster/scenario.hpp"

using namespace slipflow;
using namespace slipflow::cluster;

int main(int argc, char** argv) {
  const auto opts = util::Options::parse(argc, argv);
  const int phases = static_cast<int>(opts.get("phases", 600LL));
  const std::string csv = opts.get("csv", std::string{});
  (void)csv;
  bench::check_options(opts);

  util::Table table("Ablation — redistribution aggressiveness, one slow "
                    "node, " + std::to_string(phases) + " phases");
  table.header({"scheme", "exec_time_s", "migration_events",
                "slow_node_planes_end"});

  auto run_one = [&](const std::string& label, const char* policy,
                     double factor_or_cap) {
    ClusterConfig cfg = paper::base_config();
    if (std::string(policy) == "conservative")
      cfg.balance.conservative_factor = factor_or_cap;
    else
      cfg.balance.over_redistribution_cap = factor_or_cap;
    ClusterSim sim(cfg, balance::RemapPolicy::create(policy));
    add_fixed_slow_nodes(sim, {paper::kProfiledSlowNode});
    const auto r = sim.run(phases);
    table.row({label, r.makespan, r.migration_events,
               r.profile[paper::kProfiledSlowNode].planes_end});
  };

  run_one("conservative delta/4", "conservative", 0.25);
  run_one("conservative delta/2 (paper)", "conservative", 0.5);
  run_one("conservative delta", "conservative", 1.0);
  run_one("filtered beta cap 1 (=delta)", "filtered", 1.0);
  run_one("filtered beta cap 2", "filtered", 2.0);
  run_one("filtered beta cap 4 (paper-like)", "filtered", 4.0);
  run_one("filtered beta cap 8", "filtered", 8.0);
  bench::emit(table, opts);
  bench::Summary summary("ablation_overredistribution");
  summary.add_table("results", table);
  summary.write(opts);

  std::cout << "expected: aggressive shipping drains the slow node in one "
               "or two remap rounds and wins; conservative converges "
               "slowly and keeps the slow node's communication on the "
               "critical path.\n";
  return 0;
}
