/// Extension experiment: statically heterogeneous cluster.
///
/// The paper's slow nodes are *externally loaded* homogeneous machines;
/// another common production reality is mixed hardware generations. The
/// same remapping machinery should discover static speed differences and
/// converge to a proportional distribution once, with no further churn.
///
///   usage: ablation_heterogeneous [--phases=600] [--csv=path]

#include "bench_common.hpp"
#include "cluster/scenario.hpp"

using namespace slipflow;
using namespace slipflow::cluster;

int main(int argc, char** argv) {
  const auto opts = util::Options::parse(argc, argv);
  const int phases = static_cast<int>(opts.get("phases", 600LL));
  const std::string csv = opts.get("csv", std::string{});
  (void)csv;
  bench::check_options(opts);

  // half the cluster is older hardware at 60% of the reference speed
  auto configure = [](ClusterSim& sim) {
    for (int i = 0; i < paper::kNodes; ++i)
      if (i % 2 == 1) sim.node(i) = VirtualNode(0.6);
  };

  util::Table table("Heterogeneous cluster (odd nodes at 0.6x speed), " +
                    std::to_string(phases) + " phases");
  table.header({"scheme", "exec_time_s", "speedup", "migrations",
                "planes_moved"});

  for (const char* policy : {"none", "conservative", "filtered", "global"}) {
    ClusterSim sim(paper::base_config(),
                   balance::RemapPolicy::create(policy));
    configure(sim);
    const auto r = sim.run(phases);
    table.row({std::string(policy), r.makespan,
               sim.sequential_time(phases) / r.makespan, r.migration_events,
               r.planes_moved});
  }
  bench::emit(table, opts);
  bench::Summary summary("ablation_heterogeneous");
  summary.add_table("results", table);
  summary.write(opts);

  std::cout << "finding: this regime inverts the paper's ranking. The "
               "filtered scheme is tuned for *externally loaded* nodes "
               "whose communication degrades with their CPU share; under "
               "pure static speed heterogeneity the slower nodes "
               "communicate at full speed, so over-redistribution "
               "overshoots and the never-fast-to-slow filter then blocks "
               "the return flow. Conservative halving and the global "
               "proportional assignment converge to the right static "
               "distribution instead. (Set balance.allow_fast_to_slow to "
               "relax the filter for such clusters.)\n";
  return 0;
}
