/// Reproduces Figure 3: "Increased time caused by competing jobs."
///
/// One node of a 20-node cluster runs a periodic CPU-intensive competing
/// job (10 s period, busy a sweep of duty-cycle fractions); the parallel
/// LBM runs 600 phases with NO remapping. The paper reports ~250 s at
/// zero disturbance, a near-linear overhead increase up to ~60% duty
/// cycle and a sharp increase beyond it (~190% overhead at 100%).
///
///   usage: fig03_disturbance [--phases=600] [--nodes=20] [--csv=path]

#include "bench_common.hpp"
#include "cluster/scenario.hpp"

using namespace slipflow;
using namespace slipflow::cluster;

int main(int argc, char** argv) {
  const auto opts = util::Options::parse(argc, argv);
  const int phases = static_cast<int>(opts.get("phases", 600LL));
  const int nodes = static_cast<int>(opts.get("nodes", 20LL));
  const std::string csv = opts.get("csv", std::string{});
  (void)csv;
  bench::check_options(opts);

  util::Table table(
      "Figure 3 — execution time and per-phase overhead vs disturbance "
      "(1 disturbed node, " + std::to_string(phases) + " phases, no remapping)");
  table.header({"disturbance", "exec_time_s", "overhead_pct"});

  double baseline = 0.0;
  for (int pct = 0; pct <= 100; pct += 10) {
    ClusterSim sim(paper::base_config(nodes),
                   balance::RemapPolicy::create("none"));
    if (pct > 0)
      add_periodic_disturbance(sim, paper::kProfiledSlowNode, pct / 100.0);
    const double t = sim.run(phases).makespan;
    if (pct == 0) baseline = t;
    table.row({pct / 100.0, t, 100.0 * (t - baseline) / baseline});
  }
  bench::emit(table, opts);
  bench::Summary summary("fig03_disturbance");
  summary.add_table("rows", table);
  summary.write(opts);

  std::cout << "paper: ~250 s dedicated; overhead close to linear below "
               "60% disturbance, sharply increasing after (roughly 190% at "
               "100%).\n";
  return 0;
}
