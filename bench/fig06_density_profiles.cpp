/// Reproduces Figure 6: fluid densities near the side wall.
///
/// Runs the two-component hydrophobic microchannel (paper: 2 x 1 x 0.1
/// micron at 400x200x20; here a resolution-reduced box with the same
/// 40:20:2 aspect — see DESIGN.md) and prints the water and air/vapor
/// density profiles along y at the channel mid-cross-section. The paper
/// shows water density *decreased* and air density *increased* within
/// ~40 nm of the wall.
///
/// Runs on two ranks of the real parallel code (ThreadComm).
///
///   usage: fig06_density_profiles [--ny=20] [--steps=1500] [--ranks=2]
///                                 [--csv=path]

#include <mutex>

#include "bench_common.hpp"
#include "lbm/observables.hpp"
#include "sim/parallel_lbm.hpp"
#include "transport/thread_comm.hpp"

using namespace slipflow;
using namespace slipflow::lbm;

int main(int argc, char** argv) {
  const auto opts = util::Options::parse(argc, argv);
  const index_t ny = opts.get("ny", 20LL);
  const int steps = static_cast<int>(opts.get("steps", 1500LL));
  const int ranks = static_cast<int>(opts.get("ranks", 2LL));
  const std::string csv = opts.get("csv", std::string{});
  (void)csv;
  bench::check_options(opts);

  // Geometry note (DESIGN.md): at reduced resolution the force decay
  // cannot be made as thin relative to the channel as the paper's
  // (10-30 nm on a 1 um width). We therefore preserve the paper's
  // decay-to-depth ratio (~0.25) instead of the raw 10:1 width:depth
  // aspect; that keeps the top/bottom walls forcing the same fraction of
  // the depth as in the paper.
  const Extents grid{2 * ny, ny, std::max<index_t>(ny / 2, 4)};
  const double nm_per_cell = 1000.0 / static_cast<double>(ny);  // 1 um width

  sim::RunnerConfig cfg;
  cfg.global = grid;
  cfg.fluid = FluidParams::microchannel_defaults();
  cfg.policy = "none";

  std::vector<double> water, air;
  std::mutex mu;
  transport::run_ranks(ranks, [&](transport::Communicator& comm) {
    sim::ParallelLbm run(cfg, comm);
    run.initialize_uniform();
    run.run(steps);
    auto w = run.gather_density_profile_y(0, grid.nx / 2, grid.nz / 2);
    auto a = run.gather_density_profile_y(1, grid.nx / 2, grid.nz / 2);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      water = std::move(w);
      air = std::move(a);
    }
  });

  util::Table table(
      "Figure 6 — densities vs distance from the side wall (x = L/2, "
      "z = mid-depth, " + std::to_string(steps) + " phases)");
  // The air column is normalized by the *initial* dissolved concentration
  // (the paper normalizes by standard-condition density); at reduced
  // resolution the trace gas segregates to the walls more strongly than
  // in the paper, so bulk-normalization would divide by ~0.
  table.header({"dist_from_wall_nm", "water_density", "air_density",
                "water_over_bulk", "air_over_initial"});
  const double wbulk = water[static_cast<std::size_t>(ny / 2)];
  const double ainit = cfg.fluid.components[1].init_density;
  for (index_t j = 0; j <= ny / 2; ++j) {
    const auto ju = static_cast<std::size_t>(j);
    table.row({(static_cast<double>(j) + 0.5) * nm_per_cell, water[ju],
               air[ju], water[ju] / wbulk, air[ju] / ainit});
  }
  bench::emit(table, opts);
  bench::Summary summary("fig06_density_profiles");
  summary.add_table("profiles", table);
  summary.write(opts);

  std::cout << "paper (Fig 6): water density decreased and air/vapor "
               "density increased within ~40 nm of the hydrophobic wall.\n"
            << "measured: wall water/bulk = " << water.front() / wbulk
            << ", wall air/initial = " << air.front() / ainit << "\n";
  return 0;
}
