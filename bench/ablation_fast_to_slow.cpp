/// Ablation: the "never move points from a fast node to a slow node"
/// filter (Section 3.3).
///
/// Pure triplet balancing would top a drained slow node back up whenever
/// it looks underloaded; the paper's filter forbids that because a slow
/// node also communicates sluggishly. Compare filtered remapping with
/// the rule on (paper) and off, with the rule's cost magnified by using
/// several slow nodes.
///
///   usage: ablation_fast_to_slow [--phases=600] [--csv=path]

#include "bench_common.hpp"
#include "cluster/scenario.hpp"

using namespace slipflow;
using namespace slipflow::cluster;

int main(int argc, char** argv) {
  const auto opts = util::Options::parse(argc, argv);
  const int phases = static_cast<int>(opts.get("phases", 600LL));
  const std::string csv = opts.get("csv", std::string{});
  (void)csv;
  bench::check_options(opts);

  util::Table table("Ablation — fast-to-slow migration rule, filtered "
                    "remapping, " + std::to_string(phases) + " phases");
  table.header({"slow_nodes", "rule_on_time_s", "rule_off_time_s",
                "rule_on_migrations", "rule_off_migrations"});

  for (int m : {1, 2, 3, 5}) {
    double time[2];
    long long mig[2];
    int i = 0;
    for (bool allow : {false, true}) {
      ClusterConfig cfg = paper::base_config();
      cfg.balance.allow_fast_to_slow = allow;
      ClusterSim sim(cfg, balance::RemapPolicy::create("filtered"));
      add_fixed_slow_nodes(sim, paper::slow_node_set(m));
      const auto r = sim.run(phases);
      time[i] = r.makespan;
      mig[i] = r.migration_events;
      ++i;
    }
    table.row({static_cast<long long>(m), time[0], time[1], mig[0], mig[1]});
  }
  bench::emit(table, opts);
  bench::Summary summary("ablation_fast_to_slow");
  summary.add_table("results", table);
  summary.write(opts);

  std::cout << "expected: disabling the rule lets planes flow back onto "
               "slow nodes (more migrations, slower runs).\n";
  return 0;
}
