/// Ablation: the remapping interval (Figure 2's REMAPPING_INTERVAL).
///
/// Frequent remapping reacts faster but pays synchronization and
/// migration cost and is jumpier; rare remapping leaves imbalance in
/// place. Sweep with one slow node.
///
///   usage: ablation_remap_interval [--phases=600] [--csv=path]

#include "bench_common.hpp"
#include "cluster/scenario.hpp"

using namespace slipflow;
using namespace slipflow::cluster;

int main(int argc, char** argv) {
  const auto opts = util::Options::parse(argc, argv);
  const int phases = static_cast<int>(opts.get("phases", 600LL));
  const std::string csv = opts.get("csv", std::string{});
  (void)csv;
  bench::check_options(opts);

  util::Table table("Ablation — remapping interval (phases), one slow "
                    "node, filtered remapping");
  table.header({"interval", "exec_time_s", "migration_events"});

  for (int interval : {2, 5, 10, 20, 50, 100, 300}) {
    ClusterConfig cfg = paper::base_config();
    cfg.remap_interval = interval;
    // the prediction window cannot be longer than the history available
    // between decisions, but phases keep recording regardless; keep the
    // paper's window
    ClusterSim sim(cfg, balance::RemapPolicy::create("filtered"));
    add_fixed_slow_nodes(sim, {paper::kProfiledSlowNode});
    const auto r = sim.run(phases);
    table.row({static_cast<long long>(interval), r.makespan,
               r.migration_events});
  }
  bench::emit(table, opts);
  bench::Summary summary("ablation_remap_interval");
  summary.add_table("results", table);
  summary.write(opts);

  std::cout << "expected: a broad optimum around the paper's ~10 phases; "
               "very rare remapping approaches the no-remap time.\n";
  return 0;
}
