/// Dedicated-cluster scaling (Section 4.2 text): "With a dedicated
/// cluster, our parallel code achieves almost full linear speedup when
/// varying the number of nodes. The speedup is 18.97 with 20 nodes."
///
///   usage: ablation_scaling [--phases=600] [--csv=path]

#include "bench_common.hpp"
#include "cluster/scenario.hpp"

using namespace slipflow;
using namespace slipflow::cluster;

int main(int argc, char** argv) {
  const auto opts = util::Options::parse(argc, argv);
  const int phases = static_cast<int>(opts.get("phases", 600LL));
  const std::string csv = opts.get("csv", std::string{});
  (void)csv;
  bench::check_options(opts);

  util::Table table("Dedicated scaling — speedup vs nodes (" +
                    std::to_string(phases) + " phases)");
  table.header({"nodes", "exec_time_s", "speedup", "efficiency"});

  for (int n : {1, 2, 4, 8, 10, 16, 20, 25, 32}) {
    ClusterSim sim(paper::base_config(n),
                   balance::RemapPolicy::create("none"));
    const auto r = sim.run(phases);
    const double sp = sim.sequential_time(phases) / r.makespan;
    table.row({static_cast<long long>(n), r.makespan, sp, sp / n});
  }
  bench::emit(table, opts);
  bench::Summary summary("ablation_scaling");
  summary.add_table("results", table);
  summary.write(opts);

  std::cout << "paper: almost full linear speedup; 18.97 at 20 nodes.\n";
  return 0;
}
