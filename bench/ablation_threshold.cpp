/// Ablation: the minimum-transfer threshold (Section 3.4).
///
/// The paper sets the threshold to one 200x20 yz-plane (4000 lattice
/// points) — "we don't move a small number of points". This bench sweeps
/// the threshold with one fixed slow node and reports time and churn.
///
///   usage: ablation_threshold [--phases=600] [--csv=path]

#include "bench_common.hpp"
#include "cluster/scenario.hpp"

using namespace slipflow;
using namespace slipflow::cluster;

int main(int argc, char** argv) {
  const auto opts = util::Options::parse(argc, argv);
  const int phases = static_cast<int>(opts.get("phases", 600LL));
  const std::string csv = opts.get("csv", std::string{});
  (void)csv;
  bench::check_options(opts);

  util::Table table("Ablation — migration threshold (points), one slow "
                    "node, filtered remapping");
  table.header({"threshold_points", "exec_time_s", "migration_events",
                "planes_moved"});

  for (long long thr : {1000LL, 2000LL, 4000LL, 8000LL, 16000LL, 40000LL}) {
    ClusterConfig cfg = paper::base_config();
    cfg.balance.min_transfer_points = thr;
    ClusterSim sim(cfg, balance::RemapPolicy::create("filtered"));
    add_fixed_slow_nodes(sim, {paper::kProfiledSlowNode});
    const auto r = sim.run(phases);
    table.row({thr, r.makespan, r.migration_events, r.planes_moved});
  }
  bench::emit(table, opts);
  bench::Summary summary("ablation_threshold");
  summary.add_table("results", table);
  summary.write(opts);

  std::cout << "expected: too-large thresholds leave the slow node "
               "overloaded; the paper's 4000 (one plane) is near the "
               "sweet spot.\n";
  return 0;
}
