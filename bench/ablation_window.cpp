/// Ablation: prediction window size K (the paper uses K = 10).
///
/// The window sets both the confidence gate (no migration before K
/// samples) and the laziness of the harmonic-mean load index. Sweep it
/// under (a) one persistent slow node — larger K only delays adaptation
/// — and (b) transient spikes — smaller K starts chasing noise.
///
///   usage: ablation_window [--phases=600] [--csv=path]

#include "bench_common.hpp"
#include "cluster/scenario.hpp"

using namespace slipflow;
using namespace slipflow::cluster;

int main(int argc, char** argv) {
  const auto opts = util::Options::parse(argc, argv);
  const int phases = static_cast<int>(opts.get("phases", 600LL));
  const std::string csv = opts.get("csv", std::string{});
  (void)csv;
  bench::check_options(opts);

  util::Table table("Ablation — prediction window K, filtered remapping, " +
                    std::to_string(phases) + " phases");
  table.header({"window", "persistent_time_s", "persistent_migrations",
                "spiky_time_s", "spiky_migrations"});

  for (int window : {2, 5, 10, 20, 40}) {
    ClusterConfig cfg = paper::base_config();
    cfg.balance.window = window;

    ClusterSim persistent(cfg, balance::RemapPolicy::create("filtered"));
    add_fixed_slow_nodes(persistent, {paper::kProfiledSlowNode});
    const auto rp = persistent.run(phases);

    ClusterSim spiky(cfg, balance::RemapPolicy::create("filtered"));
    add_transient_spikes(spiky, 4.0 * rp.makespan, 2.0,
                         paper::kDisturbancePeriod, 3);
    const auto rs = spiky.run(phases);

    table.row({static_cast<long long>(window), rp.makespan,
               rp.migration_events, rs.makespan, rs.migration_events});
  }
  bench::emit(table, opts);
  bench::Summary summary("ablation_window");
  summary.add_table("results", table);
  summary.write(opts);

  std::cout << "expected: K near the paper's 10 balances fast adaptation "
               "to persistent slowness against immunity to short spikes.\n";
  return 0;
}
