#pragma once
/// \file bench_common.hpp
/// Shared plumbing for the figure/table reproduction harnesses: option
/// handling and uniform output (aligned table to stdout, optional CSV).

#include <cstdlib>
#include <iostream>

#include "util/options.hpp"
#include "util/table.hpp"

namespace slipflow::bench {

/// Print the table and, when --csv=<path> was given, also save it.
inline void emit(const util::Table& table, const util::Options& opts) {
  table.print(std::cout);
  const std::string csv = opts.get("csv", std::string{});
  if (!csv.empty()) {
    table.save_csv(csv);
    std::cout << "(csv written to " << csv << ")\n";
  }
  std::cout << "\n";
}

/// Fail fast on mistyped options.
inline void check_options(const util::Options& opts) {
  const auto unused = opts.unused_keys();
  if (!unused.empty()) {
    std::cerr << "unknown option(s):";
    for (const auto& k : unused) std::cerr << " --" << k;
    std::cerr << "\n";
    std::exit(2);
  }
}

}  // namespace slipflow::bench
