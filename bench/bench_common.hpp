#pragma once
/// \file bench_common.hpp
/// Shared plumbing for the figure/table reproduction harnesses: option
/// handling, uniform output (aligned table to stdout, optional CSV), and
/// the machine-readable summary every harness emits.
///
/// Summary convention: each harness builds a bench::Summary and calls
/// write(opts) at the end, producing `BENCH_<name>.json` in the working
/// directory (override with --json=<path>, disable with --json=none).
/// These files are the replayable trajectory of the repo's performance
/// claims — CI and regression tooling read them instead of scraping the
/// stdout tables.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "obs/metrics.hpp"
#include "util/json.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace slipflow::bench {

/// Print the table and, when --csv=<path> was given, also save it.
inline void emit(const util::Table& table, const util::Options& opts) {
  table.print(std::cout);
  const std::string csv = opts.get("csv", std::string{});
  if (!csv.empty()) {
    table.save_csv(csv);
    std::cout << "(csv written to " << csv << ")\n";
  }
  std::cout << "\n";
}

/// Fail fast on mistyped options.
inline void check_options(const util::Options& opts) {
  // --json is consumed later by Summary::write; every harness takes it
  (void)opts.get("json", std::string{});
  const auto unused = opts.unused_keys();
  if (!unused.empty()) {
    std::cerr << "unknown option(s):";
    for (const auto& k : unused) std::cerr << " --" << k;
    std::cerr << "\n";
    std::exit(2);
  }
}

/// Machine-readable result summary of one bench run (see file comment).
class Summary {
 public:
  explicit Summary(std::string bench_name) : name_(std::move(bench_name)) {}

  void add(const std::string& key, double v) {
    scalars_.emplace_back(key, util::json_number(v));
  }
  void add(const std::string& key, long long v) {
    scalars_.emplace_back(key, util::json_number(v));
  }
  void add(const std::string& key, const std::string& v) {
    scalars_.emplace_back(key, util::json_string(v));
  }

  /// Serialize a result table as an array of {column: value} records.
  void add_table(const std::string& key, const util::Table& t) {
    std::string json = "[";
    const auto& cols = t.column_names();
    for (std::size_t r = 0; r < t.data().size(); ++r) {
      json += r == 0 ? "\n    {" : ",\n    {";
      const auto& row = t.data()[r];
      for (std::size_t c = 0; c < row.size(); ++c) {
        if (c > 0) json += ", ";
        json += util::json_string(cols[c]) + ": ";
        if (const auto* s = std::get_if<std::string>(&row[c]))
          json += util::json_string(*s);
        else if (const auto* d = std::get_if<double>(&row[c]))
          json += util::json_number(*d);
        else
          json += util::json_number(std::get<long long>(row[c]));
      }
      json += "}";
    }
    json += "\n  ]";
    tables_.emplace_back(key, std::move(json));
  }

  /// Fold a metrics registry's counter totals into the scalars.
  void add_metrics(const obs::MetricsRegistry& reg,
                   const std::string& prefix = "metrics/") {
    for (const std::string& name : reg.counter_names())
      add(prefix + name, reg.counter_total(name));
  }

  /// Write BENCH_<name>.json (or --json=<path>; --json=none disables).
  void write(const util::Options& opts) const {
    const std::string path =
        opts.get("json", "BENCH_" + name_ + ".json");
    if (path.empty() || path == "none") return;
    std::ofstream os(path);
    if (!os) {
      std::cerr << "cannot write summary json to " << path << "\n";
      return;
    }
    os << "{\n  \"bench\": " << util::json_string(name_);
    for (const auto& [k, v] : scalars_)
      os << ",\n  " << util::json_string(k) << ": " << v;
    for (const auto& [k, v] : tables_)
      os << ",\n  " << util::json_string(k) << ": " << v;
    os << "\n}\n";
    std::cout << "(summary json written to " << path << ")\n";
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> scalars_;
  std::vector<std::pair<std::string, std::string>> tables_;
};

}  // namespace slipflow::bench
