/// Reproduces Figure 8: speedup and normalized efficiency vs the number
/// of fixed slow nodes (20 000 phases, 20 nodes, filtered dynamic
/// remapping vs no remapping).
///
/// The paper: speedup ~19 dedicated, ~16 with one slow node, still ~13
/// with five; normalized efficiency >= 0.9 below four slow nodes and 0.8
/// at five, while no-remapping collapses.
///
///   usage: fig08_speedup_efficiency [--phases=20000] [--csv=path]
///
/// --transport=socket switches to a companion measurement on this
/// machine: the same ParallelLbm phase loop timed over in-process
/// ThreadComm vs real forked slipflow_worker processes on Unix-domain
/// sockets, so the thread-vs-process transport overhead is tracked
/// across PRs (written to BENCH_fig08_socket.json).
///
///   usage: fig08_speedup_efficiency --transport=socket [--phases=150]
///            [--max-ranks=4] [--nx=48] [--ny=16] [--nz=8]
///
/// --transport=overlap measures the hybrid runner on this machine: the
/// blocking vs overlapped step schedule over ThreadComm at 1/2/4 ranks,
/// the overlapped one additionally at 1/2/4 interior-sweep threads per
/// rank, with each configuration's overlap_efficiency gauge (fraction of
/// the halo window covered by compute) alongside the wall time (written
/// to BENCH_fig08_overlap.json).
///
///   usage: fig08_speedup_efficiency --transport=overlap [--phases=150]
///            [--max-ranks=4] [--nx=48] [--ny=16] [--nz=8]
///
/// --transport=shm races the two real-process transports against each
/// other: the same forked workers over Unix-domain sockets vs over
/// shared-memory rings, best of --reps launches per point (written to
/// BENCH_fig08_shm.json). --require-shm-speedup=R exits nonzero when
/// shm fails to beat socket by factor R at the top rank count — the CI
/// guard that keeps the zero-copy path actually worth having.
///
///   usage: fig08_speedup_efficiency --transport=shm [--phases=150]
///            [--max-ranks=4] [--reps=3] [--require-shm-speedup=1.0]

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <utility>

#include "bench_common.hpp"
#include "cluster/scenario.hpp"
#include "obs/metrics.hpp"
#include "sim/parallel_lbm.hpp"
#include "transport/launcher.hpp"
#include "transport/thread_comm.hpp"

using namespace slipflow;
using namespace slipflow::cluster;

namespace {

double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The in-process reference: identical problem + policy to the worker
/// flags below, timed end to end including thread spawn/join so the
/// comparison against fork+exec+rendezvous is symmetric. `efficiency_out`
/// (optional) receives rank 0's overlap_efficiency gauge.
double time_over_threads(const lbm::Extents& global, int ranks, int phases,
                         sim::StepMode step = sim::StepMode::overlap,
                         int threads = 1, double* efficiency_out = nullptr) {
  sim::RunnerConfig cfg;
  cfg.global = global;
  cfg.fluid = lbm::FluidParams::microchannel_defaults();
  cfg.policy = "filtered";
  cfg.remap_interval = 5;
  cfg.balance.window = 3;
  cfg.balance.min_transfer_points = 24;
  cfg.step = step;
  cfg.threads = threads;
  obs::MetricsRegistry reg(ranks);
  if (efficiency_out != nullptr) cfg.metrics = &reg;
  const double t0 = wall_seconds();
  transport::run_ranks(ranks, [&](transport::Communicator& comm) {
    sim::ParallelLbm run(cfg, comm);
    run.initialize_uniform();
    run.run(phases);
  });
  const double elapsed = wall_seconds() - t0;
  if (efficiency_out != nullptr)
    *efficiency_out =
        reg.has_gauge(0, "overlap_efficiency")
            ? reg.gauge(0, "overlap_efficiency")
            : 0.0;
  return elapsed;
}

/// The hybrid-runner companion: blocking vs overlap wall time over
/// ThreadComm, the overlapped schedule also with a threaded interior
/// sweep. On a single hardware core the thread variants measure
/// scheduling overhead, not parallel speedup — the table says what it
/// measured either way.
int run_overlap_mode(const util::Options& opts) {
  const int phases = static_cast<int>(opts.get("phases", 150LL));
  const int max_ranks = static_cast<int>(opts.get("max-ranks", 4LL));
  const lbm::Extents global{opts.get("nx", 48LL), opts.get("ny", 16LL),
                            opts.get("nz", 8LL)};
  bench::check_options(opts);

  util::Table table("Figure 8 companion — blocking vs overlapped halo "
                    "exchange (" + std::to_string(phases) + " phases, " +
                    std::to_string(global.nx) + "x" +
                    std::to_string(global.ny) + "x" +
                    std::to_string(global.nz) + ")");
  table.header({"ranks", "blocking_s", "overlap_t1_s", "overlap_t2_s",
                "overlap_t4_s", "overlap_speedup", "overlap_efficiency"});

  bench::Summary summary("fig08_overlap");
  summary.add("phases", static_cast<long long>(phases));
  summary.add("nx", static_cast<long long>(global.nx));
  for (int p = 1; p <= max_ranks; p *= 2) {
    const double blocking =
        time_over_threads(global, p, phases, sim::StepMode::blocking, 1);
    double eff = 0.0;
    const double t1 = time_over_threads(global, p, phases,
                                        sim::StepMode::overlap, 1, &eff);
    const double t2 =
        time_over_threads(global, p, phases, sim::StepMode::overlap, 2);
    const double t4 =
        time_over_threads(global, p, phases, sim::StepMode::overlap, 4);
    table.row({static_cast<long long>(p), blocking, t1, t2, t4,
               t1 > 0.0 ? blocking / t1 : 0.0, eff});
    if (p == max_ranks) {
      summary.add("blocking_seconds", blocking);
      summary.add("overlap_seconds", t1);
      summary.add("overlap_speedup", t1 > 0.0 ? blocking / t1 : 0.0);
      summary.add("overlap_efficiency", eff);
    }
  }
  bench::emit(table, opts);
  summary.add_table("overlap", table);
  summary.write(opts);

  std::cout << "overlap_speedup = blocking / overlap_t1 wall time at each "
               "rank count; overlap_efficiency = interior compute / (interior "
               "+ halo wait) on rank 0. Physics is byte-identical across all "
               "columns (see test_overlap).\n";
  return 0;
}

/// The same run as real processes through the launcher; elapsed time
/// includes fork+exec, the rendezvous and teardown. `transport` is
/// "socket" or "shm".
double time_over_processes(const lbm::Extents& global, int ranks, int phases,
                           const std::string& transport = "socket") {
  transport::LaunchConfig lc;
  lc.ranks = ranks;
  lc.transport = transport;
  lc.worker_command = {SLIPFLOW_WORKER_EXE,
                       "--nx=" + std::to_string(global.nx),
                       "--ny=" + std::to_string(global.ny),
                       "--nz=" + std::to_string(global.nz),
                       "--phases=" + std::to_string(phases),
                       "--policy=filtered",
                       "--remap-interval=5",
                       "--window=3",
                       "--min-transfer=24",
                       "--recv-timeout=30"};
  lc.wall_clock_timeout = 300.0;
  const transport::LaunchResult res = transport::launch_workers(lc);
  if (!res.ok) {
    std::cerr << transport << " run failed: " << res.diagnostic << "\n";
    std::exit(1);
  }
  return res.elapsed_seconds;
}

/// Best of `reps` launches for each transport, interleaved
/// socket/shm/socket/shm so a burst of machine load cannot poison all of
/// one transport's samples; the minimum is the honest transport floor.
std::pair<double, double> best_process_pair(const lbm::Extents& global,
                                            int ranks, int phases, int reps) {
  double socket = time_over_processes(global, ranks, phases, "socket");
  double shm = time_over_processes(global, ranks, phases, "shm");
  for (int i = 1; i < reps; ++i) {
    socket = std::min(socket,
                      time_over_processes(global, ranks, phases, "socket"));
    shm = std::min(shm, time_over_processes(global, ranks, phases, "shm"));
  }
  return {socket, shm};
}

/// Socket vs shared-memory rings, same worker binary, same problem: the
/// zero-copy transport must not be slower where it matters (>= 4 ranks
/// on one machine is exactly its target deployment).
int run_shm_mode(const util::Options& opts) {
  const int phases = static_cast<int>(opts.get("phases", 150LL));
  const int max_ranks = static_cast<int>(opts.get("max-ranks", 4LL));
  const int reps = static_cast<int>(opts.get("reps", 3LL));
  const double require = opts.get("require-shm-speedup", 0.0);
  const lbm::Extents global{opts.get("nx", 48LL), opts.get("ny", 16LL),
                            opts.get("nz", 8LL)};
  bench::check_options(opts);

  util::Table table("Figure 8 companion — socket vs shared-memory-ring "
                    "halo transport (" + std::to_string(phases) +
                    " phases, " + std::to_string(global.nx) + "x" +
                    std::to_string(global.ny) + "x" +
                    std::to_string(global.nz) + ", best of " +
                    std::to_string(reps) + ")");
  table.header({"ranks", "thread_seconds", "socket_seconds", "shm_seconds",
                "shm_speedup"});

  bench::Summary summary("fig08_shm");
  summary.add("phases", static_cast<long long>(phases));
  summary.add("nx", static_cast<long long>(global.nx));
  summary.add("reps", static_cast<long long>(reps));
  double top_speedup = 0.0;
  for (int p = 2; p <= max_ranks; p *= 2) {
    const double threads = time_over_threads(global, p, phases);
    const auto [socket, shm] = best_process_pair(global, p, phases, reps);
    const double speedup = shm > 0.0 ? socket / shm : 0.0;
    table.row({static_cast<long long>(p), threads, socket, shm, speedup});
    if (p == max_ranks) {
      summary.add("socket_seconds", socket);
      summary.add("shm_seconds", shm);
      summary.add("shm_speedup", speedup);
      top_speedup = speedup;
    }
  }
  bench::emit(table, opts);
  summary.add_table("transport", table);
  summary.write(opts);

  std::cout << "shm_speedup = socket / shm wall time (same forked workers, "
               "same physics — see test_multiprocess for the byte-identity "
               "proof); both carry fork+exec and rendezvous, so the ratio "
               "isolates the transport itself.\n";
  if (require > 0.0) {
    if (top_speedup < require) {
      std::cerr << "FAIL: shm speedup over socket at " << max_ranks
                << " ranks is " << top_speedup << ", required >= " << require
                << "\n";
      return 1;
    }
    std::cout << "shm speedup guard passed: " << top_speedup
              << " >= " << require << " at " << max_ranks << " ranks\n";
  }
  return 0;
}

int run_socket_mode(const util::Options& opts) {
  const int phases = static_cast<int>(opts.get("phases", 150LL));
  const int max_ranks = static_cast<int>(opts.get("max-ranks", 4LL));
  const lbm::Extents global{opts.get("nx", 48LL), opts.get("ny", 16LL),
                            opts.get("nz", 8LL)};
  bench::check_options(opts);

  util::Table table("Figure 8 companion — thread vs real-process transport "
                    "overhead (" + std::to_string(phases) + " phases, " +
                    std::to_string(global.nx) + "x" +
                    std::to_string(global.ny) + "x" +
                    std::to_string(global.nz) + ")");
  table.header({"ranks", "thread_seconds", "process_seconds",
                "process_over_thread"});

  bench::Summary summary("fig08_socket");
  summary.add("phases", static_cast<long long>(phases));
  summary.add("nx", static_cast<long long>(global.nx));
  for (int p = 1; p <= max_ranks; p *= 2) {
    const double threads = time_over_threads(global, p, phases);
    const double procs = time_over_processes(global, p, phases);
    table.row({static_cast<long long>(p), threads, procs,
               threads > 0.0 ? procs / threads : 0.0});
  }
  bench::emit(table, opts);
  summary.add_table("overhead", table);
  summary.write(opts);

  std::cout << "process runs carry fork+exec, Unix-socket rendezvous and "
               "frame encode/decode on top of the shared-memory thread "
               "backend; physics is byte-identical (see test_multiprocess).\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = util::Options::parse(argc, argv);
  const std::string transport = opts.get("transport", std::string("virtual"));
  if (transport == "socket") return run_socket_mode(opts);
  if (transport == "overlap") return run_overlap_mode(opts);
  if (transport == "shm") return run_shm_mode(opts);
  if (transport != "virtual") {
    std::cerr << "unknown --transport=" << transport
              << " (expected virtual|socket|overlap|shm)\n";
    return 2;
  }

  const int phases = static_cast<int>(opts.get("phases", 20000LL));
  const std::string csv = opts.get("csv", std::string{});
  (void)csv;
  bench::check_options(opts);

  util::Table table("Figure 8 — speedup and normalized efficiency vs slow "
                    "nodes (" + std::to_string(phases) + " phases)");
  table.header({"slow_nodes", "speedup_filtered", "speedup_no_remap",
                "efficiency_filtered", "efficiency_no_remap"});

  for (int m = 0; m <= 5; ++m) {
    double speedup[2];
    int i = 0;
    for (const char* policy : {"filtered", "none"}) {
      ClusterSim sim(paper::base_config(),
                     balance::RemapPolicy::create(policy));
      add_fixed_slow_nodes(sim, paper::slow_node_set(m));
      const auto r = sim.run(phases);
      speedup[i++] = sim.sequential_time(phases) / r.makespan;
    }
    table.row({static_cast<long long>(m), speedup[0], speedup[1],
               normalized_efficiency(speedup[0], 20, m),
               normalized_efficiency(speedup[1], 20, m)});
  }
  bench::emit(table, opts);
  bench::Summary summary("fig08_speedup_efficiency");
  summary.add_table("scaling", table);
  summary.write(opts);

  std::cout << "paper (Fig 8): filtered speedup ~19/16/13 at 0/1/5 slow "
               "nodes; efficiency ~0.9 for m<4 and ~0.8 at m=5; "
               "no-remapping drops dramatically.\n";
  return 0;
}
