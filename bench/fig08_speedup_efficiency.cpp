/// Reproduces Figure 8: speedup and normalized efficiency vs the number
/// of fixed slow nodes (20 000 phases, 20 nodes, filtered dynamic
/// remapping vs no remapping).
///
/// The paper: speedup ~19 dedicated, ~16 with one slow node, still ~13
/// with five; normalized efficiency >= 0.9 below four slow nodes and 0.8
/// at five, while no-remapping collapses.
///
///   usage: fig08_speedup_efficiency [--phases=20000] [--csv=path]

#include "bench_common.hpp"
#include "cluster/scenario.hpp"

using namespace slipflow;
using namespace slipflow::cluster;

int main(int argc, char** argv) {
  const auto opts = util::Options::parse(argc, argv);
  const int phases = static_cast<int>(opts.get("phases", 20000LL));
  const std::string csv = opts.get("csv", std::string{});
  (void)csv;
  bench::check_options(opts);

  util::Table table("Figure 8 — speedup and normalized efficiency vs slow "
                    "nodes (" + std::to_string(phases) + " phases)");
  table.header({"slow_nodes", "speedup_filtered", "speedup_no_remap",
                "efficiency_filtered", "efficiency_no_remap"});

  for (int m = 0; m <= 5; ++m) {
    double speedup[2];
    int i = 0;
    for (const char* policy : {"filtered", "none"}) {
      ClusterSim sim(paper::base_config(),
                     balance::RemapPolicy::create(policy));
      add_fixed_slow_nodes(sim, paper::slow_node_set(m));
      const auto r = sim.run(phases);
      speedup[i++] = sim.sequential_time(phases) / r.makespan;
    }
    table.row({static_cast<long long>(m), speedup[0], speedup[1],
               normalized_efficiency(speedup[0], 20, m),
               normalized_efficiency(speedup[1], 20, m)});
  }
  bench::emit(table, opts);
  bench::Summary summary("fig08_speedup_efficiency");
  summary.add_table("scaling", table);
  summary.write(opts);

  std::cout << "paper (Fig 8): filtered speedup ~19/16/13 at 0/1/5 slow "
               "nodes; efficiency ~0.9 for m<4 and ~0.8 at m=5; "
               "no-remapping drops dramatically.\n";
  return 0;
}
