/// Ablation: BGK (the paper's operator) vs MRT collision for the trace
/// gas — stability across the air relaxation time, plus runtime cost.
///
/// Sweeps tau_air downward (stiffer, less viscous gas — physically more
/// faithful) and reports whether the 3-D walled channel stays bounded
/// over a fixed run, and the most negative air density seen (the
/// instability precursor).
///
///   usage: ablation_collision_operator [--steps=500] [--csv=path]

#include <cmath>

#include "bench_common.hpp"
#include "lbm/observables.hpp"
#include "lbm/simulation.hpp"
#include "util/stopwatch.hpp"

using namespace slipflow;
using namespace slipflow::lbm;

namespace {

struct Outcome {
  bool bounded;
  double min_air;
  double seconds;
};

Outcome run_channel(double tau_air, CollisionModel model, int steps) {
  FluidParams p = FluidParams::microchannel_defaults();
  p.components[1].tau = tau_air;
  p.components[1].collision = model;
  Simulation sim(Extents{6, 20, 10}, std::move(p));
  sim.initialize_uniform();
  util::Stopwatch w;
  sim.run(steps);
  const double secs = w.seconds();
  double mn = 1e300;
  bool ok = true;
  const Extents& st = sim.slab().storage();
  for (index_t x = 1; x <= 6; ++x)
    for (index_t y = 0; y < st.ny; ++y)
      for (index_t z = 0; z < st.nz; ++z) {
        const double v = sim.slab().density(1)[st.idx(x, y, z)];
        if (!std::isfinite(v) || std::abs(v) > 10.0) ok = false;
        if (std::isfinite(v)) mn = std::min(mn, v);
      }
  return {ok, mn, secs};
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = util::Options::parse(argc, argv);
  const int steps = static_cast<int>(opts.get("steps", 500LL));
  const std::string csv = opts.get("csv", std::string{});
  (void)csv;
  bench::check_options(opts);

  util::Table table("Ablation — collision operator for the trace gas "
                    "(3-D channel, " + std::to_string(steps) + " steps)");
  table.header({"tau_air", "bgk_bounded", "bgk_min_air", "mrt_bounded",
                "mrt_min_air", "bgk_time_s", "mrt_time_s"});

  for (double tau : {1.0, 0.8, 0.7, 0.6, 0.55, 0.52}) {
    const Outcome b = run_channel(tau, CollisionModel::bgk, steps);
    const Outcome m = run_channel(tau, CollisionModel::mrt, steps);
    table.row({tau, std::string(b.bounded ? "yes" : "NO"), b.min_air,
               std::string(m.bounded ? "yes" : "NO"), m.min_air, b.seconds,
               m.seconds});
  }
  bench::emit(table, opts);
  bench::Summary summary("ablation_collision_operator");
  summary.add_table("results", table);
  summary.write(opts);

  std::cout << "MRT costs ~2-3x per collision but relaxes ghost modes at "
               "tuned rates; compare the boundedness columns as tau_air "
               "approaches the 1/2 stability limit.\n";
  return 0;
}
