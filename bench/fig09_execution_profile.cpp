/// Reproduces Figure 9: per-node execution profile (computation /
/// communication / remapping) for the four schemes over 600 phases with
/// node 9 slowed by a persistent 70%-CPU background job.
///
/// The paper: dedicated ~251 s; no-remapping ~717 s (+185.6%); the
/// conservative scheme balances compute but leaves node 9's sluggish
/// communication on the critical path; filtered ~313 s (+24.7%),
/// draining node 9 via over-redistribution.
///
/// The per-node breakdown is read from the MetricsRegistry each run
/// populates (the same data a --trace export visualizes), not from
/// bespoke accumulators.
///
///   usage: fig09_execution_profile [--phases=600] [--csv=path]
///                                  [--json=path|none] [--trace=prefix]

#include <algorithm>
#include <fstream>

#include "bench_common.hpp"
#include "cluster/scenario.hpp"

using namespace slipflow;
using namespace slipflow::cluster;

int main(int argc, char** argv) {
  const auto opts = util::Options::parse(argc, argv);
  const int phases = static_cast<int>(opts.get("phases", 600LL));
  const std::string csv = opts.get("csv", std::string{});
  const std::string trace_prefix = opts.get("trace", std::string{});
  (void)csv;
  bench::check_options(opts);

  struct Scheme {
    const char* label;
    const char* policy;
    bool slow_node;
  };
  const Scheme schemes[] = {{"dedicated", "none", false},
                            {"no-remap", "none", true},
                            {"conservative", "conservative", true},
                            {"filtered", "filtered", true}};

  util::Table per_node("Figure 9 — per-node cost distribution (s), node 9 "
                       "slow, " + std::to_string(phases) + " phases");
  per_node.header({"scheme", "node", "computation", "communication",
                   "remapping", "planes_end"});
  util::Table totals("Figure 9 — total execution time per scheme");
  totals.header({"scheme", "exec_time_s", "vs_dedicated_pct"});

  bench::Summary summary("fig09_execution_profile");
  summary.add("phases", static_cast<long long>(phases));

  double dedicated = 0.0;
  for (const Scheme& s : schemes) {
    ClusterSim sim(paper::base_config(),
                   balance::RemapPolicy::create(s.policy));
    if (s.slow_node)
      add_fixed_slow_nodes(sim, {paper::kProfiledSlowNode});
    // spans are only needed when exporting a trace; counters always are
    obs::MetricsRegistry reg(sim.config().nodes, !trace_prefix.empty());
    sim.attach_metrics(&reg);
    (void)sim.run(phases);

    double makespan = 0.0;
    for (int i = 0; i < sim.config().nodes; ++i)
      makespan = std::max(makespan, reg.gauge(i, "time/total"));
    if (s.label == std::string("dedicated")) dedicated = makespan;

    for (int i = 0; i < sim.config().nodes; ++i) {
      per_node.row({std::string(s.label), static_cast<long long>(i),
                    reg.counter(i, "time/compute"),
                    reg.counter(i, "time/comm"),
                    reg.counter(i, "time/remap"),
                    static_cast<long long>(reg.gauge(i, "planes_end"))});
    }
    totals.row({std::string(s.label), makespan,
                100.0 * (makespan - dedicated) / dedicated});
    summary.add(std::string("exec_time_s/") + s.label, makespan);
    summary.add(std::string("planes_moved/") + s.label,
                reg.counter_total("planes_sent"));

    if (!trace_prefix.empty()) {
      const std::string path = trace_prefix + s.label + ".trace.json";
      std::ofstream os(path);
      write_chrome_trace(reg, os, std::string("fig09 ") + s.label);
      std::cout << "(chrome trace written to " << path
                << " — open in chrome://tracing or ui.perfetto.dev)\n";
    }
  }
  bench::emit(per_node, opts);
  totals.print(std::cout);

  summary.add_table("totals", totals);
  summary.write(opts);

  std::cout << "\npaper (Fig 9): 251 s dedicated, 717 s no-remap "
               "(+185.6%), conservative in between, 313 s filtered "
               "(+24.7%); filtered moves most of node 9's planes away.\n";
  return 0;
}
