/// Reproduces Table 1: slowdown ratio (vs the dedicated case) under
/// random transient load spikes, for spike lengths 1-4 s, 100 phases.
///
/// Every 10 seconds a random node receives a CPU-intensive background
/// job for the spike length. The paper: no-remapping / filtered /
/// conservative all tolerate spikes similarly (7-40% depending on
/// length, thanks to lazy remapping), while global remapping degrades
/// much more (37-50% beyond 1 s spikes).
///
///   usage: table1_transient_spikes [--phases=100] [--seeds=5] [--csv=path]

#include "bench_common.hpp"
#include "cluster/scenario.hpp"

using namespace slipflow;
using namespace slipflow::cluster;

int main(int argc, char** argv) {
  const auto opts = util::Options::parse(argc, argv);
  const int phases = static_cast<int>(opts.get("phases", 100LL));
  const int seeds = static_cast<int>(opts.get("seeds", 5LL));
  const std::string csv = opts.get("csv", std::string{});
  (void)csv;
  bench::check_options(opts);

  // the dedicated baseline
  ClusterSim base(paper::base_config(), balance::RemapPolicy::create("none"));
  const double dedicated = base.run(phases).makespan;
  // generous horizon: spikes must cover the whole (slowed) run
  const double horizon = 4.0 * dedicated;

  const char* policies[] = {"none", "global", "filtered", "conservative"};

  util::Table table("Table 1 — slowdown (%) vs dedicated under transient "
                    "spikes, " + std::to_string(phases) + " phases, " +
                    std::to_string(seeds) + " seeds averaged");
  table.header({"spike_len_s", "no_remap", "global", "filtered",
                "conservative"});

  for (int len = 1; len <= 4; ++len) {
    std::vector<util::Cell> row{static_cast<long long>(len)};
    for (const char* policy : policies) {
      double total = 0.0;
      for (int seed = 1; seed <= seeds; ++seed) {
        ClusterSim sim(paper::base_config(),
                       balance::RemapPolicy::create(policy));
        add_transient_spikes(sim, horizon, static_cast<double>(len),
                             paper::kDisturbancePeriod,
                             static_cast<std::uint64_t>(seed));
        total += sim.run(phases).makespan;
      }
      const double mean = total / seeds;
      row.push_back(100.0 * (mean - dedicated) / dedicated);
    }
    table.row(std::move(row));
  }
  bench::emit(table, opts);
  bench::Summary summary("table1_transient_spikes");
  summary.add_table("slowdown", table);
  summary.write(opts);

  std::cout << "paper (Table 1): no-remap 7.4/11.9/23.7/35.6%, global "
               "5.8/37.2/40.9/49.5%, filtered 6.7/15.6/23.3/38.1%, "
               "conservative 10.9/16.0/24.9/39.8% for 1/2/3/4 s spikes.\n";
  return 0;
}
