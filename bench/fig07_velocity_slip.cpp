/// Reproduces Figure 7: normalized streamwise velocity profiles with and
/// without hydrophobic wall forces, and the apparent slip they produce.
///
/// The paper's dotted/dashed curve (wall forces on) shows an apparent
/// slip of approximately 10% of the free-stream velocity at the wall; the
/// solid curve (no wall forces) is no-slip.
///
///   usage: fig07_velocity_slip [--ny=20] [--steps=2500] [--ranks=2]
///                              [--csv=path]

#include <mutex>

#include "bench_common.hpp"
#include "lbm/observables.hpp"
#include "sim/parallel_lbm.hpp"
#include "transport/thread_comm.hpp"

using namespace slipflow;
using namespace slipflow::lbm;

namespace {

std::vector<double> run_profile(const sim::RunnerConfig& cfg, int steps,
                                int ranks) {
  std::vector<double> out;
  std::mutex mu;
  transport::run_ranks(ranks, [&](transport::Communicator& comm) {
    sim::ParallelLbm run(cfg, comm);
    run.initialize_uniform();
    run.run(steps);
    auto u = run.gather_velocity_profile_y(cfg.global.nx / 2,
                                           cfg.global.nz / 2);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      out = std::move(u);
    }
  });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = util::Options::parse(argc, argv);
  const index_t ny = opts.get("ny", 20LL);
  const int steps = static_cast<int>(opts.get("steps", 2500LL));
  const int ranks = static_cast<int>(opts.get("ranks", 2LL));
  const std::string csv = opts.get("csv", std::string{});
  (void)csv;
  bench::check_options(opts);

  // same geometry reasoning as fig06: preserve the paper's
  // decay-to-depth ratio rather than the raw 10:1 width:depth aspect
  const Extents grid{2 * ny, ny, std::max<index_t>(ny / 2, 4)};
  const double um_per_cell = 1.0 / static_cast<double>(ny);

  sim::RunnerConfig forced;
  forced.global = grid;
  forced.fluid = FluidParams::microchannel_defaults();
  sim::RunnerConfig control = forced;
  control.fluid = FluidParams::microchannel_defaults(/*wall_accel=*/0.0);

  const auto uf = run_profile(forced, steps, ranks);
  const auto uc = run_profile(control, steps, ranks);
  const auto sf = measure_slip(uf);
  const auto sc = measure_slip(uc);

  util::Table table(
      "Figure 7 — normalized streamwise velocity u/u0 vs position from "
      "side wall (x = L/2, z = mid-depth)");
  table.header({"position_um", "u_norm_wall_forces", "u_norm_no_forces"});
  for (index_t j = 0; j < ny; ++j) {
    const auto ju = static_cast<std::size_t>(j);
    table.row({(static_cast<double>(j) + 0.5) * um_per_cell,
               uf[ju] / sf.u_center, uc[ju] / sc.u_center});
  }
  bench::emit(table, opts);

  util::Table slip("Apparent slip extracted from the profiles");
  slip.header({"case", "u_wall/u0 (extrapolated)", "u_wallnode/u0"});
  slip.row({std::string("wall forces"), sf.slip_fraction,
            sf.u_wall_node / sf.u_center});
  slip.row({std::string("no wall forces"), sc.slip_fraction,
            sc.u_wall_node / sc.u_center});
  slip.print(std::cout);

  bench::Summary summary("fig07_velocity_slip");
  summary.add("slip_fraction_wall_forces", sf.slip_fraction);
  summary.add("slip_fraction_no_forces", sc.slip_fraction);
  summary.add("u_center_wall_forces", sf.u_center);
  summary.add_table("profile", table);
  summary.write(opts);

  std::cout << "\npaper (Fig 7): apparent slip of approximately 10% of the "
               "free stream velocity with wall forces; no slip without.\n";
  return 0;
}
