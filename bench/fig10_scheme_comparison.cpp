/// Reproduces Figure 10: execution time of 600 phases vs the number of
/// fixed slow nodes, for no-remapping / filtered / conservative / global
/// remapping.
///
/// The paper: filtered is best throughout (up to 57.8% better than
/// no-remapping and up to 39% better than conservative); global is fine
/// with one slow node but becomes the worst beyond two because of its
/// collective-communication overhead.
///
///   usage: fig10_scheme_comparison [--phases=600] [--csv=path]

#include "bench_common.hpp"
#include "cluster/scenario.hpp"

using namespace slipflow;
using namespace slipflow::cluster;

int main(int argc, char** argv) {
  const auto opts = util::Options::parse(argc, argv);
  const int phases = static_cast<int>(opts.get("phases", 600LL));
  const std::string csv = opts.get("csv", std::string{});
  (void)csv;
  bench::check_options(opts);

  const char* policies[] = {"none", "filtered", "conservative", "global"};

  util::Table table("Figure 10 — execution time (s) of " +
                    std::to_string(phases) +
                    " phases vs number of slow nodes");
  table.header({"slow_nodes", "no_remapping", "filtered", "conservative",
                "global"});

  for (int m = 0; m <= 5; ++m) {
    std::vector<util::Cell> row{static_cast<long long>(m)};
    for (const char* policy : policies) {
      ClusterSim sim(paper::base_config(),
                     balance::RemapPolicy::create(policy));
      add_fixed_slow_nodes(sim, paper::slow_node_set(m));
      row.push_back(sim.run(phases).makespan);
    }
    table.row(std::move(row));
  }
  bench::emit(table, opts);
  bench::Summary summary("fig10_scheme_comparison");
  summary.add_table("schemes", table);
  summary.write(opts);

  std::cout << "paper (Fig 10): filtered best everywhere (<=57.8% vs "
               "no-remap, <=39% vs conservative); global competitive at "
               "one slow node, worst beyond two.\n";
  return 0;
}
