/// Decision-path microbenchmarks (google-benchmark): the remapping
/// decision itself must be negligible next to a phase of LBM compute —
/// these confirm it is nanoseconds-to-microseconds.

#include <benchmark/benchmark.h>

#include "balance/remapper.hpp"
#include "cluster/virtual_node.hpp"

using namespace slipflow::balance;

namespace {

void BM_HarmonicPredictorRecordPredict(benchmark::State& state) {
  HarmonicMeanPredictor p(10);
  double t = 0.4;
  for (auto _ : state) {
    p.record(t);
    t = t < 1.0 ? t + 0.01 : 0.4;
    if (p.ready()) benchmark::DoNotOptimize(p.predict());
  }
}
BENCHMARK(BM_HarmonicPredictorRecordPredict);

void BM_FilteredDecide(benchmark::State& state) {
  FilteredPolicy policy;
  BalanceConfig cfg;
  const NodeLoad left{80000, 0.4}, me{80000, 1.2}, right{80000, 0.4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.decide(left, me, right, cfg));
  }
}
BENCHMARK(BM_FilteredDecide);

void BM_GlobalDecide20Nodes(benchmark::State& state) {
  GlobalPolicy policy;
  BalanceConfig cfg;
  std::vector<NodeLoad> loads(20, NodeLoad{80000, 0.4});
  loads[9].predicted_time = 1.2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.decide_global(loads, cfg));
  }
}
BENCHMARK(BM_GlobalDecide20Nodes);

void BM_NodeBalancerRoundTrip(benchmark::State& state) {
  BalanceConfig cfg;
  NodeBalancer b(cfg, RemapPolicy::create("filtered"));
  for (int i = 0; i < 10; ++i) b.record_phase(0.4, 80000);
  const NodeLoad nb{80000, 0.4};
  for (auto _ : state) {
    b.record_phase(0.41, 80000);
    benchmark::DoNotOptimize(b.decide(nb, 80000, nb));
  }
}
BENCHMARK(BM_NodeBalancerRoundTrip);

void BM_QuantizeFlow(benchmark::State& state) {
  long long v = 0;
  for (auto _ : state) {
    v += quantize_flow_to_planes(123456, 4000, 20);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_QuantizeFlow);

void BM_VirtualNodeFinishTimeAcrossBreakpoints(benchmark::State& state) {
  slipflow::cluster::VirtualNode node;
  node.add_load(
      std::make_unique<slipflow::cluster::PeriodicLoad>(2.0, 10.0, 0.5));
  double t = 0.0;
  for (auto _ : state) {
    t = node.finish_time(t, 0.4);
    if (t > 1e6) t = 0.0;
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_VirtualNodeFinishTimeAcrossBreakpoints);

}  // namespace

BENCHMARK_MAIN();
