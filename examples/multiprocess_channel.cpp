/// The parallel program as REAL processes: the launcher forks+execs
/// `slipflow_worker` ranks wired over Unix-domain sockets, supervises
/// them with heartbeats, and (optionally) injects a kill-rank fault to
/// demonstrate the named-rank diagnostic instead of a hang.
///
///   build/examples/multiprocess_channel [--ranks=4] [--phases=200]
///       [--policy=filtered] [--nx=32] [--slow-rank=1] [--slow-factor=3]
///       [--threads=2] [--step=overlap|blocking]
///       [--transport=socket|shm|auto] [--shm-ring-bytes=1048576]
///       [--fault-kill-rank=2 --fault-kill-phase=20 --expect-failure]
///
/// With --expect-failure the program exits 0 exactly when the launcher
/// reports the fault (the CI fault-injection run), nonzero otherwise.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "transport/launcher.hpp"
#include "util/options.hpp"

#ifndef SLIPFLOW_WORKER_EXE
#error "SLIPFLOW_WORKER_EXE must point at the slipflow_worker binary"
#endif

using namespace slipflow;

int main(int argc, char** argv) {
  const auto opts = util::Options::parse(argc, argv);
  const int ranks = static_cast<int>(opts.get("ranks", 4LL));
  const int phases = static_cast<int>(opts.get("phases", 200LL));
  const std::string policy = opts.get("policy", std::string("filtered"));
  const long long nx = opts.get("nx", 32LL);
  const int slow_rank = static_cast<int>(opts.get("slow-rank", 1LL));
  const double slow_factor = opts.get("slow-factor", 3.0);
  const int kill_rank = static_cast<int>(opts.get("fault-kill-rank", -1LL));
  const long long kill_phase = opts.get("fault-kill-phase", -1LL);
  const bool expect_failure = opts.get("expect-failure", false);
  // Supervision budgets (transport::LaunchConfig): all settable so sweep
  // scripts and the service smoke job can tighten or relax them per run.
  const double wall_timeout = opts.get("wall-timeout", 120.0);
  const double heartbeat_interval = opts.get("heartbeat-interval", 0.2);
  const double heartbeat_grace = opts.get("heartbeat-grace", 10.0);
  const long long threads = opts.get("threads", 1LL);
  const std::string step = opts.get("step", std::string("overlap"));
  // socket | shm | auto — forwarded to every worker (see sim/worker.cpp)
  const std::string transport =
      opts.get("transport", std::string("socket"));
  const long long shm_ring_bytes = opts.get("shm-ring-bytes", 0LL);
  const std::string worker =
      opts.get("worker", std::string(SLIPFLOW_WORKER_EXE));
  if (const std::string diag = opts.unknown_diagnostic(); !diag.empty()) {
    std::cerr << diag;
    return 2;
  }

  transport::LaunchConfig lc;
  lc.ranks = ranks;
  lc.worker_command = {worker,
                       "--nx=" + std::to_string(nx),
                       "--ny=16",
                       "--nz=6",
                       "--phases=" + std::to_string(phases),
                       "--policy=" + policy,
                       "--remap-interval=5",
                       "--window=4",
                       "--min-transfer=96",
                       "--recv-timeout=20",
                       "--threads=" + std::to_string(threads),
                       "--step=" + step};
  if (slow_rank >= 0 && slow_rank < ranks) {
    lc.worker_command.push_back("--slow-rank=" + std::to_string(slow_rank));
    lc.worker_command.push_back("--slow-factor=" +
                                std::to_string(slow_factor));
  }
  lc.heartbeat_interval = heartbeat_interval;
  lc.heartbeat_grace = heartbeat_grace;
  lc.wall_clock_timeout = wall_timeout;
  lc.transport = transport;
  lc.shm_ring_bytes = shm_ring_bytes;
  if (kill_rank >= 0 && kill_phase >= 0)
    lc.extra_args[kill_rank] = {"--fault-kill-phase=" +
                                std::to_string(kill_phase)};

  std::cout << "launching " << ranks << " slipflow_worker processes, " << nx
            << "x16x6, " << phases << " phases, policy '" << policy << "'";
  if (kill_rank >= 0)
    std::cout << " (injecting SIGKILL into rank " << kill_rank << " at phase "
              << kill_phase << ")";
  std::cout << "\n\n";

  const transport::LaunchResult res = transport::launch_workers(lc);

  std::cout << (res.ok ? "run completed" : "run FAILED") << " in "
            << res.elapsed_seconds << "s; last reported phases:";
  for (int r = 0; r < ranks; ++r)
    std::cout << " rank" << r << "=" << res.last_phase[static_cast<std::size_t>(r)];
  std::cout << "\n";
  if (!res.ok)
    std::cout << "diagnostic (failed rank " << res.failed_rank << "):\n"
              << res.diagnostic << "\n";

  if (expect_failure) {
    if (res.ok) {
      std::cerr << "expected the injected fault to fail the run\n";
      return 1;
    }
    if (kill_rank >= 0 && res.failed_rank != kill_rank) {
      std::cerr << "expected rank " << kill_rank << " to be blamed, got "
                << res.failed_rank << "\n";
      return 1;
    }
    std::cout << "\ninjected fault was detected and named as expected\n";
    return 0;
  }
  return res.ok ? 0 : 1;
}
