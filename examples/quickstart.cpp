/// Quickstart: simulate the water-air mixture in a small hydrophobic
/// microchannel and measure the apparent slip — the paper's core physics
/// in ~40 lines of user code.
///
///   build/examples/quickstart

#include <iostream>

#include "lbm/observables.hpp"
#include "lbm/simulation.hpp"

using namespace slipflow::lbm;

int main() {
  // a thin microchannel: x is the (periodic) flow direction, side walls
  // at the y extents, top/bottom walls at the z extents
  const Extents grid{40, 20, 8};

  // two components — water plus trace dissolved air — with the paper's
  // hydrophobic wall force (repels water, neutral to air)
  FluidParams fluid = FluidParams::microchannel_defaults();

  Simulation sim(grid, fluid);
  sim.initialize_uniform();

  std::cout << "running " << grid.nx << "x" << grid.ny << "x" << grid.nz
            << " microchannel, " << fluid.components[0].name << " + "
            << fluid.components[1].name << " ...\n";
  sim.run(2000);

  // measure along the channel width at the mid cross-section
  const auto water = density_profile_y(sim.slab(), 0, grid.nx / 2, grid.nz / 2);
  const auto air = density_profile_y(sim.slab(), 1, grid.nx / 2, grid.nz / 2);
  const auto ux = velocity_profile_y(sim.slab(), grid.nx / 2, grid.nz / 2);
  const SlipMeasurement slip = measure_slip(ux);

  std::cout << "water density: wall " << water.front() << "  bulk "
            << water[water.size() / 2] << "\n"
            << "air   density: wall " << air.front() << "  bulk "
            << air[air.size() / 2] << "\n"
            << "apparent slip: u_wall/u0 = " << slip.slip_fraction
            << "  (paper: ~0.1 with hydrophobic walls)\n";

  // the depleted water / enriched air layer is what produces the slip
  return slip.slip_fraction > 0.0 ? 0 : 1;
}
