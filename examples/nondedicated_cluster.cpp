/// Explore the paper's systems contribution on the virtual cluster:
/// configure a non-dedicated cluster scenario and compare all four
/// remapping schemes on it.
///
///   build/examples/nondedicated_cluster [--nodes=20] [--phases=600]
///       [--slow=2] [--spikes=false] [--spike-len=2] [--seed=1]
///
/// --slow adds that many persistently loaded nodes; --spikes switches to
/// the random transient-spike workload instead.

#include <iostream>

#include "cluster/scenario.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace slipflow;
using namespace slipflow::cluster;

int main(int argc, char** argv) {
  const auto opts = util::Options::parse(argc, argv);
  const int nodes = static_cast<int>(opts.get("nodes", 20LL));
  const int phases = static_cast<int>(opts.get("phases", 600LL));
  const int slow = static_cast<int>(opts.get("slow", 2LL));
  const bool spikes = opts.get("spikes", false);
  const double spike_len = opts.get("spike-len", 2.0);
  const auto seed = static_cast<std::uint64_t>(opts.get("seed", 1LL));
  if (const std::string diag = opts.unknown_diagnostic(); !diag.empty()) {
    std::cerr << diag;
    return 2;
  }

  std::cout << "virtual cluster: " << nodes << " nodes, " << phases
            << " phases, "
            << (spikes ? "random transient spikes"
                       : std::to_string(slow) + " persistent slow node(s)")
            << "\n\n";

  // dedicated baseline
  ClusterSim base(paper::base_config(nodes),
                  balance::RemapPolicy::create("none"));
  const double dedicated = base.run(phases).makespan;

  util::Table table("remapping schemes under this workload");
  table.header({"scheme", "exec_time_s", "slowdown_vs_dedicated_pct",
                "migrations", "planes_moved"});

  for (const char* policy : {"none", "conservative", "filtered", "global"}) {
    ClusterSim sim(paper::base_config(nodes),
                   balance::RemapPolicy::create(policy));
    if (spikes) {
      add_transient_spikes(sim, 4.0 * dedicated * (1.0 + slow), spike_len,
                           paper::kDisturbancePeriod, seed);
    } else {
      std::vector<int> which;
      for (int i = 0; i < slow && i < 5; ++i)
        which.push_back(paper::slow_node_set(std::min(slow, 5))[i]);
      add_fixed_slow_nodes(sim, which);
    }
    const auto r = sim.run(phases);
    table.row({std::string(policy), r.makespan,
               100.0 * (r.makespan - dedicated) / dedicated,
               r.migration_events, r.planes_moved});
  }
  table.print(std::cout);

  std::cout << "\ndedicated baseline: " << dedicated << " s\n"
            << "(the paper's filtered scheme should win under persistent "
               "slow nodes and stay near no-remap under spikes)\n";
  return 0;
}
