/// The full parallel program, for real: rank threads run the
/// multicomponent LBM with halo exchanges, one rank is artificially
/// slowed, and filtered dynamic remapping migrates actual lattice planes
/// away from it while the physics stays bit-identical to a sequential
/// run.
///
///   build/examples/parallel_channel [--ranks=4] [--phases=200]
///       [--slow-rank=1] [--slow-factor=3] [--policy=filtered] [--nx=32]
///       [--threads=2] [--step=overlap|blocking]

#include <iostream>
#include <mutex>

#include "lbm/observables.hpp"
#include "sim/parallel_lbm.hpp"
#include "transport/thread_comm.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace slipflow;
using namespace slipflow::lbm;

int main(int argc, char** argv) {
  const auto opts = util::Options::parse(argc, argv);
  const int ranks = static_cast<int>(opts.get("ranks", 4LL));
  const int phases = static_cast<int>(opts.get("phases", 200LL));
  const int slow_rank = static_cast<int>(opts.get("slow-rank", 1LL));
  const double slow_factor = opts.get("slow-factor", 3.0);
  const std::string policy = opts.get("policy", std::string("filtered"));
  const index_t nx = opts.get("nx", 32LL);
  const int threads = static_cast<int>(opts.get("threads", 1LL));
  const std::string step = opts.get("step", std::string("overlap"));
  if (const std::string diag = opts.unknown_diagnostic(); !diag.empty()) {
    std::cerr << diag;
    return 2;
  }

  sim::RunnerConfig cfg;
  cfg.threads = threads;
  cfg.step = step == "blocking" ? sim::StepMode::blocking
                                : sim::StepMode::overlap;
  cfg.global = Extents{nx, 16, 6};
  cfg.fluid = FluidParams::microchannel_defaults();
  cfg.policy = policy;
  cfg.remap_interval = 5;
  cfg.balance.window = 4;
  cfg.balance.min_transfer_points = cfg.global.plane_cells();
  if (slow_rank >= 0 && slow_rank < ranks) {
    cfg.slowdown.assign(static_cast<std::size_t>(ranks), 0.0);
    cfg.slowdown[static_cast<std::size_t>(slow_rank)] = slow_factor;
  }

  std::cout << "parallel microchannel on " << ranks << " rank threads, "
            << cfg.global.nx << "x" << cfg.global.ny << "x" << cfg.global.nz
            << ", policy '" << policy << "', rank " << slow_rank
            << " slowed " << (1.0 + slow_factor) << "x\n\n";

  std::vector<sim::RankStats> stats;
  double slip = 0.0, mass_drift = 0.0;
  std::mutex mu;
  transport::run_ranks(ranks, [&](transport::Communicator& comm) {
    sim::ParallelLbm run(cfg, comm);
    run.initialize_uniform();
    const double m0 = run.global_mass(0);
    run.run(phases);
    const double m1 = run.global_mass(0);
    auto all = run.gather_stats();
    auto ux = run.gather_velocity_profile_y(cfg.global.nx / 2,
                                            cfg.global.nz / 2);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      stats = std::move(all);
      slip = measure_slip(ux).slip_fraction;
      mass_drift = (m1 - m0) / m0;
    }
  });

  util::Table table("per-rank outcome after " + std::to_string(phases) +
                    " phases");
  table.header({"rank", "planes", "compute_s", "comm_s", "remap_s", "sent",
                "received"});
  for (const auto& s : stats)
    table.row({static_cast<long long>(s.rank), s.planes, s.compute_seconds,
               s.comm_seconds, s.remap_seconds, s.planes_sent,
               s.planes_received});
  table.print(std::cout);

  std::cout << "\napparent slip u_wall/u0 = " << slip
            << "   water mass drift = " << mass_drift << "\n"
            << "(the slowed rank should end with fewer planes when "
               "remapping is on; try --policy=none to see it keep "
               "its share)\n";
  return 0;
}
