/// Striped-wettability microchannel: alternating hydrophobic /
/// hydrophilic wall stripes along the flow direction — the kind of
/// engineered coating the paper's introduction motivates ("optimizing
/// the flow in microdevices to achieve desired objectives").
///
/// Shows the striped depletion layer, the wettability-gradient-driven
/// secondary circulation, and writes a VTK snapshot for visualization.
///
///   build/examples/patterned_walls [--stripes=4] [--steps=1500]
///       [--nx=48] [--vtk=striped.vtk]

#include <cmath>
#include <iostream>

#include "lbm/observables.hpp"
#include "lbm/simulation.hpp"
#include "lbm/vtk.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace slipflow;
using namespace slipflow::lbm;

int main(int argc, char** argv) {
  const auto opts = util::Options::parse(argc, argv);
  const index_t nx = opts.get("nx", 48LL);
  const int stripes = static_cast<int>(opts.get("stripes", 4LL));
  const int steps = static_cast<int>(opts.get("steps", 1500LL));
  const std::string vtk = opts.get("vtk", std::string("striped.vtk"));
  if (const std::string diag = opts.unknown_diagnostic(); !diag.empty()) {
    std::cerr << diag;
    return 2;
  }

  const double period = static_cast<double>(nx) / stripes;
  FluidParams fluid = FluidParams::microchannel_defaults();
  fluid.wall_pattern = [period](index_t gx, index_t, index_t) {
    return std::fmod(static_cast<double>(gx), period) < period / 2 ? 1.0
                                                                   : 0.0;
  };

  const Extents grid{nx, 16, 8};
  std::cout << "striped channel " << grid.nx << "x" << grid.ny << "x"
            << grid.nz << ", " << stripes << " stripes of period " << period
            << " cells, " << steps << " phases\n";

  Simulation sim(grid, fluid);
  sim.initialize_uniform();
  sim.run(steps);

  util::Table table("per-stripe wall state (z = mid-depth)");
  table.header({"x", "coating", "wall_water", "wall_air", "u_x_wall",
                "u_x_center"});
  for (index_t gx = 0; gx < nx; gx += nx / 8) {
    const bool phobic =
        std::fmod(static_cast<double>(gx), period) < period / 2;
    const auto water = density_profile_y(sim.slab(), 0, gx, grid.nz / 2);
    const auto air = density_profile_y(sim.slab(), 1, gx, grid.nz / 2);
    const auto ux = velocity_profile_y(sim.slab(), gx, grid.nz / 2);
    table.row({static_cast<long long>(gx),
               std::string(phobic ? "hydrophobic" : "hydrophilic"),
               water.front(), air.front(), ux.front(),
               ux[ux.size() / 2]});
  }
  table.print(std::cout);

  write_vtk(sim.slab(), vtk, "striped wettability microchannel");
  std::cout << "\nfields written to " << vtk
            << " (water depletion follows the hydrophobic stripes; the "
               "wettability gradient drives a secondary circulation)\n";
  return 0;
}
