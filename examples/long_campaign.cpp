/// A production-style campaign: run the microchannel toward steady state
/// in restartable legs — exactly the workflow the paper's "days to
/// weeks" runs need. Each leg resumes from the newest checkpoint,
/// advances until a convergence check or a leg budget, saves a
/// checkpoint and a VTK snapshot, and reports the slip trajectory.
///
///   build/examples/long_campaign [--legs=3] [--leg-phases=800]
///       [--ny=16] [--tol=1e-7] [--dir=campaign]

#include <filesystem>
#include <iostream>

#include "lbm/checkpoint.hpp"
#include "lbm/convergence.hpp"
#include "lbm/observables.hpp"
#include "lbm/simulation.hpp"
#include "lbm/units.hpp"
#include "lbm/vtk.hpp"
#include "util/options.hpp"

using namespace slipflow;
using namespace slipflow::lbm;

int main(int argc, char** argv) {
  const auto opts = util::Options::parse(argc, argv);
  const int legs = static_cast<int>(opts.get("legs", 3LL));
  const int leg_phases = static_cast<int>(opts.get("leg-phases", 800LL));
  const index_t ny = opts.get("ny", 16LL);
  const double tol = opts.get("tol", 1e-7);
  const std::string dir = opts.get("dir", std::string("campaign"));
  if (const std::string diag = opts.unknown_diagnostic(); !diag.empty()) {
    std::cerr << diag;
    return 2;
  }

  std::filesystem::create_directories(dir);
  const std::string ckpt = dir + "/state.ckpt";

  const Extents grid{2 * ny, ny, std::max<index_t>(ny / 2, 4)};
  const UnitSystem units = UnitSystem::paper_channel(ny);
  std::cout << "campaign: " << grid.nx << "x" << grid.ny << "x" << grid.nz
            << " channel, grid spacing " << units.dx() * 1e9 << " nm, "
            << legs << " legs x " << leg_phases << " phases, tol " << tol
            << "\n";

  for (int leg = 1; leg <= legs; ++leg) {
    Simulation sim(grid, FluidParams::microchannel_defaults());
    if (std::filesystem::exists(ckpt)) {
      sim.restore_checkpoint(ckpt);
      std::cout << "leg " << leg << ": resumed at phase "
                << sim.phase_count() << "\n";
    } else {
      sim.initialize_uniform();
      std::cout << "leg " << leg << ": fresh start\n";
    }

    const int done = sim.run_until_steady(leg_phases, tol, 100);
    sim.save_checkpoint(ckpt);
    write_vtk(sim.slab(),
              dir + "/snapshot_" + std::to_string(sim.phase_count()) + ".vtk");

    const auto ux =
        velocity_profile_y(sim.slab(), grid.nx / 2, grid.nz / 2);
    const auto slip = measure_slip(ux);
    std::cout << "  +" << done << " phases (total " << sim.phase_count()
              << "): u0 = " << units.velocity_m_s(slip.u_center)
              << " m/s, slip = " << slip.slip_fraction
              << ", slip length = "
              << units.length_m(navier_slip_length(ux)) * 1e9 << " nm\n";
    if (done < leg_phases) {
      std::cout << "steady state reached; campaign complete.\n";
      break;
    }
  }
  std::cout << "state in " << ckpt << " — rerun to continue the campaign.\n";
  return 0;
}
