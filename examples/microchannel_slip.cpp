/// The paper's physics experiment at configurable resolution: a
/// 2 x 1 x 0.1 micron hydrophobic microchannel (Figure 5), water + air,
/// with profile CSV output for plotting Figures 6 and 7.
///
///   build/examples/microchannel_slip [--ny=20] [--steps=2500]
///       [--wall-force=0.2] [--decay=2.5] [--air=0.03] [--coupling=1.0]
///       [--out=profiles.csv]
///
/// --ny sets the resolution across the 1-micron width; x and z scale to
/// keep the paper's 2:1:0.1 geometry. The paper's own resolution is
/// --ny=200 (400x200x20) — large but valid if you have the time.

#include <iostream>

#include "lbm/observables.hpp"
#include "lbm/simulation.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

using namespace slipflow;
using namespace slipflow::lbm;

int main(int argc, char** argv) {
  const auto opts = util::Options::parse(argc, argv);
  const index_t ny = opts.get("ny", 20LL);
  const int steps = static_cast<int>(opts.get("steps", 2500LL));
  const double wall_force = opts.get("wall-force", 0.2);
  const double decay = opts.get("decay", 2.5);
  const double air = opts.get("air", 0.03);
  const double coupling = opts.get("coupling", 1.0);
  const std::string out = opts.get("out", std::string("profiles.csv"));
  if (const std::string diag = opts.unknown_diagnostic(); !diag.empty()) {
    std::cerr << diag;
    return 2;
  }

  // depth chosen to preserve the paper's decay-to-depth ratio at reduced
  // resolution (see DESIGN.md); the paper's own 10:1 width:depth aspect
  // is recovered at --ny=200
  const index_t nz = ny >= 100 ? ny / 10 : std::max<index_t>(ny / 2, 4);
  const Extents grid{2 * ny, ny, nz};
  const double nm = 1000.0 / static_cast<double>(ny);  // nm per cell

  FluidParams fluid =
      FluidParams::microchannel_defaults(wall_force, decay, air, coupling);
  std::cout << "microchannel " << grid.nx << "x" << grid.ny << "x" << grid.nz
            << " (grid spacing " << nm << " nm), wall force " << wall_force
            << ", decay " << decay * nm << " nm, " << steps << " phases\n";

  Simulation sim(grid, fluid);
  sim.initialize_uniform();
  for (int done = 0; done < steps;) {
    const int chunk = std::min(500, steps - done);
    sim.run(chunk);
    done += chunk;
    const auto ux = velocity_profile_y(sim.slab(), grid.nx / 2, grid.nz / 2);
    const auto slip = measure_slip(ux);
    std::cout << "  phase " << done << ": u0 = " << slip.u_center
              << ", slip = " << slip.slip_fraction << "\n";
  }

  const index_t xm = grid.nx / 2, zm = grid.nz / 2;
  const auto water = density_profile_y(sim.slab(), 0, xm, zm);
  const auto vapor = density_profile_y(sim.slab(), 1, xm, zm);
  const auto ux = velocity_profile_y(sim.slab(), xm, zm);
  const auto slip = measure_slip(ux);

  util::Table table("profiles at x = L/2, z = mid-depth");
  table.header({"y_nm", "water_density", "air_density", "u_over_u0"});
  for (index_t j = 0; j < ny; ++j) {
    const auto ju = static_cast<std::size_t>(j);
    table.row({(static_cast<double>(j) + 0.5) * nm, water[ju], vapor[ju],
               ux[ju] / slip.u_center});
  }
  table.save_csv(out);

  std::cout << "\nresults:\n"
            << "  water depletion at wall: " << water.front() << " vs bulk "
            << water[static_cast<std::size_t>(ny / 2)] << "\n"
            << "  air enrichment at wall:  " << vapor.front() << " vs bulk "
            << vapor[static_cast<std::size_t>(ny / 2)] << "\n"
            << "  apparent slip u_wall/u0: " << slip.slip_fraction
            << "   (paper: ~0.1)\n"
            << "profiles written to " << out << "\n";
  return 0;
}
