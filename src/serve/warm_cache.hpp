#pragma once
/// \file warm_cache.hpp
/// Warm-state cache of the campaign server: equilibrated checkpoints
/// keyed on the physics that produced them.
///
/// Parameter sweeps repeat the same expensive equilibration before the
/// phases that actually differ. The cache stores the checkpoint taken
/// at `warm_phases` under a key derived from (geometry, component
/// count, physical parameters, warm phase count) — see
/// JobSpec::warm_key — so a repeated spec seeds from the cached state
/// and runs only the remainder. Because checkpoints are restorable on
/// any decomposition and the physics is invariant to ranks/transport/
/// policy, a cache entry produced by one configuration warm-starts any
/// other with the same physics.
///
/// Entries are published by rename (atomic within the cache directory)
/// and validated on both promote and lookup against the checkpoint
/// header and exact expected file size, so a torn or foreign file can
/// never seed a job.

#include <string>

namespace slipflow::serve {

class WarmCache {
 public:
  /// `dir` is created if absent.
  explicit WarmCache(std::string dir);

  /// FNV-1a 64-bit hash of the canonical key material, as fixed-width
  /// hex — the cache entry's filename stem.
  static std::string hash_key(const std::string& canonical_key);

  /// Path of a valid cached checkpoint for this key holding exactly
  /// `warm_phases` completed phases, or "" on miss (absent, torn, or
  /// phase-mismatched entries all miss).
  std::string lookup(const std::string& canonical_key,
                     long long warm_phases) const;

  /// Publish `checkpoint_file` (a complete checkpoint produced by a
  /// finished job) as the entry for this key. The file is renamed into
  /// the cache. Invalid or torn candidates are rejected (returns
  /// false); an existing valid entry is kept (the states are physically
  /// identical by construction).
  bool promote(const std::string& canonical_key, long long warm_phases,
               const std::string& checkpoint_file);

  const std::string& dir() const { return dir_; }

 private:
  std::string entry_path(const std::string& canonical_key) const;
  std::string dir_;
};

}  // namespace slipflow::serve
