#pragma once
/// \file job_spec.hpp
/// The campaign server's job specification: everything a tenant may ask
/// for — geometry, component model, physical parameters, decomposition,
/// transport, service options — parsed from JSON, validated at
/// admission, and lowered to the exact slipflow_worker argv.
///
/// make_launch_config is the single source of the worker command line:
/// the server's job runner and slipflow_submit's --direct (standalone)
/// mode both call it, which is what makes "served observables are
/// byte-identical to a direct run" a structural property rather than a
/// test-maintained coincidence. Physics is bit-identical across rank
/// counts, transports and migration histories (the repo's core
/// invariant), so the spec's scheduling-shaped fields may differ between
/// the two runs without moving a byte of the physics observables.

#include <string>

#include "transport/launcher.hpp"
#include "util/json.hpp"

namespace slipflow::serve {

/// One tenant job. Defaults match slipflow_worker's own defaults.
struct JobSpec {
  // --- problem: geometry and component model ---
  long long nx = 16, ny = 6, nz = 4;
  /// Fluid components. The microchannel model is two-component (water +
  /// trace air); anything else is an admission error today, but the spec
  /// carries the count so the schema survives future models.
  long long components = 2;
  /// ABSOLUTE phase target (resumed runs execute only the remainder).
  long long phases = 40;

  // --- physical parameters (lbm::FluidParams::microchannel_defaults) ---
  double wall_accel = 0.2;    ///< hydrophobic wall force amplitude (BC)
  double wall_decay = 2.5;    ///< wall force decay length (BC)
  double air_fraction = 0.03; ///< trace-air initial density
  double coupling_g = 1.0;    ///< Shan-Chen water/air coupling
  double gravity = 2e-5;      ///< body force driving the channel flow

  // --- decomposition / execution ---
  int ranks = 2;
  std::string policy = "filtered";
  int remap_interval = 5;
  int window = 3;
  long long min_transfer = 24;
  int threads = 1;
  std::string step = "overlap";  ///< "overlap" | "blocking"
  std::string transport = "socket";  ///< "socket" | "shm" | "auto"
  long long shm_ring_bytes = 0;

  // --- service options ---
  /// Equilibration prefix (phases) eligible for the warm-state cache;
  /// 0 = no warm handling.
  long long warm_phases = 0;
  /// Stream an observable + trace fragment every N phases; 0 = off.
  long long stream_every = 0;
  /// Crash-recovery checkpoint interval; 0 = no recovery checkpoints.
  long long checkpoint_every = 0;
  /// Per-job supervision budgets (transport::LaunchConfig).
  double heartbeat_interval = 0.25;
  double heartbeat_grace = 5.0;
  double wall_clock_budget = 120.0;
  /// "physics" (default: bit-identical across decompositions) | "full"
  /// (adds per-rank plane-ownership lines, a scheduling detail).
  std::string observables = "physics";

  // --- fault injection (testing / chaos drills) ---
  int fault_kill_rank = -1;
  long long fault_kill_phase = -1;

  /// Parse + validate a spec object. Unknown keys are rejected (the
  /// JSON-level mirror of the worker's unknown-flag hygiene); invalid
  /// values throw serve_error naming the field.
  static JobSpec from_json(const util::JsonValue& v);

  /// Re-serialize (canonical through JsonValue::dump()).
  util::JsonValue to_json() const;

  /// Canonical warm-cache key material: geometry, component count,
  /// physical parameters and the warm phase count — and nothing else.
  /// Ranks, transport, policy, threads and step mode are deliberately
  /// absent: the equilibrated state is invariant to all of them, so a
  /// warm checkpoint produced by a 2-rank socket job seeds a 4-rank shm
  /// job of the same physics.
  std::string warm_key() const;
};

/// Filesystem outputs of one worker launch; empty members are omitted
/// from the argv.
struct JobPaths {
  std::string observables_out;
  std::string checkpoint_prefix;   ///< recovery checkpoints <prefix>.<P>.ckpt
  std::string stream_dir;          ///< incremental fragment directory
  std::string load_checkpoint;     ///< resume/seed source ("" = fresh)
  std::string warm_checkpoint_out; ///< publish equilibrated state here
};

/// Lower a spec to the launch configuration: worker argv (including the
/// path-shaped flags from `paths`), supervision budgets, transport.
/// When the spec requests recovery checkpoints the worker is forced to
/// --io=sync --checkpoint-atomic: only the synchronous path publishes
/// checkpoints via rename, and recovery must never seed from a torn
/// file. Fault-injection fields become extra_args for the guilty rank.
transport::LaunchConfig make_launch_config(const JobSpec& spec,
                                           const std::string& worker_exe,
                                           const JobPaths& paths);

}  // namespace slipflow::serve
