#include "serve/job_spec.hpp"

#include <set>
#include <string>

#include "serve/protocol.hpp"

namespace slipflow::serve {

namespace {

using util::JsonValue;

/// Reject spec members the schema does not know — a typo in a sweep key
/// must fail admission, not silently run the default.
void check_keys(const JsonValue& obj, const char* where,
                const std::set<std::string, std::less<>>& known) {
  for (const auto& [key, value] : obj.as_object()) {
    (void)value;
    if (known.find(key) == known.end())
      throw serve_error(std::string("unknown ") + where + " field \"" + key +
                        "\"");
  }
}

void require(bool ok, const std::string& what) {
  if (!ok) throw serve_error("invalid job spec: " + what);
}

}  // namespace

JobSpec JobSpec::from_json(const JsonValue& v) {
  if (!v.is_object()) throw serve_error("job spec must be a JSON object");
  check_keys(v, "job spec",
             {"geometry", "components", "phases", "params", "ranks", "policy",
              "remap_interval", "window", "min_transfer", "threads", "step",
              "transport", "shm_ring_bytes", "warm_phases", "stream_every",
              "checkpoint_every", "heartbeat_interval", "heartbeat_grace",
              "wall_clock_budget", "observables", "fault"});
  JobSpec s;
  if (const JsonValue* g = v.find("geometry")) {
    check_keys(*g, "geometry", {"nx", "ny", "nz"});
    s.nx = g->int_or("nx", s.nx);
    s.ny = g->int_or("ny", s.ny);
    s.nz = g->int_or("nz", s.nz);
  }
  s.components = v.int_or("components", s.components);
  s.phases = v.int_or("phases", s.phases);
  if (const JsonValue* p = v.find("params")) {
    check_keys(*p, "params",
               {"wall_accel", "wall_decay", "air_fraction", "coupling_g",
                "gravity"});
    s.wall_accel = p->number_or("wall_accel", s.wall_accel);
    s.wall_decay = p->number_or("wall_decay", s.wall_decay);
    s.air_fraction = p->number_or("air_fraction", s.air_fraction);
    s.coupling_g = p->number_or("coupling_g", s.coupling_g);
    s.gravity = p->number_or("gravity", s.gravity);
  }
  s.ranks = static_cast<int>(v.int_or("ranks", s.ranks));
  s.policy = v.string_or("policy", s.policy);
  s.remap_interval = static_cast<int>(v.int_or("remap_interval", s.remap_interval));
  s.window = static_cast<int>(v.int_or("window", s.window));
  s.min_transfer = v.int_or("min_transfer", s.min_transfer);
  s.threads = static_cast<int>(v.int_or("threads", s.threads));
  s.step = v.string_or("step", s.step);
  s.transport = v.string_or("transport", s.transport);
  s.shm_ring_bytes = v.int_or("shm_ring_bytes", s.shm_ring_bytes);
  s.warm_phases = v.int_or("warm_phases", s.warm_phases);
  s.stream_every = v.int_or("stream_every", s.stream_every);
  s.checkpoint_every = v.int_or("checkpoint_every", s.checkpoint_every);
  s.heartbeat_interval = v.number_or("heartbeat_interval", s.heartbeat_interval);
  s.heartbeat_grace = v.number_or("heartbeat_grace", s.heartbeat_grace);
  s.wall_clock_budget = v.number_or("wall_clock_budget", s.wall_clock_budget);
  s.observables = v.string_or("observables", s.observables);
  if (const JsonValue* f = v.find("fault")) {
    check_keys(*f, "fault", {"kill_rank", "kill_phase"});
    s.fault_kill_rank = static_cast<int>(f->int_or("kill_rank", -1));
    s.fault_kill_phase = f->int_or("kill_phase", -1);
  }

  require(s.nx >= 2 && s.ny >= 2 && s.nz >= 1, "geometry must be >= 2x2x1");
  require(s.components == 2,
          "components must be 2 (the microchannel water+air model)");
  require(s.phases >= 1, "phases must be >= 1");
  require(s.ranks >= 1, "ranks must be >= 1");
  require(s.nx >= s.ranks, "nx must be >= ranks (one plane per rank)");
  require(s.step == "overlap" || s.step == "blocking",
          "step must be \"overlap\" or \"blocking\"");
  require(s.transport == "socket" || s.transport == "shm" ||
              s.transport == "auto",
          "transport must be \"socket\", \"shm\" or \"auto\"");
  require(s.observables == "physics" || s.observables == "full",
          "observables must be \"physics\" or \"full\"");
  require(s.warm_phases >= 0 && s.warm_phases <= s.phases,
          "warm_phases must be in [0, phases]");
  require(s.stream_every >= 0, "stream_every must be >= 0");
  require(s.checkpoint_every >= 0, "checkpoint_every must be >= 0");
  require(s.threads >= 1, "threads must be >= 1");
  require(s.remap_interval >= 1, "remap_interval must be >= 1");
  require(s.heartbeat_interval > 0.0, "heartbeat_interval must be > 0");
  require(s.wall_clock_budget > 0.0, "wall_clock_budget must be > 0");
  return s;
}

util::JsonValue JobSpec::to_json() const {
  JsonValue::Object geometry;
  geometry["nx"] = JsonValue(nx);
  geometry["ny"] = JsonValue(ny);
  geometry["nz"] = JsonValue(nz);
  JsonValue::Object params;
  params["wall_accel"] = JsonValue(wall_accel);
  params["wall_decay"] = JsonValue(wall_decay);
  params["air_fraction"] = JsonValue(air_fraction);
  params["coupling_g"] = JsonValue(coupling_g);
  params["gravity"] = JsonValue(gravity);
  JsonValue::Object o;
  o["geometry"] = JsonValue(std::move(geometry));
  o["components"] = JsonValue(components);
  o["phases"] = JsonValue(phases);
  o["params"] = JsonValue(std::move(params));
  o["ranks"] = JsonValue(static_cast<long long>(ranks));
  o["policy"] = JsonValue(policy);
  o["remap_interval"] = JsonValue(static_cast<long long>(remap_interval));
  o["window"] = JsonValue(static_cast<long long>(window));
  o["min_transfer"] = JsonValue(min_transfer);
  o["threads"] = JsonValue(static_cast<long long>(threads));
  o["step"] = JsonValue(step);
  o["transport"] = JsonValue(transport);
  o["shm_ring_bytes"] = JsonValue(shm_ring_bytes);
  o["warm_phases"] = JsonValue(warm_phases);
  o["stream_every"] = JsonValue(stream_every);
  o["checkpoint_every"] = JsonValue(checkpoint_every);
  o["heartbeat_interval"] = JsonValue(heartbeat_interval);
  o["heartbeat_grace"] = JsonValue(heartbeat_grace);
  o["wall_clock_budget"] = JsonValue(wall_clock_budget);
  o["observables"] = JsonValue(observables);
  if (fault_kill_rank >= 0 || fault_kill_phase >= 0) {
    JsonValue::Object fault;
    fault["kill_rank"] = JsonValue(static_cast<long long>(fault_kill_rank));
    fault["kill_phase"] = JsonValue(fault_kill_phase);
    o["fault"] = JsonValue(std::move(fault));
  }
  return JsonValue(std::move(o));
}

std::string JobSpec::warm_key() const {
  JsonValue::Object geometry;
  geometry["nx"] = JsonValue(nx);
  geometry["ny"] = JsonValue(ny);
  geometry["nz"] = JsonValue(nz);
  JsonValue::Object params;
  params["wall_accel"] = JsonValue(wall_accel);
  params["wall_decay"] = JsonValue(wall_decay);
  params["air_fraction"] = JsonValue(air_fraction);
  params["coupling_g"] = JsonValue(coupling_g);
  params["gravity"] = JsonValue(gravity);
  JsonValue::Object o;
  o["geometry"] = JsonValue(std::move(geometry));
  o["components"] = JsonValue(components);
  o["params"] = JsonValue(std::move(params));
  o["warm_phases"] = JsonValue(warm_phases);
  // dump() is canonical (sorted keys, deterministic number formatting),
  // so equal physics always hashes to the same cache entry.
  return JsonValue(std::move(o)).dump();
}

transport::LaunchConfig make_launch_config(const JobSpec& spec,
                                           const std::string& worker_exe,
                                           const JobPaths& paths) {
  const auto num = [](double v) { return util::json_number(v); };
  transport::LaunchConfig lc;
  lc.ranks = spec.ranks;
  lc.transport = spec.transport;
  lc.shm_ring_bytes = spec.shm_ring_bytes;
  lc.heartbeat_interval = spec.heartbeat_interval;
  lc.heartbeat_grace = spec.heartbeat_grace;
  lc.wall_clock_timeout = spec.wall_clock_budget;
  lc.worker_command = {worker_exe,
                       "--nx=" + std::to_string(spec.nx),
                       "--ny=" + std::to_string(spec.ny),
                       "--nz=" + std::to_string(spec.nz),
                       "--phases=" + std::to_string(spec.phases),
                       "--wall-accel=" + num(spec.wall_accel),
                       "--wall-decay=" + num(spec.wall_decay),
                       "--air-fraction=" + num(spec.air_fraction),
                       "--coupling-g=" + num(spec.coupling_g),
                       "--gravity=" + num(spec.gravity),
                       "--policy=" + spec.policy,
                       "--remap-interval=" + std::to_string(spec.remap_interval),
                       "--window=" + std::to_string(spec.window),
                       "--min-transfer=" + std::to_string(spec.min_transfer),
                       "--threads=" + std::to_string(spec.threads),
                       "--step=" + spec.step,
                       "--observables=" + spec.observables};
  if (!paths.observables_out.empty())
    lc.worker_command.push_back("--observables-out=" + paths.observables_out);
  if (!paths.load_checkpoint.empty())
    lc.worker_command.push_back("--load-checkpoint=" + paths.load_checkpoint);
  if (!paths.warm_checkpoint_out.empty() && spec.warm_phases > 0) {
    lc.worker_command.push_back("--warm-phases=" +
                                std::to_string(spec.warm_phases));
    lc.worker_command.push_back("--warm-checkpoint-out=" +
                                paths.warm_checkpoint_out);
  }
  if (spec.stream_every > 0 && !paths.stream_dir.empty()) {
    lc.worker_command.push_back("--stream-every=" +
                                std::to_string(spec.stream_every));
    lc.worker_command.push_back("--stream-dir=" + paths.stream_dir);
  }
  if (spec.checkpoint_every > 0 && !paths.checkpoint_prefix.empty()) {
    lc.worker_command.push_back("--checkpoint-every=" +
                                std::to_string(spec.checkpoint_every));
    lc.worker_command.push_back("--checkpoint-out=" + paths.checkpoint_prefix);
    // Recovery seeds only from complete files: atomic publication is a
    // sync-path property, so force --io=sync for checkpointing jobs.
    lc.worker_command.push_back("--checkpoint-atomic");
    lc.worker_command.push_back("--io=sync");
  }
  if (spec.fault_kill_rank >= 0 && spec.fault_kill_rank < spec.ranks &&
      spec.fault_kill_phase >= 0)
    lc.extra_args[spec.fault_kill_rank] = {
        "--fault-kill-phase=" + std::to_string(spec.fault_kill_phase)};
  return lc;
}

}  // namespace slipflow::serve
