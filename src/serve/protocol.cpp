#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace slipflow::serve {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw serve_error(what + ": " + std::strerror(errno));
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw serve_error("socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Fd unix_listen(const std::string& path, int backlog) {
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) fail("socket");
  const sockaddr_un addr = make_addr(path);
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    fail("bind " + path);
  if (::listen(fd.get(), backlog) != 0) fail("listen " + path);
  return fd;
}

Fd unix_accept(const Fd& listener) {
  while (true) {
    const int c = ::accept(listener.get(), nullptr, nullptr);
    if (c >= 0) return Fd(c);
    if (errno == EINTR) continue;
    // shutdown() on the listening socket makes accept fail with EINVAL
    // — the accept loop's clean stop signal.
    if (errno == EINVAL || errno == EBADF) return Fd();
    fail("accept");
  }
}

void unix_shutdown(const Fd& listener) {
  if (listener.valid()) ::shutdown(listener.get(), SHUT_RDWR);
}

Fd unix_connect(const std::string& path, double timeout_seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  const sockaddr_un addr = make_addr(path);
  while (true) {
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) fail("socket");
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0)
      return fd;
    if (std::chrono::steady_clock::now() >= deadline)
      fail("connect " + path);
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
}

bool LineChannel::read_line(std::string& out) {
  while (true) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      out.assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      if (buf_.empty()) return false;
      out = std::move(buf_);  // final unterminated line
      buf_.clear();
      return true;
    }
    if (errno == EINTR) continue;
    fail("recv");
  }
}

void LineChannel::write_line(const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::send(fd_.get(), framed.data() + off,
                             framed.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    fail("send");
  }
}

}  // namespace slipflow::serve
