/// The campaign-server daemon: accepts JSON job specs on a Unix-domain
/// control socket and runs them as isolated multi-process simulations
/// over a shared pool of worker slots (see serve/server.hpp).
///
///   slipflow_served --socket=/tmp/slipflow.sock --work-dir=/tmp/campaign
///       [--worker=/path/to/slipflow_worker] [--slots=8] [--max-ranks=8]
///       [--max-queued=16] [--max-attempts=3]
///
/// Runs until SIGINT/SIGTERM or a client's {"cmd":"shutdown"}; queued
/// jobs are cancelled, running jobs finish (wall-clock bounded).

#include <csignal>
#include <iostream>
#include <string>
#include <thread>

#include "serve/server.hpp"
#include "util/options.hpp"

#ifndef SLIPFLOW_WORKER_EXE
#error "SLIPFLOW_WORKER_EXE must point at the slipflow_worker binary"
#endif

using namespace slipflow;

namespace {

volatile std::sig_atomic_t g_signalled = 0;
void on_signal(int) { g_signalled = 1; }

}  // namespace

int main(int argc, char** argv) {
  const auto opts = util::Options::parse(argc, argv);
  serve::CampaignServer::Config cfg;
  cfg.socket_path = opts.get("socket", std::string{});
  cfg.work_dir = opts.get("work-dir", std::string{});
  cfg.worker_exe = opts.get("worker", std::string(SLIPFLOW_WORKER_EXE));
  cfg.policy.total_slots = static_cast<int>(opts.get("slots", 8LL));
  cfg.policy.max_ranks_per_job =
      static_cast<int>(opts.get("max-ranks", 8LL));
  cfg.policy.max_queued = static_cast<int>(opts.get("max-queued", 16LL));
  cfg.policy.max_attempts = static_cast<int>(opts.get("max-attempts", 3LL));
  if (const std::string diag = opts.unknown_diagnostic(); !diag.empty()) {
    std::cerr << diag;
    return 2;
  }
  if (cfg.socket_path.empty() || cfg.work_dir.empty()) {
    std::cerr << "slipflow_served needs --socket=<path> and "
                 "--work-dir=<dir>\n";
    return 2;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  try {
    serve::CampaignServer server(cfg);
    server.start();
    std::cout << "slipflow_served listening on " << cfg.socket_path << " ("
              << cfg.policy.total_slots << " slots, worker "
              << cfg.worker_exe << ")" << std::endl;
    while (g_signalled == 0 && !server.shutdown_requested())
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    std::cout << "slipflow_served shutting down" << std::endl;
    server.stop();
  } catch (const std::exception& e) {
    std::cerr << "slipflow_served: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
