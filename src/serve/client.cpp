#include "serve/client.hpp"

#include "serve/protocol.hpp"

namespace slipflow::serve {

using util::JsonValue;

namespace {

JsonValue parse_response(const std::string& line) {
  const JsonValue v = util::json_parse(line);
  if (const JsonValue* err = v.find("error"))
    throw serve_error("server: " + err->as_string());
  return v;
}

/// Read event lines until {"event":"done"}; returns the final record.
JsonValue drain_events(LineChannel& ch,
                       const std::function<void(const JsonValue&)>& on_event) {
  std::string line;
  while (ch.read_line(line)) {
    const JsonValue ev = parse_response(line);
    if (ev.string_or("event", "") == "done") {
      const JsonValue* rec = ev.find("record");
      if (rec == nullptr) throw serve_error("done event without record");
      return *rec;
    }
    if (on_event) on_event(ev);
  }
  throw serve_error("server closed the stream before the job finished");
}

}  // namespace

JsonValue Client::roundtrip(const JsonValue& request) {
  LineChannel ch(unix_connect(socket_path_, connect_timeout_));
  ch.write_line(request.dump());
  std::string line;
  if (!ch.read_line(line)) throw serve_error("server closed the connection");
  return parse_response(line);
}

long long Client::submit(const std::string& tenant, const JobSpec& spec) {
  JsonValue::Object req;
  req["cmd"] = JsonValue("submit");
  req["tenant"] = JsonValue(tenant);
  req["spec"] = spec.to_json();
  const JsonValue resp = roundtrip(JsonValue(std::move(req)));
  return resp.int_or("job", -1);
}

JsonValue Client::wait(long long id,
                       const std::function<void(const JsonValue&)>& on_event) {
  LineChannel ch(unix_connect(socket_path_, connect_timeout_));
  JsonValue::Object req;
  req["cmd"] = JsonValue("wait");
  req["job"] = JsonValue(id);
  ch.write_line(JsonValue(std::move(req)).dump());
  std::string line;
  if (!ch.read_line(line)) throw serve_error("server closed the connection");
  parse_response(line);  // the ack; throws on {"ok":false}
  return drain_events(ch, on_event);
}

JsonValue Client::run(const std::string& tenant, const JobSpec& spec,
                      long long* id_out,
                      const std::function<void(const JsonValue&)>& on_event) {
  LineChannel ch(unix_connect(socket_path_, connect_timeout_));
  JsonValue::Object req;
  req["cmd"] = JsonValue("submit");
  req["tenant"] = JsonValue(tenant);
  req["spec"] = spec.to_json();
  req["wait"] = JsonValue(true);
  ch.write_line(JsonValue(std::move(req)).dump());
  std::string line;
  if (!ch.read_line(line)) throw serve_error("server closed the connection");
  const JsonValue ack = parse_response(line);
  if (id_out != nullptr) *id_out = ack.int_or("job", -1);
  return drain_events(ch, on_event);
}

JsonValue Client::status(long long id) {
  JsonValue::Object req;
  req["cmd"] = JsonValue("status");
  req["job"] = JsonValue(id);
  const JsonValue resp = roundtrip(JsonValue(std::move(req)));
  const JsonValue* rec = resp.find("record");
  if (rec == nullptr) throw serve_error("status response without record");
  return *rec;
}

JsonValue Client::stats() {
  JsonValue::Object req;
  req["cmd"] = JsonValue("stats");
  return roundtrip(JsonValue(std::move(req)));
}

void Client::shutdown() {
  JsonValue::Object req;
  req["cmd"] = JsonValue("shutdown");
  roundtrip(JsonValue(std::move(req)));
}

}  // namespace slipflow::serve
