#pragma once
/// \file protocol.hpp
/// Wire layer of the campaign server: Unix-domain stream sockets with
/// line-delimited JSON framing. Every control message — submit, status,
/// wait, stats, shutdown — is one JSON document per '\n'-terminated
/// line, in both directions. Streaming responses (job progress, result
/// fragments) are just more lines on the same connection, so a client
/// needs nothing beyond "read lines, parse each as JSON".
///
/// The helpers here are deliberately minimal: RAII around the fd, a
/// listener/connector pair, and a buffered line channel. Everything
/// policy-shaped lives in server.hpp.

#include <stdexcept>
#include <string>

namespace slipflow::serve {

/// Errors of the serve layer: admission rejects, malformed specs,
/// protocol violations, socket failures.
class serve_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void reset();

 private:
  int fd_ = -1;
};

/// Bind + listen on a Unix-domain stream socket at `path` (any stale
/// socket file is unlinked first). Throws serve_error on failure.
Fd unix_listen(const std::string& path, int backlog = 16);

/// Block until a client connects. Returns an invalid Fd when the
/// listener has been shut down (see unix_shutdown) — the accept loop's
/// clean exit — and throws serve_error on unexpected errors.
Fd unix_accept(const Fd& listener);

/// Wake a blocked unix_accept. Safe to call from another thread while
/// the accept loop is running; the listener stays owned by its Fd.
void unix_shutdown(const Fd& listener);

/// Connect to the server socket, retrying until `timeout_seconds` so a
/// client started moments before the daemon finished binding still
/// connects. Throws serve_error when the deadline passes.
Fd unix_connect(const std::string& path, double timeout_seconds = 5.0);

/// '\n'-delimited framing over a connected stream socket. Writes use
/// MSG_NOSIGNAL so a vanished peer surfaces as serve_error, not SIGPIPE.
class LineChannel {
 public:
  explicit LineChannel(Fd fd) : fd_(std::move(fd)) {}

  /// Read one line (without the terminator). False on clean EOF with no
  /// buffered partial line; throws serve_error on socket errors.
  bool read_line(std::string& out);

  /// Write `line` plus '\n'. Throws serve_error when the peer is gone.
  void write_line(const std::string& line);

 private:
  Fd fd_;
  std::string buf_;
};

}  // namespace slipflow::serve
