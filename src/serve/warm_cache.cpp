#include "serve/warm_cache.hpp"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "lbm/checkpoint.hpp"
#include "serve/protocol.hpp"

namespace slipflow::serve {

namespace fs = std::filesystem;

namespace {

/// Header parses, stored phase matches, and the file holds exactly the
/// bytes a complete checkpoint of that header must hold.
bool valid_entry(const std::string& path, long long warm_phases) {
  try {
    const lbm::CheckpointInfo info = lbm::read_checkpoint_info(path);
    if (info.phase != warm_phases) return false;
    std::error_code ec;
    const auto size = fs::file_size(path, ec);
    return !ec && size == lbm::expected_checkpoint_bytes(info);
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

WarmCache::WarmCache(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) throw serve_error("cannot create warm cache dir " + dir_);
}

std::string WarmCache::hash_key(const std::string& canonical_key) {
  // FNV-1a 64-bit.
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : canonical_key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::string WarmCache::entry_path(const std::string& canonical_key) const {
  return dir_ + "/warm_" + hash_key(canonical_key) + ".ckpt";
}

std::string WarmCache::lookup(const std::string& canonical_key,
                              long long warm_phases) const {
  const std::string path = entry_path(canonical_key);
  return valid_entry(path, warm_phases) ? path : std::string{};
}

bool WarmCache::promote(const std::string& canonical_key,
                        long long warm_phases,
                        const std::string& checkpoint_file) {
  if (!valid_entry(checkpoint_file, warm_phases)) return false;
  const std::string path = entry_path(canonical_key);
  if (valid_entry(path, warm_phases)) {
    // Entry already present: keep it, discard the duplicate. The two
    // states are physically identical (same key → same physics).
    std::remove(checkpoint_file.c_str());
    return true;
  }
  return std::rename(checkpoint_file.c_str(), path.c_str()) == 0;
}

}  // namespace slipflow::serve
