/// Submit client of the campaign server.
///
///   slipflow_submit --socket=/tmp/slipflow.sock --spec=job.json
///       [--tenant=alice] [--sweep=params.wall_accel=0.1,0.2,0.3]
///       [--out-dir=results] [--quiet] [--no-wait]
///   slipflow_submit --direct --spec=job.json [--out-dir=results]
///       [--worker=/path/to/slipflow_worker]
///
/// The spec file is one JSON job spec (see serve/job_spec.hpp; "-"
/// reads stdin). --sweep fans the spec out over comma-separated values
/// for one (possibly dotted) key, one job per value; the jobs run
/// concurrently on the server and are waited in submission order.
/// --direct runs the spec as a standalone launch_workers invocation on
/// this machine — same argv builder as the server, so its observables
/// are the byte-identity reference for served results.
///
/// Exit code: 0 when every job finished "done", 1 otherwise, 2 on bad
/// flags or an unreadable/invalid spec.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/client.hpp"
#include "serve/job_spec.hpp"
#include "serve/protocol.hpp"
#include "util/json.hpp"
#include "util/options.hpp"

#ifndef SLIPFLOW_WORKER_EXE
#error "SLIPFLOW_WORKER_EXE must point at the slipflow_worker binary"
#endif

using namespace slipflow;
using util::JsonValue;

namespace {

std::string read_spec_text(const std::string& path) {
  std::ostringstream os;
  if (path == "-") {
    os << std::cin.rdbuf();
  } else {
    std::ifstream f(path, std::ios::binary);
    if (!f) throw serve::serve_error("cannot read spec file " + path);
    os << f.rdbuf();
  }
  return os.str();
}

/// Return a copy of `root` with the member at `dotted` path replaced.
JsonValue set_path(const JsonValue& root, const std::string& dotted,
                   const JsonValue& val) {
  JsonValue::Object o =
      root.is_object() ? root.as_object() : JsonValue::Object{};
  const std::size_t dot = dotted.find('.');
  if (dot == std::string::npos) {
    o[dotted] = val;
  } else {
    const std::string head = dotted.substr(0, dot);
    const auto it = o.find(head);
    o[head] = set_path(it == o.end() ? JsonValue(JsonValue::Object{})
                                     : it->second,
                       dotted.substr(dot + 1), val);
  }
  return JsonValue(std::move(o));
}

/// Sweep values are JSON scalars when they parse as one ("0.2", "true"),
/// plain strings otherwise ("filtered").
JsonValue sweep_value(const std::string& text) {
  try {
    return util::json_parse(text);
  } catch (const std::exception&) {
    return JsonValue(text);
  }
}

void write_observables(const std::string& out_dir, long long job,
                       const std::string& obs) {
  if (out_dir.empty()) return;
  const std::string path =
      out_dir + "/obs_job" + std::to_string(job) + ".txt";
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw serve::serve_error("cannot write " + path);
  f << obs;
}

int run_direct(const std::vector<JsonValue>& specs,
               const std::string& worker_exe, const std::string& out_dir) {
  int failures = 0;
  long long n = 0;
  for (const JsonValue& spec_json : specs) {
    ++n;
    const serve::JobSpec spec = serve::JobSpec::from_json(spec_json);
    serve::JobPaths paths;
    const std::string dir = out_dir.empty() ? "." : out_dir;
    paths.observables_out =
        dir + "/obs_direct" + std::to_string(n) + ".txt";
    const transport::LaunchConfig lc =
        serve::make_launch_config(spec, worker_exe, paths);
    const transport::LaunchResult res = transport::launch_workers(lc);
    if (res.ok) {
      std::cout << "direct run " << n << ": done in " << res.elapsed_seconds
                << "s, observables at " << paths.observables_out << "\n";
    } else {
      ++failures;
      std::cout << "direct run " << n << ": FAILED (rank "
                << res.failed_rank << ")\n"
                << res.diagnostic << "\n";
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = util::Options::parse(argc, argv);
  const std::string socket = opts.get("socket", std::string{});
  const std::string spec_path = opts.get("spec", std::string{});
  const std::string tenant = opts.get("tenant", std::string("default"));
  const std::string sweep = opts.get("sweep", std::string{});
  const std::string out_dir = opts.get("out-dir", std::string{});
  const bool quiet = opts.get("quiet", false);
  const bool no_wait = opts.get("no-wait", false);
  const bool direct = opts.get("direct", false);
  const std::string worker =
      opts.get("worker", std::string(SLIPFLOW_WORKER_EXE));
  const double timeout = opts.get("connect-timeout", 10.0);
  if (const std::string diag = opts.unknown_diagnostic(); !diag.empty()) {
    std::cerr << diag;
    return 2;
  }
  if (spec_path.empty()) {
    std::cerr << "slipflow_submit needs --spec=<file|->\n";
    return 2;
  }
  if (!direct && socket.empty()) {
    std::cerr << "slipflow_submit needs --socket=<path> (or --direct)\n";
    return 2;
  }

  try {
    const JsonValue base = util::json_parse(read_spec_text(spec_path));

    // Fan the spec out over the sweep values (one job per value).
    std::vector<JsonValue> specs;
    if (sweep.empty()) {
      specs.push_back(base);
    } else {
      const std::size_t eq = sweep.find('=');
      if (eq == std::string::npos || eq == 0)
        throw serve::serve_error("--sweep needs key=v1,v2,...");
      const std::string key = sweep.substr(0, eq);
      std::istringstream values(sweep.substr(eq + 1));
      std::string v;
      while (std::getline(values, v, ','))
        specs.push_back(set_path(base, key, sweep_value(v)));
      if (specs.empty())
        throw serve::serve_error("--sweep produced no values");
    }
    // Validate everything before submitting anything.
    for (const JsonValue& s : specs) (void)serve::JobSpec::from_json(s);

    if (direct) return run_direct(specs, worker, out_dir);

    serve::Client client(socket, timeout);
    std::vector<long long> ids;
    for (const JsonValue& s : specs) {
      const long long id =
          client.submit(tenant, serve::JobSpec::from_json(s));
      std::cout << "submitted job " << id << "\n";
      ids.push_back(id);
    }
    if (no_wait) return 0;

    int failures = 0;
    for (const long long id : ids) {
      const JsonValue record =
          client.wait(id, [&](const JsonValue& ev) {
            if (!quiet) std::cout << "job " << id << ": " << ev.dump() << "\n";
          });
      const std::string state = record.string_or("state", "?");
      std::cout << "job " << id << ": " << state << ", attempts "
                << record.int_or("attempts", 0) << ", phases executed "
                << record.int_or("phases_executed", 0)
                << (record.bool_or("warm_hit", false) ? ", warm cache hit"
                                                      : "")
                << "\n";
      if (state == "done") {
        write_observables(out_dir, id,
                          record.string_or("observables", ""));
      } else {
        ++failures;
        std::cout << "  diagnostic: " << record.string_or("diagnostic", "")
                  << "\n";
      }
    }
    return failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "slipflow_submit: " << e.what() << "\n";
    return 2;
  }
}
