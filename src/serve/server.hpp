#pragma once
/// \file server.hpp
/// The campaign server: multi-tenant simulation-as-a-service over a
/// shared pool of worker slots.
///
/// Tenants submit JSON job specs (job_spec.hpp) over a Unix-domain
/// control socket (protocol.hpp). Each accepted job is validated
/// against the admission policy, queued, and scheduled onto the slot
/// pool; a running job gets its own isolated worker mesh — a fresh
/// socket/shm directory per launch, courtesy of launch_workers — so
/// concurrent tenants can never cross wires. The launcher's heartbeat
/// supervision turns worker crashes and freezes into named diagnostics;
/// the server then recovers the job from its newest complete
/// checkpoint and requeues the remainder, preserving the guilty-rank
/// diagnostic in the job record. Repeated physics hits the warm-state
/// cache (warm_cache.hpp) and skips the equilibration prefix entirely.
///
/// Scheduling: a job needs `ranks` slots. Among queued jobs that fit
/// the free slots, the winner is the tenant currently holding the
/// fewest running slots (fair share), tie broken by submission order.
/// Jobs too wide for the current gap do not block narrower jobs behind
/// them, but fair share keeps a chatty tenant from starving others.

#include <condition_variable>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/job_spec.hpp"
#include "serve/protocol.hpp"
#include "serve/warm_cache.hpp"
#include "util/json.hpp"

namespace slipflow::serve {

/// What the server is willing to accept.
struct AdmissionPolicy {
  /// Size of the shared worker-slot pool; one rank = one slot.
  int total_slots = 8;
  /// Widest single job.
  int max_ranks_per_job = 8;
  /// Queued (not yet running) jobs across all tenants.
  int max_queued = 16;
  /// Launch attempts per job (1 initial + recoveries).
  int max_attempts = 3;
};

/// Lifecycle of one job.
enum class JobState { queued, running, done, failed, cancelled };

const char* to_string(JobState s);

/// One queue entry (submission order = vector order; ids are monotonic).
struct QueuedJob {
  long long id;
  std::string tenant;
  int ranks;
};

/// Fair-share chooser, exposed for unit tests: index into `queue` of
/// the next job to start given `free_slots`, or -1 when nothing fits.
/// Winner: fits the gap, tenant with the fewest running slots, tie →
/// earliest submission. A wide job never blocks a narrower one behind
/// it, but fair share keeps a chatty tenant from starving others.
int pick_next_job(const std::vector<QueuedJob>& queue,
                  const std::map<std::string, int>& tenant_running_slots,
                  int free_slots);

/// Everything the server remembers about a job. Fields are guarded by
/// the server mutex once the record is registered.
struct JobRecord {
  long long id = 0;
  std::string tenant;
  JobSpec spec;
  JobState state = JobState::queued;
  int attempts = 0;
  /// Last failure diagnostic from the launcher — names the guilty rank
  /// ("rank 2 killed by signal 9 ..."). Preserved across a successful
  /// recovery so the record shows what happened, not just the outcome.
  std::string diagnostic;
  int failed_rank = -1;
  /// True when the job seeded from the warm-state cache.
  bool warm_hit = false;
  /// Phases actually stepped across all attempts — a warm-hit job of N
  /// phases with warm prefix W executes N - W, which is the measurable
  /// proof the cache skipped equilibration.
  long long phases_executed = 0;
  /// Highest heartbeat phase seen across attempts.
  long long top_phase = 0;
  /// Final observables text (rank 0), present when state == done.
  std::string observables;
  /// Event log streamed to waiting clients: one JSON document per entry
  /// (queued/started/progress/fragment/failure/recovery/done).
  std::vector<std::string> events;
};

class CampaignServer {
 public:
  struct Config {
    std::string socket_path;  ///< control socket ("" = no socket; in-process API only)
    std::string work_dir;     ///< job directories + warm cache live here
    std::string worker_exe;   ///< slipflow_worker binary
    AdmissionPolicy policy;
  };

  explicit CampaignServer(Config cfg);
  ~CampaignServer();

  /// Bind the control socket (if configured) and start the accept +
  /// scheduler threads.
  void start();

  /// Stop accepting, cancel queued jobs, wait for running jobs (they
  /// are wall-clock bounded) and connection threads. Idempotent.
  void stop();

  /// True once a client asked for shutdown; the daemon polls this.
  bool shutdown_requested() const;

  // --- in-process API (connection handlers and tests use the same) ---

  /// Validate + enqueue. Returns the job id; throws serve_error on an
  /// admission reject (spec invalid, too wide, queue full).
  long long submit(const std::string& tenant, const JobSpec& spec);

  /// Job record as JSON (includes observables when done).
  util::JsonValue status(long long id) const;

  /// Block until the job reaches a terminal state; returns its record
  /// JSON. Streams nothing — wait-with-events lives on the socket path.
  util::JsonValue wait(long long id);

  /// Server counters: jobs by state, cache hits/misses, slot usage.
  util::JsonValue stats() const;

 private:
  void accept_loop();
  void scheduler_loop();
  void handle_connection(Fd fd);
  /// Stream the job's event log to the client, finishing with a
  /// {"event":"done","record":{...}} line at the terminal state.
  void stream_job(LineChannel& ch, long long id);
  void run_job(JobRecord& rec);
  /// Caller holds mu_.
  void append_event(JobRecord& rec, std::string event_json_line);
  util::JsonValue record_json_locked(const JobRecord& rec) const;

  Config cfg_;
  WarmCache cache_;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  bool started_ = false;
  bool stopping_ = false;
  bool shutdown_requested_ = false;
  long long next_id_ = 1;
  int free_slots_ = 0;
  std::map<long long, std::unique_ptr<JobRecord>> jobs_;
  std::vector<QueuedJob> queue_;
  std::map<std::string, int> tenant_running_slots_;
  long long cache_hits_ = 0;
  long long cache_misses_ = 0;

  Fd listener_;
  std::thread accept_thread_;
  std::thread scheduler_thread_;
  std::vector<std::thread> job_threads_;
  std::vector<std::thread> conn_threads_;
  /// Open connection fds, shut down on stop() so blocked reads unblock.
  std::set<int> conn_fds_;
};

}  // namespace slipflow::serve
