#pragma once
/// \file client.hpp
/// Client side of the campaign-server protocol, used by the
/// slipflow_submit CLI and the end-to-end tests. Each call opens a
/// fresh connection — the protocol is one request per connection, with
/// streaming responses for the waiting forms — so a client object
/// carries no connection state and is trivially safe to share across
/// threads submitting different jobs.

#include <functional>
#include <string>

#include "serve/job_spec.hpp"
#include "util/json.hpp"

namespace slipflow::serve {

class Client {
 public:
  explicit Client(std::string socket_path, double connect_timeout = 5.0)
      : socket_path_(std::move(socket_path)),
        connect_timeout_(connect_timeout) {}

  /// Submit without waiting; returns the job id. Throws serve_error on
  /// admission rejects (carrying the server's diagnostic).
  long long submit(const std::string& tenant, const JobSpec& spec);

  /// Block until the job is terminal, invoking `on_event` (when set)
  /// for every streamed event line — progress, fragments, failures,
  /// recoveries. Returns the final job record.
  util::JsonValue wait(long long id,
                       const std::function<void(const util::JsonValue&)>&
                           on_event = nullptr);

  /// submit + wait on a single connection.
  util::JsonValue run(const std::string& tenant, const JobSpec& spec,
                      long long* id_out = nullptr,
                      const std::function<void(const util::JsonValue&)>&
                          on_event = nullptr);

  util::JsonValue status(long long id);
  util::JsonValue stats();
  void shutdown();

 private:
  util::JsonValue roundtrip(const util::JsonValue& request);

  std::string socket_path_;
  double connect_timeout_;
};

}  // namespace slipflow::serve
