#include "serve/server.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>

#include "lbm/checkpoint.hpp"

namespace slipflow::serve {

namespace fs = std::filesystem;
using util::JsonValue;

namespace {

bool is_terminal(JobState s) {
  return s == JobState::done || s == JobState::failed ||
         s == JobState::cancelled;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw serve_error("missing output file " + path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

std::string make_event(std::initializer_list<std::pair<const char*, JsonValue>> kv) {
  JsonValue::Object o;
  for (auto& [k, v] : kv) o[k] = v;
  return JsonValue(std::move(o)).dump();
}

std::string error_json(const std::string& what) {
  JsonValue::Object o;
  o["ok"] = JsonValue(false);
  o["error"] = JsonValue(what);
  return JsonValue(std::move(o)).dump();
}

/// Newest complete recovery checkpoint `<prefix>.<P>.ckpt` in `dir`
/// matching the spec's domain. Torn files cannot appear (checkpointing
/// jobs publish via rename), but validate header + exact size anyway —
/// the directory is also the tenant's, not only ours.
struct RecoveryCandidate {
  std::string path;
  long long phase = 0;
};

RecoveryCandidate best_recovery_checkpoint(const std::string& dir,
                                           const JobSpec& spec) {
  RecoveryCandidate best;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 9 || name.compare(0, 3, "ck.") != 0 ||
        name.compare(name.size() - 5, 5, ".ckpt") != 0)
      continue;
    const std::string digits = name.substr(3, name.size() - 8);
    if (digits.empty() ||
        !std::all_of(digits.begin(), digits.end(),
                     [](unsigned char c) { return std::isdigit(c); }))
      continue;
    try {
      const std::string path = entry.path().string();
      const lbm::CheckpointInfo info = lbm::read_checkpoint_info(path);
      if (info.global.nx != spec.nx || info.global.ny != spec.ny ||
          info.global.nz != spec.nz ||
          info.components != static_cast<std::size_t>(spec.components))
        continue;
      std::error_code sec;
      if (fs::file_size(path, sec) != lbm::expected_checkpoint_bytes(info) ||
          sec)
        continue;
      if (info.phase > best.phase && info.phase <= spec.phases) {
        best.path = path;
        best.phase = info.phase;
      }
    } catch (const std::exception&) {
      continue;  // unreadable candidate: not a recovery seed
    }
  }
  return best;
}

}  // namespace

const char* to_string(JobState s) {
  switch (s) {
    case JobState::queued: return "queued";
    case JobState::running: return "running";
    case JobState::done: return "done";
    case JobState::failed: return "failed";
    case JobState::cancelled: return "cancelled";
  }
  return "unknown";
}

int pick_next_job(const std::vector<QueuedJob>& queue,
                  const std::map<std::string, int>& tenant_running_slots,
                  int free_slots) {
  int best = -1;
  int best_load = 0;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    if (queue[i].ranks > free_slots) continue;
    const auto it = tenant_running_slots.find(queue[i].tenant);
    const int load = it == tenant_running_slots.end() ? 0 : it->second;
    if (best < 0 || load < best_load) {
      best = static_cast<int>(i);
      best_load = load;
    }
  }
  return best;
}

CampaignServer::CampaignServer(Config cfg)
    : cfg_(std::move(cfg)), cache_(cfg_.work_dir + "/warm") {}

CampaignServer::~CampaignServer() { stop(); }

void CampaignServer::start() {
  {
    std::lock_guard lk(mu_);
    if (started_) throw serve_error("server already started");
    started_ = true;
    free_slots_ = cfg_.policy.total_slots;
  }
  if (!cfg_.socket_path.empty()) {
    listener_ = unix_listen(cfg_.socket_path);
    accept_thread_ = std::thread(&CampaignServer::accept_loop, this);
  }
  scheduler_thread_ = std::thread(&CampaignServer::scheduler_loop, this);
}

void CampaignServer::stop() {
  {
    std::lock_guard lk(mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
    for (const QueuedJob& q : queue_) {
      JobRecord& rec = *jobs_.at(q.id);
      rec.state = JobState::cancelled;
      rec.diagnostic = "cancelled: server shutdown";
      append_event(rec, make_event({{"event", JsonValue("cancelled")},
                                    {"job", JsonValue(q.id)}}));
    }
    queue_.clear();
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    cv_.notify_all();
  }
  unix_shutdown(listener_);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (scheduler_thread_.joinable()) scheduler_thread_.join();
  // Running jobs finish on their own — every launch is bounded by the
  // job's wall-clock budget, so this join cannot hang indefinitely.
  for (std::thread& t : job_threads_)
    if (t.joinable()) t.join();
  for (std::thread& t : conn_threads_)
    if (t.joinable()) t.join();
  listener_.reset();
}

bool CampaignServer::shutdown_requested() const {
  std::lock_guard lk(mu_);
  return shutdown_requested_;
}

void CampaignServer::append_event(JobRecord& rec, std::string event_json_line) {
  rec.events.push_back(std::move(event_json_line));
  cv_.notify_all();
}

long long CampaignServer::submit(const std::string& tenant,
                                 const JobSpec& spec) {
  std::lock_guard lk(mu_);
  if (!started_ || stopping_) throw serve_error("server is not accepting jobs");
  const AdmissionPolicy& pol = cfg_.policy;
  if (spec.ranks > pol.max_ranks_per_job)
    throw serve_error("admission reject: job wants " +
                      std::to_string(spec.ranks) +
                      " ranks, policy allows at most " +
                      std::to_string(pol.max_ranks_per_job) + " per job");
  if (spec.ranks > pol.total_slots)
    throw serve_error("admission reject: job wants " +
                      std::to_string(spec.ranks) +
                      " ranks but the slot pool holds " +
                      std::to_string(pol.total_slots));
  if (static_cast<int>(queue_.size()) >= pol.max_queued)
    throw serve_error("admission reject: queue full (max_queued=" +
                      std::to_string(pol.max_queued) + ")");
  const long long id = next_id_++;
  auto rec = std::make_unique<JobRecord>();
  rec->id = id;
  rec->tenant = tenant;
  rec->spec = spec;
  append_event(*rec, make_event({{"event", JsonValue("queued")},
                                 {"job", JsonValue(id)},
                                 {"tenant", JsonValue(tenant)}}));
  queue_.push_back(QueuedJob{id, tenant, spec.ranks});
  jobs_.emplace(id, std::move(rec));
  cv_.notify_all();
  return id;
}

JsonValue CampaignServer::record_json_locked(const JobRecord& rec) const {
  JsonValue::Object o;
  o["id"] = JsonValue(rec.id);
  o["tenant"] = JsonValue(rec.tenant);
  o["state"] = JsonValue(to_string(rec.state));
  o["attempts"] = JsonValue(static_cast<long long>(rec.attempts));
  o["failed_rank"] = JsonValue(static_cast<long long>(rec.failed_rank));
  o["diagnostic"] = JsonValue(rec.diagnostic);
  o["warm_hit"] = JsonValue(rec.warm_hit);
  o["phases_executed"] = JsonValue(rec.phases_executed);
  o["top_phase"] = JsonValue(rec.top_phase);
  o["spec"] = rec.spec.to_json();
  if (rec.state == JobState::done)
    o["observables"] = JsonValue(rec.observables);
  return JsonValue(std::move(o));
}

JsonValue CampaignServer::status(long long id) const {
  std::lock_guard lk(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    throw serve_error("no such job " + std::to_string(id));
  return record_json_locked(*it->second);
}

JsonValue CampaignServer::wait(long long id) {
  std::unique_lock lk(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end())
    throw serve_error("no such job " + std::to_string(id));
  JobRecord& rec = *it->second;
  cv_.wait(lk, [&] { return stopping_ || is_terminal(rec.state); });
  return record_json_locked(rec);
}

JsonValue CampaignServer::stats() const {
  std::lock_guard lk(mu_);
  long long queued = 0, running = 0, done = 0, failed = 0, cancelled = 0;
  for (const auto& [id, rec] : jobs_) {
    (void)id;
    switch (rec->state) {
      case JobState::queued: ++queued; break;
      case JobState::running: ++running; break;
      case JobState::done: ++done; break;
      case JobState::failed: ++failed; break;
      case JobState::cancelled: ++cancelled; break;
    }
  }
  JsonValue::Object o;
  o["ok"] = JsonValue(true);
  o["jobs"] = JsonValue(static_cast<long long>(jobs_.size()));
  o["queued"] = JsonValue(queued);
  o["running"] = JsonValue(running);
  o["done"] = JsonValue(done);
  o["failed"] = JsonValue(failed);
  o["cancelled"] = JsonValue(cancelled);
  o["cache_hits"] = JsonValue(cache_hits_);
  o["cache_misses"] = JsonValue(cache_misses_);
  o["slots_total"] = JsonValue(static_cast<long long>(cfg_.policy.total_slots));
  o["slots_free"] = JsonValue(static_cast<long long>(free_slots_));
  return JsonValue(std::move(o));
}

void CampaignServer::scheduler_loop() {
  std::unique_lock lk(mu_);
  while (!stopping_) {
    const int idx = pick_next_job(queue_, tenant_running_slots_, free_slots_);
    if (idx < 0) {
      cv_.wait(lk);
      continue;
    }
    const QueuedJob q = queue_[static_cast<std::size_t>(idx)];
    queue_.erase(queue_.begin() + idx);
    free_slots_ -= q.ranks;
    tenant_running_slots_[q.tenant] += q.ranks;
    JobRecord& rec = *jobs_.at(q.id);
    rec.state = JobState::running;
    append_event(rec, make_event({{"event", JsonValue("started")},
                                  {"job", JsonValue(q.id)},
                                  {"ranks", JsonValue(static_cast<long long>(
                                                q.ranks))}}));
    job_threads_.emplace_back([this, &rec, q] {
      run_job(rec);
      std::lock_guard lk2(mu_);
      free_slots_ += q.ranks;
      tenant_running_slots_[q.tenant] -= q.ranks;
      cv_.notify_all();
    });
  }
}

namespace {

/// Forwarded stream-fragment files, ordered by phase so the event log
/// replays the run in simulation order.
struct Fragment {
  long long phase;
  std::string kind;
  std::string name;
};

}  // namespace

void CampaignServer::run_job(JobRecord& rec) {
  const JobSpec spec = rec.spec;  // immutable once registered
  const std::string jobdir =
      cfg_.work_dir + "/job_" + std::to_string(rec.id);
  const std::string stream_dir = jobdir + "/stream";
  std::error_code ec;
  fs::create_directories(jobdir, ec);
  if (spec.stream_every > 0) fs::create_directories(stream_dir, ec);

  // Warm-state cache: a hit seeds the run at warm_phases; a miss makes
  // this job the producer of the cache entry.
  std::string load_ck;
  long long seed_phase = 0;
  std::string warm_tmp;
  std::string key;
  if (spec.warm_phases > 0) {
    key = spec.warm_key();
    const std::string hit = cache_.lookup(key, spec.warm_phases);
    std::lock_guard lk(mu_);
    if (!hit.empty()) {
      load_ck = hit;
      seed_phase = spec.warm_phases;
      rec.warm_hit = true;
      ++cache_hits_;
      append_event(rec,
                   make_event({{"event", JsonValue("warm_hit")},
                               {"seed_phase", JsonValue(seed_phase)}}));
    } else {
      ++cache_misses_;
      warm_tmp = jobdir + "/warm.ckpt";
    }
  }

  std::set<std::string> consumed;  // fragment files already forwarded
  const auto forward_fragments = [&] {
    std::vector<Fragment> fresh;
    std::error_code dec;
    for (const auto& entry : fs::directory_iterator(stream_dir, dec)) {
      const std::string name = entry.path().filename().string();
      std::string kind;
      if (name.compare(0, 4, "obs_") == 0) kind = "obs";
      else if (name.compare(0, 6, "trace_") == 0) kind = "trace";
      else continue;
      if (name.size() < 6 || name.compare(name.size() - 5, 5, ".json") != 0)
        continue;  // skips in-flight .tmp files
      if (consumed.count(name) != 0) continue;
      const std::string digits = name.substr(
          kind.size() + 1, name.size() - kind.size() - 6);
      long long phase = 0;
      try {
        phase = std::stoll(digits);
      } catch (const std::exception&) {
        continue;
      }
      fresh.push_back(Fragment{phase, kind, name});
    }
    std::sort(fresh.begin(), fresh.end(), [](const Fragment& a,
                                             const Fragment& b) {
      return a.phase != b.phase ? a.phase < b.phase : a.kind < b.kind;
    });
    for (const Fragment& f : fresh) {
      std::string data;
      try {
        data = read_file(stream_dir + "/" + f.name);
      } catch (const std::exception&) {
        continue;  // racing with the writer's rename; retry next tick
      }
      consumed.insert(f.name);
      std::lock_guard lk(mu_);
      append_event(rec, make_event({{"event", JsonValue("fragment")},
                                    {"kind", JsonValue(f.kind)},
                                    {"phase", JsonValue(f.phase)},
                                    {"data", JsonValue(data)}}));
    }
  };

  for (int attempt = 1; attempt <= cfg_.policy.max_attempts; ++attempt) {
    {
      std::lock_guard lk(mu_);
      rec.attempts = attempt;
    }
    JobSpec attempt_spec = spec;
    if (attempt > 1) {
      // Injected faults fire once: the recovery attempt runs clean.
      attempt_spec.fault_kill_rank = -1;
      attempt_spec.fault_kill_phase = -1;
    }
    JobPaths paths;
    paths.observables_out = jobdir + "/observables.txt";
    if (spec.checkpoint_every > 0) paths.checkpoint_prefix = jobdir + "/ck";
    if (spec.stream_every > 0) paths.stream_dir = stream_dir;
    paths.load_checkpoint = load_ck;
    if (!warm_tmp.empty() && seed_phase < spec.warm_phases)
      paths.warm_checkpoint_out = warm_tmp;

    transport::LaunchConfig lc =
        make_launch_config(attempt_spec, cfg_.worker_exe, paths);
    const long long attempt_start = seed_phase;
    lc.on_progress = [this, &rec](int rank, long long phase) {
      std::lock_guard lk(mu_);
      if (phase <= rec.top_phase) return;
      rec.top_phase = phase;
      append_event(rec,
                   make_event({{"event", JsonValue("progress")},
                               {"rank", JsonValue(static_cast<long long>(rank))},
                               {"phase", JsonValue(phase)}}));
    };
    if (spec.stream_every > 0) lc.on_tick = forward_fragments;

    const transport::LaunchResult res = transport::launch_workers(lc);
    if (spec.stream_every > 0) forward_fragments();  // final fragments

    if (res.ok) {
      std::string obs;
      try {
        obs = read_file(paths.observables_out);
      } catch (const std::exception& e) {
        std::lock_guard lk(mu_);
        rec.state = JobState::failed;
        rec.diagnostic = e.what();
        cv_.notify_all();
        return;
      }
      bool promoted = false;
      if (!warm_tmp.empty() && fs::exists(warm_tmp))
        promoted = cache_.promote(key, spec.warm_phases, warm_tmp);
      std::lock_guard lk(mu_);
      rec.phases_executed += spec.phases - attempt_start;
      rec.observables = std::move(obs);
      rec.state = JobState::done;
      append_event(rec, make_event({{"event", JsonValue("completed")},
                                    {"attempt", JsonValue(static_cast<long long>(
                                                    attempt))},
                                    {"warm_promoted", JsonValue(promoted)}}));
      cv_.notify_all();
      return;
    }

    // Failure: keep the launcher's guilty-rank diagnostic, then try to
    // recover from the newest complete checkpoint.
    long long reached = attempt_start;
    for (const long long p : res.last_phase) reached = std::max(reached, p);
    {
      std::lock_guard lk(mu_);
      rec.failed_rank = res.failed_rank;
      rec.diagnostic = res.diagnostic;
      rec.phases_executed += std::max(0LL, reached - attempt_start);
      append_event(
          rec, make_event(
                   {{"event", JsonValue("failure")},
                    {"attempt", JsonValue(static_cast<long long>(attempt))},
                    {"failed_rank",
                     JsonValue(static_cast<long long>(res.failed_rank))}}));
      if (attempt == cfg_.policy.max_attempts || stopping_) {
        rec.state = JobState::failed;
        cv_.notify_all();
        return;
      }
    }
    if (spec.checkpoint_every > 0) {
      const RecoveryCandidate best = best_recovery_checkpoint(jobdir, spec);
      if (!best.path.empty() && best.phase > seed_phase) {
        load_ck = best.path;
        seed_phase = best.phase;
      }
    }
    std::lock_guard lk(mu_);
    append_event(rec,
                 make_event({{"event", JsonValue("recovery")},
                             {"attempt", JsonValue(static_cast<long long>(
                                             attempt + 1))},
                             {"resume_phase", JsonValue(seed_phase)}}));
  }
}

void CampaignServer::accept_loop() {
  while (true) {
    Fd c = unix_accept(listener_);
    if (!c.valid()) return;
    std::lock_guard lk(mu_);
    if (stopping_) return;
    conn_threads_.emplace_back(&CampaignServer::handle_connection, this,
                               std::move(c));
  }
}

void CampaignServer::handle_connection(Fd fd) {
  const int raw = fd.get();
  {
    std::lock_guard lk(mu_);
    conn_fds_.insert(raw);
  }
  {
    LineChannel ch(std::move(fd));
    try {
      std::string line;
      if (ch.read_line(line)) {
        JsonValue req;
        try {
          req = util::json_parse(line);
        } catch (const std::exception& e) {
          ch.write_line(error_json(std::string("bad request: ") + e.what()));
          line.clear();
        }
        if (req.is_object()) {
          try {
            const std::string cmd = req.string_or("cmd", "");
            if (cmd == "submit") {
              const JsonValue* spec_json = req.find("spec");
              if (spec_json == nullptr)
                throw serve_error("submit needs a \"spec\" object");
              const JobSpec spec = JobSpec::from_json(*spec_json);
              const std::string tenant = req.string_or("tenant", "default");
              const long long id = submit(tenant, spec);
              JsonValue::Object ack;
              ack["ok"] = JsonValue(true);
              ack["job"] = JsonValue(id);
              ch.write_line(JsonValue(std::move(ack)).dump());
              if (req.bool_or("wait", false)) stream_job(ch, id);
            } else if (cmd == "status") {
              const JsonValue rec = status(req.int_or("job", -1));
              JsonValue::Object o;
              o["ok"] = JsonValue(true);
              o["record"] = rec;
              ch.write_line(JsonValue(std::move(o)).dump());
            } else if (cmd == "wait") {
              const long long id = req.int_or("job", -1);
              {
                std::lock_guard lk(mu_);
                if (jobs_.find(id) == jobs_.end())
                  throw serve_error("no such job " + std::to_string(id));
              }
              JsonValue::Object ack;
              ack["ok"] = JsonValue(true);
              ack["job"] = JsonValue(id);
              ch.write_line(JsonValue(std::move(ack)).dump());
              stream_job(ch, id);
            } else if (cmd == "stats") {
              ch.write_line(stats().dump());
            } else if (cmd == "shutdown") {
              {
                std::lock_guard lk(mu_);
                shutdown_requested_ = true;
              }
              JsonValue::Object o;
              o["ok"] = JsonValue(true);
              ch.write_line(JsonValue(std::move(o)).dump());
            } else {
              throw serve_error("unknown cmd \"" + cmd + "\"");
            }
          } catch (const std::exception& e) {
            ch.write_line(error_json(e.what()));
          }
        }
      }
    } catch (const std::exception&) {
      // Peer vanished mid-conversation: nothing left to tell it.
    }
    std::lock_guard lk(mu_);
    conn_fds_.erase(raw);
  }
}

void CampaignServer::stream_job(LineChannel& ch, long long id) {
  std::size_t next = 0;
  while (true) {
    std::vector<std::string> batch;
    bool terminal = false;
    JsonValue record;
    {
      std::unique_lock lk(mu_);
      const auto it = jobs_.find(id);
      if (it == jobs_.end())
        throw serve_error("no such job " + std::to_string(id));
      JobRecord& rec = *it->second;
      cv_.wait(lk, [&] {
        return stopping_ || rec.events.size() > next || is_terminal(rec.state);
      });
      while (next < rec.events.size()) batch.push_back(rec.events[next++]);
      terminal = stopping_ || is_terminal(rec.state);
      if (terminal) record = record_json_locked(rec);
    }
    for (const std::string& e : batch) ch.write_line(e);
    if (terminal) {
      JsonValue::Object o;
      o["event"] = JsonValue("done");
      o["record"] = record;
      ch.write_line(JsonValue(std::move(o)).dump());
      return;
    }
  }
}

}  // namespace slipflow::serve
