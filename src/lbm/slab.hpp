#pragma once
/// \file slab.hpp
/// A slab is one process's share of the microchannel under the paper's 1-D
/// slice decomposition along x (Section 2.2): a contiguous run of yz-planes
/// plus one halo plane on each side.
///
/// The slab owns all per-cell state of the multicomponent LBM and provides
/// the two operations the parallel algorithm needs beyond plain kernels:
///
///  * halo extraction/insertion — the per-phase boundary exchange of
///    distribution functions (the five x-crossing directions each way) and
///    of number densities (Figure 2, lines 8 and 14); and
///  * plane detach/attach — migrating whole yz-planes of lattice points to
///    a neighbor during dynamic remapping (Section 3). One plane is the
///    paper's minimal migration unit.

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "lbm/field.hpp"
#include "lbm/geometry.hpp"
#include "lbm/params.hpp"
#include "lbm/plan.hpp"
#include "lbm/tile.hpp"

namespace slipflow::lbm {

/// Which slab boundary an operation applies to.
enum class Side { left, right };

/// Per-cell-per-component doubles shipped when a plane migrates:
/// 19 populations + number density + 3 equilibrium-velocity components.
inline constexpr index_t kMigrationDoublesPerCellPerComponent = kQ + 1 + 3;

/// Per-cell-per-component doubles in the distribution-function halo
/// exchange: the five directions that cross the slab boundary.
inline constexpr index_t kFHaloDoublesPerCellPerComponent = kXDirCount;

class Slab {
 public:
  /// \param geom     shared global geometry (x-periodic channel)
  /// \param params   fluid parameters; validated here
  /// \param x_begin  global x index of the first owned plane
  /// \param nx_local number of owned planes (>= 1)
  Slab(std::shared_ptr<const ChannelGeometry> geom, FluidParams params,
       index_t x_begin, index_t nx_local);

  // -- extent queries -------------------------------------------------
  index_t x_begin() const { return x_begin_; }
  index_t nx_local() const { return nx_local_; }
  /// Global x of one-past the last owned plane.
  index_t x_end() const { return x_begin_ + nx_local_; }
  /// Cells per yz-plane.
  index_t plane_cells() const { return geom_->global().plane_cells(); }
  /// Owned lattice points (the remapping load measure).
  index_t owned_cells() const { return nx_local_ * plane_cells(); }
  /// Storage extents: owned planes plus the two halo planes.
  const Extents& storage() const { return store_; }
  /// Local storage x-index of global plane gx (1..nx_local for owned).
  index_t local_x(index_t gx) const { return gx - x_begin_ + 1; }

  const ChannelGeometry& geometry() const { return *geom_; }
  const FluidParams& params() const { return params_; }
  std::size_t num_components() const { return params_.num_components(); }

  // -- per-component state --------------------------------------------
  DistField& f(std::size_t c) { return comp_[c].f; }
  const DistField& f(std::size_t c) const { return comp_[c].f; }
  /// Post-collision populations (input to streaming and to the f-halo
  /// exchange).
  DistField& f_post(std::size_t c) { return comp_[c].f_post; }
  const DistField& f_post(std::size_t c) const { return comp_[c].f_post; }
  ScalarField& density(std::size_t c) { return comp_[c].n; }
  const ScalarField& density(std::size_t c) const { return comp_[c].n; }
  /// Equilibrium velocity u' + tau F / rho of the component (Section 2.1).
  VectorField& ueq(std::size_t c) { return comp_[c].ueq; }
  const VectorField& ueq(std::size_t c) const { return comp_[c].ueq; }

  // -- mixture observables (filled by compute_forces_and_velocity) -----
  VectorField& velocity() { return u_macro_; }
  const VectorField& velocity() const { return u_macro_; }
  ScalarField& total_density() { return rho_total_; }
  const ScalarField& total_density() const { return rho_total_; }

  /// Precomputed unit wall acceleration for a (y,z) column; scaled by each
  /// component's wall_accel in the force kernel.
  const Vec3& wall_accel_unit(index_t y, index_t z) const {
    return wall_unit_[static_cast<std::size_t>(y * store_.nz + z)];
  }
  /// Same lookup by flat in-plane index yz = y * nz + z.
  const Vec3& wall_accel_unit(index_t yz) const {
    return wall_unit_[static_cast<std::size_t>(yz)];
  }

  /// The slab's streaming/force plan, built lazily on first use and
  /// dropped automatically when plane migration rebuilds the slab (the
  /// move-assign in detach/attach replaces the cached pointer). Runners
  /// that want the rebuild timed call plan() inside their own span.
  const StreamingPlan& plan() const {
    if (plan_ == nullptr)
      plan_ = std::make_unique<StreamingPlan>(*geom_, x_begin_, nx_local_);
    return *plan_;
  }
  /// Whether the plan is currently built (used by runners to decide if a
  /// rebuild span is worth recording).
  bool has_plan() const { return plan_ != nullptr; }

  /// The plan's interior runs chopped into vector-width tiles for the
  /// SIMD kernel path; cached like the plan and likewise dropped by the
  /// move-assign of plane migration. Not thread-safe to build — runners
  /// touch tiles() on the coordinating thread before slicing it across a
  /// pool (plan() has the same contract).
  const TileLayout& tiles() const {
    if (tiles_ == nullptr) tiles_ = std::make_unique<TileLayout>(plan());
    return *tiles_;
  }

  // -- initialization ---------------------------------------------------
  /// Set per-component number density from a function of *global* cell
  /// coordinates (decomposition-invariant), and the populations to the
  /// zero-velocity equilibrium of that density. ueq/velocity are left to a
  /// first force pass by the stepper.
  void initialize(
      const std::function<double(std::size_t comp, index_t gx, index_t gy,
                                 index_t gz)>& init_density);
  /// Uniform initialization from params().components[c].init_density.
  void initialize_uniform();

  // -- halo exchange payloads ------------------------------------------
  /// Size (doubles) of one f-halo message: 5 dirs x components x plane.
  index_t f_halo_doubles() const {
    return kFHaloDoublesPerCellPerComponent *
           static_cast<index_t>(num_components()) * plane_cells();
  }
  /// Size (doubles) of one density-halo message: components x plane.
  index_t density_halo_doubles() const {
    return static_cast<index_t>(num_components()) * plane_cells();
  }

  /// Pack the boundary-adjacent *owned* plane's post-collision populations
  /// that travel across `side` (right-going at the right boundary,
  /// left-going at the left boundary), for all components.
  void extract_f_halo(Side side, std::span<double> out) const;
  /// Unpack a neighbor's message into the `side` halo plane.
  void insert_f_halo(Side side, std::span<const double> in);

  /// Pack / unpack number densities of the boundary-adjacent owned plane /
  /// the halo plane, for all components.
  void extract_density_halo(Side side, std::span<double> out) const;
  void insert_density_halo(Side side, std::span<const double> in);

  // -- plane migration (dynamic remapping, Section 3) -------------------
  /// Size (doubles) of a k-plane migration message.
  index_t migration_doubles(index_t k) const {
    return kMigrationDoublesPerCellPerComponent *
           static_cast<index_t>(num_components()) * plane_cells() * k;
  }

  /// Pack / unpack one owned plane's full state (the migration record
  /// layout) by *global* plane index. Buffer size must be
  /// migration_doubles(1). Used by migration internally and by the
  /// checkpoint module — a checkpoint is just every plane's record in x
  /// order, which is why restart works across different decompositions.
  void pack_owned_plane(index_t gx, std::span<double> out) const;
  void unpack_owned_plane(index_t gx, std::span<const double> in);

  /// Remove the k outermost owned planes at `side`, packing their full
  /// state (f, n, ueq per component) into `out` with planes ordered by
  /// increasing global x. Shrinks the slab; k < nx_local (a slab never
  /// gives away its last plane).
  void detach_planes(Side side, index_t k, std::span<double> out);

  /// Grow the slab by k planes at `side` and unpack state packed by
  /// detach_planes on the neighbor.
  void attach_planes(Side side, index_t k, std::span<const double> in);

 private:
  struct ComponentState {
    DistField f, f_post;
    ScalarField n;
    VectorField ueq;
  };

  void allocate(index_t nx_local);
  void copy_owned_planes(Slab& dst, index_t src_begin_local,
                         index_t dst_begin_local, index_t count) const;
  void pack_plane(index_t local_x, std::span<double> out) const;
  void unpack_plane(index_t local_x, std::span<const double> in);

  std::shared_ptr<const ChannelGeometry> geom_;
  FluidParams params_;
  index_t x_begin_ = 0;
  index_t nx_local_ = 0;
  Extents store_{};
  std::vector<ComponentState> comp_;
  VectorField u_macro_;
  ScalarField rho_total_;
  std::vector<Vec3> wall_unit_;
  mutable std::unique_ptr<StreamingPlan> plan_;
  mutable std::unique_ptr<TileLayout> tiles_;
};

}  // namespace slipflow::lbm
