/// \file kernels_tile_avx2.cpp
/// AVX2 instantiation of the tile kernels (4 doubles per register; a
/// kTileWidth tile is two vector iterations). Compiled with
/// `-mavx2 -ffp-contract=off` and only ever entered after the CPUID
/// dispatch in simd.cpp confirmed AVX2 — this TU includes nothing but
/// the tile ABI header so no shared inline function can be emitted here
/// with AVX encodings and COMDAT-merged into the portable path.
///
/// No FMA intrinsics on purpose: separate mul and add keep every lane
/// bit-identical to the scalar plan path (DESIGN.md, "Equivalence").

#include <cmath>
#include <cstdint>

#include "lbm/kernels_tile.hpp"

#if defined(SLIPFLOW_HAVE_AVX2)
#include <immintrin.h>

namespace slipflow::lbm::tilek {
namespace {

struct VAvx2 {
  static constexpr std::int64_t kW = 4;
  __m256d v;

  static VAvx2 loadu(const double* p) { return {_mm256_loadu_pd(p)}; }
  static void storeu(double* p, VAvx2 a) { _mm256_storeu_pd(p, a.v); }
  static VAvx2 set1(double x) { return {_mm256_set1_pd(x)}; }
  static VAvx2 zero() { return {_mm256_setzero_pd()}; }
  static VAvx2 add(VAvx2 a, VAvx2 b) { return {_mm256_add_pd(a.v, b.v)}; }
  static VAvx2 sub(VAvx2 a, VAvx2 b) { return {_mm256_sub_pd(a.v, b.v)}; }
  static VAvx2 mul(VAvx2 a, VAvx2 b) { return {_mm256_mul_pd(a.v, b.v)}; }
  static VAvx2 div(VAvx2 a, VAvx2 b) { return {_mm256_div_pd(a.v, b.v)}; }
  static VAvx2 select_gt(VAvx2 a, VAvx2 b, VAvx2 val) {
    // lanes failing a > b get +0.0, like the scalar ternary's Vec3{}
    return {_mm256_and_pd(_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ), val.v)};
  }
  static VAvx2 blend_gt(VAvx2 a, VAvx2 b, VAvx2 t, VAvx2 f) {
    // lane: a > b ? t : f
    return {_mm256_blendv_pd(f.v, t.v, _mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ))};
  }
  static VAvx2 neg(VAvx2 a) {
    // exact sign flip (xor), == the scalar unary minus bit for bit
    return {_mm256_xor_pd(a.v, _mm256_set1_pd(-0.0))};
  }
  static VAvx2 sqrt(VAvx2 a) { return {_mm256_sqrt_pd(a.v)}; }

  // Masked tail ops: lanes < n load/store, the rest read as +0.0 and are
  // never written. maskload/maskstore never fault on the dead lanes, so
  // short tails at the very end of an array stay in bounds.
  static __m256i mask_n(int n) {
    return _mm256_cmpgt_epi64(_mm256_set1_epi64x(n),
                              _mm256_setr_epi64x(0, 1, 2, 3));
  }
  static VAvx2 loadu_n(const double* p, int n) {
    return {_mm256_maskload_pd(p, mask_n(n))};
  }
  static void storeu_n(double* p, VAvx2 a, int n) {
    _mm256_maskstore_pd(p, mask_n(n), a.v);
  }
};

#include "lbm/kernels_tile.inl"

}  // namespace

const Backend* tile_backend_avx2() {
  static constexpr Backend b{&stream_tiles_impl<VAvx2>,
                             &forces_tiles_impl<VAvx2>, &density_impl<VAvx2>};
  return &b;
}

}  // namespace slipflow::lbm::tilek

#endif  // SLIPFLOW_HAVE_AVX2
