#pragma once
/// \file params.hpp
/// Physical / model parameters of the multicomponent Shan–Chen LBM and of
/// the paper's microchannel experiment (Sections 2 and 4.1).

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "lbm/types.hpp"
#include "util/require.hpp"

namespace slipflow::lbm {

/// Collision operator choice per component. The paper uses LBGK; the MRT
/// operator (see mrt.hpp) relaxes non-hydrodynamic modes at their own
/// rates, buying stability for stiff components at identical viscosity.
enum class CollisionModel { bgk, mrt };

/// Pseudopotential form psi(n) entering the Shan-Chen interaction force.
///  * density   — psi = n, the multicomponent choice of the paper's S-C
///                model (Shan & Doolen 1995);
///  * shan_chen — psi = 1 - exp(-n), the original single-component form
///                (Shan & Chen 1993) that supports liquid-vapor
///                coexistence under attractive self-coupling.
enum class PsiForm { density, shan_chen };

/// Parameters of one fluid component (the paper simulates two: "water"
/// and "air / water vapor").
struct ComponentParams {
  std::string name = "fluid";
  /// BGK relaxation time tau; kinematic viscosity is c_s^2 (tau - 1/2).
  double tau = 1.0;
  /// Molecular mass m_sigma: rho_sigma = m_sigma * n_sigma.
  double molecular_mass = 1.0;
  /// Initial uniform number density of the component.
  double init_density = 1.0;
  /// Amplitude of the hydrophobic wall acceleration felt by this
  /// component. The paper's walls repel water (positive amplitude) and are
  /// neutral to air (zero amplitude). Positive = directed away from walls.
  double wall_accel = 0.0;
  /// Collision operator (viscosity is identical either way).
  CollisionModel collision = CollisionModel::bgk;
};

/// Parameters of the whole fluid system.
struct FluidParams {
  std::vector<ComponentParams> components;

  /// Shan–Chen coupling matrix G[s][t] (symmetric). Positive entries are
  /// repulsive. Indexed by component position in `components`; only pairs
  /// present in the matrix interact. Sized components x components.
  std::vector<double> coupling;

  /// Uniform body acceleration along +x driving the channel flow (the
  /// pressure-gradient surrogate).
  double gravity_x = 0.0;

  /// Decay length (in lattice spacings) of the exponential hydrophobic
  /// wall force, the lambda in A * exp(-d / lambda) (Section 4).
  double wall_decay = 3.0;

  /// Pseudopotential form used in the interaction force (see PsiForm).
  PsiForm psi_form = PsiForm::density;

  /// Optional wettability pattern: a multiplier on the wall acceleration
  /// as a function of *global* cell coordinates, e.g. to model stripes of
  /// hydrophobic coating along the channel (a MEMS design the paper's
  /// introduction motivates). Unset = uniform coating (multiplier 1).
  std::function<double(index_t, index_t, index_t)> wall_pattern;

  /// Stability clamp on the force-induced equilibrium-velocity shift
  /// |tau F / rho| (lattice units). Near-vacuum cells of a trace
  /// component otherwise receive unbounded shifts that drive populations
  /// negative; 0.25 is far above the shifts seen in resolved regions
  /// (~0.01) so the clamp is inert except where it prevents blow-up.
  double max_force_shift = 0.25;

  double g(std::size_t s, std::size_t t) const {
    return coupling[s * components.size() + t];
  }
  void set_g(std::size_t s, std::size_t t, double v) {
    coupling[s * components.size() + t] = v;
    coupling[t * components.size() + s] = v;
  }

  std::size_t num_components() const { return components.size(); }

  /// Validate invariants (throws slipflow::contract_error).
  void validate() const {
    SLIPFLOW_REQUIRE(!components.empty());
    SLIPFLOW_REQUIRE(coupling.size() == components.size() * components.size());
    for (const auto& c : components) {
      SLIPFLOW_REQUIRE_MSG(c.tau > 0.5, "tau must exceed 1/2 for stability");
      SLIPFLOW_REQUIRE(c.molecular_mass > 0.0);
      SLIPFLOW_REQUIRE(c.init_density >= 0.0);
    }
    SLIPFLOW_REQUIRE(wall_decay > 0.0);
    SLIPFLOW_REQUIRE(max_force_shift > 0.0);
    for (std::size_t s = 0; s < components.size(); ++s)
      for (std::size_t t = 0; t < components.size(); ++t)
        SLIPFLOW_REQUIRE_MSG(g(s, t) == g(t, s), "coupling must be symmetric");
  }

  /// Two-component water + trace-air system with the paper's hydrophobic
  /// wall setup. Defaults were calibrated (see DESIGN.md) to reproduce
  /// the paper's observations at reduced resolution: the nondimensional
  /// wall-force amplitude 0.2 is the paper's own value, the air
  /// relaxation time 0.7 makes the gas layer less viscous than the water
  /// (as physically it is) while keeping the stiff trace component
  /// stable, and together with the channel's thin-depth geometry they
  /// produce a depleted near-wall water layer and an apparent slip of
  /// ~9% of the free stream velocity in the 3-D channel (Figures 6-7).
  static FluidParams microchannel_defaults(double wall_accel = 0.2,
                                           double wall_decay = 2.5,
                                           double air_fraction = 0.03,
                                           double coupling_g = 1.0,
                                           double gravity = 2e-5) {
    FluidParams p;
    p.components = {
        ComponentParams{"water", 1.0, 1.0, 1.0, wall_accel},
        ComponentParams{"air", 0.7, 1.0, air_fraction, 0.0},
    };
    p.coupling = {0.0, coupling_g, coupling_g, 0.0};
    p.gravity_x = gravity;
    p.wall_decay = wall_decay;
    return p;
  }

  /// Single-component fluid (used by the Poiseuille/Couette validation
  /// problems and the single-component kernel benchmarks).
  static FluidParams single_component(double tau = 1.0, double gravity = 1e-5) {
    FluidParams p;
    p.components = {ComponentParams{"fluid", tau, 1.0, 1.0, 0.0}};
    p.coupling = {0.0};
    p.gravity_x = gravity;
    return p;
  }

  /// Single-component nonideal fluid: attractive self-coupling with the
  /// original Shan-Chen pseudopotential psi = 1 - exp(-n), supporting
  /// liquid-vapor coexistence. Used by the Laplace-law validation and
  /// the phase-separation tests. g must be below the critical coupling
  /// (about -4 in these units) for two phases to exist.
  static FluidParams liquid_vapor(double g = -5.0, double tau = 1.0) {
    FluidParams p;
    p.components = {ComponentParams{"fluid", tau, 1.0, 1.0, 0.0}};
    p.coupling = {g};
    p.psi_form = PsiForm::shan_chen;
    p.gravity_x = 0.0;
    return p;
  }
};

}  // namespace slipflow::lbm
