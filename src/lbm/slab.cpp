#include "lbm/slab.hpp"

#include <algorithm>

namespace slipflow::lbm {

namespace {
void copy_plane(std::span<const double> src, std::span<double> dst) {
  std::copy(src.begin(), src.end(), dst.begin());
}
}  // namespace

Slab::Slab(std::shared_ptr<const ChannelGeometry> geom, FluidParams params,
           index_t x_begin, index_t nx_local)
    : geom_(std::move(geom)), params_(std::move(params)), x_begin_(x_begin) {
  SLIPFLOW_REQUIRE(geom_ != nullptr);
  params_.validate();
  SLIPFLOW_REQUIRE(nx_local >= 1);
  SLIPFLOW_REQUIRE(x_begin >= 0 && x_begin + nx_local <= geom_->global().nx);
  allocate(nx_local);

  const Extents& g = geom_->global();
  wall_unit_.resize(static_cast<std::size_t>(g.ny * g.nz));
  for (index_t y = 0; y < g.ny; ++y)
    for (index_t z = 0; z < g.nz; ++z)
      wall_unit_[static_cast<std::size_t>(y * g.nz + z)] =
          geom_->wall_unit_accel(y, z, params_.wall_decay);
}

void Slab::allocate(index_t nx_local) {
  nx_local_ = nx_local;
  const Extents& g = geom_->global();
  store_ = Extents{nx_local + 2, g.ny, g.nz};
  comp_.clear();
  comp_.reserve(num_components());
  for (std::size_t c = 0; c < num_components(); ++c) {
    comp_.push_back(ComponentState{DistField(store_), DistField(store_),
                                   ScalarField(store_), VectorField(store_)});
  }
  u_macro_ = VectorField(store_);
  rho_total_ = ScalarField(store_);
}

void Slab::initialize(
    const std::function<double(std::size_t, index_t, index_t, index_t)>&
        init_density) {
  SLIPFLOW_REQUIRE(init_density != nullptr);
  for (std::size_t c = 0; c < num_components(); ++c) {
    auto& st = comp_[c];
    for (index_t lx = 1; lx <= nx_local_; ++lx) {
      const index_t gx = x_begin_ + lx - 1;
      for (index_t y = 0; y < store_.ny; ++y) {
        for (index_t z = 0; z < store_.nz; ++z) {
          const index_t cell = store_.idx(lx, y, z);
          const double n0 =
              geom_->solid(gx, y, z) ? 0.0 : init_density(c, gx, y, z);
          SLIPFLOW_REQUIRE_MSG(n0 >= 0.0, "negative initial density");
          st.n[cell] = n0;
          // zero-velocity equilibrium: f_i = w_i * n
          for (int d = 0; d < kQ; ++d) st.f.at(d, cell) = kWeight[d] * n0;
          st.ueq.set(cell, Vec3{});
        }
      }
    }
  }
}

void Slab::initialize_uniform() {
  initialize([this](std::size_t c, index_t, index_t, index_t) {
    return params_.components[c].init_density;
  });
}

void Slab::extract_f_halo(Side side, std::span<double> out) const {
  SLIPFLOW_REQUIRE(static_cast<index_t>(out.size()) == f_halo_doubles());
  const index_t lx = side == Side::left ? 1 : nx_local_;
  const auto& dirs = side == Side::left ? kLeftGoing : kRightGoing;
  const std::size_t pc = static_cast<std::size_t>(plane_cells());
  std::size_t off = 0;
  for (std::size_t c = 0; c < num_components(); ++c) {
    for (int d : dirs) {
      copy_plane(comp_[c].f_post.dir_plane(d, lx), out.subspan(off, pc));
      off += pc;
    }
  }
}

void Slab::insert_f_halo(Side side, std::span<const double> in) {
  SLIPFLOW_REQUIRE(static_cast<index_t>(in.size()) == f_halo_doubles());
  const index_t lx = side == Side::left ? 0 : nx_local_ + 1;
  // the left neighbor sends us its right-going populations and vice versa
  const auto& dirs = side == Side::left ? kRightGoing : kLeftGoing;
  const std::size_t pc = static_cast<std::size_t>(plane_cells());
  std::size_t off = 0;
  for (std::size_t c = 0; c < num_components(); ++c) {
    for (int d : dirs) {
      copy_plane(in.subspan(off, pc), comp_[c].f_post.dir_plane(d, lx));
      off += pc;
    }
  }
}

void Slab::extract_density_halo(Side side, std::span<double> out) const {
  SLIPFLOW_REQUIRE(static_cast<index_t>(out.size()) == density_halo_doubles());
  const index_t lx = side == Side::left ? 1 : nx_local_;
  const std::size_t pc = static_cast<std::size_t>(plane_cells());
  for (std::size_t c = 0; c < num_components(); ++c)
    copy_plane(comp_[c].n.plane(lx), out.subspan(c * pc, pc));
}

void Slab::insert_density_halo(Side side, std::span<const double> in) {
  SLIPFLOW_REQUIRE(static_cast<index_t>(in.size()) == density_halo_doubles());
  const index_t lx = side == Side::left ? 0 : nx_local_ + 1;
  const std::size_t pc = static_cast<std::size_t>(plane_cells());
  for (std::size_t c = 0; c < num_components(); ++c)
    copy_plane(in.subspan(c * pc, pc), comp_[c].n.plane(lx));
}

void Slab::pack_plane(index_t local_x, std::span<double> out) const {
  const std::size_t pc = static_cast<std::size_t>(plane_cells());
  std::size_t off = 0;
  for (const auto& st : comp_) {
    for (int d = 0; d < kQ; ++d) {
      copy_plane(st.f.dir_plane(d, local_x), out.subspan(off, pc));
      off += pc;
    }
    copy_plane(st.n.plane(local_x), out.subspan(off, pc));
    off += pc;
    copy_plane(st.ueq.x().plane(local_x), out.subspan(off, pc));
    off += pc;
    copy_plane(st.ueq.y().plane(local_x), out.subspan(off, pc));
    off += pc;
    copy_plane(st.ueq.z().plane(local_x), out.subspan(off, pc));
    off += pc;
  }
}

void Slab::unpack_plane(index_t local_x, std::span<const double> in) {
  const std::size_t pc = static_cast<std::size_t>(plane_cells());
  std::size_t off = 0;
  for (auto& st : comp_) {
    for (int d = 0; d < kQ; ++d) {
      copy_plane(in.subspan(off, pc), st.f.dir_plane(d, local_x));
      off += pc;
    }
    copy_plane(in.subspan(off, pc), st.n.plane(local_x));
    off += pc;
    copy_plane(in.subspan(off, pc), st.ueq.x().plane(local_x));
    off += pc;
    copy_plane(in.subspan(off, pc), st.ueq.y().plane(local_x));
    off += pc;
    copy_plane(in.subspan(off, pc), st.ueq.z().plane(local_x));
    off += pc;
  }
}

void Slab::copy_owned_planes(Slab& dst, index_t src_begin_local,
                             index_t dst_begin_local, index_t count) const {
  for (index_t p = 0; p < count; ++p) {
    const index_t s = src_begin_local + p;
    const index_t d0 = dst_begin_local + p;
    for (std::size_t c = 0; c < num_components(); ++c) {
      for (int d = 0; d < kQ; ++d)
        copy_plane(comp_[c].f.dir_plane(d, s), dst.comp_[c].f.dir_plane(d, d0));
      copy_plane(comp_[c].n.plane(s), dst.comp_[c].n.plane(d0));
      copy_plane(comp_[c].ueq.x().plane(s), dst.comp_[c].ueq.x().plane(d0));
      copy_plane(comp_[c].ueq.y().plane(s), dst.comp_[c].ueq.y().plane(d0));
      copy_plane(comp_[c].ueq.z().plane(s), dst.comp_[c].ueq.z().plane(d0));
    }
  }
}

void Slab::pack_owned_plane(index_t gx, std::span<double> out) const {
  SLIPFLOW_REQUIRE(gx >= x_begin_ && gx < x_end());
  SLIPFLOW_REQUIRE(static_cast<index_t>(out.size()) == migration_doubles(1));
  pack_plane(local_x(gx), out);
}

void Slab::unpack_owned_plane(index_t gx, std::span<const double> in) {
  SLIPFLOW_REQUIRE(gx >= x_begin_ && gx < x_end());
  SLIPFLOW_REQUIRE(static_cast<index_t>(in.size()) == migration_doubles(1));
  unpack_plane(local_x(gx), in);
}

void Slab::detach_planes(Side side, index_t k, std::span<double> out) {
  SLIPFLOW_REQUIRE(k >= 1);
  SLIPFLOW_REQUIRE_MSG(k < nx_local_,
                       "a slab must keep at least one owned plane");
  SLIPFLOW_REQUIRE(static_cast<index_t>(out.size()) == migration_doubles(k));
  const index_t per_plane = migration_doubles(1);
  const index_t first = side == Side::left ? 1 : nx_local_ - k + 1;
  for (index_t p = 0; p < k; ++p) {
    pack_plane(first + p,
               out.subspan(static_cast<std::size_t>(p * per_plane),
                           static_cast<std::size_t>(per_plane)));
  }

  // Rebuild storage without the detached planes.
  Slab next(geom_, params_, side == Side::left ? x_begin_ + k : x_begin_,
            nx_local_ - k);
  const index_t keep_first = side == Side::left ? 1 + k : 1;
  copy_owned_planes(next, keep_first, 1, nx_local_ - k);
  *this = std::move(next);
}

void Slab::attach_planes(Side side, index_t k, std::span<const double> in) {
  SLIPFLOW_REQUIRE(k >= 1);
  SLIPFLOW_REQUIRE(static_cast<index_t>(in.size()) == migration_doubles(k));
  const index_t per_plane = migration_doubles(1);

  Slab next(geom_, params_, side == Side::left ? x_begin_ - k : x_begin_,
            nx_local_ + k);
  const index_t dst_first = side == Side::left ? 1 + k : 1;
  copy_owned_planes(next, 1, dst_first, nx_local_);
  const index_t new_first = side == Side::left ? 1 : nx_local_ + 1;
  for (index_t p = 0; p < k; ++p) {
    next.unpack_plane(new_first + p,
                      in.subspan(static_cast<std::size_t>(p * per_plane),
                                 static_cast<std::size_t>(per_plane)));
  }
  *this = std::move(next);
}

}  // namespace slipflow::lbm
