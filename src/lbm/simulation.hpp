#pragma once
/// \file simulation.hpp
/// Sequential (single-domain) multicomponent LBM simulation — the
/// reference implementation the parallel runner must match exactly, and
/// the baseline whose runtime defines "speedup" in the paper's Section 4.

#include <functional>
#include <memory>

#include "lbm/stepper.hpp"
#include "obs/profiler.hpp"

namespace slipflow::lbm {

/// A full-domain microchannel simulation stepped in-process.
class Simulation {
 public:
  /// \param global   domain extents (x periodic, y/z walls by default)
  /// \param params   fluid parameters
  /// \param obstacle optional extra solid cells (global coordinates)
  /// \param walls_y  solid side walls at the y extents (else periodic)
  /// \param walls_z  solid top/bottom walls at the z extents (else periodic)
  Simulation(Extents global, FluidParams params,
             std::function<bool(index_t, index_t, index_t)> obstacle = {},
             bool walls_y = true, bool walls_z = true);

  /// Construct over a pre-built geometry (e.g. one with moving walls set
  /// via ChannelGeometry::set_wall_velocity before sharing it).
  Simulation(std::shared_ptr<const ChannelGeometry> geom, FluidParams params);

  /// Initialize densities from a per-component function of global
  /// coordinates and prime the force/velocity state.
  void initialize(const std::function<double(std::size_t, index_t, index_t,
                                             index_t)>& init_density);
  /// Initialize each component to its uniform params() init_density.
  void initialize_uniform();

  /// Advance `phases` LBM phases.
  void run(int phases);

  /// Advance until the velocity field's relative L2 change over
  /// `check_interval` phases falls below `tolerance`, or `max_phases`
  /// elapse. Returns the number of phases executed by this call.
  /// The paper's production runs need ~500k phases to steady state —
  /// this is the principled stopping rule for them.
  int run_until_steady(int max_phases, double tolerance = 1e-8,
                       int check_interval = 50);

  /// Write the full state to a restart file (see checkpoint.hpp).
  void save_checkpoint(const std::string& path) const;

  /// Replace the state from a restart file (domain must match) and
  /// resume the phase counter from it. Counts as initialization.
  void restore_checkpoint(const std::string& path);

  /// Number of phases executed since initialization.
  long long phase_count() const { return phases_done_; }

  /// Attach an observability profiler (not owned; pass nullptr to
  /// detach). run() then records one "phase" span per LBM phase plus a
  /// phase_seconds histogram through the profiler's injected clock.
  void attach_profiler(obs::PhaseProfiler* prof) { prof_ = prof; }

  /// Select the kernel implementation run() steps with (default: the
  /// fused plan-based path; `legacy` keeps the reference kernels).
  void set_kernel_path(KernelPath path) { path_ = path; }
  KernelPath kernel_path() const { return path_; }

  Slab& slab() { return slab_; }
  const Slab& slab() const { return slab_; }
  const ChannelGeometry& geometry() const { return *geom_; }

 private:
  std::shared_ptr<const ChannelGeometry> geom_;
  Slab slab_;
  PeriodicSelfExchanger halo_;
  obs::PhaseProfiler* prof_ = nullptr;
  KernelPath path_ = KernelPath::plan;
  long long phases_done_ = 0;
  bool initialized_ = false;
};

}  // namespace slipflow::lbm
