#pragma once
/// \file checkpoint.hpp
/// Checkpoint / restart of the multicomponent LBM state.
///
/// The paper's production runs take days to weeks ("even a parallel
/// computation of fluid slip can take days or weeks"), so restartability
/// is a practical necessity. The on-disk format reuses the migration
/// plane layout (Slab::pack_plane): a fixed header followed by one
/// packed record per global yz-plane in x order. Because planes are
/// self-contained, a checkpoint written by any decomposition can be
/// restored by any other — including a different rank count — each rank
/// simply reads the plane range it owns.
///
/// Values are stored as native-endian IEEE doubles; checkpoints are not
/// portable across endianness (document, not defect: they are restart
/// files, not archives).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "lbm/slab.hpp"

namespace slipflow::lbm {

/// Fixed size of the on-disk checkpoint header.
inline constexpr std::size_t kCheckpointHeaderBytes = 64;

/// Byte offset of global plane `gx` in a checkpoint whose planes pack to
/// `plane_doubles` doubles each. Because a slab's owned planes are a
/// contiguous x-range, its whole contribution is one contiguous span
/// starting at checkpoint_plane_offset(plane_doubles, x_begin) — which
/// is what lets the async writer ship it as a single positional write.
inline std::size_t checkpoint_plane_offset(index_t plane_doubles,
                                           index_t gx) {
  return kCheckpointHeaderBytes + static_cast<std::size_t>(gx) *
                                      static_cast<std::size_t>(plane_doubles) *
                                      sizeof(double);
}

/// Pack the slab's owned planes (x_begin .. x_end) into one contiguous
/// byte buffer, laid out exactly as write_checkpoint_planes writes them
/// on disk starting at checkpoint_plane_offset(..., x_begin). The
/// `out` overload reuses the buffer's capacity (double buffering with
/// obs::AsyncWriter::take_buffer).
std::vector<std::byte> pack_checkpoint_planes(const Slab& slab);
void pack_checkpoint_planes(const Slab& slab, std::vector<std::byte>& out);

/// Header contents of a checkpoint file.
struct CheckpointInfo {
  Extents global;
  std::size_t components = 0;
  long long phase = 0;  ///< phases completed when the checkpoint was taken
  index_t plane_doubles = 0;  ///< packed doubles per global yz-plane
};

/// Read and validate a checkpoint header.
CheckpointInfo read_checkpoint_info(const std::string& path);

/// Exact on-disk size of a complete checkpoint with this header. The
/// campaign server validates candidate recovery files against it: a file
/// whose header parses but whose size is short was torn mid-write and
/// must not seed a restart.
std::size_t expected_checkpoint_bytes(const CheckpointInfo& info);

/// Write a checkpoint of a full-domain slab (sequential simulation).
void save_checkpoint(const Slab& slab, long long phase,
                     const std::string& path);

/// Create the checkpoint file and write only the header, sized for the
/// given domain; planes are then written by write_checkpoint_planes
/// (possibly by several writers for disjoint ranges).
void begin_checkpoint(const Extents& global, std::size_t components,
                      long long phase, index_t plane_doubles,
                      const std::string& path);

/// Write the slab's owned planes into their slots of an existing
/// checkpoint file (created by begin_checkpoint with matching geometry).
void write_checkpoint_planes(const Slab& slab, const std::string& path);

/// Load the planes a slab owns from a checkpoint. The checkpoint's
/// domain and component count must match the slab's; the slab's extent
/// may be any sub-range. Returns the stored phase count.
long long load_checkpoint_planes(Slab& slab, const std::string& path);

}  // namespace slipflow::lbm
