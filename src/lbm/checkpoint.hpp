#pragma once
/// \file checkpoint.hpp
/// Checkpoint / restart of the multicomponent LBM state.
///
/// The paper's production runs take days to weeks ("even a parallel
/// computation of fluid slip can take days or weeks"), so restartability
/// is a practical necessity. The on-disk format reuses the migration
/// plane layout (Slab::pack_plane): a fixed header followed by one
/// packed record per global yz-plane in x order. Because planes are
/// self-contained, a checkpoint written by any decomposition can be
/// restored by any other — including a different rank count — each rank
/// simply reads the plane range it owns.
///
/// Values are stored as native-endian IEEE doubles; checkpoints are not
/// portable across endianness (document, not defect: they are restart
/// files, not archives).

#include <cstdint>
#include <string>

#include "lbm/slab.hpp"

namespace slipflow::lbm {

/// Header contents of a checkpoint file.
struct CheckpointInfo {
  Extents global;
  std::size_t components = 0;
  long long phase = 0;  ///< phases completed when the checkpoint was taken
};

/// Read and validate a checkpoint header.
CheckpointInfo read_checkpoint_info(const std::string& path);

/// Write a checkpoint of a full-domain slab (sequential simulation).
void save_checkpoint(const Slab& slab, long long phase,
                     const std::string& path);

/// Create the checkpoint file and write only the header, sized for the
/// given domain; planes are then written by write_checkpoint_planes
/// (possibly by several writers for disjoint ranges).
void begin_checkpoint(const Extents& global, std::size_t components,
                      long long phase, index_t plane_doubles,
                      const std::string& path);

/// Write the slab's owned planes into their slots of an existing
/// checkpoint file (created by begin_checkpoint with matching geometry).
void write_checkpoint_planes(const Slab& slab, const std::string& path);

/// Load the planes a slab owns from a checkpoint. The checkpoint's
/// domain and component count must match the slab's; the slab's extent
/// may be any sub-range. Returns the stored phase count.
long long load_checkpoint_planes(Slab& slab, const std::string& path);

}  // namespace slipflow::lbm
