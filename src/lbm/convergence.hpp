#pragma once
/// \file convergence.hpp
/// Steady-state detection. The paper notes a production run needs
/// ~500,000 phases "to reach the steady-state"; rather than guessing a
/// phase count, callers can monitor the relative L2 change of the
/// velocity field and stop when it stalls.

#include <vector>

#include "lbm/slab.hpp"

namespace slipflow::lbm {

/// Tracks the relative L2 difference between successive velocity-field
/// snapshots of a slab's owned region.
class SteadyStateMonitor {
 public:
  /// \param tolerance converged when |u - u_prev|_2 / max(|u|_2, eps)
  ///                  falls below this between consecutive check()s.
  explicit SteadyStateMonitor(double tolerance = 1e-8);

  /// Snapshot the velocity field and compare with the previous snapshot.
  /// Returns true once converged (always false on the first call).
  bool check(const Slab& slab);

  /// Relative residual of the last check (infinity before the second).
  double last_residual() const { return residual_; }

  /// Drop history (e.g. after parameters changed mid-run).
  void reset();

 private:
  double tol_;
  double residual_;
  std::vector<double> prev_;
};

}  // namespace slipflow::lbm
