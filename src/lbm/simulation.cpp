#include "lbm/simulation.hpp"

#include <algorithm>

#include "lbm/checkpoint.hpp"
#include "lbm/convergence.hpp"

namespace slipflow::lbm {

Simulation::Simulation(Extents global, FluidParams params,
                       std::function<bool(index_t, index_t, index_t)> obstacle,
                       bool walls_y, bool walls_z)
    : geom_(std::make_shared<const ChannelGeometry>(global, std::move(obstacle),
                                                    walls_y, walls_z)),
      slab_(geom_, std::move(params), 0, global.nx) {}

Simulation::Simulation(std::shared_ptr<const ChannelGeometry> geom,
                       FluidParams params)
    : geom_(std::move(geom)),
      slab_(geom_, std::move(params), 0, geom_->global().nx) {}

void Simulation::initialize(
    const std::function<double(std::size_t, index_t, index_t, index_t)>&
        init_density) {
  slab_.initialize(init_density);
  prime(slab_, halo_);
  phases_done_ = 0;
  initialized_ = true;
}

void Simulation::initialize_uniform() {
  slab_.initialize_uniform();
  prime(slab_, halo_);
  phases_done_ = 0;
  initialized_ = true;
}

void Simulation::save_checkpoint(const std::string& path) const {
  SLIPFLOW_REQUIRE_MSG(initialized_, "nothing to checkpoint yet");
  lbm::save_checkpoint(slab_, phases_done_, path);
}

void Simulation::restore_checkpoint(const std::string& path) {
  phases_done_ = load_checkpoint_planes(slab_, path);
  initialized_ = true;
}

void Simulation::run(int phases) {
  SLIPFLOW_REQUIRE_MSG(initialized_, "call initialize() before run()");
  SLIPFLOW_REQUIRE(phases >= 0);
  if (prof_ == nullptr) {
    for (int i = 0; i < phases; ++i) step_phase(slab_, halo_, path_);
    phases_done_ += phases;
    return;
  }
  for (int i = 0; i < phases; ++i) {
    prof_->begin_phase(phases_done_ + 1);
    const double begin = prof_->now();
    step_phase(slab_, halo_, path_);
    const double end = prof_->now();
    prof_->record_span("phase", begin, end);
    prof_->observe("phase_seconds", end - begin);
    phases_done_ += 1;
  }
  prof_->set("phases_done", static_cast<double>(phases_done_));
}

int Simulation::run_until_steady(int max_phases, double tolerance,
                                 int check_interval) {
  SLIPFLOW_REQUIRE_MSG(initialized_, "call initialize() before run()");
  SLIPFLOW_REQUIRE(max_phases >= 1 && check_interval >= 1);
  SteadyStateMonitor monitor(tolerance);
  monitor.check(slab_);  // baseline snapshot
  int done = 0;
  while (done < max_phases) {
    const int chunk = std::min(check_interval, max_phases - done);
    run(chunk);
    done += chunk;
    if (monitor.check(slab_)) break;
  }
  return done;
}

}  // namespace slipflow::lbm
