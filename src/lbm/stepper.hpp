#pragma once
/// \file stepper.hpp
/// Phase orchestration: runs the kernel sequence of Figure 2 on a Slab,
/// with the two communication points abstracted behind HaloExchanger so
/// the same stepping code serves the sequential simulation (periodic
/// self-exchange), the thread-parallel runner (real message passing) and
/// the tests.

#include "lbm/kernels.hpp"
#include "lbm/slab.hpp"

namespace slipflow::lbm {

/// Fills a slab's halo planes. Implementations: PeriodicSelfExchanger
/// (sequential, x-periodic wrap onto itself) and the transport-backed
/// exchanger inside sim::ParallelLbm.
class HaloExchanger {
 public:
  virtual ~HaloExchanger() = default;

  /// Fill both f_post halo planes (the five x-crossing directions each
  /// way, all components) from the x-neighbors (Figure 2, line 8).
  virtual void exchange_f(Slab& slab) = 0;

  /// Fill both number-density halo planes (Figure 2, line 14).
  virtual void exchange_density(Slab& slab) = 0;
};

/// Periodic wrap of a slab that covers the whole domain onto itself:
/// the left halo is the rightmost owned plane and vice versa.
class PeriodicSelfExchanger final : public HaloExchanger {
 public:
  void exchange_f(Slab& slab) override;
  void exchange_density(Slab& slab) override;

 private:
  std::vector<double> buf_;
};

/// Which kernel implementations step_phase drives. Both produce
/// bit-identical states; `plan` is the branch-free fused path over the
/// slab's StreamingPlan and is the default everywhere, `legacy` keeps the
/// original per-cell-branching kernels as reference and fallback.
enum class KernelPath { legacy, plan };

/// Run the post-initialization priming pass: densities are already set by
/// Slab::initialize, so exchange them and compute forces/velocities so the
/// first collide() has valid inputs.
void prime(Slab& slab, HaloExchanger& halo);

/// Execute one full LBM phase (collide, f-exchange, stream + bounce-back,
/// density, density-exchange, forces/velocity).
void step_phase(Slab& slab, HaloExchanger& halo,
                KernelPath path = KernelPath::plan);

}  // namespace slipflow::lbm
