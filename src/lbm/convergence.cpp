#include "lbm/convergence.hpp"

#include <cmath>
#include <limits>

namespace slipflow::lbm {

SteadyStateMonitor::SteadyStateMonitor(double tolerance)
    : tol_(tolerance),
      residual_(std::numeric_limits<double>::infinity()) {
  SLIPFLOW_REQUIRE(tolerance > 0.0);
}

bool SteadyStateMonitor::check(const Slab& slab) {
  const Extents& st = slab.storage();
  const index_t first = st.plane_cells();
  const index_t count = slab.nx_local() * st.plane_cells();
  std::vector<double> cur(static_cast<std::size_t>(3 * count));
  for (index_t i = 0; i < count; ++i) {
    cur[static_cast<std::size_t>(3 * i)] = slab.velocity().x()[first + i];
    cur[static_cast<std::size_t>(3 * i + 1)] = slab.velocity().y()[first + i];
    cur[static_cast<std::size_t>(3 * i + 2)] = slab.velocity().z()[first + i];
  }
  if (prev_.size() != cur.size()) {
    prev_ = std::move(cur);
    residual_ = std::numeric_limits<double>::infinity();
    return false;
  }
  double diff2 = 0.0, norm2 = 0.0;
  for (std::size_t i = 0; i < cur.size(); ++i) {
    const double d = cur[i] - prev_[i];
    diff2 += d * d;
    norm2 += cur[i] * cur[i];
  }
  const double dn = std::sqrt(diff2);
  const double vn = std::sqrt(norm2);
  residual_ = dn / std::max(vn, 1e-300);
  prev_ = std::move(cur);
  // a quiescent field carries only round-off dust; the relative residual
  // is meaningless there, so an absolute floor also counts as converged
  const double floor = 1e-14 * std::sqrt(static_cast<double>(prev_.size()));
  return residual_ < tol_ || dn < floor;
}

void SteadyStateMonitor::reset() {
  prev_.clear();
  residual_ = std::numeric_limits<double>::infinity();
}

}  // namespace slipflow::lbm
