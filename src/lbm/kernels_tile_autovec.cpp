/// \file kernels_tile_autovec.cpp
/// Portable instantiation of the tile kernels: the "vector" type is a
/// plain lane array whose operation loops any optimizing compiler
/// unrolls and auto-vectorizes to whatever the build's baseline ISA
/// offers (SSE2 on default x86 builds, NEON on arm, ...). This is the
/// only tile backend in -DSLIPFLOW_DISABLE_SIMD=ON builds and on
/// non-x86 targets. Per-lane operation order matches the scalar path,
/// so results are bit-identical wherever the compiler does not contract
/// mul+add into FMA (default builds; under -march=native the tests fall
/// back to the 1e-13 pin).

#include <cmath>
#include <cstdint>

#include "lbm/kernels_tile.hpp"

namespace slipflow::lbm::tilek {
namespace {

struct VGen {
  static constexpr std::int64_t kW = kTileWidth;
  double v[kW];

  static VGen loadu(const double* p) {
    VGen r;
    for (std::int64_t i = 0; i < kW; ++i) r.v[i] = p[i];
    return r;
  }
  static void storeu(double* p, VGen a) {
    for (std::int64_t i = 0; i < kW; ++i) p[i] = a.v[i];
  }
  static VGen set1(double x) {
    VGen r;
    for (std::int64_t i = 0; i < kW; ++i) r.v[i] = x;
    return r;
  }
  static VGen zero() { return set1(0.0); }
  static VGen add(VGen a, VGen b) {
    VGen r;
    for (std::int64_t i = 0; i < kW; ++i) r.v[i] = a.v[i] + b.v[i];
    return r;
  }
  static VGen sub(VGen a, VGen b) {
    VGen r;
    for (std::int64_t i = 0; i < kW; ++i) r.v[i] = a.v[i] - b.v[i];
    return r;
  }
  static VGen mul(VGen a, VGen b) {
    VGen r;
    for (std::int64_t i = 0; i < kW; ++i) r.v[i] = a.v[i] * b.v[i];
    return r;
  }
  static VGen div(VGen a, VGen b) {
    VGen r;
    for (std::int64_t i = 0; i < kW; ++i) r.v[i] = a.v[i] / b.v[i];
    return r;
  }
  static VGen select_gt(VGen a, VGen b, VGen val) {
    VGen r;
    for (std::int64_t i = 0; i < kW; ++i)
      r.v[i] = a.v[i] > b.v[i] ? val.v[i] : 0.0;
    return r;
  }
  static VGen blend_gt(VGen a, VGen b, VGen t, VGen f) {
    VGen r;
    for (std::int64_t i = 0; i < kW; ++i)
      r.v[i] = a.v[i] > b.v[i] ? t.v[i] : f.v[i];
    return r;
  }
  static VGen neg(VGen a) {
    VGen r;
    for (std::int64_t i = 0; i < kW; ++i) r.v[i] = -a.v[i];
    return r;
  }
  static VGen sqrt(VGen a) {
    VGen r;
    for (std::int64_t i = 0; i < kW; ++i) r.v[i] = std::sqrt(a.v[i]);
    return r;
  }

  // Masked tail ops: lanes < n load/store, the rest read as +0.0 and are
  // never written.
  static VGen loadu_n(const double* p, int n) {
    VGen r;
    for (std::int64_t i = 0; i < kW; ++i) r.v[i] = i < n ? p[i] : 0.0;
    return r;
  }
  static void storeu_n(double* p, VGen a, int n) {
    for (std::int64_t i = 0; i < n; ++i) p[i] = a.v[i];
  }
};

#include "lbm/kernels_tile.inl"

}  // namespace

const Backend* tile_backend_autovec() {
  static constexpr Backend b{&stream_tiles_impl<VGen>, &forces_tiles_impl<VGen>,
                             &density_impl<VGen>};
  return &b;
}

}  // namespace slipflow::lbm::tilek
