/// \file kernels_plan.cpp
/// Plan-based hot kernels: fused collide+stream over the StreamingPlan's
/// interior runs and boundary link tables, and the psi-cached force
/// kernel. Every per-cell expression is kept textually identical to the
/// legacy kernels in kernels.cpp so the two paths (and interior vs.
/// boundary classification, which changes with the decomposition) produce
/// bit-identical populations.

#include <cmath>
#include <vector>

#include "lbm/kernels.hpp"
#include "lbm/mrt.hpp"
#include "lbm/plan.hpp"

namespace slipflow::lbm {

namespace {
/// Densities below this are treated as vacuum when dividing by rho
/// (same constant as kernels.cpp).
constexpr double kTinyDensity = 1e-12;

/// BGK relaxation of one cell into out[0..18] — the exact expressions of
/// the legacy collide(), shared by the boundary-plane pre-collide and the
/// fused kernel so every path relaxes a cell to the same bits.
inline void bgk_cell(const DistField& f, index_t cell, double nc,
                     const Vec3& u, double inv_tau, double* out) {
  const double u2 = u.norm2();
  for (int d = 0; d < kQ; ++d) {
    const double cu = kCx[d] * u.x + kCy[d] * u.y + kCz[d] * u.z;
    const double feq =
        kWeight[d] * nc * (1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * u2);
    const double fold = f.at(d, cell);
    out[d] = fold - (fold - feq) * inv_tau;
  }
}
}  // namespace

void collide_boundary_planes(Slab& slab) {
  const Extents& st = slab.storage();
  const index_t pc = st.plane_cells();
  const index_t planes[2] = {1, slab.nx_local()};
  const int nplanes = slab.nx_local() == 1 ? 1 : 2;
  for (std::size_t c = 0; c < slab.num_components(); ++c) {
    const ComponentParams& cp = slab.params().components[c];
    const ScalarField& n = slab.density(c);
    const VectorField& ueq = slab.ueq(c);
    const DistField& f = slab.f(c);
    DistField& fp = slab.f_post(c);
    const bool mrt = cp.collision == CollisionModel::mrt;
    const MrtOperator& op = MrtOperator::instance();
    const MrtRates rates = MrtRates::for_tau(cp.tau);
    const double inv_tau = 1.0 / cp.tau;
    double fin[kQ], fout[kQ];
    for (int p = 0; p < nplanes; ++p) {
      const index_t first = planes[p] * pc;
      const index_t last = first + pc;
      for (index_t cell = first; cell < last; ++cell) {
        if (mrt) {
          for (int d = 0; d < kQ; ++d) fin[d] = f.at(d, cell);
          op.collide_cell(fin, fout, n[cell], ueq.at(cell), rates);
        } else {
          bgk_cell(f, cell, n[cell], ueq.at(cell), inv_tau, fout);
        }
        for (int d = 0; d < kQ; ++d) fp.at(d, cell) = fout[d];
      }
    }
  }
}

void fused_collide_stream_range(Slab& slab, std::size_t run_begin,
                                std::size_t run_end, std::size_t cell_begin,
                                std::size_t cell_end) {
  const StreamingPlan& plan = slab.plan();
  index_t off[kQ];
  for (int d = 0; d < kQ; ++d) off[d] = plan.dir_offset(d);

  for (std::size_t c = 0; c < slab.num_components(); ++c) {
    const ComponentParams& cp = slab.params().components[c];
    const ScalarField& n = slab.density(c);
    const VectorField& ueq = slab.ueq(c);
    const DistField& f = slab.f(c);
    DistField& fp = slab.f_post(c);
    const bool mrt = cp.collision == CollisionModel::mrt;
    const MrtOperator& op = MrtOperator::instance();
    const MrtRates rates = MrtRates::for_tau(cp.tau);
    const double inv_tau = 1.0 / cp.tau;

    // Scratch is local so disjoint slices can run on pool threads.
    double fin[kQ], fout[kQ];
    const auto collide_one = [&](index_t cell) {
      if (mrt) {
        for (int d = 0; d < kQ; ++d) fin[d] = f.at(d, cell);
        op.collide_cell(fin, fout, n[cell], ueq.at(cell), rates);
      } else {
        bgk_cell(f, cell, n[cell], ueq.at(cell), inv_tau, fout);
      }
    };

    // Interior: every push lands at a fixed offset — collide the source
    // once and scatter the 19 outputs, no conditionals. This re-collides
    // the cells collide_boundary_planes already handled only when a run
    // touches them, which it never does (plane 1 / nx_local cells are
    // never stream-interior).
    const auto& runs = plan.stream_interior();
    for (std::size_t ri = run_begin; ri < run_end; ++ri) {
      const InteriorRun& r = runs[ri];
      for (index_t i = 0; i < r.count; ++i) {
        const index_t cell = r.cell + i;
        collide_one(cell);
        fp.at(0, cell) = fout[0];
        for (int d = 1; d < kQ; ++d) fp.at(d, cell + off[d]) = fout[d];
      }
    }

    // Boundary: walk the precomputed link table. Bounce-back links point
    // back at the cell itself with the moving-wall correction term's
    // c·u_wall baked in at plan-build time.
    const auto& links = plan.links();
    const auto& bcells = plan.stream_boundary();
    for (std::size_t bi = cell_begin; bi < cell_end; ++bi) {
      const StreamBoundaryCell& b = bcells[bi];
      collide_one(b.cell);
      fp.at(0, b.cell) = fout[0];
      for (std::uint32_t l = b.link_begin; l < b.link_end; ++l) {
        const StreamLink& lk = links[l];
        double v = fout[lk.out_dir];
        if (lk.wall_cu != 0.0)
          v += 2.0 * kWeight[lk.dest_dir] * n[b.cell] * lk.wall_cu / kCs2;
        fp.at(lk.dest_dir, lk.dest) = v;
      }
    }
  }
}

void fused_collide_stream_finish(Slab& slab) {
  const StreamingPlan& plan = slab.plan();
  for (std::size_t c = 0; c < slab.num_components(); ++c) {
    // Populations arriving from the x-neighbors: plain copies out of the
    // exchanged halo planes (disjoint from every slot the pushes wrote).
    DistField& fp = slab.f_post(c);
    for (const HaloPull& h : plan.halo_pulls())
      fp.at(h.dir, h.dest) = fp.at(h.dir, h.src);
  }

  // The post-streaming state was assembled in f_post; swap it into f and
  // pin solid cells to zero exactly as the legacy stream() does.
  for (std::size_t c = 0; c < slab.num_components(); ++c) {
    slab.f(c).swap(slab.f_post(c));
    DistField& f = slab.f(c);
    for (index_t cell : plan.solids())
      for (int d = 0; d < kQ; ++d) f.at(d, cell) = 0.0;
  }
}

void fused_collide_stream(Slab& slab) {
  const StreamingPlan& plan = slab.plan();
  const KernelBackend bk = active_kernel_backend();
  if (bk != KernelBackend::scalar) {
    // Tile path: interior cells through the SIMD backend, boundary cells
    // through the link tables as ever (run range empty).
    fused_collide_stream_tiles(slab, bk, 0, slab.tiles().stream_tiles().size());
    fused_collide_stream_range(slab, 0, 0, 0, plan.stream_boundary().size());
  } else {
    fused_collide_stream_range(slab, 0, plan.stream_interior().size(), 0,
                               plan.stream_boundary().size());
  }
  fused_collide_stream_finish(slab);
}

void force_psi_prepare(Slab& slab, ForcePsiCache& cache, index_t cell_begin,
                       index_t cell_end, bool reset) {
  const std::size_t nc = slab.num_components();
  SLIPFLOW_REQUIRE(nc <= 8);
  // psi cache: for the paper's psi = n the density storage *is* the
  // cache; for the exponential form evaluate 1 - exp(-n) once per cell
  // per step instead of once per neighbor read (the legacy kernel pays
  // up to 18 exp calls per cell).
  if (slab.params().psi_form != PsiForm::shan_chen) {
    if (reset)
      for (std::size_t c = 0; c < nc; ++c)
        cache.psi[c] = slab.density(c).data().data();
    return;
  }
  if (reset) cache.scratch.resize(nc);
  for (std::size_t c = 0; c < nc; ++c) {
    std::span<const double> n = slab.density(c).data();
    auto& s = cache.scratch[c];
    if (reset) {
      s.resize(n.size());
      cache.psi[c] = s.data();
    }
    for (index_t i = cell_begin; i < cell_end; ++i) {
      const auto u = static_cast<std::size_t>(i);
      s[u] = 1.0 - std::exp(-n[u]);
    }
  }
}

void compute_forces_plan_range(Slab& slab, const ForcePsiCache& cache,
                               std::size_t run_begin, std::size_t run_end,
                               std::size_t cell_begin, std::size_t cell_end) {
  const StreamingPlan& plan = slab.plan();
  const FluidParams& prm = slab.params();
  const std::size_t nc = slab.num_components();
  SLIPFLOW_REQUIRE(nc <= 8);
  const index_t nz = slab.storage().nz;
  const bool patterned = static_cast<bool>(prm.wall_pattern);
  const std::array<const double*, 8>& psi = cache.psi;

  index_t off[kQ];
  for (int d = 0; d < kQ; ++d) off[d] = plan.dir_offset(d);

  // Everything after the psi gather is identical for interior and
  // boundary cells; `grad` holds the Shan-Chen neighbor sums.
  Vec3 p[8];  // per-component first moments, computed once and reused
  const auto finish_cell = [&](index_t cell, index_t yz, index_t gx,
                               const Vec3* grad) {
    // First moments and the common velocity u' (Section 2.1):
    // u' = sum_c (m_c / tau_c) p_c  /  sum_c (m_c / tau_c) n_c.
    Vec3 unum{};
    double uden = 0.0;
    for (std::size_t c = 0; c < nc; ++c) {
      const auto& cp = prm.components[c];
      const DistField& f = slab.f(c);
      Vec3 pc{};
      for (int d = 1; d < kQ; ++d) {
        const double fd = f.at(d, cell);
        pc.x += fd * kCx[d];
        pc.y += fd * kCy[d];
        pc.z += fd * kCz[d];
      }
      p[c] = pc;
      const double w = cp.molecular_mass / cp.tau;
      unum += w * pc;
      uden += w * slab.density(c)[cell];
    }
    const Vec3 uprime = uden > kTinyDensity ? (1.0 / uden) * unum : Vec3{};

    Vec3 wall_a = slab.wall_accel_unit(yz);
    if (patterned) wall_a = prm.wall_pattern(gx, yz / nz, yz % nz) * wall_a;
    double rho_tot = 0.0;
    Vec3 rho_u{};
    Vec3 force_sum{};
    for (std::size_t c = 0; c < nc; ++c) {
      const auto& cp = prm.components[c];
      const double ncur = slab.density(c)[cell];
      const double rho = cp.molecular_mass * ncur;

      // interaction force F = -psi_c sum_c' G_{cc'} grad[c']
      Vec3 F{};
      const double psi_c = psi[c][static_cast<std::size_t>(cell)];
      for (std::size_t c2 = 0; c2 < nc; ++c2) {
        const double g = prm.g(c, c2);
        if (g != 0.0) F += (-psi_c * g) * grad[c2];
      }
      // hydrophobic wall force (mass density times wall acceleration)
      F += (rho * cp.wall_accel) * wall_a;
      // streamwise driving force
      F.x += rho * prm.gravity_x;

      // equilibrium velocity u_eq = u' + tau F / rho, with the shift
      // clamped so near-vacuum trace cells cannot blow up
      Vec3 ue = uprime;
      if (rho > kTinyDensity) {
        Vec3 shift = (cp.tau / rho) * F;
        const double s2 = shift.norm2();
        const double smax = prm.max_force_shift;
        if (s2 > smax * smax) shift = (smax / std::sqrt(s2)) * shift;
        ue += shift;
      }
      slab.ueq(c).set(cell, ue);

      rho_tot += rho;
      force_sum += F;
      rho_u += cp.molecular_mass * p[c];
    }

    // mixture observables: rho u = sum_c m_c p_c + (1/2) sum_c F_c
    slab.total_density()[cell] = rho_tot;
    Vec3 u_out{};
    if (rho_tot > kTinyDensity)
      u_out = (1.0 / rho_tot) * (rho_u + 0.5 * force_sum);
    slab.velocity().set(cell, u_out);
  };

  Vec3 grad[8];
  const auto& runs = plan.force_interior();
  for (std::size_t ri = run_begin; ri < run_end; ++ri) {
    const InteriorRun& r = runs[ri];
    for (index_t i = 0; i < r.count; ++i) {
      const index_t cell = r.cell + i;
      for (std::size_t c2 = 0; c2 < nc; ++c2) {
        const double* ps = psi[c2];
        Vec3 g{};
        for (int d = 1; d < kQ; ++d) {
          const double psv = ps[static_cast<std::size_t>(cell + off[d])];
          g.x += kWeight[d] * psv * kCx[d];
          g.y += kWeight[d] * psv * kCy[d];
          g.z += kWeight[d] * psv * kCz[d];
        }
        grad[c2] = g;
      }
      finish_cell(cell, r.yz + i, r.gx, grad);
    }
  }
  const auto& nbrs = plan.force_neighbors();
  const auto& bcells = plan.force_boundary();
  for (std::size_t bi = cell_begin; bi < cell_end; ++bi) {
    const ForceBoundaryCell& b = bcells[bi];
    for (std::size_t c2 = 0; c2 < nc; ++c2) {
      const double* ps = psi[c2];
      Vec3 g{};
      for (int d = 1; d < kQ; ++d) {
        const index_t nb = nbrs[b.nbr_begin + static_cast<std::uint32_t>(d) - 1];
        if (nb < 0) continue;  // psi = 0 inside walls / solids
        const double psv = ps[static_cast<std::size_t>(nb)];
        g.x += kWeight[d] * psv * kCx[d];
        g.y += kWeight[d] * psv * kCy[d];
        g.z += kWeight[d] * psv * kCz[d];
      }
      grad[c2] = g;
    }
    finish_cell(b.cell, b.yz, b.gx, grad);
  }
}

void compute_forces_and_velocity_plan(Slab& slab) {
  const StreamingPlan& plan = slab.plan();
  static thread_local ForcePsiCache cache;
  force_psi_prepare(slab, cache, 0, slab.storage().cells(), /*reset=*/true);
  const KernelBackend bk = active_kernel_backend();
  if (bk != KernelBackend::scalar) {
    compute_forces_tiles(slab, cache, bk, 0, slab.tiles().force_tiles().size());
    compute_forces_plan_range(slab, cache, 0, 0, 0,
                              plan.force_boundary().size());
  } else {
    compute_forces_plan_range(slab, cache, 0, plan.force_interior().size(), 0,
                              plan.force_boundary().size());
  }
}

}  // namespace slipflow::lbm
