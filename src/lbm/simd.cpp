#include "lbm/simd.hpp"

#include <atomic>
#include <cstdlib>

#include "util/require.hpp"

namespace slipflow::lbm {

namespace {

#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
bool cpu_has_avx2() { return __builtin_cpu_supports("avx2") != 0; }
bool cpu_has_avx512f() { return __builtin_cpu_supports("avx512f") != 0; }
#else
bool cpu_has_avx2() { return false; }
bool cpu_has_avx512f() { return false; }
#endif

/// -1 = no override (use the default); otherwise a KernelBackend value.
std::atomic<int> g_override{-1};

}  // namespace

const char* to_string(KernelBackend b) {
  switch (b) {
    case KernelBackend::scalar:
      return "scalar";
    case KernelBackend::autovec:
      return "autovec";
    case KernelBackend::avx2:
      return "avx2";
    case KernelBackend::avx512:
      return "avx512";
  }
  return "?";
}

std::optional<KernelBackend> parse_kernel_backend(std::string_view name) {
  if (name == "scalar") return KernelBackend::scalar;
  if (name == "autovec") return KernelBackend::autovec;
  if (name == "avx2") return KernelBackend::avx2;
  if (name == "avx512") return KernelBackend::avx512;
  return std::nullopt;
}

bool kernel_backend_compiled(KernelBackend b) {
  switch (b) {
    case KernelBackend::scalar:
    case KernelBackend::autovec:
      return true;
    case KernelBackend::avx2:
#if defined(SLIPFLOW_HAVE_AVX2)
      return true;
#else
      return false;
#endif
    case KernelBackend::avx512:
#if defined(SLIPFLOW_HAVE_AVX512)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool kernel_backend_supported(KernelBackend b) {
  if (!kernel_backend_compiled(b)) return false;
  switch (b) {
    case KernelBackend::scalar:
    case KernelBackend::autovec:
      return true;
    case KernelBackend::avx2:
      return cpu_has_avx2();
    case KernelBackend::avx512:
      return cpu_has_avx512f();
  }
  return false;
}

std::vector<KernelBackend> supported_kernel_backends() {
  std::vector<KernelBackend> out;
  for (KernelBackend b : {KernelBackend::scalar, KernelBackend::autovec,
                          KernelBackend::avx2, KernelBackend::avx512})
    if (kernel_backend_supported(b)) out.push_back(b);
  return out;
}

KernelBackend default_kernel_backend() {
  // Environment override (the programmatic set_kernel_backend and the
  // --kernel-backend flags still win): lets tests and CI pin a backend
  // without threading a flag through every harness.
  if (const char* env = std::getenv("SLIPFLOW_KERNEL_BACKEND")) {
    const std::optional<KernelBackend> b = parse_kernel_backend(env);
    if (b && kernel_backend_supported(*b)) return *b;
  }
  if (kernel_backend_supported(KernelBackend::avx512))
    return KernelBackend::avx512;
  if (kernel_backend_supported(KernelBackend::avx2)) return KernelBackend::avx2;
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  // On x86 without (compiled-in) AVX the scalar plan path is the tuned
  // one; autovec under bare SSE2 buys little and scalar is the pinned
  // reference. SIMD-disabled builds still *test* autovec via the sweeps.
  if (kernel_backend_compiled(KernelBackend::avx2)) return KernelBackend::scalar;
  return KernelBackend::autovec;
#else
  return KernelBackend::autovec;
#endif
}

KernelBackend active_kernel_backend() {
  const int o = g_override.load(std::memory_order_relaxed);
  if (o >= 0) return static_cast<KernelBackend>(o);
  static const KernelBackend def = default_kernel_backend();
  return def;
}

void set_kernel_backend(KernelBackend b) {
  SLIPFLOW_REQUIRE_MSG(kernel_backend_supported(b),
                       "kernel backend not supported on this build/CPU");
  g_override.store(static_cast<int>(b), std::memory_order_relaxed);
}

}  // namespace slipflow::lbm
