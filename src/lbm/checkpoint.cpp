#include "lbm/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <vector>

namespace slipflow::lbm {

namespace {

constexpr std::uint64_t kMagic = 0x534C4950434B5054ull;  // "SLIPCKPT"
constexpr std::uint64_t kVersion = 1;

struct Header {
  std::uint64_t magic = kMagic;
  std::uint64_t version = kVersion;
  std::int64_t nx = 0, ny = 0, nz = 0;
  std::int64_t components = 0;
  std::int64_t phase = 0;
  std::int64_t plane_doubles = 0;
};
static_assert(sizeof(Header) == kCheckpointHeaderBytes);

std::streamoff plane_offset(const Header& h, index_t gx) {
  return static_cast<std::streamoff>(sizeof(Header)) +
         static_cast<std::streamoff>(gx) *
             static_cast<std::streamoff>(h.plane_doubles) * 8;
}

Header read_header(std::istream& in, const std::string& path) {
  Header h;
  in.read(reinterpret_cast<char*>(&h), sizeof(h));
  SLIPFLOW_REQUIRE_MSG(in.good(), "cannot read checkpoint header from "
                                      << path);
  SLIPFLOW_REQUIRE_MSG(h.magic == kMagic,
                       path << " is not a slipflow checkpoint");
  SLIPFLOW_REQUIRE_MSG(h.version == kVersion,
                       "unsupported checkpoint version " << h.version);
  return h;
}

Header header_for(const Extents& global, std::size_t components,
                  long long phase, index_t plane_doubles) {
  Header h;
  h.nx = global.nx;
  h.ny = global.ny;
  h.nz = global.nz;
  h.components = static_cast<std::int64_t>(components);
  h.phase = phase;
  h.plane_doubles = plane_doubles;
  return h;
}

void check_matches(const Header& h, const Slab& slab,
                   const std::string& path) {
  const Extents& g = slab.geometry().global();
  SLIPFLOW_REQUIRE_MSG(h.nx == g.nx && h.ny == g.ny && h.nz == g.nz,
                       "checkpoint " << path << " is for a " << h.nx << "x"
                                     << h.ny << "x" << h.nz << " domain");
  SLIPFLOW_REQUIRE_MSG(
      h.components == static_cast<std::int64_t>(slab.num_components()),
      "checkpoint " << path << " has " << h.components << " components");
  SLIPFLOW_REQUIRE_MSG(h.plane_doubles == slab.migration_doubles(1),
                       "checkpoint " << path << " has mismatched plane size");
}

}  // namespace

CheckpointInfo read_checkpoint_info(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SLIPFLOW_REQUIRE_MSG(in.good(), "cannot open checkpoint " << path);
  const Header h = read_header(in, path);
  return CheckpointInfo{Extents{h.nx, h.ny, h.nz},
                        static_cast<std::size_t>(h.components), h.phase,
                        h.plane_doubles};
}

std::size_t expected_checkpoint_bytes(const CheckpointInfo& info) {
  return checkpoint_plane_offset(info.plane_doubles, info.global.nx);
}

void begin_checkpoint(const Extents& global, std::size_t components,
                      long long phase, index_t plane_doubles,
                      const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  SLIPFLOW_REQUIRE_MSG(out.good(), "cannot create checkpoint " << path);
  const Header h = header_for(global, components, phase, plane_doubles);
  out.write(reinterpret_cast<const char*>(&h), sizeof(h));
  // pre-size the file so concurrent range writers can seek anywhere
  out.seekp(plane_offset(h, global.nx) - 1);
  const char zero = 0;
  out.write(&zero, 1);
  SLIPFLOW_REQUIRE_MSG(out.good(), "cannot size checkpoint " << path);
}

void write_checkpoint_planes(const Slab& slab, const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  SLIPFLOW_REQUIRE_MSG(probe.good(), "cannot open checkpoint " << path);
  const Header h = read_header(probe, path);
  check_matches(h, slab, path);
  probe.close();

  std::fstream out(path, std::ios::binary | std::ios::in | std::ios::out);
  SLIPFLOW_REQUIRE_MSG(out.good(), "cannot update checkpoint " << path);
  std::vector<double> buf(
      static_cast<std::size_t>(slab.migration_doubles(1)));
  for (index_t gx = slab.x_begin(); gx < slab.x_end(); ++gx) {
    slab.pack_owned_plane(gx, buf);
    out.seekp(plane_offset(h, gx));
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size() * sizeof(double)));
  }
  SLIPFLOW_REQUIRE_MSG(out.good(), "short write to checkpoint " << path);
}

void save_checkpoint(const Slab& slab, long long phase,
                     const std::string& path) {
  begin_checkpoint(slab.geometry().global(), slab.num_components(), phase,
                   slab.migration_doubles(1), path);
  write_checkpoint_planes(slab, path);
}

std::vector<std::byte> pack_checkpoint_planes(const Slab& slab) {
  std::vector<std::byte> bytes;
  pack_checkpoint_planes(slab, bytes);
  return bytes;
}

void pack_checkpoint_planes(const Slab& slab, std::vector<std::byte>& out) {
  const auto plane_doubles =
      static_cast<std::size_t>(slab.migration_doubles(1));
  const auto planes = static_cast<std::size_t>(slab.x_end() - slab.x_begin());
  out.resize(planes * plane_doubles * sizeof(double));
  std::vector<double> buf(plane_doubles);
  std::size_t off = 0;
  for (index_t gx = slab.x_begin(); gx < slab.x_end(); ++gx) {
    slab.pack_owned_plane(gx, buf);
    std::memcpy(out.data() + off, buf.data(), plane_doubles * sizeof(double));
    off += plane_doubles * sizeof(double);
  }
}

long long load_checkpoint_planes(Slab& slab, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SLIPFLOW_REQUIRE_MSG(in.good(), "cannot open checkpoint " << path);
  const Header h = read_header(in, path);
  check_matches(h, slab, path);
  std::vector<double> buf(
      static_cast<std::size_t>(slab.migration_doubles(1)));
  for (index_t gx = slab.x_begin(); gx < slab.x_end(); ++gx) {
    in.seekg(plane_offset(h, gx));
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(buf.size() * sizeof(double)));
    SLIPFLOW_REQUIRE_MSG(in.good(), "short read from checkpoint " << path);
    slab.unpack_owned_plane(gx, buf);
  }
  return h.phase;
}

}  // namespace slipflow::lbm
