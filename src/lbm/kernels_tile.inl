// \file kernels_tile.inl
// Width-generic bodies of the tile kernels, instantiated once per ISA by
// the kernels_tile_*.cpp translation units. Include inside
// namespace slipflow::lbm::tilek (an anonymous namespace is fine) after
// defining a vector wrapper type with the interface:
//
//   static constexpr std::int64_t kW;          // lanes (doubles)
//   static V loadu(const double*);  static void storeu(double*, V);
//   static V loadu_n(const double*, int n);    // lanes >= n read as +0.0
//   static void storeu_n(double*, V, int n);   // lanes >= n not written
//   static V set1(double);          static V zero();
//   static V add(V, V); static V sub(V, V); static V mul(V, V);
//   static V div(V, V); static V neg(V); static V sqrt(V);
//   static V select_gt(V a, V b, V v);         // lane: a > b ? v : 0.0
//   static V blend_gt(V a, V b, V t, V f);     // lane: a > b ? t : f
//
// Short run tails execute the same vector body through the masked
// load/store ops (dead lanes read +0.0, compute garbage, and are never
// stored), so every cell of every tile takes the vector code path.
//
// NUMERICS CONTRACT: every lane must perform exactly the scalar plan
// path's operations in the scalar plan path's order — separate mul and
// add, never FMA — so all backends produce bit-identical populations in
// builds that do not contract the scalar path either (the intrinsic TUs
// additionally compile with -ffp-contract=off to pin their scalar
// helpers). tests/test_tile_kernels.cpp pins every backend <= 1e-13
// against scalar to stay green under -march=native contraction.

/// One vector-width group of a stream tile starting at `cell`: fused BGK
/// collide + push-stream, mirroring fused_collide_stream_range's
/// interior body. Masked == true stores only the first `r` lanes.
template <class V, bool Masked>
inline void stream_cells(const StreamCtx& c, std::int64_t cell, int r) {
  const auto ld = [&](const double* p) {
    if constexpr (Masked)
      return V::loadu_n(p, r);
    else
      return V::loadu(p);
  };
  const V one = V::set1(1.0);
  const V three = V::set1(3.0);
  const V c45 = V::set1(4.5);
  const V c15 = V::set1(1.5);
  const V itau = V::set1(c.inv_tau);
  const V nv = ld(c.n + cell);
  const V ux = ld(c.ux + cell);
  const V uy = ld(c.uy + cell);
  const V uz = ld(c.uz + cell);
  // u2 = x*x + y*y + z*z, Vec3::norm2's association
  const V u2 =
      V::add(V::add(V::mul(ux, ux), V::mul(uy, uy)), V::mul(uz, uz));
  for (int d = 0; d < kQ; ++d) {
    // cu = cx*ux + cy*uy + cz*uz
    const V cu =
        V::add(V::add(V::mul(V::set1(static_cast<double>(kCx[d])), ux),
                      V::mul(V::set1(static_cast<double>(kCy[d])), uy)),
               V::mul(V::set1(static_cast<double>(kCz[d])), uz));
    // feq = w * n * (1 + 3 cu + 4.5 cu^2 - 1.5 u2)
    const V poly = V::sub(V::add(V::add(one, V::mul(three, cu)),
                                 V::mul(V::mul(c45, cu), cu)),
                          V::mul(c15, u2));
    const V feq = V::mul(V::mul(V::set1(kWeight[d]), nv), poly);
    const V fold = ld(c.f[d] + cell);
    const V out = V::sub(fold, V::mul(V::sub(fold, feq), itau));
    if constexpr (Masked)
      V::storeu_n(c.fp[d] + cell + c.off[d], out, r);
    else
      V::storeu(c.fp[d] + cell + c.off[d], out);
  }
}

/// Fused BGK collide + push-stream of tiles [tile_begin, tile_end).
template <class V>
void stream_tiles_impl(const StreamCtx& c, std::size_t tile_begin,
                       std::size_t tile_end) {
  for (std::size_t t = tile_begin; t < tile_end; ++t) {
    const Tile& tile = c.tiles[t];
    const std::int64_t cnt = tile.count;
    std::int64_t lane = 0;
    for (; lane + V::kW <= cnt; lane += V::kW)
      stream_cells<V, false>(c, tile.cell + lane, static_cast<int>(V::kW));
    if (lane < cnt)
      stream_cells<V, true>(c, tile.cell + lane,
                            static_cast<int>(cnt - lane));
  }
}

/// Everything after the psi/momentum gathers — identical, expression for
/// expression, to the finish_cell lambda of compute_forces_plan_range.
/// Only the patterned-wall path takes this scalar finish; plain walls go
/// through the vector finish in force_cells below.
inline void force_finish_cell(const ForceCtx& c, std::int64_t cell,
                              std::int64_t yz, std::int64_t gx,
                              const Vec3* grad, const Vec3* p,
                              const Vec3& uprime) {
  Vec3 wall_a = c.wall_unit[yz];
  if (c.pattern)
    wall_a = c.pattern(c.pattern_state, gx, yz / c.nz, yz % c.nz) * wall_a;
  double rho_tot = 0.0;
  Vec3 rho_u{};
  Vec3 force_sum{};
  for (int k = 0; k < c.ncomp; ++k) {
    const double ncur = c.n[k][cell];
    const double rho = c.mass[k] * ncur;

    Vec3 F{};
    const double psi_c = c.psi[k][cell];
    for (int c2 = 0; c2 < c.ncomp; ++c2) {
      const double g = c.g[k][c2];
      if (g != 0.0) F += (-psi_c * g) * grad[c2];
    }
    F += (rho * c.wall_accel[k]) * wall_a;
    F.x += rho * c.gravity_x;

    Vec3 ue = uprime;
    if (rho > kTinyDensity) {
      Vec3 shift = (c.tau[k] / rho) * F;
      const double s2 = shift.norm2();
      const double smax = c.max_force_shift;
      if (s2 > smax * smax) shift = (smax / std::sqrt(s2)) * shift;
      ue += shift;
    }
    c.ueq_x[k][cell] = ue.x;
    c.ueq_y[k][cell] = ue.y;
    c.ueq_z[k][cell] = ue.z;

    rho_tot += rho;
    force_sum += F;
    rho_u += c.mass[k] * p[k];
  }
  c.rho_tot[cell] = rho_tot;
  Vec3 u_out{};
  if (rho_tot > kTinyDensity)
    u_out = (1.0 / rho_tot) * (rho_u + 0.5 * force_sum);
  c.u_x[cell] = u_out.x;
  c.u_y[cell] = u_out.y;
  c.u_z[cell] = u_out.z;
}

/// One vector-width group of a force tile: Shan-Chen psi gradients,
/// per-component first moments, common velocity, force and equilibrium
/// velocity shift — all W lanes wide. Every vector expression mirrors
/// the scalar plan path operation for operation (see force_finish_cell);
/// branches become blends whose not-taken lanes keep the exact
/// not-taken value. Only a patterned wall (a per-cell user callback)
/// falls back to the scalar finish, fed from spilled lanes.
template <class V, bool Masked>
inline void force_cells(const ForceCtx& c, const Tile& tile,
                        std::int64_t lane0, int r) {
  const std::int64_t cell = tile.cell + lane0;
  const int nc = c.ncomp;
  const auto ld = [&](const double* p) {
    if constexpr (Masked)
      return V::loadu_n(p, r);
    else
      return V::loadu(p);
  };
  const auto st = [&](double* p, V val) {
    if constexpr (Masked)
      V::storeu_n(p, val, r);
    else
      V::storeu(p, val);
  };
  const V one = V::set1(1.0);
  const V tiny = V::set1(kTinyDensity);

  // grad[c2] = sum_d w_d psi_c2(cell + off_d) c_d  (interior: every
  // neighbor is plain fluid at the fixed offset)
  V gradx[kMaxComp], grady[kMaxComp], gradz[kMaxComp];
  for (int c2 = 0; c2 < nc; ++c2) {
    const double* ps = c.psi[c2];
    V gx = V::zero(), gy = V::zero(), gz = V::zero();
    for (int d = 1; d < kQ; ++d) {
      const V psv = ld(ps + cell + c.off[d]);
      const V wps = V::mul(V::set1(kWeight[d]), psv);
      gx = V::add(gx, V::mul(wps, V::set1(static_cast<double>(kCx[d]))));
      gy = V::add(gy, V::mul(wps, V::set1(static_cast<double>(kCy[d]))));
      gz = V::add(gz, V::mul(wps, V::set1(static_cast<double>(kCz[d]))));
    }
    gradx[c2] = gx;
    grady[c2] = gy;
    gradz[c2] = gz;
  }

  // First moments p_k and the common velocity u' = unum / uden.
  V px[kMaxComp], py[kMaxComp], pz[kMaxComp];
  V unx = V::zero(), uny = V::zero(), unz = V::zero(), uden = V::zero();
  for (int k = 0; k < nc; ++k) {
    V pxa = V::zero(), pya = V::zero(), pza = V::zero();
    for (int d = 1; d < kQ; ++d) {
      const V fd = ld(c.f[k][d] + cell);
      pxa = V::add(pxa, V::mul(fd, V::set1(static_cast<double>(kCx[d]))));
      pya = V::add(pya, V::mul(fd, V::set1(static_cast<double>(kCy[d]))));
      pza = V::add(pza, V::mul(fd, V::set1(static_cast<double>(kCz[d]))));
    }
    px[k] = pxa;
    py[k] = pya;
    pz[k] = pza;
    const V w = V::set1(c.mass[k] / c.tau[k]);
    unx = V::add(unx, V::mul(w, pxa));
    uny = V::add(uny, V::mul(w, pya));
    unz = V::add(unz, V::mul(w, pza));
    uden = V::add(uden, V::mul(w, ld(c.n[k] + cell)));
  }
  // uprime = uden > tiny ? (1/uden) * unum : 0, per lane — the division
  // happens exactly as the scalar (1.0/uden) * unum does.
  const V inv = V::div(one, uden);
  const V upx = V::select_gt(uden, tiny, V::mul(inv, unx));
  const V upy = V::select_gt(uden, tiny, V::mul(inv, uny));
  const V upz = V::select_gt(uden, tiny, V::mul(inv, unz));

  if (c.pattern != nullptr) {
    // Patterned wall: per-cell user callback — spill the lanes and run
    // the scalar finish, exactly the plan path's code.
    double sgx[kMaxComp][V::kW], sgy[kMaxComp][V::kW], sgz[kMaxComp][V::kW];
    double spx[kMaxComp][V::kW], spy[kMaxComp][V::kW], spz[kMaxComp][V::kW];
    double sux[V::kW], suy[V::kW], suz[V::kW];
    for (int k = 0; k < nc; ++k) {
      V::storeu(sgx[k], gradx[k]);
      V::storeu(sgy[k], grady[k]);
      V::storeu(sgz[k], gradz[k]);
      V::storeu(spx[k], px[k]);
      V::storeu(spy[k], py[k]);
      V::storeu(spz[k], pz[k]);
    }
    V::storeu(sux, upx);
    V::storeu(suy, upy);
    V::storeu(suz, upz);
    for (int l = 0; l < r; ++l) {
      Vec3 grad[kMaxComp], p[kMaxComp];
      for (int k = 0; k < nc; ++k) {
        grad[k] = Vec3{sgx[k][l], sgy[k][l], sgz[k][l]};
        p[k] = Vec3{spx[k][l], spy[k][l], spz[k][l]};
      }
      force_finish_cell(c, cell + l, tile.yz + lane0 + l, tile.gx, grad, p,
                        Vec3{sux[l], suy[l], suz[l]});
    }
    return;
  }

  // Vector finish. The wall direction is an AoS Vec3 per yz column —
  // deinterleave the lanes through the stack (unit stride in yz along a
  // tile, so plain scalar loads).
  double wax[V::kW], way[V::kW], waz[V::kW];
  for (int l = 0; l < r; ++l) {
    const Vec3& w = c.wall_unit[tile.yz + lane0 + l];
    wax[l] = w.x;
    way[l] = w.y;
    waz[l] = w.z;
  }
  for (std::int64_t l = r; l < V::kW; ++l) {
    wax[l] = 0.0;
    way[l] = 0.0;
    waz[l] = 0.0;
  }
  const V wvx = V::loadu(wax), wvy = V::loadu(way), wvz = V::loadu(waz);

  V rho_tot = V::zero();
  V fsx = V::zero(), fsy = V::zero(), fsz = V::zero();  // force_sum
  V rux = V::zero(), ruy = V::zero(), ruz = V::zero();  // rho_u
  for (int k = 0; k < nc; ++k) {
    const V nk = ld(c.n[k] + cell);
    const V rho = V::mul(V::set1(c.mass[k]), nk);
    const V psk = ld(c.psi[k] + cell);

    // F = sum_c2 (-psi_k g) grad[c2] + (rho wall_accel) wall_a; gravity x
    V Fx = V::zero(), Fy = V::zero(), Fz = V::zero();
    for (int c2 = 0; c2 < nc; ++c2) {
      const double g = c.g[k][c2];
      if (g != 0.0) {
        const V coef = V::mul(V::neg(psk), V::set1(g));
        Fx = V::add(Fx, V::mul(coef, gradx[c2]));
        Fy = V::add(Fy, V::mul(coef, grady[c2]));
        Fz = V::add(Fz, V::mul(coef, gradz[c2]));
      }
    }
    const V wcoef = V::mul(rho, V::set1(c.wall_accel[k]));
    Fx = V::add(Fx, V::mul(wcoef, wvx));
    Fy = V::add(Fy, V::mul(wcoef, wvy));
    Fz = V::add(Fz, V::mul(wcoef, wvz));
    Fx = V::add(Fx, V::mul(rho, V::set1(c.gravity_x)));

    // shift = (tau/rho) F, clamped to |shift| <= max_force_shift;
    // ue = rho > tiny ? uprime + shift : uprime. Vacuum lanes divide by
    // zero into the not-taken side of the blend and are discarded, like
    // the scalar branch never entering its body.
    const V q = V::div(V::set1(c.tau[k]), rho);
    V sx = V::mul(q, Fx), sy = V::mul(q, Fy), sz = V::mul(q, Fz);
    const V s2 =
        V::add(V::add(V::mul(sx, sx), V::mul(sy, sy)), V::mul(sz, sz));
    const V smax = V::set1(c.max_force_shift);
    const V smax2 = V::mul(smax, smax);
    const V cl = V::div(smax, V::sqrt(s2));
    sx = V::blend_gt(s2, smax2, V::mul(cl, sx), sx);
    sy = V::blend_gt(s2, smax2, V::mul(cl, sy), sy);
    sz = V::blend_gt(s2, smax2, V::mul(cl, sz), sz);
    const V uex = V::blend_gt(rho, tiny, V::add(upx, sx), upx);
    const V uey = V::blend_gt(rho, tiny, V::add(upy, sy), upy);
    const V uez = V::blend_gt(rho, tiny, V::add(upz, sz), upz);
    st(c.ueq_x[k] + cell, uex);
    st(c.ueq_y[k] + cell, uey);
    st(c.ueq_z[k] + cell, uez);

    rho_tot = V::add(rho_tot, rho);
    fsx = V::add(fsx, Fx);
    fsy = V::add(fsy, Fy);
    fsz = V::add(fsz, Fz);
    const V mk = V::set1(c.mass[k]);
    rux = V::add(rux, V::mul(mk, px[k]));
    ruy = V::add(ruy, V::mul(mk, py[k]));
    ruz = V::add(ruz, V::mul(mk, pz[k]));
  }
  st(c.rho_tot + cell, rho_tot);
  // u = rho_tot > tiny ? (1/rho_tot) (rho_u + 0.5 force_sum) : 0
  const V rinv = V::div(one, rho_tot);
  const V half = V::set1(0.5);
  const V uox =
      V::select_gt(rho_tot, tiny, V::mul(rinv, V::add(rux, V::mul(half, fsx))));
  const V uoy =
      V::select_gt(rho_tot, tiny, V::mul(rinv, V::add(ruy, V::mul(half, fsy))));
  const V uoz =
      V::select_gt(rho_tot, tiny, V::mul(rinv, V::add(ruz, V::mul(half, fsz))));
  st(c.u_x + cell, uox);
  st(c.u_y + cell, uoy);
  st(c.u_z + cell, uoz);
}

/// Shan-Chen force/velocity over tiles [tile_begin, tile_end).
template <class V>
void forces_tiles_impl(const ForceCtx& c, std::size_t tile_begin,
                       std::size_t tile_end) {
  for (std::size_t t = tile_begin; t < tile_end; ++t) {
    const Tile& tile = c.tiles[t];
    const std::int64_t cnt = tile.count;
    std::int64_t lane0 = 0;
    for (; lane0 + V::kW <= cnt; lane0 += V::kW)
      force_cells<V, false>(c, tile, lane0, static_cast<int>(V::kW));
    if (lane0 < cnt)
      force_cells<V, true>(c, tile, lane0, static_cast<int>(cnt - lane0));
  }
}

/// n = sum_d f_d over cells [first, first + count). Pure additions in
/// the legacy accumulation order — no mul/add pair exists to contract,
/// so this is bit-identical to the scalar kernel under any flags.
template <class V>
void density_impl(const DensityCtx& c, std::int64_t first,
                  std::int64_t count) {
  std::int64_t i = first;
  const std::int64_t last = first + count;
  for (; i + V::kW <= last; i += V::kW) {
    V acc = V::loadu(c.f[0] + i);
    for (int d = 1; d < kQ; ++d) acc = V::add(acc, V::loadu(c.f[d] + i));
    V::storeu(c.n + i, acc);
  }
  if (i < last) {
    const int r = static_cast<int>(last - i);
    V acc = V::loadu_n(c.f[0] + i, r);
    for (int d = 1; d < kQ; ++d)
      acc = V::add(acc, V::loadu_n(c.f[d] + i, r));
    V::storeu_n(c.n + i, acc, r);
  }
}
