#pragma once
/// \file tile.hpp
/// TileLayout — the StreamingPlan's interior runs re-chopped into
/// vector-width AoSoA tiles, the iteration unit of the SIMD kernels.
///
/// The direction-major DistField already stores each direction as one
/// contiguous scalar array with z unit-stride, so W z-consecutive cells
/// of one run give the kernels W-wide unit-stride loads of every f[d]
/// and unit-stride stores at the fixed push offset — a register-blocked
/// AoSoA view over the existing storage, no gather/scatter needed away
/// from tile edges. The layout chops every interior run into tiles of at
/// most kTileWidth cells: full tiles take the vector body, the short
/// tail of a run takes the same vector kernel with masked loads/stores
/// over its live lanes (masked-off lanes read +0.0 and are never
/// written), so every cell runs the identical per-lane operation
/// sequence.
///
/// Tiles never span two runs and a slice of tile indices never splits a
/// tile, so when the overlap runner slices tiles across pool lanes every
/// cell takes the same code path (full vs masked tail is a property of
/// the tile, not of the partition) — which keeps results bit-identical
/// for any rank x thread count, the same argument the run slicing made. Like the plan, a layout depends only on (geometry,
/// x_begin, nx_local); Slab caches one lazily and drops it on migration.

#include <cstdint>
#include <vector>

#include "lbm/simd.hpp"
#include "lbm/types.hpp"

namespace slipflow::lbm {

class StreamingPlan;  // plan.hpp

/// Up to kTileWidth z-consecutive interior cells of one run.
struct Tile {
  index_t cell = 0;        ///< storage index of the first cell
  index_t yz = 0;          ///< in-plane index (y*nz+z) of the first cell
  index_t gx = 0;          ///< global x of the plane (wall patterns)
  std::int32_t count = 0;  ///< cells in the tile, 1..kTileWidth
};

class TileLayout {
 public:
  explicit TileLayout(const StreamingPlan& plan);

  /// Tiles of the fused collide+stream kernel (plan.stream_interior()).
  const std::vector<Tile>& stream_tiles() const { return stream_; }
  /// Tiles of the Shan-Chen force kernel (plan.force_interior()).
  const std::vector<Tile>& force_tiles() const { return force_; }

  /// Tile-index analogue of StreamingPlan::force_interior_inner_*: the
  /// contiguous middle slice of force_tiles() whose psi gathers never
  /// touch a halo plane. Exact because inner markers sit on run
  /// boundaries and tiles never span runs.
  std::size_t force_inner_begin() const { return force_inner_begin_; }
  std::size_t force_inner_end() const { return force_inner_end_; }

  /// Cell totals (== the sums over the corresponding plan runs).
  index_t stream_cells() const { return stream_cells_; }
  index_t force_cells() const { return force_cells_; }

 private:
  std::vector<Tile> stream_, force_;
  std::size_t force_inner_begin_ = 0, force_inner_end_ = 0;
  index_t stream_cells_ = 0, force_cells_ = 0;
};

}  // namespace slipflow::lbm
