#pragma once
/// \file mrt.hpp
/// Multiple-relaxation-time (MRT) collision operator for D3Q19
/// (d'Humieres et al., Phil. Trans. R. Soc. A 360, 2002).
///
/// The BGK operator the paper uses relaxes every kinetic mode at the
/// same rate 1/tau; MRT transforms the populations into 19 orthogonal
/// moments and relaxes each at its own rate, which decouples the shear
/// viscosity (rates s9/s13) from the non-hydrodynamic "ghost" modes.
/// For the microchannel application this buys stability margin for the
/// stiff trace-gas component — the ablation bench
/// (ablation_collision_operator) quantifies it.
///
/// The moment basis is built *from this library's velocity ordering* (the
/// row polynomials of the standard basis evaluated on kCx/kCy/kCz), so it
/// is correct regardless of how the velocities are enumerated. Rows are
/// mutually orthogonal; the inverse transform is M^T D^-1 with
/// D = diag(M M^T).

#include <array>

#include "lbm/lattice.hpp"
#include "lbm/types.hpp"

namespace slipflow::lbm {

/// Per-moment relaxation rates. Density is never relaxed (mass exactly
/// conserved). The momentum rows relax toward n * u_eq at rate s_m; with
/// the Shan-Chen shifted-equilibrium forcing (u_eq = u' + tau F / rho)
/// s_m must equal 1/tau so the collision injects the same momentum as
/// the BGK operator does — for_tau() ties them together.
struct MrtRates {
  double s_e = 1.19;      ///< energy
  double s_eps = 1.4;     ///< energy squared
  double s_q = 1.2;       ///< heat flux
  double s_nu = 1.0;      ///< shear stress — sets viscosity, 1/tau
  double s_pi = 1.4;      ///< 4th order stress
  double s_t = 1.98;      ///< 3rd order ghost modes
  double s_m = 1.0;       ///< momentum (forcing); keep at 1/tau

  /// The standard tuning with the viscosity and forcing modes tied to tau.
  static MrtRates for_tau(double tau) {
    MrtRates r;
    r.s_nu = 1.0 / tau;
    r.s_m = 1.0 / tau;
    return r;
  }

  /// All rates equal to 1/tau — algebraically identical to BGK; used by
  /// the equivalence tests.
  static MrtRates bgk_equivalent(double tau) {
    const double s = 1.0 / tau;
    return MrtRates{s, s, s, s, s, s, s};
  }
};

/// The D3Q19 moment transform. Construction is cheap; a shared static
/// instance is used by the collision kernel.
class MrtOperator {
 public:
  MrtOperator();

  /// Collide one cell: in/out are 19 populations (may alias), n and u
  /// define the equilibrium moments (u is the force-shifted equilibrium
  /// velocity, as in the BGK path).
  void collide_cell(const double* f_in, double* f_out, double n,
                    const Vec3& u, const MrtRates& rates) const;

  /// Moment row r evaluated for direction d (exposed for tests).
  double basis(int row, int dir) const { return m_[row][dir]; }

  /// Row norms squared D_r = sum_d M[r][d]^2 (exposed for tests).
  double row_norm2(int row) const { return norm2_[row]; }

  /// Shared instance.
  static const MrtOperator& instance();

 private:
  std::array<std::array<double, kQ>, kQ> m_;      // moment rows
  std::array<std::array<double, kQ>, kQ> minv_;   // inverse transform
  std::array<double, kQ> norm2_;
};

}  // namespace slipflow::lbm
