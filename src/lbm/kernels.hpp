#pragma once
/// \file kernels.hpp
/// The per-phase compute kernels of the multicomponent lattice Boltzmann
/// method (Section 2.1), each operating on the owned planes of a Slab.
///
/// One LBM phase executes, in order (Figure 2 of the paper):
///   1. collide()                      — local
///   2. f-halo exchange                — communication (Slab::*_f_halo)
///   3. stream()                       — local, includes wall bounce-back
///   4. compute_density()              — local
///   5. density-halo exchange          — communication (Slab::*_density_halo)
///   6. compute_forces_and_velocity()  — local (Shan–Chen + wall + gravity)
/// The equilibrium velocities stored by step 6 feed step 1 of the next
/// phase, exactly as the velocity computed on line 17 of the paper's
/// pseudo-code is used by the collision on line 4 of the next iteration.

#include "lbm/simd.hpp"
#include "lbm/slab.hpp"

namespace slipflow::lbm {

/// Second-order D3Q19 Maxwell–Boltzmann equilibrium for direction d at
/// number density n and velocity u (lattice units).
inline double equilibrium(int d, double n, const Vec3& u) {
  const double cu = kCx[d] * u.x + kCy[d] * u.y + kCz[d] * u.z;
  const double u2 = u.norm2();
  return kWeight[d] * n * (1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * u2);
}

/// BGK collision for every component on the owned planes:
/// f_post = f - (f - f_eq(n, ueq)) / tau, using the number density and
/// equilibrium velocity stored by the previous phase's force step.
void collide(Slab& slab);

/// Pull-streaming of post-collision populations into f, applying the
/// half-way bounce-back rule at the channel walls (and at any interior
/// obstacle). Requires the f-halo planes of f_post to be filled.
void stream(Slab& slab);

/// Recompute each component's number density n = sum_i f_i on the owned
/// planes from the post-streaming populations.
void compute_density(Slab& slab);

/// Compute, on the owned planes: the common velocity u', the per-component
/// forces (Shan–Chen inter-component interaction + hydrophobic wall force
/// + driving body force), the per-component equilibrium velocities
/// ueq = u' + tau F / rho, and the mixture observables (total density and
/// force-corrected macroscopic velocity). Requires density halos filled.
void compute_forces_and_velocity(Slab& slab);

/// Total mass of a component over the owned planes (sum of n times
/// molecular mass) — a conserved quantity used by tests.
double owned_mass(const Slab& slab, std::size_t component);

// --- plan-based kernel path (kernels_plan.cpp) -------------------------
// The same phase, restructured around the slab's StreamingPlan so the hot
// loops are branch-free. The plan path produces bit-identical populations
// to the legacy kernels above (tests/test_plan_kernels.cpp pins this).

/// Collide only the two boundary-adjacent owned planes into f_post — the
/// minimum the f-halo exchange needs before fused_collide_stream re-does
/// collision and streaming in one fused pass.
void collide_boundary_planes(Slab& slab);

/// Fused collide + stream: collide every owned fluid cell once (BGK or
/// MRT) and push its 19 outputs directly to their streaming destinations
/// — interior cells over contiguous plan runs with no conditionals,
/// boundary cells through precomputed link tables (bounce-back and
/// moving-wall corrections resolved at plan build). Finishes by pulling
/// the exchanged halo populations and swapping f_post into f. Requires
/// collide_boundary_planes + the f-halo exchange to have run.
void fused_collide_stream(Slab& slab);

/// Plan-based force/velocity kernel: identical physics and bit-identical
/// results to compute_forces_and_velocity, but the per-component psi
/// field is cached once per step (no per-neighbor exp) and the wall /
/// periodic / obstacle masks come from the plan's neighbor tables.
void compute_forces_and_velocity_plan(Slab& slab);

// --- split plan kernels (kernels_plan.cpp) -----------------------------
// The overlap runner executes the plan kernels in pieces: the
// halo-independent bulk while the exchange is in flight (possibly sliced
// further across pool threads), the halo-dependent remainder after
// wait(). Each f_post slot / density cell / force cell is still written
// exactly once per phase by exactly one piece, so any partition —
// including a threaded one — is bit-identical to the fused calls above.

/// Collide+stream the slices [run_begin, run_end) of
/// plan.stream_interior() and [cell_begin, cell_end) of
/// plan.stream_boundary(). Reads only owned f/n/ueq; writes only the
/// f_post slots those cells' pushes and links own, so disjoint slices
/// may run concurrently. No halo data is touched: every stream cell
/// (boundary ones included) is halo-independent — the exchanged planes
/// enter only through fused_collide_stream_finish's pulls.
void fused_collide_stream_range(Slab& slab, std::size_t run_begin,
                                std::size_t run_end, std::size_t cell_begin,
                                std::size_t cell_end);

/// Complete streaming once the f-halo landed: copy the plan's halo pulls,
/// swap f_post into f and pin solid cells. fused_collide_stream ==
/// full-range fused_collide_stream_range + this.
void fused_collide_stream_finish(Slab& slab);

/// Density of the owned planes [plane_begin, plane_end) (1-based local
/// plane numbers, end exclusive), element-for-element the same update as
/// compute_density — which equals planes [1, nx_local+1).
void compute_density_planes(Slab& slab, index_t plane_begin,
                            index_t plane_end);

/// Per-component psi pointers for the ranged force kernel. For the
/// paper's psi = n they alias the density storage; for the exponential
/// form `scratch` caches 1 - exp(-n) per storage cell.
struct ForcePsiCache {
  std::array<const double*, 8> psi{};
  std::vector<std::vector<double>> scratch;
};

/// Bind `cache` to the slab and (for the exponential form) fill scratch
/// for storage cells [cell_begin, cell_end). Call with reset = true once
/// per phase to (re)size for the current slab — then the owned range as
/// soon as densities exist, and the two halo planes (reset = false)
/// after the density halo was inserted.
void force_psi_prepare(Slab& slab, ForcePsiCache& cache, index_t cell_begin,
                       index_t cell_end, bool reset);

/// Force/velocity for the slices [run_begin, run_end) of
/// plan.force_interior() and [cell_begin, cell_end) of
/// plan.force_boundary(). Each cell writes only its own ueq / total
/// density / velocity entries, so disjoint slices may run concurrently.
/// The caller guarantees every psi value the slice gathers is ready
/// (inner-plane slices need owned psi only; edge-plane slices need the
/// halo planes too — see StreamingPlan::force_*_inner_*).
void compute_forces_plan_range(Slab& slab, const ForcePsiCache& cache,
                               std::size_t run_begin, std::size_t run_end,
                               std::size_t cell_begin, std::size_t cell_end);

// --- tile/SIMD kernel path (kernels_tile*.cpp) -------------------------
// The plan's interior runs re-chopped into vector-width tiles
// (Slab::tiles()) and swept by unit-stride vector kernels; which ISA
// executes is picked by KernelBackend (simd.hpp). The dispatching
// wrappers above (fused_collide_stream, compute_density_planes,
// compute_forces_and_velocity_plan) route interior work here whenever
// active_kernel_backend() != scalar; boundary cells, halo pulls and MRT
// components always take the per-cell plan path, so the tile ranges
// below cover interior tiles only.

/// Collide+stream the tiles [tile_begin, tile_end) of
/// slab.tiles().stream_tiles(). Same write set as the corresponding
/// interior runs of fused_collide_stream_range — disjoint tile slices
/// may run concurrently. Requires backend != scalar (and supported).
void fused_collide_stream_tiles(Slab& slab, KernelBackend backend,
                                std::size_t tile_begin, std::size_t tile_end);

/// Force/velocity for the tiles [tile_begin, tile_end) of
/// slab.tiles().force_tiles(); the tile analogue of the interior-run part
/// of compute_forces_plan_range, with the same psi-readiness contract
/// (use TileLayout::force_inner_* to stay off the halo planes).
void compute_forces_tiles(Slab& slab, const ForcePsiCache& cache,
                          KernelBackend backend, std::size_t tile_begin,
                          std::size_t tile_end);

/// Density of storage cells [first, first + count) on a tile backend —
/// bit-identical to the scalar kernel (pure additions, same order).
void compute_density_cells(Slab& slab, KernelBackend backend, index_t first,
                           index_t count);

}  // namespace slipflow::lbm
