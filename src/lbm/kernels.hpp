#pragma once
/// \file kernels.hpp
/// The per-phase compute kernels of the multicomponent lattice Boltzmann
/// method (Section 2.1), each operating on the owned planes of a Slab.
///
/// One LBM phase executes, in order (Figure 2 of the paper):
///   1. collide()                      — local
///   2. f-halo exchange                — communication (Slab::*_f_halo)
///   3. stream()                       — local, includes wall bounce-back
///   4. compute_density()              — local
///   5. density-halo exchange          — communication (Slab::*_density_halo)
///   6. compute_forces_and_velocity()  — local (Shan–Chen + wall + gravity)
/// The equilibrium velocities stored by step 6 feed step 1 of the next
/// phase, exactly as the velocity computed on line 17 of the paper's
/// pseudo-code is used by the collision on line 4 of the next iteration.

#include "lbm/slab.hpp"

namespace slipflow::lbm {

/// Second-order D3Q19 Maxwell–Boltzmann equilibrium for direction d at
/// number density n and velocity u (lattice units).
inline double equilibrium(int d, double n, const Vec3& u) {
  const double cu = kCx[d] * u.x + kCy[d] * u.y + kCz[d] * u.z;
  const double u2 = u.norm2();
  return kWeight[d] * n * (1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * u2);
}

/// BGK collision for every component on the owned planes:
/// f_post = f - (f - f_eq(n, ueq)) / tau, using the number density and
/// equilibrium velocity stored by the previous phase's force step.
void collide(Slab& slab);

/// Pull-streaming of post-collision populations into f, applying the
/// half-way bounce-back rule at the channel walls (and at any interior
/// obstacle). Requires the f-halo planes of f_post to be filled.
void stream(Slab& slab);

/// Recompute each component's number density n = sum_i f_i on the owned
/// planes from the post-streaming populations.
void compute_density(Slab& slab);

/// Compute, on the owned planes: the common velocity u', the per-component
/// forces (Shan–Chen inter-component interaction + hydrophobic wall force
/// + driving body force), the per-component equilibrium velocities
/// ueq = u' + tau F / rho, and the mixture observables (total density and
/// force-corrected macroscopic velocity). Requires density halos filled.
void compute_forces_and_velocity(Slab& slab);

/// Total mass of a component over the owned planes (sum of n times
/// molecular mass) — a conserved quantity used by tests.
double owned_mass(const Slab& slab, std::size_t component);

// --- plan-based kernel path (kernels_plan.cpp) -------------------------
// The same phase, restructured around the slab's StreamingPlan so the hot
// loops are branch-free. The plan path produces bit-identical populations
// to the legacy kernels above (tests/test_plan_kernels.cpp pins this).

/// Collide only the two boundary-adjacent owned planes into f_post — the
/// minimum the f-halo exchange needs before fused_collide_stream re-does
/// collision and streaming in one fused pass.
void collide_boundary_planes(Slab& slab);

/// Fused collide + stream: collide every owned fluid cell once (BGK or
/// MRT) and push its 19 outputs directly to their streaming destinations
/// — interior cells over contiguous plan runs with no conditionals,
/// boundary cells through precomputed link tables (bounce-back and
/// moving-wall corrections resolved at plan build). Finishes by pulling
/// the exchanged halo populations and swapping f_post into f. Requires
/// collide_boundary_planes + the f-halo exchange to have run.
void fused_collide_stream(Slab& slab);

/// Plan-based force/velocity kernel: identical physics and bit-identical
/// results to compute_forces_and_velocity, but the per-component psi
/// field is cached once per step (no per-neighbor exp) and the wall /
/// periodic / obstacle masks come from the plan's neighbor tables.
void compute_forces_and_velocity_plan(Slab& slab);

}  // namespace slipflow::lbm
