#include "lbm/geometry.hpp"

#include <cmath>

namespace slipflow::lbm {

ChannelGeometry::ChannelGeometry(
    Extents global, std::function<bool(index_t, index_t, index_t)> obstacle,
    bool walls_y, bool walls_z)
    : global_(global), walls_y_(walls_y), walls_z_(walls_z) {
  SLIPFLOW_REQUIRE(global.nx > 0 && global.ny > 0 && global.nz > 0);
  if (obstacle) {
    has_obstacles_ = true;
    obstacle_mask_.resize(static_cast<std::size_t>(global.cells()));
    for (index_t x = 0; x < global.nx; ++x)
      for (index_t y = 0; y < global.ny; ++y)
        for (index_t z = 0; z < global.nz; ++z)
          obstacle_mask_[static_cast<std::size_t>(
              (x * global.ny + y) * global.nz + z)] =
              obstacle(x, y, z) ? 1 : 0;
  }
}

void ChannelGeometry::set_wall_velocity(Wall wall, const Vec3& u) {
  const bool is_y = wall == Wall::y_low || wall == Wall::y_high;
  SLIPFLOW_REQUIRE_MSG(is_y ? walls_y_ : walls_z_,
                       "cannot move a wall in a periodic direction");
  // only tangential motion is meaningful for bounce-back walls
  SLIPFLOW_REQUIRE_MSG(is_y ? u.y == 0.0 : u.z == 0.0,
                       "wall velocity must be tangential");
  wall_u_[static_cast<std::size_t>(wall)] = u;
  moving_walls_ = false;
  for (const Vec3& w : wall_u_)
    if (w.norm2() > 0.0) moving_walls_ = true;
}

Vec3 ChannelGeometry::wall_unit_accel(index_t y, index_t z,
                                      double decay) const {
  SLIPFLOW_REQUIRE(decay > 0.0);
  Vec3 a;
  if (walls_y_) {
    const double dy_lo = static_cast<double>(y) + 0.5;
    const double dy_hi = static_cast<double>(global_.ny - 1 - y) + 0.5;
    a.y = std::exp(-dy_lo / decay) - std::exp(-dy_hi / decay);
  }
  if (walls_z_) {
    const double dz_lo = static_cast<double>(z) + 0.5;
    const double dz_hi = static_cast<double>(global_.nz - 1 - z) + 0.5;
    a.z = std::exp(-dz_lo / decay) - std::exp(-dz_hi / decay);
  }
  return a;
}

}  // namespace slipflow::lbm
