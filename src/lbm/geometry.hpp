#pragma once
/// \file geometry.hpp
/// Microchannel geometry (Figure 5 of the paper): a box that is periodic
/// along the streamwise x direction and bounded by solid walls at the y
/// (side) and z (top/bottom) extents, plus the precomputed hydrophobic
/// wall-force direction field.

#include <functional>
#include <limits>
#include <vector>

#include "lbm/types.hpp"
#include "util/require.hpp"

namespace slipflow::lbm {

/// Channel geometry over the *global* domain. Slabs query it with global
/// coordinates, so decomposition does not change the physics.
///
/// The y and z extents are walled by default (the paper's channel); either
/// can be made periodic instead, which turns the box into an infinite slit
/// — the configuration the Poiseuille validation problems need.
class ChannelGeometry {
 public:
  /// \param global   full domain extents (x always periodic)
  /// \param obstacle optional predicate marking extra solid cells inside
  ///                 the channel (global coordinates); nullptr = plain box.
  /// \param walls_y  solid side walls at the y extents (else periodic)
  /// \param walls_z  solid top/bottom walls at the z extents (else periodic)
  explicit ChannelGeometry(
      Extents global,
      std::function<bool(index_t, index_t, index_t)> obstacle = {},
      bool walls_y = true, bool walls_z = true);

  const Extents& global() const { return global_; }

  bool walls_y() const { return walls_y_; }
  bool walls_z() const { return walls_z_; }

  /// True if the site is solid: outside a walled y/z fluid range or an
  /// obstacle. Periodic coordinates are wrapped first.
  bool solid(index_t gx, index_t gy, index_t gz) const {
    if (walls_y_ && (gy < 0 || gy >= global_.ny)) return true;
    if (walls_z_ && (gz < 0 || gz >= global_.nz)) return true;
    if (!has_obstacles_) return false;
    const index_t x = wrap_x(gx);
    const index_t y = wrap(gy, global_.ny);
    const index_t z = wrap(gz, global_.nz);
    return obstacle_mask_[static_cast<std::size_t>(
        (x * global_.ny + y) * global_.nz + z)];
  }

  bool has_obstacles() const { return has_obstacles_; }

  /// Periodic wrap of a global x coordinate into [0, nx).
  index_t wrap_x(index_t gx) const { return wrap(gx, global_.nx); }

  static index_t wrap(index_t v, index_t n) {
    index_t r = v % n;
    return r < 0 ? r + n : r;
  }

  /// Distance (lattice units) from the cell center of row y to the nearest
  /// side wall. With half-way bounce-back the wall surface sits half a
  /// spacing outside the first fluid node, so row j is at distance j + 1/2.
  /// Infinite when that direction is periodic.
  double wall_distance_y(index_t y) const {
    if (!walls_y_) return std::numeric_limits<double>::infinity();
    const double lo = static_cast<double>(y) + 0.5;
    const double hi = static_cast<double>(global_.ny - 1 - y) + 0.5;
    return lo < hi ? lo : hi;
  }
  double wall_distance_z(index_t z) const {
    if (!walls_z_) return std::numeric_limits<double>::infinity();
    const double lo = static_cast<double>(z) + 0.5;
    const double hi = static_cast<double>(global_.nz - 1 - z) + 0.5;
    return lo < hi ? lo : hi;
  }

  /// Unit-amplitude hydrophobic wall acceleration at (y,z): the sum of an
  /// exponentially decaying push from each of the four walls, each along
  /// its inward normal (Section 2: "forces decay exponentially away from
  /// the wall"). Multiply by a component's wall_accel amplitude to get the
  /// acceleration it feels.
  Vec3 wall_unit_accel(index_t y, index_t z, double decay) const;

  /// The four channel walls, for boundary-condition configuration.
  enum class Wall { y_low, y_high, z_low, z_high };

  /// Set a wall's tangential velocity (moving-wall bounce-back; used by
  /// the Couette validation problems and shear-driven extensions). The
  /// wall must exist (that direction not periodic); the velocity
  /// component normal to the wall must be zero.
  void set_wall_velocity(Wall wall, const Vec3& u);

  /// Velocity of a wall (zero by default).
  const Vec3& wall_velocity(Wall wall) const {
    return wall_u_[static_cast<std::size_t>(wall)];
  }

  /// True if any wall moves — lets the streaming kernel keep its fast
  /// path when all walls are at rest.
  bool has_moving_walls() const { return moving_walls_; }

 private:
  Extents global_;
  bool has_obstacles_ = false;
  bool walls_y_ = true;
  bool walls_z_ = true;
  bool moving_walls_ = false;
  std::array<Vec3, 4> wall_u_{};
  std::vector<char> obstacle_mask_;  // only filled when an obstacle fn given
};

}  // namespace slipflow::lbm
