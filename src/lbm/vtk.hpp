#pragma once
/// \file vtk.hpp
/// Legacy-ASCII VTK output of the simulation fields (structured points),
/// loadable by ParaView/VisIt for the kind of flow visualization the
/// paper's Figures 6-7 are drawn from.

#include <string>

#include "lbm/slab.hpp"

namespace slipflow::lbm {

/// Write the slab's *owned* region as a STRUCTURED_POINTS dataset:
/// one scalar field per component number density, the total mass density,
/// and the mixture velocity vector field. The dataset origin encodes the
/// slab's global x offset so per-rank files tile the domain.
void write_vtk(const Slab& slab, const std::string& path,
               const std::string& title = "slipflow fields");

}  // namespace slipflow::lbm
