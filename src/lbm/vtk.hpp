#pragma once
/// \file vtk.hpp
/// Legacy-ASCII VTK output of the simulation fields (structured points),
/// loadable by ParaView/VisIt for the kind of flow visualization the
/// paper's Figures 6-7 are drawn from.

#include <string>

#include "lbm/slab.hpp"

namespace slipflow::lbm {

/// Render the slab's *owned* region as a STRUCTURED_POINTS dataset:
/// one scalar field per component number density, the total mass density,
/// and the mixture velocity vector field. The dataset origin encodes the
/// slab's global x offset so per-rank files tile the domain. Returning
/// the bytes (rather than streaming to disk) is what lets the async
/// writer ship a snapshot off-thread while the timestep continues.
std::string vtk_to_string(const Slab& slab,
                          const std::string& title = "slipflow fields");

/// vtk_to_string + write the bytes to `path` (synchronous).
void write_vtk(const Slab& slab, const std::string& path,
               const std::string& title = "slipflow fields");

}  // namespace slipflow::lbm
