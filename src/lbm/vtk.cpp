#include "lbm/vtk.hpp"

#include <fstream>
#include <limits>
#include <sstream>

namespace slipflow::lbm {

std::string vtk_to_string(const Slab& slab, const std::string& title) {
  std::ostringstream out;
  out.precision(std::numeric_limits<double>::max_digits10);

  const Extents& st = slab.storage();
  const index_t nx = slab.nx_local(), ny = st.ny, nz = st.nz;

  out << "# vtk DataFile Version 3.0\n"
      << title << "\n"
      << "ASCII\n"
      << "DATASET STRUCTURED_POINTS\n"
      << "DIMENSIONS " << nx << ' ' << ny << ' ' << nz << "\n"
      << "ORIGIN " << slab.x_begin() << " 0 0\n"
      << "SPACING 1 1 1\n"
      << "POINT_DATA " << nx * ny * nz << "\n";

  // VTK structured points order: x fastest, then y, then z.
  auto for_each_cell = [&](auto&& emit) {
    for (index_t z = 0; z < nz; ++z)
      for (index_t y = 0; y < ny; ++y)
        for (index_t lx = 1; lx <= nx; ++lx) emit(st.idx(lx, y, z));
  };

  for (std::size_t c = 0; c < slab.num_components(); ++c) {
    out << "SCALARS density_" << slab.params().components[c].name
        << " double 1\nLOOKUP_TABLE default\n";
    for_each_cell([&](index_t cell) { out << slab.density(c)[cell] << "\n"; });
  }

  out << "SCALARS density_total double 1\nLOOKUP_TABLE default\n";
  for_each_cell(
      [&](index_t cell) { out << slab.total_density()[cell] << "\n"; });

  out << "VECTORS velocity double\n";
  for_each_cell([&](index_t cell) {
    const Vec3 u = slab.velocity().at(cell);
    out << u.x << ' ' << u.y << ' ' << u.z << "\n";
  });

  return std::move(out).str();
}

void write_vtk(const Slab& slab, const std::string& path,
               const std::string& title) {
  const std::string bytes = vtk_to_string(slab, title);
  std::ofstream out(path);
  SLIPFLOW_REQUIRE_MSG(out.good(), "cannot open " << path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  SLIPFLOW_REQUIRE_MSG(out.good(), "short write to " << path);
}

}  // namespace slipflow::lbm
