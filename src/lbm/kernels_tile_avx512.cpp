/// \file kernels_tile_avx512.cpp
/// AVX-512F instantiation of the tile kernels (8 doubles per register —
/// exactly one kTileWidth tile per vector iteration). Compiled with
/// `-mavx512f -ffp-contract=off`; see kernels_tile_avx2.cpp for the
/// isolation and no-FMA rationale.

#include <cmath>
#include <cstdint>

#include "lbm/kernels_tile.hpp"

#if defined(SLIPFLOW_HAVE_AVX512)
#include <immintrin.h>

// GCC 12's avx512fintrin.h trips -Wmaybe-uninitialized inside its own
// _mm512_maskz_loadu_pd expansion (the masked-off lanes, which maskz
// zeroes by definition) — a header false positive, not our code.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace slipflow::lbm::tilek {
namespace {

struct VAvx512 {
  static constexpr std::int64_t kW = 8;
  __m512d v;

  static VAvx512 loadu(const double* p) { return {_mm512_loadu_pd(p)}; }
  static void storeu(double* p, VAvx512 a) { _mm512_storeu_pd(p, a.v); }
  static VAvx512 set1(double x) { return {_mm512_set1_pd(x)}; }
  static VAvx512 zero() { return {_mm512_setzero_pd()}; }
  static VAvx512 add(VAvx512 a, VAvx512 b) { return {_mm512_add_pd(a.v, b.v)}; }
  static VAvx512 sub(VAvx512 a, VAvx512 b) { return {_mm512_sub_pd(a.v, b.v)}; }
  static VAvx512 mul(VAvx512 a, VAvx512 b) { return {_mm512_mul_pd(a.v, b.v)}; }
  static VAvx512 div(VAvx512 a, VAvx512 b) { return {_mm512_div_pd(a.v, b.v)}; }
  static VAvx512 select_gt(VAvx512 a, VAvx512 b, VAvx512 val) {
    const __mmask8 m = _mm512_cmp_pd_mask(a.v, b.v, _CMP_GT_OQ);
    return {_mm512_maskz_mov_pd(m, val.v)};
  }
  static VAvx512 blend_gt(VAvx512 a, VAvx512 b, VAvx512 t, VAvx512 f) {
    // lane: a > b ? t : f
    const __mmask8 m = _mm512_cmp_pd_mask(a.v, b.v, _CMP_GT_OQ);
    return {_mm512_mask_blend_pd(m, f.v, t.v)};
  }
  static VAvx512 neg(VAvx512 a) {
    // exact sign flip via integer xor (AVX512F has no xor_pd; DQ does)
    const __m512i sign = _mm512_set1_epi64(static_cast<long long>(1ULL << 63));
    return {_mm512_castsi512_pd(
        _mm512_xor_si512(_mm512_castpd_si512(a.v), sign))};
  }
  static VAvx512 sqrt(VAvx512 a) { return {_mm512_sqrt_pd(a.v)}; }

  // Masked tail ops: lanes < n load/store, the rest read as +0.0 and are
  // never written (masked lanes cannot fault, so tails at the end of an
  // array stay in bounds).
  static __mmask8 mask_n(int n) {
    return static_cast<__mmask8>((1u << n) - 1u);
  }
  static VAvx512 loadu_n(const double* p, int n) {
    return {_mm512_maskz_loadu_pd(mask_n(n), p)};
  }
  static void storeu_n(double* p, VAvx512 a, int n) {
    _mm512_mask_storeu_pd(p, mask_n(n), a.v);
  }
};

#include "lbm/kernels_tile.inl"

}  // namespace

const Backend* tile_backend_avx512() {
  static constexpr Backend b{&stream_tiles_impl<VAvx512>,
                             &forces_tiles_impl<VAvx512>,
                             &density_impl<VAvx512>};
  return &b;
}

}  // namespace slipflow::lbm::tilek

#endif  // SLIPFLOW_HAVE_AVX512
