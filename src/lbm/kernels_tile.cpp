/// \file kernels_tile.cpp
/// Dispatcher of the tile/SIMD kernel path: binds Slab state into the
/// plain-pointer contexts of kernels_tile.hpp and forwards tile ranges
/// to the backend picked by KernelBackend. Also hosts the pieces that
/// stay scalar inside the tile path — MRT components (the moment-space
/// collision is not worth vectorizing at D3Q19 sizes) sweep the same
/// tiles cell by cell so coverage is identical either way.

#include "lbm/kernels.hpp"
#include "lbm/kernels_tile.hpp"
#include "lbm/mrt.hpp"
#include "lbm/plan.hpp"
#include "lbm/tile.hpp"

namespace slipflow::lbm {

namespace {

const tilek::Backend* tile_backend(KernelBackend b) {
  switch (b) {
    case KernelBackend::scalar:
      return nullptr;
    case KernelBackend::autovec:
      return tilek::tile_backend_autovec();
    case KernelBackend::avx2:
      return tilek::tile_backend_avx2();
    case KernelBackend::avx512:
      return tilek::tile_backend_avx512();
  }
  return nullptr;
}

/// Scalar MRT collide+push over tiles [tb, te) — the same per-cell body
/// fused_collide_stream_range runs over interior runs.
void mrt_stream_tiles(Slab& slab, std::size_t c, std::size_t tb,
                      std::size_t te) {
  const StreamingPlan& plan = slab.plan();
  const std::vector<Tile>& tiles = slab.tiles().stream_tiles();
  index_t off[kQ];
  for (int d = 0; d < kQ; ++d) off[d] = plan.dir_offset(d);

  const ComponentParams& cp = slab.params().components[c];
  const ScalarField& n = slab.density(c);
  const VectorField& ueq = slab.ueq(c);
  const DistField& f = slab.f(c);
  DistField& fp = slab.f_post(c);
  const MrtOperator& op = MrtOperator::instance();
  const MrtRates rates = MrtRates::for_tau(cp.tau);
  double fin[kQ], fout[kQ];
  for (std::size_t t = tb; t < te; ++t) {
    const Tile& tile = tiles[t];
    for (std::int32_t i = 0; i < tile.count; ++i) {
      const index_t cell = tile.cell + i;
      for (int d = 0; d < kQ; ++d) fin[d] = f.at(d, cell);
      op.collide_cell(fin, fout, n[cell], ueq.at(cell), rates);
      fp.at(0, cell) = fout[0];
      for (int d = 1; d < kQ; ++d) fp.at(d, cell + off[d]) = fout[d];
    }
  }
}

double eval_wall_pattern(const void* state, std::int64_t gx, std::int64_t y,
                         std::int64_t z) {
  const auto& fn =
      *static_cast<const std::function<double(index_t, index_t, index_t)>*>(
          state);
  return fn(gx, y, z);
}

}  // namespace

void fused_collide_stream_tiles(Slab& slab, KernelBackend backend,
                                std::size_t tile_begin, std::size_t tile_end) {
  const tilek::Backend* k = tile_backend(backend);
  SLIPFLOW_REQUIRE_MSG(k != nullptr,
                       "fused_collide_stream_tiles needs a tile backend");
  const StreamingPlan& plan = slab.plan();
  const std::vector<Tile>& tiles = slab.tiles().stream_tiles();
  SLIPFLOW_REQUIRE(tile_begin <= tile_end && tile_end <= tiles.size());

  for (std::size_t c = 0; c < slab.num_components(); ++c) {
    const ComponentParams& cp = slab.params().components[c];
    if (cp.collision == CollisionModel::mrt) {
      mrt_stream_tiles(slab, c, tile_begin, tile_end);
      continue;
    }
    tilek::StreamCtx ctx{};
    ctx.tiles = tiles.data();
    for (int d = 0; d < kQ; ++d) {
      ctx.f[d] = slab.f(c).dir(d).data();
      ctx.fp[d] = slab.f_post(c).dir(d).data();
      ctx.off[d] = plan.dir_offset(d);
    }
    ctx.n = slab.density(c).data().data();
    ctx.ux = slab.ueq(c).x().data().data();
    ctx.uy = slab.ueq(c).y().data().data();
    ctx.uz = slab.ueq(c).z().data().data();
    ctx.inv_tau = 1.0 / cp.tau;
    k->stream(ctx, tile_begin, tile_end);
  }
}

void compute_forces_tiles(Slab& slab, const ForcePsiCache& cache,
                          KernelBackend backend, std::size_t tile_begin,
                          std::size_t tile_end) {
  const tilek::Backend* k = tile_backend(backend);
  SLIPFLOW_REQUIRE_MSG(k != nullptr,
                       "compute_forces_tiles needs a tile backend");
  const StreamingPlan& plan = slab.plan();
  const std::vector<Tile>& tiles = slab.tiles().force_tiles();
  SLIPFLOW_REQUIRE(tile_begin <= tile_end && tile_end <= tiles.size());
  const FluidParams& prm = slab.params();
  const std::size_t nc = slab.num_components();
  SLIPFLOW_REQUIRE(nc <= tilek::kMaxComp);

  tilek::ForceCtx ctx{};
  ctx.tiles = tiles.data();
  ctx.ncomp = static_cast<int>(nc);
  for (int d = 0; d < kQ; ++d) ctx.off[d] = plan.dir_offset(d);
  ctx.nz = slab.storage().nz;
  for (std::size_t c = 0; c < nc; ++c) {
    const ComponentParams& cp = prm.components[c];
    ctx.psi[c] = cache.psi[c];
    ctx.n[c] = slab.density(c).data().data();
    for (int d = 0; d < kQ; ++d) ctx.f[c][d] = slab.f(c).dir(d).data();
    ctx.ueq_x[c] = slab.ueq(c).x().data().data();
    ctx.ueq_y[c] = slab.ueq(c).y().data().data();
    ctx.ueq_z[c] = slab.ueq(c).z().data().data();
    ctx.mass[c] = cp.molecular_mass;
    ctx.tau[c] = cp.tau;
    ctx.wall_accel[c] = cp.wall_accel;
    for (std::size_t c2 = 0; c2 < nc; ++c2) ctx.g[c][c2] = prm.g(c, c2);
  }
  ctx.rho_tot = slab.total_density().data().data();
  ctx.u_x = slab.velocity().x().data().data();
  ctx.u_y = slab.velocity().y().data().data();
  ctx.u_z = slab.velocity().z().data().data();
  ctx.wall_unit = &slab.wall_accel_unit(0);
  ctx.gravity_x = prm.gravity_x;
  ctx.max_force_shift = prm.max_force_shift;
  if (prm.wall_pattern) {
    ctx.pattern = &eval_wall_pattern;
    ctx.pattern_state = &prm.wall_pattern;
  }
  k->forces(ctx, tile_begin, tile_end);
}

void compute_density_cells(Slab& slab, KernelBackend backend, index_t first,
                           index_t count) {
  const tilek::Backend* k = tile_backend(backend);
  SLIPFLOW_REQUIRE_MSG(k != nullptr,
                       "compute_density_cells needs a tile backend");
  for (std::size_t c = 0; c < slab.num_components(); ++c) {
    tilek::DensityCtx ctx{};
    for (int d = 0; d < kQ; ++d) ctx.f[d] = slab.f(c).dir(d).data();
    ctx.n = slab.density(c).data().data();
    k->density(ctx, first, count);
  }
}

// Fallback stubs for backends whose translation unit is not in this
// build (the CMake gates and these #if guards always agree).
#if !defined(SLIPFLOW_HAVE_AVX2)
namespace tilek {
const Backend* tile_backend_avx2() { return nullptr; }
}  // namespace tilek
#endif
#if !defined(SLIPFLOW_HAVE_AVX512)
namespace tilek {
const Backend* tile_backend_avx512() { return nullptr; }
}  // namespace tilek
#endif

}  // namespace slipflow::lbm
