#include "lbm/observables.hpp"

#include <algorithm>

namespace slipflow::lbm {

namespace {
index_t owned_local_x(const Slab& slab, index_t gx) {
  SLIPFLOW_REQUIRE_MSG(gx >= slab.x_begin() && gx < slab.x_end(),
                       "slab does not own plane " << gx);
  return slab.local_x(gx);
}
}  // namespace

std::vector<double> density_profile_y(const Slab& slab, std::size_t component,
                                      index_t gx, index_t z) {
  const index_t lx = owned_local_x(slab, gx);
  const Extents& st = slab.storage();
  SLIPFLOW_REQUIRE(z >= 0 && z < st.nz);
  std::vector<double> out(static_cast<std::size_t>(st.ny));
  for (index_t y = 0; y < st.ny; ++y)
    out[static_cast<std::size_t>(y)] =
        slab.density(component)[st.idx(lx, y, z)];
  return out;
}

std::vector<double> velocity_profile_y(const Slab& slab, index_t gx,
                                       index_t z) {
  const index_t lx = owned_local_x(slab, gx);
  const Extents& st = slab.storage();
  SLIPFLOW_REQUIRE(z >= 0 && z < st.nz);
  std::vector<double> out(static_cast<std::size_t>(st.ny));
  for (index_t y = 0; y < st.ny; ++y)
    out[static_cast<std::size_t>(y)] =
        slab.velocity().x()[st.idx(lx, y, z)];
  return out;
}

std::vector<double> velocity_profile_z(const Slab& slab, index_t gx,
                                       index_t y) {
  const index_t lx = owned_local_x(slab, gx);
  const Extents& st = slab.storage();
  SLIPFLOW_REQUIRE(y >= 0 && y < st.ny);
  std::vector<double> out(static_cast<std::size_t>(st.nz));
  for (index_t z = 0; z < st.nz; ++z)
    out[static_cast<std::size_t>(z)] =
        slab.velocity().x()[st.idx(lx, y, z)];
  return out;
}

SlipMeasurement measure_slip(const std::vector<double>& ux) {
  SLIPFLOW_REQUIRE(ux.size() >= 4);
  SlipMeasurement m;
  m.u_center = *std::max_element(ux.begin(), ux.end());
  m.u_wall_node = ux.front();
  // nodes sit at distances 0.5 and 1.5 from the wall surface, so the
  // surface value is u0 + (u0 - u1)/2.
  m.u_wall = 1.5 * ux[0] - 0.5 * ux[1];
  m.slip_fraction = m.u_center != 0.0 ? m.u_wall / m.u_center : 0.0;
  return m;
}

double navier_slip_length(const std::vector<double>& ux) {
  SLIPFLOW_REQUIRE(ux.size() >= 4);
  const SlipMeasurement m = measure_slip(ux);
  const double slope = ux[1] - ux[0];  // du/dy over one lattice spacing
  if (slope == 0.0) return 0.0;
  return m.u_wall / slope;
}

double owned_momentum_x(const Slab& slab) {
  const Extents& st = slab.storage();
  const index_t first = st.plane_cells();
  const index_t count = slab.nx_local() * st.plane_cells();
  double p = 0.0;
  for (index_t i = 0; i < count; ++i)
    p += slab.total_density()[first + i] * slab.velocity().x()[first + i];
  return p;
}

double plane_mass(const Slab& slab, std::size_t component, index_t gx) {
  const index_t lx = owned_local_x(slab, gx);
  double m = 0.0;
  for (double v : slab.density(component).plane(lx)) m += v;
  return m;
}

}  // namespace slipflow::lbm
