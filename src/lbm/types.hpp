#pragma once
/// \file types.hpp
/// Basic geometric types for the lattice Boltzmann module.
///
/// Conventions used throughout slipflow (matching the paper's Figure 5):
///  - x is the streamwise (flow) direction; it is periodic and it is the
///    direction the domain is decomposed along (1-D slice decomposition).
///  - y spans the channel *width* (side walls at the y extents).
///  - z spans the channel *depth* (top/bottom walls at the z extents).
///  - cell (x,y,z) is linearized x-major so a yz-plane (fixed x) is
///    contiguous; planes are the unit of halo exchange and of lattice-point
///    migration.

#include <array>
#include <cstddef>
#include <cstdint>

#include "util/require.hpp"

namespace slipflow::lbm {

/// Index type for lattice coordinates and linear cell indices.
using index_t = std::int64_t;

/// A small 3-vector of doubles (velocity, force, ...).
struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  friend Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend Vec3 operator*(double s, const Vec3& v) {
    return {s * v.x, s * v.y, s * v.z};
  }
  friend double dot(const Vec3& a, const Vec3& b) {
    return a.x * b.x + a.y * b.y + a.z * b.z;
  }
  double norm2() const { return x * x + y * y + z * z; }
};

/// Dimensions of a 3-D lattice box.
struct Extents {
  index_t nx = 0, ny = 0, nz = 0;

  index_t cells() const { return nx * ny * nz; }
  /// Number of cells in one yz-plane (the migration / halo unit).
  index_t plane_cells() const { return ny * nz; }

  /// Linear index of cell (x,y,z); x-major so fixed-x planes are contiguous.
  index_t idx(index_t x, index_t y, index_t z) const {
    return (x * ny + y) * nz + z;
  }

  bool operator==(const Extents&) const = default;
};

}  // namespace slipflow::lbm
