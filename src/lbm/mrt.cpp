#include "lbm/mrt.hpp"

#include "lbm/kernels.hpp"
#include "util/require.hpp"

namespace slipflow::lbm {

namespace {

/// The d'Humieres moment polynomials evaluated on a velocity (cx,cy,cz).
double moment_polynomial(int row, int cx, int cy, int cz) {
  const int c2 = cx * cx + cy * cy + cz * cz;
  switch (row) {
    case 0: return 1.0;                                     // density
    case 1: return 19.0 * c2 - 30.0;                        // energy
    case 2: return 0.5 * (21.0 * c2 * c2 - 53.0 * c2 + 24); // energy^2
    case 3: return cx;                                      // momentum x
    case 4: return (5.0 * c2 - 9.0) * cx;                   // heat flux x
    case 5: return cy;
    case 6: return (5.0 * c2 - 9.0) * cy;
    case 7: return cz;
    case 8: return (5.0 * c2 - 9.0) * cz;
    case 9: return 3.0 * cx * cx - c2;                      // 3 p_xx
    case 10: return (3.0 * c2 - 5.0) * (3.0 * cx * cx - c2);
    case 11: return cy * cy - cz * cz;                      // p_ww
    case 12: return (3.0 * c2 - 5.0) * (cy * cy - cz * cz);
    case 13: return cx * cy;                                // p_xy
    case 14: return cy * cz;
    case 15: return cx * cz;
    case 16: return (cy * cy - cz * cz) * cx;               // ghost t_x
    case 17: return (cz * cz - cx * cx) * cy;
    case 18: return (cx * cx - cy * cy) * cz;
    default: SLIPFLOW_REQUIRE(false); return 0.0;
  }
}

/// Which MrtRates member applies to each moment row. Density (row 0) is
/// never relaxed; momentum rows (3, 5, 7) use s_m so the equilibrium-
/// velocity forcing injects exactly the BGK momentum.
std::array<double, kQ> rate_vector(const MrtRates& r) {
  return {0.0,    r.s_e, r.s_eps, r.s_m,  r.s_q, r.s_m,  r.s_q,
          r.s_m,  r.s_q, r.s_nu,  r.s_pi, r.s_nu, r.s_pi, r.s_nu,
          r.s_nu, r.s_nu, r.s_t,  r.s_t,  r.s_t};
}

}  // namespace

MrtOperator::MrtOperator() {
  for (int r = 0; r < kQ; ++r) {
    norm2_[r] = 0.0;
    for (int d = 0; d < kQ; ++d) {
      m_[r][d] = moment_polynomial(r, kCx[d], kCy[d], kCz[d]);
      norm2_[r] += m_[r][d] * m_[r][d];
    }
    SLIPFLOW_REQUIRE(norm2_[r] > 0.0);
  }
  // rows are mutually orthogonal, so M^-1 = M^T diag(1/norm2)
  for (int d = 0; d < kQ; ++d)
    for (int r = 0; r < kQ; ++r) minv_[d][r] = m_[r][d] / norm2_[r];
}

const MrtOperator& MrtOperator::instance() {
  static const MrtOperator op;
  return op;
}

void MrtOperator::collide_cell(const double* f_in, double* f_out, double n,
                               const Vec3& u, const MrtRates& rates) const {
  // Equilibrium moments are taken as M * f_eq(n, u), which makes the
  // operator agree with BGK exactly when every rate equals 1/tau (the
  // equivalence the tests assert); the stability gain comes purely from
  // relaxing the non-hydrodynamic rows at their own rates.
  double feq[kQ];
  for (int d = 0; d < kQ; ++d) feq[d] = equilibrium(d, n, u);

  const std::array<double, kQ> s = rate_vector(rates);
  double m[kQ];
  for (int r = 0; r < kQ; ++r) {
    double mr = 0.0, me = 0.0;
    for (int d = 0; d < kQ; ++d) {
      mr += m_[r][d] * f_in[d];
      me += m_[r][d] * feq[d];
    }
    m[r] = mr - s[r] * (mr - me);
  }
  for (int d = 0; d < kQ; ++d) {
    double fd = 0.0;
    for (int r = 0; r < kQ; ++r) fd += minv_[d][r] * m[r];
    f_out[d] = fd;
  }
}

}  // namespace slipflow::lbm
