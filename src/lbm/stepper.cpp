#include "lbm/stepper.hpp"

namespace slipflow::lbm {

void PeriodicSelfExchanger::exchange_f(Slab& slab) {
  SLIPFLOW_REQUIRE_MSG(slab.nx_local() == slab.geometry().global().nx,
                       "PeriodicSelfExchanger needs a full-domain slab");
  buf_.resize(static_cast<std::size_t>(slab.f_halo_doubles()));
  // right boundary populations wrap to the left halo ...
  slab.extract_f_halo(Side::right, buf_);
  slab.insert_f_halo(Side::left, buf_);
  // ... and left boundary populations to the right halo.
  slab.extract_f_halo(Side::left, buf_);
  slab.insert_f_halo(Side::right, buf_);
}

void PeriodicSelfExchanger::exchange_density(Slab& slab) {
  SLIPFLOW_REQUIRE_MSG(slab.nx_local() == slab.geometry().global().nx,
                       "PeriodicSelfExchanger needs a full-domain slab");
  buf_.resize(static_cast<std::size_t>(slab.density_halo_doubles()));
  slab.extract_density_halo(Side::right, buf_);
  slab.insert_density_halo(Side::left, buf_);
  slab.extract_density_halo(Side::left, buf_);
  slab.insert_density_halo(Side::right, buf_);
}

void prime(Slab& slab, HaloExchanger& halo) {
  halo.exchange_density(slab);
  compute_forces_and_velocity(slab);
}

void step_phase(Slab& slab, HaloExchanger& halo, KernelPath path) {
  if (path == KernelPath::plan) {
    // Only the two exchange-facing planes need pre-colliding; the fused
    // kernel re-collides them on the fly while pushing.
    collide_boundary_planes(slab);
    halo.exchange_f(slab);
    fused_collide_stream(slab);
    compute_density(slab);
    halo.exchange_density(slab);
    compute_forces_and_velocity_plan(slab);
    return;
  }
  collide(slab);
  halo.exchange_f(slab);
  stream(slab);
  compute_density(slab);
  halo.exchange_density(slab);
  compute_forces_and_velocity(slab);
}

}  // namespace slipflow::lbm
