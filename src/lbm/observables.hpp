#pragma once
/// \file observables.hpp
/// Measurement helpers for the physics figures: density and velocity
/// profiles across the channel width (Figures 6 and 7) and the apparent
/// slip extracted from them.

#include <vector>

#include "lbm/slab.hpp"

namespace slipflow::lbm {

/// Number density of one component along y at fixed global x and z.
/// The slab must own plane gx.
std::vector<double> density_profile_y(const Slab& slab, std::size_t component,
                                      index_t gx, index_t z);

/// Streamwise velocity u_x along y at fixed global x and z.
std::vector<double> velocity_profile_y(const Slab& slab, index_t gx,
                                       index_t z);

/// Streamwise velocity u_x along z at fixed global x and y.
std::vector<double> velocity_profile_z(const Slab& slab, index_t gx,
                                       index_t y);

/// Apparent-slip quantities extracted from a cross-channel velocity
/// profile, following the paper's Figure 7 presentation: everything is
/// normalized by the centerline (free-stream) velocity u0.
struct SlipMeasurement {
  double u_center = 0.0;      ///< centerline streamwise velocity u0
  double u_wall_node = 0.0;   ///< velocity at the wall-adjacent node
  double u_wall = 0.0;        ///< linear extrapolation to the wall surface
  double slip_fraction = 0.0; ///< u_wall / u_center — the paper's "% slip"
};

/// Extract slip from a profile whose samples sit at half-way node
/// positions (node j at distance j + 1/2 from the wall). Needs >= 4
/// samples; the centerline value is the profile maximum.
SlipMeasurement measure_slip(const std::vector<double>& ux_profile);

/// Navier slip length b (lattice units) from the same profile:
/// u_wall = b * (du/dn)|wall, the standard microfluidics slip metric the
/// experimental literature the paper builds on reports (e.g. ~1 um for
/// Tretheway & Meinhart). Uses the wall-extrapolated velocity and the
/// near-wall velocity gradient; returns 0 for a no-slip profile and can
/// be slightly negative for a sticking one.
double navier_slip_length(const std::vector<double>& ux_profile);

/// Total x-momentum of the mixture over the slab's owned cells
/// (sum of rho * u_x); used by conservation tests.
double owned_momentum_x(const Slab& slab);

/// Sum of a component's number density over one yz-plane (owned) —
/// handy invariant for migration tests.
double plane_mass(const Slab& slab, std::size_t component, index_t gx);

}  // namespace slipflow::lbm
