#pragma once
/// \file lattice.hpp
/// The D3Q19 velocity set (Figure 1 of the paper) and derived constant
/// tables: quadrature weights, opposite directions for bounce-back, and
/// the direction groups whose populations cross slab boundaries during
/// the halo exchange of the parallel code (Section 2.2).

#include <array>
#include <cstddef>

namespace slipflow::lbm {

/// Number of discrete velocities in the D3Q19 model.
inline constexpr int kQ = 19;

/// Lattice speed of sound squared (lattice units).
inline constexpr double kCs2 = 1.0 / 3.0;

/// Discrete velocity components. Index 0 is the rest particle, 1..6 are
/// the axis directions, 7..18 the face diagonals.
inline constexpr std::array<int, kQ> kCx = {
    0, 1, -1, 0, 0, 0, 0, 1, 1, 1, 1, -1, -1, -1, -1, 0, 0, 0, 0};
inline constexpr std::array<int, kQ> kCy = {
    0, 0, 0, 1, -1, 0, 0, 1, -1, 0, 0, 1, -1, 0, 0, 1, 1, -1, -1};
inline constexpr std::array<int, kQ> kCz = {
    0, 0, 0, 0, 0, 1, -1, 0, 0, 1, -1, 0, 0, 1, -1, 1, -1, 1, -1};

/// Quadrature weights: 1/3 for rest, 1/18 on the axes, 1/36 on diagonals.
inline constexpr std::array<double, kQ> kWeight = {
    1.0 / 3.0,  1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0,
    1.0 / 18.0, 1.0 / 18.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0,
    1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0,
    1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0};

namespace detail {
constexpr std::array<int, kQ> make_opposites() {
  std::array<int, kQ> opp{};
  for (int i = 0; i < kQ; ++i) {
    for (int j = 0; j < kQ; ++j) {
      if (kCx[j] == -kCx[i] && kCy[j] == -kCy[i] && kCz[j] == -kCz[i]) {
        opp[i] = j;
        break;
      }
    }
  }
  return opp;
}

constexpr int count_with_cx(int cx) {
  int n = 0;
  for (int i = 0; i < kQ; ++i)
    if (kCx[i] == cx) ++n;
  return n;
}

template <int N>
constexpr std::array<int, N> dirs_with_cx(int cx) {
  std::array<int, N> out{};
  int n = 0;
  for (int i = 0; i < kQ; ++i)
    if (kCx[i] == cx) out[n++] = i;
  return out;
}
}  // namespace detail

/// opposite(i) reverses the velocity: c[opposite(i)] == -c[i]. Used by the
/// half-way bounce-back rule at the channel walls.
inline constexpr std::array<int, kQ> kOpposite = detail::make_opposites();

/// Number of directions with positive / negative x-component (5 each in
/// D3Q19). These populations cross slab boundaries and must be exchanged
/// with the right / left neighbor every phase (Section 2.2 of the paper).
inline constexpr int kXDirCount = detail::count_with_cx(1);
static_assert(kXDirCount == 5);

/// Directions moving toward +x (sent to the right neighbor).
inline constexpr std::array<int, kXDirCount> kRightGoing =
    detail::dirs_with_cx<kXDirCount>(1);
/// Directions moving toward -x (sent to the left neighbor).
inline constexpr std::array<int, kXDirCount> kLeftGoing =
    detail::dirs_with_cx<kXDirCount>(-1);

}  // namespace slipflow::lbm
