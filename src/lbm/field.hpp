#pragma once
/// \file field.hpp
/// Owning field containers for slab-local lattice data.
///
/// All fields are sized for the slab's *storage* box, i.e. the owned
/// x-planes plus one halo plane on each side. The distribution field is
/// stored direction-major (19 contiguous scalar fields) because both the
/// pull-streaming kernel and halo-plane extraction then operate on
/// contiguous runs.
///
/// All storage is 64-byte aligned (util/aligned.hpp) and the distribution
/// field pads each direction's array to a kTileWidth multiple, so every
/// direction starts on its own cache line — what the tile/SIMD kernels
/// want under the hood. The padding cells are never addressed by any
/// kernel (dir() spans expose the unpadded cell count).

#include <span>
#include <vector>

#include "lbm/lattice.hpp"
#include "lbm/simd.hpp"
#include "lbm/types.hpp"
#include "util/aligned.hpp"
#include "util/require.hpp"

namespace slipflow::lbm {

/// A scalar value per cell (e.g. a component's number density).
class ScalarField {
 public:
  ScalarField() = default;
  explicit ScalarField(Extents e, double fill = 0.0)
      : ext_(e), data_(static_cast<std::size_t>(e.cells()), fill) {}

  const Extents& extents() const { return ext_; }

  double& operator[](index_t cell) { return data_[static_cast<std::size_t>(cell)]; }
  double operator[](index_t cell) const { return data_[static_cast<std::size_t>(cell)]; }

  double& at(index_t x, index_t y, index_t z) { return (*this)[ext_.idx(x, y, z)]; }
  double at(index_t x, index_t y, index_t z) const { return (*this)[ext_.idx(x, y, z)]; }

  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  /// Contiguous view of one yz-plane (fixed x).
  std::span<double> plane(index_t x) {
    return std::span<double>(data_).subspan(
        static_cast<std::size_t>(x * ext_.plane_cells()),
        static_cast<std::size_t>(ext_.plane_cells()));
  }
  std::span<const double> plane(index_t x) const {
    return std::span<const double>(data_).subspan(
        static_cast<std::size_t>(x * ext_.plane_cells()),
        static_cast<std::size_t>(ext_.plane_cells()));
  }

  void fill(double v) { data_.assign(data_.size(), v); }

 private:
  Extents ext_{};
  util::AlignedDoubles data_;
};

/// A 3-vector per cell, stored as three scalar planes (SoA).
class VectorField {
 public:
  VectorField() = default;
  explicit VectorField(Extents e) : x_(e), y_(e), z_(e) {}

  const Extents& extents() const { return x_.extents(); }

  ScalarField& x() { return x_; }
  ScalarField& y() { return y_; }
  ScalarField& z() { return z_; }
  const ScalarField& x() const { return x_; }
  const ScalarField& y() const { return y_; }
  const ScalarField& z() const { return z_; }

  Vec3 at(index_t cell) const { return {x_[cell], y_[cell], z_[cell]}; }
  void set(index_t cell, const Vec3& v) {
    x_[cell] = v.x;
    y_[cell] = v.y;
    z_[cell] = v.z;
  }

 private:
  ScalarField x_, y_, z_;
};

/// The 19 particle populations of one fluid component, direction-major.
class DistField {
 public:
  DistField() = default;
  explicit DistField(Extents e)
      : ext_(e),
        stride_(util::round_up(static_cast<std::size_t>(e.cells()),
                               static_cast<std::size_t>(kTileWidth))),
        data_(static_cast<std::size_t>(kQ) * stride_) {}

  const Extents& extents() const { return ext_; }

  /// Contiguous scalar field of direction d. Directions sit `stride_`
  /// doubles apart (cells rounded up to the tile width) but the span
  /// exposes exactly cells() entries — the pad is dead storage.
  std::span<double> dir(int d) {
    return std::span<double>(data_).subspan(
        static_cast<std::size_t>(d) * stride_,
        static_cast<std::size_t>(ext_.cells()));
  }
  std::span<const double> dir(int d) const {
    return std::span<const double>(data_).subspan(
        static_cast<std::size_t>(d) * stride_,
        static_cast<std::size_t>(ext_.cells()));
  }

  double& at(int d, index_t cell) { return dir(d)[static_cast<std::size_t>(cell)]; }
  double at(int d, index_t cell) const { return dir(d)[static_cast<std::size_t>(cell)]; }

  /// Contiguous view of direction d restricted to one yz-plane (fixed x).
  std::span<double> dir_plane(int d, index_t x) {
    return dir(d).subspan(static_cast<std::size_t>(x * ext_.plane_cells()),
                          static_cast<std::size_t>(ext_.plane_cells()));
  }
  std::span<const double> dir_plane(int d, index_t x) const {
    return dir(d).subspan(static_cast<std::size_t>(x * ext_.plane_cells()),
                          static_cast<std::size_t>(ext_.plane_cells()));
  }

  void fill(double v) { data_.assign(data_.size(), v); }

  void swap(DistField& o) {
    std::swap(ext_, o.ext_);
    std::swap(stride_, o.stride_);
    data_.swap(o.data_);
  }

 private:
  Extents ext_{};
  std::size_t stride_ = 0;
  util::AlignedDoubles data_;
};

}  // namespace slipflow::lbm
