#pragma once
/// \file kernels_tile.hpp
/// Internal ABI between the tile-kernel dispatcher (kernels_tile.cpp)
/// and the per-ISA translation units (kernels_tile_{autovec,avx2,
/// avx512}.cpp).
///
/// The per-ISA TUs are compiled with their own -m flags, so they must
/// not instantiate code shared with the portable TUs: an inline function
/// from a common header compiled with AVX-512 enabled could be
/// COMDAT-merged over its portable twin and crash older CPUs. Hence this
/// header carries only plain-pointer context structs (bound from Slab by
/// the dispatcher) plus the tiny headers of constants it needs — the
/// per-ISA TUs include nothing else of the project.

#include <cstddef>
#include <cstdint>

#include "lbm/lattice.hpp"
#include "lbm/tile.hpp"
#include "lbm/types.hpp"

namespace slipflow::lbm::tilek {

/// Mirrors the SLIPFLOW_REQUIRE(nc <= 8) of the force kernels.
inline constexpr int kMaxComp = 8;

/// Densities below this are treated as vacuum when dividing by rho —
/// must equal the kTinyDensity of kernels.cpp / kernels_plan.cpp.
inline constexpr double kTinyDensity = 1e-12;

/// One component's fused collide+stream over stream tiles (BGK only;
/// the dispatcher keeps MRT components on the scalar per-cell path).
struct StreamCtx {
  const Tile* tiles = nullptr;
  const double* f[kQ];  ///< pre-collision populations, direction-major
  double* fp[kQ];       ///< post-streaming destination arrays
  const double* n = nullptr;
  const double* ux = nullptr;  ///< ueq, SoA components
  const double* uy = nullptr;
  const double* uz = nullptr;
  double inv_tau = 0.0;
  std::int64_t off[kQ];  ///< storage offset direction d's push lands at
};

/// The Shan-Chen force/velocity pass over force tiles, all components.
struct ForceCtx {
  const Tile* tiles = nullptr;
  int ncomp = 0;
  std::int64_t off[kQ];
  std::int64_t nz = 0;  ///< yz = y*nz + z decode for wall patterns
  const double* psi[kMaxComp];
  const double* n[kMaxComp];
  const double* f[kMaxComp][kQ];
  double* ueq_x[kMaxComp];
  double* ueq_y[kMaxComp];
  double* ueq_z[kMaxComp];
  double* rho_tot = nullptr;
  double* u_x = nullptr;
  double* u_y = nullptr;
  double* u_z = nullptr;
  const Vec3* wall_unit = nullptr;  ///< unit wall acceleration per yz
  double mass[kMaxComp];
  double tau[kMaxComp];
  double wall_accel[kMaxComp];
  double g[kMaxComp][kMaxComp];
  double gravity_x = 0.0;
  double max_force_shift = 0.0;
  /// Patterned-wall hook, evaluated per lane (nullptr = no pattern).
  double (*pattern)(const void* state, std::int64_t gx, std::int64_t y,
                    std::int64_t z) = nullptr;
  const void* pattern_state = nullptr;
};

/// One component's density n = sum_d f_d over a contiguous cell range.
struct DensityCtx {
  const double* f[kQ];
  double* n = nullptr;
};

/// Entry points one ISA instantiation exports.
struct Backend {
  void (*stream)(const StreamCtx&, std::size_t tile_begin,
                 std::size_t tile_end);
  void (*forces)(const ForceCtx&, std::size_t tile_begin,
                 std::size_t tile_end);
  void (*density)(const DensityCtx&, std::int64_t first, std::int64_t count);
};

const Backend* tile_backend_autovec();
const Backend* tile_backend_avx2();    ///< nullptr when not compiled in
const Backend* tile_backend_avx512();  ///< nullptr when not compiled in

}  // namespace slipflow::lbm::tilek
