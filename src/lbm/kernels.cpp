#include "lbm/kernels.hpp"

#include <cmath>

#include "lbm/mrt.hpp"

namespace slipflow::lbm {

namespace {
/// Densities below this are treated as vacuum when dividing by rho.
constexpr double kTinyDensity = 1e-12;
}  // namespace

void collide(Slab& slab) {
  const Extents& st = slab.storage();
  const index_t first = st.plane_cells();                       // plane lx=1
  const index_t last = (slab.nx_local() + 1) * st.plane_cells();  // one past
  for (std::size_t c = 0; c < slab.num_components(); ++c) {
    const ComponentParams& cp = slab.params().components[c];
    const ScalarField& n = slab.density(c);
    const VectorField& ueq = slab.ueq(c);
    const DistField& f = slab.f(c);
    DistField& fp = slab.f_post(c);

    if (cp.collision == CollisionModel::mrt) {
      const MrtOperator& op = MrtOperator::instance();
      const MrtRates rates = MrtRates::for_tau(cp.tau);
      double fin[kQ], fout[kQ];
      for (index_t cell = first; cell < last; ++cell) {
        for (int d = 0; d < kQ; ++d) fin[d] = f.at(d, cell);
        op.collide_cell(fin, fout, n[cell], ueq.at(cell), rates);
        for (int d = 0; d < kQ; ++d) fp.at(d, cell) = fout[d];
      }
      continue;
    }

    const double inv_tau = 1.0 / cp.tau;
    for (index_t cell = first; cell < last; ++cell) {
      const double nc = n[cell];
      const Vec3 u = ueq.at(cell);
      const double u2 = u.norm2();
      for (int d = 0; d < kQ; ++d) {
        const double cu = kCx[d] * u.x + kCy[d] * u.y + kCz[d] * u.z;
        const double feq =
            kWeight[d] * nc * (1.0 + 3.0 * cu + 4.5 * cu * cu - 1.5 * u2);
        const double fold = f.at(d, cell);
        fp.at(d, cell) = fold - (fold - feq) * inv_tau;
      }
    }
  }
}

void stream(Slab& slab) {
  const Extents& st = slab.storage();
  const ChannelGeometry& geom = slab.geometry();
  const bool obstacles = geom.has_obstacles();
  const bool moving = geom.has_moving_walls();
  const bool wy = geom.walls_y();
  const bool wz = geom.walls_z();
  using Wall = ChannelGeometry::Wall;
  for (std::size_t c = 0; c < slab.num_components(); ++c) {
    const DistField& fp = slab.f_post(c);
    const ScalarField& nc = slab.density(c);
    DistField& f = slab.f(c);
    for (index_t lx = 1; lx <= slab.nx_local(); ++lx) {
      const index_t gx = slab.x_begin() + lx - 1;
      for (index_t y = 0; y < st.ny; ++y) {
        for (index_t z = 0; z < st.nz; ++z) {
          const index_t cell = st.idx(lx, y, z);
          if (obstacles && geom.solid(gx, y, z)) {
            // populations inside solids are irrelevant; keep them finite
            for (int d = 0; d < kQ; ++d) f.at(d, cell) = 0.0;
            continue;
          }
          for (int d = 0; d < kQ; ++d) {
            index_t sy = y - kCy[d];
            index_t sz = z - kCz[d];
            bool wall = false;
            Vec3 uw{};  // velocity of the wall(s) crossed, if any
            if (sy < 0 || sy >= st.ny) {
              if (wy) {
                wall = true;
                if (moving)
                  uw += geom.wall_velocity(sy < 0 ? Wall::y_low
                                                  : Wall::y_high);
              } else {
                sy = (sy + st.ny) % st.ny;
              }
            }
            if (sz < 0 || sz >= st.nz) {
              if (wz) {
                wall = true;
                if (moving)
                  uw += geom.wall_velocity(sz < 0 ? Wall::z_low
                                                  : Wall::z_high);
              } else {
                sz = (sz + st.nz) % st.nz;
              }
            }
            if (!wall && obstacles && geom.solid(gx - kCx[d], sy, sz))
              wall = true;
            if (wall) {
              // half-way bounce-back: the population that would have come
              // out of the wall is the one we sent into it, reversed; a
              // moving wall adds the standard momentum correction
              // 2 w_d n (c_d . u_w) / c_s^2 (Ladd 1994).
              double bb = fp.at(kOpposite[d], cell);
              if (moving && (uw.x != 0.0 || uw.y != 0.0 || uw.z != 0.0)) {
                const double cu =
                    kCx[d] * uw.x + kCy[d] * uw.y + kCz[d] * uw.z;
                bb += 2.0 * kWeight[d] * nc[cell] * cu / kCs2;
              }
              f.at(d, cell) = bb;
            } else {
              f.at(d, cell) = fp.at(d, st.idx(lx - kCx[d], sy, sz));
            }
          }
        }
      }
    }
  }
}

void compute_density(Slab& slab) {
  compute_density_planes(slab, 1, slab.nx_local() + 1);
}

void compute_density_planes(Slab& slab, index_t plane_begin,
                            index_t plane_end) {
  SLIPFLOW_REQUIRE(plane_begin >= 1 && plane_end <= slab.nx_local() + 1 &&
                   plane_begin <= plane_end);
  const Extents& st = slab.storage();
  const index_t first = plane_begin * st.plane_cells();
  const index_t count = (plane_end - plane_begin) * st.plane_cells();
  const KernelBackend bk = active_kernel_backend();
  if (bk != KernelBackend::scalar) {
    // Pure additions in the same order — bit-identical to the loop below
    // under any flags, just wider.
    compute_density_cells(slab, bk, first, count);
    return;
  }
  for (std::size_t c = 0; c < slab.num_components(); ++c) {
    const DistField& f = slab.f(c);
    ScalarField& n = slab.density(c);
    std::span<double> nd = n.data().subspan(static_cast<std::size_t>(first),
                                            static_cast<std::size_t>(count));
    std::span<const double> f0 =
        f.dir(0).subspan(static_cast<std::size_t>(first),
                         static_cast<std::size_t>(count));
    for (index_t i = 0; i < count; ++i) nd[i] = f0[i];
    for (int d = 1; d < kQ; ++d) {
      std::span<const double> fd =
          f.dir(d).subspan(static_cast<std::size_t>(first),
                           static_cast<std::size_t>(count));
      for (index_t i = 0; i < count; ++i) nd[i] += fd[i];
    }
  }
}

void compute_forces_and_velocity(Slab& slab) {
  const Extents& st = slab.storage();
  const ChannelGeometry& geom = slab.geometry();
  const FluidParams& prm = slab.params();
  const std::size_t nc = slab.num_components();
  const bool obstacles = geom.has_obstacles();
  const bool wy = geom.walls_y();
  const bool wz = geom.walls_z();
  const bool patterned = static_cast<bool>(prm.wall_pattern);
  // pseudopotential: psi = n for the paper's multicomponent model, or the
  // original Shan-Chen 1 - exp(-n) for liquid-vapor coexistence
  const bool psi_exp = prm.psi_form == PsiForm::shan_chen;
  auto psi_of = [psi_exp](double n_val) {
    return psi_exp ? 1.0 - std::exp(-n_val) : n_val;
  };

  for (index_t lx = 1; lx <= slab.nx_local(); ++lx) {
    const index_t gx = slab.x_begin() + lx - 1;
    for (index_t y = 0; y < st.ny; ++y) {
      for (index_t z = 0; z < st.nz; ++z) {
        const index_t cell = st.idx(lx, y, z);

        // First moments and the common velocity u' (Section 2.1):
        // u' = sum_c (m_c / tau_c) p_c  /  sum_c (m_c / tau_c) n_c.
        // The per-component momentum p_c is kept for the rho_u sum below.
        Vec3 unum{};
        double uden = 0.0;
        Vec3 p[8];
        SLIPFLOW_REQUIRE(nc <= 8);
        for (std::size_t c = 0; c < nc; ++c) {
          const auto& cp = prm.components[c];
          const DistField& f = slab.f(c);
          Vec3 pc{};
          for (int d = 1; d < kQ; ++d) {
            const double fd = f.at(d, cell);
            pc.x += fd * kCx[d];
            pc.y += fd * kCy[d];
            pc.z += fd * kCz[d];
          }
          p[c] = pc;
          const double w = cp.molecular_mass / cp.tau;
          unum += w * pc;
          uden += w * slab.density(c)[cell];
        }
        const Vec3 uprime = uden > kTinyDensity ? (1.0 / uden) * unum : Vec3{};

        // Shan–Chen neighbor sums: grad[c'] = sum_d w_d psi_c'(x+c_d) c_d,
        // with psi = n and psi = 0 inside walls/solids.
        Vec3 grad[8];  // supports up to 8 components; enforced above
        for (std::size_t c2 = 0; c2 < nc; ++c2) {
          Vec3 g{};
          const ScalarField& n2 = slab.density(c2);
          for (int d = 1; d < kQ; ++d) {
            index_t ny2 = y + kCy[d];
            index_t nz2 = z + kCz[d];
            if (ny2 < 0 || ny2 >= st.ny) {
              if (wy) continue;  // psi = 0 inside walls
              ny2 = (ny2 + st.ny) % st.ny;
            }
            if (nz2 < 0 || nz2 >= st.nz) {
              if (wz) continue;
              nz2 = (nz2 + st.nz) % st.nz;
            }
            if (obstacles && geom.solid(gx + kCx[d], ny2, nz2)) continue;
            const double psi = psi_of(n2[st.idx(lx + kCx[d], ny2, nz2)]);
            g.x += kWeight[d] * psi * kCx[d];
            g.y += kWeight[d] * psi * kCy[d];
            g.z += kWeight[d] * psi * kCz[d];
          }
          grad[c2] = g;
        }

        Vec3 wall_a = slab.wall_accel_unit(y, z);
        if (patterned) wall_a = prm.wall_pattern(gx, y, z) * wall_a;
        double rho_tot = 0.0;
        Vec3 rho_u{};
        Vec3 force_sum{};
        for (std::size_t c = 0; c < nc; ++c) {
          const auto& cp = prm.components[c];
          const double ncur = slab.density(c)[cell];
          const double rho = cp.molecular_mass * ncur;

          // interaction force F = -psi_c sum_c' G_{cc'} grad[c']
          Vec3 F{};
          const double psi_c = psi_of(ncur);
          for (std::size_t c2 = 0; c2 < nc; ++c2) {
            const double g = prm.g(c, c2);
            if (g != 0.0) F += (-psi_c * g) * grad[c2];
          }
          // hydrophobic wall force (mass density times wall acceleration)
          F += (rho * cp.wall_accel) * wall_a;
          // streamwise driving force
          F.x += rho * prm.gravity_x;

          // equilibrium velocity u_eq = u' + tau F / rho, with the shift
          // clamped so near-vacuum trace cells cannot blow up
          Vec3 ue = uprime;
          if (rho > kTinyDensity) {
            Vec3 shift = (cp.tau / rho) * F;
            const double s2 = shift.norm2();
            const double smax = prm.max_force_shift;
            if (s2 > smax * smax) shift = (smax / std::sqrt(s2)) * shift;
            ue += shift;
          }
          slab.ueq(c).set(cell, ue);

          rho_tot += rho;
          force_sum += F;
          rho_u += cp.molecular_mass * p[c];
        }

        // mixture observables: rho u = sum_c m_c p_c + (1/2) sum_c F_c
        slab.total_density()[cell] = rho_tot;
        Vec3 u_out{};
        if (rho_tot > kTinyDensity)
          u_out = (1.0 / rho_tot) * (rho_u + 0.5 * force_sum);
        slab.velocity().set(cell, u_out);
      }
    }
  }
}

double owned_mass(const Slab& slab, std::size_t component) {
  const Extents& st = slab.storage();
  const index_t first = st.plane_cells();
  const index_t count = slab.nx_local() * st.plane_cells();
  const ScalarField& n = slab.density(component);
  double m = 0.0;
  for (index_t i = 0; i < count; ++i) m += n[first + i];
  return m * slab.params().components[component].molecular_mass;
}

}  // namespace slipflow::lbm
