#pragma once
/// \file units.hpp
/// Lattice <-> physical unit conversion for the microchannel problem.
///
/// The paper specifies the experiment physically — a 2 x 1 x 0.1 micron
/// channel at 5 nm grid spacing, water at ~1 g/cm^3, a wall force of
/// 5 x 10^-3 dyn/cm^3-scale magnitude with tens-of-nanometer decay — and
/// the LBM runs in lattice units. This module fixes the three base
/// scales (length dx, time dt, mass density rho0) and derives every
/// conversion from them, plus the dimensionless numbers (Reynolds,
/// Knudsen) used to argue LBM validity at micro scale (Section 2).

#include "lbm/types.hpp"
#include "util/require.hpp"

namespace slipflow::lbm {

/// Unit system anchored on grid spacing, time step and reference density.
class UnitSystem {
 public:
  /// \param dx_m      grid spacing in meters (paper: 5e-9)
  /// \param dt_s      time step in seconds
  /// \param rho0_kg_m3 physical density of one lattice mass-density unit
  UnitSystem(double dx_m, double dt_s, double rho0_kg_m3)
      : dx_(dx_m), dt_(dt_s), rho0_(rho0_kg_m3) {
    SLIPFLOW_REQUIRE(dx_m > 0.0 && dt_s > 0.0 && rho0_kg_m3 > 0.0);
  }

  /// Choose dt so a target physical kinematic viscosity maps onto the
  /// lattice viscosity nu_lattice = (tau - 1/2)/3:
  /// nu_phys = nu_lattice dx^2 / dt.
  static UnitSystem from_viscosity(double dx_m, double nu_phys_m2_s,
                                   double tau, double rho0_kg_m3) {
    SLIPFLOW_REQUIRE(nu_phys_m2_s > 0.0);
    SLIPFLOW_REQUIRE(tau > 0.5);
    const double nu_lat = (tau - 0.5) / 3.0;
    return UnitSystem(dx_m, nu_lat * dx_m * dx_m / nu_phys_m2_s,
                      rho0_kg_m3);
  }

  double dx() const { return dx_; }
  double dt() const { return dt_; }
  double rho0() const { return rho0_; }

  // -- lattice -> physical ------------------------------------------------
  double length_m(double lattice) const { return lattice * dx_; }
  double time_s(double lattice) const { return lattice * dt_; }
  double velocity_m_s(double lattice) const { return lattice * dx_ / dt_; }
  double density_kg_m3(double lattice) const { return lattice * rho0_; }
  double kinematic_viscosity_m2_s(double lattice) const {
    return lattice * dx_ * dx_ / dt_;
  }
  /// Acceleration (the wall/body force per unit mass in the model).
  double acceleration_m_s2(double lattice) const {
    return lattice * dx_ / (dt_ * dt_);
  }
  /// Force density (force per unit volume), e.g. dyn/cm^3-style values.
  double force_density_N_m3(double lattice) const {
    return lattice * rho0_ * dx_ / (dt_ * dt_);
  }
  double pressure_Pa(double lattice) const {
    return lattice * rho0_ * (dx_ / dt_) * (dx_ / dt_);
  }

  // -- physical -> lattice ------------------------------------------------
  double to_lattice_length(double meters) const { return meters / dx_; }
  double to_lattice_time(double seconds) const { return seconds / dt_; }
  double to_lattice_velocity(double m_s) const { return m_s * dt_ / dx_; }
  double to_lattice_density(double kg_m3) const { return kg_m3 / rho0_; }
  double to_lattice_acceleration(double m_s2) const {
    return m_s2 * dt_ * dt_ / dx_;
  }

  // -- dimensionless numbers ----------------------------------------------
  /// Reynolds number from lattice-unit velocity/length and tau.
  static double reynolds(double u_lattice, double length_lattice,
                         double tau) {
    SLIPFLOW_REQUIRE(tau > 0.5);
    return u_lattice * length_lattice / ((tau - 0.5) / 3.0);
  }

  /// Knudsen number = mean free path / characteristic length (the paper's
  /// argument for LBM over Navier-Stokes when Kn is not << 1).
  static double knudsen(double mean_free_path_m, double length_m) {
    SLIPFLOW_REQUIRE(mean_free_path_m > 0.0 && length_m > 0.0);
    return mean_free_path_m / length_m;
  }

  /// Mach number in lattice units (stability wants Ma << 1).
  static double mach(double u_lattice) {
    return u_lattice / 0.5773502691896258;  // cs = 1/sqrt(3)
  }

  /// The paper's channel at a chosen cross-channel resolution: 5 nm
  /// spacing at ny = 200; the spacing scales inversely with ny. Water
  /// viscosity 1e-6 m^2/s at tau = 1, density 1000 kg/m^3.
  static UnitSystem paper_channel(index_t ny = 200) {
    const double dx = 1e-6 / static_cast<double>(ny);  // 1 um width / ny
    return from_viscosity(dx, 1e-6, 1.0, 1000.0);
  }

 private:
  double dx_, dt_, rho0_;
};

}  // namespace slipflow::lbm
