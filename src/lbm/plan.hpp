#pragma once
/// \file plan.hpp
/// StreamingPlan — precomputed boundary-link plans for branch-free LBM
/// kernels.
///
/// The geometry of a slab (walls, periodic wraps, obstacles, the slab's
/// own x-extent) never changes between plane migrations, yet the legacy
/// kernels re-evaluate every wall/periodic/obstacle branch per direction
/// per cell per phase. The plan hoists that classification out of the hot
/// loop, the way production LB codes precompute streaming indices:
///
///  * every owned *fluid* cell is classified once as **interior** (all 18
///    moving-direction neighbors are plain fluid cells reachable at a
///    fixed index offset — no wall, no periodic wrap, no obstacle, and
///    for streaming no pull from a halo plane) or **boundary**;
///  * interior cells are stored as contiguous z-runs, so the fused
///    collide+stream kernel and the force kernel sweep them with zero
///    conditionals;
///  * each boundary cell gets a compact link table: for every outgoing
///    post-collision population either the destination (direction, cell)
///    it streams to, a half-way bounce-back entry (destination = the cell
///    itself, reversed direction, with the moving-wall `c · u_wall`
///    precomputed), or a drop (the population crosses the slab boundary
///    and is delivered to the x-neighbor by the halo exchange);
///  * pulls *from* the halo planes (the five x-crossing directions filled
///    by the exchange) are precomputed as plain copies;
///  * for the Shan–Chen force kernel, boundary cells carry an 18-entry
///    neighbor table (storage index, or -1 where psi is zero because the
///    neighbor is a wall or obstacle).
///
/// A plan depends only on (geometry, x_begin, nx_local), so a slab can
/// build it lazily at construction and rebuild it after a plane
/// migration; the rebuild is a single O(owned cells) pass, comparable to
/// one phase of compute, and the runners record it under the `plan` span
/// so it is visible next to the migration cost it belongs to.

#include <cstdint>
#include <vector>

#include "lbm/geometry.hpp"
#include "lbm/lattice.hpp"
#include "lbm/types.hpp"

namespace slipflow::lbm {

/// A contiguous run of interior cells within one (x,y) row.
struct InteriorRun {
  index_t cell = 0;   ///< storage index of the first cell
  index_t count = 0;  ///< cells in the run (z-contiguous)
  index_t yz = 0;     ///< in-plane index (y*nz+z) of the first cell
  index_t gx = 0;     ///< global x of the plane (wall patterns)
};

/// One streaming link of a boundary cell, in push form: the cell's
/// post-collision population leaving along `out_dir` is written to
/// f[dest_dir] at `dest`.
struct StreamLink {
  index_t dest = 0;      ///< destination cell (== the cell itself when bounced)
  double wall_cu = 0.0;  ///< c[dest_dir]·u_wall for the moving-wall correction
  std::int8_t out_dir = 0;
  std::int8_t dest_dir = 0;  ///< == out_dir unless bounced (then kOpposite)
};

/// A boundary cell of the streaming plan with its link-table slice.
struct StreamBoundaryCell {
  index_t cell = 0;
  std::uint32_t link_begin = 0;
  std::uint32_t link_end = 0;
};

/// Copy of one exchanged halo population into the owned plane it streams
/// to (the pull from a halo plane, resolved at build time).
struct HaloPull {
  index_t src = 0;   ///< halo-plane cell
  index_t dest = 0;  ///< owned cell
  std::int8_t dir = 0;
};

/// A boundary cell of the force plan with its neighbor-table slice (18
/// entries starting at nbr_begin; -1 marks a wall/obstacle neighbor).
struct ForceBoundaryCell {
  index_t cell = 0;
  index_t yz = 0;
  index_t gx = 0;
  std::uint32_t nbr_begin = 0;
};

class StreamingPlan {
 public:
  /// Classify every owned cell of the slab [x_begin, x_begin+nx_local)
  /// of `geom`. Storage extents are the owned planes plus one halo plane
  /// per side, exactly as Slab allocates them.
  StreamingPlan(const ChannelGeometry& geom, index_t x_begin,
                index_t nx_local);

  const Extents& storage() const { return store_; }
  index_t x_begin() const { return x_begin_; }
  index_t nx_local() const { return nx_local_; }

  /// Storage-index offset of direction d (the fixed stride interior
  /// cells stream across).
  index_t dir_offset(int d) const { return dir_off_[static_cast<std::size_t>(d)]; }

  // --- streaming plan -------------------------------------------------
  /// Interior cells of the fused collide+stream kernel: every push lands
  /// on an owned fluid cell at the fixed dir_offset (planes 2..nx-1).
  const std::vector<InteriorRun>& stream_interior() const {
    return stream_interior_;
  }
  const std::vector<StreamBoundaryCell>& stream_boundary() const {
    return stream_boundary_;
  }
  const std::vector<StreamLink>& links() const { return links_; }
  const std::vector<HaloPull>& halo_pulls() const { return halo_pulls_; }
  /// Solid (obstacle) cells among the owned planes; their populations are
  /// pinned to zero each step, as the legacy kernel does.
  const std::vector<index_t>& solids() const { return solids_; }

  // --- force plan -----------------------------------------------------
  /// Interior cells of the force kernel: all 18 psi gathers are plain
  /// fluid reads at the fixed dir_offset (any owned plane).
  const std::vector<InteriorRun>& force_interior() const {
    return force_interior_;
  }
  const std::vector<ForceBoundaryCell>& force_boundary() const {
    return force_boundary_;
  }
  /// Flat neighbor table, 18 entries per force-boundary cell (directions
  /// 1..18 in order; -1 = psi is zero there).
  const std::vector<index_t>& force_neighbors() const { return force_nbrs_; }

  /// The force vectors above are appended in lx order, so the cells of
  /// the inner planes lx in [2, nx_local-1] — whose psi gathers never
  /// touch a halo plane — form one contiguous middle slice. The overlap
  /// runner sweeps [inner_begin, inner_end) while the density halo is in
  /// flight and the complement (the prefix up to inner_begin = plane 1,
  /// the suffix from inner_end = plane nx_local) after the halo landed.
  /// Empty when nx_local <= 2 (every plane is an edge plane).
  std::size_t force_interior_inner_begin() const { return fi_inner_begin_; }
  std::size_t force_interior_inner_end() const { return fi_inner_end_; }
  std::size_t force_boundary_inner_begin() const { return fb_inner_begin_; }
  std::size_t force_boundary_inner_end() const { return fb_inner_end_; }

  /// Owned fluid cells (interior + boundary) — the MLUPS denominator.
  index_t fluid_cells() const { return fluid_cells_; }

 private:
  void classify();
  void push_links_for(index_t lx, index_t y, index_t z, index_t gx);

  const ChannelGeometry* geom_;
  Extents store_{};
  index_t x_begin_ = 0;
  index_t nx_local_ = 0;
  std::array<index_t, kQ> dir_off_{};
  index_t fluid_cells_ = 0;

  std::vector<InteriorRun> stream_interior_;
  std::vector<StreamBoundaryCell> stream_boundary_;
  std::vector<StreamLink> links_;
  std::vector<HaloPull> halo_pulls_;
  std::vector<index_t> solids_;

  std::vector<InteriorRun> force_interior_;
  std::vector<ForceBoundaryCell> force_boundary_;
  std::vector<index_t> force_nbrs_;
  std::size_t fi_inner_begin_ = 0, fi_inner_end_ = 0;
  std::size_t fb_inner_begin_ = 0, fb_inner_end_ = 0;
};

}  // namespace slipflow::lbm
