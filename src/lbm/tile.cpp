#include "lbm/tile.hpp"

#include <algorithm>

#include "lbm/plan.hpp"

namespace slipflow::lbm {

namespace {
/// Chop runs [run_begin, run_end) into tiles of at most kTileWidth cells.
void chop_runs(const std::vector<InteriorRun>& runs, std::size_t run_begin,
               std::size_t run_end, std::vector<Tile>& out, index_t& cells) {
  for (std::size_t ri = run_begin; ri < run_end; ++ri) {
    const InteriorRun& r = runs[ri];
    for (index_t i = 0; i < r.count; i += kTileWidth) {
      const index_t n = std::min<index_t>(kTileWidth, r.count - i);
      out.push_back(
          Tile{r.cell + i, r.yz + i, r.gx, static_cast<std::int32_t>(n)});
    }
    cells += r.count;
  }
}
}  // namespace

TileLayout::TileLayout(const StreamingPlan& plan) {
  chop_runs(plan.stream_interior(), 0, plan.stream_interior().size(), stream_,
            stream_cells_);
  // Force tiles keep the plan's lx ordering, so chopping the three run
  // slices (prefix / inner / suffix) in order yields tile-level inner
  // markers that cover exactly the same cells as the run-level ones.
  const auto& fr = plan.force_interior();
  chop_runs(fr, 0, plan.force_interior_inner_begin(), force_, force_cells_);
  force_inner_begin_ = force_.size();
  chop_runs(fr, plan.force_interior_inner_begin(),
            plan.force_interior_inner_end(), force_, force_cells_);
  force_inner_end_ = force_.size();
  chop_runs(fr, plan.force_interior_inner_end(), fr.size(), force_,
            force_cells_);
}

}  // namespace slipflow::lbm
