#pragma once
/// \file simd.hpp
/// KernelBackend — which implementation of the tile kernels the
/// dispatching entry points (fused_collide_stream, the density and force
/// kernels) run.
///
///  * `scalar`  — the StreamingPlan reference path, cell at a time. The
///    correctness baseline every other backend is pinned against.
///  * `autovec` — the portable tile path: plain lane loops over
///    vector-width tiles that any optimizing compiler auto-vectorizes.
///    The only tile path in `-DSLIPFLOW_DISABLE_SIMD=ON` builds and on
///    non-x86 targets.
///  * `avx2` / `avx512` — `<immintrin.h>` instantiations of the same
///    tile kernels, compiled in per-ISA translation units and selected
///    at runtime by CPUID. Written without FMA so their results are
///    bit-identical to the scalar path (see DESIGN.md).
///
/// The active backend is a process-global: the widest supported SIMD
/// backend by default, overridable with set_kernel_backend() (the
/// `--kernel-backend` flag on the worker and the benches). `autovec` is
/// never auto-selected on x86 — it exists as the portable fallback and
/// for A/B runs — so the default is avx512 > avx2 > autovec(non-SIMD
/// builds) > scalar.

#include <optional>
#include <string_view>
#include <vector>

namespace slipflow::lbm {

/// Cells per AoSoA tile: 8 doubles — one AVX-512 register, two AVX2
/// registers, a whole cache line. Also the unit the per-direction field
/// stride is padded to (DistField).
inline constexpr int kTileWidth = 8;

enum class KernelBackend { scalar, autovec, avx2, avx512 };

const char* to_string(KernelBackend b);
/// Inverse of to_string; nullopt for unknown names.
std::optional<KernelBackend> parse_kernel_backend(std::string_view name);

/// Is the backend's code in this binary? scalar/autovec always are; the
/// intrinsic backends are absent under SLIPFLOW_DISABLE_SIMD, on non-x86
/// targets, or when the compiler lacks the -m flags.
bool kernel_backend_compiled(KernelBackend b);
/// kernel_backend_compiled && the CPU executes it (CPUID).
bool kernel_backend_supported(KernelBackend b);
/// Every supported backend, scalar first (test sweeps iterate this).
std::vector<KernelBackend> supported_kernel_backends();
/// The backend a fresh process dispatches to (see file comment).
KernelBackend default_kernel_backend();

/// Process-global backend read by the dispatching kernels each call.
KernelBackend active_kernel_backend();
/// Override the active backend; requires kernel_backend_supported(b).
void set_kernel_backend(KernelBackend b);

}  // namespace slipflow::lbm
