#include "lbm/plan.hpp"

namespace slipflow::lbm {

StreamingPlan::StreamingPlan(const ChannelGeometry& geom, index_t x_begin,
                             index_t nx_local)
    : geom_(&geom), x_begin_(x_begin), nx_local_(nx_local) {
  SLIPFLOW_REQUIRE(nx_local >= 1);
  SLIPFLOW_REQUIRE(x_begin >= 0 && x_begin + nx_local <= geom.global().nx);
  const Extents& g = geom.global();
  store_ = Extents{nx_local + 2, g.ny, g.nz};
  for (int d = 0; d < kQ; ++d)
    dir_off_[static_cast<std::size_t>(d)] =
        (static_cast<index_t>(kCx[d]) * store_.ny +
         static_cast<index_t>(kCy[d])) *
            store_.nz +
        static_cast<index_t>(kCz[d]);
  classify();
}

void StreamingPlan::push_links_for(index_t lx, index_t y, index_t z,
                                   index_t gx) {
  const ChannelGeometry& geom = *geom_;
  const bool obstacles = geom.has_obstacles();
  const bool moving = geom.has_moving_walls();
  const bool wy = geom.walls_y();
  const bool wz = geom.walls_z();
  using Wall = ChannelGeometry::Wall;
  const index_t cell = store_.idx(lx, y, z);
  for (int d = 1; d < kQ; ++d) {
    index_t dy = y + kCy[d];
    index_t dz = z + kCz[d];
    // Same wall-crossing logic (and wall-velocity accumulation order) as
    // the pull form in the legacy stream(): y extent first, then z.
    bool wall = false;
    Vec3 uw{};
    if (dy < 0 || dy >= store_.ny) {
      if (wy) {
        wall = true;
        if (moving)
          uw += geom.wall_velocity(dy < 0 ? Wall::y_low : Wall::y_high);
      } else {
        dy = (dy + store_.ny) % store_.ny;
      }
    }
    if (dz < 0 || dz >= store_.nz) {
      if (wz) {
        wall = true;
        if (moving)
          uw += geom.wall_velocity(dz < 0 ? Wall::z_low : Wall::z_high);
      } else {
        dz = (dz + store_.nz) % store_.nz;
      }
    }
    if (!wall && obstacles && geom.solid(gx + kCx[d], dy, dz)) wall = true;
    if (wall) {
      // The population leaving along d bounces straight back: it becomes
      // this cell's incoming population along kOpposite[d], plus the
      // moving-wall momentum correction evaluated for that pull direction.
      const int dest_dir = kOpposite[d];
      const double wall_cu =
          kCx[dest_dir] * uw.x + kCy[dest_dir] * uw.y + kCz[dest_dir] * uw.z;
      links_.push_back(StreamLink{cell, wall_cu, static_cast<std::int8_t>(d),
                                  static_cast<std::int8_t>(dest_dir)});
      continue;
    }
    const index_t dlx = lx + kCx[d];
    if (dlx < 1 || dlx > nx_local_) continue;  // halo exchange delivers it
    links_.push_back(StreamLink{store_.idx(dlx, dy, dz), 0.0,
                                static_cast<std::int8_t>(d),
                                static_cast<std::int8_t>(d)});
  }
}

void StreamingPlan::classify() {
  const ChannelGeometry& geom = *geom_;
  const bool obstacles = geom.has_obstacles();
  const index_t ny = store_.ny;
  const index_t nz = store_.nz;

  // A cell's 18 moving-direction neighbors are "plain" when every one is
  // an in-range (no wall crossing, no periodic wrap) non-solid site — then
  // both push-streaming and the psi gather reduce to fixed index offsets.
  const auto plain_yz_neighbors = [&](index_t gx, index_t y, index_t z) {
    if (y < 1 || y > ny - 2 || z < 1 || z > nz - 2) return false;
    if (!obstacles) return true;
    for (int d = 1; d < kQ; ++d) {
      if (geom.solid(gx + kCx[d], y + kCy[d], z + kCz[d])) return false;
    }
    return true;
  };

  for (index_t lx = 1; lx <= nx_local_; ++lx) {
    // Inner-slice markers for the overlap runner: planes [2, nx_local-1]
    // only. Both conditions fire at lx==2 when nx_local==2 (empty inner);
    // for nx_local==1 only the end fires, at size 0 (also empty).
    if (lx == 2) {
      fi_inner_begin_ = force_interior_.size();
      fb_inner_begin_ = force_boundary_.size();
    }
    if (lx == nx_local_) {
      fi_inner_end_ = force_interior_.size();
      fb_inner_end_ = force_boundary_.size();
    }
    const index_t gx = x_begin_ + lx - 1;
    for (index_t y = 0; y < ny; ++y) {
      InteriorRun srun{};  // open stream-interior run of this row
      InteriorRun frun{};  // open force-interior run of this row
      for (index_t z = 0; z < nz; ++z) {
        const index_t cell = store_.idx(lx, y, z);
        const index_t yz = y * nz + z;
        const bool solid = obstacles && geom.solid(gx, y, z);
        const bool plain = plain_yz_neighbors(gx, y, z);

        // --- streaming classification (fluid cells only) ---------------
        if (solid) {
          solids_.push_back(cell);
        } else {
          ++fluid_cells_;
          if (plain && lx >= 2 && lx <= nx_local_ - 1) {
            if (srun.count == 0) srun = InteriorRun{cell, 0, yz, gx};
            ++srun.count;
          } else {
            if (srun.count > 0) {
              stream_interior_.push_back(srun);
              srun.count = 0;
            }
            const auto begin = static_cast<std::uint32_t>(links_.size());
            push_links_for(lx, y, z, gx);
            stream_boundary_.push_back(StreamBoundaryCell{
                cell, begin, static_cast<std::uint32_t>(links_.size())});
          }
          // Pulls from the exchanged halo planes (the legacy kernel's
          // reads of f_post at lx=0 / lx=nx_local+1), minus those the
          // bounce-back links above already resolve.
          const bool left_edge = lx == 1;
          const bool right_edge = lx == nx_local_;
          if (left_edge || right_edge) {
            for (int d = 1; d < kQ; ++d) {
              if (kCx[d] == 0) continue;
              const bool from_left = kCx[d] > 0;  // pulls from lx-1
              if (from_left ? !left_edge : !right_edge) continue;
              index_t sy = y - kCy[d];
              index_t sz = z - kCz[d];
              if (sy < 0 || sy >= ny) {
                if (geom.walls_y()) continue;  // bounced, not pulled
                sy = (sy + ny) % ny;
              }
              if (sz < 0 || sz >= nz) {
                if (geom.walls_z()) continue;
                sz = (sz + nz) % nz;
              }
              if (obstacles && geom.solid(gx - kCx[d], sy, sz)) continue;
              const index_t slx = from_left ? 0 : nx_local_ + 1;
              halo_pulls_.push_back(HaloPull{store_.idx(slx, sy, sz), cell,
                                             static_cast<std::int8_t>(d)});
            }
          }
        }

        // --- force classification (all owned cells, matching the legacy
        // kernel which sweeps solids too) --------------------------------
        if (plain) {
          if (frun.count == 0) frun = InteriorRun{cell, 0, yz, gx};
          ++frun.count;
        } else {
          if (frun.count > 0) {
            force_interior_.push_back(frun);
            frun.count = 0;
          }
          const auto begin = static_cast<std::uint32_t>(force_nbrs_.size());
          for (int d = 1; d < kQ; ++d) {
            index_t ny2 = y + kCy[d];
            index_t nz2 = z + kCz[d];
            if (ny2 < 0 || ny2 >= ny) {
              if (geom.walls_y()) {
                force_nbrs_.push_back(-1);
                continue;
              }
              ny2 = (ny2 + ny) % ny;
            }
            if (nz2 < 0 || nz2 >= nz) {
              if (geom.walls_z()) {
                force_nbrs_.push_back(-1);
                continue;
              }
              nz2 = (nz2 + nz) % nz;
            }
            if (obstacles && geom.solid(gx + kCx[d], ny2, nz2)) {
              force_nbrs_.push_back(-1);
              continue;
            }
            force_nbrs_.push_back(store_.idx(lx + kCx[d], ny2, nz2));
          }
          force_boundary_.push_back(ForceBoundaryCell{cell, yz, gx, begin});
        }
      }
      if (srun.count > 0) stream_interior_.push_back(srun);
      if (frun.count > 0) force_interior_.push_back(frun);
    }
  }
}

}  // namespace slipflow::lbm
