#include "cluster/cluster_sim.hpp"

#include <algorithm>
#include <cmath>

namespace slipflow::cluster {

void ClusterConfig::validate() const {
  SLIPFLOW_REQUIRE(nodes >= 1);
  SLIPFLOW_REQUIRE_MSG(planes_total >= nodes,
                       "every node needs at least one plane");
  SLIPFLOW_REQUIRE(plane_cells > 0);
  SLIPFLOW_REQUIRE(cost_per_point > 0.0);
  double frac = 0.0;
  for (double f : stage_fraction) {
    SLIPFLOW_REQUIRE(f > 0.0);
    frac += f;
  }
  SLIPFLOW_REQUIRE_MSG(std::abs(frac - 1.0) < 1e-9,
                       "stage fractions must sum to 1");
  SLIPFLOW_REQUIRE(remap_interval >= 1);
  net.validate();
}

ClusterSim::ClusterSim(ClusterConfig cfg,
                       std::shared_ptr<const balance::RemapPolicy> policy)
    : cfg_(std::move(cfg)), policy_(std::move(policy)) {
  cfg_.validate();
  SLIPFLOW_REQUIRE(policy_ != nullptr);
  nodes_.resize(static_cast<std::size_t>(cfg_.nodes));
}

VirtualNode& ClusterSim::node(int i) {
  SLIPFLOW_REQUIRE(i >= 0 && i < cfg_.nodes);
  return nodes_[static_cast<std::size_t>(i)];
}

void ClusterSim::attach_metrics(obs::MetricsRegistry* metrics) {
  if (metrics != nullptr)
    SLIPFLOW_REQUIRE_MSG(metrics->ranks() >= cfg_.nodes,
                         "metrics registry needs one shard per node");
  metrics_ = metrics;
}

void ClusterSim::span(int node, const char* name, double begin, double end) {
  if (metrics_ != nullptr)
    metrics_->record_span(node, name, begin, end, phase_);
}

void ClusterSim::count(int node, const char* name, double delta) {
  if (metrics_ != nullptr) metrics_->add(node, name, delta);
}

std::vector<long long> ClusterSim::even_planes(long long total, int nodes) {
  SLIPFLOW_REQUIRE(nodes >= 1 && total >= nodes);
  std::vector<long long> planes(static_cast<std::size_t>(nodes),
                                total / nodes);
  for (long long r = 0; r < total % nodes; ++r) planes[static_cast<std::size_t>(r)] += 1;
  return planes;
}

double ClusterSim::sequential_time(int phases) const {
  return static_cast<double>(phases) *
         static_cast<double>(cfg_.total_points()) * cfg_.cost_per_point;
}

void ClusterSim::exchange(std::vector<double>& t, double bytes_per_cell,
                          std::vector<NodeProfile>& prof,
                          std::vector<double>* comm_into,
                          const char* span_name) {
  const int n = cfg_.nodes;
  const double bytes = bytes_per_cell * static_cast<double>(cfg_.plane_cells);
  const std::vector<double> t_in(t);

  // 1. Every node spends CPU packing/posting its boundary messages; on a
  //    loaded node this takes 1/share longer (integrated exactly).
  std::vector<double> send_done(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    send_done[ui] = nodes_[ui].finish_time(t[ui], cfg_.net.msg_cpu);
    const double d = send_done[ui] - t[ui];
    prof[ui].comm += d;
    if (comm_into) (*comm_into)[ui] += d;
    t[ui] = send_done[ui];
  }

  // 2. Each node proceeds once both neighbor messages arrived. Transfer
  //    time is share-scaled at both endpoints; a node that had to *wait*
  //    while loaded additionally pays the scheduler wake-up lag.
  std::vector<double> ready(t);
  for (int i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    double arrive = t[ui];
    for (int j : {i - 1, i + 1}) {
      if (j < 0 || j >= n) continue;
      const auto uj = static_cast<std::size_t>(j);
      const double ss = nodes_[uj].share_at(send_done[uj]);
      const double sr = nodes_[ui].share_at(send_done[uj]);
      const double a = send_done[uj] + cfg_.net.latency +
                       transfer_seconds(cfg_.net, bytes, ss, sr);
      arrive = std::max(arrive, a);
    }
    double done = arrive;
    if (done > t[ui] + 1e-12) {
      const double share = nodes_[ui].share_at(done);
      if (share < 1.0)
        done += cfg_.net.sched_quantum * (1.0 / share - 1.0);
    }
    const double d = done - t[ui];
    prof[ui].comm += d;
    if (comm_into) (*comm_into)[ui] += d;
    ready[ui] = done;
  }
  t = ready;
  for (int i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    span(i, span_name, t_in[ui], t[ui]);
    count(i, "time/comm", t[ui] - t_in[ui]);
    const int neighbors = (i > 0 ? 1 : 0) + (i + 1 < n ? 1 : 0);
    count(i, "halo_bytes", bytes * static_cast<double>(neighbors));
  }
}

void ClusterSim::execute_transfer(int donor, int recv, long long k,
                                  std::vector<double>& t,
                                  std::vector<long long>& planes,
                                  SimResult& res) {
  SLIPFLOW_REQUIRE(k > 0);
  const auto ud = static_cast<std::size_t>(donor);
  const auto ur = static_cast<std::size_t>(recv);
  const double bytes = cfg_.migration_bytes_per_cell *
                       static_cast<double>(cfg_.plane_cells) *
                       static_cast<double>(k);
  const double start = std::max(t[ud], t[ur]);
  const double ss = nodes_[ud].share_at(start);
  const double sr = nodes_[ur].share_at(start);
  const double done =
      start + cfg_.net.latency + transfer_seconds(cfg_.net, bytes, ss, sr);
  res.profile[ud].remap += done - t[ud];
  res.profile[ur].remap += done - t[ur];
  t[ud] = t[ur] = done;
  planes[ud] -= k;
  planes[ur] += k;
  res.profile[ud].planes_sent += k;
  res.profile[ur].planes_received += k;
  res.migration_events += 1;
  res.planes_moved += k;
  count(donor, "planes_sent", static_cast<double>(k));
  count(recv, "planes_received", static_cast<double>(k));
  count(donor, "migration_bytes", bytes);
}

void ClusterSim::remap_local(std::vector<double>& t,
                             std::vector<long long>& planes,
                             std::vector<balance::NodeBalancer>& bal,
                             SimResult& res) {
  const int n = cfg_.nodes;
  const long long pc = cfg_.plane_cells;

  // Load-index + proposal exchange with neighbors (two small round
  // trips): neighbors synchronize on max of their clocks.
  std::vector<double> synced(t);
  for (int i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    double m = t[ui];
    if (i > 0) m = std::max(m, t[static_cast<std::size_t>(i - 1)]);
    if (i + 1 < n) m = std::max(m, t[static_cast<std::size_t>(i + 1)]);
    synced[ui] = m + 2.0 * cfg_.net.latency;
    res.profile[ui].remap += synced[ui] - t[ui];
  }
  t = synced;

  // Decisions from the pre-transfer snapshot (as in the real protocol).
  std::vector<std::optional<balance::NodeLoad>> loads(
      static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    if (bal[ui].ready()) loads[ui] = bal[ui].self_load(planes[ui] * pc);
  }
  std::vector<balance::Proposal> props(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    if (!loads[ui]) continue;
    const auto& left =
        i > 0 ? loads[static_cast<std::size_t>(i - 1)] : std::nullopt;
    const auto& right =
        i + 1 < n ? loads[static_cast<std::size_t>(i + 1)] : std::nullopt;
    props[ui] = bal[ui].decide(left, planes[ui] * pc, right);
  }

  // Conflict resolution and plane-quantized execution per boundary.
  for (int b = 0; b + 1 < n; ++b) {
    const auto ub = static_cast<std::size_t>(b);
    const long long net = balance::resolve_pair(
        props[ub].to_right, props[ub + 1].to_left,
        cfg_.balance.min_transfer_points);
    if (net == 0) continue;
    const int donor = net > 0 ? b : b + 1;
    const long long k = std::llabs(balance::quantize_flow_to_planes(
        net, pc, planes[static_cast<std::size_t>(donor)]));
    if (k == 0) continue;
    execute_transfer(donor, net > 0 ? b + 1 : b, k, t, planes, res);
  }
}

void ClusterSim::remap_global(std::vector<double>& t,
                              std::vector<long long>& planes,
                              std::vector<balance::NodeBalancer>& bal,
                              SimResult& res) {
  const int n = cfg_.nodes;
  const long long pc = cfg_.plane_cells;

  // Allgather of load indexes: every node first spends (share-scaled)
  // CPU contributing, then all synchronize on the slowest, plus a
  // logarithmic latency term for the collective.
  double tmax = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    tmax = std::max(tmax, nodes_[ui].finish_time(t[ui], cfg_.net.msg_cpu));
  }
  const double rounds = n > 1 ? std::ceil(std::log2(static_cast<double>(n))) : 1.0;
  double sync = tmax + 2.0 * rounds * cfg_.net.latency;
  // Group communication is sensitive to loaded nodes (the paper's stated
  // reason global remapping degrades, Section 4.2.3/4.2.4): each tree
  // level of the gather/scatter stalls on the OS wake-up lag of any
  // descheduled node it routes through, and a remap step traverses the
  // tree several times (index gather, decision broadcast, transfer
  // coordination, completion). At most `rounds` levels can stall.
  {
    const int depth = static_cast<int>(rounds);
    int stalled_levels = 0;
    for (int i = 0; i < n && stalled_levels < depth; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      const double share = nodes_[ui].share_at(sync);
      if (share < 1.0) {
        sync += 4.0 * cfg_.net.sched_quantum * (1.0 / share - 1.0);
        ++stalled_levels;
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    res.profile[ui].remap += sync - t[ui];
    t[ui] = sync;
  }

  std::vector<balance::NodeLoad> loads;
  loads.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    if (!bal[ui].ready()) return;  // whole cluster waits for full windows
    loads.push_back(bal[ui].self_load(planes[ui] * pc));
  }
  std::vector<long long> current(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    current[static_cast<std::size_t>(i)] = planes[static_cast<std::size_t>(i)] * pc;
  const std::vector<long long> target =
      policy_->decide_global(loads, cfg_.balance);
  const std::vector<long long> flows = balance::boundary_flows(current, target);

  for (int b = 0; b + 1 < n; ++b) {
    const auto ub = static_cast<std::size_t>(b);
    long long f = flows[ub];
    if (std::llabs(f) < cfg_.balance.min_transfer_points) continue;
    const int donor = f > 0 ? b : b + 1;
    const long long k = std::llabs(balance::quantize_flow_to_planes(
        f, pc, planes[static_cast<std::size_t>(donor)]));
    if (k == 0) continue;
    execute_transfer(donor, f > 0 ? b + 1 : b, k, t, planes, res);
  }
}

SimResult ClusterSim::run(int phases) {
  SLIPFLOW_REQUIRE(phases >= 1);
  const int n = cfg_.nodes;
  const long long pc = cfg_.plane_cells;

  std::vector<long long> planes = even_planes(cfg_.planes_total, n);
  std::vector<double> t(static_cast<std::size_t>(n), 0.0);
  std::vector<balance::NodeBalancer> bal;
  bal.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) bal.emplace_back(cfg_.balance, policy_);

  SimResult res;
  res.profile.resize(static_cast<std::size_t>(n));

  const bool remapping =
      policy_->name() != "none";  // "none" skips the whole remap step

  for (int phase = 1; phase <= phases; ++phase) {
    phase_ = phase;
    std::vector<double> phase_compute(static_cast<std::size_t>(n), 0.0);

    auto stage = [&](double fraction, const char* name) {
      for (int i = 0; i < n; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        const double work = static_cast<double>(planes[ui] * pc) *
                            cfg_.cost_per_point * fraction;
        const double done = nodes_[ui].finish_time(t[ui], work);
        res.profile[ui].compute += done - t[ui];
        phase_compute[ui] += done - t[ui];
        span(i, name, t[ui], done);
        count(i, "time/compute", done - t[ui]);
        t[ui] = done;
      }
    };

    stage(cfg_.stage_fraction[0], "collide");
    exchange(t, cfg_.f_halo_bytes_per_cell, res.profile, nullptr, "halo_f");
    stage(cfg_.stage_fraction[1], "stream_density");
    exchange(t, cfg_.density_halo_bytes_per_cell, res.profile, nullptr,
             "halo_density");
    stage(cfg_.stage_fraction[2], "force_velocity");

    for (int i = 0; i < n; ++i) {
      const auto ui = static_cast<std::size_t>(i);
      bal[ui].record_phase(std::max(phase_compute[ui], 1e-12),
                           planes[ui] * pc);
    }

    if (remapping && phase % cfg_.remap_interval == 0) {
      const std::vector<double> t_in(t);
      if (policy_->global())
        remap_global(t, planes, bal, res);
      else
        remap_local(t, planes, bal, res);
      for (int i = 0; i < n; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        // span() folds the duration into the "time/remap" counter
        span(i, "remap", t_in[ui], t[ui]);
        count(i, "remap_invocations", 1.0);
      }
    }
  }
  phase_ = -1;

  for (int i = 0; i < n; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    res.profile[ui].planes_end = planes[ui];
    res.makespan = std::max(res.makespan, t[ui]);
    if (metrics_ != nullptr) {
      metrics_->set(i, "planes_end", static_cast<double>(planes[ui]));
      metrics_->set(i, "time/total", t[ui]);
    }
  }
  return res;
}

}  // namespace slipflow::cluster
