#include "cluster/virtual_node.hpp"

#include <algorithm>

namespace slipflow::cluster {

VirtualNode::VirtualNode(double speed) : speed_(speed) {
  SLIPFLOW_REQUIRE(speed > 0.0);
}

void VirtualNode::add_load(std::unique_ptr<LoadGenerator> load) {
  SLIPFLOW_REQUIRE(load != nullptr);
  loads_.push_back(std::move(load));
}

void VirtualNode::clear_loads() { loads_.clear(); }

double VirtualNode::share_at(double t) const {
  double w = 0.0;
  for (const auto& l : loads_) w += l->weight_at(t);
  return 1.0 / (1.0 + w);
}

double VirtualNode::next_change(double t) const {
  double nxt = kNever;
  for (const auto& l : loads_) nxt = std::min(nxt, l->next_change(t));
  return nxt;
}

double VirtualNode::finish_time(double start, double work) const {
  SLIPFLOW_REQUIRE(work >= 0.0);
  SLIPFLOW_REQUIRE(start >= 0.0);
  double t = start;
  double remaining = work;
  while (remaining > 0.0) {
    const double rate = rate_at(t);
    const double change = next_change(t);
    // generators contract to return breakpoints strictly in the future;
    // a violation would stall this loop forever, so fail loudly instead
    SLIPFLOW_REQUIRE_MSG(change > t,
                         "load generator returned non-advancing breakpoint");
    const double needed = remaining / rate;
    if (t + needed <= change) return t + needed;
    // burn through to the breakpoint, then continue at the new rate
    remaining -= (change - t) * rate;
    t = change;
  }
  return t;
}

}  // namespace slipflow::cluster
