#pragma once
/// \file load_generator.hpp
/// Background-job models for the virtual cluster.
///
/// A load generator describes the CPU demand competing with the LBM
/// process on one node as a piecewise-constant *weight* over virtual
/// time. The node's fair-share scheduler gives the LBM process the share
/// 1 / (1 + total competing weight), so e.g. a weight-2 competitor (a
/// CPU-intensive job, roughly the paper's "70% CPU" background job)
/// leaves the simulation one third of the node.
///
/// The three generators mirror the paper's workloads:
///  * PersistentLoad  — the "fixed slow nodes" of Sections 4.2.1-4.2.3;
///  * PeriodicLoad    — the duty-cycle disturbance of Figure 3 (every 10
///    seconds, busy a given fraction, asleep the rest);
///  * IntervalLoad    — explicit busy intervals; used for the random
///    transient spikes of Table 1 (schedules built by spike_schedule()).

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace slipflow::cluster {

/// Virtual time "never".
inline constexpr double kNever = std::numeric_limits<double>::infinity();

/// Piecewise-constant competing CPU weight over virtual time.
class LoadGenerator {
 public:
  virtual ~LoadGenerator() = default;

  /// Competing weight at time t (>= 0).
  virtual double weight_at(double t) const = 0;

  /// First time strictly after t at which weight_at changes, or kNever.
  /// Needed so work integration can step exactly across breakpoints.
  virtual double next_change(double t) const = 0;
};

/// Constant competing weight over [begin, end).
class PersistentLoad final : public LoadGenerator {
 public:
  PersistentLoad(double weight, double begin = 0.0, double end = kNever);
  double weight_at(double t) const override;
  double next_change(double t) const override;

 private:
  double weight_, begin_, end_;
};

/// Periodic duty-cycle load: within each period, busy with `weight`
/// for `busy_fraction` of the period (from the period start), idle the
/// rest — the Figure 3 competing job ("every 10 seconds, it spent a
/// certain percentage of time competing for CPU; it slept the rest").
class PeriodicLoad final : public LoadGenerator {
 public:
  PeriodicLoad(double weight, double period, double busy_fraction,
               double phase_offset = 0.0);
  double weight_at(double t) const override;
  double next_change(double t) const override;

 private:
  double weight_, period_, busy_, offset_;
};

/// Sorted, disjoint busy intervals with a common weight.
class IntervalLoad final : public LoadGenerator {
 public:
  struct Interval {
    double begin, end;
  };
  IntervalLoad(double weight, std::vector<Interval> intervals);
  double weight_at(double t) const override;
  double next_change(double t) const override;

 private:
  double weight_;
  std::vector<Interval> iv_;
};

/// Piecewise-constant weight replayed from a recorded trace: samples
/// (t_i, w_i) sorted by time; the weight holds from t_i until the next
/// sample (and w_last afterwards). This is the substitution for replaying
/// real shared-cluster load traces (see DESIGN.md): any CSV of timestamped
/// load averages can be converted into one of these per node.
class TraceLoad final : public LoadGenerator {
 public:
  struct Sample {
    double time;
    double weight;
  };
  explicit TraceLoad(std::vector<Sample> samples);

  double weight_at(double t) const override;
  double next_change(double t) const override;

  /// Parse a two-column "time,weight" CSV (header line optional,
  /// '#' comments skipped).
  static TraceLoad from_csv(const std::string& path);

 private:
  std::vector<Sample> samples_;
};

/// Build the Table 1 workload: every `period` seconds a uniformly random
/// node receives a busy interval of `spike_seconds` at `weight`. Returns
/// one interval list per node, covering [0, horizon).
std::vector<std::vector<IntervalLoad::Interval>> spike_schedule(
    int nodes, double horizon, double period, double spike_seconds,
    util::Rng& rng);

/// Generate a synthetic load trace with the statistics observed in shared
/// Unix clusters (the paper's refs [9, 44, 46]): a two-state busy/idle
/// episode process with drifting busy intensity, sampled every
/// `sample_dt`. `episode_end_prob` is the per-sample probability a busy
/// episode ends — its inverse sets the load persistence, the key variable
/// deciding whether dynamic remapping pays off. Deterministic under `rng`.
std::vector<TraceLoad::Sample> synthetic_trace(double horizon,
                                               double sample_dt,
                                               util::Rng& rng,
                                               double busy_probability = 0.3,
                                               double mean_weight = 1.5,
                                               double episode_end_prob = 0.2);

}  // namespace slipflow::cluster
