#pragma once
/// \file cluster_sim.hpp
/// Virtual-time simulation of the parallel LBM on a linear array of
/// cluster nodes — the substitution for the paper's 20-node testbed (see
/// DESIGN.md).
///
/// The simulator executes the exact phase structure of Figure 2 (three
/// compute stages separated by two neighbor halo exchanges, plus the
/// periodic remapping step) against a cost model: compute time is points
/// x per-point cost divided by the node's CPU share (integrated exactly
/// across background-job on/off breakpoints), and message costs are
/// latency + share-scaled transfer + the OS wake-up lag of loaded nodes.
/// Neighbor synchronization is by message arrival, so the paper's ripple
/// effect — a slow node delaying nodes k hops away after k exchanges —
/// emerges rather than being assumed.
///
/// The remapping policies are the *same* balance:: objects the real
/// thread-parallel runner uses.

#include <array>
#include <memory>
#include <vector>

#include "balance/remapper.hpp"
#include "cluster/network.hpp"
#include "cluster/virtual_node.hpp"
#include "obs/metrics.hpp"

namespace slipflow::cluster {

struct ClusterConfig {
  int nodes = 20;
  /// Global domain planes along x and cells per yz-plane
  /// (paper: 400 x (200*20)).
  long long planes_total = 400;
  long long plane_cells = 200 * 20;
  /// Dedicated-CPU seconds per lattice point per phase on the reference
  /// node. The paper's timings give 43.56 h / (20000 phases * 1.6e6
  /// points) = 4.9 us.
  double cost_per_point = 4.9e-6;
  /// Split of the per-point cost across the three compute stages of a
  /// phase: collide | stream+bounce-back+density | forces+velocity.
  std::array<double, 3> stage_fraction{0.35, 0.30, 0.35};
  /// Message sizes per plane cell: f-halo carries 5 crossing directions
  /// per component, the density halo one scalar per component, migration
  /// the full per-cell state (19 + 1 + 3 doubles per component).
  double f_halo_bytes_per_cell = 2 * 5 * 8.0;
  double density_halo_bytes_per_cell = 2 * 8.0;
  double migration_bytes_per_cell = 2 * 23 * 8.0;
  NetworkParams net;
  /// Phases between remapping checks (Figure 2's REMAPPING_INTERVAL).
  int remap_interval = 10;
  balance::BalanceConfig balance;

  long long total_points() const { return planes_total * plane_cells; }

  void validate() const;
};

/// Per-node cost breakdown over a run — the data behind Figure 9.
struct NodeProfile {
  double compute = 0.0;  ///< time spent executing the three stages
  double comm = 0.0;     ///< halo-exchange time: packing + waiting
  double remap = 0.0;    ///< load-index exchange + plane migration time
  long long planes_end = 0;
  long long planes_sent = 0;
  long long planes_received = 0;
};

struct SimResult {
  double makespan = 0.0;  ///< wall time until the last node finishes
  std::vector<NodeProfile> profile;
  long long migration_events = 0;  ///< boundary transfers executed
  long long planes_moved = 0;
};

class ClusterSim {
 public:
  ClusterSim(ClusterConfig cfg,
             std::shared_ptr<const balance::RemapPolicy> policy);

  /// Mutable access to a node to attach background loads / set speed.
  VirtualNode& node(int i);

  const ClusterConfig& config() const { return cfg_; }

  /// Attach a metrics sink (one shard per node, ranks() >= nodes).
  /// run() then records every stage / halo / remap span in *virtual*
  /// seconds — deterministically, so identical runs export identical
  /// bytes — using the same stage names as the thread-parallel runner
  /// (see DESIGN.md "Observability"). Metrics accumulate across run()
  /// calls; pass nullptr to detach.
  void attach_metrics(obs::MetricsRegistry* metrics);

  /// Simulate `phases` LBM phases from virtual time 0.
  SimResult run(int phases);

  /// Wall time of the same problem on one dedicated reference node — the
  /// numerator of the paper's speedup.
  double sequential_time(int phases) const;

  /// The initial static decomposition: planes split as evenly as possible
  /// (remainder to the lowest ranks), as in the paper's slice
  /// decomposition.
  static std::vector<long long> even_planes(long long total, int nodes);

 private:
  struct ExchangeKind;
  void exchange(std::vector<double>& t, double bytes_per_cell,
                std::vector<NodeProfile>& prof,
                std::vector<double>* comm_into, const char* span_name);
  void span(int node, const char* name, double begin, double end);
  void count(int node, const char* name, double delta);
  void remap_local(std::vector<double>& t, std::vector<long long>& planes,
                   std::vector<balance::NodeBalancer>& bal, SimResult& res);
  void remap_global(std::vector<double>& t, std::vector<long long>& planes,
                    std::vector<balance::NodeBalancer>& bal, SimResult& res);
  void execute_transfer(int donor, int recv, long long k,
                        std::vector<double>& t,
                        std::vector<long long>& planes, SimResult& res);

  ClusterConfig cfg_;
  std::shared_ptr<const balance::RemapPolicy> policy_;
  std::vector<VirtualNode> nodes_;
  obs::MetricsRegistry* metrics_ = nullptr;
  long long phase_ = -1;  ///< phase label for recorded spans
};

}  // namespace slipflow::cluster
