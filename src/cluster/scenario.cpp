#include "cluster/scenario.hpp"

#include "util/require.hpp"

namespace slipflow::cluster {

namespace paper {

ClusterConfig base_config(int nodes) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.planes_total = 400;
  cfg.plane_cells = 200 * 20;
  cfg.cost_per_point = 4.9e-6;
  // stage split measured on the real kernels (bench/micro_lbm_kernels):
  // collide : stream+bounce-back+density : forces+velocity
  cfg.stage_fraction = {0.15, 0.27, 0.58};
  cfg.remap_interval = 10;
  cfg.balance.window = 10;
  cfg.balance.min_transfer_points = 4000;  // one 200x20 plane
  cfg.net.latency = 1e-4;
  cfg.net.bandwidth = 50e6;
  cfg.net.msg_cpu = 5e-3;
  cfg.net.sched_quantum = 0.05;
  return cfg;
}

std::vector<int> slow_node_set(int m) {
  SLIPFLOW_REQUIRE(m >= 0 && m <= 5);
  static const std::vector<int> order = {kProfiledSlowNode, 3, 15, 6, 12};
  return {order.begin(), order.begin() + m};
}

}  // namespace paper

void add_fixed_slow_nodes(ClusterSim& sim, const std::vector<int>& which,
                          double weight) {
  for (int i : which)
    sim.node(i).add_load(std::make_unique<PersistentLoad>(weight));
}

void add_periodic_disturbance(ClusterSim& sim, int node, double busy_fraction,
                              double period, double weight) {
  sim.node(node).add_load(
      std::make_unique<PeriodicLoad>(weight, period, busy_fraction));
}

void add_transient_spikes(ClusterSim& sim, double horizon,
                          double spike_seconds, double period,
                          std::uint64_t seed, double weight) {
  util::Rng rng(seed);
  const auto schedule = spike_schedule(sim.config().nodes, horizon, period,
                                       spike_seconds, rng);
  for (int i = 0; i < sim.config().nodes; ++i) {
    const auto& iv = schedule[static_cast<std::size_t>(i)];
    if (!iv.empty())
      sim.node(i).add_load(std::make_unique<IntervalLoad>(weight, iv));
  }
}

double normalized_efficiency(double speedup, int nodes, int slow_nodes,
                             double slow_share) {
  SLIPFLOW_REQUIRE(nodes >= 1 && slow_nodes >= 0 && slow_nodes <= nodes);
  SLIPFLOW_REQUIRE(slow_share > 0.0 && slow_share <= 1.0);
  const double capacity =
      static_cast<double>(nodes) -
      static_cast<double>(slow_nodes) * (1.0 - slow_share);
  return speedup / capacity;
}

}  // namespace slipflow::cluster
