#pragma once
/// \file network.hpp
/// Cost model of the cluster interconnect (the paper's Gigabit Ethernet
/// switch) and of the OS effects that make a loaded node's communication
/// "sluggish" (Section 3.3).

#include "util/require.hpp"

namespace slipflow::cluster {

struct NetworkParams {
  /// One-way message latency (s).
  double latency = 1e-4;
  /// Effective point-to-point bandwidth (bytes/s). Default is deliberately
  /// below wire speed: 2004-era MPI over GigE sustained roughly 50 MB/s.
  double bandwidth = 50e6;
  /// Dedicated-CPU seconds a node spends packing/posting the messages of
  /// one exchange stage. On a loaded node this cost inflates by 1/share —
  /// that is the first half of "slow nodes communicate sluggishly".
  double msg_cpu = 5e-3;
  /// OS scheduling quantum: when a node *waits* for a message while a
  /// competing job holds the CPU, it is not rescheduled the instant the
  /// message lands; the wake-up lag is quantum * (1/share - 1). This is
  /// the second half of sluggish communication and the reason merely
  /// balancing a slow node's *compute* (the conservative scheme) leaves
  /// its messages on the critical path.
  double sched_quantum = 0.05;
  /// Scale transfer time by endpoint CPU shares (protocol processing is
  /// CPU-bound on 2004 hardware).
  bool endpoint_share_scaling = true;

  void validate() const {
    SLIPFLOW_REQUIRE(latency >= 0.0);
    SLIPFLOW_REQUIRE(bandwidth > 0.0);
    SLIPFLOW_REQUIRE(msg_cpu >= 0.0);
    SLIPFLOW_REQUIRE(sched_quantum >= 0.0);
  }
};

/// Wire time of one message of `bytes`, given the sender's and receiver's
/// CPU shares at transfer time.
inline double transfer_seconds(const NetworkParams& net, double bytes,
                               double share_send, double share_recv) {
  double t = bytes / net.bandwidth;
  if (net.endpoint_share_scaling) {
    t *= 0.5 * (1.0 / share_send + 1.0 / share_recv);
  }
  return t;
}

}  // namespace slipflow::cluster
