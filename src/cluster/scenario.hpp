#pragma once
/// \file scenario.hpp
/// The paper's experimental setup (Section 4.2) captured as reusable
/// builders: the 20-node / 400x200x20 / Gigabit configuration calibrated
/// to the published timings, and the three workload patterns (fixed slow
/// nodes, the Figure 3 periodic disturbance, and the Table 1 random
/// transient spikes).

#include <cstdint>
#include <vector>

#include "cluster/cluster_sim.hpp"

namespace slipflow::cluster {

namespace paper {

/// Nodes in the testbed experiments.
inline constexpr int kNodes = 20;
/// Phases in the profiling experiments (Figures 3, 9, 10).
inline constexpr int kShortPhases = 600;
/// Phases in the speedup/efficiency experiment (Figure 8).
inline constexpr int kLongPhases = 20000;
/// Phases in the transient-spike experiment (Table 1).
inline constexpr int kSpikePhases = 100;
/// Competing weight of the paper's CPU-intensive "70% CPU" background
/// job: a weight-2 competitor leaves the simulation 1/3 of the node,
/// reproducing the published ~2.9x no-remapping slowdown once the
/// unscaled parts of communication are accounted for.
inline constexpr double kSlowJobWeight = 2.0;
/// The disturbance / spike generators re-pick every 10 seconds.
inline constexpr double kDisturbancePeriod = 10.0;
/// The node the paper slows down in the Figure 9 profile.
inline constexpr int kProfiledSlowNode = 9;

/// The calibrated base configuration. Derivations:
///  * cost_per_point: 43.56 h sequential / (20000 phases x 1.6e6 points);
///  * bandwidth/msg_cpu: chosen so 600 dedicated phases on 20 nodes take
///    ~251 s, i.e. speedup ~19 (the paper reports 18.97).
ClusterConfig base_config(int nodes = kNodes);

/// The slow-node subsets for "m slow nodes" sweeps: node 9 first (the
/// Figure 9 node), then others spread along the chain.
std::vector<int> slow_node_set(int m);

}  // namespace paper

/// Attach a persistent background job to each listed node.
void add_fixed_slow_nodes(ClusterSim& sim, const std::vector<int>& which,
                          double weight = paper::kSlowJobWeight);

/// Attach the Figure 3 duty-cycle disturbance to one node: busy
/// `busy_fraction` of every `period` seconds.
void add_periodic_disturbance(ClusterSim& sim, int node, double busy_fraction,
                              double period = paper::kDisturbancePeriod,
                              double weight = paper::kSlowJobWeight);

/// Attach the Table 1 workload: every `period` seconds a random node gets
/// a `spike_seconds` busy interval. Deterministic under `seed`.
void add_transient_spikes(ClusterSim& sim, double horizon,
                          double spike_seconds,
                          double period = paper::kDisturbancePeriod,
                          std::uint64_t seed = 1,
                          double weight = paper::kSlowJobWeight);

/// The paper's normalized efficiency: speedup / (P - m * (1 - share)),
/// the denominator being the CPU capacity actually available when m
/// nodes keep only `share` of a CPU (Section 4.2.1 uses share = 0.3).
double normalized_efficiency(double speedup, int nodes, int slow_nodes,
                             double slow_share = 1.0 /
                                                 (1.0 + paper::kSlowJobWeight));

}  // namespace slipflow::cluster
