#pragma once
/// \file virtual_node.hpp
/// One machine of the virtual cluster: a base CPU speed plus any number
/// of competing background jobs, with exact piecewise integration of how
/// long a given amount of dedicated-CPU work takes starting at a given
/// virtual time.

#include <memory>
#include <vector>

#include "cluster/load_generator.hpp"

namespace slipflow::cluster {

class VirtualNode {
 public:
  /// \param speed base CPU speed relative to the reference node (1.0).
  explicit VirtualNode(double speed = 1.0);

  /// Attach a competing background job.
  void add_load(std::unique_ptr<LoadGenerator> load);
  /// Remove all background jobs.
  void clear_loads();

  double base_speed() const { return speed_; }

  /// Fraction of the node the LBM process gets at time t:
  /// share = 1 / (1 + sum of competing weights). In (0, 1].
  double share_at(double t) const;

  /// Effective work rate at time t (dedicated-seconds of work retired per
  /// wall second): base_speed * share.
  double rate_at(double t) const { return speed_ * share_at(t); }

  /// Earliest time the total competing weight changes after t (kNever if
  /// constant from t on).
  double next_change(double t) const;

  /// Wall-clock completion time of `work` dedicated-CPU seconds started
  /// at time `start`, integrating the piecewise-constant rate exactly.
  double finish_time(double start, double work) const;

 private:
  double speed_;
  std::vector<std::unique_ptr<LoadGenerator>> loads_;
};

}  // namespace slipflow::cluster
