#include "cluster/load_generator.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <cmath>

namespace slipflow::cluster {

PersistentLoad::PersistentLoad(double weight, double begin, double end)
    : weight_(weight), begin_(begin), end_(end) {
  SLIPFLOW_REQUIRE(weight >= 0.0);
  SLIPFLOW_REQUIRE(begin >= 0.0 && begin < end);
}

double PersistentLoad::weight_at(double t) const {
  return (t >= begin_ && t < end_) ? weight_ : 0.0;
}

double PersistentLoad::next_change(double t) const {
  if (t < begin_) return begin_;
  if (t < end_) return end_;
  return kNever;
}

PeriodicLoad::PeriodicLoad(double weight, double period, double busy_fraction,
                           double phase_offset)
    : weight_(weight),
      period_(period),
      busy_(busy_fraction),
      offset_(phase_offset) {
  SLIPFLOW_REQUIRE(weight >= 0.0);
  SLIPFLOW_REQUIRE(period > 0.0);
  SLIPFLOW_REQUIRE(busy_fraction >= 0.0 && busy_fraction <= 1.0);
}

double PeriodicLoad::weight_at(double t) const {
  if (busy_ <= 0.0) return 0.0;
  if (busy_ >= 1.0) return weight_;
  const double local = t - offset_ - period_ * std::floor((t - offset_) / period_);
  return local < busy_ * period_ ? weight_ : 0.0;
}

double PeriodicLoad::next_change(double t) const {
  if (busy_ <= 0.0 || busy_ >= 1.0) return kNever;
  const double base = offset_ + period_ * std::floor((t - offset_) / period_);
  const double busy_end = base + busy_ * period_;
  double result = t < busy_end ? busy_end : base + period_;
  // At large t the floating-point sum base + period can round down to
  // exactly t; a breakpoint that is not strictly in the future would
  // stall work integration, so step whole periods until it is.
  while (result <= t) result += period_;
  return result;
}

IntervalLoad::IntervalLoad(double weight, std::vector<Interval> intervals)
    : weight_(weight), iv_(std::move(intervals)) {
  SLIPFLOW_REQUIRE(weight >= 0.0);
  for (std::size_t i = 0; i < iv_.size(); ++i) {
    SLIPFLOW_REQUIRE(iv_[i].begin < iv_[i].end);
    if (i > 0) SLIPFLOW_REQUIRE_MSG(iv_[i - 1].end <= iv_[i].begin,
                                    "intervals must be sorted and disjoint");
  }
}

double IntervalLoad::weight_at(double t) const {
  // first interval with end > t
  auto it = std::upper_bound(
      iv_.begin(), iv_.end(), t,
      [](double v, const Interval& in) { return v < in.end; });
  return (it != iv_.end() && t >= it->begin) ? weight_ : 0.0;
}

double IntervalLoad::next_change(double t) const {
  auto it = std::upper_bound(
      iv_.begin(), iv_.end(), t,
      [](double v, const Interval& in) { return v < in.end; });
  if (it == iv_.end()) return kNever;
  return t < it->begin ? it->begin : it->end;
}

TraceLoad::TraceLoad(std::vector<Sample> samples)
    : samples_(std::move(samples)) {
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    SLIPFLOW_REQUIRE(samples_[i].weight >= 0.0);
    if (i > 0)
      SLIPFLOW_REQUIRE_MSG(samples_[i - 1].time < samples_[i].time,
                           "trace samples must be strictly time-ordered");
  }
}

double TraceLoad::weight_at(double t) const {
  // last sample with time <= t
  auto it = std::upper_bound(
      samples_.begin(), samples_.end(), t,
      [](double v, const Sample& s) { return v < s.time; });
  if (it == samples_.begin()) return 0.0;  // before the trace starts
  return std::prev(it)->weight;
}

double TraceLoad::next_change(double t) const {
  auto it = std::upper_bound(
      samples_.begin(), samples_.end(), t,
      [](double v, const Sample& s) { return v < s.time; });
  return it == samples_.end() ? kNever : it->time;
}

TraceLoad TraceLoad::from_csv(const std::string& path) {
  std::ifstream in(path);
  SLIPFLOW_REQUIRE_MSG(in.good(), "cannot open trace " << path);
  std::vector<Sample> samples;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto comma = line.find(',');
    if (comma == std::string::npos) continue;
    char* end = nullptr;
    const double t = std::strtod(line.c_str(), &end);
    if (end == line.c_str()) continue;  // header or junk line
    const double w = std::strtod(line.c_str() + comma + 1, nullptr);
    samples.push_back({t, w});
  }
  SLIPFLOW_REQUIRE_MSG(!samples.empty(), "trace " << path << " has no data");
  return TraceLoad(std::move(samples));
}

std::vector<TraceLoad::Sample> synthetic_trace(double horizon,
                                               double sample_dt,
                                               util::Rng& rng,
                                               double busy_probability,
                                               double mean_weight,
                                               double episode_end_prob) {
  SLIPFLOW_REQUIRE(horizon > 0.0 && sample_dt > 0.0);
  SLIPFLOW_REQUIRE(busy_probability >= 0.0 && busy_probability <= 1.0);
  SLIPFLOW_REQUIRE(mean_weight >= 0.0);
  SLIPFLOW_REQUIRE(episode_end_prob > 0.0 && episode_end_prob <= 1.0);
  std::vector<TraceLoad::Sample> out;
  bool busy = false;
  double w = 0.0;
  // start probability chosen so the stationary busy fraction is roughly
  // busy_probability for the given persistence
  const double start_prob = busy_probability * episode_end_prob /
                            std::max(1.0 - busy_probability, 1e-9);
  for (double t = 0.0; t < horizon; t += sample_dt) {
    // two-state (idle/busy) episode process with drifting busy weight —
    // the simple autocorrelated structure host-load studies report
    if (busy) {
      if (rng.uniform() < episode_end_prob) busy = false;  // episode ends
      else w = std::max(0.1, w + rng.uniform(-0.3, 0.3));
    } else if (rng.uniform() < start_prob) {
      busy = true;  // episode starts
      w = mean_weight * rng.uniform(0.5, 1.5);
    }
    out.push_back({t, busy ? w : 0.0});
  }
  return out;
}

std::vector<std::vector<IntervalLoad::Interval>> spike_schedule(
    int nodes, double horizon, double period, double spike_seconds,
    util::Rng& rng) {
  SLIPFLOW_REQUIRE(nodes >= 1);
  SLIPFLOW_REQUIRE(horizon > 0.0 && period > 0.0);
  SLIPFLOW_REQUIRE(spike_seconds > 0.0 && spike_seconds <= period);
  std::vector<std::vector<IntervalLoad::Interval>> out(
      static_cast<std::size_t>(nodes));
  for (double t = 0.0; t < horizon; t += period) {
    const auto victim = static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(nodes)));
    out[victim].push_back({t, t + spike_seconds});
  }
  return out;
}

}  // namespace slipflow::cluster
