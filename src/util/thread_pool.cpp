#include "util/thread_pool.hpp"

#include "util/require.hpp"

namespace slipflow::util {

ThreadPool::ThreadPool(int lanes) : lanes_(lanes) {
  SLIPFLOW_REQUIRE_MSG(lanes >= 1, "ThreadPool: lanes must be >= 1");
  workers_.reserve(static_cast<std::size_t>(lanes - 1));
  for (int lane = 1; lane < lanes; ++lane)
    workers_.emplace_back([this, lane] { worker(lane); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_lane(int lane) {
  try {
    (*job_)(lane, lanes_);
  } catch (...) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (--pending_ == 0) cv_done_.notify_one();
  }
}

void ThreadPool::worker(int lane) {
  long long seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    run_lane(lane);
  }
}

void ThreadPool::run(const std::function<void(int, int)>& fn) {
  SLIPFLOW_REQUIRE(fn != nullptr);
  if (lanes_ == 1) {  // no pool machinery on the serial path
    fn(0, 1);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &fn;
    first_error_ = nullptr;
    pending_ = lanes_;
    ++generation_;
  }
  cv_work_.notify_all();
  run_lane(0);  // the caller is lane 0
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return pending_ == 0; });
    job_ = nullptr;
    err = first_error_;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace slipflow::util
