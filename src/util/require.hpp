#pragma once
/// \file require.hpp
/// Precondition / invariant checking that stays on in release builds.
///
/// The library is used both as a physics code and as a performance-model
/// harness; silent out-of-contract calls are far more expensive to debug
/// than the cost of a predictable branch, so SLIPFLOW_REQUIRE is always
/// compiled in (C++ Core Guidelines I.6: prefer expressing preconditions).

#include <sstream>
#include <stdexcept>
#include <string>

namespace slipflow {

/// Thrown when a documented precondition of a public API is violated.
class contract_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw contract_error(os.str());
}
}  // namespace detail

}  // namespace slipflow

/// Check a precondition; throws slipflow::contract_error on failure.
#define SLIPFLOW_REQUIRE(expr)                                          \
  do {                                                                  \
    if (!(expr))                                                        \
      ::slipflow::detail::require_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

/// Check a precondition with an explanatory message.
#define SLIPFLOW_REQUIRE_MSG(expr, msg)                                  \
  do {                                                                   \
    if (!(expr))                                                         \
      ::slipflow::detail::require_failed(#expr, __FILE__, __LINE__,      \
                                         (std::ostringstream{} << msg).str()); \
  } while (false)
