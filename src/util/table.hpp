#pragma once
/// \file table.hpp
/// Plain-text table and CSV emitters used by the figure/table benchmark
/// harnesses so that every reproduced result prints in a uniform, easily
/// diffable layout.

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace slipflow::util {

/// A cell is either text or a number (numbers get consistent formatting).
using Cell = std::variant<std::string, double, long long>;

/// Column-aligned text table with an optional title, suitable for stdout.
class Table {
 public:
  explicit Table(std::string title = {});

  /// Set the header row. Must be called before adding rows.
  void header(std::vector<std::string> names);

  /// Append a data row; its width must match the header width.
  void row(std::vector<Cell> cells);

  /// Number of data rows so far.
  std::size_t rows() const { return rows_.size(); }

  /// Structured access for serializers (bench summary JSON).
  const std::string& title() const { return title_; }
  const std::vector<std::string>& column_names() const { return header_; }
  const std::vector<std::vector<Cell>>& data() const { return rows_; }

  /// Render as an aligned text table.
  void print(std::ostream& os) const;

  /// Render as CSV (header + rows, RFC-4180 style quoting for text).
  void write_csv(std::ostream& os) const;

  /// Convenience: write_csv to a file path, creating/overwriting it.
  void save_csv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<Cell>> rows_;
};

/// Format a double with a sensible number of significant digits for tables.
std::string format_number(double v);

}  // namespace slipflow::util
