#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace slipflow::util {

double mean(std::span<const double> xs) {
  SLIPFLOW_REQUIRE(!xs.empty());
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  SLIPFLOW_REQUIRE(!xs.empty());
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double harmonic_mean(std::span<const double> xs) {
  SLIPFLOW_REQUIRE(!xs.empty());
  double inv = 0.0;
  for (double x : xs) {
    SLIPFLOW_REQUIRE_MSG(x > 0.0, "harmonic mean needs positive samples");
    inv += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / inv;
}

double min(std::span<const double> xs) {
  SLIPFLOW_REQUIRE(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  SLIPFLOW_REQUIRE(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double q) {
  SLIPFLOW_REQUIRE(!xs.empty());
  SLIPFLOW_REQUIRE(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

SampleWindow::SampleWindow(std::size_t cap) : buf_(cap) {
  SLIPFLOW_REQUIRE(cap > 0);
}

void SampleWindow::push(double x) {
  if (size_ < buf_.size()) {
    buf_[(head_ + size_) % buf_.size()] = x;
    ++size_;
  } else {
    buf_[head_] = x;
    head_ = (head_ + 1) % buf_.size();
  }
}

std::vector<double> SampleWindow::samples() const {
  std::vector<double> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i)
    out.push_back(buf_[(head_ + i) % buf_.size()]);
  return out;
}

void SampleWindow::clear() {
  head_ = 0;
  size_ = 0;
}

}  // namespace slipflow::util
