#pragma once
/// \file rng.hpp
/// Deterministic, seedable pseudo-random number generation.
///
/// The virtual-cluster experiments (random transient spikes, Table 1) must
/// be reproducible across runs and platforms, so we carry our own small
/// generator instead of relying on implementation-defined std::
/// distributions. xoshiro256** — fast, well-tested, and tiny.

#include <cstdint>

#include "util/require.hpp"

namespace slipflow::util {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference code).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-initialize the state from a single seed via splitmix64.
  void reseed(std::uint64_t seed) {
    for (auto& word : s_) {
      seed += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    SLIPFLOW_REQUIRE(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n) using rejection-free Lemire reduction.
  std::uint64_t below(std::uint64_t n) {
    SLIPFLOW_REQUIRE(n > 0);
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * n) >> 64);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace slipflow::util
