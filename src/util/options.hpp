#pragma once
/// \file options.hpp
/// Minimal command-line option parsing for the examples and the benchmark
/// harnesses: `--key=value` and `--flag` forms, with typed getters and
/// defaults. Unknown keys are an error so typos in sweep scripts fail fast.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace slipflow::util {

/// Parsed `--key=value` options.
class Options {
 public:
  /// Parse argv. Accepts `--key=value` and bare `--flag` (value "1").
  /// Anything not starting with `--` is collected as a positional argument.
  static Options parse(int argc, const char* const* argv);

  /// Typed getters with defaults. Throw slipflow::contract_error when the
  /// value cannot be converted.
  std::string get(const std::string& key, const std::string& fallback) const;
  long long get(const std::string& key, long long fallback) const;
  double get(const std::string& key, double fallback) const;
  bool get(const std::string& key, bool fallback) const;

  /// True if the key was supplied on the command line.
  bool has(const std::string& key) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Keys the program never queried — used to reject typos: call after all
  /// get()/has() calls and fail if non-empty.
  std::vector<std::string> unused_keys() const;

  /// Every key the program queried via get()/has() so far, sorted —
  /// i.e. the program's valid flag surface.
  std::vector<std::string> known_keys() const;

  /// Empty when every supplied flag was queried; otherwise a ready-made
  /// diagnostic naming each unknown flag and listing the valid ones.
  /// Call after all get()/has() calls:
  ///   if (const std::string d = opts.unknown_diagnostic(); !d.empty()) {
  ///     std::cerr << d; return 2;
  ///   }
  std::string unknown_diagnostic() const;

 private:
  std::map<std::string, std::string> kv_;
  mutable std::map<std::string, bool> touched_;
  std::vector<std::string> positional_;
};

}  // namespace slipflow::util
