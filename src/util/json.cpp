#include "util/json.hpp"

namespace slipflow::util {

namespace {

[[noreturn]] void fail(const std::string& what, std::size_t at) {
  throw json_error(what, at);
}

/// Recursive-descent parser over a string_view. Position-tracking only;
/// every error names the byte offset of the offending character.
class Parser {
 public:
  Parser(std::string_view text, int max_depth)
      : text_(text), max_depth_(max_depth) {}

  JsonValue run() {
    skip_ws();
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document", pos_);
    return v;
  }

 private:
  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  void expect(char c) {
    if (eof() || peek() != c)
      fail(std::string("expected '") + c + "'", pos_);
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > max_depth_) fail("nesting too deep", pos_);
    if (eof()) fail("unexpected end of input", pos_);
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("invalid literal", pos_);
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("invalid literal", pos_);
      case 'n':
        if (consume_literal("null")) return JsonValue();
        fail("invalid literal", pos_);
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    const std::size_t open = pos_;
    expect('{');
    JsonValue::Object obj;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected object key", pos_);
      const std::size_t key_at = pos_;
      std::string key = parse_string();
      if (obj.count(key) != 0) fail("duplicate key \"" + key + "\"", key_at);
      skip_ws();
      expect(':');
      skip_ws();
      obj.emplace(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (eof()) fail("unterminated object", open);
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(obj));
    }
  }

  JsonValue parse_array(int depth) {
    const std::size_t open = pos_;
    expect('[');
    JsonValue::Array arr;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    for (;;) {
      skip_ws();
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      if (eof()) fail("unterminated array", open);
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (eof()) fail("unterminated string", pos_);
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string", pos_ - 1);
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) fail("unterminated escape", pos_);
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail("invalid escape", pos_ - 1);
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape", pos_);
    unsigned v = 0;
    const auto res =
        std::from_chars(text_.data() + pos_, text_.data() + pos_ + 4, v, 16);
    if (res.ec != std::errc{} || res.ptr != text_.data() + pos_ + 4)
      fail("invalid \\u escape", pos_);
    pos_ += 4;
    return v;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  void append_unicode_escape(std::string& out) {
    unsigned cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      // high surrogate: a low surrogate must follow
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u')
        fail("high surrogate without low surrogate", pos_);
      pos_ += 2;
      const unsigned lo = parse_hex4();
      if (lo < 0xDC00 || lo > 0xDFFF)
        fail("invalid low surrogate", pos_ - 4);
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired low surrogate", pos_ - 4);
    }
    append_utf8(out, cp);
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    // Validate the RFC 8259 grammar first — from_chars is laxer (it
    // accepts "1." and leading '+', JSON does not).
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || peek() < '0' || peek() > '9')
      fail("invalid number", start);
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || peek() < '0' || peek() > '9')
        fail("digit expected after decimal point", pos_);
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || peek() < '0' || peek() > '9')
        fail("digit expected in exponent", pos_);
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    double v = 0.0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, v);
    if (res.ec == std::errc::result_out_of_range) {
      // RFC 8259 allows implementations to approximate; saturate like
      // strtod would instead of rejecting 1e999.
      v = text_[start] == '-' ? -HUGE_VAL : HUGE_VAL;
    } else if (res.ec != std::errc{} ||
               res.ptr != text_.data() + pos_) {
      fail("invalid number", start);
    }
    return JsonValue(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int max_depth_;
};

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::boolean) fail("not a boolean", 0);
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::number) fail("not a number", 0);
  return num_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::string) fail("not a string", 0);
  return str_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (kind_ != Kind::array) fail("not an array", 0);
  return arr_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (kind_ != Kind::object) fail("not an object", 0);
  return obj_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::object) return nullptr;
  const auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (!v->is_number()) fail("member \"" + std::string(key) + "\" is not a number", 0);
  return v->num_;
}

long long JsonValue::int_or(std::string_view key, long long fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (!v->is_number())
    fail("member \"" + std::string(key) + "\" is not a number", 0);
  const double d = v->num_;
  const long long i = static_cast<long long>(d);
  if (static_cast<double>(i) != d)
    fail("member \"" + std::string(key) + "\" is not an integer", 0);
  return i;
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (!v->is_bool())
    fail("member \"" + std::string(key) + "\" is not a boolean", 0);
  return v->bool_;
}

std::string JsonValue::string_or(std::string_view key,
                                 const std::string& fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (!v->is_string())
    fail("member \"" + std::string(key) + "\" is not a string", 0);
  return v->str_;
}

std::string JsonValue::dump() const {
  switch (kind_) {
    case Kind::null: return "null";
    case Kind::boolean: return bool_ ? "true" : "false";
    case Kind::number: return json_number(num_);
    case Kind::string: return json_string(str_);
    case Kind::array: {
      std::string out = "[";
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i != 0) out.push_back(',');
        out += arr_[i].dump();
      }
      out.push_back(']');
      return out;
    }
    case Kind::object: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out.push_back(',');
        first = false;
        out += json_string(k);
        out.push_back(':');
        out += v.dump();
      }
      out.push_back('}');
      return out;
    }
  }
  return "null";  // unreachable
}

JsonValue json_parse(std::string_view text, int max_depth) {
  return Parser(text, max_depth).run();
}

}  // namespace slipflow::util
