#pragma once
/// \file thread_pool.hpp
/// Persistent fork/join worker pool for the hybrid rank x thread runner.
///
/// One pool lives for the whole run of a rank (spawning threads per
/// phase would dwarf the interior sweep it parallelizes). run(fn) calls
/// fn(lane, lanes) on every lane in [0, lanes) — lane 0 on the calling
/// thread, the rest on parked workers — and returns when all lanes
/// finished. With lanes == 1 no threads are ever created and run() is a
/// plain call, so the single-threaded configuration carries zero
/// synchronization cost.
///
/// Determinism contract: the pool imposes no ordering between lanes, so
/// callers must hand each lane a write-disjoint slice of the work (see
/// slice()); under that contract results are bit-identical for any lane
/// count because no value ever depends on which lane (or in what order)
/// computed it. The first exception thrown by any lane is rethrown from
/// run() after every lane finished its generation.

#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include <condition_variable>

namespace slipflow::util {

class ThreadPool {
 public:
  /// Spawns lanes-1 workers, parked until the first run().
  explicit ThreadPool(int lanes);
  /// Joins the workers. Must not be called while run() is active.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int lanes() const { return lanes_; }

  /// Executes fn(lane, lanes) once per lane, concurrently; blocks until
  /// every lane returned. Not reentrant; call from one thread only.
  void run(const std::function<void(int lane, int lanes)>& fn);

  /// The half-open range lane owns when n items are split statically
  /// across `lanes` lanes: [n*lane/lanes, n*(lane+1)/lanes). Contiguous,
  /// disjoint, covering, and balanced to within one item.
  static std::pair<std::size_t, std::size_t> slice(std::size_t n, int lane,
                                                   int lanes) {
    const std::size_t l = static_cast<std::size_t>(lane);
    const std::size_t k = static_cast<std::size_t>(lanes);
    return {n * l / k, n * (l + 1) / k};
  }

 private:
  void worker(int lane);
  void run_lane(int lane);

  const int lanes_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_work_;  ///< workers wait for a generation
  std::condition_variable cv_done_;  ///< run() waits for completions
  const std::function<void(int, int)>* job_ = nullptr;
  long long generation_ = 0;   ///< bumped by run() to release workers
  int pending_ = 0;            ///< lanes still inside the current job
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace slipflow::util
