#include "util/options.hpp"

#include <cstdlib>

#include "util/require.hpp"

namespace slipflow::util {

Options Options::parse(int argc, const char* const* argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        o.kv_[arg.substr(2)] = "1";
      } else {
        o.kv_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      o.positional_.push_back(std::move(arg));
    }
  }
  return o;
}

std::string Options::get(const std::string& key,
                         const std::string& fallback) const {
  touched_[key] = true;
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

long long Options::get(const std::string& key, long long fallback) const {
  touched_[key] = true;
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  SLIPFLOW_REQUIRE_MSG(end && *end == '\0',
                       "option --" << key << " expects an integer, got '"
                                   << it->second << "'");
  return v;
}

double Options::get(const std::string& key, double fallback) const {
  touched_[key] = true;
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  SLIPFLOW_REQUIRE_MSG(end && *end == '\0',
                       "option --" << key << " expects a number, got '"
                                   << it->second << "'");
  return v;
}

bool Options::get(const std::string& key, bool fallback) const {
  touched_[key] = true;
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  const std::string& s = it->second;
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  SLIPFLOW_REQUIRE_MSG(false, "option --" << key << " expects a bool, got '"
                                          << s << "'");
  return fallback;  // unreachable
}

bool Options::has(const std::string& key) const {
  touched_[key] = true;
  return kv_.count(key) > 0;
}

std::vector<std::string> Options::unused_keys() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : kv_) {
    (void)v;
    if (!touched_.count(k)) out.push_back(k);
  }
  return out;
}

std::vector<std::string> Options::known_keys() const {
  std::vector<std::string> out;
  out.reserve(touched_.size());
  for (const auto& [k, used] : touched_) {
    (void)used;
    out.push_back(k);  // touched_ is ordered, so this is already sorted
  }
  return out;
}

std::string Options::unknown_diagnostic() const {
  const std::vector<std::string> unknown = unused_keys();
  if (unknown.empty()) return {};
  std::string out;
  for (const std::string& k : unknown)
    out += "unknown option --" + k + "\n";
  out += "valid flags:";
  for (const std::string& k : known_keys()) out += " --" + k;
  out += "\n";
  return out;
}

}  // namespace slipflow::util
