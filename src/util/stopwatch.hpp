#pragma once
/// \file stopwatch.hpp
/// Wall-clock stopwatch for the real (thread-parallel) runner and the
/// kernel microbenchmarks.

#include <chrono>

namespace slipflow::util {

/// Monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace slipflow::util
