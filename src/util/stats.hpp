#pragma once
/// \file stats.hpp
/// Small statistics helpers used by the load predictors, the virtual
/// cluster and the benchmark harnesses.

#include <cstddef>
#include <span>
#include <vector>

namespace slipflow::util {

/// Arithmetic mean of a non-empty range.
double mean(std::span<const double> xs);

/// Population standard deviation of a non-empty range.
double stddev(std::span<const double> xs);

/// Harmonic mean K / sum(1/x_i) of a non-empty range of positive values.
///
/// This is the paper's load-index estimator (§3.4): it is dominated by the
/// *small* samples, so a single slow phase (load spike) barely moves it,
/// which is exactly the "lazy" behavior filtered remapping wants.
double harmonic_mean(std::span<const double> xs);

/// Minimum / maximum of a non-empty range.
double min(std::span<const double> xs);
double max(std::span<const double> xs);

/// Linear-interpolated percentile (q in [0,1]) of a non-empty range.
/// The input is copied and sorted; intended for reporting, not hot paths.
double percentile(std::span<const double> xs, double q);

/// Fixed-capacity ring buffer over the most recent N samples.
///
/// Used to hold the last-K phase times that feed the load predictors.
class SampleWindow {
 public:
  /// \param capacity maximum number of retained samples; must be > 0.
  explicit SampleWindow(std::size_t capacity);

  /// Append a sample, evicting the oldest one once full.
  void push(double x);

  /// Number of samples currently held (<= capacity()).
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buf_.size(); }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == buf_.size(); }

  /// Copy of the retained samples in insertion order (oldest first).
  std::vector<double> samples() const;

  /// Drop all samples.
  void clear();

 private:
  std::vector<double> buf_;
  std::size_t head_ = 0;  // index of the oldest sample
  std::size_t size_ = 0;
};

}  // namespace slipflow::util
