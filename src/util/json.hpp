#pragma once
/// \file json.hpp
/// Minimal JSON helpers shared by the observability exporters, the bench
/// summary writer, and the campaign-server job specs.
///
/// Emission (json_string/json_number) is deterministic: the same values
/// always serialize to the same bytes, which the observability
/// determinism tests rely on. Parsing (json_parse + JsonValue) is a
/// small recursive-descent RFC 8259 reader: objects, arrays, strings
/// (with escapes), numbers via std::from_chars (locale-independent),
/// true/false/null; nesting depth is capped so hostile input cannot
/// blow the stack. Malformed input throws json_error with a byte offset.

#include <charconv>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace slipflow::util {

/// RFC 8259 string escaping (quotes included in the result).
inline std::string json_string(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

/// Shortest round-trippable decimal form; non-finite values become null
/// (JSON has no NaN/Inf). std::to_chars is locale-independent, so the
/// output stays valid JSON even if linked code calls setlocale().
inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

inline std::string json_number(long long v) { return std::to_string(v); }

/// Thrown by json_parse on malformed input; `offset` is the byte index
/// of the first offending character.
class json_error : public std::runtime_error {
 public:
  json_error(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// A parsed JSON document. Object members are kept in a sorted map
/// (duplicate keys are a parse error), so re-serializing with dump() is
/// canonical: two specs that differ only in member order dump to the
/// same bytes — which is what the warm-state cache keys on.
class JsonValue {
 public:
  enum class Kind { null, boolean, number, string, array, object };
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue, std::less<>>;

  JsonValue() = default;  // null
  JsonValue(bool b) : kind_(Kind::boolean), bool_(b) {}
  JsonValue(double d) : kind_(Kind::number), num_(d) {}
  JsonValue(long long i) : kind_(Kind::number), num_(static_cast<double>(i)) {}
  JsonValue(std::string s) : kind_(Kind::string), str_(std::move(s)) {}
  JsonValue(const char* s) : kind_(Kind::string), str_(s) {}
  JsonValue(Array a) : kind_(Kind::array), arr_(std::move(a)) {}
  JsonValue(Object o) : kind_(Kind::object), obj_(std::move(o)) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::null; }
  bool is_bool() const { return kind_ == Kind::boolean; }
  bool is_number() const { return kind_ == Kind::number; }
  bool is_string() const { return kind_ == Kind::string; }
  bool is_array() const { return kind_ == Kind::array; }
  bool is_object() const { return kind_ == Kind::object; }

  /// Typed accessors; throw json_error(offset 0) on a kind mismatch so
  /// spec-validation call sites get a diagnostic, not UB.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup: nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;

  /// Convenience getters with defaults for flat config objects. A
  /// present member of the wrong kind throws json_error naming `key`.
  double number_or(std::string_view key, double fallback) const;
  long long int_or(std::string_view key, long long fallback) const;
  bool bool_or(std::string_view key, bool fallback) const;
  std::string string_or(std::string_view key, const std::string& fallback) const;

  /// Canonical serialization: sorted object keys, json_number formatting,
  /// no whitespace. Deterministic for equal values.
  std::string dump() const;

 private:
  Kind kind_ = Kind::null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Parse one JSON document; trailing non-whitespace is an error. The
/// nesting depth of arrays/objects is capped at `max_depth`.
JsonValue json_parse(std::string_view text, int max_depth = 64);

}  // namespace slipflow::util
