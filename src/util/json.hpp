#pragma once
/// \file json.hpp
/// Minimal JSON emission helpers shared by the observability exporters
/// and the bench summary writer. Emission only — nothing here parses —
/// and deterministic: the same values always serialize to the same
/// bytes, which the observability determinism tests rely on.

#include <charconv>
#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace slipflow::util {

/// RFC 8259 string escaping (quotes included in the result).
inline std::string json_string(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

/// Shortest round-trippable decimal form; non-finite values become null
/// (JSON has no NaN/Inf). std::to_chars is locale-independent, so the
/// output stays valid JSON even if linked code calls setlocale().
inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

inline std::string json_number(long long v) { return std::to_string(v); }

}  // namespace slipflow::util
