#pragma once
/// \file aligned.hpp
/// Cache-line/SIMD-register aligned allocation for field storage.
///
/// The tile kernels sweep the direction-major field arrays with vector
/// loads and stores. Those are issued unaligned (tile starts and push
/// offsets land anywhere), but aligning each array's base to 64 bytes
/// keeps whole cache lines inside one tile row and lets the padded
/// per-direction stride (see DistField) start every direction on its own
/// line — no direction straddles another's tail.

#include <cstddef>
#include <new>
#include <vector>

namespace slipflow::util {

/// Alignment of field storage: one cache line, which is also the widest
/// vector register in play (AVX-512, 8 doubles).
inline constexpr std::size_t kFieldAlignment = 64;

/// `n` rounded up to the next multiple of `m` (m > 0).
constexpr std::size_t round_up(std::size_t n, std::size_t m) {
  return (n + m - 1) / m * m;
}

/// Minimal std::allocator drop-in that over-aligns every allocation.
template <class T, std::size_t Align = kFieldAlignment>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0);

  AlignedAllocator() = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };
  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// The storage type of every scalar lattice array.
using AlignedDoubles = std::vector<double, AlignedAllocator<double>>;

}  // namespace slipflow::util
