#include "util/table.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/require.hpp"

namespace slipflow::util {

std::string format_number(double v) {
  std::ostringstream os;
  const double a = std::abs(v);
  if (v == std::floor(v) && a < 1e12) {
    os << static_cast<long long>(v);
  } else if (a >= 0.01 && a < 1e7) {
    os << std::fixed << std::setprecision(4) << v;
    std::string s = os.str();
    // trim trailing zeros but keep at least one decimal
    while (s.size() > 1 && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
    return s;
  } else {
    os << std::scientific << std::setprecision(3) << v;
  }
  return os.str();
}

namespace {
std::string cell_text(const Cell& c) {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* d = std::get_if<double>(&c)) return format_number(*d);
  return std::to_string(std::get<long long>(c));
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::header(std::vector<std::string> names) {
  SLIPFLOW_REQUIRE(rows_.empty());
  header_ = std::move(names);
}

void Table::row(std::vector<Cell> cells) {
  SLIPFLOW_REQUIRE_MSG(cells.size() == header_.size(),
                       "row width " << cells.size() << " != header width "
                                    << header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  std::vector<std::vector<std::string>> text;
  text.reserve(rows_.size());
  for (const auto& r : rows_) {
    std::vector<std::string> t;
    t.reserve(r.size());
    for (std::size_t c = 0; c < r.size(); ++c) {
      t.push_back(cell_text(r[c]));
      width[c] = std::max(width[c], t.back().size());
    }
    text.push_back(std::move(t));
  }
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::setw(static_cast<int>(width[c])) << cells[c];
      os << (c + 1 == cells.size() ? "\n" : "  ");
    }
  };
  line(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c], '-') << (c + 1 == header_.size() ? "\n" : "  ");
  }
  for (const auto& t : text) line(t);
}

void Table::write_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << csv_escape(header_[c]) << (c + 1 == header_.size() ? "\n" : ",");
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c)
      os << csv_escape(cell_text(r[c])) << (c + 1 == r.size() ? "\n" : ",");
  }
}

void Table::save_csv(const std::string& path) const {
  std::ofstream f(path);
  SLIPFLOW_REQUIRE_MSG(f.good(), "cannot open " << path);
  write_csv(f);
}

}  // namespace slipflow::util
