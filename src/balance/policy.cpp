#include "balance/policy.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace slipflow::balance {

TripletTargets triplet_targets(const NodeLoad& left, const NodeLoad& me,
                               const NodeLoad& right) {
  const double total_n = left.points + me.points + right.points;
  const double total_s = left.speed() + me.speed() + right.speed();
  SLIPFLOW_REQUIRE(total_s > 0.0);
  const double per_speed = total_n / total_s;
  return {left.speed() * per_speed, me.speed() * per_speed,
          right.speed() * per_speed};
}

long long resolve_pair(long long i_to_right, long long ip1_to_left,
                       long long min_transfer_points) {
  SLIPFLOW_REQUIRE(i_to_right >= 0 && ip1_to_left >= 0);
  const long long net = i_to_right - ip1_to_left;
  return std::llabs(net) >= min_transfer_points ? net : 0;
}

Proposal RemapPolicy::decide(const std::optional<NodeLoad>&, const NodeLoad&,
                             const std::optional<NodeLoad>&,
                             const BalanceConfig&) const {
  SLIPFLOW_REQUIRE_MSG(false, "policy '" << name()
                                         << "' makes no local decisions");
  return {};
}

std::vector<long long> RemapPolicy::decide_global(
    const std::vector<NodeLoad>&, const BalanceConfig&) const {
  SLIPFLOW_REQUIRE_MSG(false, "policy '" << name()
                                         << "' makes no global decisions");
  return {};
}

std::unique_ptr<RemapPolicy> RemapPolicy::create(const std::string& name) {
  if (name == "none") return std::make_unique<NoRemapPolicy>();
  if (name == "conservative") return std::make_unique<ConservativePolicy>();
  if (name == "filtered") return std::make_unique<FilteredPolicy>();
  if (name == "global") return std::make_unique<GlobalPolicy>();
  SLIPFLOW_REQUIRE_MSG(false, "unknown remap policy '" << name << "'");
  return nullptr;  // unreachable
}

namespace {

/// Shared body of the conservative and filtered schemes; they differ only
/// in how much of the computed imbalance they actually ship.
Proposal local_balance(const std::optional<NodeLoad>& left,
                       const NodeLoad& me,
                       const std::optional<NodeLoad>& right,
                       const BalanceConfig& cfg, bool over_redistribute) {
  // Balance over the nodes that exist (2 at the chain ends, 3 inside).
  double total_n = me.points;
  double total_s = me.speed();
  if (left) {
    total_n += left->points;
    total_s += left->speed();
  }
  if (right) {
    total_n += right->points;
    total_s += right->speed();
  }
  SLIPFLOW_REQUIRE(total_s > 0.0);
  const double per_speed = total_n / total_s;

  Proposal p;
  auto side_amount = [&](const NodeLoad& nb) -> long long {
    // Intended receiver gain: n'_nb - n_nb, positive when the neighbor
    // should end up with more points than it has.
    const double delta = nb.speed() * per_speed - nb.points;
    if (delta < static_cast<double>(cfg.min_transfer_points)) return 0;
    // The lazy filter: never move points from a fast node to a slow one —
    // a slow receiver also communicates sluggishly, so feeding it work
    // costs more than the cycles it contributes (Section 3.3).
    if (!cfg.allow_fast_to_slow && nb.speed() <= me.speed()) return 0;
    double amount = delta;
    if (over_redistribute) {
      // Over-redistribution: a confirmed slow node drains aggressively,
      // scaled by how much faster the receiver is (beta = S_recv / S_me).
      const double beta = std::clamp(nb.speed() / me.speed(), 1.0,
                                     cfg.over_redistribution_cap);
      amount *= beta;
    } else {
      amount *= cfg.conservative_factor;
    }
    return static_cast<long long>(std::llround(amount));
  };

  if (right) p.to_right = side_amount(*right);
  if (left) p.to_left = side_amount(*left);

  // Re-apply the threshold after scaling (the conservative factor can
  // push a marginal transfer below it).
  if (p.to_right < cfg.min_transfer_points) p.to_right = 0;
  if (p.to_left < cfg.min_transfer_points) p.to_left = 0;

  // Never propose shipping more points than we own; scale both sides
  // down proportionally if the aggressive amounts overshoot, and
  // re-apply the threshold to whatever the scaling left.
  const double mine = me.points;
  const double want = static_cast<double>(p.to_left + p.to_right);
  if (want > mine && want > 0.0) {
    const double scale = mine / want;
    p.to_left = static_cast<long long>(
        std::floor(static_cast<double>(p.to_left) * scale));
    p.to_right = static_cast<long long>(
        std::floor(static_cast<double>(p.to_right) * scale));
    if (p.to_right < cfg.min_transfer_points) p.to_right = 0;
    if (p.to_left < cfg.min_transfer_points) p.to_left = 0;
  }
  return p;
}

}  // namespace

Proposal ConservativePolicy::decide(const std::optional<NodeLoad>& left,
                                    const NodeLoad& me,
                                    const std::optional<NodeLoad>& right,
                                    const BalanceConfig& cfg) const {
  return local_balance(left, me, right, cfg, /*over_redistribute=*/false);
}

Proposal FilteredPolicy::decide(const std::optional<NodeLoad>& left,
                                const NodeLoad& me,
                                const std::optional<NodeLoad>& right,
                                const BalanceConfig& cfg) const {
  return local_balance(left, me, right, cfg, /*over_redistribute=*/true);
}

std::vector<long long> GlobalPolicy::decide_global(
    const std::vector<NodeLoad>& all, const BalanceConfig& cfg) const {
  SLIPFLOW_REQUIRE(!all.empty());
  (void)cfg;
  long long total = 0;
  double total_s = 0.0;
  for (const auto& n : all) {
    total += static_cast<long long>(std::llround(n.points));
    total_s += n.speed();
  }
  SLIPFLOW_REQUIRE(total_s > 0.0);

  // Proportional-to-speed targets, rounded with the largest-remainder
  // method so the point total is preserved exactly.
  std::vector<long long> target(all.size());
  std::vector<std::pair<double, std::size_t>> frac(all.size());
  long long assigned = 0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    const double ideal =
        static_cast<double>(total) * all[i].speed() / total_s;
    target[i] = static_cast<long long>(std::floor(ideal));
    if (target[i] < 1) target[i] = 1;  // a node always keeps something
    frac[i] = {ideal - std::floor(ideal), i};
    assigned += target[i];
  }
  std::sort(frac.begin(), frac.end(), std::greater<>());
  std::size_t k = 0;
  while (assigned < total) {
    target[frac[k % frac.size()].second] += 1;
    ++assigned;
    ++k;
  }
  while (assigned > total) {  // only possible via the >=1 clamps
    auto it = std::max_element(target.begin(), target.end());
    SLIPFLOW_REQUIRE(*it > 1);
    *it -= 1;
    --assigned;
  }
  return target;
}

}  // namespace slipflow::balance
