#pragma once
/// \file remapper.hpp
/// Per-node remapping controller and the plane-quantization helpers that
/// turn a policy's point-level decisions into whole-plane transfers.
///
/// Both runners (the real thread-parallel LBM and the virtual cluster)
/// instantiate one NodeBalancer per node and feed it measured phase
/// times; the balancer owns the predictor and the policy and produces
/// the node's load index and proposals. Everything here is deterministic
/// given the same inputs, so the two sides of a boundary always agree.

#include <memory>
#include <optional>

#include "balance/policy.hpp"
#include "balance/predictors.hpp"

namespace slipflow::balance {

/// Controller for one node's remapping state.
///
/// Phase times are normalized to time-per-point before entering the
/// prediction window, so migrations do not invalidate the history: after
/// shipping planes away a node's per-point speed is unchanged and the
/// predicted *phase* time automatically scales with its new point count.
class NodeBalancer {
 public:
  NodeBalancer(BalanceConfig cfg, std::shared_ptr<const RemapPolicy> policy);

  /// Record the node's own compute time for the phase that just finished,
  /// with the point count it carried during that phase.
  void record_phase(double seconds, long long points);

  /// True once the prediction window is full ("confirmed", Section 3.4).
  bool ready() const { return predictor_->ready(); }

  /// Predicted next-phase time if the node carries `points` points.
  double predicted_time(long long points) const;

  /// This node's load for policy decisions.
  NodeLoad self_load(long long points) const {
    return {static_cast<double>(points), predicted_time(points)};
  }

  /// Run the (local) policy for this node.
  Proposal decide(const std::optional<NodeLoad>& left, long long my_points,
                  const std::optional<NodeLoad>& right) const;

  const RemapPolicy& policy() const { return *policy_; }
  const BalanceConfig& config() const { return cfg_; }

 private:
  BalanceConfig cfg_;
  std::shared_ptr<const RemapPolicy> policy_;
  std::unique_ptr<LoadPredictor> predictor_;
};

/// Convert a net point flow across one boundary into whole yz-planes
/// (round to nearest), clamped so the donor keeps at least
/// `min_keep_planes`. Positive input = donor is the left node; the sign
/// is preserved. `donor_planes` is the current plane count of whichever
/// node the flow drains.
long long quantize_flow_to_planes(long long net_points, long long plane_cells,
                                  long long donor_planes,
                                  long long min_keep_planes = 1);

/// Boundary flows implied by a global target assignment: result[i] is the
/// point flow from node i to node i+1 (negative = leftward), computed as
/// the prefix sum of (current - target).
std::vector<long long> boundary_flows(const std::vector<long long>& current,
                                      const std::vector<long long>& target);

}  // namespace slipflow::balance
