#include "balance/predictors.hpp"

#include "util/require.hpp"
#include "util/stats.hpp"

namespace slipflow::balance {

std::unique_ptr<LoadPredictor> LoadPredictor::create(const std::string& name,
                                                     int window) {
  if (name == "harmonic") return std::make_unique<HarmonicMeanPredictor>(window);
  if (name == "arithmetic")
    return std::make_unique<ArithmeticMeanPredictor>(window);
  if (name == "last") return std::make_unique<LastValuePredictor>();
  if (name == "ewma") return std::make_unique<EwmaPredictor>();
  SLIPFLOW_REQUIRE_MSG(false, "unknown predictor '" << name << "'");
  return nullptr;  // unreachable
}

HarmonicMeanPredictor::HarmonicMeanPredictor(int window)
    : win_(static_cast<std::size_t>(window)) {
  SLIPFLOW_REQUIRE(window >= 1);
}

void HarmonicMeanPredictor::record(double t) {
  SLIPFLOW_REQUIRE(t > 0.0);
  win_.push(t);
}

double HarmonicMeanPredictor::predict() const {
  SLIPFLOW_REQUIRE(ready());
  const auto xs = win_.samples();
  return util::harmonic_mean(xs);
}

bool HarmonicMeanPredictor::ready() const { return win_.full(); }

void HarmonicMeanPredictor::reset() { win_.clear(); }

ArithmeticMeanPredictor::ArithmeticMeanPredictor(int window)
    : win_(static_cast<std::size_t>(window)) {
  SLIPFLOW_REQUIRE(window >= 1);
}

void ArithmeticMeanPredictor::record(double t) {
  SLIPFLOW_REQUIRE(t > 0.0);
  win_.push(t);
}

double ArithmeticMeanPredictor::predict() const {
  SLIPFLOW_REQUIRE(ready());
  const auto xs = win_.samples();
  return util::mean(xs);
}

bool ArithmeticMeanPredictor::ready() const { return win_.full(); }

void ArithmeticMeanPredictor::reset() { win_.clear(); }

void LastValuePredictor::record(double t) {
  SLIPFLOW_REQUIRE(t > 0.0);
  last_ = t;
  have_ = true;
}

double LastValuePredictor::predict() const {
  SLIPFLOW_REQUIRE(ready());
  return last_;
}

bool LastValuePredictor::ready() const { return have_; }

void LastValuePredictor::reset() { have_ = false; }

EwmaPredictor::EwmaPredictor(double alpha, int warmup)
    : alpha_(alpha), warmup_(warmup) {
  SLIPFLOW_REQUIRE(alpha > 0.0 && alpha <= 1.0);
  SLIPFLOW_REQUIRE(warmup >= 1);
}

void EwmaPredictor::record(double t) {
  SLIPFLOW_REQUIRE(t > 0.0);
  value_ = count_ == 0 ? t : alpha_ * t + (1.0 - alpha_) * value_;
  ++count_;
}

double EwmaPredictor::predict() const {
  SLIPFLOW_REQUIRE(ready());
  return value_;
}

bool EwmaPredictor::ready() const { return count_ >= warmup_; }

void EwmaPredictor::reset() {
  count_ = 0;
  value_ = 0.0;
}

}  // namespace slipflow::balance
