#include "balance/remapper.hpp"

#include <cmath>

namespace slipflow::balance {

NodeBalancer::NodeBalancer(BalanceConfig cfg,
                           std::shared_ptr<const RemapPolicy> policy)
    : cfg_(std::move(cfg)),
      policy_(std::move(policy)),
      predictor_(LoadPredictor::create(cfg_.predictor, cfg_.window)) {
  SLIPFLOW_REQUIRE(policy_ != nullptr);
  SLIPFLOW_REQUIRE(cfg_.window >= 1);
  SLIPFLOW_REQUIRE(cfg_.min_transfer_points >= 1);
  SLIPFLOW_REQUIRE(cfg_.conservative_factor > 0.0 &&
                   cfg_.conservative_factor <= 1.0);
  SLIPFLOW_REQUIRE(cfg_.over_redistribution_cap >= 1.0);
}

void NodeBalancer::record_phase(double seconds, long long points) {
  SLIPFLOW_REQUIRE(seconds > 0.0);
  SLIPFLOW_REQUIRE(points > 0);
  predictor_->record(seconds / static_cast<double>(points));
}

double NodeBalancer::predicted_time(long long points) const {
  SLIPFLOW_REQUIRE(ready());
  return predictor_->predict() * static_cast<double>(points);
}

Proposal NodeBalancer::decide(const std::optional<NodeLoad>& left,
                              long long my_points,
                              const std::optional<NodeLoad>& right) const {
  if (!ready()) return {};
  return policy_->decide(left, self_load(my_points), right, cfg_);
}

long long quantize_flow_to_planes(long long net_points, long long plane_cells,
                                  long long donor_planes,
                                  long long min_keep_planes) {
  SLIPFLOW_REQUIRE(plane_cells > 0);
  SLIPFLOW_REQUIRE(donor_planes >= 1);
  SLIPFLOW_REQUIRE(min_keep_planes >= 1);
  const long long magnitude = std::llabs(net_points);
  long long planes = (magnitude + plane_cells / 2) / plane_cells;
  const long long max_give = donor_planes - min_keep_planes;
  if (planes > max_give) planes = max_give < 0 ? 0 : max_give;
  return net_points >= 0 ? planes : -planes;
}

std::vector<long long> boundary_flows(const std::vector<long long>& current,
                                      const std::vector<long long>& target) {
  SLIPFLOW_REQUIRE(current.size() == target.size());
  SLIPFLOW_REQUIRE(!current.empty());
  std::vector<long long> flows(current.size() - 1);
  long long acc = 0;
  for (std::size_t i = 0; i + 1 < current.size(); ++i) {
    acc += current[i] - target[i];
    flows[i] = acc;
  }
  return flows;
}

}  // namespace slipflow::balance
