#pragma once
/// \file predictors.hpp
/// Per-node load prediction (Section 3.4 and the related-work discussion).
///
/// Each node records its own execution time for every phase and predicts
/// the time the *next* phase will take; that prediction is the "load
/// index" exchanged with neighbors before a remapping decision.
///
/// The paper's choice is the harmonic mean of the last K phases: it is
/// dominated by the fast samples, so a transient spike barely moves it
/// (lazy remapping), while a persistently slow node is still detected
/// after the window fills with slow samples. The alternatives here exist
/// for the ablation benchmark: predictors that chase the most recent
/// sample cause the "migration oscillation" the paper warns about.

#include <memory>
#include <string>

#include "util/stats.hpp"

namespace slipflow::balance {

/// Predicts the next phase time from the history of recorded phase times.
class LoadPredictor {
 public:
  virtual ~LoadPredictor() = default;

  /// Record the measured duration of the phase that just finished (> 0).
  virtual void record(double phase_seconds) = 0;

  /// Predicted duration of the next phase. Requires ready().
  virtual double predict() const = 0;

  /// True once enough history exists to predict with confidence. Remapping
  /// decisions must not fire before this — that is part of the paper's
  /// laziness ("no migration will be made unless this machine is really
  /// slow for the last phases").
  virtual bool ready() const = 0;

  /// Forget all history (used after a migration changed the local load).
  virtual void reset() = 0;

  virtual std::string name() const = 0;

  /// Factory by name: "harmonic", "arithmetic", "last", "ewma".
  static std::unique_ptr<LoadPredictor> create(const std::string& name,
                                               int window = 10);
};

/// The paper's estimator: K / sum(1/t_j) over the last K samples; ready
/// only when the window is full.
class HarmonicMeanPredictor final : public LoadPredictor {
 public:
  explicit HarmonicMeanPredictor(int window = 10);
  void record(double phase_seconds) override;
  double predict() const override;
  bool ready() const override;
  void reset() override;
  std::string name() const override { return "harmonic"; }

 private:
  util::SampleWindow win_;
};

/// Arithmetic mean of the last K samples (a spike moves it K times more
/// than the harmonic mean does for small spikes — less lazy).
class ArithmeticMeanPredictor final : public LoadPredictor {
 public:
  explicit ArithmeticMeanPredictor(int window = 10);
  void record(double phase_seconds) override;
  double predict() const override;
  bool ready() const override;
  void reset() override;
  std::string name() const override { return "arithmetic"; }

 private:
  util::SampleWindow win_;
};

/// Most-recent-sample predictor ("future load is closer to the most
/// recent data", refs [46, 13] in the paper) — the oscillation-prone
/// baseline.
class LastValuePredictor final : public LoadPredictor {
 public:
  void record(double phase_seconds) override;
  double predict() const override;
  bool ready() const override;
  void reset() override;
  std::string name() const override { return "last"; }

 private:
  double last_ = 0.0;
  bool have_ = false;
};

/// Exponentially weighted moving average with weight alpha on the newest
/// sample.
class EwmaPredictor final : public LoadPredictor {
 public:
  explicit EwmaPredictor(double alpha = 0.5, int warmup = 3);
  void record(double phase_seconds) override;
  double predict() const override;
  bool ready() const override;
  void reset() override;
  std::string name() const override { return "ewma"; }

 private:
  double alpha_;
  int warmup_;
  int count_ = 0;
  double value_ = 0.0;
};

}  // namespace slipflow::balance
