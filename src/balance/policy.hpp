#pragma once
/// \file policy.hpp
/// Remapping decision policies (Section 3) as pure functions of load
/// information, so that the exact same code drives both the real
/// thread-parallel LBM runner and the virtual-cluster performance model.
///
/// Local policies look at the (left, me, right) triplet; the global
/// policy looks at every node. The runners are responsible for the
/// corresponding communication (neighbor exchange vs allgather), for
/// conflict resolution between adjacent triplets, and for quantizing
/// transfers to whole yz-planes.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/require.hpp"

namespace slipflow::balance {

/// What one node knows about a node when deciding: its current number of
/// lattice points and its predicted next-phase time (the load index of
/// Section 3.4).
struct NodeLoad {
  double points = 0.0;
  double predicted_time = 0.0;

  /// Processing speed S = n / t (points per second).
  double speed() const {
    SLIPFLOW_REQUIRE(predicted_time > 0.0);
    return points / predicted_time;
  }
};

/// Tuning knobs shared by the policies.
struct BalanceConfig {
  /// Prediction window K (phases); also the "confirmed slow" confidence
  /// gate — no decisions fire until a node has K samples.
  int window = 10;
  /// Minimum number of points worth moving (paper: one 200x20 yz-plane of
  /// the 400x200x20 channel = 4000 points).
  long long min_transfer_points = 4000;
  /// delta divisor of the conservative scheme (ship delta/2).
  double conservative_factor = 0.5;
  /// Upper clamp on the over-redistribution scaling beta = S_recv/S_me,
  /// so an extremely slow node cannot be asked to serialize its entire
  /// slab in one remap step.
  double over_redistribution_cap = 4.0;
  /// Name of the LoadPredictor to instantiate per node.
  std::string predictor = "harmonic";
  /// Ablation switch: when true, the "never move points from a fast node
  /// to a slow node" filter (Section 3.3) is disabled and pure triplet
  /// balancing applies. The paper's schemes keep this false.
  bool allow_fast_to_slow = false;
};

/// Points a node proposes to ship to each neighbor (never negative; a
/// node only proposes *sending*, receiving follows from the neighbor's
/// proposal plus conflict resolution).
struct Proposal {
  long long to_left = 0;
  long long to_right = 0;
};

/// Ideal post-remap point counts for a (left, me, right) triplet: every
/// node finishes the next phase simultaneously when points are allotted
/// proportionally to speed — n'_j = S_j * (sum n) / (sum S) (Section 3.4).
struct TripletTargets {
  double left = 0.0, me = 0.0, right = 0.0;
};
TripletTargets triplet_targets(const NodeLoad& left, const NodeLoad& me,
                               const NodeLoad& right);

/// Resolve the two independent proposals across one boundary (node i's
/// triplet said "ship a points right", node i+1's triplet said "ship b
/// points left"): the net flow, re-checked against the threshold.
/// Positive = left-to-right flow.
long long resolve_pair(long long i_to_right, long long ip1_to_left,
                       long long min_transfer_points);

/// A remapping policy. decide() may be called with absent neighbors at
/// the chain ends; the triplet math then degrades to the 2-node balance.
class RemapPolicy {
 public:
  virtual ~RemapPolicy() = default;

  virtual std::string name() const = 0;

  /// True for policies that need every node's load (allgather) rather
  /// than the neighbor exchange. The runners choose the communication
  /// pattern — and pay its cost — based on this.
  virtual bool global() const { return false; }

  /// Local decision for this node given its neighborhood.
  virtual Proposal decide(const std::optional<NodeLoad>& left,
                          const NodeLoad& me,
                          const std::optional<NodeLoad>& right,
                          const BalanceConfig& cfg) const;

  /// Global decision: target point counts for all nodes (same order),
  /// summing to the current total. Only meaningful when global().
  virtual std::vector<long long> decide_global(
      const std::vector<NodeLoad>& all, const BalanceConfig& cfg) const;

  /// Factory by name: "none", "conservative", "filtered", "global".
  static std::unique_ptr<RemapPolicy> create(const std::string& name);
};

/// Never moves anything — the paper's "No-remapping" baseline.
class NoRemapPolicy final : public RemapPolicy {
 public:
  std::string name() const override { return "none"; }
  Proposal decide(const std::optional<NodeLoad>&, const NodeLoad&,
                  const std::optional<NodeLoad>&,
                  const BalanceConfig&) const override {
    return {};
  }
};

/// Local triplet balance with the lazy filters (threshold, never move
/// fast-to-slow) but shipping only conservative_factor * delta — the
/// classic distributed load-sharing behavior ([42] in the paper).
class ConservativePolicy final : public RemapPolicy {
 public:
  std::string name() const override { return "conservative"; }
  Proposal decide(const std::optional<NodeLoad>& left, const NodeLoad& me,
                  const std::optional<NodeLoad>& right,
                  const BalanceConfig& cfg) const override;
};

/// The paper's contribution: same lazy filters, but a confirmed slow node
/// over-redistributes — it ships beta * delta with beta = S_recv / S_me
/// (clamped), aggressively draining work from the node that would
/// otherwise drag every synchronized phase.
class FilteredPolicy final : public RemapPolicy {
 public:
  std::string name() const override { return "filtered"; }
  Proposal decide(const std::optional<NodeLoad>& left, const NodeLoad& me,
                  const std::optional<NodeLoad>& right,
                  const BalanceConfig& cfg) const override;
};

/// Global information exchange: all loads are gathered and points are
/// re-assigned proportionally to node speeds (lazy prediction, no
/// over-redistribution) — the comparison scheme of Section 4.2.3.
class GlobalPolicy final : public RemapPolicy {
 public:
  std::string name() const override { return "global"; }
  bool global() const override { return true; }
  std::vector<long long> decide_global(const std::vector<NodeLoad>& all,
                                       const BalanceConfig& cfg) const override;
};

}  // namespace slipflow::balance
