#pragma once
/// \file worker.hpp
/// The `slipflow_worker` process: one rank of the parallel LBM over the
/// socket transport. The launcher (transport/launcher.hpp) forks+execs N
/// of these; each connects the SocketComm mesh, runs ParallelLbm, and
/// optionally writes observables (rank 0) and per-rank metrics.
///
/// worker_main is the real entry point, kept in the library so tests can
/// exercise flag parsing, and so the observable collection below is the
/// same code in-process (ThreadComm) and out-of-process (SocketComm) —
/// which is exactly what the byte-identical determinism test compares.

#include <string>

#include "lbm/simulation.hpp"
#include "sim/parallel_lbm.hpp"
#include "transport/communicator.hpp"

namespace slipflow::sim {

/// Which observable lines collect_observables emits.
enum class ObservableSet {
  /// Everything: masses, per-rank plane ownership / migration counts,
  /// and the mid-channel profiles.
  full,
  /// Physics only: masses and profiles, NO per-rank ownership lines.
  /// This is the served-job default: physics is bit-identical across
  /// rank counts, transports, kernel backends and checkpoint resumes,
  /// while plane ownership is a scheduling detail that legitimately
  /// differs between a straight-through run and a crash-recovered one.
  physics,
};

/// Collect the run's physical + migration observables as deterministic
/// text: component masses, per-rank plane ownership and migration
/// counts (ObservableSet::full only), and the mid-channel velocity /
/// water-density y-profiles of every global plane. All floating-point
/// values print as hexfloats, so equal strings mean byte-identical
/// doubles. Timing values are deliberately excluded — they differ
/// between backends by construction.
///
/// Collective: every rank must call it; the full string materializes on
/// rank 0, other ranks return "".
std::string collect_observables(ParallelLbm& run,
                                transport::Communicator& comm,
                                const lbm::Extents& global,
                                ObservableSet set = ObservableSet::full);

/// CLI entry point of slipflow_worker (see the flag list in worker.cpp).
/// Returns 0 on success; prints the failure to stderr and returns
/// nonzero otherwise (2 = bad flags, 3 = runtime failure).
int worker_main(int argc, const char* const* argv);

}  // namespace slipflow::sim
