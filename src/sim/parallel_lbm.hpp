#pragma once
/// \file parallel_lbm.hpp
/// The paper's parallel program (Figure 2) with real data: each rank owns
/// a slab of the microchannel, exchanges halos with its x-neighbors every
/// phase, and every REMAPPING_INTERVAL phases runs the remapping protocol
/// — measuring its own compute speed, exchanging load indexes with its
/// chain neighbors (or allgathering for the global policy), and migrating
/// whole yz-planes of actual lattice state between slabs.
///
/// The physical domain is x-periodic (rank 0 and rank P-1 exchange halos
/// across the wrap), while the remapping topology is the paper's *linear
/// array* — planes never migrate across the periodic seam.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "balance/remapper.hpp"
#include "lbm/kernels.hpp"
#include "lbm/observables.hpp"
#include "lbm/simulation.hpp"
#include "obs/profiler.hpp"
#include "transport/communicator.hpp"
#include "util/thread_pool.hpp"

namespace slipflow::obs {
class AsyncWriter;
}

namespace slipflow::sim {

/// Per-phase schedule of ParallelLbm.
enum class StepMode {
  /// The legacy sequence: each exchange blocks between compute stages
  /// (compute -> exchange_f -> compute -> exchange_density -> compute).
  blocking,
  /// Communication/computation overlap: post each halo exchange
  /// (irecv + extract + isend), run the halo-independent bulk of the
  /// phase — across the rank's thread pool — while frames are in
  /// flight, then wait() and finish the halo-dependent remainder.
  /// Physics is bit-identical to blocking for any thread count (every
  /// lattice slot is written exactly once per phase either way).
  /// Requires the plan kernel path; with legacy kernels the runner
  /// silently steps blocking.
  overlap,
};

/// Periodic on-disk output of a running simulation. Disabled by default.
/// With `async` set (the default), snapshots are packed on the phase
/// thread and handed to a background obs::AsyncWriter, so no phase ever
/// blocks on disk; bytes on disk are identical to the synchronous path.
struct OutputOptions {
  /// Phases between collective checkpoints (0 = never). Phase P writes
  /// <checkpoint_prefix>.<P>.ckpt (all ranks, one file).
  int checkpoint_every = 0;
  std::string checkpoint_prefix;
  /// Phases between VTK snapshots (0 = never). Phase P, rank R writes
  /// <vtk_prefix>.<P>.r<R>.vtk (per-rank tiles; see lbm/vtk.hpp).
  int vtk_every = 0;
  std::string vtk_prefix;
  /// false = write inline (synchronous), for contrast and debugging.
  bool async = true;
  /// Tear-proof periodic checkpoints (sync path only): planes go to
  /// <path>.tmp and rank 0 renames after the completion barrier, so a
  /// crash mid-write can never leave a full-sized file of half-written
  /// planes under the final name. The campaign server requires this for
  /// the checkpoints its crash recovery restarts from.
  bool atomic_checkpoints = false;
};

struct RunnerConfig {
  lbm::Extents global;
  lbm::FluidParams fluid;
  /// Solid walls at the y / z extents (else periodic).
  bool walls_y = true;
  bool walls_z = true;
  /// Tangential wall velocities, indexed by ChannelGeometry::Wall
  /// (y_low, y_high, z_low, z_high); all zero = resting walls.
  std::array<lbm::Vec3, 4> wall_velocity{};
  balance::BalanceConfig balance;
  /// Kernel implementation the runner steps with. The plan path (default)
  /// is bit-identical to legacy; rebuilds of the streaming plan after a
  /// migration are timed under the "plan" span, outside "remap".
  lbm::KernelPath kernels = lbm::KernelPath::plan;
  /// Step schedule; see StepMode. Overlap is the default for the same
  /// reason the plan path is: bit-identical results, faster wall clock.
  StepMode step = StepMode::overlap;
  /// Lanes of the per-rank thread pool that sweeps the overlap phases'
  /// halo-independent bulk. 1 = no extra threads. Results are
  /// bit-identical for any value (static write-disjoint partition).
  int threads = 1;
  /// Remap policy name: "none", "conservative", "filtered", "global".
  std::string policy = "none";
  /// Phases between remapping checks.
  int remap_interval = 10;
  /// Optional artificial per-rank slowdown for experiments on this
  /// machine: rank r sleeps slowdown[r] x (its measured compute time)
  /// after each phase's compute, emulating a node at share
  /// 1/(1+slowdown[r]). Empty = no injection.
  std::vector<double> slowdown;
  /// Shared metrics sink (one shard per rank, ranks() >= comm.size());
  /// null = each runner keeps a private registry, readable through
  /// profiler(). See DESIGN.md "Observability" for the metric schema.
  obs::MetricsRegistry* metrics = nullptr;
  /// Per-rank time source for ALL stage timing, including the compute
  /// times fed to the load predictors. Null = wall clock; tests inject
  /// obs::CountingClock so CI scheduling noise never reaches the
  /// balancer.
  obs::ClockFactory clock_factory;
  /// Periodic checkpoint/VTK output; see OutputOptions.
  OutputOptions output;
};

/// Per-rank cost/ownership summary after a run.
struct RankStats {
  int rank = 0;
  long long planes = 0;          ///< owned planes at the end
  double compute_seconds = 0.0;  ///< kernels (incl. injected slowdown)
  double comm_seconds = 0.0;     ///< halo exchanges
  double remap_seconds = 0.0;    ///< remapping protocol + migration
  long long planes_sent = 0;
  long long planes_received = 0;
};

/// One rank's instance of the parallel simulation.
class ParallelLbm {
 public:
  ParallelLbm(RunnerConfig cfg, transport::Communicator& comm);
  ~ParallelLbm();  // out of line: RingExchanger is an incomplete type here

  /// Initialize densities from a function of global coordinates (all
  /// ranks must pass the same function) and prime forces/velocities.
  void initialize(const std::function<double(std::size_t, lbm::index_t,
                                             lbm::index_t, lbm::index_t)>&
                      init_density);
  void initialize_uniform();

  /// Advance `phases` phases, remapping on the configured interval.
  void run(int phases);

  const lbm::Slab& slab() const { return *slab_; }
  lbm::Slab& slab() { return *slab_; }
  const RankStats& stats() const { return stats_; }

  /// This rank's profiler (stage spans, counters, injected clock).
  obs::PhaseProfiler& profiler() { return *prof_; }
  const obs::PhaseProfiler& profiler() const { return *prof_; }

  /// Gather the per-rank stats on every rank (allgather).
  std::vector<RankStats> gather_stats();

  /// Recompute the mixture observables (total density + macroscopic
  /// velocity) from the migrated state: density-halo exchange + the
  /// force/velocity kernel. Collective. Plane migration moves f, n and
  /// ueq but reallocates the slab, so the u_macro field a migration
  /// leaves behind is zeroed; a run whose final act was a remap (or a
  /// restore that stepped zero phases) would otherwise report zero
  /// velocity profiles. The recompute is a per-cell function of state
  /// that IS migration-invariant, and on an unmigrated slab it is
  /// byte-idempotent (same inputs, same kernel, same order) — call it
  /// before collecting profile observables.
  void refresh_observables();

  /// Gather a full-domain y-profile on rank 0 (empty on other ranks).
  /// All ranks must call these collectively.
  std::vector<double> gather_velocity_profile_y(lbm::index_t gx,
                                                lbm::index_t z);
  std::vector<double> gather_density_profile_y(std::size_t component,
                                               lbm::index_t gx,
                                               lbm::index_t z);

  /// Total mass of one component across all ranks (identical everywhere).
  double global_mass(std::size_t component);

  /// Total mass of every component in one vector collective; element c
  /// is byte-identical to global_mass(c).
  std::vector<double> global_masses();

  /// Component masses folded in GLOBAL PLANE ORDER instead of rank
  /// order: per-plane sums (each plane has exactly one owner, so the
  /// element-wise reduction adds exact zeros) combined x = 0..nx-1.
  /// Byte-identical across rank counts, transports and migration
  /// histories — the mass observable of the served "physics" set, where
  /// a crash-recovered or warm-started job must reproduce a
  /// straight-through run exactly even though its migration history
  /// differs. global_masses() keeps the historical rank-ordered fold.
  std::vector<double> global_masses_ordered();

  /// Collective checkpoint: rank 0 creates the file, then every rank
  /// writes its own plane range. Because the format is per-plane, the
  /// checkpoint can later be restored on a *different* number of ranks.
  void save_checkpoint(const std::string& path, long long phase = 0);

  /// Collective restore: every rank loads the planes of its current
  /// extent. Counts as initialization. Returns the stored phase count.
  long long load_checkpoint(const std::string& path);

  /// Like save_checkpoint, but the plane payload goes through the
  /// background writer as one positional write (rank 0 still creates
  /// the file synchronously, then a barrier). The file is complete only
  /// after every rank's flush_output() — run() flushes at its end.
  void save_checkpoint_async(const std::string& path, long long phase = 0);

  /// Block until every queued async output is on disk; rethrows the
  /// first writer error. run() calls this at its end; call it yourself
  /// before reading an async-written file back mid-run.
  void flush_output();

 private:
  class RingExchanger;

  /// Build the slab's streaming plan if the plan path needs one and it is
  /// missing (first run, or dropped by a migration rebuild); the build is
  /// recorded under the "plan" span — outside "remap", so fig09's
  /// remap-cost story stays honest.
  void ensure_plan();

  /// Overlap applies only to the plan kernel path (legacy kernels have
  /// no interior/boundary split to hide communication behind).
  bool overlap_mode() const {
    return cfg_.step == StepMode::overlap &&
           cfg_.kernels == lbm::KernelPath::plan;
  }

  /// One phase of the legacy blocking schedule (spans: collide, halo_f,
  /// stream_density, halo_density, force_velocity).
  void step_blocking();
  /// One phase of the overlap schedule (spans: collide, halo_post_f,
  /// interior_stream, halo_wait_f, boundary_stream, halo_post_density,
  /// interior_force, halo_wait_density, boundary_force).
  void step_overlap();
  /// Injected slowdown + the per-phase stats/metrics epilogue shared by
  /// both schedules. `t` = the clock reading that closed the last span.
  void finish_phase(double phase_begin, double t, double compute);

  /// Periodic checkpoint/VTK hook, run after the remap block of an
  /// output phase under the "io" span. Reads the clock exactly twice in
  /// both the async and sync paths, so enabling async never shifts the
  /// injected-clock sequence the load balancer sees.
  void write_outputs();

  void remap_step();
  void remap_local();
  void remap_global();
  /// Donor-side transfer: detach k planes at `side` and ship them; k may
  /// be clamped to 0, in which case an empty header still goes out so the
  /// receiver never blocks.
  void send_planes(int peer, lbm::Side side, long long k);
  void recv_planes(int peer, lbm::Side side);

  int left_neighbor() const { return comm_.rank() > 0 ? comm_.rank() - 1 : -1; }
  int right_neighbor() const {
    return comm_.rank() + 1 < comm_.size() ? comm_.rank() + 1 : -1;
  }

  RunnerConfig cfg_;
  transport::Communicator& comm_;
  std::shared_ptr<const lbm::ChannelGeometry> geom_;
  std::unique_ptr<lbm::Slab> slab_;
  std::unique_ptr<RingExchanger> halo_;
  std::shared_ptr<const balance::RemapPolicy> policy_;
  std::unique_ptr<balance::NodeBalancer> balancer_;
  std::unique_ptr<obs::PhaseProfiler> prof_;
  std::unique_ptr<obs::AsyncWriter> writer_;  ///< created on first async job
  RankStats stats_;
  double slowdown_factor_ = 0.0;
  double cells_updated_ = 0.0;  ///< fluid-cell updates, for the MLUPS gauge
  long long phases_done_ = 0;
  bool initialized_ = false;

  // Overlap-mode state: the pool is created on the first overlapped
  // run(); per-lane cell counts and the interior/halo-wait split feed
  // the thread/<t>/cells_updated counters and the overlap_efficiency
  // gauge published at the end of each run().
  std::unique_ptr<util::ThreadPool> pool_;
  lbm::ForcePsiCache psi_cache_;
  std::vector<double> thread_cells_;
  double interior_seconds_ = 0.0;
  double halo_wait_seconds_ = 0.0;
};

/// Convenience: the initial even decomposition (same rule as the virtual
/// cluster): returns {x_begin, nx_local} of `rank` among `size` ranks.
std::pair<lbm::index_t, lbm::index_t> initial_extent(lbm::index_t planes_total,
                                                     int size, int rank);

}  // namespace slipflow::sim
