/// slipflow_worker — one rank of the parallel LBM over SocketComm.
/// Launched by transport::launch_workers; see sim/worker.cpp for flags.

#include "sim/worker.hpp"

int main(int argc, char** argv) {
  return slipflow::sim::worker_main(argc, argv);
}
