#include "sim/parallel_lbm.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <utility>

#include "lbm/checkpoint.hpp"
#include "lbm/observables.hpp"
#include "lbm/stepper.hpp"
#include "lbm/vtk.hpp"
#include "obs/async_writer.hpp"

namespace slipflow::sim {

namespace {
// Tags of the runner's protocol. Rightward = toward higher rank.
constexpr int kTagFRight = 10;
constexpr int kTagFLeft = 11;
constexpr int kTagNRight = 12;
constexpr int kTagNLeft = 13;
constexpr int kTagInfo = 20;
constexpr int kTagProposal = 21;
constexpr int kTagPlanes = 22;
constexpr int kTagProfile = 23;

/// Wire bytes of one halo exchange: one message per direction (left and
/// right), sizeof(double) bytes per payload double.
constexpr double kHaloMessagesPerExchange = 2.0;
double halo_exchange_bytes(lbm::index_t doubles_per_message) {
  return kHaloMessagesPerExchange * static_cast<double>(sizeof(double)) *
         static_cast<double>(doubles_per_message);
}
}  // namespace

std::pair<lbm::index_t, lbm::index_t> initial_extent(lbm::index_t planes_total,
                                                     int size, int rank) {
  SLIPFLOW_REQUIRE(size >= 1 && rank >= 0 && rank < size);
  SLIPFLOW_REQUIRE(planes_total >= size);
  const lbm::index_t base = planes_total / size;
  const lbm::index_t rem = planes_total % size;
  const lbm::index_t mine = base + (rank < rem ? 1 : 0);
  const lbm::index_t begin =
      static_cast<lbm::index_t>(rank) * base + std::min<lbm::index_t>(rank, rem);
  return {begin, mine};
}

/// Halo exchange over the periodic ring of ranks, split into a
/// nonblocking post half (irecv + extract + isend, staged through two
/// persistent per-direction buffers — no per-step allocation and no
/// serialization of the two extractions through one scratch) and a
/// finish half (wait + insert). The blocking exchange_* overrides are
/// the composition, so message contents and the per-(src, tag) arrival
/// order are identical in both step modes and across all backends.
class ParallelLbm::RingExchanger final : public lbm::HaloExchanger {
 public:
  explicit RingExchanger(transport::Communicator& comm) : comm_(comm) {}

  void post_f(lbm::Slab& slab) {
    const auto n = static_cast<std::size_t>(slab.f_halo_doubles());
    from_left_ = comm_.irecv(left_peer(), kTagFRight);
    from_right_ = comm_.irecv(right_peer(), kTagFLeft);
    // my right-boundary populations travel rightward to my right peer
    right_buf_.resize(n);
    slab.extract_f_halo(lbm::Side::right, right_buf_);
    comm_.isend(right_peer(), kTagFRight, right_buf_);
    left_buf_.resize(n);
    slab.extract_f_halo(lbm::Side::left, left_buf_);
    comm_.isend(left_peer(), kTagFLeft, left_buf_);
  }

  void finish_f(lbm::Slab& slab) {
    slab.insert_f_halo(lbm::Side::left, from_left_->wait());
    slab.insert_f_halo(lbm::Side::right, from_right_->wait());
    from_left_.reset();
    from_right_.reset();
  }

  void post_density(lbm::Slab& slab) {
    const auto n = static_cast<std::size_t>(slab.density_halo_doubles());
    from_left_ = comm_.irecv(left_peer(), kTagNRight);
    from_right_ = comm_.irecv(right_peer(), kTagNLeft);
    right_buf_.resize(n);
    slab.extract_density_halo(lbm::Side::right, right_buf_);
    comm_.isend(right_peer(), kTagNRight, right_buf_);
    left_buf_.resize(n);
    slab.extract_density_halo(lbm::Side::left, left_buf_);
    comm_.isend(left_peer(), kTagNLeft, left_buf_);
  }

  void finish_density(lbm::Slab& slab) {
    slab.insert_density_halo(lbm::Side::left, from_left_->wait());
    slab.insert_density_halo(lbm::Side::right, from_right_->wait());
    from_left_.reset();
    from_right_.reset();
  }

  void exchange_f(lbm::Slab& slab) override {
    post_f(slab);
    finish_f(slab);
  }

  void exchange_density(lbm::Slab& slab) override {
    post_density(slab);
    finish_density(slab);
  }

 private:
  int left_peer() const {
    return (comm_.rank() + comm_.size() - 1) % comm_.size();
  }
  int right_peer() const { return (comm_.rank() + 1) % comm_.size(); }

  transport::Communicator& comm_;
  // Staging for the two directions' isends; every backend copies the
  // payload before isend returns, so reusing them next phase is safe.
  std::vector<double> right_buf_, left_buf_;
  transport::RecvHandlePtr from_left_, from_right_;
};

ParallelLbm::ParallelLbm(RunnerConfig cfg, transport::Communicator& comm)
    : cfg_(std::move(cfg)), comm_(comm) {
  SLIPFLOW_REQUIRE(cfg_.remap_interval >= 1);
  SLIPFLOW_REQUIRE(cfg_.threads >= 1);
  {
    auto geom = std::make_shared<lbm::ChannelGeometry>(
        cfg_.global, nullptr, cfg_.walls_y, cfg_.walls_z);
    for (int w = 0; w < 4; ++w) {
      const lbm::Vec3& u = cfg_.wall_velocity[static_cast<std::size_t>(w)];
      if (u.norm2() > 0.0)
        geom->set_wall_velocity(static_cast<lbm::ChannelGeometry::Wall>(w),
                                u);
    }
    geom_ = std::move(geom);
  }
  const auto [begin, mine] =
      initial_extent(cfg_.global.nx, comm_.size(), comm_.rank());
  slab_ = std::make_unique<lbm::Slab>(geom_, cfg_.fluid, begin, mine);
  halo_ = std::make_unique<RingExchanger>(comm_);
  policy_ = balance::RemapPolicy::create(cfg_.policy);
  balancer_ = std::make_unique<balance::NodeBalancer>(cfg_.balance, policy_);
  stats_.rank = comm_.rank();
  if (cfg_.metrics != nullptr)
    SLIPFLOW_REQUIRE_MSG(cfg_.metrics->ranks() >= comm_.size(),
                         "metrics registry needs one shard per rank");
  prof_ = std::make_unique<obs::PhaseProfiler>(
      cfg_.metrics, cfg_.metrics != nullptr ? comm_.rank() : 0,
      cfg_.clock_factory ? cfg_.clock_factory(comm_.rank()) : nullptr);
  if (!cfg_.slowdown.empty()) {
    SLIPFLOW_REQUIRE(cfg_.slowdown.size() ==
                     static_cast<std::size_t>(comm_.size()));
    slowdown_factor_ = cfg_.slowdown[static_cast<std::size_t>(comm_.rank())];
    SLIPFLOW_REQUIRE(slowdown_factor_ >= 0.0);
  }
}

ParallelLbm::~ParallelLbm() = default;

void ParallelLbm::initialize(
    const std::function<double(std::size_t, lbm::index_t, lbm::index_t,
                               lbm::index_t)>& init_density) {
  slab_->initialize(init_density);
  lbm::prime(*slab_, *halo_);
  initialized_ = true;
}

void ParallelLbm::initialize_uniform() {
  slab_->initialize_uniform();
  lbm::prime(*slab_, *halo_);
  initialized_ = true;
}

void ParallelLbm::ensure_plan() {
  if (cfg_.kernels != lbm::KernelPath::plan || slab_->has_plan()) return;
  const double t0 = prof_->now();
  slab_->plan();
  if (lbm::active_kernel_backend() != lbm::KernelBackend::scalar)
    slab_->tiles();  // rebuilt with the plan so the rebuild span covers it
  prof_->record_span("plan", t0, prof_->now());
}

void ParallelLbm::run(int phases) {
  SLIPFLOW_REQUIRE_MSG(initialized_, "call initialize() before run()");
  // All timing below reads the injected clock through the profiler —
  // never util::Stopwatch — so the compute times that feed the load
  // predictor come from the same (possibly deterministic) source the
  // trace records.
  ensure_plan();
  const bool overlap = overlap_mode();
  if (overlap && pool_ == nullptr) {
    pool_ = std::make_unique<util::ThreadPool>(cfg_.threads);
    thread_cells_.assign(static_cast<std::size_t>(cfg_.threads), 0.0);
  }
  for (int p = 1; p <= phases; ++p) {
    prof_->begin_phase(++phases_done_);
    comm_.note_progress(phases_done_);
    if (overlap)
      step_overlap();
    else
      step_blocking();

    // --- lattice point remapping --- (lines 20-32)
    if (cfg_.policy != "none" && p % cfg_.remap_interval == 0) {
      const double r0 = prof_->now();
      remap_step();
      const double r1 = prof_->now();
      // record_span folds the duration into the "time/remap" counter
      prof_->record_span("remap", r0, r1);
      prof_->add("remap_invocations", 1.0);
      stats_.remap_seconds += r1 - r0;
      // A migration rebuilt the slab and dropped its plan; rebuild it
      // under the "plan" span so the cost is visible but never mixed
      // into the remap numbers.
      ensure_plan();
    }

    // --- periodic output --- packs a snapshot and (by default) hands
    // it to the background writer; the phase never blocks on disk.
    if (cfg_.output.checkpoint_every > 0 || cfg_.output.vtk_every > 0)
      write_outputs();
  }
  flush_output();
  if (writer_ != nullptr) {
    // Cumulative writer counters, as gauges so repeated run() calls
    // overwrite instead of double-count.
    const obs::AsyncWriterStats ws = writer_->stats();
    prof_->set("time/io_async", ws.write_seconds);
    prof_->set("io/bytes_queued", static_cast<double>(ws.bytes_queued));
    prof_->set("io/bytes_written", static_cast<double>(ws.bytes_written));
    prof_->set("io/jobs_written", static_cast<double>(ws.jobs_written));
    prof_->set("io/submit_block_seconds", ws.submit_block_seconds);
  }
  stats_.planes = slab_->nx_local();
  prof_->set("planes_end", static_cast<double>(slab_->nx_local()));
  prof_->set("phases_done", static_cast<double>(phases_done_));
  if (stats_.compute_seconds > 0.0)
    prof_->set("mlups", cells_updated_ / stats_.compute_seconds / 1e6);
  if (overlap) {
    // The efficiency of the overlap: of the time the phase had to cover
    // communication, the fraction spent computing (halo waits are the
    // comm that compute could not hide).
    const double window = interior_seconds_ + halo_wait_seconds_;
    if (window > 0.0)
      prof_->set("overlap_efficiency", interior_seconds_ / window);
    // Per-lane fold of the threaded sweeps, published from the owning
    // thread (lanes never touch the registry themselves).
    for (std::size_t lane = 0; lane < thread_cells_.size(); ++lane) {
      if (thread_cells_[lane] == 0.0) continue;
      prof_->add("thread/" + std::to_string(lane) + "/cells_updated",
                 thread_cells_[lane]);
      thread_cells_[lane] = 0.0;
    }
  }
}

void ParallelLbm::finish_phase(double phase_begin, double t, double compute) {
  if (slowdown_factor_ > 0.0) {
    // emulate a node that keeps only 1/(1+s) of its CPU
    const double extra = slowdown_factor_ * compute;
    std::this_thread::sleep_for(std::chrono::duration<double>(extra));
    prof_->record_span("slowdown", t, prof_->now());
    compute += extra;
  }
  stats_.compute_seconds += compute;
  prof_->add("time/compute", compute);
  prof_->observe("phase_seconds", prof_->now() - phase_begin);
  balancer_->record_phase(std::max(compute, 1e-9), slab_->owned_cells());

  const double phase_cells =
      static_cast<double>(cfg_.kernels == lbm::KernelPath::plan
                              ? slab_->plan().fluid_cells()
                              : slab_->owned_cells());
  cells_updated_ += phase_cells;
  prof_->add("cells_updated", phase_cells);
}

void ParallelLbm::step_blocking() {
  const bool plan_path = cfg_.kernels == lbm::KernelPath::plan;
  const double phase_begin = prof_->now();

  // --- compute: collide --- (Figure 2 line 4; the plan path only
  // pre-collides the two exchange-facing planes here and folds the rest
  // of the collision into the fused stream below)
  if (plan_path)
    lbm::collide_boundary_planes(*slab_);
  else
    lbm::collide(*slab_);
  double t = prof_->now();
  prof_->record_span("collide", phase_begin, t);
  double compute = t - phase_begin;

  // --- communication: f halos --- (line 8)
  double t0 = t;
  halo_->exchange_f(*slab_);
  t = prof_->now();
  prof_->record_span("halo_f", t0, t);
  prof_->add("halo_bytes", halo_exchange_bytes(slab_->f_halo_doubles()));
  stats_.comm_seconds += t - t0;
  prof_->add("time/comm", t - t0);

  // --- compute: stream + bounce-back + densities --- (lines 5,10,11)
  t0 = t;
  if (plan_path)
    lbm::fused_collide_stream(*slab_);
  else
    lbm::stream(*slab_);
  lbm::compute_density(*slab_);
  t = prof_->now();
  prof_->record_span("stream_density", t0, t);
  compute += t - t0;

  // --- communication: density halos --- (line 14)
  t0 = t;
  halo_->exchange_density(*slab_);
  t = prof_->now();
  prof_->record_span("halo_density", t0, t);
  prof_->add("halo_bytes",
             halo_exchange_bytes(slab_->density_halo_doubles()));
  stats_.comm_seconds += t - t0;
  prof_->add("time/comm", t - t0);

  // --- compute: forces + velocity --- (lines 16,17)
  t0 = t;
  if (plan_path)
    lbm::compute_forces_and_velocity_plan(*slab_);
  else
    lbm::compute_forces_and_velocity(*slab_);
  t = prof_->now();
  prof_->record_span("force_velocity", t0, t);
  compute += t - t0;

  finish_phase(phase_begin, t, compute);
}

void ParallelLbm::step_overlap() {
  lbm::Slab& slab = *slab_;
  const lbm::StreamingPlan& plan = slab.plan();
  // Which kernel backend this step runs, read once so every slice of the
  // phase agrees. On a tile backend the pool slices *tile* indices, never
  // raw runs: a slice boundary can then never split a tile, so each cell
  // takes the same vector-lane-vs-tail code path for any rank x thread
  // count — the partition-invariance the run slicing had.
  const lbm::KernelBackend backend = lbm::active_kernel_backend();
  const bool tile_path = backend != lbm::KernelBackend::scalar;
  if (tile_path) slab.tiles();  // build on this thread, not under the pool
  const lbm::index_t nxl = slab.nx_local();
  const lbm::index_t pc = slab.storage().plane_cells();
  const double phase_begin = prof_->now();

  // --- collide the exchange-facing planes --- (their post-collision
  // populations are the f-halo payload, so they must exist first)
  lbm::collide_boundary_planes(slab);
  double t = prof_->now();
  prof_->record_span("collide", phase_begin, t);
  double compute = t - phase_begin;
  double comm = 0.0, interior = 0.0, halo_wait = 0.0;

  // --- post the f halos --- irecvs, then extract + isend both planes
  double t0 = t;
  halo_->post_f(slab);
  t = prof_->now();
  prof_->record_span("halo_post_f", t0, t);
  comm += t - t0;
  prof_->add("halo_bytes", halo_exchange_bytes(slab.f_halo_doubles()));

  // --- the collide+stream sweep, threaded, while frames fly --- every
  // stream cell (boundary ones included) reads owned state only and owns
  // a disjoint set of f_post slots; the exchanged planes enter the phase
  // through the finish pulls below, never here.
  t0 = t;
  const auto& sruns = plan.stream_interior();
  const std::size_t nruns = sruns.size();
  const std::size_t nbound = plan.stream_boundary().size();
  if (tile_path) {
    const auto& stiles = slab.tiles().stream_tiles();
    const std::size_t ntiles = stiles.size();
    pool_->run([&](int lane, int lanes) {
      const auto [tb, te] = util::ThreadPool::slice(ntiles, lane, lanes);
      const auto [cb, ce] = util::ThreadPool::slice(nbound, lane, lanes);
      lbm::fused_collide_stream_tiles(slab, backend, tb, te);
      lbm::fused_collide_stream_range(slab, 0, 0, cb, ce);
      double cells = static_cast<double>(ce - cb);
      for (std::size_t ti = tb; ti < te; ++ti)
        cells += static_cast<double>(stiles[ti].count);
      thread_cells_[static_cast<std::size_t>(lane)] += cells;
    });
  } else {
    pool_->run([&](int lane, int lanes) {
      const auto [rb, re] = util::ThreadPool::slice(nruns, lane, lanes);
      const auto [cb, ce] = util::ThreadPool::slice(nbound, lane, lanes);
      lbm::fused_collide_stream_range(slab, rb, re, cb, ce);
      double cells = static_cast<double>(ce - cb);
      for (std::size_t ri = rb; ri < re; ++ri)
        cells += static_cast<double>(sruns[ri].count);
      thread_cells_[static_cast<std::size_t>(lane)] += cells;
    });
  }
  t = prof_->now();
  prof_->record_span("interior_stream", t0, t);
  compute += t - t0;
  interior += t - t0;

  // --- wait for the neighbor planes ---
  t0 = t;
  halo_->finish_f(slab);
  t = prof_->now();
  prof_->record_span("halo_wait_f", t0, t);
  comm += t - t0;
  halo_wait += t - t0;

  // --- finish streaming (halo pulls, swap, solids) and the densities of
  // the exchange-facing planes — the payload of the second exchange
  t0 = t;
  lbm::fused_collide_stream_finish(slab);
  lbm::compute_density_planes(slab, 1, 2);
  if (nxl > 1) lbm::compute_density_planes(slab, nxl, nxl + 1);
  t = prof_->now();
  prof_->record_span("boundary_stream", t0, t);
  compute += t - t0;

  // --- post the density halos ---
  t0 = t;
  halo_->post_density(slab);
  t = prof_->now();
  prof_->record_span("halo_post_density", t0, t);
  comm += t - t0;
  prof_->add("halo_bytes", halo_exchange_bytes(slab.density_halo_doubles()));

  // --- inner densities + owned psi + the inner force sweep --- the
  // force cells of planes [2, nx_local-1] gather psi from owned planes
  // only, so the whole chain runs while the density halo is in flight.
  t0 = t;
  if (nxl > 2) {
    const auto inner_planes = static_cast<std::size_t>(nxl - 2);
    pool_->run([&](int lane, int lanes) {
      const auto [pb, pe] = util::ThreadPool::slice(inner_planes, lane, lanes);
      if (pb < pe)
        lbm::compute_density_planes(slab,
                                    2 + static_cast<lbm::index_t>(pb),
                                    2 + static_cast<lbm::index_t>(pe));
    });
  }
  lbm::force_psi_prepare(slab, psi_cache_, pc, (nxl + 1) * pc,
                         /*reset=*/true);
  const std::size_t fi_b = plan.force_interior_inner_begin();
  const std::size_t fi_n = plan.force_interior_inner_end() - fi_b;
  const std::size_t fb_b = plan.force_boundary_inner_begin();
  const std::size_t fb_n = plan.force_boundary_inner_end() - fb_b;
  const std::size_t ft_b = tile_path ? slab.tiles().force_inner_begin() : 0;
  const std::size_t ft_n =
      tile_path ? slab.tiles().force_inner_end() - ft_b : 0;
  pool_->run([&](int lane, int lanes) {
    const auto [cb, ce] = util::ThreadPool::slice(fb_n, lane, lanes);
    if (tile_path) {
      const auto [tb, te] = util::ThreadPool::slice(ft_n, lane, lanes);
      lbm::compute_forces_tiles(slab, psi_cache_, backend, ft_b + tb,
                                ft_b + te);
      lbm::compute_forces_plan_range(slab, psi_cache_, 0, 0, fb_b + cb,
                                     fb_b + ce);
    } else {
      const auto [rb, re] = util::ThreadPool::slice(fi_n, lane, lanes);
      lbm::compute_forces_plan_range(slab, psi_cache_, fi_b + rb, fi_b + re,
                                     fb_b + cb, fb_b + ce);
    }
  });
  t = prof_->now();
  prof_->record_span("interior_force", t0, t);
  compute += t - t0;
  interior += t - t0;

  // --- wait for the neighbor densities ---
  t0 = t;
  halo_->finish_density(slab);
  t = prof_->now();
  prof_->record_span("halo_wait_density", t0, t);
  comm += t - t0;
  halo_wait += t - t0;

  // --- halo psi + the edge force planes (1 and nx_local) ---
  t0 = t;
  lbm::force_psi_prepare(slab, psi_cache_, 0, pc, /*reset=*/false);
  lbm::force_psi_prepare(slab, psi_cache_, (nxl + 1) * pc, (nxl + 2) * pc,
                         /*reset=*/false);
  if (tile_path) {
    lbm::compute_forces_tiles(slab, psi_cache_, backend, 0, ft_b);
    lbm::compute_forces_tiles(slab, psi_cache_, backend, ft_b + ft_n,
                              slab.tiles().force_tiles().size());
    lbm::compute_forces_plan_range(slab, psi_cache_, 0, 0, 0, fb_b);
    lbm::compute_forces_plan_range(slab, psi_cache_, 0, 0, fb_b + fb_n,
                                   plan.force_boundary().size());
  } else {
    lbm::compute_forces_plan_range(slab, psi_cache_, 0, fi_b, 0, fb_b);
    lbm::compute_forces_plan_range(slab, psi_cache_, fi_b + fi_n,
                                   plan.force_interior().size(), fb_b + fb_n,
                                   plan.force_boundary().size());
  }
  t = prof_->now();
  prof_->record_span("boundary_force", t0, t);
  compute += t - t0;

  stats_.comm_seconds += comm;
  prof_->add("time/comm", comm);
  interior_seconds_ += interior;
  halo_wait_seconds_ += halo_wait;
  prof_->add("time/interior", interior);
  prof_->add("time/halo_wait", halo_wait);
  finish_phase(phase_begin, t, compute);
}

void ParallelLbm::write_outputs() {
  const OutputOptions& out = cfg_.output;
  const bool ckpt =
      out.checkpoint_every > 0 && phases_done_ % out.checkpoint_every == 0;
  const bool vtk = out.vtk_every > 0 && phases_done_ % out.vtk_every == 0;
  if (!ckpt && !vtk) return;
  const double t0 = prof_->now();
  const std::string tag = std::to_string(phases_done_);
  if (ckpt) {
    const std::string path = out.checkpoint_prefix + "." + tag + ".ckpt";
    if (out.async) {
      save_checkpoint_async(path, phases_done_);
    } else if (out.atomic_checkpoints) {
      // save_checkpoint's final barrier guarantees every rank's planes
      // are on disk before rank 0 publishes the file under its real
      // name; readers (the server's recovery scan) only ever see
      // complete checkpoints.
      save_checkpoint(path + ".tmp", phases_done_);
      if (comm_.rank() == 0 &&
          std::rename((path + ".tmp").c_str(), path.c_str()) != 0)
        throw transport::comm_error("cannot publish checkpoint " + path);
    } else {
      save_checkpoint(path, phases_done_);
    }
  }
  if (vtk) {
    const std::string path = out.vtk_prefix + "." + tag + ".r" +
                             std::to_string(comm_.rank()) + ".vtk";
    if (out.async) {
      if (writer_ == nullptr) writer_ = std::make_unique<obs::AsyncWriter>();
      writer_->submit_file(path, lbm::vtk_to_string(*slab_));
    } else {
      lbm::write_vtk(*slab_, path);
    }
  }
  prof_->record_span("io", t0, prof_->now());
}

void ParallelLbm::remap_step() {
  if (policy_->global())
    remap_global();
  else
    remap_local();
}

void ParallelLbm::send_planes(int peer, lbm::Side side, long long k) {
  const lbm::index_t pc = slab_->plane_cells();
  std::vector<double> msg(1 +
                          static_cast<std::size_t>(slab_->migration_doubles(k)));
  msg[0] = static_cast<double>(k);
  if (k > 0) {
    slab_->detach_planes(side, k, std::span<double>(msg).subspan(1));
    stats_.planes_sent += k;
    prof_->add("planes_sent", static_cast<double>(k));
    prof_->add("migration_bytes", 8.0 * static_cast<double>(msg.size()));
  }
  (void)pc;
  comm_.send(peer, kTagPlanes, msg);
}

void ParallelLbm::recv_planes(int peer, lbm::Side side) {
  const std::vector<double> msg = comm_.recv(peer, kTagPlanes);
  SLIPFLOW_REQUIRE(!msg.empty());
  const auto k = static_cast<long long>(msg[0]);
  if (k > 0) {
    slab_->attach_planes(side, k,
                         std::span<const double>(msg).subspan(1));
    stats_.planes_received += k;
    prof_->add("planes_received", static_cast<double>(k));
  }
}

void ParallelLbm::remap_local() {
  const lbm::index_t pc = slab_->plane_cells();
  const long long my_points = slab_->owned_cells();
  const bool ready = balancer_->ready();

  // 1. Exchange (points, predicted time, ready) with chain neighbors.
  const double info[3] = {
      static_cast<double>(my_points),
      ready ? balancer_->predicted_time(my_points) : 0.0,
      ready ? 1.0 : 0.0};
  const int ln = left_neighbor();
  const int rn = right_neighbor();
  if (ln >= 0) comm_.send(ln, kTagInfo, std::span<const double>(info, 3));
  if (rn >= 0) comm_.send(rn, kTagInfo, std::span<const double>(info, 3));
  std::optional<balance::NodeLoad> left, right;
  std::vector<double> linfo, rinfo;
  if (ln >= 0) {
    linfo = comm_.recv(ln, kTagInfo);
    if (linfo[2] != 0.0) left = balance::NodeLoad{linfo[0], linfo[1]};
  }
  if (rn >= 0) {
    rinfo = comm_.recv(rn, kTagInfo);
    if (rinfo[2] != 0.0) right = balance::NodeLoad{rinfo[0], rinfo[1]};
  }

  // 2. Local decision, then exchange proposals across each boundary.
  const balance::Proposal prop = balancer_->decide(left, my_points, right);
  if (ln >= 0) {
    const double v = static_cast<double>(prop.to_left);
    comm_.send(ln, kTagProposal, std::span<const double>(&v, 1));
  }
  if (rn >= 0) {
    const double v = static_cast<double>(prop.to_right);
    comm_.send(rn, kTagProposal, std::span<const double>(&v, 1));
  }
  long long left_to_me = 0, right_to_me = 0;
  if (ln >= 0)
    left_to_me = static_cast<long long>(comm_.recv(ln, kTagProposal)[0]);
  if (rn >= 0)
    right_to_me = static_cast<long long>(comm_.recv(rn, kTagProposal)[0]);

  // 3. Conflict resolution per boundary (both sides compute the same
  //    net), then donor-clamped plane transfers. The header carries the
  //    actual k, so clamping never needs cross-rank agreement.
  const long long min_t = cfg_.balance.min_transfer_points;
  const long long net_right =
      rn >= 0 ? balance::resolve_pair(prop.to_right, right_to_me, min_t) : 0;
  const long long net_left =
      ln >= 0 ? balance::resolve_pair(left_to_me, prop.to_left, min_t) : 0;
  // net_left > 0 means the left node ships to me (its rightward flow).

  // All sends first (buffered), then receives — deadlock-free.
  long long avail = slab_->nx_local();
  if (net_right > 0) {
    const long long k = balance::quantize_flow_to_planes(net_right, pc, avail);
    avail -= k;
    send_planes(rn, lbm::Side::right, k);
  }
  if (net_left < 0) {
    const long long k =
        std::llabs(balance::quantize_flow_to_planes(net_left, pc, avail));
    send_planes(ln, lbm::Side::left, k);
  }
  if (net_right < 0) recv_planes(rn, lbm::Side::right);
  if (net_left > 0) recv_planes(ln, lbm::Side::left);
}

void ParallelLbm::remap_global() {
  const lbm::index_t pc = slab_->plane_cells();
  const long long my_points = slab_->owned_cells();
  const bool ready = balancer_->ready();
  const double info[3] = {
      static_cast<double>(my_points),
      ready ? balancer_->predicted_time(my_points) : 0.0,
      ready ? 1.0 : 0.0};
  const std::vector<double> all =
      comm_.allgather(std::span<const double>(info, 3));

  const int n = comm_.size();
  std::vector<balance::NodeLoad> loads;
  std::vector<long long> current;
  loads.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const std::size_t o = 3 * static_cast<std::size_t>(i);
    if (all[o + 2] == 0.0) return;  // someone's window not full yet
    loads.push_back(balance::NodeLoad{all[o], all[o + 1]});
    current.push_back(static_cast<long long>(all[o]));
  }
  const std::vector<long long> target =
      policy_->decide_global(loads, cfg_.balance);
  const std::vector<long long> flows =
      balance::boundary_flows(current, target);

  // Every rank deterministically simulates the clamped execution plan.
  std::vector<long long> planes(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    planes[static_cast<std::size_t>(i)] =
        current[static_cast<std::size_t>(i)] / pc;
  struct Transfer {
    int donor, recv;
    long long k;
  };
  std::vector<Transfer> plan;
  for (int b = 0; b + 1 < n; ++b) {
    const long long f = flows[static_cast<std::size_t>(b)];
    if (std::llabs(f) < cfg_.balance.min_transfer_points) continue;
    const int donor = f > 0 ? b : b + 1;
    const int recv = f > 0 ? b + 1 : b;
    const long long k = std::llabs(balance::quantize_flow_to_planes(
        f, pc, planes[static_cast<std::size_t>(donor)]));
    if (k == 0) continue;
    planes[static_cast<std::size_t>(donor)] -= k;
    planes[static_cast<std::size_t>(recv)] += k;
    plan.push_back({donor, recv, k});
  }

  const int me = comm_.rank();
  for (const Transfer& tr : plan) {
    if (tr.donor != me) continue;
    send_planes(tr.recv, tr.recv > me ? lbm::Side::right : lbm::Side::left,
                tr.k);
  }
  for (const Transfer& tr : plan) {
    if (tr.recv != me) continue;
    recv_planes(tr.donor, tr.donor > me ? lbm::Side::right : lbm::Side::left);
  }
}

std::vector<RankStats> ParallelLbm::gather_stats() {
  stats_.planes = slab_->nx_local();
  const double mine[6] = {static_cast<double>(stats_.planes),
                          stats_.compute_seconds,
                          stats_.comm_seconds,
                          stats_.remap_seconds,
                          static_cast<double>(stats_.planes_sent),
                          static_cast<double>(stats_.planes_received)};
  const std::vector<double> all =
      comm_.allgather(std::span<const double>(mine, 6));
  std::vector<RankStats> out(static_cast<std::size_t>(comm_.size()));
  for (int r = 0; r < comm_.size(); ++r) {
    const std::size_t o = 6 * static_cast<std::size_t>(r);
    auto& s = out[static_cast<std::size_t>(r)];
    s.rank = r;
    s.planes = static_cast<long long>(all[o]);
    s.compute_seconds = all[o + 1];
    s.comm_seconds = all[o + 2];
    s.remap_seconds = all[o + 3];
    s.planes_sent = static_cast<long long>(all[o + 4]);
    s.planes_received = static_cast<long long>(all[o + 5]);
  }
  return out;
}

namespace {
/// Gather pattern shared by the profile getters: the plane owner ships
/// the profile to rank 0.
std::vector<double> gather_profile(
    transport::Communicator& comm, const lbm::Slab& slab, lbm::index_t gx,
    const std::function<std::vector<double>()>& local_profile) {
  const double ext[2] = {static_cast<double>(slab.x_begin()),
                         static_cast<double>(slab.nx_local())};
  const std::vector<double> all =
      comm.allgather(std::span<const double>(ext, 2));
  int owner = -1;
  for (int r = 0; r < comm.size(); ++r) {
    const auto b = static_cast<lbm::index_t>(all[2 * static_cast<std::size_t>(r)]);
    const auto nl =
        static_cast<lbm::index_t>(all[2 * static_cast<std::size_t>(r) + 1]);
    if (gx >= b && gx < b + nl) {
      owner = r;
      break;
    }
  }
  SLIPFLOW_REQUIRE_MSG(owner >= 0, "no rank owns plane " << gx);
  if (comm.rank() == owner) {
    std::vector<double> prof = local_profile();
    if (owner == 0) return prof;
    comm.send(0, kTagProfile, prof);
    return {};
  }
  if (comm.rank() == 0) return comm.recv(owner, kTagProfile);
  return {};
}
}  // namespace

void ParallelLbm::refresh_observables() {
  SLIPFLOW_REQUIRE_MSG(initialized_, "call initialize() before refresh");
  // Same exchange + kernel the stepper runs, so on an unmigrated slab
  // every ueq / total-density / velocity value is recomputed to the
  // exact bytes it already holds; on a freshly migrated (or restored)
  // slab the zeroed mixture fields are rebuilt from the migrated state.
  ensure_plan();
  halo_->exchange_density(*slab_);
  if (cfg_.kernels == lbm::KernelPath::plan)
    lbm::compute_forces_and_velocity_plan(*slab_);
  else
    lbm::compute_forces_and_velocity(*slab_);
}

std::vector<double> ParallelLbm::gather_velocity_profile_y(lbm::index_t gx,
                                                           lbm::index_t z) {
  return gather_profile(comm_, *slab_, gx, [&] {
    return lbm::velocity_profile_y(*slab_, gx, z);
  });
}

std::vector<double> ParallelLbm::gather_density_profile_y(
    std::size_t component, lbm::index_t gx, lbm::index_t z) {
  return gather_profile(comm_, *slab_, gx, [&] {
    return lbm::density_profile_y(*slab_, component, gx, z);
  });
}

double ParallelLbm::global_mass(std::size_t component) {
  return comm_.allreduce_sum(lbm::owned_mass(*slab_, component));
}

std::vector<double> ParallelLbm::global_masses() {
  // One vector collective instead of num_components() scalar reductions;
  // the rank-ordered fold keeps each component's sum byte-identical to
  // the scalar global_mass() result.
  std::vector<double> mine(slab_->num_components());
  for (std::size_t c = 0; c < mine.size(); ++c)
    mine[c] = lbm::owned_mass(*slab_, c);
  return comm_.allreduce_sum(std::span<const double>(mine));
}

std::vector<double> ParallelLbm::global_masses_ordered() {
  const std::size_t comps = slab_->num_components();
  const std::size_t nx = static_cast<std::size_t>(cfg_.global.nx);
  // One slot per (global plane, component); only the owner writes it, so
  // the element-wise allreduce adds exact zeros and the slot value is
  // independent of the reduction's rank order.
  std::vector<double> per_plane(nx * comps, 0.0);
  for (lbm::index_t gx = slab_->x_begin(); gx < slab_->x_end(); ++gx)
    for (std::size_t c = 0; c < comps; ++c)
      per_plane[static_cast<std::size_t>(gx) * comps + c] =
          lbm::plane_mass(*slab_, c, gx) *
          cfg_.fluid.components[c].molecular_mass;
  const std::vector<double> all =
      comm_.allreduce_sum(std::span<const double>(per_plane));
  std::vector<double> masses(comps, 0.0);
  for (std::size_t gx = 0; gx < nx; ++gx)
    for (std::size_t c = 0; c < comps; ++c) masses[c] += all[gx * comps + c];
  return masses;
}

void ParallelLbm::save_checkpoint(const std::string& path, long long phase) {
  SLIPFLOW_REQUIRE_MSG(initialized_, "nothing to checkpoint yet");
  if (comm_.rank() == 0) {
    lbm::begin_checkpoint(cfg_.global, slab_->num_components(), phase,
                          slab_->migration_doubles(1), path);
  }
  comm_.barrier();  // the file must exist before anyone writes planes
  lbm::write_checkpoint_planes(*slab_, path);
  comm_.barrier();  // and be complete before anyone reads it back
}

long long ParallelLbm::load_checkpoint(const std::string& path) {
  const long long phase = lbm::load_checkpoint_planes(*slab_, path);
  comm_.barrier();
  initialized_ = true;
  // Adopt the stored phase (matching sequential Simulation): subsequent
  // run() calls continue the absolute numbering, so heartbeat phases and
  // periodic-output file names stay consistent across a resume — which
  // is what lets the campaign server's recovery pick the newest
  // checkpoint by file name across attempts.
  phases_done_ = phase;
  return phase;
}

void ParallelLbm::save_checkpoint_async(const std::string& path,
                                        long long phase) {
  SLIPFLOW_REQUIRE_MSG(initialized_, "nothing to checkpoint yet");
  if (comm_.rank() == 0) {
    lbm::begin_checkpoint(cfg_.global, slab_->num_components(), phase,
                          slab_->migration_doubles(1), path);
  }
  comm_.barrier();  // the file must exist before anyone queues planes
  if (writer_ == nullptr) writer_ = std::make_unique<obs::AsyncWriter>();
  // The owned planes are a contiguous x-range, so the whole payload is
  // one positional write; a recycled buffer keeps this double-buffered.
  std::vector<std::byte> bytes = writer_->take_buffer();
  lbm::pack_checkpoint_planes(*slab_, bytes);
  writer_->submit_pwrite(
      path,
      lbm::checkpoint_plane_offset(slab_->migration_doubles(1),
                                   slab_->x_begin()),
      std::move(bytes));
}

void ParallelLbm::flush_output() {
  if (writer_ != nullptr) writer_->flush();
}

}  // namespace slipflow::sim
