#include "sim/worker.hpp"

#include <cstdio>
#include <exception>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "lbm/kernels.hpp"
#include "obs/async_writer.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "transport/shm_comm.hpp"
#include "transport/socket_comm.hpp"
#include "util/options.hpp"

namespace slipflow::sim {

namespace {

/// Shortest exact representation of a double: printf hexfloat.
std::string hexd(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

}  // namespace

std::string collect_observables(ParallelLbm& run,
                                transport::Communicator& comm,
                                const lbm::Extents& global) {
  const std::vector<double> masses = run.global_masses();
  const std::vector<RankStats> stats = run.gather_stats();

  std::ostringstream os;
  if (comm.rank() == 0) {
    for (std::size_t c = 0; c < masses.size(); ++c)
      os << "mass " << c << " " << hexd(masses[c]) << "\n";
    for (const RankStats& s : stats)
      os << "rank " << s.rank << " planes " << s.planes << " sent "
         << s.planes_sent << " received " << s.planes_received << "\n";
  }
  // Mid-channel y-profiles of every global plane: covers every rank's
  // slab wherever the remapper left the boundaries.
  const lbm::index_t z = global.nz / 2;
  for (lbm::index_t gx = 0; gx < global.nx; ++gx) {
    const std::vector<double> ux = run.gather_velocity_profile_y(gx, z);
    const std::vector<double> rho = run.gather_density_profile_y(0, gx, z);
    if (comm.rank() == 0) {
      for (std::size_t j = 0; j < ux.size(); ++j)
        os << "ux " << gx << " " << j << " " << hexd(ux[j]) << "\n";
      for (std::size_t j = 0; j < rho.size(); ++j)
        os << "rho0 " << gx << " " << j << " " << hexd(rho[j]) << "\n";
    }
  }
  return os.str();
}

int worker_main(int argc, const char* const* argv) {
  const util::Options opts = util::Options::parse(argc, argv);

  // --- transport ---
  const int rank = static_cast<int>(opts.get("rank", 0LL));
  const int nranks = static_cast<int>(opts.get("ranks", 1LL));
  transport::SocketCommConfig sc;
  sc.rank = rank;
  sc.nranks = nranks;
  sc.dir = opts.get("socket-dir", std::string{});
  sc.connect_timeout = opts.get("connect-timeout", 10.0);
  sc.comm.recv_timeout = opts.get("recv-timeout", 30.0);
  sc.heartbeat_path = opts.get("heartbeat-sock", std::string{});
  sc.heartbeat_interval = opts.get("heartbeat-interval", 0.25);
  // socket = Unix-domain sockets (default), shm = mmap'd rings,
  // auto = shm when the socket dir can host mmap'd segments.
  const std::string transport = opts.get("transport", std::string("socket"));
  const long long shm_session = opts.get("shm-session", 0LL);
  const long long shm_ring_bytes = opts.get("shm-ring-bytes", 0LL);
  if (transport != "socket" && transport != "shm" && transport != "auto") {
    std::fprintf(stderr, "rank %d: unknown --transport=%s\n", rank,
                 transport.c_str());
    return 2;
  }

  // --- fault injection ---
  sc.fault.kill_at_phase = opts.get("fault-kill-phase", -1LL);
  sc.fault.stop_at_phase = opts.get("fault-stop-phase", -1LL);
  sc.fault.drop_dest = static_cast<int>(opts.get("fault-drop-dest", -2LL));
  sc.fault.drop_tag = static_cast<int>(opts.get("fault-drop-tag", -1LL));
  sc.fault.drop_count = static_cast<int>(opts.get("fault-drop-count", 1LL));
  sc.fault.send_delay = opts.get("fault-send-delay", 0.0);
  sc.fault.throttle_bytes_per_sec = opts.get("fault-throttle-bps", 0.0);

  // --- problem ---
  RunnerConfig cfg;
  cfg.global = lbm::Extents{opts.get("nx", 16LL), opts.get("ny", 6LL),
                            opts.get("nz", 4LL)};
  cfg.fluid = lbm::FluidParams::microchannel_defaults();
  cfg.policy = opts.get("policy", std::string("filtered"));
  cfg.remap_interval = static_cast<int>(opts.get("remap-interval", 5LL));
  cfg.balance.window = static_cast<int>(opts.get("window", 3LL));
  cfg.balance.min_transfer_points = opts.get("min-transfer", 24LL);
  cfg.threads = static_cast<int>(opts.get("threads", 1LL));
  const std::string step = opts.get("step", std::string("overlap"));
  if (step == "blocking") {
    cfg.step = StepMode::blocking;
  } else if (step == "overlap") {
    cfg.step = StepMode::overlap;
  } else {
    std::fprintf(stderr, "rank %d: unknown --step=%s\n", rank, step.c_str());
    return 2;
  }
  // Which tile-kernel backend the hot kernels dispatch to. "auto" keeps
  // the CPUID default (widest supported SIMD); naming a backend that this
  // build/CPU cannot run is a configuration error, not a fallback.
  const std::string backend_name =
      opts.get("kernel-backend", std::string("auto"));
  if (backend_name != "auto") {
    const std::optional<lbm::KernelBackend> kb =
        lbm::parse_kernel_backend(backend_name);
    if (!kb) {
      std::fprintf(stderr, "rank %d: unknown --kernel-backend=%s\n", rank,
                   backend_name.c_str());
      return 2;
    }
    if (!lbm::kernel_backend_supported(*kb)) {
      std::fprintf(stderr,
                   "rank %d: --kernel-backend=%s not supported by this "
                   "build/CPU\n",
                   rank, backend_name.c_str());
      return 2;
    }
    lbm::set_kernel_backend(*kb);
  }

  const int phases = static_cast<int>(opts.get("phases", 40LL));
  const int slow_rank = static_cast<int>(opts.get("slow-rank", -1LL));
  const double slow_factor = opts.get("slow-factor", 0.0);
  if (slow_rank >= 0 && slow_factor > 0.0) {
    cfg.slowdown.assign(static_cast<std::size_t>(nranks), 0.0);
    if (slow_rank < nranks)
      cfg.slowdown[static_cast<std::size_t>(slow_rank)] = slow_factor;
  }

  // --- determinism: injected clocks (see obs/clock.hpp) ---
  // --clock=counting makes "measured" times a pure function of the call
  // sequence, so the remapping decisions — and hence the observables —
  // are identical across backends and runs.
  const std::string clock = opts.get("clock", std::string("wall"));
  const double clock_step = opts.get("clock-step", 1e-3);
  const int slow_clock_rank = static_cast<int>(opts.get("slow-clock-rank", -1LL));
  const double slow_clock_factor = opts.get("slow-clock-factor", 4.0);
  if (clock == "counting") {
    cfg.clock_factory = [=](int r) -> std::shared_ptr<obs::Clock> {
      const double tick =
          r == slow_clock_rank ? clock_step * slow_clock_factor : clock_step;
      return std::make_shared<obs::CountingClock>(tick);
    };
  } else if (clock != "wall") {
    std::fprintf(stderr, "rank %d: unknown --clock=%s\n", rank, clock.c_str());
    return 2;
  }

  // --- output ---
  const std::string observables_out =
      opts.get("observables-out", std::string{});
  const std::string metrics_out = opts.get("metrics-out", std::string{});
  cfg.output.checkpoint_every =
      static_cast<int>(opts.get("checkpoint-every", 0LL));
  cfg.output.checkpoint_prefix = opts.get("checkpoint-out", std::string{});
  cfg.output.vtk_every = static_cast<int>(opts.get("vtk-every", 0LL));
  cfg.output.vtk_prefix = opts.get("vtk-out", std::string{});
  const std::string io = opts.get("io", std::string("async"));
  if (io == "async") {
    cfg.output.async = true;
  } else if (io == "sync") {
    cfg.output.async = false;
  } else {
    std::fprintf(stderr, "rank %d: unknown --io=%s\n", rank, io.c_str());
    return 2;
  }

  const std::vector<std::string> unused = opts.unused_keys();
  if (!unused.empty()) {
    for (const std::string& k : unused)
      std::fprintf(stderr, "rank %d: unknown option --%s\n", rank, k.c_str());
    return 2;
  }

  try {
    obs::MetricsRegistry reg(nranks);  // only shard `rank` is written here
    cfg.metrics = &reg;

    // Every rank resolves "auto" from the same filesystem probe, so the
    // choice is identical across the launch without any coordination.
    std::string chosen = transport;
    if (chosen == "auto")
      chosen = transport::shm_dir_usable(sc.dir) ? "shm" : "socket";
    std::unique_ptr<transport::Communicator> comm;
    transport::SocketComm* socket_comm = nullptr;
    transport::ShmComm* shm_comm = nullptr;
    if (chosen == "shm") {
      transport::ShmCommConfig hc;
      hc.rank = rank;
      hc.nranks = nranks;
      hc.dir = sc.dir;
      hc.comm = sc.comm;
      hc.connect_timeout = sc.connect_timeout;
      if (shm_ring_bytes > 0)
        hc.ring_bytes = static_cast<std::size_t>(shm_ring_bytes);
      hc.session = static_cast<std::uint64_t>(shm_session);
      hc.heartbeat_path = sc.heartbeat_path;
      hc.heartbeat_interval = sc.heartbeat_interval;
      hc.fault = sc.fault;
      hc.metrics = &reg;
      auto c = std::make_unique<transport::ShmComm>(hc);
      shm_comm = c.get();
      comm = std::move(c);
    } else {
      sc.metrics = &reg;
      auto c = std::make_unique<transport::SocketComm>(sc);
      socket_comm = c.get();
      comm = std::move(c);
    }

    ParallelLbm run(cfg, *comm);
    run.initialize_uniform();
    run.run(phases);
    const std::string observables =
        collect_observables(run, *comm, cfg.global);
    if (socket_comm != nullptr) socket_comm->publish_stats();
    if (shm_comm != nullptr) shm_comm->publish_stats();

    if (cfg.output.async) {
      // Same background-writer path the runner uses for checkpoints/VTK;
      // flush() below is the rendezvous before the final barrier.
      obs::AsyncWriter writer;
      if (!observables_out.empty() && comm->rank() == 0)
        writer.submit_file(observables_out, observables);
      if (!metrics_out.empty()) {
        std::ostringstream csv;
        reg.write_csv(csv);
        writer.submit_file(metrics_out, std::move(csv).str());
      }
      writer.flush();
    } else {
      if (!observables_out.empty() && comm->rank() == 0) {
        std::ofstream f(observables_out, std::ios::binary | std::ios::trunc);
        if (!f)
          throw transport::comm_error("cannot write " + observables_out);
        f << observables;
      }
      if (!metrics_out.empty()) {
        std::ofstream f(metrics_out, std::ios::binary | std::ios::trunc);
        if (!f) throw transport::comm_error("cannot write " + metrics_out);
        reg.write_csv(f);
      }
    }
    // Final barrier so no rank tears down its endpoint while a peer is
    // still mid-collective.
    comm->barrier();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rank %d: %s\n", rank, e.what());
    return 3;
  }
  return 0;
}

}  // namespace slipflow::sim
