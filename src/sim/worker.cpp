#include "sim/worker.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "lbm/kernels.hpp"
#include "obs/async_writer.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "transport/shm_comm.hpp"
#include "transport/socket_comm.hpp"
#include "util/json.hpp"
#include "util/options.hpp"

namespace slipflow::sim {

namespace {

/// Shortest exact representation of a double: printf hexfloat.
std::string hexd(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

/// Write `content` under `path` tear-proof: a temp file in the same
/// directory, then rename. Consumers that poll the directory (the
/// campaign server's streaming loop) only ever see complete fragments.
void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) throw transport::comm_error("cannot write " + tmp);
    f << content;
    if (!f.good()) throw transport::comm_error("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw transport::comm_error("cannot publish " + path);
}

/// One incremental result fragment at absolute phase `phase`: the
/// component masses (a cheap collective) as obs_<phase>.json, and this
/// rank-0's trace spans recorded since the previous fragment as
/// newline-delimited Chrome trace events in trace_<phase>.json.
/// Collective — every rank must call it; only rank 0 writes.
void write_stream_fragment(ParallelLbm& run, transport::Communicator& comm,
                           long long phase, const std::string& dir,
                           std::size_t& trace_cursor) {
  const std::vector<double> masses = run.global_masses_ordered();
  if (comm.rank() != 0) return;
  std::ostringstream obs;
  obs << "{\"phase\":" << phase << ",\"masses\":[";
  for (std::size_t c = 0; c < masses.size(); ++c) {
    if (c != 0) obs << ',';
    obs << util::json_number(masses[c]);
  }
  obs << "]}\n";
  write_file_atomic(dir + "/obs_" + std::to_string(phase) + ".json",
                    obs.str());

  std::ostringstream trace;
  trace_cursor = obs::write_chrome_trace_events(run.profiler().registry(),
                                                trace, 0, trace_cursor);
  write_file_atomic(dir + "/trace_" + std::to_string(phase) + ".json",
                    trace.str());
}

}  // namespace

std::string collect_observables(ParallelLbm& run,
                                transport::Communicator& comm,
                                const lbm::Extents& global,
                                ObservableSet set) {
  // The physics set's masses use the plane-ordered fold: byte-identical
  // across decompositions and migration histories, which is what lets a
  // recovered or warm-started job reproduce a straight-through run
  // exactly. The full set keeps the historical rank-ordered fold.
  // Mixture velocity is rebuilt first: a migration reallocates the slab
  // and zeroes it, so a run whose final phase triggered a remap would
  // otherwise report zero profiles (refresh is byte-idempotent when no
  // migration happened).
  run.refresh_observables();
  const std::vector<double> masses = set == ObservableSet::physics
                                         ? run.global_masses_ordered()
                                         : run.global_masses();
  const std::vector<RankStats> stats = run.gather_stats();

  std::ostringstream os;
  if (comm.rank() == 0) {
    for (std::size_t c = 0; c < masses.size(); ++c)
      os << "mass " << c << " " << hexd(masses[c]) << "\n";
    if (set == ObservableSet::full)
      for (const RankStats& s : stats)
        os << "rank " << s.rank << " planes " << s.planes << " sent "
           << s.planes_sent << " received " << s.planes_received << "\n";
  }
  // Mid-channel y-profiles of every global plane: covers every rank's
  // slab wherever the remapper left the boundaries.
  const lbm::index_t z = global.nz / 2;
  for (lbm::index_t gx = 0; gx < global.nx; ++gx) {
    const std::vector<double> ux = run.gather_velocity_profile_y(gx, z);
    const std::vector<double> rho = run.gather_density_profile_y(0, gx, z);
    if (comm.rank() == 0) {
      for (std::size_t j = 0; j < ux.size(); ++j)
        os << "ux " << gx << " " << j << " " << hexd(ux[j]) << "\n";
      for (std::size_t j = 0; j < rho.size(); ++j)
        os << "rho0 " << gx << " " << j << " " << hexd(rho[j]) << "\n";
    }
  }
  return os.str();
}

int worker_main(int argc, const char* const* argv) {
  const util::Options opts = util::Options::parse(argc, argv);

  // --- transport ---
  const int rank = static_cast<int>(opts.get("rank", 0LL));
  const int nranks = static_cast<int>(opts.get("ranks", 1LL));
  transport::SocketCommConfig sc;
  sc.rank = rank;
  sc.nranks = nranks;
  sc.dir = opts.get("socket-dir", std::string{});
  sc.connect_timeout = opts.get("connect-timeout", 10.0);
  sc.comm.recv_timeout = opts.get("recv-timeout", 30.0);
  sc.heartbeat_path = opts.get("heartbeat-sock", std::string{});
  sc.heartbeat_interval = opts.get("heartbeat-interval", 0.25);
  // socket = Unix-domain sockets (default), shm = mmap'd rings,
  // auto = shm when the socket dir can host mmap'd segments.
  const std::string transport = opts.get("transport", std::string("socket"));
  const long long shm_session = opts.get("shm-session", 0LL);
  const long long shm_ring_bytes = opts.get("shm-ring-bytes", 0LL);
  if (transport != "socket" && transport != "shm" && transport != "auto") {
    std::fprintf(stderr, "rank %d: unknown --transport=%s\n", rank,
                 transport.c_str());
    return 2;
  }

  // --- fault injection ---
  sc.fault.kill_at_phase = opts.get("fault-kill-phase", -1LL);
  sc.fault.stop_at_phase = opts.get("fault-stop-phase", -1LL);
  sc.fault.drop_dest = static_cast<int>(opts.get("fault-drop-dest", -2LL));
  sc.fault.drop_tag = static_cast<int>(opts.get("fault-drop-tag", -1LL));
  sc.fault.drop_count = static_cast<int>(opts.get("fault-drop-count", 1LL));
  sc.fault.send_delay = opts.get("fault-send-delay", 0.0);
  sc.fault.throttle_bytes_per_sec = opts.get("fault-throttle-bps", 0.0);

  // --- problem ---
  RunnerConfig cfg;
  cfg.global = lbm::Extents{opts.get("nx", 16LL), opts.get("ny", 6LL),
                            opts.get("nz", 4LL)};
  // The paper's two-component microchannel model; the physical knobs are
  // exposed so campaign sweeps (slipflow_submit --sweep) can scan them.
  cfg.fluid = lbm::FluidParams::microchannel_defaults(
      opts.get("wall-accel", 0.2), opts.get("wall-decay", 2.5),
      opts.get("air-fraction", 0.03), opts.get("coupling-g", 1.0),
      opts.get("gravity", 2e-5));
  cfg.policy = opts.get("policy", std::string("filtered"));
  cfg.remap_interval = static_cast<int>(opts.get("remap-interval", 5LL));
  cfg.balance.window = static_cast<int>(opts.get("window", 3LL));
  cfg.balance.min_transfer_points = opts.get("min-transfer", 24LL);
  cfg.threads = static_cast<int>(opts.get("threads", 1LL));
  const std::string step = opts.get("step", std::string("overlap"));
  if (step == "blocking") {
    cfg.step = StepMode::blocking;
  } else if (step == "overlap") {
    cfg.step = StepMode::overlap;
  } else {
    std::fprintf(stderr, "rank %d: unknown --step=%s\n", rank, step.c_str());
    return 2;
  }
  // Which tile-kernel backend the hot kernels dispatch to. "auto" keeps
  // the CPUID default (widest supported SIMD); naming a backend that this
  // build/CPU cannot run is a configuration error, not a fallback.
  const std::string backend_name =
      opts.get("kernel-backend", std::string("auto"));
  if (backend_name != "auto") {
    const std::optional<lbm::KernelBackend> kb =
        lbm::parse_kernel_backend(backend_name);
    if (!kb) {
      std::fprintf(stderr, "rank %d: unknown --kernel-backend=%s\n", rank,
                   backend_name.c_str());
      return 2;
    }
    if (!lbm::kernel_backend_supported(*kb)) {
      std::fprintf(stderr,
                   "rank %d: --kernel-backend=%s not supported by this "
                   "build/CPU\n",
                   rank, backend_name.c_str());
      return 2;
    }
    lbm::set_kernel_backend(*kb);
  }

  // --phases is the ABSOLUTE phase target: a fresh run executes that
  // many phases, a run resumed from --load-checkpoint executes only the
  // remainder. That is what makes a crash-recovered or warm-started job
  // finish at the same physical state as a straight-through one.
  const long long phases = opts.get("phases", 40LL);
  const int slow_rank = static_cast<int>(opts.get("slow-rank", -1LL));
  const double slow_factor = opts.get("slow-factor", 0.0);
  if (slow_rank >= 0 && slow_factor > 0.0) {
    cfg.slowdown.assign(static_cast<std::size_t>(nranks), 0.0);
    if (slow_rank < nranks)
      cfg.slowdown[static_cast<std::size_t>(slow_rank)] = slow_factor;
  }

  // --- determinism: injected clocks (see obs/clock.hpp) ---
  // --clock=counting makes "measured" times a pure function of the call
  // sequence, so the remapping decisions — and hence the observables —
  // are identical across backends and runs.
  const std::string clock = opts.get("clock", std::string("wall"));
  const double clock_step = opts.get("clock-step", 1e-3);
  const int slow_clock_rank = static_cast<int>(opts.get("slow-clock-rank", -1LL));
  const double slow_clock_factor = opts.get("slow-clock-factor", 4.0);
  if (clock == "counting") {
    cfg.clock_factory = [=](int r) -> std::shared_ptr<obs::Clock> {
      const double tick =
          r == slow_clock_rank ? clock_step * slow_clock_factor : clock_step;
      return std::make_shared<obs::CountingClock>(tick);
    };
  } else if (clock != "wall") {
    std::fprintf(stderr, "rank %d: unknown --clock=%s\n", rank, clock.c_str());
    return 2;
  }

  // --- output ---
  const std::string observables_out =
      opts.get("observables-out", std::string{});
  const std::string metrics_out = opts.get("metrics-out", std::string{});
  cfg.output.checkpoint_every =
      static_cast<int>(opts.get("checkpoint-every", 0LL));
  cfg.output.checkpoint_prefix = opts.get("checkpoint-out", std::string{});
  cfg.output.vtk_every = static_cast<int>(opts.get("vtk-every", 0LL));
  cfg.output.vtk_prefix = opts.get("vtk-out", std::string{});
  const std::string io = opts.get("io", std::string("async"));
  if (io == "async") {
    cfg.output.async = true;
  } else if (io == "sync") {
    cfg.output.async = false;
  } else {
    std::fprintf(stderr, "rank %d: unknown --io=%s\n", rank, io.c_str());
    return 2;
  }

  // --- job-spec mode (campaign server; see src/serve) ---
  // Resume/seed from a checkpoint, publish an equilibrated warm state,
  // stream incremental result fragments, and pick the observable set.
  const std::string load_ck = opts.get("load-checkpoint", std::string{});
  const long long warm_phases = opts.get("warm-phases", 0LL);
  const std::string warm_out = opts.get("warm-checkpoint-out", std::string{});
  const long long stream_every = opts.get("stream-every", 0LL);
  const std::string stream_dir = opts.get("stream-dir", std::string{});
  cfg.output.atomic_checkpoints = opts.get("checkpoint-atomic", false);
  const std::string obs_set_name =
      opts.get("observables", std::string("full"));
  ObservableSet obs_set = ObservableSet::full;
  if (obs_set_name == "physics") {
    obs_set = ObservableSet::physics;
  } else if (obs_set_name != "full") {
    std::fprintf(stderr, "rank %d: unknown --observables=%s\n", rank,
                 obs_set_name.c_str());
    return 2;
  }
  if (!warm_out.empty() && (warm_phases <= 0 || warm_phases > phases)) {
    std::fprintf(stderr,
                 "rank %d: --warm-checkpoint-out needs 0 < --warm-phases "
                 "<= --phases\n",
                 rank);
    return 2;
  }
  if (stream_every > 0 && stream_dir.empty()) {
    std::fprintf(stderr, "rank %d: --stream-every needs --stream-dir\n",
                 rank);
    return 2;
  }

  if (const std::string diag = opts.unknown_diagnostic(); !diag.empty()) {
    std::fprintf(stderr, "rank %d: %s", rank, diag.c_str());
    return 2;
  }

  try {
    obs::MetricsRegistry reg(nranks);  // only shard `rank` is written here
    cfg.metrics = &reg;

    // Every rank resolves "auto" from the same filesystem probe, so the
    // choice is identical across the launch without any coordination.
    std::string chosen = transport;
    if (chosen == "auto")
      chosen = transport::shm_dir_usable(sc.dir) ? "shm" : "socket";
    std::unique_ptr<transport::Communicator> comm;
    transport::SocketComm* socket_comm = nullptr;
    transport::ShmComm* shm_comm = nullptr;
    if (chosen == "shm") {
      transport::ShmCommConfig hc;
      hc.rank = rank;
      hc.nranks = nranks;
      hc.dir = sc.dir;
      hc.comm = sc.comm;
      hc.connect_timeout = sc.connect_timeout;
      if (shm_ring_bytes > 0)
        hc.ring_bytes = static_cast<std::size_t>(shm_ring_bytes);
      hc.session = static_cast<std::uint64_t>(shm_session);
      hc.heartbeat_path = sc.heartbeat_path;
      hc.heartbeat_interval = sc.heartbeat_interval;
      hc.fault = sc.fault;
      hc.metrics = &reg;
      auto c = std::make_unique<transport::ShmComm>(hc);
      shm_comm = c.get();
      comm = std::move(c);
    } else {
      sc.metrics = &reg;
      auto c = std::make_unique<transport::SocketComm>(sc);
      socket_comm = c.get();
      comm = std::move(c);
    }

    ParallelLbm run(cfg, *comm);
    long long start_phase = 0;
    if (!load_ck.empty())
      start_phase = run.load_checkpoint(load_ck);
    else
      run.initialize_uniform();

    // Chunked stepping toward the absolute target: segment boundaries
    // fall on the warm-checkpoint phase and on stream-fragment
    // multiples. Chunking run() never changes the physics (each phase
    // is self-contained), so a streamed job computes the same state as
    // an unstreamed one.
    long long at = start_phase;
    std::size_t trace_cursor = 0;
    while (at < phases) {
      long long next = phases;
      if (!warm_out.empty() && at < warm_phases && warm_phases < next)
        next = warm_phases;
      if (stream_every > 0)
        next = std::min(next, (at / stream_every + 1) * stream_every);
      run.run(static_cast<int>(next - at));
      at = next;
      if (!warm_out.empty() && at == warm_phases) {
        // Published atomically: save_checkpoint's final barrier puts
        // every rank's planes on disk before rank 0 renames, so the
        // warm cache can never promote a torn equilibration state.
        run.save_checkpoint(warm_out + ".tmp", at);
        if (comm->rank() == 0 &&
            std::rename((warm_out + ".tmp").c_str(), warm_out.c_str()) != 0)
          throw transport::comm_error("cannot publish " + warm_out);
      }
      if (stream_every > 0 && at % stream_every == 0 && at < phases)
        write_stream_fragment(run, *comm, at, stream_dir, trace_cursor);
    }
    // Final fragment: flushes the last segment's trace spans.
    if (stream_every > 0)
      write_stream_fragment(run, *comm, at, stream_dir, trace_cursor);
    const std::string observables =
        collect_observables(run, *comm, cfg.global, obs_set);
    if (socket_comm != nullptr) socket_comm->publish_stats();
    if (shm_comm != nullptr) shm_comm->publish_stats();

    if (cfg.output.async) {
      // Same background-writer path the runner uses for checkpoints/VTK;
      // flush() below is the rendezvous before the final barrier.
      obs::AsyncWriter writer;
      if (!observables_out.empty() && comm->rank() == 0)
        writer.submit_file(observables_out, observables);
      if (!metrics_out.empty()) {
        std::ostringstream csv;
        reg.write_csv(csv);
        writer.submit_file(metrics_out, std::move(csv).str());
      }
      writer.flush();
    } else {
      if (!observables_out.empty() && comm->rank() == 0) {
        std::ofstream f(observables_out, std::ios::binary | std::ios::trunc);
        if (!f)
          throw transport::comm_error("cannot write " + observables_out);
        f << observables;
      }
      if (!metrics_out.empty()) {
        std::ofstream f(metrics_out, std::ios::binary | std::ios::trunc);
        if (!f) throw transport::comm_error("cannot write " + metrics_out);
        reg.write_csv(f);
      }
    }
    // Final barrier so no rank tears down its endpoint while a peer is
    // still mid-collective.
    comm->barrier();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rank %d: %s\n", rank, e.what());
    return 3;
  }
  return 0;
}

}  // namespace slipflow::sim
