#include "transport/thread_comm.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>

#include "util/require.hpp"

namespace slipflow::transport {

namespace detail {

/// Shared state of one run_ranks invocation.
struct ThreadCommShared {
  ThreadCommShared(int n, CommOptions o)
      : nranks(n), opts(o), contributions(static_cast<std::size_t>(n)) {}

  const int nranks;
  const CommOptions opts;

  std::mutex mu;
  std::condition_variable cv;

  /// Mailboxes keyed by (dst, src, tag); FIFO per key, matching MPI's
  /// non-overtaking guarantee for identical (src, dst, tag).
  std::map<std::tuple<int, int, int>, std::deque<std::vector<double>>> mail;

  /// Generation barrier / collective state.
  long generation = 0;
  int arrived = 0;
  std::vector<std::vector<double>> contributions;
  std::shared_ptr<const std::vector<double>> collective_result;

  /// Set when a rank died with an exception; wakes all waiters.
  bool poisoned = false;
  std::exception_ptr first_error;

  void poison(std::exception_ptr e) {
    std::lock_guard<std::mutex> lk(mu);
    if (!first_error) first_error = e;
    poisoned = true;
    cv.notify_all();
  }

  void check_poison_locked() const {
    if (poisoned)
      throw contract_error("transport poisoned: another rank failed");
  }
};

namespace {

/// Pop the oldest message for (dst=rank, src, tag) if one is queued.
/// Caller holds sh.mu.
bool try_pop_locked(ThreadCommShared& sh, int rank, int src, int tag,
                    std::vector<double>& out) {
  const auto it = sh.mail.find({rank, src, tag});
  if (it == sh.mail.end() || it->second.empty()) return false;
  out = std::move(it->second.front());
  it->second.pop_front();
  return true;
}

/// The blocking receive shared by Endpoint::recv and RecvHandle::wait:
/// condition-variable wait bounded by opts.recv_timeout, poison-aware,
/// timeout diagnostic naming the pending (src, tag).
std::vector<double> blocking_recv(ThreadCommShared& sh, int rank, int src,
                                  int tag) {
  std::unique_lock<std::mutex> lk(sh.mu);
  std::vector<double> out;
  const auto ready = [&] {
    return sh.poisoned || try_pop_locked(sh, rank, src, tag, out);
  };
  const double timeout = sh.opts.recv_timeout;
  if (timeout > 0.0) {
    // det-lint: allow(wall-clock): recv-timeout deadline — failure
    // diagnostics only, never feeds observables.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(timeout));
    if (!sh.cv.wait_until(lk, deadline, ready))
      throw comm_timeout(
          "rank " + std::to_string(rank) + ": recv timeout after " +
          std::to_string(timeout) + "s waiting for (src=" +
          std::to_string(src) + ", tag=" + std::to_string(tag) + ")");
  } else {
    sh.cv.wait(lk, ready);
  }
  sh.check_poison_locked();
  return out;
}

/// Completion = the matching message reached this rank's mailbox; test()
/// claims it under the shared mutex, wait() falls back to blocking_recv
/// so the timeout/poison diagnostics are the blocking ones verbatim.
class ThreadRecvHandle final : public RecvHandle {
 public:
  ThreadRecvHandle(ThreadCommShared& sh, int rank, int src, int tag)
      : sh_(sh), rank_(rank), src_(src), tag_(tag) {}

  bool test() override {
    if (done_) return true;
    std::lock_guard<std::mutex> lk(sh_.mu);
    sh_.check_poison_locked();
    if (!try_pop_locked(sh_, rank_, src_, tag_, payload_)) return false;
    done_ = true;
    return true;
  }

  std::vector<double> wait() override {
    if (!done_) {
      payload_ = blocking_recv(sh_, rank_, src_, tag_);
      done_ = true;
    }
    return std::move(payload_);
  }

 private:
  ThreadCommShared& sh_;
  const int rank_, src_, tag_;
  bool done_ = false;
  std::vector<double> payload_;
};

class Endpoint final : public Communicator {
 public:
  Endpoint(ThreadCommShared& sh, int rank) : sh_(sh), rank_(rank) {}

  int rank() const override { return rank_; }
  int size() const override { return sh_.nranks; }

  void send(int dest, int tag, std::span<const double> data) override {
    SLIPFLOW_REQUIRE(dest >= 0 && dest < sh_.nranks);
    std::lock_guard<std::mutex> lk(sh_.mu);
    sh_.mail[{dest, rank_, tag}].emplace_back(data.begin(), data.end());
    sh_.cv.notify_all();
  }

  std::vector<double> recv(int src, int tag) override {
    SLIPFLOW_REQUIRE(src >= 0 && src < sh_.nranks);
    return blocking_recv(sh_, rank_, src, tag);
  }

  RecvHandlePtr irecv(int src, int tag) override {
    SLIPFLOW_REQUIRE(src >= 0 && src < sh_.nranks);
    return std::make_unique<ThreadRecvHandle>(sh_, rank_, src, tag);
  }

  void barrier() override { collective({}, /*want_result=*/false); }

  // det-lint: rank-ordered — collective() concatenates the shared
  // mailbox contributions indexed by rank, not by arrival.
  std::vector<double> allgather(std::span<const double> mine) override {
    return collective(mine, /*want_result=*/true);
  }

  using Communicator::allreduce_sum;  // the vector overload

  // det-lint: rank-ordered — folds the rank-ordered allgather result
  // left to right in rank index order.
  double allreduce_sum(double x) override {
    const std::vector<double> all = allgather(std::span<const double>(&x, 1));
    double s = 0.0;
    for (double v : all) s += v;
    return s;
  }

  // det-lint: rank-ordered — max over the rank-ordered allgather.
  double allreduce_max(double x) override {
    const std::vector<double> all = allgather(std::span<const double>(&x, 1));
    double m = all.front();
    for (double v : all) m = v > m ? v : m;
    return m;
  }

 private:
  /// Generation-counting barrier; the last arriver optionally assembles
  /// the allgather result, which stays valid for readers of this
  /// generation even after later collectives start (shared_ptr snapshot).
  std::vector<double> collective(std::span<const double> mine,
                                 bool want_result) {
    std::unique_lock<std::mutex> lk(sh_.mu);
    sh_.check_poison_locked();
    sh_.contributions[static_cast<std::size_t>(rank_)].assign(mine.begin(),
                                                              mine.end());
    const long my_gen = sh_.generation;
    if (++sh_.arrived == sh_.nranks) {
      auto result = std::make_shared<std::vector<double>>();
      if (want_result) {
        for (const auto& c : sh_.contributions)
          result->insert(result->end(), c.begin(), c.end());
      }
      sh_.collective_result = std::move(result);
      sh_.arrived = 0;
      ++sh_.generation;
      sh_.cv.notify_all();
    } else {
      sh_.cv.wait(lk,
                  [&] { return sh_.generation != my_gen || sh_.poisoned; });
      sh_.check_poison_locked();
    }
    return want_result ? *sh_.collective_result : std::vector<double>{};
  }

  ThreadCommShared& sh_;
  const int rank_;
};

}  // namespace
}  // namespace detail

void run_ranks(int nranks, const std::function<void(Communicator&)>& fn) {
  run_ranks(nranks, fn, CommOptions{});
}

void run_ranks(int nranks, const std::function<void(Communicator&)>& fn,
               const CommOptions& opts) {
  SLIPFLOW_REQUIRE(nranks >= 1);
  SLIPFLOW_REQUIRE(fn != nullptr);
  detail::ThreadCommShared shared(nranks, opts);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&shared, &fn, r] {
      detail::Endpoint ep(shared, r);
      try {
        fn(ep);
      } catch (...) {
        shared.poison(std::current_exception());
      }
    });
  }
  for (auto& t : threads) t.join();
  if (shared.first_error) std::rethrow_exception(shared.first_error);
}

}  // namespace slipflow::transport
