#pragma once
/// \file heartbeat.hpp
/// HeartbeatSender — the worker-side half of the launcher's liveness
/// protocol, shared by SocketComm and ShmComm. Connects to the monitor
/// socket and sends kHeartbeat frames carrying {last reported phase,
/// sequence number} at a fixed interval from its own thread, so a rank
/// wedged inside a blocking recv (or connection setup) is still visible
/// to the monitor.

#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>

#include "transport/fdio.hpp"
#include "transport/frame.hpp"

namespace slipflow::transport {

class HeartbeatSender {
 public:
  /// Connects to the monitor socket (blocking, bounded by
  /// connect_timeout) and starts beating immediately — before any mesh
  /// rendezvous, so a rank stuck in connection setup is already visible.
  HeartbeatSender(int rank, const std::string& monitor_path,
                  double interval_seconds, double connect_timeout)
      : rank_(rank), interval_(interval_seconds) {
    const double deadline = fdio::mono_now() + connect_timeout;
    fd_ = fdio::connect_retry(monitor_path, deadline,
                              "rank " + std::to_string(rank_) + ": heartbeat");
    thread_ = std::thread([this] { beat_loop(); });
  }

  ~HeartbeatSender() { stop(); }

  HeartbeatSender(const HeartbeatSender&) = delete;
  HeartbeatSender& operator=(const HeartbeatSender&) = delete;

  /// Record the phase the next beat reports. Safe from any thread.
  void note_phase(long long phase) {
    phase_.store(phase, std::memory_order_relaxed);
  }

  long long count() const { return count_.load(std::memory_order_relaxed); }

  /// Stop the beats and close the monitor connection. Idempotent.
  void stop() {
    if (thread_.joinable()) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
      }
      cv_.notify_all();
      thread_.join();
    }
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  void beat_loop() {
    long long seq = 0;
    for (;;) {
      FrameHeader h;
      h.kind = FrameKind::kHeartbeat;
      h.src = rank_;
      h.count = 2;
      const double payload[2] = {
          static_cast<double>(phase_.load(std::memory_order_relaxed)),
          static_cast<double>(seq++)};
      const auto hdr = encode_frame_header(h);
      std::byte frame[kFrameHeaderBytes + 2 * sizeof(double)];
      std::memcpy(frame, hdr.data(), hdr.size());
      std::memcpy(frame + hdr.size(), payload, sizeof(payload));
      // Blocking write on the heartbeat's own fd; the monitor always
      // drains, and a dead monitor (EPIPE) just ends the beats.
      if (::send(fd_, frame, sizeof(frame), MSG_NOSIGNAL) < 0) return;
      count_.fetch_add(1, std::memory_order_relaxed);
      std::unique_lock<std::mutex> lk(mu_);
      if (cv_.wait_for(lk, std::chrono::duration<double>(interval_),
                       [this] { return stop_; }))
        return;
    }
  }

  const int rank_;
  const double interval_;
  int fd_ = -1;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<long long> count_{0};
  std::atomic<long long> phase_{-1};
};

}  // namespace slipflow::transport
