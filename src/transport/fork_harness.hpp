#pragma once
/// \file fork_harness.hpp
/// Generic forked rank harness shared by run_ranks_sockets and
/// run_ranks_shm_forked: forks `nranks` children (no exec), each
/// running a caller-supplied body for its rank. The parent supervises
/// with a wall-clock watchdog, captures each child's stderr, and throws
/// on any child failure or on timeout with the collected per-rank
/// diagnostics. For true fresh-address-space workers use
/// transport::launch_workers with the slipflow_worker binary instead.

#include <functional>
#include <string>

namespace slipflow::transport {

struct ForkRunOptions {
  double wall_timeout = 60.0;
  /// Name used in thrown diagnostics, e.g. "run_ranks_sockets".
  std::string who = "run_ranks_forked";
};

/// Fork nranks children; child r runs `body(r)` and exits 0 on normal
/// return, 3 on exception (message written to the captured stderr).
/// Throws comm_timeout on wall timeout, comm_error on any rank failure.
void run_ranks_forked(int nranks, const std::function<void(int rank)>& body,
                      const ForkRunOptions& opts);

}  // namespace slipflow::transport
