#pragma once
/// \file communicator.hpp
/// MPI-flavored message passing abstraction.
///
/// The paper's code is plain MPI on a Linux cluster. This machine has no
/// MPI and no cluster, so the library programs against this narrow
/// interface instead; ThreadComm (threads-as-ranks in one process, see
/// thread_comm.hpp) provides real concurrent message passing with the
/// same semantics the parallel LBM needs: point-to-point tagged messages
/// of doubles, barrier, allgather and sum/max reductions.
///
/// Sends are buffered (they never block on the receiver), so the
/// neighbor-exchange pattern "send left, send right, recv left, recv
/// right" is deadlock-free exactly as with MPI_Bsend/eager-mode MPI.

#include <cstdint>
#include <span>
#include <vector>

namespace slipflow::transport {

/// Message tags used by the parallel LBM runner; user code may use any
/// other values.
enum Tag : int {
  kTagFHalo = 1,
  kTagDensityHalo = 2,
  kTagLoadIndex = 3,
  kTagMigrationMeta = 4,
  kTagMigrationData = 5,
  kTagGather = 6,
  kTagUser = 100,
};

/// One rank's endpoint. Implementations must be usable concurrently from
/// the owning rank's thread only.
class Communicator {
 public:
  virtual ~Communicator() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// Buffered, non-blocking-on-receiver send of a double payload.
  virtual void send(int dest, int tag, std::span<const double> data) = 0;

  /// Blocking receive of the oldest matching message from (src, tag).
  virtual std::vector<double> recv(int src, int tag) = 0;

  /// Block until every rank reached the barrier.
  virtual void barrier() = 0;

  /// Gather equal-size contributions from all ranks; the result is the
  /// concatenation ordered by rank, identical on every rank.
  virtual std::vector<double> allgather(std::span<const double> mine) = 0;

  /// Global sum / max of one double, identical on every rank.
  virtual double allreduce_sum(double x) = 0;
  virtual double allreduce_max(double x) = 0;
};

}  // namespace slipflow::transport
