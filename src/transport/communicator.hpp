#pragma once
/// \file communicator.hpp
/// MPI-flavored message passing abstraction.
///
/// The paper's code is plain MPI on a Linux cluster. The library programs
/// against this narrow interface instead; three backends implement it
/// with the same semantics the parallel LBM needs — point-to-point tagged
/// messages of doubles, barrier, allgather and sum/max reductions:
///
///   SerialComm  — one rank, collectives are identities (serial_comm.hpp)
///   ThreadComm  — threads-as-ranks in one process (thread_comm.hpp)
///   SocketComm  — real processes over Unix-domain sockets with
///                 length-prefixed frames (socket_comm.hpp)
///
/// Sends are buffered (they never block on the receiver), so the
/// neighbor-exchange pattern "send left, send right, recv left, recv
/// right" is deadlock-free exactly as with MPI_Bsend/eager-mode MPI.
/// Collectives are deterministic: allgather concatenates in rank order
/// and reductions fold the gathered values in rank order, so results are
/// byte-identical across all backends.

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/require.hpp"

namespace slipflow::transport {

/// Message tags used by the parallel LBM runner; user code may use any
/// other non-negative values. Negative tags are reserved for transport
/// internals (SocketComm's collective trees).
enum Tag : int {
  kTagFHalo = 1,
  kTagDensityHalo = 2,
  kTagLoadIndex = 3,
  kTagMigrationMeta = 4,
  kTagMigrationData = 5,
  kTagGather = 6,
  kTagUser = 100,
};

/// A transport-layer failure: a peer died, a connection broke, a frame
/// was malformed. Distinct from contract_error (caller bugs).
class comm_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A bounded wait expired — the blocked operation names the pending
/// (src, tag) so a silent hang becomes a diagnosable error.
class comm_timeout : public comm_error {
 public:
  using comm_error::comm_error;
};

/// Options shared by every backend.
struct CommOptions {
  /// Upper bound on any blocking recv, in seconds; <= 0 waits forever.
  /// On expiry the recv throws comm_timeout naming (rank, src, tag)
  /// instead of hanging the run (or ctest) indefinitely.
  double recv_timeout = 0.0;
};

/// Pending nonblocking receive posted with Communicator::irecv.
///
/// test() is a nonblocking probe: it drives whatever progress the
/// backend needs (SocketComm pumps its poll() engine with a zero
/// timeout), claims the oldest matching message if one has arrived, and
/// returns whether the receive is complete. Once it has returned true it
/// stays true. wait() blocks until completion and returns the payload;
/// it honors the communicator's recv_timeout and throws the same
/// comm_timeout / comm_error diagnostics (naming src and tag) as a
/// blocking recv would. wait() may be called without ever calling
/// test(), and consumes the handle: a second wait() is a caller bug.
///
/// Handles claim messages in FIFO order per (src, tag), so posting at
/// most one outstanding handle per (src, tag) keeps ordering identical
/// to a sequence of blocking recvs. The handle must not outlive its
/// communicator and is used from the owning rank's thread only.
class RecvHandle {
 public:
  virtual ~RecvHandle() = default;
  virtual bool test() = 0;
  virtual std::vector<double> wait() = 0;
};

using RecvHandlePtr = std::unique_ptr<RecvHandle>;

/// One rank's endpoint. Implementations must be usable concurrently from
/// the owning rank's thread only.
class Communicator {
 public:
  virtual ~Communicator() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// Buffered, non-blocking-on-receiver send of a double payload.
  virtual void send(int dest, int tag, std::span<const double> data) = 0;

  /// Blocking receive of the oldest matching message from (src, tag).
  virtual std::vector<double> recv(int src, int tag) = 0;

  /// Nonblocking send. Every backend's send() already copies the payload
  /// before returning (buffered/eager semantics), so the default simply
  /// forwards; `data` may be reused or overwritten as soon as the call
  /// returns. Exists so call sites can state intent and so a future
  /// backend with truly deferred sends has a seam to implement it.
  virtual void isend(int dest, int tag, std::span<const double> data) {
    send(dest, tag, data);
  }

  /// Post a nonblocking receive for the oldest message from (src, tag)
  /// not yet claimed by recv() or another handle. See RecvHandle for the
  /// completion contract. Matching is FIFO per (src, tag).
  virtual RecvHandlePtr irecv(int src, int tag) = 0;

  /// Block until every rank reached the barrier.
  virtual void barrier() = 0;

  /// Gather equal-size contributions from all ranks; the result is the
  /// concatenation ordered by rank, identical on every rank.
  virtual std::vector<double> allgather(std::span<const double> mine) = 0;

  /// Global sum / max of one double, identical on every rank.
  virtual double allreduce_sum(double x) = 0;
  virtual double allreduce_max(double x) = 0;

  /// Element-wise global sum of an equal-size vector, identical on every
  /// rank. One collective instead of xs.size() scalar reductions. The
  /// default folds an allgather in rank order, which keeps the result
  /// byte-identical to summing scalar allreduces rank by rank.
  // det-lint: rank-ordered — folds the rank-ordered allgather result
  // in ascending rank index, never in completion order.
  virtual std::vector<double> allreduce_sum(std::span<const double> xs) {
    const std::size_t m = xs.size();
    const std::vector<double> all = allgather(xs);
    SLIPFLOW_REQUIRE_MSG(all.size() == m * static_cast<std::size_t>(size()),
                         "allreduce_sum: ragged contributions");
    std::vector<double> out(m, 0.0);
    for (int r = 0; r < size(); ++r)
      for (std::size_t i = 0; i < m; ++i)
        out[i] += all[static_cast<std::size_t>(r) * m + i];
    return out;
  }

  /// Progress note for external monitors: the application's current
  /// phase. SocketComm forwards it on its heartbeat channel (and applies
  /// phase-triggered fault injection); other backends ignore it.
  virtual void note_progress(long long phase) { (void)phase; }
};

}  // namespace slipflow::transport
